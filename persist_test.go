package precis

// Persistence suite: the engine-level durability layer (Open, WAL-logged
// mutations, Checkpoint, Close, recovery) must round-trip every piece of
// engine state — tuples with identities, foreign keys, synonyms, narrative
// macros — and a failed WAL append must leave memory exactly as it was.

import (
	"errors"
	"io"
	"log"
	"os"
	"path/filepath"
	"testing"
	"time"

	"precis/internal/dataset"
	"precis/internal/faultinject"
	"precis/internal/obs"
	"precis/internal/storage"
)

// quietPersistConfig is the test default: no background checkpoints, no
// fsync (tests exercise durability by re-reading files, not by surviving
// real power loss), no log spam.
func quietPersistConfig(dir string) PersistConfig {
	return PersistConfig{
		Dir:             dir,
		Fsync:           FsyncNever,
		CheckpointBytes: -1, // manual checkpoints only
		Logger:          log.New(io.Discard, "", 0),
	}
}

// openPersistent builds a persistent engine over the example movies
// database in dir.
func openPersistent(t *testing.T, dir string) *Engine {
	t.Helper()
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	eng, err := Open(db, g, quietPersistConfig(dir))
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// numStandardMacros is how many WAL records openPersistent itself logs.
var numStandardMacros = len(dataset.StandardMacros())

// copyDataDir clones a data directory file by file (the moral equivalent
// of what a crash leaves on disk, given FsyncNever writes still reach the
// page cache and our reads go through it).
func copyDataDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestOpenEmptyDirIsInMemory(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(db, g, PersistConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.PersistStats()
	if st.Enabled {
		t.Fatal("in-memory engine reports persistence enabled")
	}
	if err := eng.Checkpoint(); !errors.Is(err, ErrNotPersistent) {
		t.Fatalf("Checkpoint on in-memory engine = %v, want ErrNotPersistent", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close on in-memory engine = %v", err)
	}
	if _, err := eng.Insert("GENRE", storage.Int(1), storage.String("drama")); err != nil {
		t.Fatalf("mutation after no-op Close failed: %v", err)
	}
}

func TestPersistRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	eng := openPersistent(t, dir)
	did, err := eng.Insert("DIRECTOR", storage.Int(900), storage.String("Greta Gerwig"), storage.String("Sacramento"), storage.String("1983"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Insert("MOVIE", storage.Int(910), storage.String("Lady Bird"), storage.Int(2017), storage.Int(900)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Update("DIRECTOR", did, []storage.Value{storage.Int(900), storage.String("Greta Gerwig"), storage.String("Sacramento, California"), storage.String("1983")}); err != nil {
		t.Fatal(err)
	}
	gid, err := eng.Insert("GENRE", storage.Int(910), storage.String("drama"))
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := eng.Delete("GENRE", gid); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	eng.AddSynonym("g gerwig", "Greta Gerwig")
	if err := eng.DefineMacro(`DEFINE GG as "Greta Gerwig."`); err != nil {
		t.Fatal(err)
	}
	wantDump := dumpDatabase(eng.Database())
	wantAns, err := eng.QueryString("\"g gerwig\"", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	eng2 := openPersistent(t, dir)
	defer eng2.Close()
	st := eng2.PersistStats()
	if !st.Enabled || !st.Recovery.SnapshotLoaded {
		t.Fatalf("recovery stats = %+v, want snapshot loaded", st)
	}
	if st.Recovery.WALRecordsReplayed != 0 {
		t.Fatalf("Close checkpointed, yet %d WAL records replayed", st.Recovery.WALRecordsReplayed)
	}
	if got := dumpDatabase(eng2.Database()); got != wantDump {
		t.Fatalf("database changed across reopen:\nwant:\n%s\ngot:\n%s", wantDump, got)
	}
	gotAns, err := eng2.QueryString("\"g gerwig\"", Options{})
	if err != nil {
		t.Fatalf("synonym query after reopen: %v", err)
	}
	if dumpDatabase(gotAns.Database) != dumpDatabase(wantAns.Database) {
		t.Fatal("answer database differs across reopen")
	}
	if gotAns.Narrative != wantAns.Narrative {
		t.Fatalf("narrative differs across reopen:\nwant: %s\ngot:  %s", wantAns.Narrative, gotAns.Narrative)
	}
}

// TestReopenWithoutCloseReplaysWAL simulates a crash (no Close, no final
// checkpoint) by cloning the data directory mid-life: recovery must replay
// every logged mutation on top of the generation-1 snapshot.
func TestReopenWithoutCloseReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	eng := openPersistent(t, dir)
	defer eng.Close()
	if _, err := eng.Insert("DIRECTOR", storage.Int(901), storage.String("Chloe Zhao"), storage.String("Beijing"), storage.String("1982")); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Insert("MOVIE", storage.Int(911), storage.String("Nomadland"), storage.Int(2020), storage.Int(901)); err != nil {
		t.Fatal(err)
	}
	eng.AddSynonym("zhao", "Chloe Zhao")
	wantDump := dumpDatabase(eng.Database())

	crashed := copyDataDir(t, dir)
	eng2 := openPersistent(t, crashed)
	defer eng2.Close()
	st := eng2.PersistStats()
	if want := numStandardMacros + 3; st.Recovery.WALRecordsReplayed != want {
		t.Fatalf("replayed %d WAL records, want %d", st.Recovery.WALRecordsReplayed, want)
	}
	if got := dumpDatabase(eng2.Database()); got != wantDump {
		t.Fatalf("recovered database differs:\nwant:\n%s\ngot:\n%s", wantDump, got)
	}
	if _, err := eng2.QueryString("zhao", Options{}); err != nil {
		t.Fatalf("synonym lost in recovery: %v", err)
	}
}

// TestWALAppendFailureRollsBack injects WAL append errors and asserts each
// mutation kind leaves memory exactly as it was — disk and memory may
// never diverge.
func TestWALAppendFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	eng := openPersistent(t, dir)
	defer eng.Close()
	did, err := eng.Insert("DIRECTOR", storage.Int(902), storage.String("Agnes Varda"), storage.String("Ixelles"), storage.String("1928"))
	if err != nil {
		t.Fatal(err)
	}
	before := dumpDatabase(eng.Database())
	beforeAns, err := eng.QueryString("Varda", Options{})
	if err != nil {
		t.Fatal(err)
	}

	errBoom := errors.New("injected WAL failure")
	defer faultinject.Activate(faultinject.NewPlan().
		Set(faultinject.SiteWALAppend, faultinject.Rule{Err: errBoom}))()

	if _, err := eng.Insert("DIRECTOR", storage.Int(903), storage.String("X"), storage.String("Y"), storage.String("Z")); !errors.Is(err, errBoom) {
		t.Fatalf("Insert under WAL failure = %v, want injected error", err)
	}
	if err := eng.Update("DIRECTOR", did, []storage.Value{storage.Int(902), storage.String("A. Varda"), storage.String("Ixelles"), storage.String("1928")}); !errors.Is(err, errBoom) {
		t.Fatalf("Update under WAL failure = %v, want injected error", err)
	}
	if ok, err := eng.Delete("DIRECTOR", did); ok || !errors.Is(err, errBoom) {
		t.Fatalf("Delete under WAL failure = %v, %v, want false + injected error", ok, err)
	}
	// The synonym must be dropped, not half-applied, and the lost write
	// must be observable by the caller.
	if err := eng.AddSynonym("cleo", "Agnes Varda"); !errors.Is(err, errBoom) {
		t.Fatalf("AddSynonym under WAL failure = %v, want injected error", err)
	}
	if err := eng.DefineMacro(`DEFINE AV as "Agnes Varda."`); !errors.Is(err, errBoom) {
		t.Fatalf("DefineMacro under WAL failure = %v, want injected error", err)
	}

	if got := dumpDatabase(eng.Database()); got != before {
		t.Fatalf("failed mutations left state behind:\nwant:\n%s\ngot:\n%s", before, got)
	}
	afterAns, err := eng.QueryString("Varda", Options{})
	if err != nil {
		t.Fatalf("query after rolled-back mutations: %v", err)
	}
	if dumpDatabase(afterAns.Database) != dumpDatabase(beforeAns.Database) {
		t.Fatal("rolled-back mutations changed query answers")
	}
	if _, err := eng.QueryString("cleo", Options{}); !errors.Is(err, ErrNoMatches) {
		t.Fatalf("dropped synonym still matches: %v", err)
	}

	// Back to health: the same mutations succeed and survive a reopen.
	faultinject.Deactivate()
	if _, err := eng.Insert("DIRECTOR", storage.Int(903), storage.String("Celine Sciamma"), storage.String("Pontoise"), storage.String("1978")); err != nil {
		t.Fatalf("Insert after recovery from WAL failure: %v", err)
	}
	crashed := copyDataDir(t, dir)
	eng2 := openPersistent(t, crashed)
	defer eng2.Close()
	if got, want := dumpDatabase(eng2.Database()), dumpDatabase(eng.Database()); got != want {
		t.Fatalf("post-failure state did not persist:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestWALFsyncFailureNoPhantomRecord injects an fsync error under
// FsyncAlways — the case where the frame bytes hit the file before the
// failure. The engine rolls the mutation back; the WAL layer must
// guarantee the written-but-unsynced record can never become durable
// (truncated tail + poisoned writer), so a reopen of the directory yields
// exactly the pre-failure state instead of replaying a ghost tuple. A
// checkpoint then heals the store into a fresh generation without a
// restart.
func TestWALFsyncFailureNoPhantomRecord(t *testing.T) {
	dir := t.TempDir()
	cfg := quietPersistConfig(dir)
	cfg.Fsync = FsyncAlways
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Insert("DIRECTOR", storage.Int(902), storage.String("Agnes Varda"), storage.String("Ixelles"), storage.String("1928")); err != nil {
		t.Fatal(err)
	}
	before := dumpDatabase(eng.Database())

	errBoom := errors.New("injected fsync failure")
	defer faultinject.Activate(faultinject.NewPlan().
		Set(faultinject.SiteWALFsync, faultinject.Rule{Err: errBoom}))()
	if _, err := eng.Insert("DIRECTOR", storage.Int(903), storage.String("Phantom"), storage.String("Nowhere"), storage.String("1900")); !errors.Is(err, errBoom) {
		t.Fatalf("Insert under fsync failure = %v, want injected error", err)
	}
	faultinject.Deactivate()

	// Memory rolled back ...
	if got := dumpDatabase(eng.Database()); got != before {
		t.Fatalf("failed mutation left memory state behind:\nwant:\n%s\ngot:\n%s", before, got)
	}
	// ... and the WAL is poisoned, not silently diverging: further appends
	// are refused (and rolled back) until a checkpoint heals the store.
	if _, err := eng.Insert("DIRECTOR", storage.Int(904), storage.String("After"), storage.String("X"), storage.String("1950")); err == nil {
		t.Fatal("insert succeeded on a poisoned WAL")
	}

	// Reopen-and-compare: the phantom record's bytes must not be on disk,
	// so recovery reproduces the pre-failure state exactly.
	crashed := copyDataDir(t, dir)
	db2, g2, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := Open(db2, g2, quietPersistConfig(crashed))
	if err != nil {
		t.Fatalf("reopen after fsync failure: %v", err)
	}
	if got := dumpDatabase(eng2.Database()); got != before {
		t.Fatalf("phantom record replayed after fsync failure:\nwant:\n%s\ngot:\n%s", before, got)
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}

	// Checkpoint heals: a fresh generation gets a healthy writer, durable
	// mutations flow again, and they survive a reopen.
	if err := eng.Checkpoint(); err != nil {
		t.Fatalf("healing checkpoint: %v", err)
	}
	if _, err := eng.Insert("DIRECTOR", storage.Int(905), storage.String("Celine Sciamma"), storage.String("Pontoise"), storage.String("1978")); err != nil {
		t.Fatalf("insert after healing checkpoint: %v", err)
	}
	crashed2 := copyDataDir(t, dir)
	db3, g3, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	eng3, err := Open(db3, g3, quietPersistConfig(crashed2))
	if err != nil {
		t.Fatalf("reopen after heal: %v", err)
	}
	defer eng3.Close()
	if got, want := dumpDatabase(eng3.Database()), dumpDatabase(eng.Database()); got != want {
		t.Fatalf("post-heal state did not persist:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

func TestCheckpointRotatesGeneration(t *testing.T) {
	dir := t.TempDir()
	eng := openPersistent(t, dir)
	defer eng.Close()
	if _, err := eng.Insert("GENRE", storage.Int(1), storage.String("noir")); err != nil {
		t.Fatal(err)
	}
	st := eng.PersistStats()
	if st.Generation != 1 || st.WALRecords != int64(numStandardMacros)+1 {
		t.Fatalf("before checkpoint: %+v", st)
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st = eng.PersistStats()
	if st.Generation != 2 || st.WALRecords != 0 || st.Checkpoints != 1 {
		t.Fatalf("after checkpoint: %+v", st)
	}
	// The checkpoint is complete on its own: recovery replays zero records.
	crashed := copyDataDir(t, dir)
	eng2 := openPersistent(t, crashed)
	defer eng2.Close()
	if got := eng2.PersistStats().Recovery.WALRecordsReplayed; got != 0 {
		t.Fatalf("replayed %d records after checkpoint, want 0", got)
	}
	if got, want := dumpDatabase(eng2.Database()), dumpDatabase(eng.Database()); got != want {
		t.Fatal("checkpointed state differs after reopen")
	}
}

func TestCloseRefusesFurtherMutations(t *testing.T) {
	dir := t.TempDir()
	eng := openPersistent(t, dir)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := eng.Insert("GENRE", storage.Int(1), storage.String("drama")); err == nil {
		t.Fatal("Insert after Close succeeded")
	}
	if err := eng.Checkpoint(); err == nil {
		t.Fatal("Checkpoint after Close succeeded")
	}
	// Queries keep working on the still-valid in-memory state.
	if _, err := eng.QueryString("Woody Allen", Options{}); err != nil {
		t.Fatalf("query after Close: %v", err)
	}
}

func TestBackgroundCheckpointBySize(t *testing.T) {
	dir := t.TempDir()
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	cfg := quietPersistConfig(dir)
	cfg.CheckpointBytes = 256 // tiny: a few inserts trip it
	eng, err := Open(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 50; i++ {
		if _, err := eng.Insert("GENRE", storage.Int(1), storage.String("genre-padding-padding-padding")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for eng.PersistStats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("size-triggered checkpoint never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPersistMetricsExported wires a registry and checks the persistence
// instruments register and tick.
func TestPersistMetricsExported(t *testing.T) {
	dir := t.TempDir()
	eng := openPersistent(t, dir)
	defer eng.Close()
	reg := obs.NewRegistry()
	eng.Instrument(reg)
	if _, err := eng.Insert("GENRE", storage.Int(1), storage.String("drama")); err != nil {
		t.Fatal(err)
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricWALRecords).Load(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricWALRecords, got)
	}
	if got := reg.Counter(MetricCheckpoints).Load(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricCheckpoints, got)
	}
}

package precis

// Fenced failover torture suite. The contract under test: with a sync
// quorum (SyncReplicas=1, durable follower), killing the primary after ANY
// acked mutation and promoting the follower in place yields a writable
// primary serving exactly the acked prefix — a write whose quorum was lost
// never surfaces — and the promotion's epoch bump fences the old primary
// forever: deposed live it answers every mutation with ErrFenced, its
// resurrected directory boots fenced, and rejoining the new primary forces
// a snapshot bootstrap that truncates its diverged WAL suffix.
// scripts/ci.sh runs the suite under -race.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"precis/internal/dataset"
	"precis/internal/faultinject"
	"precis/internal/repl"
	"precis/internal/storage"
)

// assertAllMutationsFenced drives every WAL-logged mutation kind against a
// fenced engine: each must answer the typed ErrFenced and leave no trace.
func assertAllMutationsFenced(t *testing.T, e *Engine, where string) {
	t.Helper()
	if _, err := e.Insert("GENRE", storage.Int(911), storage.String("FencedGenre")); !errors.Is(err, ErrFenced) {
		t.Fatalf("%s: Insert = %v, want ErrFenced", where, err)
	}
	id, ok := findDirector(e, "Greta Gerwig")
	if !ok {
		t.Fatalf("%s: script director missing; cannot exercise Update/Delete", where)
	}
	if err := e.Update("DIRECTOR", id, []storage.Value{
		storage.Int(900), storage.String("Greta Gerwig"), storage.String("Nowhere"), storage.String("1983"),
	}); !errors.Is(err, ErrFenced) {
		t.Fatalf("%s: Update = %v, want ErrFenced", where, err)
	}
	if _, err := e.Delete("DIRECTOR", id); !errors.Is(err, ErrFenced) {
		t.Fatalf("%s: Delete = %v, want ErrFenced", where, err)
	}
	if err := e.AddSynonym("fenced", "Lady Bird"); !errors.Is(err, ErrFenced) {
		t.Fatalf("%s: AddSynonym = %v, want ErrFenced", where, err)
	}
	if err := e.DefineMacro(`DEFINE FENCED_TEST as "never."`); !errors.Is(err, ErrFenced) {
		t.Fatalf("%s: DefineMacro = %v, want ErrFenced", where, err)
	}
	if _, ok := findGenre(e, "FencedGenre"); ok {
		t.Fatalf("%s: fenced Insert left state behind", where)
	}
}

// TestFailoverTorture kills the primary after every acked mutation and
// promotes the follower IN PLACE (Engine.Promote, not a directory replay):
// the promoted node must be a writable primary at epoch 2 holding exactly
// the acked prefix, an unacked quorum-lost write must never surface on it,
// and the deposed primary's directory must rejoin it as a follower via a
// forced snapshot bootstrap that truncates the diverged suffix.
func TestFailoverTorture(t *testing.T) {
	refs := make([]refSnapshot, numCrashMutations+1)
	for k := 0; k <= numCrashMutations; k++ {
		refs[k] = captureRef(t, newReferenceEngine(t, k))
	}
	ks := make([]int, 0, numCrashMutations+1)
	for k := 0; k <= numCrashMutations; k++ {
		ks = append(ks, k)
	}
	if testing.Short() {
		ks = []int{0, numCrashMutations / 2, numCrashMutations}
	}
	for _, k := range ks {
		t.Run(fmt.Sprintf("kill_after_%d_acked", k), func(t *testing.T) {
			pdir := t.TempDir()
			primary, addr := startSyncPrimary(t, pdir, repl.PrimaryConfig{
				SyncReplicas: 1,
				AckTimeout:   time.Second,
			})
			defer primary.Close()
			fdir := t.TempDir()
			follower, err := openDurableFollowerOf(addr, fdir)
			if err != nil {
				t.Fatalf("durable follower: %v", err)
			}
			defer follower.Close()

			for i := 0; i < k; i++ {
				if err := crashMutation(primary, i); err != nil {
					t.Fatalf("acked mutation %d: %v", i, err)
				}
			}
			waitReplConverged(t, primary, follower, 30*time.Second)

			// Partition the pair and write once more: the quorum is lost, so
			// the write is durable on the doomed primary only — never acked,
			// and it must never surface on the promoted follower.
			errDown := errors.New("failover-torture: link severed")
			deactivate := faultinject.Activate(faultinject.NewPlan().
				Set(faultinject.SiteReplSend, faultinject.Rule{Err: errDown}).
				Set(faultinject.SiteReplHandshake, faultinject.Rule{Err: errDown}))
			defer deactivate()
			if _, err := primary.Insert("GENRE", storage.Int(1), storage.String("Phantom")); !errors.Is(err, ErrQuorumLost) {
				t.Fatalf("severed-link insert: want ErrQuorumLost, got %v", err)
			}
			if _, ok := findGenre(primary, "Phantom"); !ok {
				t.Fatal("quorum-lost write missing from the old primary (it must be locally durable)")
			}
			if err := primary.Close(); err != nil {
				t.Fatalf("killing primary: %v", err)
			}
			deactivate()

			// In-place promotion: epoch bumps to 2 and the engine becomes
			// writable without being rebuilt.
			epoch, err := follower.Promote(PromoteConfig{Logger: quietTestLogger()})
			if err != nil {
				t.Fatalf("Promote: %v", err)
			}
			if epoch != 2 {
				t.Fatalf("promoted epoch = %d, want 2", epoch)
			}
			assertRefEqual(t, fmt.Sprintf("promoted follower after %d acked mutation(s)", k),
				refs[k], captureRef(t, follower))
			if _, ok := findGenre(follower, "Phantom"); ok {
				t.Fatal("unacked write surfaced on the promoted primary")
			}

			// Start streaming from the new primary (role flips to "primary"
			// once it serves followers).
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := follower.StartReplication(ln, repl.PrimaryConfig{
				HeartbeatEvery: 20 * time.Millisecond,
				Logger:         quietTestLogger(),
			}); err != nil {
				t.Fatalf("StartReplication on promoted primary: %v", err)
			}
			if rs := follower.ReplStats(); rs.Role != "primary" || rs.Epoch != 2 || rs.FencedBy != 0 {
				t.Fatalf("promoted ReplStats = role %q epoch %d fencedBy %d, want primary/2/0", rs.Role, rs.Epoch, rs.FencedBy)
			}

			// The promoted node is writable: finish the script on it.
			for i := k; i < numCrashMutations; i++ {
				if err := crashMutation(follower, i); err != nil {
					t.Fatalf("mutation %d on promoted primary: %v", i, err)
				}
			}
			assertRefEqual(t, "promoted primary after finishing the script",
				refs[numCrashMutations], captureRef(t, follower))

			// Resurrect the deposed primary's directory as a follower of the
			// new primary. Its Hello carries the stale epoch 1, so the new
			// primary forces a snapshot bootstrap instead of resuming the
			// diverged WAL — the phantom suffix is truncated, not replayed.
			rejoined, err := openDurableFollowerOf(ln.Addr().String(), pdir)
			if err != nil {
				t.Fatalf("rejoining the deposed primary's directory: %v", err)
			}
			defer rejoined.Close()
			waitReplConverged(t, follower, rejoined, 30*time.Second)
			assertReplicaIdentical(t, follower, rejoined, "rejoined deposed primary")
			if _, ok := findGenre(rejoined, "Phantom"); ok {
				t.Fatal("diverged WAL suffix survived the rejoin")
			}
			rj := rejoined.ReplStats()
			if rj.Epoch != 2 {
				t.Fatalf("rejoined follower epoch = %d, want 2 (adopted from the stream)", rj.Epoch)
			}
			if rj.Follower.Snapshots == 0 {
				t.Fatal("rejoined deposed primary resumed its diverged WAL without a snapshot bootstrap")
			}
		})
	}
}

// TestDeposedPrimaryFenced deposes a LIVE primary: a failed-over peer at a
// higher epoch dials in, and from that hello on the primary must answer
// every mutation with ErrFenced while still serving reads. The fence is
// durable: reopening the directory boots fenced too.
func TestDeposedPrimaryFenced(t *testing.T) {
	pdir := t.TempDir()
	primary, addr := startSyncPrimary(t, pdir, repl.PrimaryConfig{})
	defer primary.Close()
	applied := 3
	for i := 0; i < applied; i++ {
		if err := crashMutation(primary, i); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	want := captureRef(t, newReferenceEngine(t, applied))

	// A peer that won a failover (epoch 5) dials in; its Hello deposes us.
	ctx, cancel := context.WithCancel(context.Background())
	cl := repl.New(repl.Config{
		Addr:       addr,
		BackoffMin: time.Millisecond,
		BackoffMax: 5 * time.Millisecond,
		Logger:     quietTestLogger(),
	}, repl.Callbacks{
		Position: func() (uint64, uint64) { return 0, 0 },
		Snapshot: func(uint64, []byte) error { return nil },
		Record:   func(uint64, uint64, []byte) error { return nil },
		Epoch:    func() uint64 { return 5 },
	})
	done := make(chan struct{})
	go func() { defer close(done); cl.Run(ctx) }()
	defer func() { cancel(); <-done }()

	deadline := time.Now().Add(10 * time.Second)
	for primary.ReplStats().FencedBy != 5 {
		if time.Now().After(deadline) {
			t.Fatalf("primary never deposed: %+v", primary.ReplStats())
		}
		time.Sleep(time.Millisecond)
	}
	assertAllMutationsFenced(t, primary, "live-deposed primary")
	assertRefEqual(t, "deposed primary read path", want, captureRef(t, primary))
	st := primary.ReplStats()
	if st.Primary == nil || st.Primary.DeposedBy != 5 {
		t.Fatalf("deposed primary stats: %+v", st)
	}

	cancel()
	<-done
	if err := primary.Close(); err != nil {
		t.Fatalf("closing deposed primary: %v", err)
	}

	// The resurrected directory boots fenced: reads work, mutations are
	// typed ErrFenced, and the fencing epoch survives the restart. (Open
	// directly — openPersistent re-defines the standard macros through the
	// engine, which a fenced engine rightly refuses; they are already in
	// the recovered WAL.)
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	reborn, err := Open(db, g, quietPersistConfig(pdir))
	if err != nil {
		t.Fatalf("reopening fenced directory: %v", err)
	}
	defer reborn.Close()
	if rs := reborn.ReplStats(); rs.FencedBy != 5 {
		t.Fatalf("resurrected engine FencedBy = %d, want 5", rs.FencedBy)
	}
	assertAllMutationsFenced(t, reborn, "resurrected deposed primary")
	assertRefEqual(t, "resurrected deposed primary read path", want, captureRef(t, reborn))
}

// TestPromoteLifecycleEdges pins the typed-error surface of Promote and
// EnableAutoFailover on every wrong-role engine, plus the Close races.
func TestPromoteLifecycleEdges(t *testing.T) {
	t.Run("in-memory engine", func(t *testing.T) {
		eng := newEngine(t)
		if _, err := eng.Promote(PromoteConfig{}); !errors.Is(err, ErrNotFollower) {
			t.Fatalf("Promote on in-memory engine = %v, want ErrNotFollower", err)
		}
		if _, err := eng.EnableAutoFailover(AutoFailoverConfig{}); !errors.Is(err, ErrNotFollower) {
			t.Fatalf("EnableAutoFailover on in-memory engine = %v, want ErrNotFollower", err)
		}
	})

	t.Run("persistent primary", func(t *testing.T) {
		eng := openPersistent(t, t.TempDir())
		defer eng.Close()
		if _, err := eng.Promote(PromoteConfig{}); !errors.Is(err, ErrNotFollower) {
			t.Fatalf("Promote on a primary = %v, want ErrNotFollower", err)
		}
	})

	t.Run("diskless follower", func(t *testing.T) {
		primary, addr := startReplPrimary(t)
		defer primary.Close()
		follower := startReplFollower(t, addr)
		defer follower.Close()
		if _, err := follower.Promote(PromoteConfig{}); !errors.Is(err, ErrNotPersistent) {
			t.Fatalf("Promote on diskless follower = %v, want ErrNotPersistent", err)
		}
		if _, err := follower.EnableAutoFailover(AutoFailoverConfig{}); !errors.Is(err, ErrNotPersistent) {
			t.Fatalf("EnableAutoFailover on diskless follower = %v, want ErrNotPersistent", err)
		}
	})

	t.Run("double promote", func(t *testing.T) {
		primary, addr := startSyncPrimary(t, t.TempDir(), repl.PrimaryConfig{})
		defer primary.Close()
		follower, err := openDurableFollowerOf(addr, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer follower.Close()
		waitReplConverged(t, primary, follower, 10*time.Second)
		if _, err := follower.Promote(PromoteConfig{Logger: quietTestLogger()}); err != nil {
			t.Fatalf("first Promote: %v", err)
		}
		if _, err := follower.Promote(PromoteConfig{}); !errors.Is(err, ErrNotFollower) {
			t.Fatalf("second Promote = %v, want ErrNotFollower", err)
		}
	})

	t.Run("promote after close", func(t *testing.T) {
		primary, addr := startSyncPrimary(t, t.TempDir(), repl.PrimaryConfig{})
		defer primary.Close()
		follower, err := openDurableFollowerOf(addr, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := follower.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := follower.Promote(PromoteConfig{}); err == nil {
			t.Fatal("Promote after Close succeeded; it must fail (the store is closed)")
		}
	})

	t.Run("promote races close", func(t *testing.T) {
		primary, addr := startSyncPrimary(t, t.TempDir(), repl.PrimaryConfig{})
		defer primary.Close()
		follower, err := openDurableFollowerOf(addr, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		waitReplConverged(t, primary, follower, 10*time.Second)
		var wg sync.WaitGroup
		wg.Add(2)
		var perr error
		go func() {
			defer wg.Done()
			_, perr = follower.Promote(PromoteConfig{Logger: quietTestLogger()})
		}()
		go func() {
			defer wg.Done()
			_ = follower.Close()
		}()
		wg.Wait()
		// Whichever took the lifecycle lock second saw a consistent engine:
		// either the promotion won (then this close tears down a primary) or
		// the close won (then Promote failed typed, never panicked).
		if perr == nil {
			if err := follower.Close(); err != nil {
				t.Fatalf("closing the promoted winner: %v", err)
			}
		}
	})

	t.Run("double enable auto-failover", func(t *testing.T) {
		primary, addr := startSyncPrimary(t, t.TempDir(), repl.PrimaryConfig{})
		defer primary.Close()
		follower, err := openDurableFollowerOf(addr, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer follower.Close()
		if _, err := follower.EnableAutoFailover(AutoFailoverConfig{
			HeartbeatTimeout: time.Hour, // never fires in this test
			Logger:           quietTestLogger(),
		}); err != nil {
			t.Fatalf("EnableAutoFailover: %v", err)
		}
		if _, err := follower.EnableAutoFailover(AutoFailoverConfig{}); err == nil {
			t.Fatal("second EnableAutoFailover succeeded; want an error")
		}
	})
}

// TestAutoFailoverPromotes is the supervised end-to-end path: a standby
// with auto-failover armed ignores a healthy primary, detects its death by
// heartbeat silence, wins the lone-candidate election, and promotes itself
// — serving exactly the acked prefix and accepting writes.
func TestAutoFailoverPromotes(t *testing.T) {
	primary, addr := startSyncPrimary(t, t.TempDir(), repl.PrimaryConfig{})
	defer primary.Close()
	follower, err := openDurableFollowerOf(addr, t.TempDir())
	if err != nil {
		t.Fatalf("durable follower: %v", err)
	}
	defer follower.Close()
	applied := numCrashMutations / 2
	for i := 0; i < applied; i++ {
		if err := crashMutation(primary, i); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	waitReplConverged(t, primary, follower, 10*time.Second)

	if _, err := follower.EnableAutoFailover(AutoFailoverConfig{
		ID:               "standby-1",
		HeartbeatTimeout: 500 * time.Millisecond,
		PollEvery:        20 * time.Millisecond,
		Promote: PromoteConfig{
			ListenAddr: "127.0.0.1:0",
			Primary:    repl.PrimaryConfig{HeartbeatEvery: 20 * time.Millisecond, Logger: quietTestLogger()},
			Logger:     quietTestLogger(),
		},
		Logger: quietTestLogger(),
	}); err != nil {
		t.Fatalf("EnableAutoFailover: %v", err)
	}

	// Healthy primary: heartbeats keep progress advancing, so a full
	// timeout's worth of waiting must not trigger an election.
	time.Sleep(700 * time.Millisecond)
	if rs := follower.ReplStats(); rs.Role != "follower" || (rs.Failover != nil && rs.Failover.Detections != 0) {
		t.Fatalf("healthy standby fired the detector: role %q, failover %+v", rs.Role, rs.Failover)
	}

	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		rs := follower.ReplStats()
		if rs.Role == "primary" && rs.Failover != nil && rs.Failover.Promotions == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-failover never promoted: %+v", rs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	rs := follower.ReplStats()
	if rs.Epoch != 2 || rs.Failover.LastWinner != "standby-1" || rs.Failover.Detections == 0 {
		t.Fatalf("auto-promoted stats: %+v", rs)
	}
	assertRefEqual(t, "auto-promoted primary", captureRef(t, newReferenceEngine(t, applied)), captureRef(t, follower))
	for i := applied; i < numCrashMutations; i++ {
		if err := crashMutation(follower, i); err != nil {
			t.Fatalf("mutation %d on auto-promoted primary: %v", i, err)
		}
	}
	assertRefEqual(t, "auto-promoted primary after finishing the script",
		captureRef(t, newReferenceEngine(t, numCrashMutations)), captureRef(t, follower))
}

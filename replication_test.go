package precis

// Replication convergence torture suite: a follower streamed over TCP must
// end byte-identical to its primary — same tuple IDs, same scan order,
// same probe answers, same narratives — no matter where the link dies. The
// suite severs the wire at swept byte offsets during snapshot catch-up,
// injects one-shot send/recv/corruption faults around every live-stream
// mutation, forces a fall-behind re-bootstrap across checkpoint rotations,
// and runs a 24-goroutine mutation storm with repl faults firing while a
// follower bootstraps mid-storm. scripts/ci.sh runs the suite under -race.

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"precis/internal/dataset"
	"precis/internal/faultinject"
	"precis/internal/repl"
	"precis/internal/storage"
)

// quietTestLogger discards replication chatter in tests.
func quietTestLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// startReplPrimary opens a persistent engine in its own temp dir and
// starts streaming on a loopback listener, returning the engine and its
// replication address.
func startReplPrimary(t *testing.T) (*Engine, string) {
	t.Helper()
	eng := openPersistent(t, t.TempDir())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.StartReplication(ln, repl.PrimaryConfig{
		HeartbeatEvery: 20 * time.Millisecond,
		Logger:         quietTestLogger(),
	}); err != nil {
		t.Fatal(err)
	}
	return eng, ln.Addr().String()
}

// openFollowerOf opens a follower of addr with fast reconnect backoff.
// Error-returning so storm goroutines can use it (t.Fatal is test-goroutine
// only).
func openFollowerOf(addr string) (*Engine, error) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		return nil, err
	}
	_ = db // a follower only needs the graph; data streams in
	if err := dataset.AnnotateNarrative(g); err != nil {
		return nil, err
	}
	return OpenFollower(g, ReplicaConfig{
		Addr:             addr,
		BootstrapTimeout: 30 * time.Second,
		BackoffMin:       time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		Logger:           quietTestLogger(),
	})
}

func startReplFollower(t *testing.T, addr string) *Engine {
	t.Helper()
	f, err := openFollowerOf(addr)
	if err != nil {
		t.Fatalf("OpenFollower(%s): %v", addr, err)
	}
	return f
}

// waitReplConverged polls until the follower's applied LSN equals the
// primary's durable frontier (the tests run FsyncNever, where the frontier
// is the append position — no explicit Sync needed).
func waitReplConverged(t *testing.T, primary, follower *Engine, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ps := primary.PersistStats()
		fs := follower.ReplStats().Follower
		if fs != nil && fs.AppliedGen == ps.Generation && fs.AppliedRecords == uint64(ps.WALRecords) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower did not converge within %v: applied (%d,%d), primary at (%d,%d), last error: %s",
				timeout, fs.AppliedGen, fs.AppliedRecords, ps.Generation, ps.WALRecords, fs.LastError)
		}
		time.Sleep(time.Millisecond)
	}
}

// assertReplicaIdentical compares the full database dump, the probe
// query's result database, and its narrative between primary and follower.
// Both engines must be quiesced (converged, no in-flight mutations).
func assertReplicaIdentical(t *testing.T, primary, follower *Engine, context string) {
	t.Helper()
	if want, got := dumpDatabase(primary.Database()), dumpDatabase(follower.Database()); want != got {
		t.Fatalf("%s: follower database differs from primary:\nprimary:\n%s\nfollower:\n%s", context, want, got)
	}
	want := captureRef(t, primary)
	got := captureRef(t, follower)
	if want.ansDump != got.ansDump {
		t.Fatalf("%s: follower probe answer differs from primary:\nprimary:\n%s\nfollower:\n%s",
			context, want.ansDump, got.ansDump)
	}
	if want.narrative != got.narrative {
		t.Fatalf("%s: follower narrative differs from primary:\nprimary: %s\nfollower: %s",
			context, want.narrative, got.narrative)
	}
}

// TestReplFollowerConvergesAndRefusesMutations is the basic contract: a
// follower bootstraps to a byte-identical copy, tracks live mutations, and
// answers every mutation with ErrReadOnly.
func TestReplFollowerConvergesAndRefusesMutations(t *testing.T) {
	primary, addr := startReplPrimary(t)
	defer primary.Close()
	follower := startReplFollower(t, addr)
	defer follower.Close()

	waitReplConverged(t, primary, follower, 10*time.Second)
	assertReplicaIdentical(t, primary, follower, "after bootstrap")

	for i := 0; i < numCrashMutations; i++ {
		if err := crashMutation(primary, i); err != nil {
			t.Fatalf("primary mutation %d: %v", i, err)
		}
	}
	waitReplConverged(t, primary, follower, 10*time.Second)
	assertReplicaIdentical(t, primary, follower, "after live stream")

	// Every mutation kind must be refused with the typed error.
	if _, err := follower.Insert("GENRE", storage.Int(910), storage.String("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower Insert: want ErrReadOnly, got %v", err)
	}
	if err := follower.Update("GENRE", 1, nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower Update: want ErrReadOnly, got %v", err)
	}
	if _, err := follower.Delete("GENRE", 1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower Delete: want ErrReadOnly, got %v", err)
	}
	if err := follower.AddSynonym("a", "b"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower AddSynonym: want ErrReadOnly, got %v", err)
	}
	if err := follower.DefineMacro(`DEFINE X as "y."`); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower DefineMacro: want ErrReadOnly, got %v", err)
	}

	// Roles report correctly on both sides.
	if rs := primary.ReplStats(); rs.Role != "primary" || rs.Primary == nil || rs.Primary.Followers != 1 {
		t.Fatalf("primary ReplStats: %+v", rs)
	}
	rs := follower.ReplStats()
	if rs.Role != "follower" || rs.Follower == nil {
		t.Fatalf("follower ReplStats: %+v", rs)
	}
	if rs.Follower.LagRecords != 0 || rs.Follower.LagBytes != 0 {
		t.Fatalf("converged follower reports lag (%d records, %d bytes)", rs.Follower.LagRecords, rs.Follower.LagBytes)
	}
	if rs.Follower.Snapshots != 1 {
		t.Fatalf("clean bootstrap applied %d snapshots, want 1", rs.Follower.Snapshots)
	}
}

// severingProxy forwards TCP to a target but cuts each session after a
// byte budget of primary→follower traffic; the budget grows by step per
// session, so successive reconnects die at a sweep of stream offsets.
type severingProxy struct {
	ln     net.Listener
	target string
	step   int64

	mu       sync.Mutex
	budget   int64
	sessions int
	closed   bool
}

func newSeveringProxy(t *testing.T, target string, firstBudget, step int64) *severingProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &severingProxy{ln: ln, target: target, step: step, budget: firstBudget}
	go p.acceptLoop()
	return p
}

func (p *severingProxy) addr() string { return p.ln.Addr().String() }

func (p *severingProxy) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	_ = p.ln.Close()
}

func (p *severingProxy) sessionCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sessions
}

func (p *severingProxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return
		}
		budget := p.budget
		p.budget += p.step
		p.sessions++
		p.mu.Unlock()
		go p.serve(conn, budget)
	}
}

func (p *severingProxy) serve(down net.Conn, budget int64) {
	defer down.Close()
	up, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer up.Close()
	go func() {
		_, _ = io.Copy(up, down) // follower→primary: the Hello, unbounded
	}()
	// primary→follower: cut mid-stream after exactly budget bytes.
	_, _ = io.CopyN(down, up, budget)
}

// TestReplTortureKillDuringCatchup reconnects a follower through a proxy
// that severs the bootstrap stream at a sweep of byte offsets — inside the
// handshake, inside snapshot chunks, between records — until a session
// finally survives. The follower must converge to a byte-identical copy,
// then keep tracking live mutations through further swept cuts.
func TestReplTortureKillDuringCatchup(t *testing.T) {
	primary, addr := startReplPrimary(t)
	defer primary.Close()
	// Pre-load half the script so the bootstrap stream has a WAL tail.
	for i := 0; i < numCrashMutations/2; i++ {
		if err := crashMutation(primary, i); err != nil {
			t.Fatal(err)
		}
	}

	step := int64(23)
	if testing.Short() {
		step = 211
	}
	proxy := newSeveringProxy(t, addr, 1, step)
	defer proxy.close()

	follower := startReplFollower(t, proxy.addr())
	defer follower.Close()
	waitReplConverged(t, primary, follower, 60*time.Second)
	assertReplicaIdentical(t, primary, follower, "after severed catch-up")
	if proxy.sessionCount() < 2 {
		t.Fatalf("proxy severed nothing (%d sessions): the sweep never exercised a cut", proxy.sessionCount())
	}

	// Live phase: the proxy keeps cutting sessions while the rest of the
	// script streams; every cut lands at a new offset.
	for i := numCrashMutations / 2; i < numCrashMutations; i++ {
		if err := crashMutation(primary, i); err != nil {
			t.Fatal(err)
		}
		waitReplConverged(t, primary, follower, 60*time.Second)
		assertReplicaIdentical(t, primary, follower, fmt.Sprintf("after live mutation %d through proxy", i))
	}
	t.Logf("catch-up torture: %d proxy sessions (cuts at %d-byte stride), all converged identical",
		proxy.sessionCount(), step)
}

// TestReplTortureLiveStreamFaults kills the link around every live-stream
// mutation with a rotating fault: a send error on the primary, a recv
// error on the follower, and genuine wire corruption (a flipped frame
// byte). After every fault the follower must reconnect, resume from its
// last applied LSN, and be byte-identical once converged.
func TestReplTortureLiveStreamFaults(t *testing.T) {
	errReplInjected := errors.New("repl-torture: injected fault")
	faults := []struct {
		name string
		site string
		err  error
	}{
		{"send-sever", faultinject.SiteReplSend, errReplInjected},
		{"recv-sever", faultinject.SiteReplRecv, errReplInjected},
		{"send-corrupt", faultinject.SiteReplSend, repl.ErrInjectCorrupt},
		{"handshake-sever", faultinject.SiteReplHandshake, errReplInjected},
	}

	primary, addr := startReplPrimary(t)
	defer primary.Close()
	follower := startReplFollower(t, addr)
	defer follower.Close()
	waitReplConverged(t, primary, follower, 10*time.Second)

	rounds := 0
	for i := 0; i < numCrashMutations; i++ {
		fc := faults[i%len(faults)]
		// Arm a short-lived fault, mutate while it is live, then let the
		// reconnect heal. Handshake faults fire on the reconnect attempt
		// itself, so give those a couple of shots.
		plan := faultinject.NewPlan().Set(fc.site, faultinject.Rule{Err: fc.err, Limit: 2})
		deactivate := faultinject.Activate(plan)
		if err := crashMutation(primary, i); err != nil {
			deactivate()
			t.Fatalf("mutation %d under %s: %v", i, fc.name, err)
		}
		waitReplConverged(t, primary, follower, 30*time.Second)
		fired := plan.Fired(fc.site)
		deactivate()
		waitReplConverged(t, primary, follower, 30*time.Second)
		assertReplicaIdentical(t, primary, follower, fmt.Sprintf("mutation %d under %s", i, fc.name))
		if fired > 0 {
			rounds++
		}
	}
	if rounds == 0 {
		t.Fatal("no fault ever fired: the torture never touched the link")
	}
}

// TestReplFallBehindRebootstraps cuts a follower off, runs mutations and
// checkpoint rotations past it (garbage-collecting the generation it
// stopped at), then heals the link: the follower must re-bootstrap from
// the current snapshot — swapping its whole state — and end identical.
func TestReplFallBehindRebootstraps(t *testing.T) {
	primary, addr := startReplPrimary(t)
	defer primary.Close()
	follower := startReplFollower(t, addr)
	defer follower.Close()
	waitReplConverged(t, primary, follower, 10*time.Second)

	// Sever every session at its first read so the follower makes no
	// progress while the primary moves on.
	errDown := errors.New("repl-torture: link down")
	deactivate := faultinject.Activate(faultinject.NewPlan().
		Set(faultinject.SiteReplRecv, faultinject.Rule{Err: errDown}))
	for i := 0; i < numCrashMutations; i++ {
		if err := crashMutation(primary, i); err != nil {
			t.Fatal(err)
		}
		if i == 3 || i == 7 {
			if err := primary.Checkpoint(); err != nil {
				t.Fatalf("checkpoint at mutation %d: %v", i, err)
			}
		}
	}
	deactivate()

	waitReplConverged(t, primary, follower, 30*time.Second)
	assertReplicaIdentical(t, primary, follower, "after fall-behind re-bootstrap")
	fs := follower.ReplStats().Follower
	if fs.Snapshots < 2 {
		t.Fatalf("follower applied %d snapshots; a fall-behind recovery needs a re-bootstrap", fs.Snapshots)
	}
	if fs.AppliedGen < 3 {
		t.Fatalf("follower converged at generation %d; checkpoints should have rotated past 2", fs.AppliedGen)
	}
}

// TestChaosReplicatedStorm is the acceptance scenario: 24 goroutines
// hammer the primary with logged mutations while repl.send/repl.recv
// faults (severs and wire corruption) fire and checkpoints rotate the WAL
// generation mid-storm; a follower bootstraps mid-storm and serves reads
// throughout. When the primary quiesces the follower must converge to a
// byte-identical state that passes CheckIntegrity, and its probe answers
// and narratives must match the primary's exactly.
func TestChaosReplicatedStorm(t *testing.T) {
	errReplInjected := errors.New("chaos-repl: injected fault")
	primary, addr := startReplPrimary(t)
	defer primary.Close()

	var mid storage.Value
	primary.Database().Relation("MOVIE").Scan(func(tp storage.Tuple) bool {
		mid = tp.Values[0]
		return false
	})
	if mid.IsNull() {
		t.Fatal("no movie to mutate against")
	}

	plan := faultinject.NewPlan().
		Set(faultinject.SiteReplSend, faultinject.Rule{Err: errReplInjected, Every: 113}).
		Set(faultinject.SiteReplRecv, faultinject.Rule{Err: errReplInjected, Every: 127, After: 20}).
		Set(faultinject.SiteReplHandshake, faultinject.Rule{Err: errReplInjected, Every: 5, Limit: 4})
	deactivate := faultinject.Activate(plan)
	defer deactivate()

	const goroutines = 24
	iters := chaosIters(40)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines+2)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	var followerPtr atomic.Pointer[Engine]
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch {
				case w%4 == 0: // reader on the follower, once it exists
					if f := followerPtr.Load(); f != nil {
						if _, err := f.Query([]string{"Woody Allen"}, Options{SkipNarrative: true}); err != nil && !errors.Is(err, ErrNoMatches) {
							fail(fmt.Errorf("follower reader %d iter %d: %w", w, i, err))
							return
						}
					}
				default: // mutator on the primary
					id, err := primary.Insert("GENRE", mid, storage.String(fmt.Sprintf("storm-%d-%d", w, i)))
					if err != nil {
						fail(fmt.Errorf("mutator %d iter %d: %w", w, i, err))
						return
					}
					if i%3 == 0 {
						if _, err := primary.Delete("GENRE", id); err != nil {
							fail(fmt.Errorf("mutator %d iter %d delete: %w", w, i, err))
							return
						}
					}
					if i%7 == 0 {
						if err := primary.AddSynonym(fmt.Sprintf("stormalias%d_%d", w, i), "Match Point"); err != nil {
							fail(fmt.Errorf("mutator %d iter %d synonym: %w", w, i, err))
							return
						}
					}
				}
			}
		}(w)
	}
	// The follower bootstraps mid-storm, while mutations and faults fly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond)
		f, err := openFollowerOf(addr)
		if err != nil {
			fail(fmt.Errorf("mid-storm follower bootstrap: %w", err))
			return
		}
		followerPtr.Store(f)
	}()
	// Mid-storm checkpoints rotate the generation under the streamer.
	ckpts := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			time.Sleep(3 * time.Millisecond)
			if err := primary.Checkpoint(); err != nil {
				fail(fmt.Errorf("mid-storm checkpoint %d: %w", i, err))
				return
			}
			ckpts++
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if ckpts == 0 {
		t.Fatal("no mid-storm checkpoint completed")
	}
	follower := followerPtr.Load()
	if follower == nil {
		t.Fatal("follower never bootstrapped")
	}
	defer follower.Close()

	// Quiesce, heal the link, and require full convergence.
	waitReplConverged(t, primary, follower, 30*time.Second)
	deactivate()
	waitReplConverged(t, primary, follower, 30*time.Second)
	if violations := follower.Database().CheckIntegrity(); len(violations) > 0 {
		t.Fatalf("converged follower has %d integrity violations (first: %s)", len(violations), violations[0])
	}
	assertReplicaIdentical(t, primary, follower, "after replicated storm")
	if fired := plan.Fired(faultinject.SiteReplSend) + plan.Fired(faultinject.SiteReplRecv); fired == 0 {
		t.Fatal("storm ran without any repl fault firing — schedule too sparse")
	}
}

package main

import (
	"bytes"
	"io"
	"log"
	"strings"
	"testing"

	"precis"
	"precis/internal/storage"
)

func quietPersist(dir string) precis.PersistConfig {
	return precis.PersistConfig{
		Dir:             dir,
		Fsync:           precis.FsyncNever,
		CheckpointBytes: -1,
		Logger:          log.New(io.Discard, "", 0),
	}
}

// TestShutdownPersistenceCheckpoints drives the exact SIGTERM shutdown
// path: mutate a durable engine, run shutdownPersistence, and require (a)
// the completion line is logged, (b) the next boot recovers the mutation
// from the snapshot alone — zero WAL records replayed, because the final
// checkpoint left the directory clean.
func TestShutdownPersistenceCheckpoints(t *testing.T) {
	dir := t.TempDir()
	eng, err := buildEngine("example", 0, 1, 1, "hash", quietPersist(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Insert("DIRECTOR", storage.Int(990), storage.String("Céline Sciamma"), storage.String("Pontoise"), storage.String("1978")); err != nil {
		t.Fatal(err)
	}
	genBefore := eng.PersistStats().Generation

	var buf bytes.Buffer
	if err := shutdownPersistence(eng, log.New(&buf, "", 0)); err != nil {
		t.Fatalf("shutdownPersistence: %v", err)
	}
	if !strings.Contains(buf.String(), "final checkpoint complete") {
		t.Errorf("completion not logged; got %q", buf.String())
	}
	if got := eng.PersistStats().Generation; got <= genBefore {
		t.Errorf("generation %d after shutdown, want > %d (checkpoint must rotate)", got, genBefore)
	}

	reopened, err := buildEngine("example", 0, 1, 1, "hash", quietPersist(dir))
	if err != nil {
		t.Fatalf("reopen after clean shutdown: %v", err)
	}
	defer reopened.Close()
	st := reopened.PersistStats()
	if st.Recovery.WALRecordsReplayed != 0 {
		t.Errorf("clean shutdown left %d WAL records to replay, want 0", st.Recovery.WALRecordsReplayed)
	}
	found := false
	reopened.Database().Relation("DIRECTOR").Scan(func(tp storage.Tuple) bool {
		if tp.Values[1].AsString() == "Céline Sciamma" {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("mutation made before shutdown did not survive recovery")
	}
}

// TestShutdownPersistenceInMemoryNoop: without a data directory the helper
// is silent and leaves the engine usable.
func TestShutdownPersistenceInMemoryNoop(t *testing.T) {
	eng, err := buildEngine("example", 0, 1, 1, "hash", precis.PersistConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := shutdownPersistence(eng, log.New(&buf, "", 0)); err != nil {
		t.Fatalf("in-memory shutdown: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("in-memory shutdown logged %q, want nothing", buf.String())
	}
	if _, err := eng.QueryString("Woody Allen", precis.Options{}); err != nil {
		t.Errorf("engine unusable after no-op shutdown: %v", err)
	}
}

// TestBuildEngineRejectsUnknownKind pins the flag-validation error path.
func TestBuildEngineRejectsUnknownKind(t *testing.T) {
	if _, err := buildEngine("bogus", 0, 1, 1, "hash", precis.PersistConfig{}); err == nil {
		t.Fatal("unknown -db kind accepted")
	}
}

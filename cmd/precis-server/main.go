// Command precis-server exposes précis search over HTTP — the paper's
// web-accessible-database scenario. It serves an HTML search page at /, a
// JSON API at /api/search, the schema graph at /api/schema and /graph.dot,
// and a liveness probe at /healthz.
//
// Usage:
//
//	precis-server [-addr :8080] [-db example|synthetic] [-films N] [-seed N]
//	              [-profiles DIR] [-cache-size N] [-cache-ttl D]
//	              [-query-timeout D]
//
// The answer cache is on by default (-cache-size 0 disables it); any
// mutation through the engine invalidates it wholesale. Every search runs
// under -query-timeout (0 restores the package default, negative disables).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"precis"
	"precis/internal/dataset"
	"precis/internal/profile"
	"precis/internal/schemagraph"
	"precis/internal/storage"
	"precis/internal/web"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dbKind    = flag.String("db", "example", "data source: example or synthetic")
		films     = flag.Int("films", 2000, "synthetic film count")
		seed      = flag.Int64("seed", 1, "synthetic generator seed")
		profiles  = flag.String("profiles", "", "directory of stored profile specs (*.json)")
		cacheSize = flag.Int("cache-size", 256, "answer cache capacity (0 disables the cache)")
		cacheTTL  = flag.Duration("cache-ttl", 10*time.Minute, "answer cache entry lifetime (0 = no expiry)")
		timeout   = flag.Duration("query-timeout", web.DefaultQueryTimeout, "per-request query deadline (negative disables)")
	)
	flag.Parse()

	eng, err := buildEngine(*dbKind, *films, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if *cacheSize > 0 {
		eng.EnableCache(precis.CacheConfig{MaxEntries: *cacheSize, TTL: *cacheTTL})
	}
	for _, p := range []*precis.Profile{profile.Reviewer(), profile.Fan()} {
		if err := eng.AddProfile(p); err != nil {
			log.Fatal(err)
		}
	}
	if *profiles != "" {
		loaded, err := profile.LoadDir(*profiles)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range loaded {
			if err := eng.AddProfile(p); err != nil {
				log.Fatal(err)
			}
		}
		log.Printf("loaded %d stored profiles from %s", len(loaded), *profiles)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           web.NewServerWithConfig(eng, web.Config{QueryTimeout: *timeout}).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("précis server on %s (%s data, %d tuples, cache=%d, timeout=%v)",
		*addr, *dbKind, eng.Database().TotalTuples(), *cacheSize, *timeout)
	log.Fatal(srv.ListenAndServe())
}

// buildEngine mirrors cmd/precis's dataset wiring.
func buildEngine(kind string, films int, seed int64) (*precis.Engine, error) {
	var (
		db  *storage.Database
		g   *schemagraph.Graph
		err error
	)
	switch kind {
	case "example":
		db, g, err = dataset.ExampleMovies()
		if err != nil {
			return nil, err
		}
	case "synthetic":
		cfg := dataset.DefaultSyntheticConfig()
		cfg.Films = films
		cfg.Seed = seed
		db, err = dataset.SyntheticMovies(cfg)
		if err != nil {
			return nil, err
		}
		g, err = dataset.PaperGraph(db)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown -db %q (want example or synthetic)", kind)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		return nil, err
	}
	eng, err := precis.New(db, g)
	if err != nil {
		return nil, err
	}
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// Command precis-server exposes précis search over HTTP — the paper's
// web-accessible-database scenario. It serves an HTML search page at /, a
// JSON API at /api/search, the schema graph at /api/schema and /graph.dot,
// and a liveness probe at /healthz.
//
// Usage:
//
//	precis-server [-addr :8080] [-db example|synthetic] [-films N] [-seed N]
//	              [-profiles DIR] [-cache-size N] [-cache-ttl D]
//	              [-query-timeout D] [-max-inflight N] [-queue-depth N]
//	              [-metrics] [-pprof] [-slowlog-ms N]
//	              [-data-dir DIR] [-fsync always|interval|never]
//	              [-fsync-interval D] [-checkpoint-bytes N] [-checkpoint-interval D]
//	              [-compact-every N] [-compact-bytes N]
//	              [-listen-repl ADDR] [-replicate-from ADDR]
//	              [-sync-replicas N] [-ack-timeout D] [-degrade-to-async]
//	              [-auto-failover] [-priority N] [-failover-timeout D]
//	              [-shards N] [-partitioner hash|range]
//
// The answer cache is on by default (-cache-size 0 disables it); any
// mutation through the engine invalidates it wholesale. Every search runs
// under -query-timeout (0 restores the package default, negative disables).
//
// Durability: -data-dir mounts a persistent data directory (checksummed
// snapshot + write-ahead log). On boot the server recovers whatever a
// previous process left — replaying the log, truncating a torn tail,
// refusing corrupted files — and the -db flag then only seeds a brand-new
// directory. -fsync picks the WAL durability policy; checkpoints run when
// the WAL passes -checkpoint-bytes or every -checkpoint-interval, and a
// final checkpoint runs during graceful shutdown inside -shutdown-grace.
// Checkpoints are incremental deltas (pause proportional to changed tuples,
// not database size) until the chain reaches -compact-every elements or
// -compact-bytes of deltas, when a full compaction rewrites the snapshot
// and persists the inverted index beside it for near-instant reopen.
// /api/persist reports recovery and checkpoint counters.
//
// Observability: /metrics serves every engine and HTTP counter in
// Prometheus text format (-metrics=false turns the endpoint off), -pprof
// mounts net/http/pprof under /debug/pprof/, and -slowlog-ms N logs one
// structured line (query, per-stage latency, cache state, truncation) for
// every search slower than N milliseconds (0 disables).
//
// Replication: -listen-repl ADDR makes a persistent server a streaming
// primary — it accepts follower links on ADDR and streams committed WAL
// frames (snapshot bootstrap included) to them. -replicate-from ADDR makes
// the server a read-only follower of the primary at ADDR: it bootstraps
// over the wire (the -db flag then only selects the schema graph), serves
// queries from the replicated state, and answers every mutation with
// "read-only". Adding -data-dir to a follower makes it durable: replicated
// frames are written through a local WAL before they are acked, and a
// restart resumes from disk instead of re-bootstrapping. On the primary,
// -sync-replicas N holds each commit until N durable follower acks arrive
// (bounded by -ack-timeout); -degrade-to-async trades that guarantee for
// availability when the quorum is lost. /api/repl reports the role,
// follower lag in frames and bytes, per-follower ack lag, the degraded
// flag, and the last applied LSN.
//
// Failover: POST /api/promote converts a durable follower into a writable
// primary (operator-driven), bumping the durable fencing epoch so the old
// primary — alive, partitioned, or resurrected later — is refused by every
// follower and cannot make another write durable. -auto-failover arms the
// same promotion automatically: when the primary has been silent for
// -failover-timeout, the follower runs a deterministic election (epoch,
// then applied LSN, then -priority) and promotes itself if it wins,
// listening for followers on -listen-repl afterwards. /api/repl reports
// the role ("primary", "follower", "promoting"), the epoch, and the fence.
//
// Sharding: -shards N (N > 1) partitions the dataset across N embedded
// engines by tuple-id ownership (-partitioner picks hash or range) and
// executes every search with scattered index probes and scatter/gather
// tuple fetches; answers are byte-identical to the unsharded server. With
// -data-dir each shard keeps its own directory DIR/shard-NNN and recovers
// independently; DIR/shards.json pins the topology and a mismatched reopen
// is refused. /api/shards reports the topology and per-shard state.
// Sharding is exclusive with replication flags for now (replicate per
// shard instead).
//
// Load governance: at most -max-inflight searches run concurrently and at
// most -queue-depth wait for a slot; overflow is shed with 503 and a
// Retry-After header, visible as counters in /api/stats. SIGINT/SIGTERM
// trigger a graceful shutdown: the listener closes, in-flight requests get
// up to -shutdown-grace to finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"precis"
	"precis/internal/dataset"
	"precis/internal/profile"
	"precis/internal/repl"
	"precis/internal/schemagraph"
	"precis/internal/storage"
	"precis/internal/web"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		dbKind     = flag.String("db", "example", "data source: example or synthetic")
		films      = flag.Int("films", 2000, "synthetic film count")
		seed       = flag.Int64("seed", 1, "synthetic generator seed")
		profiles   = flag.String("profiles", "", "directory of stored profile specs (*.json)")
		cacheSize  = flag.Int("cache-size", 256, "answer cache capacity (0 disables the cache)")
		cacheTTL   = flag.Duration("cache-ttl", 10*time.Minute, "answer cache entry lifetime (0 = no expiry)")
		timeout    = flag.Duration("query-timeout", web.DefaultQueryTimeout, "per-request query deadline (negative disables)")
		inflight   = flag.Int("max-inflight", web.DefaultMaxInFlight, "max concurrently executing searches (negative disables admission control)")
		queueDepth = flag.Int("queue-depth", web.DefaultQueueDepth, "max searches waiting for a slot before overflow is shed with 503")
		grace      = flag.Duration("shutdown-grace", 10*time.Second, "how long in-flight requests may finish after SIGTERM")
		metrics    = flag.Bool("metrics", true, "serve Prometheus metrics at /metrics")
		pprofFlag  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		slowlogMS  = flag.Int("slowlog-ms", 0, "log searches slower than this many milliseconds with a per-stage breakdown (0 disables)")

		dataDir    = flag.String("data-dir", "", "persistent data directory (empty = in-memory only)")
		fsync      = flag.String("fsync", "always", "WAL fsync policy: always, interval or never")
		fsyncEvery = flag.Duration("fsync-interval", 0, "flush interval for -fsync interval (0 = package default)")
		ckptBytes  = flag.Int64("checkpoint-bytes", precis.DefaultCheckpointBytes, "checkpoint when the WAL reaches this size (negative disables)")
		ckptEvery  = flag.Duration("checkpoint-interval", 0, "checkpoint on this timer (0 disables the time trigger)")
		cmpEvery   = flag.Int("compact-every", 0, "full-compact the checkpoint chain at this length (0 = default, negative = every checkpoint is a full snapshot)")
		cmpBytes   = flag.Int64("compact-bytes", 0, "full-compact when chain deltas total this many bytes (0 = default, negative disables)")

		listenRepl     = flag.String("listen-repl", "", "stream the WAL to followers on this address (requires -data-dir); with -auto-failover, the address this follower will listen on after promotion")
		replicateFrom  = flag.String("replicate-from", "", "run as a read-only follower of the primary at this address (-data-dir makes the follower durable)")
		syncReplicas   = flag.Int("sync-replicas", 0, "group commits wait for this many durable follower acks (0 = async replication)")
		ackTimeout     = flag.Duration("ack-timeout", 0, "per-commit quorum wait bound (0 = 2s); on expiry the write fails with quorum-lost or degrades")
		degradeToAsync = flag.Bool("degrade-to-async", false, "on quorum loss commit locally and run degraded (sticky flag in /api/repl) instead of failing writes")
		autoFailover   = flag.Bool("auto-failover", false, "on a durable follower, self-promote to primary when the primary goes silent (requires -replicate-from and -data-dir)")
		priority       = flag.Int("priority", 0, "election weight among equally caught-up candidates under -auto-failover (higher wins)")
		hbTimeout      = flag.Duration("failover-timeout", 0, "how long the primary may be silent before -auto-failover promotes (0 = 2s)")

		shards      = flag.Int("shards", 1, "partition the dataset across this many embedded engines (1 = unsharded)")
		partitioner = flag.String("partitioner", "hash", "shard ownership scheme: hash or range")
	)
	flag.Parse()

	fsyncPolicy, err := precis.ParseFsyncPolicy(*fsync)
	if err != nil {
		log.Fatal(err)
	}
	if *replicateFrom != "" && *listenRepl != "" && !*autoFailover {
		log.Fatal("-replicate-from is exclusive with -listen-repl: a follower's state is the primary's stream (add -auto-failover to reserve -listen-repl for this follower's post-promotion listener)")
	}
	if *syncReplicas > 0 && *listenRepl == "" {
		log.Fatal("-sync-replicas requires -listen-repl: quorum acks come from followers")
	}
	if *autoFailover && (*replicateFrom == "" || *dataDir == "") {
		log.Fatal("-auto-failover requires -replicate-from and -data-dir: only a durable follower holds an acked prefix it can safely promote")
	}
	if *shards > 1 && (*listenRepl != "" || *replicateFrom != "") {
		log.Fatalf("-shards %d cannot be combined with the replication flags -listen-repl/-replicate-from: a sharded coordinator has no single WAL to stream. Run one replicated precis-server per shard instead; coordinator-managed per-shard replication is tracked in ROADMAP.md under the sharded-execution item.", *shards)
	}
	var eng *precis.Engine
	if *replicateFrom != "" {
		eng, err = buildFollower(*dbKind, *films, *seed, *replicateFrom, *dataDir, fsyncPolicy, *fsyncEvery)
	} else {
		eng, err = buildEngine(*dbKind, *films, *seed, *shards, *partitioner, precis.PersistConfig{
			Dir:             *dataDir,
			Fsync:           fsyncPolicy,
			FsyncInterval:   *fsyncEvery,
			CheckpointBytes: *ckptBytes,
			CheckpointEvery: *ckptEvery,
			CompactEvery:    *cmpEvery,
			CompactBytes:    *cmpBytes,
		})
	}
	if err != nil {
		log.Fatal(err)
	}
	if *listenRepl != "" && *replicateFrom == "" {
		if *dataDir == "" {
			log.Fatal("-listen-repl requires -data-dir: replication streams the write-ahead log")
		}
		ln, err := net.Listen("tcp", *listenRepl)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := eng.StartReplication(ln, repl.PrimaryConfig{
			SyncReplicas:   *syncReplicas,
			AckTimeout:     *ackTimeout,
			DegradeToAsync: *degradeToAsync,
		}); err != nil {
			log.Fatal(err)
		}
		if *syncReplicas > 0 {
			log.Printf("replication: streaming WAL to followers on %s (synchronous: %d ack(s) per commit, timeout %v, degrade-to-async=%t)",
				ln.Addr(), *syncReplicas, *ackTimeout, *degradeToAsync)
		} else {
			log.Printf("replication: streaming WAL to followers on %s", ln.Addr())
		}
	}
	if *cacheSize > 0 {
		eng.EnableCache(precis.CacheConfig{MaxEntries: *cacheSize, TTL: *cacheTTL})
	}
	for _, p := range []*precis.Profile{profile.Reviewer(), profile.Fan()} {
		if err := eng.AddProfile(p); err != nil {
			log.Fatal(err)
		}
	}
	if *profiles != "" {
		loaded, err := profile.LoadDir(*profiles)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range loaded {
			if err := eng.AddProfile(p); err != nil {
				log.Fatal(err)
			}
		}
		log.Printf("loaded %d stored profiles from %s", len(loaded), *profiles)
	}
	srv := &http.Server{
		Addr: *addr,
		Handler: web.NewServerWithConfig(eng, web.Config{
			QueryTimeout:   *timeout,
			MaxInFlight:    *inflight,
			QueueDepth:     *queueDepth,
			DisableMetrics: !*metrics,
			Pprof:          *pprofFlag,
			SlowQueryLog:   time.Duration(*slowlogMS) * time.Millisecond,
		}).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("précis server on %s (%s data, %d tuples, cache=%d, timeout=%v, inflight=%d, queue=%d, metrics=%t, pprof=%t, slowlog=%dms)",
		*addr, *dbKind, eng.TotalTuples(), *cacheSize, *timeout, *inflight, *queueDepth, *metrics, *pprofFlag, *slowlogMS)
	if ss := eng.ShardStats(); ss.Enabled {
		log.Printf("sharding: %d %s-partitioned shard(s)", ss.Shards, ss.Partitioner)
	}
	if *dataDir != "" && *replicateFrom == "" && *shards <= 1 {
		st := eng.PersistStats()
		log.Printf("persistence: dir=%s fsync=%s generation=%d chain=%d (recovered: snapshot=%t, %d delta(s), %d WAL records replayed, %d torn bytes truncated, index loaded=%t, in %.1fms)",
			*dataDir, st.Fsync, st.Generation, st.ChainDepth, st.Recovery.SnapshotLoaded,
			st.Recovery.DeltasApplied, st.Recovery.WALRecordsReplayed, st.Recovery.TornBytesTruncated,
			st.Recovery.IndexLoaded, st.Recovery.DurationMS)
	}
	if *replicateFrom != "" {
		rs := eng.ReplStats()
		log.Printf("replication: read-only follower of %s (generation %d, %d records applied, durable=%t, epoch %d)",
			*replicateFrom, rs.Follower.AppliedGen, rs.Follower.AppliedRecords, rs.Follower.Durable, rs.Epoch)
		if *autoFailover {
			if _, err := eng.EnableAutoFailover(precis.AutoFailoverConfig{
				ID:               *addr,
				HeartbeatTimeout: *hbTimeout,
				Priority:         *priority,
				Promote: precis.PromoteConfig{
					ListenAddr: *listenRepl,
					Primary: repl.PrimaryConfig{
						SyncReplicas:   *syncReplicas,
						AckTimeout:     *ackTimeout,
						DegradeToAsync: *degradeToAsync,
					},
					CheckpointBytes: *ckptBytes,
					CheckpointEvery: *ckptEvery,
				},
			}); err != nil {
				log.Fatal(err)
			}
			log.Printf("replication: auto-failover armed (priority %d, promotion listener %q)", *priority, *listenRepl)
		}
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections and
	// let in-flight queries drain for up to -shutdown-grace.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutdown signal received; draining in-flight requests (grace %v)", *grace)
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		shutdownErr := srv.Shutdown(sctx)
		// The final checkpoint runs inside the same grace window, after the
		// listener stopped taking requests: no mutation can race it, and a
		// clean shutdown leaves a snapshot the next boot loads without any
		// WAL replay.
		if err := shutdownPersistence(eng, log.Default()); err != nil {
			log.Printf("final checkpoint failed: %v", err)
		}
		if shutdownErr != nil {
			log.Printf("graceful shutdown incomplete: %v", shutdownErr)
			_ = srv.Close()
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("server: %v", err)
		}
		log.Printf("server stopped cleanly")
	}
}

// shutdownPersistence closes the engine — stopping replication in either
// role, then (on a persistent engine) running the final checkpoint — and
// logs completion; on a plain in-memory engine it is a silent no-op. Split
// out of main so the regression test can drive the exact shutdown path.
func shutdownPersistence(eng *precis.Engine, lg *log.Logger) error {
	persistent := eng.PersistStats().Enabled
	start := time.Now()
	if err := eng.Close(); err != nil {
		return err
	}
	if persistent {
		st := eng.PersistStats()
		lg.Printf("final checkpoint complete: generation %d written in %v; data directory is clean",
			st.Generation, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// buildFollower builds a read-only follower engine: the -db flag selects
// only the schema graph (the data arrives over the wire from the primary's
// snapshot), and the standard macros are not defined locally — macro
// definitions replicate through the WAL stream like every other mutation.
// A non-empty dir makes the follower durable: replicated state is written
// through a local WAL before it is acked, and a restart resumes from disk.
func buildFollower(kind string, films int, seed int64, addr, dir string, fsync precis.FsyncPolicy, fsyncEvery time.Duration) (*precis.Engine, error) {
	var (
		db  *storage.Database
		g   *schemagraph.Graph
		err error
	)
	switch kind {
	case "example":
		db, g, err = dataset.ExampleMovies()
		if err != nil {
			return nil, err
		}
	case "synthetic":
		cfg := dataset.DefaultSyntheticConfig()
		cfg.Films = films
		cfg.Seed = seed
		db, err = dataset.SyntheticMovies(cfg)
		if err != nil {
			return nil, err
		}
		g, err = dataset.PaperGraph(db)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown -db %q (want example or synthetic)", kind)
	}
	_ = db // only the graph shapes a follower; its data comes from the primary
	if err := dataset.AnnotateNarrative(g); err != nil {
		return nil, err
	}
	return precis.OpenFollower(g, precis.ReplicaConfig{
		Addr:          addr,
		Dir:           dir,
		Fsync:         fsync,
		FsyncInterval: fsyncEvery,
	})
}

// buildEngine mirrors cmd/precis's dataset wiring, plus durability: with a
// data directory configured the engine recovers (or seeds) persistent
// state; without one it is purely in-memory. shards > 1 builds a sharded
// coordinator instead (per-shard data directories under pcfg.Dir).
func buildEngine(kind string, films int, seed int64, shards int, partitioner string, pcfg precis.PersistConfig) (*precis.Engine, error) {
	var (
		db  *storage.Database
		g   *schemagraph.Graph
		err error
	)
	switch kind {
	case "example":
		db, g, err = dataset.ExampleMovies()
		if err != nil {
			return nil, err
		}
	case "synthetic":
		cfg := dataset.DefaultSyntheticConfig()
		cfg.Films = films
		cfg.Seed = seed
		db, err = dataset.SyntheticMovies(cfg)
		if err != nil {
			return nil, err
		}
		g, err = dataset.PaperGraph(db)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown -db %q (want example or synthetic)", kind)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		return nil, err
	}
	var eng *precis.Engine
	if shards > 1 {
		eng, err = precis.NewSharded(db, g, precis.ShardedConfig{
			Shards:      shards,
			Partitioner: partitioner,
			Persist:     pcfg,
		})
	} else {
		eng, err = precis.Open(db, g, pcfg)
	}
	if err != nil {
		return nil, err
	}
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

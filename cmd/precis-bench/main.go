// Command precis-bench regenerates the paper's evaluation (§6): each
// experiment prints the same series the corresponding figure plots, plus
// the cost-model validation, the §5 running example, and the §2 baseline
// contrast.
//
// Usage:
//
//	precis-bench -exp f7|f8|f9|cm|qe|bl|all [-quick] [-csv]
//	precis-bench -parallel [-quick]   worker-pool speedup sweep
//	precis-bench -cache [-quick]      answer-cache hit vs cold latency
//	precis-bench -deadline [-quick]   answer size vs wall-clock deadline
//	precis-bench -stages [-quick]     per-pipeline-stage latency breakdown
//	precis-bench -persist [-quick]    WAL fsync throughput + recovery time
//	precis-bench -checkpoint [-quick] checkpoint pause full vs delta + persisted-index recovery
//	precis-bench -replicate [-quick]  follower catch-up time + steady-state lag
//	precis-bench -quorum [-quick]     commit latency vs sync-replica quorum size
//	precis-bench -failover [-quick]   primary-kill MTTR: detection/promotion/first-answer
//	precis-bench -shards [-quick]     throughput/latency vs shard count (+ parity check)
//	precis-bench -rebuild [-quick]    parallel inverted-index rebuild speedup
//
// -quick shrinks each experiment's run counts for a fast smoke pass; -csv
// prints machine-readable rows instead of aligned text. -parallel, -cache,
// -deadline, -stages, -persist, -checkpoint, -replicate, -quorum,
// -failover, -shards and -rebuild run the engine-level resource experiments
// (they can be combined with -exp).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"precis"
	"precis/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: f7, f8, f9, cm, qe, bl, ab or all")
		quick     = flag.Bool("quick", false, "shrink run counts for a fast pass")
		csv       = flag.Bool("csv", false, "CSV output")
		parallel  = flag.Bool("parallel", false, "measure worker-pool speedup on one query")
		cache     = flag.Bool("cache", false, "measure answer-cache hit vs cold latency")
		deadline  = flag.Bool("deadline", false, "measure answer size vs wall-clock deadline (graceful degradation)")
		stages    = flag.Bool("stages", false, "measure per-pipeline-stage latency via query traces")
		persist   = flag.Bool("persist", false, "measure WAL append throughput per fsync policy and recovery time vs dataset size")
		ckpt      = flag.Bool("checkpoint", false, "measure checkpoint pause full vs delta and persisted-index recovery speedup")
		replicate = flag.Bool("replicate", false, "measure follower catch-up time and steady-state replication lag vs mutation rate")
		quorum    = flag.Bool("quorum", false, "measure commit latency vs sync-replica quorum size per fsync policy")
		failover  = flag.Bool("failover", false, "measure primary-kill recovery time: detection, promotion and first answered write")
		shardsF   = flag.Bool("shards", false, "measure query latency vs shard count with byte-parity checks")
		rebuild   = flag.Bool("rebuild", false, "measure parallel inverted-index rebuild speedup vs worker count")
	)
	flag.Parse()

	run := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		run[strings.TrimSpace(e)] = true
	}
	if *parallel || *cache || *deadline || *stages || *persist || *ckpt || *replicate || *quorum || *failover || *shardsF || *rebuild {
		// The resource experiments replace the figure suite unless the
		// caller asked for both explicitly.
		if *exp == "all" {
			run = map[string]bool{}
		}
		if *parallel {
			run["pl"] = true
		}
		if *cache {
			run["cc"] = true
		}
		if *deadline {
			run["dl"] = true
		}
		if *stages {
			run["st"] = true
		}
		if *persist {
			run["ps"] = true
		}
		if *ckpt {
			run["cp"] = true
		}
		if *replicate {
			run["rp"] = true
		}
		if *quorum {
			run["qm"] = true
		}
		if *failover {
			run["fo"] = true
		}
		if *shardsF {
			run["sh"] = true
		}
		if *rebuild {
			run["rb"] = true
		}
	}
	all := run["all"]

	if all || run["f7"] {
		if err := runF7(*quick, *csv); err != nil {
			fatal(err)
		}
	}
	if all || run["f8"] {
		if err := runF8(*quick, *csv); err != nil {
			fatal(err)
		}
	}
	if all || run["f9"] {
		if err := runF9(*quick, *csv); err != nil {
			fatal(err)
		}
	}
	if all || run["cm"] {
		if err := runCM(*quick, *csv); err != nil {
			fatal(err)
		}
	}
	if all || run["qe"] {
		if err := runQE(); err != nil {
			fatal(err)
		}
	}
	if all || run["bl"] {
		if err := runBL(*quick); err != nil {
			fatal(err)
		}
	}
	if all || run["ab"] {
		if err := runAB(); err != nil {
			fatal(err)
		}
	}
	if run["pl"] {
		if err := runParallel(*quick); err != nil {
			fatal(err)
		}
	}
	if run["cc"] {
		if err := runCache(*quick); err != nil {
			fatal(err)
		}
	}
	if run["dl"] {
		if err := runDeadline(*quick); err != nil {
			fatal(err)
		}
	}
	if run["st"] {
		if err := runStages(*quick); err != nil {
			fatal(err)
		}
	}
	if run["ps"] {
		if err := runPersist(*quick); err != nil {
			fatal(err)
		}
	}
	if run["cp"] {
		if err := runCheckpoint(*quick); err != nil {
			fatal(err)
		}
	}
	if run["rp"] {
		if err := runReplicate(*quick); err != nil {
			fatal(err)
		}
	}
	if run["qm"] {
		if err := runQuorum(*quick); err != nil {
			fatal(err)
		}
	}
	if run["fo"] {
		if err := runFailover(*quick); err != nil {
			fatal(err)
		}
	}
	if run["sh"] {
		if err := runShards(*quick); err != nil {
			fatal(err)
		}
	}
	if run["rb"] {
		if err := runRebuild(*quick); err != nil {
			fatal(err)
		}
	}
}

func runShards(quick bool) error {
	cfg := experiments.DefaultShardBenchConfig()
	if quick {
		cfg.Films = 500
		cfg.Shards = []int{1, 4}
		cfg.Runs = 3
	}
	report, err := experiments.ShardBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(report.String())
	fmt.Println()
	return nil
}

func runRebuild(quick bool) error {
	cfg := experiments.DefaultRebuildConfig()
	if quick {
		cfg.Films = 2000
		cfg.Workers = []int{1, 4}
		cfg.Runs = 2
	}
	report, err := experiments.IndexRebuild(cfg)
	if err != nil {
		return err
	}
	fmt.Print(report.String())
	fmt.Println()
	return nil
}

func runQuorum(quick bool) error {
	cfg := experiments.DefaultQuorumBenchConfig()
	if quick {
		cfg.Films = 200
		cfg.Appends = 50
		cfg.SyncReplicas = []int{0, 1}
		cfg.Fsyncs = []precis.FsyncPolicy{precis.FsyncAlways}
	}
	report, err := experiments.QuorumBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(report.String())
	fmt.Println()
	return nil
}

func runFailover(quick bool) error {
	cfg := experiments.DefaultFailoverBenchConfig()
	if quick {
		cfg.Films = 200
		cfg.Mutations = 20
		cfg.HeartbeatTimeouts = []time.Duration{100 * time.Millisecond}
		cfg.Trials = 1
	}
	report, err := experiments.FailoverBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(report.String())
	fmt.Println()
	return nil
}

func runReplicate(quick bool) error {
	cfg := experiments.DefaultReplBenchConfig()
	if quick {
		cfg.Films = 200
		cfg.CatchupRecords = []int{0, 200}
		cfg.Rates = []int{200, 1000}
		cfg.RateDuration = 500 * time.Millisecond
	}
	report, err := experiments.ReplBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(report.String())
	fmt.Println()
	return nil
}

func runPersist(quick bool) error {
	cfg := experiments.DefaultPersistBenchConfig()
	if quick {
		cfg.Appends = 100
		cfg.Films = []int{200, 500}
		cfg.WALRecords = 100
		cfg.Runs = 2
	}
	report, err := experiments.PersistBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(report.String())
	fmt.Println()
	return nil
}

func runCheckpoint(quick bool) error {
	cfg := experiments.DefaultCheckpointBenchConfig()
	if quick {
		cfg.Films = []int{200, 500}
		cfg.Dirty = 50
		cfg.Runs = 2
	}
	report, err := experiments.CheckpointBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(report.String())
	fmt.Println()
	return nil
}

func runStages(quick bool) error {
	cfg := experiments.DefaultStagesConfig()
	if quick {
		cfg.Films = 500
		cfg.Runs = 3
	}
	report, err := experiments.Stages(cfg)
	if err != nil {
		return err
	}
	fmt.Print(report.String())
	fmt.Println()
	return nil
}

func runDeadline(quick bool) error {
	cfg := experiments.DefaultDegradationConfig()
	if quick {
		cfg.Films = 500
		cfg.Deadlines = []time.Duration{time.Millisecond, 5 * time.Millisecond, 0}
		cfg.Runs = 3
	}
	report, err := experiments.Degradation(cfg)
	if err != nil {
		return err
	}
	fmt.Print(report.String())
	fmt.Println()
	return nil
}

func runParallel(quick bool) error {
	cfg := experiments.DefaultParallelConfig()
	if quick {
		cfg.Films = 500
		cfg.Workers = []int{1, 4}
		cfg.Runs = 3
	}
	report, err := experiments.Parallel(cfg)
	if err != nil {
		return err
	}
	fmt.Print(report.String())
	fmt.Println()
	return nil
}

func runCache(quick bool) error {
	films, runs := 2000, 5
	if quick {
		films, runs = 500, 3
	}
	report, err := experiments.Cache(films, runs)
	if err != nil {
		return err
	}
	fmt.Print(report.String())
	fmt.Println()
	return nil
}

func runAB() error {
	report, err := experiments.Ablations()
	if err != nil {
		return err
	}
	fmt.Println("Ablations (design choices of DESIGN.md)")
	fmt.Printf("  schema-gen pruning:      on=%-12v off=%v (identical outputs)\n",
		report.PruningOn, report.PruningOff)
	fmt.Printf("  join ordering (total budget 6): MOVIE tuples weight-ordered=%d fifo=%d\n",
		report.WeightOrderMovieTuples, report.FIFOMovieTuples)
	fmt.Printf("  in-degree postponement:  children with=%d without=%d (2 vs 1 expected)\n\n",
		report.PostponedChildren, report.EagerChildren)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "precis-bench: %v\n", err)
	os.Exit(1)
}

func printSeries(s experiments.Series, csv bool) {
	if !csv {
		fmt.Print(s.String())
		fmt.Println()
		return
	}
	fmt.Printf("# %s\nx,mean_us,runs\n", s.Name)
	for _, p := range s.Points {
		fmt.Printf("%d,%.2f,%d\n", p.X, float64(p.Mean.Microseconds()), p.Runs)
	}
	fmt.Println()
}

func runF7(quick, csv bool) error {
	cfg := experiments.DefaultF7Config()
	if quick {
		cfg.WeightSets = 4
		cfg.SeedRels = 4
	}
	s, err := experiments.Figure7(cfg)
	if err != nil {
		return err
	}
	printSeries(s, csv)
	return nil
}

func runF8(quick, csv bool) error {
	cfg := experiments.DefaultF8Config()
	if quick {
		cfg.Sets = 3
		cfg.SeedSets = 2
	}
	s, err := experiments.Figure8(cfg)
	if err != nil {
		return err
	}
	printSeries(s, csv)
	return nil
}

func runF9(quick, csv bool) error {
	cfg := experiments.DefaultF9Config()
	if quick {
		cfg.Sets = 2
		cfg.SeedSets = 2
	}
	naive, rr, err := experiments.Figure9(cfg)
	if err != nil {
		return err
	}
	printSeries(naive, csv)
	printSeries(rr, csv)
	return nil
}

func runCM(quick, csv bool) error {
	cfg := experiments.DefaultF8Config()
	if quick {
		cfg.Cardinalities = []int{10, 50, 90}
	}
	report, err := experiments.CostModel(cfg, 5*time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Println("Cost model validation (Formulas 1-3)")
	fmt.Printf("  calibrated: %v\n", report.Params)
	if csv {
		fmt.Println("cR,predicted_us,measured_us")
		for _, row := range report.Rows {
			fmt.Printf("%d,%.2f,%.2f\n", row.CR,
				float64(row.Predicted.Microseconds()), float64(row.Measured.Microseconds()))
		}
	} else {
		for _, row := range report.Rows {
			fmt.Printf("  cR=%-4d predicted=%-12v measured=%v\n", row.CR, row.Predicted, row.Measured)
		}
	}
	fmt.Printf("  Formula 3: budget %v over %d relations -> cR = %d (achieved %v)\n\n",
		report.Budget, 4, report.SolvedCR, report.Achieved)
	return nil
}

func runQE() error {
	report, err := experiments.RunningExample()
	if err != nil {
		return err
	}
	fmt.Println("Running example (Q = {\"Woody Allen\"}, w >= 0.9, <= 3 tuples/relation)")
	fmt.Printf("  result schema relations: %v\n", report.SchemaRelations)
	fmt.Printf("  MOVIE in-degree: %d (paper: 2)\n", report.MovieInDegree)
	fmt.Printf("  tuples per relation: %v\n", report.TuplesPerRel)
	fmt.Printf("  valid sub-database: %v\n", report.SubDatabaseOK)
	fmt.Printf("  narrative:\n    %s\n\n", strings.ReplaceAll(report.Narrative, "\n", "\n    "))
	return nil
}

func runBL(quick bool) error {
	films, queries := 2000, 50
	if quick {
		films, queries = 300, 10
	}
	report, err := experiments.Baselines(films, queries)
	if err != nil {
		return err
	}
	fmt.Println("Baseline contrast (§2)")
	fmt.Printf("  %d director-name queries over %d films (means)\n", report.Queries, films)
	fmt.Printf("  précis:          %-12v %.1f relations, %.1f attributes, %.1f tuples\n",
		report.PrecisTime, report.PrecisRelations, report.PrecisAttributes, report.PrecisTuples)
	fmt.Printf("  attribute-pair:  %-12v %.1f flat matches\n", report.AttrPairTime, report.AttrPairMatches)
	fmt.Printf("  tuple-tree:      %-12v %.1f joined trees\n\n", report.TupleTreeTime, report.TupleTreeResults)
	return nil
}

// Command precis answers précis queries interactively or one-shot over the
// example movies database or a synthetic IMDB-like database.
//
// Usage:
//
//	precis [flags] ["query terms"]
//
//	precis '"Woody Allen"'
//	precis -w 0.5 -card 5 '"Match Point"'
//	precis -db synthetic -films 5000 'Drama'
//	precis                              # interactive REPL on stdin
//
// Flags:
//
//	-db example|synthetic   data source (default example)
//	-films N                synthetic film count (default 2000)
//	-seed N                 synthetic generator seed
//	-w FLOAT                degree: min projection path weight (default 0.8)
//	-attrs N                degree: max distinct attributes (0 = off)
//	-card N                 cardinality: max tuples per relation (default 10)
//	-total N                cardinality: max total tuples (0 = off)
//	-strategy auto|naiveq|roundrobin
//	-schema                 print the result schema
//	-tables                 print the result database tables
//	-quiet                  suppress the narrative
//	-dump DIR               export the result database as CSV + manifest
//	-dot                    print the schema graph in Graphviz dot syntax
//	-xml FILE               query an XML document (shredded automatically)
//	-graph FILE             load a designer-authored schema graph (JSON)
//	-dumpgraph FILE         write the current schema graph as JSON and exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"precis"
	"precis/internal/dataset"
	"precis/internal/schemagraph"
	"precis/internal/storage"
	"precis/internal/xmlmap"
)

func main() {
	var (
		dbKind   = flag.String("db", "example", "data source: example or synthetic")
		films    = flag.Int("films", 2000, "synthetic film count")
		seed     = flag.Int64("seed", 1, "synthetic generator seed")
		minW     = flag.Float64("w", 0.8, "degree constraint: minimum projection path weight")
		attrs    = flag.Int("attrs", 0, "degree constraint: max distinct attributes (0 = unused)")
		card     = flag.Int("card", 10, "cardinality constraint: max tuples per relation")
		total    = flag.Int("total", 0, "cardinality constraint: max total tuples (0 = unused)")
		strategy = flag.String("strategy", "auto", "tuple retrieval: auto, naiveq or roundrobin")
		schema   = flag.Bool("schema", false, "print the result schema")
		tables   = flag.Bool("tables", false, "print the result database tables")
		quiet    = flag.Bool("quiet", false, "suppress the narrative")
		dump     = flag.String("dump", "", "export the result database as CSV into this directory")
		dot      = flag.Bool("dot", false, "print the schema graph in Graphviz dot syntax and exit")
		xmlIn    = flag.String("xml", "", "query an XML document instead of the movies data (shredded via xmlmap)")
		graphIn  = flag.String("graph", "", "load the schema graph (weights, headings, templates) from this JSON file")
		graphOut = flag.String("dumpgraph", "", "write the schema graph as JSON to this file and exit")
	)
	flag.Parse()

	var eng *precis.Engine
	var err error
	if *xmlIn != "" {
		eng, err = buildXMLEngine(*xmlIn, *graphIn)
	} else {
		eng, err = buildEngine(*dbKind, *films, *seed, *graphIn)
	}
	if err != nil {
		fatal(err)
	}
	if *graphOut != "" {
		f, err := os.Create(*graphOut)
		if err != nil {
			fatal(err)
		}
		if err := eng.Graph().SaveJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("schema graph written to %s\n", *graphOut)
		return
	}
	if *dot {
		fmt.Print(eng.Graph().DOT(*dbKind + " movies"))
		return
	}
	opts, err := buildOptions(*minW, *attrs, *card, *total, *strategy)
	if err != nil {
		fatal(err)
	}
	opts.SkipNarrative = *quiet

	run := func(query string) {
		ans, err := eng.QueryString(query, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		printAnswer(ans, *schema, *tables, *quiet)
		if *dump != "" {
			if err := storage.Export(ans.Database, *dump); err != nil {
				fmt.Fprintf(os.Stderr, "export: %v\n", err)
				return
			}
			fmt.Printf("result database exported to %s\n", *dump)
		}
	}

	if flag.NArg() > 0 {
		run(strings.Join(flag.Args(), " "))
		return
	}

	fmt.Println("précis interactive mode — type a query, or 'quit' to exit")
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("précis> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		run(line)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "precis: %v\n", err)
	os.Exit(1)
}

// buildEngine loads the selected dataset and wires the précis engine with
// the movie-domain narrative annotations and standard macros. A non-empty
// graphFile overrides the built-in graph with a designer-authored one.
func buildEngine(kind string, films int, seed int64, graphFile string) (*precis.Engine, error) {
	var (
		db  *storage.Database
		g   *schemagraph.Graph
		err error
	)
	switch kind {
	case "example":
		db, g, err = dataset.ExampleMovies()
		if err != nil {
			return nil, err
		}
	case "synthetic":
		cfg := dataset.DefaultSyntheticConfig()
		cfg.Films = films
		cfg.Seed = seed
		db, err = dataset.SyntheticMovies(cfg)
		if err != nil {
			return nil, err
		}
		g, err = dataset.PaperGraph(db)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown -db %q (want example or synthetic)", kind)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		return nil, err
	}
	if graphFile != "" {
		f, err := os.Open(graphFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err = schemagraph.LoadJSON(f)
		if err != nil {
			return nil, err
		}
	}
	eng, err := precis.New(db, g)
	if err != nil {
		return nil, err
	}
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// buildXMLEngine shreds an XML document and wires an engine over it; an
// optional graph file overrides the derived weights and templates.
func buildXMLEngine(path, graphFile string) (*precis.Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := xmlmap.Shred(f)
	if err != nil {
		return nil, err
	}
	g := res.Graph
	if graphFile != "" {
		gf, err := os.Open(graphFile)
		if err != nil {
			return nil, err
		}
		defer gf.Close()
		g, err = schemagraph.LoadJSON(gf)
		if err != nil {
			return nil, err
		}
	}
	return precis.New(res.DB, g)
}

func buildOptions(minW float64, attrs, card, total int, strategy string) (precis.Options, error) {
	var opts precis.Options
	degrees := []precis.DegreeConstraint{precis.MinPathWeight(minW)}
	if attrs > 0 {
		degrees = append(degrees, precis.MaxAttributes(attrs))
	}
	opts.Degree = precis.AllDegree(degrees...)
	cards := []precis.CardinalityConstraint{precis.MaxTuplesPerRelation(card)}
	if total > 0 {
		cards = append(cards, precis.MaxTotalTuples(total))
	}
	opts.Cardinality = precis.AllCardinality(cards...)
	switch strategy {
	case "auto":
		opts.Strategy = precis.StrategyAuto
	case "naiveq":
		opts.Strategy = precis.StrategyNaive
	case "roundrobin":
		opts.Strategy = precis.StrategyRoundRobin
	default:
		return opts, fmt.Errorf("unknown -strategy %q", strategy)
	}
	return opts, nil
}

// printAnswer renders an answer to stdout.
func printAnswer(ans *precis.Answer, showSchema, showTables, quiet bool) {
	if len(ans.Unmatched) > 0 {
		fmt.Printf("(no occurrences for: %s)\n", strings.Join(ans.Unmatched, ", "))
	}
	if showSchema {
		fmt.Println("— result schema —")
		for _, rel := range ans.Schema.Relations() {
			fmt.Printf("  %s(%s)\n", rel, strings.Join(ans.Schema.Projections(rel), ", "))
		}
	}
	if showTables {
		fmt.Println("— result database —")
		printTables(ans)
	}
	if !quiet {
		fmt.Println(ans.Narrative)
	}
	fmt.Printf("\n[%d relations, %d tuples, %d queries issued]\n",
		ans.Database.NumRelations(), ans.Database.TotalTuples(), ans.Stats.Queries)
}

func printTables(ans *precis.Answer) {
	for _, rel := range ans.Database.RelationNames() {
		r := ans.Database.Relation(rel)
		cols := ans.Result.DisplayColumns(rel)
		if len(cols) == 0 {
			continue
		}
		fmt.Printf("  %s (%d tuples)\n", rel, r.Len())
		idx := make([]int, len(cols))
		for i, c := range cols {
			idx[i] = r.Schema().ColumnIndex(c)
		}
		fmt.Printf("    %s\n", strings.Join(cols, " | "))
		r.Scan(func(t storage.Tuple) bool {
			parts := make([]string, len(idx))
			for i, ci := range idx {
				parts[i] = t.Values[ci].String()
			}
			fmt.Printf("    %s\n", strings.Join(parts, " | "))
			return true
		})
	}
}

package precis

// Race-hardening suite. Run with `go test -race` (scripts/ci.sh does): the
// regression test below documents and pins the fix for a latent data race
// in the seed implementation, and the stress test hammers one shared engine
// from 32 goroutines mixing queries, profile reads, cache operations, and
// database mutations — asserting that the answer cache never serves a stale
// précis after an invalidating write.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"precis/internal/profile"
	"precis/internal/storage"
)

// TestProfilesConcurrentWithAddProfile is the regression test for a latent
// data race: Engine.Profiles() used to read the profile registry's map
// without holding the engine lock, racing with AddProfile's write under
// e.mu.Lock. Before Profiles() took e.mu.RLock this test failed under
// `go test -race` (concurrent map read and map write).
func TestProfilesConcurrentWithAddProfile(t *testing.T) {
	eng := newEngine(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p := profile.Reviewer()
				p.Name = fmt.Sprintf("reviewer-%d-%d", w, i)
				if err := eng.AddProfile(p); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = eng.Profiles() // must not race with the writers above
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(eng.Profiles()); got != 200 {
		t.Fatalf("registered 200 profiles, Profiles() reports %d", got)
	}
}

// TestEngineStress32 runs 32 goroutines against one shared engine with the
// answer cache enabled: queriers sweeping profiles, strategies, and worker
// counts; readers polling Profiles and CacheStats; invalidators purging the
// cache; and a mutator inserting movies with unique tokens, verifying each
// is immediately findable (an insert purges the cache under the write lock,
// so no reader may ever see a pre-insert answer for its token), then
// deleting it and verifying the token stops matching.
func TestEngineStress32(t *testing.T) {
	eng := newEngine(t)
	eng.EnableCache(CacheConfig{MaxEntries: 64})
	for _, p := range []*Profile{profile.Reviewer(), profile.Fan()} {
		if err := eng.AddProfile(p); err != nil {
			t.Fatal(err)
		}
	}

	const (
		queriers     = 20
		readers      = 4
		invalidators = 4
		mutators     = 4
		iters        = 30
	)
	queries := [][]string{
		{"Woody Allen"}, {"Match Point"}, {"Comedy"}, {"Scarlett Johansson"},
	}
	profiles := []string{"", "reviewer", "fan"}
	var wg sync.WaitGroup
	errs := make(chan error, queriers+readers+invalidators+mutators)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				opts := Options{
					Profile:       profiles[(w+i)%len(profiles)],
					Strategy:      []Strategy{StrategyAuto, StrategyNaive, StrategyRoundRobin}[i%3],
					SkipNarrative: i%2 == 0,
					Parallelism:   []int{-1, 2, 4}[w%3],
				}
				if _, err := eng.Query(queries[(w+i)%len(queries)], opts); err != nil {
					fail(fmt.Errorf("querier %d: %w", w, err))
					return
				}
			}
		}(w)
	}
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters*4; i++ {
				_ = eng.Profiles()
				_ = eng.CacheStats()
				_ = eng.CacheEnabled()
			}
		}()
	}
	for w := 0; w < invalidators; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				eng.InvalidateCache()
			}
		}()
	}

	// Mutators: insert a movie carrying a globally unique token, then query
	// that token through the cached path. The insert purged the cache under
	// the write lock, so the query must find the fresh tuple — a stale
	// cached ErrNoMatches would be a correctness bug, not a flake.
	var nextID atomic.Int64
	nextID.Store(10000)
	for w := 0; w < mutators; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters/3; i++ {
				mid := nextID.Add(1)
				token := fmt.Sprintf("zzstress%d", mid)
				title := "The " + strings.ToUpper(token[:1]) + token[1:] + " Affair"
				id, err := eng.Insert("MOVIE",
					storage.Int(mid), storage.String(title), storage.Int(2026), storage.Int(1))
				if err != nil {
					fail(fmt.Errorf("mutator %d insert: %w", w, err))
					return
				}
				ans, err := eng.Query([]string{token}, Options{SkipNarrative: true})
				if err != nil {
					fail(fmt.Errorf("mutator %d: fresh token %q not found after insert: %w", w, token, err))
					return
				}
				if ans.Database.TotalTuples() == 0 {
					fail(fmt.Errorf("mutator %d: empty answer for fresh token %q", w, token))
					return
				}
				if ok, err := eng.Delete("MOVIE", id); err != nil || !ok {
					fail(fmt.Errorf("mutator %d delete: ok=%v err=%v", w, ok, err))
					return
				}
				if _, err := eng.Query([]string{token}, Options{SkipNarrative: true}); !errors.Is(err, ErrNoMatches) {
					fail(fmt.Errorf("mutator %d: deleted token %q still matches (err=%v)", w, token, err))
					return
				}
			}
		}(w)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The cache must still be coherent: a fresh query pair (miss then hit)
	// returns identical answers.
	eng.InvalidateCache()
	a1, err := eng.Query([]string{"Woody Allen"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := eng.Query([]string{"Woody Allen"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Narrative != a2.Narrative {
		t.Fatalf("cache hit narrative differs from miss:\n%q\n%q", a1.Narrative, a2.Narrative)
	}
	st := eng.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("stress run recorded no cache hits: %+v", st)
	}
}

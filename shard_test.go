package precis

// Sharded-execution suite: a coordinator that scatters the précis pipeline
// over N embedded engines must be invisible in the answer. Every test here
// holds the sharded engine to the single-engine output byte for byte —
// result database dump, narrative, stats — across partitioners, shard
// counts, worker-pool sizes, budget-truncated partials, mutations, crash
// recovery, and a faulted concurrent storm. scripts/ci.sh runs the suite
// under -race.

import (
	"errors"
	"fmt"
	"io"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"precis/internal/dataset"
	"precis/internal/faultinject"
	"precis/internal/storage"
)

var shardCounts = []int{1, 2, 4, 8}

func shardCountsForTest() []int {
	if testing.Short() {
		return []int{1, 4}
	}
	return shardCounts
}

// newShardedEngine builds a fresh in-memory sharded engine over its own
// copy of the example-movies dataset.
func newShardedEngine(t *testing.T, shards int, partitioner string) *Engine {
	t.Helper()
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	eng, err := NewSharded(db, g, ShardedConfig{Shards: shards, Partitioner: partitioner})
	if err != nil {
		t.Fatal(err)
	}
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// TestShardedDeterminism sweeps every dataset × partitioner × shard count
// × strategy × pool size and requires the sharded answer to be
// byte-identical to the single-engine serial answer: same result database
// (content and insertion order), same narrative, same tuple counts.
func TestShardedDeterminism(t *testing.T) {
	for _, w := range determinismWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			db, g, err := w.build()
			if err != nil {
				t.Fatal(err)
			}
			single, err := New(db, g)
			if err != nil {
				t.Fatal(err)
			}
			if w.narrative {
				for _, def := range dataset.StandardMacros() {
					if err := single.DefineMacro(def); err != nil {
						t.Fatal(err)
					}
				}
			}
			terms := w.terms
			if terms == nil {
				terms = []string{mostProlificDirector(db)}
			}
			type refAnswer struct {
				dump, narrative string
				tuples          int
			}
			refs := map[Strategy]refAnswer{}
			for _, strat := range []Strategy{StrategyNaive, StrategyRoundRobin} {
				ans, err := single.Query(terms, Options{
					Degree:        MinPathWeight(0.1),
					Cardinality:   MaxTuplesPerRelation(20),
					Strategy:      strat,
					SkipNarrative: !w.narrative,
					Parallelism:   -1, // serial single-engine reference
				})
				if err != nil {
					t.Fatal(err)
				}
				refs[strat] = refAnswer{dumpDatabase(ans.Database), ans.Narrative, ans.Stats.TotalTuples}
			}
			for _, partitioner := range []string{"hash", "range"} {
				for _, shards := range shardCountsForTest() {
					t.Run(fmt.Sprintf("%s-%d", partitioner, shards), func(t *testing.T) {
						eng, err := NewSharded(db, g, ShardedConfig{Shards: shards, Partitioner: partitioner})
						if err != nil {
							t.Fatal(err)
						}
						if w.narrative {
							for _, def := range dataset.StandardMacros() {
								if err := eng.DefineMacro(def); err != nil {
									t.Fatal(err)
								}
							}
						}
						for _, strat := range []Strategy{StrategyNaive, StrategyRoundRobin} {
							ref := refs[strat]
							for _, workers := range []int{-1, 4} {
								ans, err := eng.Query(terms, Options{
									Degree:        MinPathWeight(0.1),
									Cardinality:   MaxTuplesPerRelation(20),
									Strategy:      strat,
									SkipNarrative: !w.narrative,
									Parallelism:   workers,
								})
								if err != nil {
									t.Fatalf("%v workers=%d: %v", strat, workers, err)
								}
								if got := dumpDatabase(ans.Database); got != ref.dump {
									t.Fatalf("%v workers=%d: sharded result database differs from single engine\n--- single ---\n%s\n--- sharded ---\n%s",
										strat, workers, ref.dump, got)
								}
								if ans.Narrative != ref.narrative {
									t.Fatalf("%v workers=%d: narrative differs\nsingle:  %q\nsharded: %q",
										strat, workers, ref.narrative, ans.Narrative)
								}
								if ans.Stats.TotalTuples != ref.tuples {
									t.Fatalf("%v workers=%d: %d tuples vs single-engine %d",
										strat, workers, ans.Stats.TotalTuples, ref.tuples)
								}
							}
						}
					})
				}
			}
		})
	}
}

// TestShardedBudgetPartialDeterminism requires budget-truncated partial
// answers to stay exact prefixes under sharding: same Partial flag, same
// truncation reason, same result database and narrative as the
// single-engine partial for every shard count.
func TestShardedBudgetPartialDeterminism(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	single, err := New(db, g)
	if err != nil {
		t.Fatal(err)
	}
	budgets := []Budget{
		{MaxTuples: 5},
		{MaxJoinSteps: 1},
		{MaxResultBytes: 256},
	}
	for bi, b := range budgets {
		opts := Options{Budget: b, Parallelism: -1}
		ref, err := single.Query([]string{"Woody Allen"}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !ref.Partial {
			t.Fatalf("budget %d: single-engine answer not partial (budget too generous for the test)", bi)
		}
		refDump := dumpDatabase(ref.Database)
		for _, shards := range shardCountsForTest() {
			eng, err := NewSharded(db, g, ShardedConfig{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{-1, 4} {
				opts.Parallelism = workers
				ans, err := eng.Query([]string{"Woody Allen"}, opts)
				if err != nil {
					t.Fatalf("budget %d shards=%d workers=%d: %v", bi, shards, workers, err)
				}
				if ans.Partial != ref.Partial || ans.Truncation != ref.Truncation {
					t.Fatalf("budget %d shards=%d: partial=%v/%q, single engine %v/%q",
						bi, shards, ans.Partial, ans.Truncation, ref.Partial, ref.Truncation)
				}
				if got := dumpDatabase(ans.Database); got != refDump {
					t.Fatalf("budget %d shards=%d workers=%d: partial prefix differs\n--- single ---\n%s\n--- sharded ---\n%s",
						bi, shards, workers, refDump, got)
				}
				if ans.Narrative != ref.Narrative {
					t.Fatalf("budget %d shards=%d: partial narrative differs", bi, shards)
				}
			}
		}
	}
}

// shardMutationScript applies the same deterministic mutation sequence to
// any engine (sharded or not) and returns the allocated tuple ids.
func shardMutationScript(t *testing.T, e *Engine) []storage.TupleID {
	t.Helper()
	var ids []storage.TupleID
	id, err := e.Insert("DIRECTOR", storage.Int(900), storage.String("Greta Gerwig"), storage.String("Sacramento"), storage.String("1983"))
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, id)
	mid, err := e.Insert("MOVIE", storage.Int(910), storage.String("Lady Bird"), storage.Int(2017), storage.Int(900))
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, mid)
	if err := e.Update("DIRECTOR", id, []storage.Value{storage.Int(900), storage.String("Greta Gerwig"), storage.String("Sacramento, California"), storage.String("1983")}); err != nil {
		t.Fatal(err)
	}
	gid, err := e.Insert("GENRE", storage.Int(910), storage.String("Coming-of-age"))
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, gid)
	gid2, err := e.Insert("GENRE", storage.Int(910), storage.String("Scrapped"))
	if err != nil {
		t.Fatal(err)
	}
	deleted, err := e.Delete("GENRE", gid2)
	if err != nil {
		t.Fatal(err)
	}
	if !deleted {
		t.Fatal("delete was a no-op")
	}
	if err := e.AddSynonym("gerwig", "Greta Gerwig"); err != nil {
		t.Fatal(err)
	}
	if err := e.DefineMacro(`DEFINE SHARD_TEST as "macro survived."`); err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestShardedMutationParity routes the same mutation sequence through a
// sharded coordinator and a single engine and requires identical tuple-id
// allocation and identical answers afterwards — including a lookup through
// the fanned-out synonym.
func TestShardedMutationParity(t *testing.T) {
	db1, g1, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g1); err != nil {
		t.Fatal(err)
	}
	single, err := New(db1, g1)
	if err != nil {
		t.Fatal(err)
	}
	for _, partitioner := range []string{"hash", "range"} {
		t.Run(partitioner, func(t *testing.T) {
			sharded := newShardedEngine(t, 3, partitioner)
			// A fresh single engine per partitioner so both sides start from
			// the same seed state.
			db, g, err := dataset.ExampleMovies()
			if err != nil {
				t.Fatal(err)
			}
			if err := dataset.AnnotateNarrative(g); err != nil {
				t.Fatal(err)
			}
			single, err = New(db, g)
			if err != nil {
				t.Fatal(err)
			}
			for _, def := range dataset.StandardMacros() {
				if err := single.DefineMacro(def); err != nil {
					t.Fatal(err)
				}
			}
			singleIDs := shardMutationScript(t, single)
			shardedIDs := shardMutationScript(t, sharded)
			if len(singleIDs) != len(shardedIDs) {
				t.Fatalf("id count differs: %v vs %v", singleIDs, shardedIDs)
			}
			for i := range singleIDs {
				if singleIDs[i] != shardedIDs[i] {
					t.Fatalf("mutation %d allocated id %d on the single engine, %d sharded",
						i, singleIDs[i], shardedIDs[i])
				}
			}
			if single.TotalTuples() != sharded.TotalTuples() {
				t.Fatalf("tuple counts diverged: single %d, sharded %d", single.TotalTuples(), sharded.TotalTuples())
			}
			for _, q := range []string{"Greta Gerwig", "gerwig", "Woody Allen"} {
				ref, err := single.QueryString(q, Options{})
				if err != nil {
					t.Fatalf("%q: single engine: %v", q, err)
				}
				ans, err := sharded.QueryString(q, Options{})
				if err != nil {
					t.Fatalf("%q: sharded: %v", q, err)
				}
				if got, want := dumpDatabase(ans.Database), dumpDatabase(ref.Database); got != want {
					t.Fatalf("%q: post-mutation answers differ\n--- single ---\n%s\n--- sharded ---\n%s", q, want, got)
				}
				if ans.Narrative != ref.Narrative {
					t.Fatalf("%q: post-mutation narrative differs\nsingle:  %q\nsharded: %q", q, ref.Narrative, ans.Narrative)
				}
			}
		})
	}
}

// TestShardedCache: the answer cache sits on the coordinator, keyed
// exactly as on a single engine — hits are served without re-scattering,
// and any mutation invalidates.
func TestShardedCache(t *testing.T) {
	eng := newShardedEngine(t, 4, "hash")
	eng.EnableCache(CacheConfig{MaxEntries: 16})
	first, err := eng.QueryString("Woody Allen", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.FromCache {
		t.Fatal("first query served from an empty cache")
	}
	scatters := eng.ShardStats() // topology probe only; scatter count via second query below
	_ = scatters
	second, err := eng.QueryString("Woody Allen", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromCache {
		t.Fatal("repeat query missed the cache")
	}
	if got, want := dumpDatabase(second.Database), dumpDatabase(first.Database); got != want {
		t.Fatalf("cached answer differs from computed answer\n--- computed ---\n%s\n--- cached ---\n%s", want, got)
	}
	if _, err := eng.Insert("GENRE", storage.Int(902), storage.String("Noir")); err != nil {
		t.Fatal(err)
	}
	third, err := eng.QueryString("Woody Allen", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if third.FromCache {
		t.Fatal("mutation did not invalidate the sharded answer cache")
	}
}

func quietShardPersist(dir string) PersistConfig {
	return PersistConfig{
		Dir:             dir,
		Fsync:           FsyncNever,
		CheckpointBytes: -1,
		Logger:          log.New(io.Discard, "", 0),
	}
}

// TestShardedPersistence: each shard persists into its own subdirectory;
// Close + reopen restores the exact coordinator state, and reopening with
// a mismatched topology is refused rather than silently misrouting.
func TestShardedPersistence(t *testing.T) {
	dir := t.TempDir()
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	cfg := ShardedConfig{Shards: 3, Partitioner: "range", Persist: quietShardPersist(dir)}
	eng, err := NewSharded(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			t.Fatal(err)
		}
	}
	shardMutationScript(t, eng)
	ref, err := eng.QueryString("gerwig", Options{})
	if err != nil {
		t.Fatal(err)
	}
	refDump := dumpDatabase(ref.Database)
	refTuples := eng.TotalTuples()
	refStats := eng.ShardStats()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// The seed database handed to the reopen is ignored: recovery rebuilds
	// every shard from its own snapshot+WAL.
	db2, g2, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g2); err != nil {
		t.Fatal(err)
	}
	re, err := NewSharded(db2, g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.TotalTuples(); got != refTuples {
		t.Fatalf("recovered %d tuples, want %d", got, refTuples)
	}
	reStats := re.ShardStats()
	for i := range refStats.ShardInfo {
		if reStats.ShardInfo[i].Tuples != refStats.ShardInfo[i].Tuples ||
			reStats.ShardInfo[i].NextTupleID != refStats.ShardInfo[i].NextTupleID {
			t.Fatalf("shard %d recovered to %d tuples/next=%d, want %d/%d", i,
				reStats.ShardInfo[i].Tuples, reStats.ShardInfo[i].NextTupleID,
				refStats.ShardInfo[i].Tuples, refStats.ShardInfo[i].NextTupleID)
		}
	}
	// The synonym and macro were fanned out to every shard's WAL, so the
	// same query (through the synonym) must reproduce the same answer.
	ans, err := re.QueryString("gerwig", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := dumpDatabase(ans.Database); got != refDump {
		t.Fatalf("recovered answer differs\n--- before ---\n%s\n--- after ---\n%s", refDump, got)
	}
	if ans.Narrative != ref.Narrative {
		t.Fatalf("recovered narrative differs\nbefore: %q\nafter:  %q", ref.Narrative, ans.Narrative)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Topology mismatch: the manifest pins 3 range shards.
	for _, bad := range []ShardedConfig{
		{Shards: 4, Partitioner: "range", Persist: quietShardPersist(dir)},
		{Shards: 3, Partitioner: "hash", Persist: quietShardPersist(dir)},
	} {
		if _, err := NewSharded(db2, g2, bad); err == nil || !strings.Contains(err.Error(), "misroute") {
			t.Fatalf("topology mismatch %d/%s accepted (err=%v)", bad.Shards, bad.Partitioner, err)
		}
	}
}

// TestShardedCrashRecovery kills a sharded engine mid-storm — every shard
// directory abandoned without Close, WAL tails unflushed beyond what
// FsyncAlways already committed — and requires the reopened coordinator to
// match the never-crashed in-memory engine exactly.
func TestShardedCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	cfg := ShardedConfig{Shards: 3, Partitioner: "hash", Persist: PersistConfig{
		Dir:             dir,
		Fsync:           FsyncAlways,
		CheckpointBytes: -1,
		Logger:          log.New(io.Discard, "", 0),
	}}
	eng, err := NewSharded(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Note: never Closed — the directories are abandoned mid-flight below.

	const goroutines = 8
	iters := chaosIters(25)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if i%3 == 0 {
					if _, err := eng.Query([]string{"Woody Allen"}, Options{SkipNarrative: true}); err != nil {
						select {
						case errs <- fmt.Errorf("worker %d: query: %w", w, err):
						default:
						}
						return
					}
					continue
				}
				name := fmt.Sprintf("Crashtest Dummy-%d-%d", w, i)
				if _, err := eng.Insert("DIRECTOR", storage.Int(int64(1000+w*100+i)), storage.String(name), storage.String("Nowhere"), storage.String("1990")); err != nil {
					select {
					case errs <- fmt.Errorf("worker %d: insert: %w", w, err):
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The never-crashed reference is the live engine itself: FsyncAlways
	// means everything it acknowledged is on disk.
	refTuples := eng.TotalTuples()
	refStats := eng.ShardStats()
	refAns, err := eng.Query([]string{"Crashtest"}, Options{SkipNarrative: true})
	if err != nil {
		t.Fatal(err)
	}
	refDump := dumpDatabase(refAns.Database)

	// "Crash": reopen the same directories in a second coordinator without
	// ever closing the first.
	db2, g2, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g2); err != nil {
		t.Fatal(err)
	}
	re, err := NewSharded(db2, g2, cfg)
	if err != nil {
		t.Fatalf("recovery after crash: %v", err)
	}
	defer re.Close()
	if got := re.TotalTuples(); got != refTuples {
		t.Fatalf("recovered %d tuples, never-crashed engine holds %d", got, refTuples)
	}
	reStats := re.ShardStats()
	for i := range refStats.ShardInfo {
		if reStats.ShardInfo[i].Tuples != refStats.ShardInfo[i].Tuples ||
			reStats.ShardInfo[i].NextTupleID != refStats.ShardInfo[i].NextTupleID {
			t.Fatalf("shard %d recovered to %d tuples/next=%d, reference %d/%d", i,
				reStats.ShardInfo[i].Tuples, reStats.ShardInfo[i].NextTupleID,
				refStats.ShardInfo[i].Tuples, refStats.ShardInfo[i].NextTupleID)
		}
		if !reStats.ShardInfo[i].Persist.Recovery.SnapshotLoaded {
			t.Fatalf("shard %d recovery did not load its snapshot", i)
		}
	}
	ans, err := re.Query([]string{"Crashtest"}, Options{SkipNarrative: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := dumpDatabase(ans.Database); got != refDump {
		t.Fatalf("recovered answer differs from never-crashed reference\n--- reference ---\n%s\n--- recovered ---\n%s", refDump, got)
	}
	// The recovered coordinator keeps serving mutations: ids resume above
	// the reference watermark.
	id, err := re.Insert("DIRECTOR", storage.Int(2000), storage.String("Post Crash"), storage.String("X"), storage.String("2000"))
	if err != nil {
		t.Fatal(err)
	}
	if int64(id) < refStats.ShardInfo[0].NextTupleID && int64(id) < refStats.ShardInfo[1].NextTupleID {
		t.Fatalf("post-recovery insert reused id %d below the watermark", id)
	}
}

var errShardInjected = errors.New("shardchaos: injected fault")

// TestShardedChaos is the sharding chaos regression: rotating err/delay
// faults at shard.scatter, shard.gather, and shard.apply while 24
// goroutines hammer a sharded coordinator with queries and mutations.
// Every operation must either produce the deterministic answer or fail
// with a typed, injected error — never a torn answer, never a deadlock —
// and the engine must account for exactly the mutations that succeeded.
func TestShardedChaos(t *testing.T) {
	eng := newShardedEngine(t, 4, "hash")
	eng.EnableCache(CacheConfig{MaxEntries: 32})

	// Reference answers, computed before any fault is armed. The storm's
	// inserts add directors with no films, which never join into these
	// précis, so every successful storm answer must equal its reference.
	type ref struct {
		dump      string
		narrative string
	}
	queries := []string{"Woody Allen", "Match Point", "Scarlett Johansson"}
	refs := make(map[string]ref, len(queries))
	for _, q := range queries {
		ans, err := eng.QueryString(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		refs[q] = ref{dumpDatabase(ans.Database), ans.Narrative}
	}
	baseTuples := eng.TotalTuples()

	// Rotating fault plans: each phase of the storm arms a different mix
	// of scatter/gather/apply faults.
	plans := []*faultinject.Plan{
		faultinject.NewPlan().
			Set(faultinject.SiteShardScatter, faultinject.Rule{Err: errShardInjected, Every: 13}).
			Set(faultinject.SiteShardGather, faultinject.Rule{Delay: 50 * time.Microsecond, Every: 5}),
		faultinject.NewPlan().
			Set(faultinject.SiteShardGather, faultinject.Rule{Err: errShardInjected, Every: 11}).
			Set(faultinject.SiteShardScatter, faultinject.Rule{Delay: 100 * time.Microsecond, Every: 7}),
		faultinject.NewPlan().
			Set(faultinject.SiteShardApply, faultinject.Rule{Err: errShardInjected, Every: 5}).
			Set(faultinject.SiteShardScatter, faultinject.Rule{Err: errShardInjected, Every: 17, After: 3}),
	}

	const goroutines = 24
	iters := chaosIters(60)
	var inserted atomic.Int64
	var injectedSeen atomic.Int64
	var nextDID atomic.Int64
	nextDID.Store(5000) // unique primary keys across the storm

	for phase, plan := range plans {
		deactivate := faultinject.Activate(plan)
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		fail := func(err error) {
			select {
			case errs <- err:
			default:
			}
		}
		for w := 0; w < goroutines; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					if (w+i)%6 == 5 {
						// Mutation: a director with no films (invisible to the
						// reference queries).
						name := fmt.Sprintf("Chaos Extra-%d-%d-%d", phase, w, i)
						_, err := eng.Insert("DIRECTOR", storage.Int(nextDID.Add(1)), storage.String(name), storage.String("Void"), storage.String("1991"))
						if err != nil {
							if errors.Is(err, errShardInjected) {
								injectedSeen.Add(1)
								continue
							}
							fail(fmt.Errorf("phase %d worker %d: unsanctioned insert error: %w", phase, w, err))
							return
						}
						inserted.Add(1)
						continue
					}
					q := queries[(w+i)%len(queries)]
					ans, err := eng.QueryString(q, Options{Parallelism: []int{-1, 2, 4}[w%3]})
					if err != nil {
						if errors.Is(err, errShardInjected) || errors.Is(err, ErrInternal) {
							injectedSeen.Add(1)
							continue
						}
						fail(fmt.Errorf("phase %d worker %d: unsanctioned query error: %w", phase, w, err))
						return
					}
					want := refs[q]
					if got := dumpDatabase(ans.Database); got != want.dump {
						fail(fmt.Errorf("phase %d worker %d: torn answer for %q\n--- want ---\n%s\n--- got ---\n%s",
							phase, w, q, want.dump, got))
						return
					}
					if ans.Narrative != want.narrative {
						fail(fmt.Errorf("phase %d worker %d: torn narrative for %q", phase, w, q))
						return
					}
				}
			}(w)
		}
		wg.Wait()
		deactivate()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		fired := plan.Fired(faultinject.SiteShardScatter) + plan.Fired(faultinject.SiteShardGather) + plan.Fired(faultinject.SiteShardApply)
		if fired == 0 {
			t.Fatalf("phase %d: no shard fault ever fired — the storm did not exercise the sites", phase)
		}
	}
	if injectedSeen.Load() == 0 {
		t.Fatal("no operation ever observed an injected shard fault")
	}

	// Exactly the acknowledged inserts landed: nothing torn, nothing lost.
	if got, want := eng.TotalTuples(), baseTuples+int(inserted.Load()); got != want {
		t.Fatalf("after the storm the engine holds %d tuples, want %d (base %d + %d acked inserts)",
			got, want, baseTuples, inserted.Load())
	}
	// And with all faults disarmed the answers are still byte-identical.
	for _, q := range queries {
		ans, err := eng.QueryString(q, Options{})
		if err != nil {
			t.Fatalf("post-storm %q: %v", q, err)
		}
		if got := dumpDatabase(ans.Database); got != refs[q].dump {
			t.Fatalf("post-storm answer for %q differs from pre-storm reference", q)
		}
	}
}

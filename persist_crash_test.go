package precis

// Crash-torture suite: a scripted mutation workload runs on a persistent
// engine, then the data directory is "crashed" by truncating the WAL at
// every byte offset. Every recovery must yield a state identical — tuple
// IDs, scan order, answers, narrative — to an in-memory reference engine
// that applied exactly the mutations whose records survived whole. A
// truncation may lose a clean log suffix, never corrupt state, and a
// flipped bit anywhere must be detected and named, not absorbed.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"precis/internal/dataset"
	"precis/internal/storage"
	"precis/internal/wal"
)

// crashMutation applies scripted mutation i to an engine. The script
// covers every WAL-logged mutation kind; its effects are deterministic, so
// two engines that applied the same prefix are state-identical.
func crashMutation(e *Engine, i int) error {
	switch i {
	case 0:
		_, err := e.Insert("DIRECTOR", storage.Int(900), storage.String("Greta Gerwig"), storage.String("Sacramento"), storage.String("1983"))
		return err
	case 1:
		_, err := e.Insert("MOVIE", storage.Int(910), storage.String("Lady Bird"), storage.Int(2017), storage.Int(900))
		return err
	case 2:
		_, err := e.Insert("GENRE", storage.Int(910), storage.String("Drama"))
		return err
	case 3:
		// Update the director row in place (ID 0 of this script's inserts is
		// deterministic: the engine allocates sequentially from a fixed seed
		// database, so recompute it from the data).
		id, ok := findDirector(e, "Greta Gerwig")
		if !ok {
			return fmt.Errorf("script: director not found for update")
		}
		return e.Update("DIRECTOR", id, []storage.Value{storage.Int(900), storage.String("Greta Gerwig"), storage.String("Sacramento, California"), storage.String("1983")})
	case 4:
		_, err := e.Insert("GENRE", storage.Int(910), storage.String("Coming-of-age"))
		return err
	case 5:
		id, ok := findGenre(e, "Coming-of-age")
		if !ok {
			return fmt.Errorf("script: genre not found for delete")
		}
		deleted, err := e.Delete("GENRE", id)
		if err == nil && !deleted {
			return fmt.Errorf("script: genre delete was a no-op")
		}
		return err
	case 6:
		e.AddSynonym("ladybird", "Lady Bird")
		return nil
	case 7:
		return e.DefineMacro(`DEFINE CRASH_TEST as "macro survived."`)
	case 8:
		_, err := e.Insert("MOVIE", storage.Int(911), storage.String("Little Women"), storage.Int(2019), storage.Int(900))
		return err
	case 9:
		_, err := e.Insert("GENRE", storage.Int(911), storage.String("Drama"))
		return err
	default:
		return fmt.Errorf("script: no mutation %d", i)
	}
}

const numCrashMutations = 10

func findDirector(e *Engine, name string) (storage.TupleID, bool) {
	return findTuple(e, "DIRECTOR", 1, name)
}

func findGenre(e *Engine, genre string) (storage.TupleID, bool) {
	return findTuple(e, "GENRE", 1, genre)
}

func findTuple(e *Engine, rel string, col int, want string) (id storage.TupleID, ok bool) {
	e.Database().Relation(rel).Scan(func(t storage.Tuple) bool {
		if t.Values[col].AsString() == want {
			id, ok = t.ID, true
			return false
		}
		return true
	})
	return id, ok
}

// newReferenceEngine builds the never-crashed in-memory engine with the
// first k scripted mutations applied.
func newReferenceEngine(t *testing.T, k int) *Engine {
	t.Helper()
	eng := newEngine(t) // example movies + narrative annotations + standard macros
	for i := 0; i < k; i++ {
		if err := crashMutation(eng, i); err != nil {
			t.Fatalf("reference mutation %d: %v", i, err)
		}
	}
	return eng
}

// refSnapshot captures everything the torture loop compares per prefix.
type refSnapshot struct {
	dump      string // canonical full-database dump
	ansDump   string // result database of the probe query ("" if no match)
	narrative string
}

const crashProbeQuery = `"Greta Gerwig" ladybird`

func captureRef(t *testing.T, e *Engine) refSnapshot {
	t.Helper()
	s := refSnapshot{dump: dumpDatabase(e.Database())}
	ans, err := e.QueryString(crashProbeQuery, Options{})
	if err != nil {
		if errors.Is(err, ErrNoMatches) {
			return s
		}
		t.Fatalf("probe query: %v", err)
	}
	s.ansDump = dumpDatabase(ans.Database)
	s.narrative = ans.Narrative
	return s
}

// buildCrashedDir runs the full script on a persistent engine and returns
// the snapshot file bytes and WAL bytes as the crash point captured them,
// plus the WAL record count contributed by engine setup (standard macros)
// before the script ran.
func buildCrashedDir(t *testing.T) (snapName string, snapRaw, walRaw []byte, preRecords int) {
	t.Helper()
	dir := t.TempDir()
	eng := openPersistent(t, dir) // logs the standard macros
	preRecords = int(eng.PersistStats().WALRecords)
	for i := 0; i < numCrashMutations; i++ {
		if err := crashMutation(eng, i); err != nil {
			t.Fatalf("persistent mutation %d: %v", i, err)
		}
	}
	// No Close: a crash never gets one. Grab the files as they stand.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		switch filepath.Ext(e.Name()) {
		case ".snap":
			snapName, snapRaw = e.Name(), raw
		case ".log":
			walRaw = raw
		}
	}
	if snapName == "" || walRaw == nil {
		t.Fatal("crashed dir is missing snapshot or WAL")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	return snapName, snapRaw, walRaw, preRecords
}

// walName mirrors the store's file naming for generation 1.
const gen1WAL = "wal-0000000000000001.log"

// TestCrashTortureKillAtEveryWALOffset truncates the WAL at every byte
// offset and recovers. The recovered engine must be state- and
// answer-identical to the reference engine holding exactly the mutations
// whose WAL records survived whole; the torn remainder is truncated, never
// misread.
func TestCrashTortureKillAtEveryWALOffset(t *testing.T) {
	snapName, snapRaw, walRaw, preRecords := buildCrashedDir(t)

	// Reference states per script prefix.
	refs := make([]refSnapshot, numCrashMutations+1)
	for k := 0; k <= numCrashMutations; k++ {
		refs[k] = captureRef(t, newReferenceEngine(t, k))
	}

	// Offsets 0..len(walRaw). In -short mode, stride through them; the full
	// run kills at every single byte.
	step := 1
	if testing.Short() {
		step = 13
	}
	recoveries := 0
	for cut := 0; cut <= len(walRaw); cut += step {
		// How many complete records does the truncated log hold?
		info, err := wal.ReplayBytes(walRaw[:cut], nil)
		if err != nil {
			t.Fatalf("cut %d: reference replay rejected a pure truncation: %v", cut, err)
		}
		k := info.Records - preRecords
		if k < 0 {
			k = 0 // still inside the setup macros
		}

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapName), snapRaw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, gen1WAL), walRaw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db, g, err := dataset.ExampleMovies()
		if err != nil {
			t.Fatal(err)
		}
		if err := dataset.AnnotateNarrative(g); err != nil {
			t.Fatal(err)
		}
		eng, err := Open(db, g, quietPersistConfig(dir))
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		recoveries++
		got := captureRef(t, eng)
		want := refs[k]
		if got.dump != want.dump {
			t.Fatalf("cut %d (%d script records): recovered database differs from reference:\nwant:\n%s\ngot:\n%s",
				cut, k, want.dump, got.dump)
		}
		if got.ansDump != want.ansDump {
			t.Fatalf("cut %d (%d script records): recovered answer differs from reference", cut, k)
		}
		if got.narrative != want.narrative {
			t.Fatalf("cut %d (%d script records): narrative differs:\nwant: %s\ngot:  %s", cut, k, want.narrative, got.narrative)
		}
		if err := eng.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
	t.Logf("crash torture: %d recoveries over a %d-byte WAL, all state-identical", recoveries, len(walRaw))
}

// TestCrashTortureWALBitFlips flips one bit in every byte of the WAL
// except the final record (where a flip is still detected, but exercised
// by the wal package's own tests) and requires recovery to fail with a
// CorruptionError naming the log file — committed records are never
// silently dropped or misparsed.
func TestCrashTortureWALBitFlips(t *testing.T) {
	snapName, snapRaw, walRaw, _ := buildCrashedDir(t)
	step := 1
	if testing.Short() {
		step = 13
	}
	for off := 0; off < len(walRaw); off += step {
		dir := t.TempDir()
		mut := append([]byte(nil), walRaw...)
		mut[off] ^= 0x20
		if err := os.WriteFile(filepath.Join(dir, snapName), snapRaw, 0o644); err != nil {
			t.Fatal(err)
		}
		walPath := filepath.Join(dir, gen1WAL)
		if err := os.WriteFile(walPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		db, g, err := dataset.ExampleMovies()
		if err != nil {
			t.Fatal(err)
		}
		_, err = Open(db, g, quietPersistConfig(dir))
		if err == nil {
			t.Fatalf("bit flip at WAL offset %d was silently accepted", off)
		}
		var ce *wal.CorruptionError
		if !errors.As(err, &ce) {
			t.Fatalf("bit flip at WAL offset %d: error is not a CorruptionError: %v", off, err)
		}
		if ce.File != walPath {
			t.Fatalf("bit flip at WAL offset %d blamed %q, want %q", off, ce.File, walPath)
		}
		if ce.Offset < 0 || ce.Offset > int64(off) {
			t.Fatalf("bit flip at WAL offset %d blamed offset %d (past the damage)", off, ce.Offset)
		}
	}
}

// TestCrashTortureSnapshotBitFlips flips bits across the snapshot file:
// with a WAL present, recovery must hard-fail on every one — falling back
// or absorbing the flip would serve corrupted state.
func TestCrashTortureSnapshotBitFlips(t *testing.T) {
	snapName, snapRaw, walRaw, _ := buildCrashedDir(t)
	step := 1
	if testing.Short() {
		step = 13
	}
	for off := 0; off < len(snapRaw); off += step {
		dir := t.TempDir()
		mut := append([]byte(nil), snapRaw...)
		mut[off] ^= 0x08
		if err := os.WriteFile(filepath.Join(dir, snapName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, gen1WAL), walRaw, 0o644); err != nil {
			t.Fatal(err)
		}
		db, g, err := dataset.ExampleMovies()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Open(db, g, quietPersistConfig(dir)); err == nil {
			t.Fatalf("bit flip at snapshot offset %d was silently accepted", off)
		}
	}
}

package precis

// Delta-chain crash torture: the scripted mutation workload from
// persist_crash_test.go runs with incremental checkpoints sprinkled in, so
// the data directory holds a chain — base snapshot + delta* + WAL tail —
// instead of a single snapshot. Recovery from every chain depth must be
// byte-identical (dump, answers, narrative) to the never-crashed reference;
// damage to any chain file must either heal byte-identically or fail with
// an attributed CorruptionError; damage to the persisted inverted index
// must never fail an open — it silently falls back to a rebuild.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"precis/internal/dataset"
	"precis/internal/invidx"
	"precis/internal/wal"
)

// deltaCkptAfter lists the mutation indices after which the chain tests
// take an incremental checkpoint (first d of them for depth d).
var deltaCkptAfter = []int{2, 5, 7}

// buildChainDir runs the full crash script with the first nCkpts scripted
// checkpoints and returns a crash-point copy of the data directory (taken
// before Close, which would flatten the chain).
func buildChainDir(t *testing.T, nCkpts int) string {
	t.Helper()
	dir := t.TempDir()
	eng := openPersistent(t, dir)
	done := 0
	for i := 0; i < numCrashMutations; i++ {
		if err := crashMutation(eng, i); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
		if done < nCkpts && deltaCkptAfter[done] == i {
			if err := eng.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after mutation %d: %v", i, err)
			}
			done++
		}
	}
	if done != nCkpts {
		t.Fatalf("took %d checkpoints, wanted %d", done, nCkpts)
	}
	if got := eng.PersistStats().ChainDepth; got != 1+nCkpts {
		t.Fatalf("live chain depth %d after %d delta checkpoints, want %d", got, nCkpts, 1+nCkpts)
	}
	crashed := copyDataDir(t, dir)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	return crashed
}

// reopenDir recovers a data directory with the standard quiet config.
func reopenDir(t *testing.T, dir string) (*Engine, error) {
	t.Helper()
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	return Open(db, g, quietPersistConfig(dir))
}

// TestDeltaChainRecoveryDepths recovers the same workload from chains of
// depth 1 (full snapshot only) through 4 (base + three deltas). Every
// recovery must be state-, answer-, and narrative-identical to the
// never-crashed reference engine.
func TestDeltaChainRecoveryDepths(t *testing.T) {
	want := captureRef(t, newReferenceEngine(t, numCrashMutations))
	for d := 0; d <= len(deltaCkptAfter); d++ {
		crashed := buildChainDir(t, d)
		eng, err := reopenDir(t, crashed)
		if err != nil {
			t.Fatalf("depth %d: recovery failed: %v", 1+d, err)
		}
		st := eng.PersistStats()
		if st.Recovery.ChainDepth != 1+d {
			t.Fatalf("recovered chain depth %d, want %d", st.Recovery.ChainDepth, 1+d)
		}
		if st.Recovery.DeltasApplied != d {
			t.Fatalf("recovery applied %d deltas, want %d", st.Recovery.DeltasApplied, d)
		}
		got := captureRef(t, eng)
		if got.dump != want.dump {
			t.Fatalf("depth %d: recovered database differs from reference:\nwant:\n%s\ngot:\n%s", 1+d, want.dump, got.dump)
		}
		if got.ansDump != want.ansDump {
			t.Fatalf("depth %d: recovered answer differs from reference", 1+d)
		}
		if got.narrative != want.narrative {
			t.Fatalf("depth %d: narrative differs:\nwant: %s\ngot:  %s", 1+d, want.narrative, got.narrative)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// chainFiles returns the base snapshot and the delta files (ascending) of a
// crashed chain directory.
func chainFiles(t *testing.T, dir string) (snap string, deltas []string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".snap":
			snap = e.Name()
		case ".dlt":
			deltas = append(deltas, e.Name())
		}
	}
	if snap == "" {
		t.Fatal("chain dir has no base snapshot")
	}
	return snap, deltas
}

// tortureChainFile damages one file of a crashed chain dir at every strided
// offset, both by bit flip and by truncation, and requires recovery to fail
// every time. wantCorruption additionally requires the error to be an
// attributed CorruptionError (delta damage is always detected as such; a
// damaged base snapshot may also surface as "no loadable snapshot").
func tortureChainFile(t *testing.T, src, name string, wantCorruption bool) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(src, name))
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if testing.Short() {
		step = 13
	}
	check := func(mode string, off int, dir string) {
		t.Helper()
		_, err := reopenDir(t, dir)
		if err == nil {
			t.Fatalf("%s of %s at offset %d was silently accepted", mode, name, off)
		}
		if wantCorruption {
			var ce *wal.CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("%s of %s at offset %d: error is not a CorruptionError: %v", mode, name, off, err)
			}
		}
	}
	for off := 0; off < len(raw); off += step {
		dir := copyDataDir(t, src)
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x08
		if err := os.WriteFile(filepath.Join(dir, name), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		check("bit flip", off, dir)
	}
	for cut := 0; cut < len(raw); cut += step {
		dir := copyDataDir(t, src)
		if err := os.WriteFile(filepath.Join(dir, name), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		check("truncation", cut, dir)
	}
}

// TestDeltaChainTortureEveryByte damages every byte of every chain file —
// the base snapshot and both deltas of a depth-3 chain. Committed deltas
// are only on disk once their covering logs are gone, so any damage must be
// a hard, attributed failure: dropping a delta would silently lose data.
func TestDeltaChainTortureEveryByte(t *testing.T) {
	src := buildChainDir(t, 2)
	snap, deltas := chainFiles(t, src)
	if len(deltas) != 2 {
		t.Fatalf("chain dir holds %d deltas, want 2", len(deltas))
	}
	// Sanity: the undamaged copy recovers.
	eng, err := reopenDir(t, copyDataDir(t, src))
	if err != nil {
		t.Fatalf("undamaged chain failed to recover: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	t.Run("base", func(t *testing.T) { tortureChainFile(t, src, snap, false) })
	for _, d := range deltas {
		d := d
		t.Run(d, func(t *testing.T) { tortureChainFile(t, src, d, true) })
	}
}

// buildIndexedDir produces a crash-point directory whose base is a full
// checkpoint with a persisted inverted index, plus a WAL tail of two more
// mutations, and returns it with the index file's name.
func buildIndexedDir(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	cfg := quietPersistConfig(dir)
	cfg.CompactEvery = -1 // every checkpoint is a full one (with index)
	eng, err := Open(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < numCrashMutations; i++ {
		if err := crashMutation(eng, i); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
		if i == 7 {
			if err := eng.Checkpoint(); err != nil {
				t.Fatalf("full checkpoint: %v", err)
			}
		}
	}
	crashed := copyDataDir(t, dir)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	var indexName string
	entries, err := os.ReadDir(crashed)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".pidx") {
			indexName = e.Name()
		}
	}
	if indexName == "" {
		t.Fatal("full checkpoint did not persist an index snapshot")
	}
	return crashed, indexName
}

// TestPersistedIndexRecovery: an untouched directory loads the persisted
// index (no rebuild) and answers identically to the reference.
func TestPersistedIndexRecovery(t *testing.T) {
	src, _ := buildIndexedDir(t)
	want := captureRef(t, newReferenceEngine(t, numCrashMutations))
	eng, err := reopenDir(t, copyDataDir(t, src))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if !eng.PersistStats().Recovery.IndexLoaded {
		t.Fatal("persisted index was not loaded on recovery")
	}
	got := captureRef(t, eng)
	if got.dump != want.dump || got.ansDump != want.ansDump || got.narrative != want.narrative {
		t.Fatal("recovery with loaded index differs from reference")
	}
}

// expectIndexFallback opens dir and requires a successful recovery that
// REBUILT the index (IndexLoaded false) yet answers identically.
func expectIndexFallback(t *testing.T, dir, mode string, want refSnapshot) {
	t.Helper()
	eng, err := reopenDir(t, dir)
	if err != nil {
		t.Fatalf("%s: index damage failed the open (must fall back): %v", mode, err)
	}
	defer eng.Close()
	if eng.PersistStats().Recovery.IndexLoaded {
		t.Fatalf("%s: damaged index reported as loaded", mode)
	}
	got := captureRef(t, eng)
	if got.dump != want.dump || got.ansDump != want.ansDump || got.narrative != want.narrative {
		t.Fatalf("%s: fallback recovery differs from reference", mode)
	}
}

// TestPersistedIndexTortureEveryByte damages every byte of the persisted
// index — flips and truncations — plus a stale generation stamp and a
// missing file. Every case must open successfully, silently rebuilding;
// index damage is never allowed to fail recovery or corrupt answers.
func TestPersistedIndexTortureEveryByte(t *testing.T) {
	src, indexName := buildIndexedDir(t)
	want := captureRef(t, newReferenceEngine(t, numCrashMutations))
	raw, err := os.ReadFile(filepath.Join(src, indexName))
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if testing.Short() {
		step = 13
	}
	for off := 0; off < len(raw); off += step {
		dir := copyDataDir(t, src)
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x20
		if err := os.WriteFile(filepath.Join(dir, indexName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		expectIndexFallback(t, dir, "bit flip", want)
	}
	for cut := 0; cut < len(raw); cut += step * 4 {
		dir := copyDataDir(t, src)
		if err := os.WriteFile(filepath.Join(dir, indexName), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		expectIndexFallback(t, dir, "truncation", want)
	}
	// A structurally valid index stamped with the wrong generation is
	// stale, not corrupt — same silent fallback.
	dir := copyDataDir(t, src)
	stale := (&invidx.Index{}).EncodeSnapshot(999)
	if err := os.WriteFile(filepath.Join(dir, indexName), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	expectIndexFallback(t, dir, "stale generation", want)
	// A missing index file (pre-upgrade directory) rebuilds too.
	dir = copyDataDir(t, src)
	if err := os.Remove(filepath.Join(dir, indexName)); err != nil {
		t.Fatal(err)
	}
	expectIndexFallback(t, dir, "missing file", want)
}

package precis

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"precis/internal/costmodel"
	"precis/internal/dataset"
	"precis/internal/profile"
	"precis/internal/storage"
)

// newEngine builds the engine over the paper's example database with the
// narrative annotations and standard macros installed.
func newEngine(t *testing.T) *Engine {
	t.Helper()
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	eng, err := New(db, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

func TestEndToEndWoodyAllen(t *testing.T) {
	eng := newEngine(t)
	ans, err := eng.Query([]string{"Woody Allen"}, Options{
		Degree:      MinPathWeight(0.9),
		Cardinality: MaxTuplesPerRelation(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Unmatched) != 0 {
		t.Errorf("unmatched = %v", ans.Unmatched)
	}
	// The précis is a database.
	if ans.Database == nil || ans.Database.NumRelations() == 0 {
		t.Fatal("no result database")
	}
	if err := storage.VerifySubDatabase(eng.Database(), ans.Database); err != nil {
		t.Errorf("sub-database: %v", err)
	}
	// The narrative reproduces the §5.3 opening.
	if !strings.Contains(ans.Narrative, "Woody Allen was born on December 1, 1935") {
		t.Errorf("narrative = %q", ans.Narrative)
	}
	if ans.Stats.Queries == 0 {
		t.Error("no SQL issued?")
	}
}

func TestQueryStringPhrases(t *testing.T) {
	eng := newEngine(t)
	ans, err := eng.QueryString(`"Woody Allen"`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Occurrences["Woody Allen"]) != 2 {
		t.Errorf("occurrences = %v", ans.Occurrences)
	}
}

func TestParseQuery(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{`"Woody Allen" comedy`, []string{"Woody Allen", "comedy"}},
		{`match point`, []string{"match", "point"}},
		{`  spaced   out  `, []string{"spaced", "out"}},
		{`"unterminated phrase`, []string{"unterminated phrase"}},
		{``, nil},
		{`""`, nil},
	}
	for _, c := range cases {
		if got := ParseQuery(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseQuery(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMultiTermQuery(t *testing.T) {
	eng := newEngine(t)
	ans, err := eng.Query([]string{"Woody Allen", "Lost in Translation"}, Options{
		Degree:      MinPathWeight(0.9),
		Cardinality: MaxTuplesPerRelation(10),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seeds from both terms: DIRECTOR, ACTOR and MOVIE.
	movies := ans.Database.Relation("MOVIE")
	if movies == nil {
		t.Fatal("MOVIE missing")
	}
	ti := movies.Schema().ColumnIndex("title")
	found := false
	movies.Scan(func(tu storage.Tuple) bool {
		if tu.Values[ti].AsString() == "Lost in Translation" {
			found = true
		}
		return true
	})
	if !found {
		t.Error("second term's seed tuple missing")
	}
}

func TestUnmatchedTermsReported(t *testing.T) {
	eng := newEngine(t)
	ans, err := eng.Query([]string{"Woody Allen", "zzzzz"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans.Unmatched, []string{"zzzzz"}) {
		t.Errorf("unmatched = %v", ans.Unmatched)
	}
}

func TestNoMatchesError(t *testing.T) {
	eng := newEngine(t)
	_, err := eng.Query([]string{"zzzzz"}, Options{})
	if !errors.Is(err, ErrNoMatches) {
		t.Errorf("err = %v", err)
	}
	if _, err := eng.Query(nil, Options{}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestProfilesChangeAnswers(t *testing.T) {
	eng := newEngine(t)
	if err := eng.AddProfile(profile.Reviewer()); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddProfile(profile.Fan()); err != nil {
		t.Fatal(err)
	}
	if got := eng.Profiles(); len(got) != 2 {
		t.Errorf("profiles = %v", got)
	}
	rev, err := eng.Query([]string{"Woody Allen"}, Options{Profile: "reviewer", SkipNarrative: true})
	if err != nil {
		t.Fatal(err)
	}
	fan, err := eng.Query([]string{"Woody Allen"}, Options{Profile: "fan", SkipNarrative: true})
	if err != nil {
		t.Fatal(err)
	}
	if rev.Database.NumRelations() <= fan.Database.NumRelations() {
		t.Errorf("reviewer (%d rel) should see more than fan (%d rel)",
			rev.Database.NumRelations(), fan.Database.NumRelations())
	}
	if _, err := eng.Query([]string{"Woody Allen"}, Options{Profile: "nope"}); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestWeightOverlayChangesExploredRegion(t *testing.T) {
	eng := newEngine(t)
	base, err := eng.Query([]string{"Match Point"}, Options{
		Degree: MinPathWeight(0.9), SkipNarrative: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Database.Relation("PLAY") != nil {
		t.Fatal("PLAY unexpectedly present at baseline weights")
	}
	// Boost MOVIE->PLAY so the theatre region becomes reachable: the §3.1
	// interactive-exploration scenario.
	boosted, err := eng.Query([]string{"Match Point"}, Options{
		Degree:        MinPathWeight(0.9),
		WeightOverlay: map[string]float64{"MOVIE->PLAY(mid=mid)": 1.0},
		SkipNarrative: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if boosted.Database.Relation("PLAY") == nil || boosted.Database.Relation("THEATRE") == nil {
		t.Errorf("overlay did not expand the region: %v", boosted.Database.RelationNames())
	}
	// The engine's shared graph must not have been mutated.
	again, err := eng.Query([]string{"Match Point"}, Options{
		Degree: MinPathWeight(0.9), SkipNarrative: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.Database.Relation("PLAY") != nil {
		t.Error("overlay leaked into the shared graph")
	}
	if _, err := eng.Query([]string{"Match Point"}, Options{
		WeightOverlay: map[string]float64{"NOPE.x": 1.0},
	}); err == nil {
		t.Error("bad overlay key accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	eng := newEngine(t)
	ans, err := eng.Query([]string{"Woody Allen"}, Options{SkipNarrative: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range ans.Database.RelationNames() {
		if n := ans.Database.Relation(rel).Len(); n > 10 {
			t.Errorf("default cardinality violated: %s has %d", rel, n)
		}
	}
}

func TestInsertDeleteLiveIndex(t *testing.T) {
	eng := newEngine(t)
	id, err := eng.Insert("MOVIE", storage.Int(99), storage.String("Sweet and Lowdown"), storage.Int(1999), storage.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Query([]string{"Sweet and Lowdown"}, Options{SkipNarrative: true})
	if err != nil {
		t.Fatalf("fresh insert not searchable: %v", err)
	}
	if ans.Database.Relation("MOVIE").Len() == 0 {
		t.Error("fresh tuple missing from result")
	}
	ok, err := eng.Delete("MOVIE", id)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, err := eng.Query([]string{"Sweet and Lowdown"}, Options{}); !errors.Is(err, ErrNoMatches) {
		t.Errorf("deleted tuple still searchable: %v", err)
	}
	if _, err := eng.Delete("NOPE", 1); err == nil {
		t.Error("delete from unknown relation accepted")
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	bad := g.Clone()
	bad.AddRelation("GHOST")
	if _, err := New(db, bad); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestTimeBudgetConstraint(t *testing.T) {
	params := costmodel.Params{IndexTime: 2 * time.Microsecond, TupleTime: time.Microsecond}
	c := TimeBudget(params, 60*time.Microsecond, 4)
	if b := c.Budget("R", map[string]int{}, 0); b != 5 {
		t.Errorf("budget = %d, want 5", b)
	}
}

func TestConcurrentQueries(t *testing.T) {
	eng := newEngine(t)
	queries := [][]string{
		{"Woody Allen"}, {"Match Point"}, {"Comedy"}, {"Scarlett Johansson"},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				q := queries[(w+i)%len(queries)]
				if _, err := eng.Query(q, Options{SkipNarrative: i%2 == 0}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConcurrentQueriesWithMutations(t *testing.T) {
	eng := newEngine(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			title := fmt.Sprintf("Concurrent Movie %d", i)
			id, err := eng.Insert("MOVIE", storage.Int(int64(200+i)), storage.String(title),
				storage.Int(2000), storage.Int(1))
			if err != nil {
				errs <- err
				return
			}
			if _, err := eng.Delete("MOVIE", id); err != nil {
				errs <- err
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := eng.Query([]string{"Woody Allen"}, Options{SkipNarrative: true}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestEngineUpdate(t *testing.T) {
	eng := newEngine(t)
	id, err := eng.Insert("MOVIE", storage.Int(50), storage.String("Old Title"), storage.Int(1990), storage.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Update("MOVIE", id, []storage.Value{
		storage.Int(50), storage.String("New Title"), storage.Int(1991), storage.Int(1),
	}); err != nil {
		t.Fatal(err)
	}
	// The index follows: old title gone, new searchable.
	if _, err := eng.Query([]string{"Old Title"}, Options{}); !errors.Is(err, ErrNoMatches) {
		t.Errorf("old title still searchable: %v", err)
	}
	ans, err := eng.Query([]string{"New Title"}, Options{SkipNarrative: true})
	if err != nil {
		t.Fatalf("new title not searchable: %v", err)
	}
	if ans.Database.Relation("MOVIE").Len() == 0 {
		t.Error("updated tuple missing from result")
	}
	// Errors.
	if err := eng.Update("NOPE", 1, nil); err == nil {
		t.Error("unknown relation accepted")
	}
	if err := eng.Update("MOVIE", 99999, nil); err == nil {
		t.Error("unknown tuple accepted")
	}
}

func TestEngineSynonym(t *testing.T) {
	eng := newEngine(t)
	if _, err := eng.Query([]string{"W. Allen"}, Options{}); !errors.Is(err, ErrNoMatches) {
		t.Fatalf("pre-synonym: %v", err)
	}
	eng.AddSynonym("W. Allen", "Woody Allen")
	ans, err := eng.Query([]string{"W. Allen"}, Options{
		Degree: MinPathWeight(0.9), Cardinality: MaxTuplesPerRelation(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Database.Relation("DIRECTOR").Len() != 1 {
		t.Error("synonym did not reach the director")
	}
}

package precis

import (
	"context"
	"errors"
	"time"

	"precis/internal/anscache"
	"precis/internal/obs"
	"precis/internal/repl"
)

// Replication metric names: the streaming side's counters on a primary,
// position/lag gauges on a follower.
const (
	MetricReplFollowers     = "precis_repl_followers"
	MetricReplHandshakes    = "precis_repl_handshakes_total"
	MetricReplSentRecords   = "precis_repl_sent_records_total"
	MetricReplSentBytes     = "precis_repl_sent_bytes_total"
	MetricReplSnapshotsSent = "precis_repl_snapshots_sent_total"
	MetricReplLinkErrors    = "precis_repl_link_errors_total"

	MetricReplDegraded       = "precis_repl_degraded"
	MetricReplQuorumTimeouts = "precis_repl_quorum_timeouts_total"
	MetricReplAckLagRecords  = "precis_repl_ack_lag_records"

	MetricReplConnected      = "precis_repl_connected"
	MetricReplAppliedGen     = "precis_repl_applied_generation"
	MetricReplAppliedRecords = "precis_repl_applied_records"
	MetricReplLagRecords     = "precis_repl_lag_records"
	MetricReplLagBytes       = "precis_repl_lag_bytes"
	MetricReplSnapshots      = "precis_repl_snapshots_applied"
	MetricReplDials          = "precis_repl_dials"

	MetricReplEpoch              = "precis_repl_epoch"
	MetricReplFenced             = "precis_repl_fenced"
	MetricReplEpochRejections    = "precis_repl_epoch_rejections_total"
	MetricReplFailoverDetections = "precis_repl_failover_detections_total"
	MetricReplFailoverPromotions = "precis_repl_failover_promotions_total"
)

// instrumentReplPrimary wires a streaming primary's counters into reg.
func instrumentReplPrimary(reg *obs.Registry, p *repl.Primary) {
	reg.Help(MetricReplFollowers, "follower links currently attached")
	reg.Help(MetricReplHandshakes, "follower handshakes accepted")
	reg.Help(MetricReplSentRecords, "WAL records streamed to followers")
	reg.Help(MetricReplSentBytes, "replication bytes written to follower links")
	reg.Help(MetricReplSnapshotsSent, "snapshot bootstraps streamed to followers")
	reg.Help(MetricReplLinkErrors, "follower links dropped on error")
	reg.Help(MetricReplDegraded, "1 while synchronous replication runs degraded (quorum lost, committing async)")
	reg.Help(MetricReplQuorumTimeouts, "group commits whose ack quorum timed out")
	reg.Help(MetricReplAckLagRecords, "worst per-follower records-behind-frontier by last durable ack")
	p.SetMetrics(&repl.Metrics{
		SentRecords:    reg.Counter(MetricReplSentRecords),
		SentBytes:      reg.Counter(MetricReplSentBytes),
		SnapshotsSent:  reg.Counter(MetricReplSnapshotsSent),
		Handshakes:     reg.Counter(MetricReplHandshakes),
		LinkErrors:     reg.Counter(MetricReplLinkErrors),
		QuorumTimeouts: reg.Counter(MetricReplQuorumTimeouts),
	})
	reg.GaugeFunc(MetricReplFollowers, func() float64 { return float64(p.Stats().Followers) })
	reg.GaugeFunc(MetricReplDegraded, func() float64 {
		if p.Degraded() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc(MetricReplAckLagRecords, func() float64 {
		worst := int64(0)
		for _, l := range p.Stats().Links {
			if l.SyncEligible && l.AckLagRecords > worst {
				worst = l.AckLagRecords
			}
		}
		return float64(worst)
	})
}

// instrumentReplFollower registers a follower's position and lag gauges.
func instrumentReplFollower(reg *obs.Registry, r *replicaState) {
	reg.Help(MetricReplConnected, "1 while the follower link is up")
	reg.Help(MetricReplAppliedGen, "WAL generation the follower has applied into")
	reg.Help(MetricReplAppliedRecords, "records applied within the current generation")
	reg.Help(MetricReplLagRecords, "records behind the primary's durable frontier (-1 unknown)")
	reg.Help(MetricReplLagBytes, "bytes behind the primary's durable frontier (-1 unknown)")
	reg.Help(MetricReplSnapshots, "snapshot bootstraps applied")
	reg.Help(MetricReplDials, "connection attempts to the primary")
	reg.GaugeFunc(MetricReplConnected, func() float64 {
		if r.client.Stats().Connected {
			return 1
		}
		return 0
	})
	reg.GaugeFunc(MetricReplAppliedGen, func() float64 { return float64(r.followerStats().AppliedGen) })
	reg.GaugeFunc(MetricReplAppliedRecords, func() float64 { return float64(r.followerStats().AppliedRecords) })
	reg.GaugeFunc(MetricReplLagRecords, func() float64 { return float64(r.followerStats().LagRecords) })
	reg.GaugeFunc(MetricReplLagBytes, func() float64 { return float64(r.followerStats().LagBytes) })
	reg.GaugeFunc(MetricReplSnapshots, func() float64 { return float64(r.followerStats().Snapshots) })
	reg.GaugeFunc(MetricReplDials, func() float64 { return float64(r.client.Stats().Dials) })
}

// Metric names the engine registers. They are exported as constants so the
// web layer, tests, and dashboards address the same strings the engine
// writes — /api/stats and /metrics read the very same atomics.
const (
	MetricQueries        = "precis_queries_total"
	MetricQuerySeconds   = "precis_query_seconds"
	MetricStageSeconds   = "precis_stage_seconds"
	MetricQueryErrors    = "precis_query_errors_total"
	MetricPartialAnswers = "precis_partial_answers_total"
	MetricTruncations    = "precis_truncations_total"
	MetricPanics         = "precis_panics_recovered_total"
	MetricResultTuples   = "precis_result_tuples_total"
	MetricSQLQueries     = "precis_sql_queries_total"
	MetricCacheHits      = "precis_cache_hits_total"
	MetricCacheMisses    = "precis_cache_misses_total"
	MetricCacheEvict     = "precis_cache_evictions_total"
	MetricCacheExpire    = "precis_cache_expirations_total"
	MetricCacheInval     = "precis_cache_invalidations_total"
	MetricCacheEntries   = "precis_cache_entries"
	MetricDBTuples       = "precis_db_tuples"
	MetricDBRelations    = "precis_db_relations"
	MetricIndexTokens    = "precis_index_tokens"
)

// engineMetrics holds the engine's pre-resolved instrument pointers: the
// registry map is consulted once, at Instrument time, and every query
// afterwards pays only atomic operations. nil engineMetrics (the default)
// means the engine is un-instrumented and queries skip accounting entirely.
type engineMetrics struct {
	queries      *obs.Counter
	queryDur     *obs.Histogram
	partial      *obs.Counter
	panics       *obs.Counter
	resultTuples *obs.Counter
	sqlQueries   *obs.Counter

	errNoMatches *obs.Counter
	errInternal  *obs.Counter
	errCanceled  *obs.Counter
	errOther     *obs.Counter

	truncations map[TruncationReason]*obs.Counter
	stages      map[string]*obs.Histogram
}

// newEngineMetrics resolves every engine instrument in reg.
func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	reg.Help(MetricQueries, "précis queries answered (including errors and cache hits)")
	reg.Help(MetricQuerySeconds, "end-to-end query latency in seconds")
	reg.Help(MetricStageSeconds, "per-pipeline-stage latency in seconds (uncached queries)")
	reg.Help(MetricQueryErrors, "queries that returned an error, by kind")
	reg.Help(MetricPartialAnswers, "answers truncated by a resource budget")
	reg.Help(MetricTruncations, "budget truncations by exhausted dimension")
	reg.Help(MetricPanics, "panics recovered at the engine boundary")
	reg.Help(MetricResultTuples, "tuples materialized into result databases")
	reg.Help(MetricSQLQueries, "generated SQL queries issued against the store")
	m := &engineMetrics{
		queries:      reg.Counter(MetricQueries),
		queryDur:     reg.Histogram(MetricQuerySeconds),
		partial:      reg.Counter(MetricPartialAnswers),
		panics:       reg.Counter(MetricPanics),
		resultTuples: reg.Counter(MetricResultTuples),
		sqlQueries:   reg.Counter(MetricSQLQueries),
		errNoMatches: reg.Counter(MetricQueryErrors, "kind", "no_matches"),
		errInternal:  reg.Counter(MetricQueryErrors, "kind", "internal"),
		errCanceled:  reg.Counter(MetricQueryErrors, "kind", "canceled"),
		errOther:     reg.Counter(MetricQueryErrors, "kind", "other"),
		truncations: map[TruncationReason]*obs.Counter{
			TruncateDeadline:    reg.Counter(MetricTruncations, "reason", string(TruncateDeadline)),
			TruncateTupleBudget: reg.Counter(MetricTruncations, "reason", string(TruncateTupleBudget)),
			TruncateStepBudget:  reg.Counter(MetricTruncations, "reason", string(TruncateStepBudget)),
			TruncateByteBudget:  reg.Counter(MetricTruncations, "reason", string(TruncateByteBudget)),
		},
		stages: make(map[string]*obs.Histogram, 6),
	}
	for _, stage := range []string{
		obs.StageTokenize, obs.StageCacheLookup, obs.StageIndexLookup,
		obs.StageSchemaGen, obs.StageDBGen, obs.StageTranslate,
	} {
		m.stages[stage] = reg.Histogram(MetricStageSeconds, "stage", stage)
	}
	return m
}

// record accounts one finished query: total latency, outcome class, and —
// for fresh (uncached, successful) computations — result sizes and
// per-stage latencies from the query's trace.
func (m *engineMetrics) record(start time.Time, ans *Answer, err error, tr *obs.Trace) {
	m.queries.Inc()
	m.queryDur.ObserveNanos(time.Since(start).Nanoseconds())
	if err != nil {
		switch {
		case errors.Is(err, ErrNoMatches):
			m.errNoMatches.Inc()
		case errors.Is(err, ErrInternal):
			m.errInternal.Inc()
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			m.errCanceled.Inc()
		default:
			m.errOther.Inc()
		}
		return
	}
	if ans == nil || ans.FromCache {
		// Cache hits are visible in precis_query_seconds and the cache
		// counters; the stage histograms describe fresh pipeline runs only.
		return
	}
	if ans.Partial {
		m.partial.Inc()
		if c := m.truncations[ans.Truncation]; c != nil {
			c.Inc()
		}
	}
	m.resultTuples.Add(uint64(ans.Stats.TotalTuples))
	m.sqlQueries.Add(uint64(ans.Stats.Queries))
	m.observeStages(tr)
}

// observeStages feeds the per-stage histograms from a trace's spans.
func (m *engineMetrics) observeStages(tr *obs.Trace) {
	if tr == nil {
		return
	}
	for i := range tr.Spans {
		if h := m.stages[tr.Spans[i].Name]; h != nil {
			h.ObserveNanos(tr.Spans[i].Dur.Nanoseconds())
		}
	}
}

// cacheCountersFrom resolves the answer-cache counter set in reg. Because
// the registry get-or-creates by name, the counters survive cache resizes:
// EnableCache drops entries but never resets hit/miss totals.
func cacheCountersFrom(reg *obs.Registry) *anscache.Counters {
	reg.Help(MetricCacheHits, "answer cache hits")
	reg.Help(MetricCacheMisses, "answer cache misses")
	return &anscache.Counters{
		Hits:          reg.Counter(MetricCacheHits),
		Misses:        reg.Counter(MetricCacheMisses),
		Evictions:     reg.Counter(MetricCacheEvict),
		Expirations:   reg.Counter(MetricCacheExpire),
		Invalidations: reg.Counter(MetricCacheInval),
	}
}

// Instrument wires the engine to a metrics registry: query/error/panic
// counters, end-to-end and per-stage latency histograms, truncation
// counters by reason, answer-cache counters, and gauge callbacks for
// database and index sizes. Pass nil to detach.
//
// Call Instrument at setup time, before serving concurrent queries; the
// resolved instruments are then updated lock-free on the query path. The
// instruments are get-or-created by name, so instrumenting a rebuilt
// engine with the same registry continues the same monotonic series.
func (e *Engine) Instrument(reg *obs.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if reg == nil {
		e.registry = nil
		e.metrics = nil
		return
	}
	e.registry = reg
	e.metrics = newEngineMetrics(reg)
	if e.cache != nil {
		e.cache.AdoptCounters(cacheCountersFrom(reg))
	}
	// The size gauges go through the sharded-aware locked helpers: on a
	// coordinator e.db/e.index are nil and the totals are summed over the
	// shard engines.
	reg.GaugeFunc(MetricDBTuples, func() float64 {
		e.mu.RLock()
		defer e.mu.RUnlock()
		return float64(e.totalTuplesLocked())
	})
	reg.GaugeFunc(MetricDBRelations, func() float64 {
		e.mu.RLock()
		defer e.mu.RUnlock()
		return float64(e.numRelationsLocked())
	})
	reg.GaugeFunc(MetricIndexTokens, func() float64 {
		e.mu.RLock()
		defer e.mu.RUnlock()
		return float64(e.indexTokensLocked())
	})
	reg.GaugeFunc(MetricCacheEntries, func() float64 {
		e.mu.RLock()
		defer e.mu.RUnlock()
		if e.cache == nil {
			return 0
		}
		return float64(e.cache.Len())
	})
	if e.persist != nil {
		e.persist.instrument(reg)
	}
	if e.shards != nil {
		e.shards.instrument(reg)
	}
	if e.replPrimary != nil {
		instrumentReplPrimary(reg, e.replPrimary)
	}
	if e.replica != nil {
		instrumentReplFollower(reg, e.replica)
	}
	instrumentFencing(reg, e)
}

// instrumentFencing registers the failover observables. They read through
// ReplStats, so they stay correct across a live role change (a follower
// promoted to primary keeps its registry and the gauges follow the role).
func instrumentFencing(reg *obs.Registry, e *Engine) {
	reg.Help(MetricReplEpoch, "current fencing epoch (bumped by every promotion)")
	reg.Help(MetricReplFenced, "1 while this engine is fenced by a newer primary epoch")
	reg.Help(MetricReplEpochRejections, "handshakes or commits refused over an epoch mismatch")
	reg.Help(MetricReplFailoverDetections, "primary-silence detections by the auto-failover supervisor")
	reg.Help(MetricReplFailoverPromotions, "promotions performed by the auto-failover supervisor")
	reg.GaugeFunc(MetricReplEpoch, func() float64 { return float64(e.ReplStats().Epoch) })
	reg.GaugeFunc(MetricReplFenced, func() float64 {
		if e.ReplStats().FencedBy != 0 {
			return 1
		}
		return 0
	})
	reg.GaugeFunc(MetricReplEpochRejections, func() float64 {
		if st := e.ReplStats(); st.Primary != nil {
			return float64(st.Primary.EpochRejections)
		}
		return 0
	})
	reg.GaugeFunc(MetricReplFailoverDetections, func() float64 {
		if st := e.ReplStats(); st.Failover != nil {
			return float64(st.Failover.Detections)
		}
		return 0
	})
	reg.GaugeFunc(MetricReplFailoverPromotions, func() float64 {
		if st := e.ReplStats(); st.Failover != nil {
			return float64(st.Failover.Promotions)
		}
		return 0
	})
}

// Registry returns the metrics registry the engine was instrumented with
// (nil when un-instrumented).
func (e *Engine) Registry() *obs.Registry {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.registry
}

package precis_test

// Benchmarks regenerating each figure of the paper's evaluation (§6), plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// wraps the same workloads cmd/precis-bench runs as wall-clock experiments:
//
//	go test -bench=Figure7 .     — Figure 7 (schema generation vs degree d)
//	go test -bench=Figure8 .     — Figure 8 (data generation vs c_R, NaïveQ)
//	go test -bench=Figure9 .     — Figure 9 (NaïveQ vs Round-Robin vs n_R)
//	go test -bench=Baselines .   — §2 baseline contrast
//	go test -bench=Ablation .    — pruning / join-order / postponement

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"precis"
	"precis/internal/baseline"
	"precis/internal/core"
	"precis/internal/dataset"
	"precis/internal/invidx"
	"precis/internal/obs"
	"precis/internal/schemagraph"
	"precis/internal/sqlx"
	"precis/internal/storage"
)

// f7Graphs builds the Figure 7 graph population once.
func f7Graphs(b *testing.B, weightSets int) []*schemagraph.Graph {
	b.Helper()
	graphs := make([]*schemagraph.Graph, weightSets)
	for i := range graphs {
		cfg := dataset.DefaultGraphConfig()
		cfg.Seed = int64(i + 1)
		g, err := dataset.RandomGraph(cfg)
		if err != nil {
			b.Fatal(err)
		}
		graphs[i] = g
	}
	return graphs
}

// BenchmarkFigure7ResultSchemaGenerator measures schema generation across
// the paper's degree sweep (d = max attributes projected), averaged over
// random weight-sets and seed relations.
func BenchmarkFigure7ResultSchemaGenerator(b *testing.B) {
	graphs := f7Graphs(b, 5)
	for _, d := range []int{5, 10, 20, 40, 60, 80, 100} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := graphs[i%len(graphs)]
				seed := g.Relations()[i%10]
				if _, err := core.GenerateSchema(g, []string{seed}, core.MaxAttributes(d)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// chainBench prepares one Figure 8/9 chain workload.
type chainBench struct {
	eng   *sqlx.Engine
	graph *schemagraph.Graph
	rs    *core.ResultSchema
	seeds map[string][]storage.TupleID
}

func newChainBench(b *testing.B, nR, rows, fanout, seedTuples int) *chainBench {
	b.Helper()
	db, g, err := dataset.Chain(dataset.ChainConfig{
		Relations: nR, RowsPerRel: rows, Fanout: fanout, Seed: 1, UniformRows: false,
	})
	if err != nil {
		b.Fatal(err)
	}
	rs, err := core.GenerateSchema(g, []string{"R0"}, core.MinPathWeight(0.0001))
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	var ids []storage.TupleID
	db.Relation("R0").Scan(func(t storage.Tuple) bool {
		ids = append(ids, t.ID)
		return true
	})
	perm := r.Perm(len(ids))
	picked := make([]storage.TupleID, 0, seedTuples)
	for _, i := range perm[:seedTuples] {
		picked = append(picked, ids[i])
	}
	sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
	return &chainBench{
		eng:   sqlx.NewEngine(db),
		graph: g,
		rs:    rs,
		seeds: map[string][]storage.TupleID{"R0": picked},
	}
}

// BenchmarkFigure8ResultDatabaseGenerator measures NaïveQ data generation
// across the c_R sweep on the paper's 4-relation sets.
func BenchmarkFigure8ResultDatabaseGenerator(b *testing.B) {
	w := newChainBench(b, 4, 200, 4, 10)
	for _, cR := range []int{10, 30, 50, 70, 90} {
		b.Run(fmt.Sprintf("cR=%d", cR), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rd, err := core.GenerateDatabase(w.eng, w.rs, w.seeds,
					core.MaxTuplesPerRelation(cR), core.StrategyNaive)
				if err != nil {
					b.Fatal(err)
				}
				if rd.DB.TotalTuples() == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkFigure9NaiveVsRoundRobin measures both strategies across the n_R
// sweep at c_R = 5.
func BenchmarkFigure9NaiveVsRoundRobin(b *testing.B) {
	for _, strat := range []core.Strategy{core.StrategyNaive, core.StrategyRoundRobin} {
		for _, nR := range []int{1, 2, 4, 6, 8} {
			w := newChainBench(b, nR, 50, 2, 5)
			b.Run(fmt.Sprintf("%s/nR=%d", strat, nR), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.GenerateDatabase(w.eng, w.rs, w.seeds,
						core.MaxTuplesPerRelation(5), strat); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchMovies prepares the baseline-contrast workload.
func benchMovies(b *testing.B) (*storage.Database, *schemagraph.Graph, *invidx.Index, string, string) {
	b.Helper()
	cfg := dataset.DefaultSyntheticConfig()
	cfg.Films = 500
	db, err := dataset.SyntheticMovies(cfg)
	if err != nil {
		b.Fatal(err)
	}
	g, err := dataset.PaperGraph(db)
	if err != nil {
		b.Fatal(err)
	}
	ix := invidx.New(db)
	dname := db.Relation("DIRECTOR").Tuples()[0].Values[1].AsString()
	title := db.Relation("MOVIE").Tuples()[0].Values[1].AsString()
	return db, g, ix, dname, title
}

// BenchmarkBaselines contrasts the précis pipeline with the §2 baselines on
// the same query over a synthetic movies database.
func BenchmarkBaselines(b *testing.B) {
	db, g, ix, dname, title := benchMovies(b)
	eng := sqlx.NewEngine(db)

	b.Run("precis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			occs := ix.Lookup(dname)
			seeds := make(map[string][]storage.TupleID)
			var seedRels []string
			for _, o := range occs {
				seeds[o.Relation] = append(seeds[o.Relation], o.TupleIDs...)
				seedRels = append(seedRels, o.Relation)
			}
			sort.Strings(seedRels)
			rs, err := core.GenerateSchema(g, seedRels, core.MinPathWeight(0.9))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.GenerateDatabase(eng, rs, seeds,
				core.MaxTuplesPerRelation(10), core.StrategyAuto); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("attrpair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := baseline.AttributePairSearch(db, ix, []string{dname}); len(got) == 0 {
				b.Fatal("no matches")
			}
		}
	})
	b.Run("tupletree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.TupleTreeSearch(db, g, ix, []string{dname, title}, 3, 20); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPruning compares schema generation with and without the
// expansion cut-off of Figure 3.
func BenchmarkAblationPruning(b *testing.B) {
	graphs := f7Graphs(b, 5)
	for _, opts := range []struct {
		name string
		o    core.SchemaGeneratorOptions
	}{
		{"pruned", core.SchemaGeneratorOptions{}},
		{"unpruned", core.SchemaGeneratorOptions{DisablePruning: true}},
	} {
		b.Run(opts.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := graphs[i%len(graphs)]
				seed := g.Relations()[i%10]
				if _, err := core.GenerateSchemaOpts(g, []string{seed},
					core.MaxAttributes(40), opts.o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationJoinOrder compares weight-ordered vs FIFO join execution.
func BenchmarkAblationJoinOrder(b *testing.B) {
	w := newChainBench(b, 4, 200, 4, 10)
	for _, opts := range []struct {
		name string
		o    core.DBGenOptions
	}{
		{"weight-ordered", core.DBGenOptions{}},
		{"fifo", core.DBGenOptions{FIFOJoins: true}},
	} {
		b.Run(opts.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GenerateDatabaseOpts(w.eng, w.rs, w.seeds,
					core.MaxTotalTuples(100), core.StrategyNaive, opts.o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPostponement compares in-degree postponement on vs off.
func BenchmarkAblationPostponement(b *testing.B) {
	w := newChainBench(b, 4, 200, 4, 10)
	for _, opts := range []struct {
		name string
		o    core.DBGenOptions
	}{
		{"postponed", core.DBGenOptions{}},
		{"eager", core.DBGenOptions{DisablePostponement: true}},
	} {
		b.Run(opts.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GenerateDatabaseOpts(w.eng, w.rs, w.seeds,
					core.MaxTuplesPerRelation(50), core.StrategyNaive, opts.o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEndQuery measures the full public-API pipeline (index
// lookup, schema generation, data generation, narrative).
func BenchmarkEndToEndQuery(b *testing.B) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		b.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		b.Fatal(err)
	}
	eng, err := precis.New(db, g)
	if err != nil {
		b.Fatal(err)
	}
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			b.Fatal(err)
		}
	}
	opts := precis.Options{Degree: precis.MinPathWeight(0.9), Cardinality: precis.MaxTuplesPerRelation(3)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query([]string{"Woody Allen"}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvertedIndexBuild measures index construction over the
// synthetic IMDB-like database.
func BenchmarkInvertedIndexBuild(b *testing.B) {
	cfg := dataset.DefaultSyntheticConfig()
	cfg.Films = 500
	db, err := dataset.SyntheticMovies(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := invidx.New(db)
		if ix.NumTokens() == 0 {
			b.Fatal("empty index")
		}
	}
}

// benchParallelEngine builds the synthetic workload the parallel and cache
// benches share: a 2000-film database queried for its most prolific
// director with a wide round-robin précis (narrative skipped so the timer
// isolates generation).
func benchParallelEngine(b *testing.B) (*precis.Engine, string) {
	b.Helper()
	cfg := dataset.DefaultSyntheticConfig()
	cfg.Films = 2000
	db, err := dataset.SyntheticMovies(cfg)
	if err != nil {
		b.Fatal(err)
	}
	g, err := dataset.PaperGraph(db)
	if err != nil {
		b.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		b.Fatal(err)
	}
	eng, err := precis.New(db, g)
	if err != nil {
		b.Fatal(err)
	}
	// Most prolific director = head of the zipf skew.
	movies := db.Relation("MOVIE")
	di := movies.Schema().ColumnIndex("did")
	counts := map[string]int{}
	movies.Scan(func(t storage.Tuple) bool {
		counts[t.Values[di].String()]++
		return true
	})
	directors := db.Relation("DIRECTOR")
	did := directors.Schema().ColumnIndex("did")
	dn := directors.Schema().ColumnIndex("dname")
	best, bestN := "", -1
	directors.Scan(func(t storage.Tuple) bool {
		if n := counts[t.Values[did].String()]; n > bestN {
			bestN, best = n, t.Values[dn].AsString()
		}
		return true
	})
	return eng, best
}

func benchParallelOptions(workers int) precis.Options {
	return precis.Options{
		Degree:        precis.MinPathWeight(0.05),
		Cardinality:   precis.MaxTuplesPerRelation(150),
		Strategy:      precis.StrategyRoundRobin,
		SkipNarrative: true,
		Parallelism:   workers,
	}
}

// BenchmarkQueryParallel sweeps the worker pool over one heavy query. The
// answer is byte-identical at every pool size; only latency changes.
func BenchmarkQueryParallel(b *testing.B) {
	eng, q := benchParallelEngine(b)
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("%dworkers", workers), func(b *testing.B) {
			opts := benchParallelOptions(workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.QueryString(q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryCached measures an answer-cache hit on the same workload.
func BenchmarkQueryCached(b *testing.B) {
	eng, q := benchParallelEngine(b)
	eng.EnableCache(precis.CacheConfig{MaxEntries: 64})
	opts := benchParallelOptions(0)
	if _, err := eng.QueryString(q, opts); err != nil { // warm the entry
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.QueryString(q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryCachedInstrumented is BenchmarkQueryCached on an engine
// wired to a metrics registry with tracing off — the production server's
// steady state. Compare against BenchmarkQueryCached: the acceptance bar
// for the observability subsystem is identical allocs/op and under 2%
// latency overhead on this path (two counter increments and a histogram
// observation per hit).
func BenchmarkQueryCachedInstrumented(b *testing.B) {
	eng, q := benchParallelEngine(b)
	eng.Instrument(obs.NewRegistry())
	eng.EnableCache(precis.CacheConfig{MaxEntries: 64})
	opts := benchParallelOptions(0)
	if _, err := eng.QueryString(q, opts); err != nil { // warm the entry
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.QueryString(q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryTraced measures the uncached pipeline with per-stage
// tracing on, quantifying the cost of Options.Trace against the same
// workload in BenchmarkQueryParallel (a handful of span appends against a
// multi-millisecond generation).
func BenchmarkQueryTraced(b *testing.B) {
	eng, q := benchParallelEngine(b)
	opts := benchParallelOptions(0)
	opts.Trace = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := eng.QueryString(q, opts)
		if err != nil {
			b.Fatal(err)
		}
		if ans.Trace == nil {
			b.Fatal("no trace")
		}
	}
}

package precis

// Chaos suite: proves the resource-governance layer's promises under
// injected failure. Faults (errors, panics, latency) fire at the named
// faultinject sites inside storage lookups, index probes, generated
// SELECTs, and join execution while the engine is hammered from 32
// goroutines — and the suite asserts exactly what the governor guarantees:
//
//   - no crash and no deadlock: every panic surfaces as ErrInternal and the
//     engine keeps serving afterwards;
//   - partial answers stay deterministic: for the same Budget the serial
//     and parallel paths produce byte-identical prefixes of the unbounded
//     answer;
//   - the cache never serves a partial answer or an answer poisoned by a
//     fault: failed and truncated generations are never stored.
//
// scripts/ci.sh runs this file under -race -count=2; `go test -short`
// shrinks the storm so the tier-1 suite stays fast.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"precis/internal/dataset"
	"precis/internal/faultinject"
	"precis/internal/storage"
)

// errInjected is the sentinel the chaos plans return from error rules; any
// query error must be this, ErrInternal, or ErrNoMatches — anything else is
// a governance bug.
var errInjected = errors.New("chaos: injected fault")

// chaosIters scales the storm: full size normally, small under -short.
func chaosIters(full int) int {
	if testing.Short() {
		return full / 5
	}
	return full
}

// TestChaosInjectedErrorsSurfaceCleanly arms an error rule at each
// error-capable site in turn and asserts the query fails with the injected
// sentinel (wrapped, so errors.Is sees it), then succeeds again once the
// plan is disarmed — no residue, no poisoned cache.
func TestChaosInjectedErrorsSurfaceCleanly(t *testing.T) {
	eng := newEngine(t)
	eng.EnableCache(CacheConfig{MaxEntries: 16})
	for _, site := range []string{
		faultinject.SiteStorageLookup,
		faultinject.SiteSQLSelect,
		faultinject.SiteJoin,
	} {
		t.Run(site, func(t *testing.T) {
			eng.InvalidateCache()
			plan := faultinject.NewPlan().Set(site, faultinject.Rule{Err: errInjected})
			deactivate := faultinject.Activate(plan)
			_, err := eng.Query([]string{"Woody Allen"}, Options{SkipNarrative: true})
			deactivate()
			if err == nil {
				t.Fatalf("site %s: fault armed on every call but query succeeded", site)
			}
			if !errors.Is(err, errInjected) {
				t.Fatalf("site %s: error does not wrap the injected sentinel: %v", site, err)
			}
			if plan.Fired(site) == 0 {
				t.Fatalf("site %s: rule never fired", site)
			}
			// The failed generation must not have poisoned the cache.
			ans, err := eng.Query([]string{"Woody Allen"}, Options{SkipNarrative: true})
			if err != nil {
				t.Fatalf("site %s: engine did not recover after disarm: %v", site, err)
			}
			if ans.Partial || ans.Database.TotalTuples() == 0 {
				t.Fatalf("site %s: post-fault answer partial=%v tuples=%d", site, ans.Partial, ans.Database.TotalTuples())
			}
		})
	}
}

// TestChaosPanicsBecomeErrInternal arms a panic rule at every site — on the
// serial path and on the parallel path (SiteIndexProbe fires inside
// ParallelFor workers) — and asserts the panic is recovered at the engine
// boundary as ErrInternal with the worker's stack attached, while the
// engine keeps serving other queries.
func TestChaosPanicsBecomeErrInternal(t *testing.T) {
	eng := newEngine(t)
	sites := []string{
		faultinject.SiteStorageLookup,
		faultinject.SiteIndexProbe,
		faultinject.SiteSQLSelect,
		faultinject.SiteJoin,
	}
	for _, site := range sites {
		for _, workers := range []int{-1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", site, workers), func(t *testing.T) {
				plan := faultinject.NewPlan().Set(site, faultinject.Rule{Panic: "chaos boom"})
				deactivate := faultinject.Activate(plan)
				_, err := eng.Query([]string{"Woody Allen"}, Options{
					SkipNarrative: true,
					Parallelism:   workers,
				})
				deactivate()
				if !errors.Is(err, ErrInternal) {
					t.Fatalf("site %s workers=%d: want ErrInternal, got %v", site, workers, err)
				}
				if !strings.Contains(err.Error(), "chaos boom") {
					t.Fatalf("site %s: panic message lost: %v", site, err)
				}
				// The engine must keep serving: same query, no faults.
				ans, err := eng.Query([]string{"Woody Allen"}, Options{SkipNarrative: true})
				if err != nil || ans.Database.TotalTuples() == 0 {
					t.Fatalf("site %s: engine stopped serving after panic: err=%v", site, err)
				}
			})
		}
	}
}

// TestChaosStorm32 hammers one shared engine from 32 goroutines while a
// mixed fault plan fires: scheduled errors on storage lookups and SELECTs,
// a capped run of panics on join execution, and pure latency on index
// probes. Queriers sweep strategies, pool sizes, and budgets. The suite
// passes when the storm finishes (no deadlock), every failure is one of the
// three sanctioned errors, partial flags are coherent, unbudgeted answers
// are never partial, and the cache is still byte-coherent afterwards.
func TestChaosStorm32(t *testing.T) {
	eng := newEngine(t)
	eng.EnableCache(CacheConfig{MaxEntries: 64})

	plan := faultinject.NewPlan().
		Set(faultinject.SiteStorageLookup, faultinject.Rule{Err: errInjected, Every: 97}).
		Set(faultinject.SiteSQLSelect, faultinject.Rule{Err: errInjected, Every: 131, After: 50}).
		Set(faultinject.SiteJoin, faultinject.Rule{Panic: "storm boom", Every: 61, Limit: 8}).
		Set(faultinject.SiteIndexProbe, faultinject.Rule{Delay: 100 * time.Microsecond, Every: 13})
	deactivate := faultinject.Activate(plan)
	defer deactivate()

	queries := [][]string{
		{"Woody Allen"}, {"Match Point"}, {"Comedy"}, {"Scarlett Johansson"},
	}
	budgets := []Budget{
		{},                // unbounded
		{MaxTuples: 5},    // tuple budget
		{MaxJoinSteps: 1}, // step budget
		{MaxResultBytes: 256},
		{Deadline: time.Now().Add(time.Hour)}, // generous deadline, uncacheable
	}
	const goroutines = 32
	iters := chaosIters(40)

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				b := budgets[(w+i)%len(budgets)]
				opts := Options{
					Strategy:      []Strategy{StrategyAuto, StrategyNaive, StrategyRoundRobin}[i%3],
					SkipNarrative: i%2 == 0,
					Parallelism:   []int{-1, 2, 4, 8}[w%4],
					Budget:        b,
				}
				ans, err := eng.Query(queries[(w+i)%len(queries)], opts)
				if err != nil {
					if errors.Is(err, errInjected) || errors.Is(err, ErrInternal) || errors.Is(err, ErrNoMatches) {
						continue // sanctioned failure modes
					}
					fail(fmt.Errorf("worker %d iter %d: unsanctioned error: %w", w, i, err))
					return
				}
				if ans.Partial != (ans.Truncation != TruncateNone) {
					fail(fmt.Errorf("worker %d: incoherent partial flag: partial=%v truncation=%q",
						w, ans.Partial, ans.Truncation))
					return
				}
				if b.IsZero() && ans.Partial {
					// An unbudgeted query can never be partial — and since
					// only unbudgeted (and deterministic-budget) queries are
					// cacheable, this also proves the cache never served a
					// truncated answer.
					fail(fmt.Errorf("worker %d: unbudgeted answer marked partial (%s)", w, ans.Truncation))
					return
				}
				if ans.Database.TotalTuples() == 0 {
					fail(fmt.Errorf("worker %d: empty answer without error", w))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if plan.Fired(faultinject.SiteStorageLookup) == 0 && plan.Fired(faultinject.SiteSQLSelect) == 0 {
		t.Fatal("storm ran without any injected error firing — schedule too sparse")
	}

	// Disarm and verify the cache is still coherent: a miss/hit pair agrees.
	deactivate()
	eng.InvalidateCache()
	a1, err := eng.Query([]string{"Woody Allen"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := eng.Query([]string{"Woody Allen"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Partial || a2.Partial {
		t.Fatal("post-storm answers marked partial")
	}
	if dumpDatabase(a1.Database) != dumpDatabase(a2.Database) || a1.Narrative != a2.Narrative {
		t.Fatal("post-storm cache hit differs from miss")
	}
}

// TestChaosPartialDeterminism pins the governor's central invariant: for
// the same deterministic budget the serial and parallel paths truncate at
// the same tuple, so partial answers are byte-identical across pool sizes
// and every partial answer is an exact per-relation prefix of the
// unbounded answer.
func TestChaosPartialDeterminism(t *testing.T) {
	eng := newEngine(t)
	terms := []string{"Woody Allen"}
	full, err := eng.Query(terms, Options{SkipNarrative: true})
	if err != nil {
		t.Fatal(err)
	}
	fullDump := dumpDatabase(full.Database)

	for _, b := range []Budget{
		{MaxTuples: 3},
		{MaxTuples: 7},
		{MaxJoinSteps: 2},
		{MaxResultBytes: 300},
	} {
		name := fmt.Sprintf("tuples=%d,steps=%d,bytes=%d", b.MaxTuples, b.MaxJoinSteps, b.MaxResultBytes)
		t.Run(name, func(t *testing.T) {
			for _, strat := range []Strategy{StrategyNaive, StrategyRoundRobin} {
				opts := Options{Strategy: strat, SkipNarrative: true, Parallelism: -1, Budget: b}
				ref, err := eng.Query(terms, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !ref.Partial {
					t.Fatalf("%v: budget %+v did not truncate", strat, b)
				}
				if ref.Database.TotalTuples() == 0 {
					t.Fatalf("%v: partial answer is empty", strat)
				}
				refDump := dumpDatabase(ref.Database)
				assertPerRelationPrefix(t, refDump, fullDump)
				for _, workers := range []int{2, 4, 8} {
					opts.Parallelism = workers
					ans, err := eng.Query(terms, opts)
					if err != nil {
						t.Fatalf("%v workers=%d: %v", strat, workers, err)
					}
					if got := dumpDatabase(ans.Database); got != refDump {
						t.Fatalf("%v workers=%d: partial answer differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
							strat, workers, refDump, got)
					}
					if ans.Truncation != ref.Truncation {
						t.Fatalf("%v workers=%d: truncation %q vs serial %q",
							strat, workers, ans.Truncation, ref.Truncation)
					}
				}
			}
		})
	}
}

// TestChaosDeadlineOnLargestDataset is the acceptance scenario: a 1ms
// deadline on the largest bundled dataset returns a non-empty partial
// answer — the fully-materialized seeds — byte-identical across pool
// sizes, and an exact prefix of the unbounded answer.
func TestChaosDeadlineOnLargestDataset(t *testing.T) {
	films := 2000
	if testing.Short() {
		films = 400
	}
	cfg := dataset.DefaultSyntheticConfig()
	cfg.Films = films
	db, err := dataset.SyntheticMovies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dataset.PaperGraph(db)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(db, g)
	if err != nil {
		t.Fatal(err)
	}
	terms := []string{mostProlificDirector(db)}

	full, err := eng.Query(terms, Options{SkipNarrative: true})
	if err != nil {
		t.Fatal(err)
	}
	fullDump := dumpDatabase(full.Database)

	deadline := time.Now().Add(time.Millisecond)
	// Let the deadline lapse before the query starts: the budget then trips
	// at the first checkpoint after seed placement in every configuration,
	// which is what makes the cross-pool comparison exact rather than a
	// race against the wall clock.
	time.Sleep(2 * time.Millisecond)

	var refDump string
	for i, workers := range []int{-1, 2, 8} {
		ans, err := eng.Query(terms, Options{
			SkipNarrative: true,
			Parallelism:   workers,
			Budget:        Budget{Deadline: deadline},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !ans.Partial || ans.Truncation != TruncateDeadline {
			t.Fatalf("workers=%d: want deadline truncation, got partial=%v reason=%q",
				workers, ans.Partial, ans.Truncation)
		}
		if ans.Database.TotalTuples() == 0 {
			t.Fatalf("workers=%d: deadline answer is empty — seeds must always materialize", workers)
		}
		dump := dumpDatabase(ans.Database)
		assertPerRelationPrefix(t, dump, fullDump)
		if i == 0 {
			refDump = dump
		} else if dump != refDump {
			t.Fatalf("workers=%d: deadline answer differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, refDump, dump)
		}
	}
}

// TestChaosPartialNeverCached proves truncated answers are not stored: a
// budgeted query that truncates, re-run after lifting the budget, yields
// the full answer (a cached partial would have been replayed verbatim
// because deterministic budgets are part of the cache key only when set).
func TestChaosPartialNeverCached(t *testing.T) {
	eng := newEngine(t)
	eng.EnableCache(CacheConfig{MaxEntries: 16})

	b := Budget{MaxTuples: 3}
	p1, err := eng.Query([]string{"Woody Allen"}, Options{SkipNarrative: true, Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Partial {
		t.Fatalf("MaxTuples=3 did not truncate (got %d tuples)", p1.Database.TotalTuples())
	}
	// Same budgeted query again: must recompute (partial was not cached),
	// and still agree byte-for-byte — determinism, not caching.
	misses := eng.CacheStats().Misses
	p2, err := eng.Query([]string{"Woody Allen"}, Options{SkipNarrative: true, Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if eng.CacheStats().Misses == misses {
		t.Fatal("budgeted re-query did not miss: a partial answer was served from cache")
	}
	if dumpDatabase(p1.Database) != dumpDatabase(p2.Database) {
		t.Fatal("recomputed partial answer differs")
	}
	// Unbudgeted query: full answer, strictly more tuples.
	fullAns, err := eng.Query([]string{"Woody Allen"}, Options{SkipNarrative: true})
	if err != nil {
		t.Fatal(err)
	}
	if fullAns.Partial {
		t.Fatal("unbudgeted answer marked partial")
	}
	if fullAns.Database.TotalTuples() <= p1.Database.TotalTuples() {
		t.Fatalf("full answer (%d tuples) not larger than truncated (%d)",
			fullAns.Database.TotalTuples(), p1.Database.TotalTuples())
	}
}

// assertPerRelationPrefix asserts that, relation by relation, the tuple
// lines of partialDump form a prefix of fullDump's lines. Because inserts
// are serialized in one canonical order, a budget cut that is an exact
// prefix of the global insertion sequence is an exact prefix of every
// relation's scan order too.
func assertPerRelationPrefix(t *testing.T, partialDump, fullDump string) {
	t.Helper()
	part := splitDumpByRelation(partialDump)
	full := splitDumpByRelation(fullDump)
	for rel, lines := range part {
		fullLines, ok := full[rel]
		if !ok {
			if len(lines) > 0 {
				t.Fatalf("relation %s present in partial answer but absent from full answer", rel)
			}
			continue
		}
		if len(lines) > len(fullLines) {
			t.Fatalf("relation %s: partial has %d tuples, full only %d", rel, len(lines), len(fullLines))
		}
		for i, ln := range lines {
			if fullLines[i] != ln {
				t.Fatalf("relation %s: partial tuple %d is not a prefix of the full answer:\npartial: %s\nfull:    %s",
					rel, i, ln, fullLines[i])
			}
		}
	}
}

// splitDumpByRelation parses a dumpDatabase rendering into per-relation
// tuple lines.
func splitDumpByRelation(dump string) map[string][]string {
	out := make(map[string][]string)
	var cur string
	for _, ln := range strings.Split(dump, "\n") {
		if ln == "" {
			continue
		}
		if strings.HasPrefix(ln, "== ") {
			cur = ln
			out[cur] = nil
			continue
		}
		out[cur] = append(out[cur], ln)
	}
	return out
}

// TestChaosPersistentStorm points the storm at a durable engine: 24
// goroutines mix queries with logged mutations while WAL-append faults
// fire and a checkpointer rotates generations mid-storm. The assertions
// are the durability layer's contract under fire: no deadlock, every
// mutation either fully applied or fully rolled back (sanctioned errors
// only), the engine still serving afterwards — and a close + reopen must
// reproduce the live database byte-for-byte with zero WAL replay and no
// integrity violations.
func TestChaosPersistentStorm(t *testing.T) {
	dir := t.TempDir()
	eng := openPersistent(t, dir)
	eng.EnableCache(CacheConfig{MaxEntries: 64})

	// A real MOVIE.mid to hang GENRE inserts off (FK target).
	var mid storage.Value
	eng.Database().Relation("MOVIE").Scan(func(tp storage.Tuple) bool {
		mid = tp.Values[0]
		return false
	})
	if mid.IsNull() {
		t.Fatal("no movie to mutate against")
	}

	// Faults on the durability path itself: append errors force the
	// rollback path under concurrency, fsync delays widen the group-commit
	// window.
	plan := faultinject.NewPlan().
		Set(faultinject.SiteWALAppend, faultinject.Rule{Err: errInjected, Every: 23}).
		Set(faultinject.SiteWALFsync, faultinject.Rule{Delay: 200 * time.Microsecond, Every: 7})
	deactivate := faultinject.Activate(plan)
	defer deactivate()

	const goroutines = 24
	iters := chaosIters(40)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	queries := [][]string{{"Woody Allen"}, {"Match Point"}, {"Comedy"}}
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch {
				case w%3 == 0: // reader
					_, err := eng.Query(queries[(w+i)%len(queries)], Options{SkipNarrative: i%2 == 0})
					if err != nil && !errors.Is(err, ErrNoMatches) {
						fail(fmt.Errorf("reader %d iter %d: %w", w, i, err))
						return
					}
				default: // mutator: insert, sometimes delete what it inserted
					id, err := eng.Insert("GENRE", mid, storage.String(fmt.Sprintf("chaos-%d-%d", w, i)))
					if err != nil {
						if errors.Is(err, errInjected) {
							continue // rolled back; the reopen check proves it left no residue
						}
						fail(fmt.Errorf("mutator %d iter %d: unsanctioned insert error: %w", w, i, err))
						return
					}
					if i%3 == 0 {
						if _, err := eng.Delete("GENRE", id); err != nil && !errors.Is(err, errInjected) {
							fail(fmt.Errorf("mutator %d iter %d: unsanctioned delete error: %w", w, i, err))
							return
						}
					}
					if i%5 == 0 {
						eng.AddSynonym(fmt.Sprintf("chaosalias%d_%d", w, i), "Match Point")
					}
				}
			}
		}(w)
	}
	// Mid-storm checkpoints: each rotates the WAL generation while
	// mutators are appending to it.
	ckpts := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			time.Sleep(2 * time.Millisecond)
			if err := eng.Checkpoint(); err != nil {
				fail(fmt.Errorf("mid-storm checkpoint %d: %w", i, err))
				return
			}
			ckpts++
		}
	}()
	wg.Wait()
	deactivate()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if ckpts == 0 {
		t.Fatal("no mid-storm checkpoint completed")
	}

	// The engine must still serve and still accept durable mutations.
	if _, err := eng.Insert("GENRE", mid, storage.String("post-storm")); err != nil {
		t.Fatalf("engine rejects mutations after the storm: %v", err)
	}
	if violations := eng.Database().CheckIntegrity(); len(violations) > 0 {
		t.Fatalf("live database has %d integrity violations after the storm", len(violations))
	}
	liveDump := dumpDatabase(eng.Database())
	if err := eng.Close(); err != nil {
		t.Fatalf("close after storm: %v", err)
	}

	reopened := openPersistent(t, dir)
	defer reopened.Close()
	st := reopened.PersistStats()
	if st.Recovery.WALRecordsReplayed != 0 {
		t.Errorf("clean close left %d WAL records to replay", st.Recovery.WALRecordsReplayed)
	}
	if got := dumpDatabase(reopened.Database()); got != liveDump {
		t.Errorf("recovered database differs from the live one after the storm:\nlive:\n%s\nrecovered:\n%s", liveDump, got)
	}
	if violations := reopened.Database().CheckIntegrity(); len(violations) > 0 {
		t.Errorf("recovered database has %d integrity violations", len(violations))
	}
}

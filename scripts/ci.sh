#!/usr/bin/env bash
# CI gate: vet, build, and the full test suite under the race detector.
#
# The race run is the point of this script — the engine's parallel fetch
# pool, the answer cache, and the profile registry are all exercised by
# dedicated concurrency tests (race_test.go, determinism_test.go,
# internal/anscache) that only bite under -race.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race -count=1 ./...

echo "CI OK"

#!/usr/bin/env bash
# CI gate: vet, build, the full test suite under the race detector, and a
# doubled run of the chaos suite.
#
# The race run is the point of this script — the engine's parallel fetch
# pool, the answer cache, and the profile registry are all exercised by
# dedicated concurrency tests (race_test.go, determinism_test.go,
# internal/anscache) that only bite under -race.
#
# The chaos suite (chaos_test.go) arms internal/faultinject and hammers
# the engine with 32 goroutines while errors, panics, and latency fire at
# the injection sites; -count=2 reruns it to catch state leaking between
# runs (a fault plan left armed, a poisoned cache). The full-suite pass
# above runs it with -short (scaled-down iteration counts) to keep tier-1
# wall clock flat; the dedicated pass below runs it at full strength.
#
# The crash-torture pass (persist_crash_test.go) kills the WAL at every
# byte offset and bit-flips both durability files; the -short run above
# strides through offsets, this dedicated pass covers every single one
# under -race. The fuzz smoke then runs both internal/wal fuzz targets
# (snapshot decoder, WAL replayer) for 10s each on top of the checked-in
# corpus — long enough to catch a regression in the decoders' bounds
# checks, short enough for CI.
#
# The bench smoke step compiles and runs every benchmark exactly once
# (-benchtime=1x) with no tests (-run=NONE). It does not measure anything;
# it keeps the benchmark code itself from rotting — a benchmark that no
# longer compiles or fatals on its first iteration fails CI here instead
# of on the next perf investigation.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race (-short chaos)"
go test -race -count=1 -short ./...

echo "== chaos suite -race -count=2 (full strength)"
go test -race -count=2 -run 'TestChaos' .

echo "== crash torture -race (full strength: every WAL byte offset)"
go test -race -count=1 -run 'TestCrashTorture' .

echo "== fuzz smoke (10s per durability target)"
go test -run=NONE -fuzz='FuzzSnapshotDecode' -fuzztime=10s ./internal/wal
go test -run=NONE -fuzz='FuzzWALReplay' -fuzztime=10s ./internal/wal

echo "== bench smoke (compile + one iteration)"
go test -run=NONE -bench=. -benchtime=1x ./...

echo "CI OK"

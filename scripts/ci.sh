#!/usr/bin/env bash
# CI gate: vet, build, the full test suite under the race detector, and a
# doubled run of the chaos suite.
#
# The race run is the point of this script — the engine's parallel fetch
# pool, the answer cache, and the profile registry are all exercised by
# dedicated concurrency tests (race_test.go, determinism_test.go,
# internal/anscache) that only bite under -race.
#
# The chaos suite (chaos_test.go) arms internal/faultinject and hammers
# the engine with 32 goroutines while errors, panics, and latency fire at
# the injection sites; -count=2 reruns it to catch state leaking between
# runs (a fault plan left armed, a poisoned cache). The full-suite pass
# above runs it with -short (scaled-down iteration counts) to keep tier-1
# wall clock flat; the dedicated pass below runs it at full strength.
#
# The bench smoke step compiles and runs every benchmark exactly once
# (-benchtime=1x) with no tests (-run=NONE). It does not measure anything;
# it keeps the benchmark code itself from rotting — a benchmark that no
# longer compiles or fatals on its first iteration fails CI here instead
# of on the next perf investigation.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race (-short chaos)"
go test -race -count=1 -short ./...

echo "== chaos suite -race -count=2 (full strength)"
go test -race -count=2 -run 'TestChaos' .

echo "== bench smoke (compile + one iteration)"
go test -run=NONE -bench=. -benchtime=1x ./...

echo "CI OK"

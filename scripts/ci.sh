#!/usr/bin/env bash
# CI gate: vet, build, the full test suite under the race detector, and a
# doubled run of the chaos suite.
#
# The race run is the point of this script — the engine's parallel fetch
# pool, the answer cache, and the profile registry are all exercised by
# dedicated concurrency tests (race_test.go, determinism_test.go,
# internal/anscache) that only bite under -race.
#
# The chaos suite (chaos_test.go) arms internal/faultinject and hammers
# the engine with 32 goroutines while errors, panics, and latency fire at
# the injection sites; -count=2 reruns it to catch state leaking between
# runs (a fault plan left armed, a poisoned cache). The full-suite pass
# above runs it with -short (scaled-down iteration counts) to keep tier-1
# wall clock flat; the dedicated pass below runs it at full strength.
#
# The crash-torture pass (persist_crash_test.go) kills the WAL at every
# byte offset and bit-flips both durability files; the -short run above
# strides through offsets, this dedicated pass covers every single one
# under -race. The fuzz smoke then runs the durability fuzz targets
# (snapshot decoder, WAL replayer, delta decoder, index-snapshot decoder)
# for 10s each on top of the checked-in corpus — long enough to catch a
# regression in the decoders' bounds checks, short enough for CI.
#
# The incremental-checkpoint torture pass (persist_delta_crash_test.go,
# internal/wal delta_test.go) recovers the same scripted workload from
# every checkpoint-chain depth byte-identically, damages every byte of
# the base snapshot and every delta in the chain (committed deltas must
# hard-fail with an attributed CorruptionError — their covering logs are
# GC'd, so dropping one would lose data), and damages every byte of the
# persisted inverted index (which must NEVER fail an open: stale or
# corrupt index files silently fall back to a rebuild). It runs under
# -race with its own timeout because checkpoints now run concurrently
# with mutations — the serialize/fsync phase happens off the engine
# lock against captured copy-on-write state.
#
# The replication convergence suite (replication_test.go, internal/repl)
# severs the primary→follower stream at swept byte offsets, injects
# send/recv/corruption faults around every live mutation, and storms a
# replicated pair — all under -race, because the follower applies the
# stream on one goroutine while queries read on others. The repl fuzz
# smoke feeds the follower's frame decoder raw adversarial bytes for 10s;
# its checked-in corpus includes MsgAck frames, so the primary's ack
# decode path is fuzzed alongside the follower's stream decoder.
#
# The quorum torture suite (quorum_replication_test.go) exercises
# synchronous replication's durability contract: it kills the primary
# after every quorum-acked mutation and promotes the durable follower,
# asserting the promoted copy equals the exact acked prefix (every acked
# write present, no unacked write surfaced); it also truncates the dead
# primary's WAL at swept byte strides, injects faults on the ack
# send/recv and follower-fsync sites mid-commit, and drives the
# ErrQuorumLost and sticky degraded-async fallback paths. It gets its own
# -race step with a per-step timeout because a quorum bug's natural
# failure mode is a writer blocked forever on an ack that never comes.
#
# The failover torture suite (failover_test.go, internal/repl
# failover_test.go) kills the primary after every acked mutation and
# promotes the follower IN PLACE via Engine.Promote, asserting the new
# primary serves exactly the acked prefix at the bumped epoch, that a
# live-deposed or resurrected old primary answers every mutation kind
# with the typed ErrFenced, and that the deposed directory rejoins as a
# follower through a forced snapshot bootstrap that truncates its
# diverged WAL suffix. It runs under -race with its own timeout for the
# same reason the quorum step does: promotion races Close and the
# supervisor's election loop, and a fencing bug's natural failure mode
# is a hang or a silent split brain, not a clean assertion.
#
# The sharding suite (shard_test.go, internal/shard) holds sharded
# answers byte-identical to the single engine across datasets,
# partitioners, shard counts, and pool sizes; kills and reopens every
# shard directory mid-storm; and storms the coordinator from 24
# goroutines under rotating scatter/gather/apply faults — all under
# -race, because the gather path merges per-shard goroutine results
# while mutations route concurrently. The quick sharded bench run at
# the end re-checks answer parity through the bench harness itself.
#
# The bench smoke step compiles and runs every benchmark exactly once
# (-benchtime=1x) with no tests (-run=NONE). It does not measure anything;
# it keeps the benchmark code itself from rotting — a benchmark that no
# longer compiles or fatals on its first iteration fails CI here instead
# of on the next perf investigation.
#
# Every go test step carries an explicit -timeout so a deadlocked suite
# (the usual failure mode of replication and chaos bugs) kills the step
# instead of hanging the CI job until the outer scheduler reaps it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race (-short chaos)"
go test -race -count=1 -short -timeout=10m ./...

echo "== chaos suite -race -count=2 (full strength)"
go test -race -count=2 -timeout=10m -run 'TestChaos' .

echo "== crash torture -race (full strength: every WAL byte offset)"
go test -race -count=1 -timeout=10m -run 'TestCrashTorture' .

echo "== incremental checkpoint torture -race (chain depths, every chain/index byte)"
go test -race -count=1 -timeout=15m -run 'TestDeltaChain|TestPersistedIndex' .
go test -race -count=1 -timeout=10m -run 'TestDelta|TestStore|TestManifest|TestApplyDelta|TestIndexSnapshot' ./internal/wal ./internal/invidx

echo "== replication convergence -race (full strength: swept link cuts)"
go test -race -count=1 -timeout=10m -run 'TestRepl|TestChaosReplicatedStorm' .
go test -race -count=1 -timeout=10m ./internal/repl

echo "== quorum torture -race (primary kills after every acked write, ack faults)"
go test -race -count=1 -timeout=10m -run 'TestQuorum|TestFollowerResume' .

echo "== failover torture -race (kill/promote after every acked write, fencing)"
go test -race -count=1 -timeout=10m -run 'TestFailover|TestPromote|TestDeposed|TestAutoFailover' .

echo "== sharding -race (byte-parity sweep, crash recovery, faulted storm)"
go test -race -count=1 -timeout=10m -run 'TestSharded' .
go test -race -count=1 -timeout=5m ./internal/shard

echo "== fuzz smoke (10s per durability target)"
go test -timeout=5m -run=NONE -fuzz='FuzzSnapshotDecode' -fuzztime=10s ./internal/wal
go test -timeout=5m -run=NONE -fuzz='FuzzWALReplay' -fuzztime=10s ./internal/wal
go test -timeout=5m -run=NONE -fuzz='FuzzDeltaDecode' -fuzztime=10s ./internal/wal
go test -timeout=5m -run=NONE -fuzz='FuzzIndexSnapshotDecode' -fuzztime=10s ./internal/invidx
go test -timeout=5m -run=NONE -fuzz='FuzzReplFrameDecode' -fuzztime=10s ./internal/repl

echo "== bench smoke (compile + one iteration)"
go test -timeout=10m -run=NONE -bench=. -benchtime=1x ./...

echo "== sharded bench smoke (quick parity-checked runs)"
go run ./cmd/precis-bench -quick -shards -rebuild

echo "CI OK"

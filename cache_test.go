package precis

// Engine-level answer cache tests: fingerprint separation (queries that
// differ in any constraint must not share an entry), invalidation on every
// mutation class, and the cache-bypass rules.

import (
	"testing"
	"time"

	"precis/internal/storage"
)

func newCachedEngine(t *testing.T) *Engine {
	t.Helper()
	eng := newEngine(t)
	eng.EnableCache(CacheConfig{MaxEntries: 32})
	return eng
}

func TestCacheHitReturnsSameAnswer(t *testing.T) {
	eng := newCachedEngine(t)
	opts := Options{Degree: MinPathWeight(0.9), Cardinality: MaxTuplesPerRelation(3)}
	a1, err := eng.Query([]string{"Woody Allen"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := eng.Query([]string{"Woody Allen"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	if a1.Narrative != a2.Narrative || a1.Database != a2.Database {
		t.Fatal("cache hit returned a different answer")
	}
	if a1 == a2 {
		t.Fatal("cache handed out the same Answer header to both callers")
	}
}

// TestCacheFingerprintSeparation issues query variants that differ in
// exactly one input each; every variant must be a distinct cache entry. A
// fingerprint collision here would silently serve one configuration's
// précis for another.
func TestCacheFingerprintSeparation(t *testing.T) {
	eng := newCachedEngine(t)
	terms := []string{"Woody Allen"}
	variants := []Options{
		{},
		{Cardinality: MaxTuplesPerRelation(1)},
		{Cardinality: MaxTuplesPerRelation(2)},
		{Cardinality: MaxTotalTuples(2)},
		{Degree: MinPathWeight(0.95)},
		{Degree: MaxAttributes(3)},
		{Strategy: StrategyNaive},
		{Strategy: StrategyRoundRobin},
		{WeightOverlay: map[string]float64{"MOVIE.title": 0.5}},
		{WeightOverlay: map[string]float64{"MOVIE.title": 0.7}},
		{SkipNarrative: true},
	}
	for i, opts := range variants {
		if _, err := eng.Query(terms, opts); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
	}
	st := eng.CacheStats()
	if st.Misses != uint64(len(variants)) || st.Hits != 0 {
		t.Fatalf("first pass: hits=%d misses=%d entries=%d, want 0/%d",
			st.Hits, st.Misses, st.Entries, len(variants))
	}
	if st.Entries != len(variants) {
		t.Fatalf("fingerprint collision: %d variants share %d entries", len(variants), st.Entries)
	}
	// Second pass: all hits, answers must match the variant's semantics.
	for i, opts := range variants {
		ans, err := eng.Query(terms, opts)
		if err != nil {
			t.Fatalf("variant %d second pass: %v", i, err)
		}
		if opts.SkipNarrative && ans.Narrative != "" {
			t.Fatalf("variant %d: cached answer has a narrative despite SkipNarrative", i)
		}
	}
	st = eng.CacheStats()
	if st.Hits != uint64(len(variants)) {
		t.Fatalf("second pass: hits=%d, want %d", st.Hits, len(variants))
	}
}

// TestCacheKeyNormalization pins the key function: term order matters,
// tokenization folds case, and identical inputs agree.
func TestCacheKeyNormalization(t *testing.T) {
	k1, ok1 := cacheKey([]string{"Woody Allen"}, Options{})
	k2, ok2 := cacheKey([]string{"woody ALLEN"}, Options{})
	if !ok1 || !ok2 || k1 != k2 {
		t.Fatalf("case folding broken: %q vs %q", k1, k2)
	}
	k3, _ := cacheKey([]string{"woody", "allen"}, Options{})
	k4, _ := cacheKey([]string{"allen", "woody"}, Options{})
	if k3 == k4 {
		t.Fatal("term order must be part of the key (occurrence maps differ)")
	}
	if _, ok := cacheKey([]string{"x"}, Options{TupleWeights: TupleWeights{}}); ok {
		t.Fatal("per-call tuple weights must bypass the cache")
	}
	k5, _ := cacheKey([]string{"x"}, Options{Profile: "reviewer"})
	k6, _ := cacheKey([]string{"x"}, Options{Profile: "fan"})
	if k5 == k6 {
		t.Fatal("profile must be part of the key")
	}
}

// TestCacheInvalidationOnMutation verifies every mutation class purges the
// cache, so post-mutation queries always recompute.
func TestCacheInvalidationOnMutation(t *testing.T) {
	eng := newCachedEngine(t)
	warm := func() {
		t.Helper()
		if _, err := eng.Query([]string{"Woody Allen"}, Options{SkipNarrative: true}); err != nil {
			t.Fatal(err)
		}
		if eng.CacheStats().Entries == 0 {
			t.Fatal("warm query did not populate the cache")
		}
	}

	warm()
	id, err := eng.Insert("MOVIE",
		storage.Int(9001), storage.String("Cache Buster"), storage.Int(2026), storage.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if n := eng.CacheStats().Entries; n != 0 {
		t.Fatalf("Insert left %d cache entries", n)
	}

	warm()
	if err := eng.Update("MOVIE", id, []storage.Value{
		storage.Int(9001), storage.String("Cache Buster II"), storage.Int(2026), storage.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if n := eng.CacheStats().Entries; n != 0 {
		t.Fatalf("Update left %d cache entries", n)
	}

	warm()
	if ok, err := eng.Delete("MOVIE", id); err != nil || !ok {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	if n := eng.CacheStats().Entries; n != 0 {
		t.Fatalf("Delete left %d cache entries", n)
	}

	warm()
	eng.SetTupleWeights(TupleWeights{"MOVIE": {1: 2.0}})
	if n := eng.CacheStats().Entries; n != 0 {
		t.Fatalf("SetTupleWeights left %d cache entries", n)
	}

	warm()
	eng.AddSynonym("woodrow", "woody")
	if n := eng.CacheStats().Entries; n != 0 {
		t.Fatalf("AddSynonym left %d cache entries", n)
	}

	warm()
	eng.InvalidateCache()
	st := eng.CacheStats()
	if st.Entries != 0 || st.Invalidations == 0 {
		t.Fatalf("InvalidateCache: %+v", st)
	}
}

func TestCacheDisableAndTTL(t *testing.T) {
	eng := newEngine(t)
	if eng.CacheEnabled() {
		t.Fatal("cache enabled by default")
	}
	// Queries work with the cache off and stats read as zero.
	if _, err := eng.Query([]string{"Woody Allen"}, Options{SkipNarrative: true}); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st != (CacheStats{}) {
		t.Fatalf("disabled cache has stats %+v", st)
	}
	eng.EnableCache(CacheConfig{MaxEntries: 8, TTL: time.Minute})
	if !eng.CacheEnabled() {
		t.Fatal("cache not enabled")
	}
	if _, err := eng.Query([]string{"Woody Allen"}, Options{SkipNarrative: true}); err != nil {
		t.Fatal(err)
	}
	if eng.CacheStats().Entries != 1 {
		t.Fatalf("entries = %d", eng.CacheStats().Entries)
	}
	eng.DisableCache()
	if eng.CacheEnabled() {
		t.Fatal("cache still enabled after DisableCache")
	}
}

// TestCacheTupleWeightsBypass verifies a per-call weighted query neither
// reads nor writes the cache.
func TestCacheTupleWeightsBypass(t *testing.T) {
	eng := newCachedEngine(t)
	opts := Options{SkipNarrative: true, TupleWeights: TupleWeights{"MOVIE": {3: 5.0}}}
	for i := 0; i < 2; i++ {
		if _, err := eng.Query([]string{"Woody Allen"}, opts); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.CacheStats()
	if st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("weighted query touched the cache: %+v", st)
	}
}

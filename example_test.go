package precis_test

import (
	"fmt"
	"log"
	"sort"

	"precis"
	"precis/internal/dataset"
	"precis/internal/storage"
)

// ExampleEngine_Query runs the paper's running example: Q = {"Woody Allen"}
// with projections of weight >= 0.9 and at most three tuples per relation.
func ExampleEngine_Query() {
	db, graph, err := dataset.ExampleMovies()
	if err != nil {
		log.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(graph); err != nil {
		log.Fatal(err)
	}
	eng, err := precis.New(db, graph)
	if err != nil {
		log.Fatal(err)
	}
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			log.Fatal(err)
		}
	}

	ans, err := eng.Query([]string{"Woody Allen"}, precis.Options{
		Degree:      precis.MinPathWeight(0.9),
		Cardinality: precis.MaxTuplesPerRelation(3),
	})
	if err != nil {
		log.Fatal(err)
	}

	rels := ans.Database.RelationNames()
	sort.Strings(rels)
	fmt.Println("result relations:", rels)

	movies := ans.Database.Relation("MOVIE")
	ti := movies.Schema().ColumnIndex("title")
	movies.Scan(func(t storage.Tuple) bool {
		fmt.Println("movie:", t.Values[ti].AsString())
		return true
	})
	// Output:
	// result relations: [ACTOR CAST DIRECTOR GENRE MOVIE]
	// movie: Match Point
	// movie: Melinda and Melinda
	// movie: Anything Else
}

// ExampleParseQuery shows phrase handling in free-form query strings.
func ExampleParseQuery() {
	fmt.Printf("%q\n", precis.ParseQuery(`"Woody Allen" comedy 2005`))
	// Output:
	// ["Woody Allen" "comedy" "2005"]
}

// ExampleEngine_Query_narrative prints the §5.3 narrative opening.
func ExampleEngine_Query_narrative() {
	db, graph, _ := dataset.ExampleMovies()
	_ = dataset.AnnotateNarrative(graph)
	eng, _ := precis.New(db, graph)
	for _, def := range dataset.StandardMacros() {
		_ = eng.DefineMacro(def)
	}
	ans, err := eng.QueryString(`"Match Point"`, precis.Options{
		Degree:      precis.MinPathWeight(0.9),
		Cardinality: precis.MaxTuplesPerRelation(5),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ans.Narrative)
	// Output:
	// Match Point (2005). Match Point is Drama, Thriller.
}

package precis

// WAL-streaming replication, engine layer. A primary engine (built with
// Open) can stream its committed WAL frames to followers with
// StartReplication; a follower engine (built with OpenFollower) bootstraps
// from the primary's newest snapshot, applies the live record stream
// through the same ID-stable path crash recovery uses, and serves
// read-only queries while refusing every mutation with ErrReadOnly. The
// transport (framing, handshake, reconnect, fault sites) lives in
// internal/repl; this file owns state application and the role plumbing.

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"precis/internal/faultinject"
	"precis/internal/invidx"
	"precis/internal/nlg"
	"precis/internal/repl"
	"precis/internal/schemagraph"
	"precis/internal/wal"
)

// ErrReadOnly is returned by every mutation on a follower engine. Follower
// state is exactly the primary's WAL stream; a local write would fork it.
var ErrReadOnly = errors.New("precis: follower engine is read-only")

// ErrQuorumLost is the engine-level alias of repl.ErrQuorumLost: a
// mutation under synchronous replication timed out waiting for its ack
// quorum. The mutation IS applied and locally durable — only the
// replication guarantee was missed — so callers must not retry blindly;
// match with errors.Is.
var ErrQuorumLost = repl.ErrQuorumLost

// ErrFenced is the engine-level alias of wal.ErrFenced: this engine was
// deposed by a newer primary epoch and refuses every mutation, durably,
// until its directory rejoins the cluster as a follower. Match with
// errors.Is.
var ErrFenced = wal.ErrFenced

// ErrNotPrimary is returned (alongside ErrReadOnly, for compatibility —
// both match under errors.Is) by mutations on an engine that is not the
// primary. The concrete error's message carries a leader hint when the
// engine knows where the primary is.
var ErrNotPrimary = errors.New("precis: engine is not the primary")

// ErrNotFollower is returned by Promote and EnableAutoFailover on an
// engine that is not a follower.
var ErrNotFollower = errors.New("precis: engine is not a follower")

// notPrimaryError is the concrete mutation-refusal error on a follower:
// it matches both ErrNotPrimary and the historical ErrReadOnly, and names
// the primary so a client can redirect.
type notPrimaryError struct{ leader string }

func (e *notPrimaryError) Error() string {
	if e.leader != "" {
		return fmt.Sprintf("precis: follower engine is read-only (leader hint: %s)", e.leader)
	}
	return "precis: follower engine is read-only"
}

func (e *notPrimaryError) Is(target error) bool {
	return target == ErrNotPrimary || target == ErrReadOnly
}

// fencedError is the concrete mutation-refusal error on a deposed
// primary; it matches ErrFenced and names the deposing epoch.
type fencedError struct{ epoch uint64 }

func (e *fencedError) Error() string {
	return fmt.Sprintf("precis: engine is fenced by primary epoch %d; reopen its directory as a follower to rejoin", e.epoch)
}

func (e *fencedError) Is(target error) bool { return target == ErrFenced }

// mutableLocked is the gate every mutation passes: nil on a writable
// primary, a typed refusal otherwise. Callers hold e.mu.
func (e *Engine) mutableLocked() error {
	if e.replica != nil || e.promoting {
		var leader string
		if e.replica != nil {
			leader = e.replica.addr
		}
		return &notPrimaryError{leader: leader}
	}
	if e.fencedBy != 0 {
		return &fencedError{epoch: e.fencedBy}
	}
	return nil
}

// ReplicaConfig tunes a follower engine.
type ReplicaConfig struct {
	// Addr is the primary's replication address (host:port). Required.
	Addr string
	// BootstrapTimeout bounds OpenFollower's wait for the first snapshot
	// to arrive and apply (0: 30s). Reconnects after bootstrap are
	// unbounded — the follower keeps retrying until Close.
	BootstrapTimeout time.Duration
	// DialTimeout, HandshakeTimeout, BackoffMin, BackoffMax tune the
	// transport; zero values use the internal/repl defaults.
	DialTimeout      time.Duration
	HandshakeTimeout time.Duration
	BackoffMin       time.Duration
	BackoffMax       time.Duration
	// Dir, when non-empty, makes the follower durable: every replicated
	// snapshot and record is written through a local WAL store under
	// cfg.Fsync before it is acked to the primary (an ack means "on
	// follower disk"), and a restarted follower recovers from this
	// directory and resumes from its local frontier instead of taking a
	// full snapshot. An empty Dir keeps the follower diskless; it still
	// acks (applied position), but an ack then only means "in follower
	// memory" — don't count such followers toward a durability quorum.
	Dir string
	// Fsync / FsyncInterval tune the local store's durability policy.
	Fsync         wal.FsyncPolicy
	FsyncInterval time.Duration
	// Logger receives link and bootstrap notes; nil uses log.Default().
	Logger *log.Logger
}

// FollowerStats reports a follower's replication position and lag.
type FollowerStats struct {
	Addr      string `json:"addr"`
	Connected bool   `json:"connected"`
	// Durable reports whether the follower writes replicated state through
	// a local WAL store before acking (ReplicaConfig.Dir was set).
	Durable bool `json:"durable"`
	// AcksSent counts durable-position acks reported to the primary.
	AcksSent uint64 `json:"acks_sent"`
	// AppliedGen / AppliedRecords are the follower's last applied LSN:
	// AppliedRecords frames of generation AppliedGen are in the engine.
	AppliedGen     uint64 `json:"applied_gen"`
	AppliedRecords uint64 `json:"applied_records"`
	// AppliedBytes mirrors the primary's WAL file offset for the applied
	// prefix of the current generation (frame headers included).
	AppliedBytes int64 `json:"applied_bytes"`
	// Frontier* echo the primary's durable frontier as last reported.
	FrontierGen     uint64 `json:"frontier_gen"`
	FrontierRecords uint64 `json:"frontier_records"`
	FrontierBytes   uint64 `json:"frontier_bytes"`
	// LagRecords / LagBytes are the distance to the primary's durable
	// frontier; -1 when unknown (mid-rotation, or before the first
	// frontier report).
	LagRecords int64 `json:"lag_records"`
	LagBytes   int64 `json:"lag_bytes"`
	// Snapshots counts full snapshot bootstraps (1 after a clean start;
	// more mean the follower fell behind a checkpoint and re-bootstrapped).
	Snapshots       uint64 `json:"snapshots_applied"`
	Dials           uint64 `json:"dials"`
	RecordsReceived uint64 `json:"records_received"`
	BytesReceived   uint64 `json:"bytes_received"`
	LastError       string `json:"last_error,omitempty"`
}

// ReplStats reports an engine's replication role and counters.
type ReplStats struct {
	// Role is "none", "primary", "follower", or "promoting" (a follower
	// mid-conversion to primary).
	Role string `json:"role"`
	// Epoch is the engine's fencing epoch (1 until the first failover).
	Epoch uint64 `json:"epoch"`
	// FencedBy is the epoch of the primary that deposed this engine; 0
	// when not fenced.
	FencedBy uint64                `json:"fenced_by,omitempty"`
	Primary  *repl.PrimaryStats    `json:"primary,omitempty"`
	Follower *FollowerStats        `json:"follower,omitempty"`
	Failover *repl.SupervisorStats `json:"failover,omitempty"`
}

// replicaState is the follower side's plumbing, held by Engine.replica.
type replicaState struct {
	addr   string
	graph  *schemagraph.Graph
	client *repl.Client
	log    *log.Logger
	// store is the follower's local WAL store (nil when diskless). Only
	// the transport goroutine appends/installs/checkpoints; Frontier and
	// Stats are safe from any goroutine.
	store *wal.Store

	cancel        context.CancelFunc
	done          chan struct{}
	ready         chan struct{} // closed once the first snapshot built the engine
	stopOnce      sync.Once
	transportOnce sync.Once

	mu sync.Mutex
	// epoch is the fencing epoch of a diskless follower (a durable one
	// reads it from the store); 0 means 1.
	epoch uint64
	// eng is set once, when the first snapshot arrives.
	eng *Engine
	// gen/records/appliedBytes are the applied position: records frames of
	// gen are in the engine, occupying appliedBytes of its WAL file.
	// Updated only AFTER the corresponding apply completes, so any
	// observer that reads a position is guaranteed the state includes it.
	gen, records uint64
	appliedBytes int64
	// frontier* are the primary's durable frontier as last reported; zero
	// until the first record or heartbeat.
	frontierGen, frontierRecords, frontierBytes uint64
	snapshots                                   uint64
}

// OpenFollower builds a read-only follower engine replicating from the
// primary at cfg.Addr. It dials, receives a full snapshot bootstrap,
// verifies it (join indexes, referential integrity, graph validation), and
// returns an engine already applying the live stream. The engine answers
// queries like any other but returns ErrReadOnly from every mutation; its
// state converges to the primary's durable frontier and survives link
// faults by reconnecting and resuming from the last applied position.
// Close stops replication (the in-memory state remains queryable).
func OpenFollower(g *schemagraph.Graph, cfg ReplicaConfig) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("precis: follower needs a schema graph")
	}
	if cfg.Addr == "" {
		return nil, fmt.Errorf("precis: follower needs a primary address")
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.Default()
	}
	bootstrap := cfg.BootstrapTimeout
	if bootstrap <= 0 {
		bootstrap = 30 * time.Second
	}
	r := &replicaState{
		addr:  cfg.Addr,
		graph: g,
		log:   logger,
		done:  make(chan struct{}),
		ready: make(chan struct{}),
	}
	if cfg.Dir != "" {
		store, rec, err := wal.Open(cfg.Dir, wal.Config{
			Fsync:         cfg.Fsync,
			FsyncInterval: cfg.FsyncInterval,
			Logger:        logger,
		})
		if err != nil {
			return nil, fmt.Errorf("precis: follower store: %w", err)
		}
		r.store = store
		if rec.Data != nil {
			// Resume from local disk: build the engine from the recovered
			// snapshot+WAL and rejoin the stream at the local frontier — no
			// snapshot transfer needed unless the primary has since
			// checkpointed past us.
			if err := r.recoverLocal(rec); err != nil {
				_ = store.Close()
				return nil, err
			}
		}
	}
	r.client = repl.New(repl.Config{
		Addr:             cfg.Addr,
		DialTimeout:      cfg.DialTimeout,
		HandshakeTimeout: cfg.HandshakeTimeout,
		BackoffMin:       cfg.BackoffMin,
		BackoffMax:       cfg.BackoffMax,
		Logger:           logger,
	}, repl.Callbacks{
		Position:     r.position,
		Snapshot:     r.onSnapshot,
		Record:       r.onRecord,
		Frontier:     r.onFrontier,
		Ack:          r.ackPosition,
		Epoch:        r.localEpoch,
		ObserveEpoch: r.observeEpoch,
	})
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	go func() {
		defer close(r.done)
		r.client.Run(ctx)
	}()
	select {
	case <-r.ready:
	case <-time.After(bootstrap):
		r.stop()
		st := r.client.Stats()
		if st.LastError != "" {
			return nil, fmt.Errorf("precis: follower bootstrap from %s timed out after %s (last error: %s)",
				cfg.Addr, bootstrap, st.LastError)
		}
		return nil, fmt.Errorf("precis: follower bootstrap from %s timed out after %s", cfg.Addr, bootstrap)
	}
	r.mu.Lock()
	eng := r.eng
	r.mu.Unlock()
	return eng, nil
}

// recoverLocal rebuilds the follower engine from its own data directory —
// the same verification the streamed-snapshot path runs — and sets the
// applied position to the local frontier so the next Hello resumes the
// stream instead of requesting a bootstrap.
func (r *replicaState) recoverLocal(rec *wal.Recovered) error {
	db := rec.Data.DB
	if err := db.CreateJoinIndexes(); err != nil {
		return fmt.Errorf("precis: follower recovery: rebuilding join indexes: %w", err)
	}
	if violations := db.CheckIntegrity(); len(violations) > 0 {
		return fmt.Errorf("precis: follower recovery: database violates referential integrity (%d violation(s), first: %s)",
			len(violations), violations[0])
	}
	eng, err := New(db, r.graph)
	if err != nil {
		return err
	}
	for _, p := range rec.Data.Synonyms {
		eng.index.AddSynonym(p[0], p[1])
	}
	for _, def := range rec.Data.Macros {
		if err := eng.renderer.DefineMacro(def); err != nil {
			return fmt.Errorf("precis: follower recovery: replaying macro: %w", err)
		}
		eng.trackMacroLocked(def)
	}
	eng.replica = r
	fr := r.store.Frontier()
	r.mu.Lock()
	r.eng = eng
	r.gen, r.records, r.appliedBytes = fr.Gen, uint64(fr.Records), fr.Bytes
	r.mu.Unlock()
	r.log.Printf("repl: follower resumed from local store: generation %d, %d record(s) replayed, %d tuples",
		fr.Gen, rec.WALRecords, db.TotalTuples())
	close(r.ready)
	return nil
}

// stop cancels the transport, waits for its goroutine, and closes the
// local store (no appends can race it once the transport is down);
// idempotent.
func (r *replicaState) stop() {
	r.stopOnce.Do(func() {
		r.stopTransport()
		if r.store != nil {
			_ = r.store.Close()
		}
	})
}

// stopTransport cancels the replication link and waits for its goroutine,
// leaving the local store open — Promote uses it to take ownership of the
// store; idempotent.
func (r *replicaState) stopTransport() {
	r.transportOnce.Do(func() {
		r.cancel()
		<-r.done
	})
}

// localEpoch reports the follower's fencing epoch: the store's on a
// durable follower, an in-memory shadow on a diskless one.
func (r *replicaState) localEpoch() uint64 {
	if r.store != nil {
		return r.store.Epoch()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.epoch == 0 {
		return 1
	}
	return r.epoch
}

// observeEpoch handles every epoch stamp the primary puts on the stream
// (welcome, records, heartbeats). A newer epoch is adopted — durably, on a
// durable follower, which also clears any fence the directory carried from
// a deposed former life. An older epoch means the node we are connected to
// is a stale primary that lost a failover; refusing severs the link before
// its record is applied, and the reconnect loop finds the real primary.
func (r *replicaState) observeEpoch(remote uint64) error {
	if err := faultinject.Fire(faultinject.SiteReplEpochCheck); err != nil {
		return err
	}
	local := r.localEpoch()
	if remote < local {
		return fmt.Errorf("primary is at stale epoch %d (local epoch %d): refusing its stream", remote, local)
	}
	if remote == local {
		return nil
	}
	if r.store != nil {
		if err := r.store.SetEpoch(remote); err != nil {
			return fmt.Errorf("adopting primary epoch %d: %w", remote, err)
		}
	} else {
		r.mu.Lock()
		r.epoch = remote
		r.mu.Unlock()
	}
	r.log.Printf("repl: follower adopted primary epoch %d (was %d)", remote, local)
	return nil
}

// position reports the applied LSN for the Hello of each (re)connect.
func (r *replicaState) position() (gen, records uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen, r.records
}

// ackPosition reports the position the follower may truthfully ack: the
// local store's durable frontier on a durable follower, the applied
// position on a diskless one.
func (r *replicaState) ackPosition() (gen, records, bytes uint64) {
	if r.store != nil {
		fr := r.store.Frontier()
		return fr.Gen, uint64(fr.Records), uint64(fr.Bytes)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen, r.records, uint64(r.appliedBytes)
}

// onFrontier records the primary's durable frontier.
func (r *replicaState) onFrontier(gen, records, bytes uint64) {
	r.mu.Lock()
	r.frontierGen, r.frontierRecords, r.frontierBytes = gen, records, bytes
	r.mu.Unlock()
}

// onSnapshot applies one full snapshot transfer: decode, verify, and
// either build the engine (first bootstrap) or swap the engine's state
// wholesale (a follower that fell behind a checkpoint rotation). Any
// error severs the link and the transport retries.
func (r *replicaState) onSnapshot(gen uint64, raw []byte) error {
	data, err := wal.DecodeSnapshot("repl-stream", raw)
	if err != nil {
		return fmt.Errorf("decode streamed snapshot: %w", err)
	}
	db := data.DB
	if err := db.CreateJoinIndexes(); err != nil {
		return fmt.Errorf("rebuilding join indexes from streamed snapshot: %w", err)
	}
	if violations := db.CheckIntegrity(); len(violations) > 0 {
		return fmt.Errorf("streamed snapshot violates referential integrity (%d violation(s), first: %s)",
			len(violations), violations[0])
	}
	if r.store != nil {
		// Durability first: the snapshot must be on local disk before the
		// position it establishes can ever be acked.
		if err := r.store.InstallSnapshot(gen, raw); err != nil {
			return fmt.Errorf("install streamed snapshot: %w", err)
		}
	}

	r.mu.Lock()
	eng := r.eng
	r.mu.Unlock()

	if eng == nil {
		// First bootstrap: build the engine around the snapshot exactly the
		// way Open's recovery path does.
		eng, err = New(db, r.graph)
		if err != nil {
			return err
		}
		for _, p := range data.Synonyms {
			eng.index.AddSynonym(p[0], p[1])
		}
		for _, def := range data.Macros {
			if err := eng.renderer.DefineMacro(def); err != nil {
				return fmt.Errorf("replaying streamed macro: %w", err)
			}
			eng.trackMacroLocked(def)
		}
		eng.replica = r
		r.mu.Lock()
		r.eng = eng
		r.gen, r.records, r.appliedBytes = gen, 0, 0
		r.snapshots++
		r.mu.Unlock()
		r.log.Printf("repl: follower bootstrapped from %s: generation %d, %d tuples, %d relations",
			r.addr, gen, db.TotalTuples(), db.NumRelations())
		close(r.ready)
		return nil
	}

	// Re-bootstrap: the engine already serves queries; rebuild the derived
	// structures off-lock, then swap everything under the engine mutex so
	// no query ever sees a half-replaced state. Profiles, weights, cache
	// configuration, and instrumentation are local follower settings and
	// survive the swap.
	if err := r.graph.Validate(db); err != nil {
		return fmt.Errorf("streamed snapshot does not match the follower's schema graph: %w", err)
	}
	index := invidx.New(db)
	for _, p := range data.Synonyms {
		index.AddSynonym(p[0], p[1])
	}
	renderer := nlg.NewRenderer()
	for _, def := range data.Macros {
		if err := renderer.DefineMacro(def); err != nil {
			return fmt.Errorf("replaying streamed macro: %w", err)
		}
	}
	eng.mu.Lock()
	eng.db = db
	eng.index = index
	eng.renderer = renderer
	eng.macroDefs = nil
	eng.macroSeen = nil
	for _, def := range data.Macros {
		eng.trackMacroLocked(def)
	}
	eng.purgeCacheLocked()
	eng.mu.Unlock()
	r.mu.Lock()
	r.gen, r.records, r.appliedBytes = gen, 0, 0
	r.snapshots++
	r.mu.Unlock()
	r.log.Printf("repl: follower re-bootstrapped from %s at generation %d (fell behind a checkpoint)", r.addr, gen)
	return nil
}

// onRecord applies one streamed WAL frame, then advances the position.
// The order matters: position moves only after the apply, so a reader
// that observes position (g, n) is guaranteed the engine state contains
// exactly the first n records of generation g.
func (r *replicaState) onRecord(gen, seq uint64, payload []byte) error {
	rec, err := wal.DecodeRecord(payload)
	if err != nil {
		return fmt.Errorf("decode streamed record (%d,%d): %w", gen, seq, err)
	}
	r.mu.Lock()
	eng := r.eng
	r.mu.Unlock()
	if eng == nil {
		return fmt.Errorf("record (%d,%d) before first snapshot", gen, seq)
	}
	if r.store != nil {
		if err := r.persistRecord(eng, gen, seq, payload); err != nil {
			return err
		}
	}
	if err := eng.applyReplicated(rec); err != nil {
		return fmt.Errorf("apply streamed %s record (%d,%d): %w", rec.Op, gen, seq, err)
	}
	r.mu.Lock()
	if gen != r.gen {
		// Generation rotation: the stream crossed into a fresh WAL file.
		r.gen, r.records, r.appliedBytes = gen, 0, 0
	}
	r.records++
	r.appliedBytes += int64(len(payload)) + wal.FrameOverhead
	r.mu.Unlock()
	return nil
}

// persistRecord writes one streamed frame through the follower's local
// store before it is applied (and thus before it can be acked). The local
// log stays byte-identical to the primary's: frames are appended verbatim,
// and a generation rotation on the stream is mirrored by a local
// checkpoint so the numbering never drifts. Re-delivered frames (a
// reconnect after the append but before the apply advanced the position)
// are skipped — the bytes are already durable.
func (r *replicaState) persistRecord(eng *Engine, gen, seq uint64, payload []byte) error {
	st := r.store.Stats()
	if st.Generation == gen && st.WALRecords > int64(seq) {
		return nil
	}
	if st.Generation != gen {
		// The primary rotated generations at this boundary; its new
		// snapshot equals "old snapshot + every record already streamed",
		// which is exactly the engine state the follower holds right now.
		if st.Generation+1 != gen || seq != 0 {
			return fmt.Errorf("follower store at generation %d cannot persist record (%d,%d)", st.Generation, gen, seq)
		}
		eng.mu.Lock()
		data := eng.snapshotDataLocked()
		eng.mu.Unlock()
		if err := r.store.Checkpoint(data); err != nil {
			return fmt.Errorf("follower checkpoint at rotation to generation %d: %w", gen, err)
		}
	}
	if err := faultinject.Fire(faultinject.SiteReplFollowerFsync); err != nil {
		return fmt.Errorf("follower wal append (%d,%d): %w", gen, seq, err)
	}
	if err := r.store.AppendRaw(payload); err != nil {
		return fmt.Errorf("follower wal append (%d,%d): %w", gen, seq, err)
	}
	return nil
}

// applyReplicated applies one replicated mutation record under the engine
// lock, maintaining the inverted index and purging the answer cache — the
// follower-side twin of the primary's Insert/Update/Delete/AddSynonym/
// DefineMacro paths, minus the WAL append (the record IS the WAL).
// Inserts use the logged tuple ID, so follower and primary databases are
// tuple-ID-identical.
func (e *Engine) applyReplicated(rec wal.Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.purgeCacheLocked()
	switch rec.Op {
	case wal.OpInsert:
		if err := e.db.InsertWithID(rec.Rel, rec.ID, rec.Values...); err != nil {
			return err
		}
		if t, ok := e.db.Relation(rec.Rel).Get(rec.ID); ok {
			e.index.AddTuple(rec.Rel, t)
		}
	case wal.OpUpdate:
		rel := e.db.Relation(rec.Rel)
		if rel == nil {
			return fmt.Errorf("no relation %s", rec.Rel)
		}
		old, ok := rel.Get(rec.ID)
		if !ok {
			return fmt.Errorf("relation %s has no tuple %d", rec.Rel, rec.ID)
		}
		if err := e.db.Update(rec.Rel, rec.ID, rec.Values); err != nil {
			return err
		}
		e.index.RemoveTuple(rec.Rel, old)
		if t, ok := rel.Get(rec.ID); ok {
			e.index.AddTuple(rec.Rel, t)
		}
	case wal.OpDelete:
		rel := e.db.Relation(rec.Rel)
		if rel == nil {
			return fmt.Errorf("no relation %s", rec.Rel)
		}
		t, ok := rel.Get(rec.ID)
		if !ok {
			// The primary logs deletes only after they succeed; an absent
			// tuple here means real divergence, which must not pass silently.
			return fmt.Errorf("relation %s has no tuple %d to delete", rec.Rel, rec.ID)
		}
		e.index.RemoveTuple(rec.Rel, t)
		if _, err := e.db.Delete(rec.Rel, rec.ID); err != nil {
			e.index.AddTuple(rec.Rel, t)
			return err
		}
	case wal.OpSynonym:
		e.index.AddSynonym(rec.Alias, rec.Canonical)
	case wal.OpMacro:
		if err := e.renderer.DefineMacro(rec.Def); err != nil {
			return err
		}
		e.trackMacroLocked(rec.Def)
	case wal.OpAddFK:
		return e.db.AddForeignKey(rec.FK)
	default:
		return fmt.Errorf("unknown op %d", uint8(rec.Op))
	}
	return nil
}

// StartReplication turns a persistent engine into a replication primary:
// it begins accepting follower links on ln and streaming the WAL to them.
// The returned Primary is also reachable via ReplStats; Engine.Close
// closes it. Returns ErrNotPersistent on an in-memory engine (there is no
// WAL to stream) and an error if replication is already started.
func (e *Engine) StartReplication(ln net.Listener, cfg repl.PrimaryConfig) (*repl.Primary, error) {
	if e.shards != nil {
		return nil, fmt.Errorf("precis: sharded engines do not support WAL replication yet (replicate per shard instead)")
	}
	if e.persist == nil {
		return nil, ErrNotPersistent
	}
	// The primary streams at the store's fencing epoch, and a deposition
	// (a v3 follower proves a newer epoch exists) fences this engine so
	// no rolled-back write can ever become durable here.
	cfg.Epoch = e.persist.store.Epoch()
	userDeposed := cfg.OnDeposed
	cfg.OnDeposed = func(by uint64) {
		e.fence(by)
		if userDeposed != nil {
			userDeposed(by)
		}
	}
	p := repl.NewPrimary(e.persist.store, cfg)
	e.mu.Lock()
	if by := e.fencedBy; by != 0 {
		e.mu.Unlock()
		return nil, fmt.Errorf("precis: start replication: %w", &fencedError{epoch: by})
	}
	if e.replPrimary != nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("precis: replication already started")
	}
	e.replPrimary = p
	reg := e.registry
	e.mu.Unlock()
	if cfg.SyncReplicas > 0 {
		// Synchronous mode: every group commit rides through the quorum
		// wait before the mutation returns. Engine.Close removes the gate
		// before closing the primary so shutdown never wedges a writer.
		e.persist.store.SetCommitGate(p.WaitCommitted)
	}
	if reg != nil {
		instrumentReplPrimary(reg, p)
	}
	go func() {
		if err := p.Serve(ln); err != nil {
			cfgLog := cfg.Logger
			if cfgLog == nil {
				cfgLog = log.Default()
			}
			cfgLog.Printf("repl: primary accept loop: %v", err)
		}
	}()
	return p, nil
}

// ReplStats reports the engine's replication role and counters: zero-value
// ("none") on an unreplicated engine, the streaming counters on a primary,
// and position/lag on a follower. Epoch and FencedBy report the fencing
// state in every role.
func (e *Engine) ReplStats() ReplStats {
	e.mu.RLock()
	r, p := e.replica, e.replPrimary
	promoting := e.promoting
	fencedBy := e.fencedBy
	ps := e.persist
	fo := e.failover
	e.mu.RUnlock()
	st := ReplStats{Role: "none", Epoch: 1, FencedBy: fencedBy}
	if fo != nil {
		fst := fo.Stats()
		st.Failover = &fst
	}
	switch {
	case r != nil:
		fs := r.followerStats()
		st.Role, st.Follower = "follower", &fs
		if promoting {
			st.Role = "promoting"
		}
		st.Epoch = r.localEpoch()
	case p != nil:
		pst := p.Stats()
		st.Role, st.Primary = "primary", &pst
		st.Epoch = pst.Epoch
		if st.FencedBy == 0 {
			st.FencedBy = pst.DeposedBy
		}
	default:
		if ps != nil {
			st.Epoch = ps.store.Epoch()
		}
	}
	return st
}

// fence durably marks this engine deposed by a newer primary at epoch by:
// every mutation from now on — and on any future Open of the same
// directory — fails with ErrFenced. Called from the replication primary's
// deposition hook; the in-memory fence is set before the durable one so no
// mutation can slip through while the file write is in flight.
func (e *Engine) fence(by uint64) {
	e.mu.Lock()
	if e.fencedBy == 0 || by > e.fencedBy {
		e.fencedBy = by
	}
	p := e.persist
	e.mu.Unlock()
	if p != nil {
		if err := p.store.Fence(by); err != nil {
			p.logger.Printf("precis: persisting fence (deposed by epoch %d): %v", by, err)
		}
	}
}

// PromoteConfig tunes Engine.Promote.
type PromoteConfig struct {
	// ListenAddr, when non-empty, starts a replication listener on the new
	// primary immediately after promotion, so surviving followers can
	// re-point at it.
	ListenAddr string
	// Primary configures that listener (quorum, heartbeat, limits); its
	// Epoch is overwritten with the post-promotion epoch.
	Primary repl.PrimaryConfig
	// CheckpointBytes / CheckpointEvery configure the promoted engine's
	// background checkpointer, exactly as in PersistConfig.
	CheckpointBytes int64
	CheckpointEvery time.Duration
	// Logger receives promotion notes; nil inherits the follower's logger.
	Logger *log.Logger
}

// Promote converts a durable follower, in place, into a writable primary:
// it stops the replication link, durably bumps the fencing epoch (so the
// old primary — alive, partitioned, or resurrected later — can never again
// make a write durable that this node hasn't seen), mounts the persistence
// layer on the follower's store, and drops the read-only gate. The engine,
// its caches, and its instrumentation survive; only the role changes.
// Returns the new epoch.
//
// Returns ErrNotFollower on a non-follower, ErrNotPersistent on a diskless
// follower (it holds no durable prefix to promote), and an error if the
// engine is concurrently closing. Safe to race Close: whichever takes the
// lifecycle lock second sees the other's completed state and fails typed.
func (e *Engine) Promote(cfg PromoteConfig) (uint64, error) {
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	if err := faultinject.Fire(faultinject.SiteReplPromote); err != nil {
		return 0, fmt.Errorf("precis: promote: %w", err)
	}
	e.mu.Lock()
	r := e.replica
	if r == nil {
		e.mu.Unlock()
		return 0, fmt.Errorf("precis: promote: %w", ErrNotFollower)
	}
	if r.store == nil {
		e.mu.Unlock()
		return 0, fmt.Errorf("precis: promote: follower is memory-only, its state is not a durable prefix: %w", ErrNotPersistent)
	}
	e.promoting = true
	e.mu.Unlock()

	// Stop the stream first: nothing may append to the store between the
	// epoch bump and the role swap.
	r.stopTransport()

	epoch := r.store.Epoch() + 1
	if err := r.store.SetEpoch(epoch); err != nil {
		// Close won the race (store closed), or the epoch file is
		// unwritable; either way the follower remains a follower.
		e.mu.Lock()
		e.promoting = false
		e.mu.Unlock()
		return 0, fmt.Errorf("precis: promote: %w", err)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = r.log
	}
	p := &persistState{
		store: r.store,
		cfg: PersistConfig{
			Dir:             r.store.Stats().Dir,
			CheckpointBytes: cfg.CheckpointBytes,
			CheckpointEvery: cfg.CheckpointEvery,
			Logger:          logger,
		},
		logger: logger,
	}
	e.mu.Lock()
	e.replica = nil
	e.persist = p
	e.promoting = false
	e.mu.Unlock()
	p.startCheckpointer(e)
	logger.Printf("precis: promoted follower (of %s) to primary at epoch %d", r.addr, epoch)
	if cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			return epoch, fmt.Errorf("precis: promote: replication listener: %w", err)
		}
		if _, err := e.StartReplication(ln, cfg.Primary); err != nil {
			_ = ln.Close()
			return epoch, fmt.Errorf("precis: promote: %w", err)
		}
	}
	return epoch, nil
}

// AutoFailoverConfig arms supervised promotion on a durable follower.
type AutoFailoverConfig struct {
	// ID names this node in elections (default: Promote.ListenAddr, then
	// "follower"). The lexically smaller ID wins the final tiebreak, so
	// give every node a distinct one.
	ID string
	// HeartbeatTimeout / PollEvery tune the silence detector (defaults in
	// repl.SupervisorConfig).
	HeartbeatTimeout time.Duration
	PollEvery        time.Duration
	// Priority is this node's election weight among equally caught-up
	// candidates (higher wins).
	Priority int
	// Peers reports the other candidates at election time; nil means a
	// lone follower that elects itself.
	Peers func() []repl.Candidate
	// Promote configures the promotion performed if this node wins.
	Promote PromoteConfig
	// Logger receives detection and election notes; nil inherits the
	// follower's logger.
	Logger *log.Logger
}

// EnableAutoFailover starts a supervisor that watches the replication link
// and, when the primary has been silent for a full heartbeat timeout, runs
// a deterministic election (epoch, then applied LSN, then priority) and
// promotes this node if it wins. The supervisor stops itself after a
// successful promotion and is stopped by Close. Split-brain safety does
// NOT depend on the election being unanimous — a wrong winner is fenced by
// the epoch protocol — the election only decides who goes first.
func (e *Engine) EnableAutoFailover(cfg AutoFailoverConfig) (*repl.Supervisor, error) {
	e.mu.Lock()
	r := e.replica
	if r == nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("precis: auto-failover: %w", ErrNotFollower)
	}
	if r.store == nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("precis: auto-failover: follower is memory-only: %w", ErrNotPersistent)
	}
	if e.failover != nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("precis: auto-failover already enabled")
	}
	id := cfg.ID
	if id == "" {
		id = cfg.Promote.ListenAddr
	}
	if id == "" {
		id = "follower"
	}
	logger := cfg.Logger
	if logger == nil {
		logger = r.log
	}
	sup := repl.NewSupervisor(repl.SupervisorConfig{
		HeartbeatTimeout: cfg.HeartbeatTimeout,
		PollEvery:        cfg.PollEvery,
		Progress:         func() uint64 { return r.client.Stats().BytesReceived },
		Self: func() repl.Candidate {
			gen, records := r.position()
			return repl.Candidate{ID: id, Epoch: r.localEpoch(), Gen: gen, Records: records, Priority: cfg.Priority}
		},
		Peers: cfg.Peers,
		Promote: func() error {
			_, err := e.Promote(cfg.Promote)
			return err
		},
		Logger: logger,
	})
	e.failover = sup
	e.mu.Unlock()
	sup.Start()
	return sup, nil
}

// followerStats assembles the position/lag view.
func (r *replicaState) followerStats() FollowerStats {
	cs := r.client.Stats()
	r.mu.Lock()
	fs := FollowerStats{
		Addr:            r.addr,
		Connected:       cs.Connected,
		Durable:         r.store != nil,
		AcksSent:        cs.AcksSent,
		AppliedGen:      r.gen,
		AppliedRecords:  r.records,
		AppliedBytes:    r.appliedBytes,
		FrontierGen:     r.frontierGen,
		FrontierRecords: r.frontierRecords,
		FrontierBytes:   r.frontierBytes,
		LagRecords:      -1,
		LagBytes:        -1,
		Snapshots:       r.snapshots,
		Dials:           cs.Dials,
		RecordsReceived: cs.Records,
		BytesReceived:   cs.BytesReceived,
		LastError:       cs.LastError,
	}
	if r.frontierGen == r.gen && r.frontierGen != 0 {
		fs.LagRecords = max(0, int64(r.frontierRecords)-int64(r.records))
		fs.LagBytes = max(0, int64(r.frontierBytes)-r.appliedBytes)
	}
	r.mu.Unlock()
	return fs
}

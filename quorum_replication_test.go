package precis

// Quorum durability torture suite: under synchronous replication
// (SyncReplicas=1, a durable follower), a mutation that returns success
// has been acked as on-follower-disk — so promoting the follower after
// killing the primary at ANY point must yield every acked write, and a
// write whose quorum was lost (ErrQuorumLost) must never be presented as
// replicated. The suite promotes the follower's data directory after every
// single acked mutation, crashes the primary at byte-stride WAL offsets,
// severs the link around an unacked write, tortures the ack path with
// send/recv/fsync faults, and checks degraded-mode stickiness and healing.
// scripts/ci.sh runs the suite under -race.

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"precis/internal/dataset"
	"precis/internal/faultinject"
	"precis/internal/repl"
	"precis/internal/storage"
	"precis/internal/wal"
)

// startSyncPrimary opens a persistent engine in dir and starts replication
// with a 1-follower sync quorum.
func startSyncPrimary(t *testing.T, dir string, cfg repl.PrimaryConfig) (*Engine, string) {
	t.Helper()
	eng := openPersistent(t, dir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 20 * time.Millisecond
	}
	if cfg.Logger == nil {
		cfg.Logger = quietTestLogger()
	}
	if _, err := eng.StartReplication(ln, cfg); err != nil {
		t.Fatal(err)
	}
	return eng, ln.Addr().String()
}

// openDurableFollowerOf opens a durable (write-through-WAL) follower of
// addr in dir.
func openDurableFollowerOf(addr, dir string) (*Engine, error) {
	_, g, err := dataset.ExampleMovies()
	if err != nil {
		return nil, err
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		return nil, err
	}
	return OpenFollower(g, ReplicaConfig{
		Addr:             addr,
		Dir:              dir,
		Fsync:            wal.FsyncNever,
		BootstrapTimeout: 30 * time.Second,
		BackoffMin:       time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		Logger:           quietTestLogger(),
	})
}

// copyDirFiles copies every regular file of src into a fresh temp dir —
// the follower's data directory as a crash (or promotion) would find it.
func copyDirFiles(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// promoteFollowerDir opens a copy of a follower's data directory as a
// standalone primary — the failover move — and captures its state.
func promoteFollowerDir(t *testing.T, followerDir string) refSnapshot {
	t.Helper()
	dir := copyDirFiles(t, followerDir)
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	eng, err := Open(db, g, quietPersistConfig(dir))
	if err != nil {
		t.Fatalf("promoting follower dir: %v", err)
	}
	defer eng.Close()
	if violations := eng.Database().CheckIntegrity(); len(violations) > 0 {
		t.Fatalf("promoted follower violates integrity (%d violations, first: %s)", len(violations), violations[0])
	}
	return captureRef(t, eng)
}

// assertRefEqual compares two captured states field by field.
func assertRefEqual(t *testing.T, context string, want, got refSnapshot) {
	t.Helper()
	if got.dump != want.dump {
		t.Fatalf("%s: database differs:\nwant:\n%s\ngot:\n%s", context, want.dump, got.dump)
	}
	if got.ansDump != want.ansDump {
		t.Fatalf("%s: probe answer differs:\nwant:\n%s\ngot:\n%s", context, want.ansDump, got.ansDump)
	}
	if got.narrative != want.narrative {
		t.Fatalf("%s: narrative differs:\nwant: %s\ngot:  %s", context, want.narrative, got.narrative)
	}
}

// TestQuorumDurabilityTorture is the acceptance scenario for synchronous
// replication. With SyncReplicas=1 and a durable follower, every scripted
// mutation is acked before it returns; after each one the follower's data
// directory is promoted (copied and opened as a primary) and must hold
// exactly the acked prefix — every acked write present, nothing beyond it.
// Then the link is fully severed, one more write loses its quorum
// (ErrQuorumLost, locally durable on the primary only), and the promoted
// follower must still hold exactly the ten acked writes — the unacked
// write never surfaces as replicated. Finally the primary's WAL is
// truncated at byte-stride offsets as in the crash-torture suite: every
// recovered prefix must be state-identical to its reference, and never
// extend past what the follower (the acked set) already holds.
func TestQuorumDurabilityTorture(t *testing.T) {
	refs := make([]refSnapshot, numCrashMutations+1)
	for k := 0; k <= numCrashMutations; k++ {
		refs[k] = captureRef(t, newReferenceEngine(t, k))
	}

	pdir := t.TempDir()
	primary, addr := startSyncPrimary(t, pdir, repl.PrimaryConfig{
		SyncReplicas: 1,
		AckTimeout:   time.Second,
	})
	defer primary.Close()
	preRecords := int(primary.PersistStats().WALRecords)

	fdir := t.TempDir()
	follower, err := openDurableFollowerOf(addr, fdir)
	if err != nil {
		t.Fatalf("durable follower: %v", err)
	}
	defer follower.Close()
	if !follower.ReplStats().Follower.Durable {
		t.Fatal("follower with a data dir does not report Durable")
	}

	// Kill-and-promote after every acked mutation: the promoted state must
	// be exactly the acked prefix.
	for i := 0; i < numCrashMutations; i++ {
		if err := crashMutation(primary, i); err != nil {
			t.Fatalf("sync mutation %d: %v", i, err)
		}
		assertRefEqual(t, fmt.Sprintf("promoted follower after acked mutation %d", i),
			refs[i+1], promoteFollowerDir(t, fdir))
	}
	// Capture the primary's files now, before the unacked write below joins
	// its WAL; this is the crash image the truncation sweep replays.
	var snapName string
	var snapRaw, walRaw []byte
	entries, err := os.ReadDir(pdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(pdir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		switch filepath.Ext(e.Name()) {
		case ".snap":
			snapName, snapRaw = e.Name(), raw
		case ".log":
			walRaw = raw
		}
	}
	if snapName == "" || walRaw == nil {
		t.Fatal("primary dir is missing snapshot or WAL")
	}

	// The follower's write-through log is byte-identical to the primary's:
	// promotion replays the very frames the primary committed.
	fwal, err := os.ReadFile(filepath.Join(fdir, gen1WAL))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fwal, walRaw) {
		t.Fatalf("follower WAL (%d bytes) is not byte-identical to primary WAL (%d bytes)", len(fwal), len(walRaw))
	}

	// Sever the link completely and write once more: the quorum is lost,
	// the write stays local to the primary, and the client is told.
	errDown := errors.New("quorum-torture: link severed")
	deactivate := faultinject.Activate(faultinject.NewPlan().
		Set(faultinject.SiteReplSend, faultinject.Rule{Err: errDown}).
		Set(faultinject.SiteReplHandshake, faultinject.Rule{Err: errDown}))
	defer deactivate()
	_, err = primary.Insert("GENRE", storage.Int(911), storage.String("Unacked"))
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("severed-link insert: want ErrQuorumLost, got %v", err)
	}
	// The write is applied and locally durable despite the error.
	if _, ok := findGenre(primary, "Unacked"); !ok {
		t.Fatal("quorum-lost write was rolled back from the primary")
	}
	if got := int(primary.PersistStats().WALRecords); got != preRecords+numCrashMutations+1 {
		t.Fatalf("primary WAL holds %d records, want %d (quorum-lost write must be logged)",
			got, preRecords+numCrashMutations+1)
	}
	if st := primary.ReplStats().Primary; st.QuorumTimeouts == 0 {
		t.Fatalf("quorum loss not counted: %+v", st)
	}
	// Promoting the follower now: all ten acked writes, not the unacked one.
	assertRefEqual(t, "promoted follower after unacked write", refs[numCrashMutations], promoteFollowerDir(t, fdir))
	deactivate()

	// Crash the captured primary image at byte-stride WAL offsets: every
	// recovery is an exact reference prefix, and none extends past the acked
	// set the follower holds.
	step := 13
	if testing.Short() {
		step = 211
	}
	recoveries := 0
	for cut := 0; cut <= len(walRaw); cut += step {
		info, err := wal.ReplayBytes(walRaw[:cut], nil)
		if err != nil {
			t.Fatalf("cut %d: reference replay rejected a pure truncation: %v", cut, err)
		}
		k := info.Records - preRecords
		if k < 0 {
			k = 0
		}
		if k > numCrashMutations {
			t.Fatalf("cut %d: truncated primary recovered %d script records — beyond the acked set", cut, k)
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapName), snapRaw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, gen1WAL), walRaw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db, g, err := dataset.ExampleMovies()
		if err != nil {
			t.Fatal(err)
		}
		if err := dataset.AnnotateNarrative(g); err != nil {
			t.Fatal(err)
		}
		eng, err := Open(db, g, quietPersistConfig(dir))
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		assertRefEqual(t, fmt.Sprintf("primary crash at WAL byte %d (%d script records)", cut, k),
			refs[k], captureRef(t, eng))
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		recoveries++
	}
	t.Logf("quorum torture: %d per-mutation promotions, %d primary crash recoveries over a %d-byte WAL",
		numCrashMutations, recoveries, len(walRaw))
}

// TestQuorumLostDoesNotBlockWriter: with a sync quorum configured and no
// follower at all, every mutation kind must return the typed ErrQuorumLost
// within the ack timeout — applied locally, never blocking indefinitely,
// never rolling back.
func TestQuorumLostDoesNotBlockWriter(t *testing.T) {
	primary, _ := startSyncPrimary(t, t.TempDir(), repl.PrimaryConfig{
		SyncReplicas: 1,
		AckTimeout:   50 * time.Millisecond,
	})
	defer primary.Close()

	start := time.Now()
	if _, err := primary.Insert("GENRE", storage.Int(910), storage.String("Lonely")); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("Insert without quorum: want ErrQuorumLost, got %v", err)
	}
	if err := primary.AddSynonym("solo", "Match Point"); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("AddSynonym without quorum: want ErrQuorumLost, got %v", err)
	}
	if err := primary.DefineMacro(`DEFINE QUORUM_TEST as "still here."`); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("DefineMacro without quorum: want ErrQuorumLost, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("three quorum-lost writes took %s; the timeout did not bound them", elapsed)
	}
	// All three writes are applied locally: quorum loss reports reduced
	// durability, it does not reject the mutation.
	if _, ok := findGenre(primary, "Lonely"); !ok {
		t.Fatal("quorum-lost insert missing from local state")
	}
	if got := primary.ReplStats().Primary.QuorumTimeouts; got != 3 {
		t.Fatalf("quorum timeouts: got %d, want 3", got)
	}
}

// TestQuorumDegradedModeEngine: DegradeToAsync turns quorum loss into a
// sticky degraded flag — writes succeed immediately once degraded — and
// the flag heals when a follower attaches and its acks reach the frontier.
func TestQuorumDegradedModeEngine(t *testing.T) {
	primary, addr := startSyncPrimary(t, t.TempDir(), repl.PrimaryConfig{
		SyncReplicas:   1,
		AckTimeout:     50 * time.Millisecond,
		DegradeToAsync: true,
	})
	defer primary.Close()

	if _, err := primary.Insert("GENRE", storage.Int(910), storage.String("Degraded")); err != nil {
		t.Fatalf("degrade-to-async insert: %v", err)
	}
	st := primary.ReplStats().Primary
	if !st.Degraded || st.QuorumTimeouts == 0 {
		t.Fatalf("after quorum loss with DegradeToAsync: %+v", st)
	}
	// Sticky: the next write must not wait out a fresh timeout window.
	start := time.Now()
	if _, err := primary.Insert("GENRE", storage.Int(910), storage.String("StillDegraded")); err != nil {
		t.Fatalf("insert while degraded: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("degraded write waited %s; the sticky flag must skip the quorum wait", elapsed)
	}

	// A follower attaches, catches up, and acks the frontier: healed.
	follower, err := openDurableFollowerOf(addr, t.TempDir())
	if err != nil {
		t.Fatalf("follower: %v", err)
	}
	defer follower.Close()
	waitReplConverged(t, primary, follower, 10*time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for primary.ReplStats().Primary.Degraded {
		if time.Now().After(deadline) {
			t.Fatal("degraded flag never healed after the follower converged")
		}
		time.Sleep(time.Millisecond)
	}
	// Healed means synchronous again: this write waits for (and gets) the ack.
	if _, err := primary.Insert("GENRE", storage.Int(910), storage.String("HealedSync")); err != nil {
		t.Fatalf("insert after heal: %v", err)
	}
	waitReplConverged(t, primary, follower, 10*time.Second)
	assertReplicaIdentical(t, primary, follower, "after degrade and heal")
}

// TestFollowerResumeFromLocalWAL restarts a durable follower: it must
// rebuild from its own data directory and rejoin the stream at its local
// frontier — zero snapshot transfers — then converge on the writes it
// missed while down.
func TestFollowerResumeFromLocalWAL(t *testing.T) {
	primary, addr := startSyncPrimary(t, t.TempDir(), repl.PrimaryConfig{}) // async primary
	defer primary.Close()

	fdir := t.TempDir()
	follower, err := openDurableFollowerOf(addr, fdir)
	if err != nil {
		t.Fatalf("durable follower: %v", err)
	}
	for i := 0; i < numCrashMutations/2; i++ {
		if err := crashMutation(primary, i); err != nil {
			t.Fatal(err)
		}
	}
	waitReplConverged(t, primary, follower, 10*time.Second)
	if fs := follower.ReplStats().Follower; !fs.Durable || fs.AcksSent == 0 {
		t.Fatalf("durable follower stats before restart: %+v", fs)
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	// The primary moves on while the follower is down.
	for i := numCrashMutations / 2; i < numCrashMutations; i++ {
		if err := crashMutation(primary, i); err != nil {
			t.Fatal(err)
		}
	}

	follower, err = openDurableFollowerOf(addr, fdir)
	if err != nil {
		t.Fatalf("reopen durable follower: %v", err)
	}
	defer follower.Close()
	waitReplConverged(t, primary, follower, 10*time.Second)
	fs := follower.ReplStats().Follower
	if fs.Snapshots != 0 {
		t.Fatalf("restarted durable follower took %d snapshot transfer(s); it must resume from its local WAL", fs.Snapshots)
	}
	assertReplicaIdentical(t, primary, follower, "after local-WAL resume")
}

// TestQuorumAckPathTorture rotates faults over the ack path — ack-send
// severs, genuine ack-frame corruption, ack-reader severs on the primary,
// and follower fsync failures — around every scripted mutation of a
// synchronous pair. Every mutation must still commit (the reconnected
// follower's opening ack covers it), the pair must reconverge
// byte-identically each round, and the follower's local WAL must end
// byte-identical to the primary's.
func TestQuorumAckPathTorture(t *testing.T) {
	errInjected := errors.New("ack-torture: injected fault")
	faults := []struct {
		name string
		site string
		err  error
	}{
		{"ack-send-sever", faultinject.SiteReplAckSend, errInjected},
		{"ack-send-corrupt", faultinject.SiteReplAckSend, repl.ErrInjectCorrupt},
		{"ack-recv-sever", faultinject.SiteReplAckRecv, errInjected},
		{"follower-fsync-fail", faultinject.SiteReplFollowerFsync, errInjected},
	}

	pdir := t.TempDir()
	primary, addr := startSyncPrimary(t, pdir, repl.PrimaryConfig{
		SyncReplicas: 1,
		AckTimeout:   30 * time.Second, // commits must release by ack, never by timeout
	})
	defer primary.Close()
	fdir := t.TempDir()
	follower, err := openDurableFollowerOf(addr, fdir)
	if err != nil {
		t.Fatalf("durable follower: %v", err)
	}
	defer follower.Close()

	rounds := 0
	for i := 0; i < numCrashMutations; i++ {
		fc := faults[i%len(faults)]
		plan := faultinject.NewPlan().Set(fc.site, faultinject.Rule{Err: fc.err, Limit: 2})
		deactivate := faultinject.Activate(plan)
		if err := crashMutation(primary, i); err != nil {
			deactivate()
			t.Fatalf("mutation %d under %s: %v", i, fc.name, err)
		}
		fired := plan.Fired(fc.site)
		deactivate()
		waitReplConverged(t, primary, follower, 30*time.Second)
		assertReplicaIdentical(t, primary, follower, fmt.Sprintf("mutation %d under %s", i, fc.name))
		if fired > 0 {
			rounds++
		}
	}
	if rounds == 0 {
		t.Fatal("no ack fault ever fired: the torture never touched the ack path")
	}

	// Byte-identical logs after all that: re-delivered frames were skipped,
	// never duplicated, and rotations never drifted.
	pwal, err := os.ReadFile(filepath.Join(pdir, gen1WAL))
	if err != nil {
		t.Fatal(err)
	}
	fwal, err := os.ReadFile(filepath.Join(fdir, gen1WAL))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pwal, fwal) {
		t.Fatalf("after ack torture, follower WAL (%d bytes) differs from primary WAL (%d bytes)", len(fwal), len(pwal))
	}
	t.Logf("ack torture: %d/%d rounds actually fired a fault, logs byte-identical at %d bytes", rounds, numCrashMutations, len(pwal))
}

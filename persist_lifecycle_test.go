package precis

// Lifecycle edge tests for the persistence layer: closing over a poisoned
// WAL writer, double Close, and Checkpoint racing Close. These paths run
// rarely in production — exactly why they get dedicated coverage.

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"precis/internal/faultinject"
	"precis/internal/storage"
)

// TestCloseAfterPoisonedWALWriter poisons the WAL writer with an injected
// fsync failure, verifies the engine refuses further logged mutations,
// then requires Close to land a final checkpoint that makes the full
// in-memory state durable anyway — the snapshot path does not depend on
// the poisoned writer.
func TestCloseAfterPoisonedWALWriter(t *testing.T) {
	dir := t.TempDir()
	eng := openPersistent(t, dir)
	for i := 0; i < 4; i++ {
		if err := crashMutation(eng, i); err != nil {
			t.Fatal(err)
		}
	}

	errFsync := errors.New("lifecycle: injected fsync failure")
	deactivate := faultinject.Activate(faultinject.NewPlan().
		Set(faultinject.SiteWALFsync, faultinject.Rule{Err: errFsync, Limit: 1}))
	err := eng.Sync()
	deactivate()
	if !errors.Is(err, errFsync) {
		t.Fatalf("Sync over injected fsync failure: got %v, want the injected error", err)
	}

	// The writer is now sticky-poisoned: logged mutations must fail loudly
	// and roll back rather than silently diverge from the log.
	preDump := dumpDatabase(eng.Database())
	if _, err := eng.Insert("GENRE", storage.Int(1), storage.String("poisoned")); err == nil {
		t.Fatal("Insert succeeded on a poisoned WAL writer")
	} else if !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("Insert error does not name the poison: %v", err)
	}
	if got := dumpDatabase(eng.Database()); got != preDump {
		t.Fatal("rejected mutation left a trace in the database")
	}

	// Close must still succeed: the final checkpoint writes a fresh
	// snapshot and rotates to a new writer, bypassing the poisoned one.
	if err := eng.Close(); err != nil {
		t.Fatalf("Close after poisoned writer: %v", err)
	}
	reopened := openPersistent(t, dir)
	defer reopened.Close()
	if got := dumpDatabase(reopened.Database()); got != preDump {
		t.Fatalf("state lost across a poisoned-writer close:\nwant:\n%s\ngot:\n%s", preDump, got)
	}
	if st := reopened.PersistStats(); st.Recovery.WALRecordsReplayed != 0 {
		t.Errorf("close checkpoint did not land: %d WAL records replayed on reopen", st.Recovery.WALRecordsReplayed)
	}
}

// TestDoubleClose closes an engine twice in every role; the second call
// must be a quiet nil, never a panic or a second checkpoint attempt.
func TestDoubleClose(t *testing.T) {
	t.Run("persistent", func(t *testing.T) {
		eng := openPersistent(t, t.TempDir())
		if err := eng.Close(); err != nil {
			t.Fatalf("first Close: %v", err)
		}
		if err := eng.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	})
	t.Run("in-memory", func(t *testing.T) {
		eng := newEngine(t)
		if err := eng.Close(); err != nil {
			t.Fatalf("first Close: %v", err)
		}
		if err := eng.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	})
	t.Run("replicated", func(t *testing.T) {
		primary, addr := startReplPrimary(t)
		follower := startReplFollower(t, addr)
		for _, step := range []struct {
			name string
			eng  *Engine
		}{{"follower", follower}, {"primary", primary}} {
			if err := step.eng.Close(); err != nil {
				t.Fatalf("first %s Close: %v", step.name, err)
			}
			if err := step.eng.Close(); err != nil {
				t.Fatalf("second %s Close: %v", step.name, err)
			}
		}
	})
}

// TestCheckpointRacingClose races Checkpoint (and Sync) calls against
// Close from many goroutines. Every call must return — no deadlock, no
// panic — and the only sanctioned failure is the engine-is-closed error;
// afterwards the directory must reopen to the exact live state.
func TestCheckpointRacingClose(t *testing.T) {
	dir := t.TempDir()
	eng := openPersistent(t, dir)
	for i := 0; i < numCrashMutations; i++ {
		if err := crashMutation(eng, i); err != nil {
			t.Fatal(err)
		}
	}
	liveDump := dumpDatabase(eng.Database())

	const racers = 8
	var wg sync.WaitGroup
	errs := make(chan error, racers+1)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	start := make(chan struct{})
	for w := 0; w < racers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 20; i++ {
				var err error
				if w%2 == 0 {
					err = eng.Checkpoint()
				} else {
					err = eng.Sync()
				}
				if err != nil && !strings.Contains(err.Error(), "engine is closed") {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := eng.Close(); err != nil {
			fail(err)
		}
	}()
	close(start)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("checkpoint/close race: %v", err)
	default:
	}

	reopened := openPersistent(t, dir)
	defer reopened.Close()
	if got := dumpDatabase(reopened.Database()); got != liveDump {
		t.Fatalf("checkpoint/close race corrupted durable state:\nwant:\n%s\ngot:\n%s", liveDump, got)
	}
}

module precis

go 1.22

// Package precis implements précis queries over relational databases, a
// faithful reproduction of "Précis: The Essence of a Query Answer"
// (Koutrika, Simitsis, Ioannidis — ICDE 2006).
//
// A précis query is a free-form set of tokens. Its answer is not a flat
// relation but a whole new database — a sub-database of the original with
// its own schema, constraints and contents — containing the tuples matching
// the tokens plus information implicitly related to them, selected by
// weights on the database schema graph and bounded by degree (schema size)
// and cardinality (data size) constraints. The answer can additionally be
// rendered as a natural-language narrative.
//
// Basic use:
//
//	db, graph, _ := dataset.ExampleMovies()   // or build your own
//	eng, _ := precis.New(db, graph)
//	ans, _ := eng.Query([]string{"Woody Allen"}, precis.Options{
//		Degree:      precis.MinPathWeight(0.9),
//		Cardinality: precis.MaxTuplesPerRelation(3),
//	})
//	fmt.Println(ans.Narrative)
package precis

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"precis/internal/anscache"
	"precis/internal/core"
	"precis/internal/costmodel"
	"precis/internal/invidx"
	"precis/internal/nlg"
	"precis/internal/obs"
	"precis/internal/profile"
	"precis/internal/repl"
	"precis/internal/schemagraph"
	"precis/internal/shard"
	"precis/internal/sqlx"
	"precis/internal/storage"
	"precis/internal/wal"
)

// ErrNoMatches is returned when no query token occurs in the database.
var ErrNoMatches = errors.New("precis: no token matched the database")

// ErrInternal wraps a panic recovered at the engine boundary: the query
// failed, but the process — and every other in-flight query — survives. The
// wrapped message carries the panic value and the stack of the panicking
// goroutine (including worker goroutines of the parallel fetch pool), so
// one poisoned tuple can be diagnosed without taking the server down.
var ErrInternal = errors.New("precis: internal error")

// Re-exported constraint and strategy types. The concrete constructors
// below build the constraints of the paper's Tables 1 and 2.
type (
	// DegreeConstraint bounds the result schema (paper Table 1).
	DegreeConstraint = core.DegreeConstraint
	// CardinalityConstraint bounds the result data (paper Table 2).
	CardinalityConstraint = core.CardinalityConstraint
	// Strategy selects NaïveQ vs Round-Robin tuple retrieval.
	Strategy = core.Strategy
	// Profile is a stored personalization (weights + default constraints).
	Profile = profile.Profile
	// TupleWeights assigns per-tuple importance (the paper's §7 extension):
	// when the cardinality budget forces a choice, heavier tuples survive.
	TupleWeights = core.TupleWeights
	// Budget bounds the physical resources of one query (wall deadline,
	// materialized tuples, join steps, approximate result bytes). An
	// exhausted budget does not fail the query: the answer built so far is
	// returned with Answer.Partial set and the budget dimension that ran
	// out in Answer.Truncation.
	Budget = core.Budget
	// TruncationReason names the budget dimension that truncated a partial
	// answer.
	TruncationReason = core.TruncationReason
)

// Truncation reasons reported in Answer.Truncation.
const (
	TruncateNone        = core.TruncateNone
	TruncateDeadline    = core.TruncateDeadline
	TruncateTupleBudget = core.TruncateTupleBudget
	TruncateStepBudget  = core.TruncateStepBudget
	TruncateByteBudget  = core.TruncateByteBudget
)

// Retrieval strategies (paper §5.2).
const (
	StrategyAuto       = core.StrategyAuto
	StrategyNaive      = core.StrategyNaive
	StrategyRoundRobin = core.StrategyRoundRobin
)

// TopProjections keeps the r top-weighted projection paths.
func TopProjections(r int) DegreeConstraint { return core.TopProjections(r) }

// MaxAttributes bounds the number of distinct projected attributes.
func MaxAttributes(n int) DegreeConstraint { return core.MaxAttributes(n) }

// MinPathWeight keeps projections whose transitive path weight is >= w.
func MinPathWeight(w float64) DegreeConstraint { return core.MinPathWeight(w) }

// MaxPathLength keeps projection paths of length at most l.
func MaxPathLength(l int) DegreeConstraint { return core.MaxPathLength(l) }

// AllDegree combines degree constraints conjunctively.
func AllDegree(cs ...DegreeConstraint) DegreeConstraint { return core.AllDegree(cs...) }

// MaxTuplesPerRelation caps every result relation at c tuples.
func MaxTuplesPerRelation(c int) CardinalityConstraint { return core.MaxTuplesPerRelation(c) }

// MaxTotalTuples caps the whole result database at c tuples.
func MaxTotalTuples(c int) CardinalityConstraint { return core.MaxTotalTuples(c) }

// Unlimited imposes no cardinality bound.
func Unlimited() CardinalityConstraint { return core.Unlimited() }

// AllCardinality combines cardinality constraints conjunctively.
func AllCardinality(cs ...CardinalityConstraint) CardinalityConstraint {
	return core.AllCardinality(cs...)
}

// TimeBudget converts a response-time budget into a per-relation
// cardinality constraint via the paper's Formula 3, using calibrated engine
// parameters and the expected number of relations in the result.
func TimeBudget(params costmodel.Params, budget time.Duration, relations int) CardinalityConstraint {
	return core.MaxTuplesPerRelation(costmodel.SolveCR(params, budget, relations))
}

// Engine answers précis queries over one database + annotated schema graph.
// Queries may run concurrently; mutations (Insert, Delete, DefineMacro,
// AddProfile, SetTupleWeights) are serialized against them internally, and
// every mutation invalidates the answer cache so concurrent readers never
// observe a stale précis.
type Engine struct {
	mu       sync.RWMutex
	db       *storage.Database
	graph    *schemagraph.Graph
	index    *invidx.Index
	renderer *nlg.Renderer
	profiles *profile.Registry
	// weights are the engine-level default tuple weights (§7 extension),
	// applied when Options.TupleWeights is nil. The engine owns a private
	// deep copy, replaced wholesale under mu, so queries read it without
	// further locking.
	weights TupleWeights
	// cache holds computed answers; nil until EnableCache.
	cache *anscache.Cache
	// registry and metrics are set by Instrument; nil means the engine is
	// un-instrumented and the query path skips all accounting.
	registry *obs.Registry
	metrics  *engineMetrics
	// persist is the durability layer mounted by Open; nil on in-memory
	// engines, in which case the mutation paths pay exactly one nil check.
	persist *persistState
	// replica is the follower-side replication state mounted by
	// OpenFollower; non-nil makes every mutation return ErrReadOnly.
	replica *replicaState
	// replPrimary streams the WAL to followers once StartReplication runs.
	replPrimary *repl.Primary
	// promoting is true while Promote is converting this follower into a
	// primary; mutations stay refused for the duration.
	promoting bool
	// fencedBy, when non-zero, is the epoch of the primary that deposed
	// this engine: every mutation fails with ErrFenced. Set at Open (the
	// fence is durable) or live via the primary's deposition hook.
	fencedBy uint64
	// failover is the auto-promotion supervisor armed by
	// EnableAutoFailover; Close stops it before anything else.
	failover *repl.Supervisor
	// lifeMu serializes role changes (Promote) against Close. It is taken
	// before mu and never while holding it.
	lifeMu sync.Mutex
	// macroDefs / macroSeen remember narrative macro definitions so
	// checkpoints can persist them (the renderer has no introspection API).
	macroDefs []string
	macroSeen map[string]bool
	// shards is the sharded coordinator state mounted by NewSharded; nil on
	// a single-engine instance. A sharded coordinator has nil db/index — the
	// data lives on the shard engines — and routes fetches, index probes and
	// mutations through this.
	shards *shardSet
}

// CacheConfig sizes the engine's answer cache.
type CacheConfig struct {
	// MaxEntries bounds the number of resident answers (<= 0: 128).
	MaxEntries int
	// TTL expires answers by age; 0 disables time-based expiry (entries
	// still fall out by LRU order and on invalidation).
	TTL time.Duration
}

// CacheStats reports the answer cache's hit/miss counters.
type CacheStats = anscache.Stats

// EnableCache turns on (or resizes) the engine's LRU answer cache. Repeated
// queries with the same normalized tokens, constraints, profile, and weight
// overlay are then answered from memory until a mutation invalidates them.
// Resizing drops existing entries.
func (e *Engine) EnableCache(cfg CacheConfig) {
	e.mu.Lock()
	defer e.mu.Unlock()
	// On an instrumented engine the cache counters are registry-backed:
	// the registry get-or-creates by name, so hit/miss totals continue
	// monotonically across resizes and /metrics equals /api/stats.
	var ctr *anscache.Counters
	if e.registry != nil {
		ctr = cacheCountersFrom(e.registry)
	}
	e.cache = anscache.NewWithCounters(cfg.MaxEntries, cfg.TTL, ctr)
}

// DisableCache removes the answer cache.
func (e *Engine) DisableCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache = nil
}

// InvalidateCache explicitly drops every cached answer. The engine already
// invalidates on its own mutations (Insert, Update, Delete, AddSynonym,
// DefineMacro, AddProfile, SetTupleWeights); call this after mutating the
// underlying database or schema graph through a side channel.
func (e *Engine) InvalidateCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.purgeCacheLocked()
}

// CacheStats snapshots the answer cache counters (zero value when the
// cache is disabled).
func (e *Engine) CacheStats() CacheStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.Stats()
}

// CacheEnabled reports whether the answer cache is on.
func (e *Engine) CacheEnabled() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cache != nil
}

// purgeCacheLocked drops all cached answers; callers hold e.mu.
func (e *Engine) purgeCacheLocked() {
	if e.cache != nil {
		e.cache.Purge()
	}
}

// SetTupleWeights stores engine-level default tuple weights (the §7
// extension), used whenever Options.TupleWeights is nil. The weights are
// deep-copied, so later changes to w by the caller do not affect the
// engine; pass nil to clear. Changing weights invalidates the cache.
func (e *Engine) SetTupleWeights(w TupleWeights) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.weights = copyTupleWeights(w)
	e.purgeCacheLocked()
}

// copyTupleWeights deep-copies a tuple-weight map (nil stays nil).
func copyTupleWeights(w TupleWeights) TupleWeights {
	if w == nil {
		return nil
	}
	out := make(TupleWeights, len(w))
	for rel, m := range w {
		cm := make(map[storage.TupleID]float64, len(m))
		for id, wt := range m {
			cm[id] = wt
		}
		out[rel] = cm
	}
	return out
}

// New builds an engine: it validates the graph against the database and
// constructs the inverted index over all string attributes.
func New(db *storage.Database, g *schemagraph.Graph) (*Engine, error) {
	if db == nil || g == nil {
		return nil, fmt.Errorf("precis: need a database and a schema graph")
	}
	if err := g.Validate(db); err != nil {
		return nil, err
	}
	return &Engine{
		db:       db,
		graph:    g,
		index:    invidx.NewParallel(db, runtime.GOMAXPROCS(0)),
		renderer: nlg.NewRenderer(),
		profiles: profile.NewRegistry(),
	}, nil
}

// newWithIndex is New with a prebuilt inverted index — recovery loading a
// persisted index snapshot instead of re-tokenizing every tuple. The index
// must already be bound to db and current with it.
func newWithIndex(db *storage.Database, g *schemagraph.Graph, ix *invidx.Index) (*Engine, error) {
	if db == nil || g == nil {
		return nil, fmt.Errorf("precis: need a database and a schema graph")
	}
	if err := g.Validate(db); err != nil {
		return nil, err
	}
	return &Engine{
		db:       db,
		graph:    g,
		index:    ix,
		renderer: nlg.NewRenderer(),
		profiles: profile.NewRegistry(),
	}, nil
}

// Database returns the underlying database. It holds the engine read
// lock: a follower re-bootstrap swaps the database wholesale, so an
// unlocked read would race the swap. On a sharded coordinator there is no
// single underlying database and this returns nil — use DatabaseName,
// TotalTuples, NumRelations, or ShardStats instead.
func (e *Engine) Database() *storage.Database {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.db
}

// Graph returns the annotated schema graph.
func (e *Engine) Graph() *schemagraph.Graph {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.graph
}

// Index returns the inverted index (see Database about the lock). Nil on a
// sharded coordinator — each shard owns an index over its own tuples.
func (e *Engine) Index() *invidx.Index {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.index
}

// AddSynonym declares that queries for alias also match canonical — the
// §5.1 synonym case ("W. Allen" for "Woody Allen"); deployments plug a
// reference-reconciliation tool's output in through this.
//
// On a persistent engine the synonym is logged to the WAL first; if the log
// write fails the synonym is dropped and the error returned, so the
// in-memory index never holds state a recovery would lose and the caller
// can observe the lost write and retry. On an in-memory engine the error
// is always nil.
func (e *Engine) AddSynonym(alias, canonical string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.mutableLocked(); err != nil {
		return err
	}
	if e.shards != nil {
		e.purgeCacheLocked()
		return e.shards.addSynonym(alias, canonical)
	}
	if err := e.appendWALLocked(wal.Record{Op: wal.OpSynonym, Alias: alias, Canonical: canonical}); err != nil {
		if !errors.Is(err, ErrQuorumLost) {
			return err
		}
		// Quorum lost ≠ not written: the record is durable on the local
		// WAL, so the in-memory change must happen (a recovery would
		// replay it) — the error only reports reduced durability.
		e.index.AddSynonym(alias, canonical)
		e.purgeCacheLocked()
		return err
	}
	e.index.AddSynonym(alias, canonical)
	e.purgeCacheLocked()
	return nil
}

// DefineMacro registers a narrative macro ("DEFINE NAME as ...").
func (e *Engine) DefineMacro(def string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.mutableLocked(); err != nil {
		return err
	}
	e.purgeCacheLocked()
	if e.shards != nil {
		return e.shards.defineMacro(e, def)
	}
	// Validate-then-log: a definition the renderer rejects must never reach
	// the WAL (it would poison every future recovery), so the parse runs
	// first. If the log write then fails, the error is returned and the
	// definition is not tracked for snapshots — the caller retries, and
	// macro redefinition is idempotent.
	if err := e.renderer.DefineMacro(def); err != nil {
		return err
	}
	if err := e.appendWALLocked(wal.Record{Op: wal.OpMacro, Def: def}); err != nil {
		if !errors.Is(err, ErrQuorumLost) {
			return err
		}
		// Locally durable; keep memory consistent with what recovery
		// would replay and report the quorum failure.
		e.trackMacroLocked(def)
		return err
	}
	e.trackMacroLocked(def)
	return nil
}

// AddProfile stores a personalization profile.
func (e *Engine) AddProfile(p *Profile) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.purgeCacheLocked()
	return e.profiles.Add(p)
}

// Profiles returns the registered profile names, sorted. It holds the
// engine read lock: before this fix the registry map was read without any
// lock while AddProfile wrote it, a data race `go test -race` flags (see
// TestProfilesConcurrentWithAddProfile).
func (e *Engine) Profiles() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.profiles.Names()
}

// Insert adds a tuple and keeps the inverted index current. On a
// persistent engine the insert is also logged to the WAL (with its concrete
// tuple ID, so replay reconstructs identical IDs); a failed log write rolls
// the in-memory insert back and returns the error.
func (e *Engine) Insert(relation string, vals ...storage.Value) (storage.TupleID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.mutableLocked(); err != nil {
		return 0, err
	}
	e.purgeCacheLocked()
	if e.shards != nil {
		return e.shards.insert(relation, vals)
	}
	id, err := e.db.Insert(relation, vals...)
	if err != nil {
		return 0, err
	}
	t, ok := e.db.Relation(relation).Get(id)
	if ok {
		e.index.AddTuple(relation, t)
	}
	if err := e.appendWALLocked(wal.Record{Op: wal.OpInsert, Rel: relation, ID: id, Values: vals}); err != nil {
		if errors.Is(err, ErrQuorumLost) {
			// The record is durable on the local WAL — rolling back would
			// diverge memory from what recovery replays. Return the real
			// ID with the error so the caller sees both facts.
			return id, err
		}
		if ok {
			e.index.RemoveTuple(relation, t)
		}
		_, _ = e.db.Delete(relation, id)
		return 0, err
	}
	return id, nil
}

// Update replaces a tuple's values and keeps the inverted index current.
func (e *Engine) Update(relation string, id storage.TupleID, vals []storage.Value) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.mutableLocked(); err != nil {
		return err
	}
	e.purgeCacheLocked()
	if e.shards != nil {
		return e.shards.update(relation, id, vals)
	}
	rel := e.db.Relation(relation)
	if rel == nil {
		return fmt.Errorf("precis: no relation %s", relation)
	}
	old, ok := rel.Get(id)
	if !ok {
		return fmt.Errorf("precis: relation %s has no tuple %d", relation, id)
	}
	if err := e.db.Update(relation, id, vals); err != nil {
		return err
	}
	e.index.RemoveTuple(relation, old)
	var updated storage.Tuple
	var haveUpdated bool
	if t, ok := rel.Get(id); ok {
		updated, haveUpdated = t, true
		e.index.AddTuple(relation, t)
	}
	if err := e.appendWALLocked(wal.Record{Op: wal.OpUpdate, Rel: relation, ID: id, Values: vals}); err != nil {
		if errors.Is(err, ErrQuorumLost) {
			return err // locally durable; no rollback (see Insert)
		}
		// Roll the in-memory update back so memory and disk agree.
		if haveUpdated {
			e.index.RemoveTuple(relation, updated)
		}
		if rbErr := e.db.Update(relation, id, old.Values); rbErr == nil {
			if t, ok := rel.Get(id); ok {
				e.index.AddTuple(relation, t)
			}
		}
		return err
	}
	return nil
}

// Delete removes a tuple and keeps the inverted index current.
func (e *Engine) Delete(relation string, id storage.TupleID) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.mutableLocked(); err != nil {
		return false, err
	}
	e.purgeCacheLocked()
	if e.shards != nil {
		return e.shards.delete(relation, id)
	}
	rel := e.db.Relation(relation)
	if rel == nil {
		return false, fmt.Errorf("precis: no relation %s", relation)
	}
	t, ok := rel.Get(id)
	if !ok {
		return false, nil
	}
	e.index.RemoveTuple(relation, t)
	deleted, err := e.db.Delete(relation, id)
	if err != nil || !deleted {
		if _, still := rel.Get(id); still {
			e.index.AddTuple(relation, t)
		}
		return deleted, err
	}
	if err := e.appendWALLocked(wal.Record{Op: wal.OpDelete, Rel: relation, ID: id}); err != nil {
		if errors.Is(err, ErrQuorumLost) {
			return true, err // locally durable; no rollback (see Insert)
		}
		// Resurrect the tuple (same ID) so memory and disk agree.
		if rbErr := e.db.InsertWithID(relation, id, t.Values...); rbErr == nil {
			e.index.AddTuple(relation, t)
		}
		return false, err
	}
	return true, nil
}

// Options tune one query. Zero-value fields fall back to the selected
// profile's defaults, then to the engine defaults (MinPathWeight 0.8, 10
// tuples per relation, auto strategy).
type Options struct {
	Degree        DegreeConstraint
	Cardinality   CardinalityConstraint
	Strategy      Strategy
	Profile       string             // name of a registered profile
	WeightOverlay map[string]float64 // ad-hoc per-query weight changes (§3.1 interactive exploration)
	// TupleWeights biases which tuples survive the cardinality budget
	// (§7 extension); nil falls back to the engine-level weights set with
	// SetTupleWeights. The map is deep-copied at query start, so the
	// generator never observes concurrent caller mutations mid-query.
	// Queries with per-call TupleWeights bypass the answer cache.
	TupleWeights TupleWeights
	// SkipNarrative suppresses narrative rendering (benchmarks).
	SkipNarrative bool
	// Budget bounds the physical resources of this query. The zero value
	// imposes no bounds. When a dimension runs out mid-generation, the
	// query degrades gracefully: it returns the deterministic prefix
	// answer built so far (Answer.Partial, Answer.Truncation) instead of
	// an error. Seed tuples are always materialized, so a budgeted answer
	// is non-empty whenever the query matched anything. Queries with a
	// Deadline bypass the answer cache (absolute instants never recur);
	// partial answers are never cached.
	Budget Budget
	// Parallelism bounds the worker pool used for inverted-index probes
	// and result-database generation: 0 uses one worker per logical CPU
	// (runtime.GOMAXPROCS), negative values force the serial path, and
	// everything is capped at 64. The answer is byte-identical for every
	// setting — parallelism only changes latency.
	Parallelism int
	// Trace records per-stage timing for this query and attaches it to
	// Answer.Trace: one span per pipeline stage (tokenize, cache_lookup,
	// index_lookup, schema_gen, db_gen, translate) plus fine-grained
	// db_gen steps (seed placement and every join edge) with tuple and
	// query counts. When false — the default — the query path performs no
	// trace allocations and pays one nil check per stage.
	Trace bool
}

// Answer is the result of a précis query.
type Answer struct {
	Terms []string
	// Occurrences maps each matched term to its index occurrences.
	Occurrences map[string][]invidx.Occurrence
	// Unmatched lists terms with no occurrence.
	Unmatched []string
	// Schema is the result schema G'.
	Schema *core.ResultSchema
	// Result is the generated result database (the précis itself).
	Result *core.ResultDatabase
	// Database is Result.DB, the new database D'.
	Database *storage.Database
	// Narrative is the natural-language synthesis (empty if skipped).
	Narrative string
	// Stats records the physical work of data generation.
	Stats core.GenStats
	// Partial reports that a resource budget truncated generation: the
	// answer is a deterministic prefix of the unbudgeted answer, not the
	// complete constrained précis.
	Partial bool
	// Truncation names the budget dimension that ran out (empty when the
	// answer is complete).
	Truncation TruncationReason
	// FromCache reports that this answer was served from the answer cache
	// rather than computed by the pipeline.
	FromCache bool
	// Trace is the per-stage timing of this query, present only when
	// Options.Trace was set. For cache hits it covers the tokenize and
	// cache_lookup stages only (the pipeline never ran); cached answers
	// themselves are stored without traces.
	Trace *obs.Trace
}

// ParseQuery splits a free-form query string into terms, honouring double
// quotes for phrases: `"Woody Allen" comedy` → ["Woody Allen", "comedy"].
func ParseQuery(q string) []string {
	var terms []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if s := strings.TrimSpace(cur.String()); s != "" {
			terms = append(terms, s)
		}
		cur.Reset()
	}
	for _, r := range q {
		switch {
		case r == '"':
			if inQuote {
				flush()
			}
			inQuote = !inQuote
		case !inQuote && (r == ' ' || r == '\t' || r == '\n'):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return terms
}

// QueryString parses a free-form query string and runs Query.
func (e *Engine) QueryString(q string, opts Options) (*Answer, error) {
	return e.Query(ParseQuery(q), opts)
}

// QueryStringContext parses a free-form query string and runs QueryContext.
func (e *Engine) QueryStringContext(ctx context.Context, q string, opts Options) (*Answer, error) {
	return e.QueryContext(ctx, ParseQuery(q), opts)
}

// Query answers a précis query Q = {k1, ..., km}: it resolves the tokens
// through the inverted index, generates the result schema under the degree
// constraint, populates the result database under the cardinality
// constraint, and renders the narrative.
func (e *Engine) Query(terms []string, opts Options) (*Answer, error) {
	return e.QueryContext(context.Background(), terms, opts)
}

// cacheKey fingerprints the inputs a cached answer depends on: the
// normalized (tokenized, case-folded) terms in order, the requested
// constraints and strategy, the profile name, the ad-hoc weight overlay,
// and whether the narrative was rendered. Database contents and engine
// weights are not part of the key — any change to them purges the whole
// cache instead. The second return is false when the query is not
// cacheable (per-call tuple weights carry arbitrary maps that are not
// worth fingerprinting, and budget deadlines are absolute instants that
// never recur — a deadline answer cached now would be wrong forever).
// Deterministic budget dimensions (tuples, steps, bytes) are part of the
// key, since different budgets legitimately produce different answers.
func cacheKey(terms []string, opts Options) (string, bool) {
	if opts.TupleWeights != nil {
		return "", false
	}
	if !opts.Budget.Deadline.IsZero() || opts.Budget.Now != nil {
		return "", false
	}
	var sb strings.Builder
	for _, t := range terms {
		sb.WriteString(strings.Join(invidx.Tokenize(t), " "))
		sb.WriteByte('\x1f')
	}
	sb.WriteByte('\x1e')
	if opts.Degree != nil {
		sb.WriteString(opts.Degree.String())
	}
	sb.WriteByte('\x1e')
	if opts.Cardinality != nil {
		sb.WriteString(opts.Cardinality.String())
	}
	sb.WriteByte('\x1e')
	sb.WriteString(opts.Strategy.String())
	sb.WriteByte('\x1e')
	sb.WriteString(opts.Profile)
	sb.WriteByte('\x1e')
	if len(opts.WeightOverlay) > 0 {
		keys := make([]string, 0, len(opts.WeightOverlay))
		for k := range opts.WeightOverlay {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sb.WriteString(k)
			sb.WriteByte('=')
			sb.WriteString(strconv.FormatFloat(opts.WeightOverlay[k], 'g', -1, 64))
			sb.WriteByte('\x1f')
		}
	}
	sb.WriteByte('\x1e')
	if opts.SkipNarrative {
		sb.WriteByte('1')
	}
	sb.WriteByte('\x1e')
	if b := opts.Budget; b.MaxTuples > 0 || b.MaxJoinSteps > 0 || b.MaxResultBytes > 0 {
		fmt.Fprintf(&sb, "%d,%d,%d", b.MaxTuples, b.MaxJoinSteps, b.MaxResultBytes)
	}
	return sb.String(), true
}

// shallowCopy returns a copy of the answer struct so cache hits hand each
// caller its own Answer header. The result database, schema, and occurrence
// slices stay shared and must be treated as read-only — which they are for
// every engine code path, since each query builds a fresh result database.
func (a *Answer) shallowCopy() *Answer {
	cp := *a
	return &cp
}

// QueryContext is Query with cancellation: ctx deadlines and cancellations
// are honoured between pipeline stages and inside the per-join tuple loops
// of result-database generation, and the returned error wraps ctx.Err().
// The web layer uses this for per-request timeouts.
//
// QueryContext is also the engine's fault boundary: a panic anywhere in the
// pipeline — including inside parallel fetch workers — is recovered and
// returned as an error wrapping ErrInternal with the panicking goroutine's
// stack attached, so a poisoned tuple or an injected fault can never crash
// the process or leave the engine lock held.
func (e *Engine) QueryContext(ctx context.Context, terms []string, opts Options) (ans *Answer, err error) {
	if len(terms) == 0 {
		return nil, fmt.Errorf("precis: empty query")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	// tr is the query's trace. Caller-requested traces exist from the
	// start (they cover tokenize and cache_lookup too); when only metrics
	// want stage timings, a private trace is allocated later, on the
	// uncached path — cache hits must stay allocation-free.
	var tr *obs.Trace
	if opts.Trace {
		tr = obs.NewTrace()
	}
	e.mu.RLock()
	m := e.metrics
	defer func() {
		e.mu.RUnlock()
		if r := recover(); r != nil {
			ans = nil
			err = wrapPanic(r)
			if m != nil {
				m.panics.Inc()
			}
		}
		if m != nil {
			m.record(start, ans, err, tr)
		}
	}()

	// Answer cache: the lookup happens under the engine read lock, so a
	// mutation that completed before this query began has already purged
	// the cache — a hit can never serve a stale answer.
	key, cacheable := "", false
	if e.cache != nil {
		sp := tr.StartSpan(obs.StageTokenize)
		key, cacheable = cacheKey(terms, opts)
		sp.End()
		if cacheable {
			sp = tr.StartSpan(obs.StageCacheLookup)
			v, ok := e.cache.Get(key)
			sp.End()
			if ok {
				cp := v.(*Answer).shallowCopy()
				cp.FromCache = true
				tr.Finish()
				cp.Trace = tr // nil unless opts.Trace
				return cp, nil
			}
		}
	}

	// Fresh pipeline run: when the engine is instrumented but the caller
	// did not ask for a trace, allocate a private one so the per-stage
	// histograms still observe this query. The cost lands only on the
	// expensive path; the cached fast path above never reaches here.
	if tr == nil && m != nil {
		tr = obs.NewTrace()
	}

	ans, err = e.queryLocked(ctx, terms, opts, tr)
	if err != nil {
		// ErrNoMatches answers are cheap to recompute and carry partial
		// state; don't cache errors.
		tr.Finish()
		if ans != nil && opts.Trace {
			ans.Trace = tr
		}
		return ans, err
	}
	if cacheable && e.cache != nil && !ans.Partial {
		// Partial answers are never cached: they reflect a transient
		// resource shortage, not the query's true answer, and a later
		// identical query with a healthier budget must not inherit the
		// truncation. Cached answers are stored without traces — the
		// trace describes this execution, not the answer.
		e.cache.Put(key, ans)
		// Hand out a copy so the caller's Answer header stays private.
		ans = ans.shallowCopy()
	}
	tr.Finish()
	if opts.Trace {
		ans.Trace = tr
	}
	return ans, nil
}

// wrapPanic converts a recovered panic value into an ErrInternal error. A
// *core.PanicError (a panic that escaped a ParallelFor worker) already
// carries the worker's stack; anything else gets the recovering goroutine's
// stack attached here.
func wrapPanic(r any) error {
	if pe, ok := r.(*core.PanicError); ok {
		return fmt.Errorf("%w: %s", ErrInternal, pe.Error())
	}
	return fmt.Errorf("%w: panic: %v\n%s", ErrInternal, r, debug.Stack())
}

// queryLocked runs the four-stage pipeline; callers hold e.mu.RLock. tr
// (nil allowed) receives one span per stage plus fine-grained db_gen steps.
func (e *Engine) queryLocked(ctx context.Context, terms []string, opts Options, tr *obs.Trace) (*Answer, error) {
	// Resolve the effective configuration: options > profile > defaults.
	g := e.graph
	degree := opts.Degree
	card := opts.Cardinality
	strat := opts.Strategy
	if opts.Profile != "" {
		p := e.profiles.Get(opts.Profile)
		if p == nil {
			return nil, fmt.Errorf("precis: no profile %q", opts.Profile)
		}
		pg, err := p.Apply(g)
		if err != nil {
			return nil, err
		}
		g = pg
		if degree == nil {
			degree = p.Degree
		}
		if card == nil {
			card = p.Cardinality
		}
		if strat == StrategyAuto {
			strat = p.Strategy
		}
	}
	if len(opts.WeightOverlay) > 0 {
		og := g.Clone()
		if err := og.ApplyWeights(opts.WeightOverlay); err != nil {
			return nil, err
		}
		g = og
	}
	if degree == nil {
		degree = core.MinPathWeight(0.8)
	}
	if card == nil {
		card = core.MaxTuplesPerRelation(10)
	}

	// Resolve the effective tuple weights: per-call weights win (deep-copied
	// so the generator never observes caller mutations mid-query), otherwise
	// the engine-level weights set with SetTupleWeights apply. e.weights is
	// already a private copy and only replaced wholesale under e.mu.Lock, so
	// sharing it with the generator is race-free under our RLock.
	weights := e.weights
	if opts.TupleWeights != nil {
		weights = copyTupleWeights(opts.TupleWeights)
	}

	workers := core.NormalizeWorkers(opts.Parallelism)

	ans := &Answer{Terms: append([]string(nil), terms...), Occurrences: make(map[string][]invidx.Occurrence)}

	// Step 1: inverted index. The per-term probes are independent pure
	// reads, so they fan out across the worker pool; results land in a
	// position-indexed slice and are folded back in term order, keeping the
	// answer byte-identical to the serial walk.
	sp := tr.StartSpan(obs.StageIndexLookup)
	perTerm := make([][]invidx.Occurrence, len(terms))
	if e.shards != nil {
		// Sharded: each term's probe scatters across the shard indexes and
		// merges to the exact single-index occurrence list. Scatter/gather
		// faults fail the query typed instead of panicking.
		lookupErrs := make([]error, len(terms))
		core.ParallelFor(len(terms), workers, func(i int) {
			perTerm[i], lookupErrs[i] = e.shards.lookup(terms[i])
		})
		for _, lerr := range lookupErrs {
			if lerr != nil {
				return nil, lerr
			}
		}
	} else {
		core.ParallelFor(len(terms), workers, func(i int) {
			perTerm[i] = e.index.LookupExpanded(terms[i])
		})
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("precis: query canceled: %w", err)
	}
	seeds := make(map[string][]storage.TupleID)
	var seedRels []string
	seen := make(map[string]bool)
	var allOccs []invidx.Occurrence
	for i, term := range terms {
		occs := perTerm[i]
		if len(occs) == 0 {
			ans.Unmatched = append(ans.Unmatched, term)
			continue
		}
		ans.Occurrences[term] = occs
		allOccs = append(allOccs, occs...)
		for _, o := range occs {
			seeds[o.Relation] = appendUniqueIDs(seeds[o.Relation], o.TupleIDs)
			if !seen[o.Relation] {
				seen[o.Relation] = true
				seedRels = append(seedRels, o.Relation)
			}
		}
	}
	if len(seedRels) == 0 {
		sp.End()
		return ans, ErrNoMatches
	}
	sort.Strings(seedRels)
	sp.End()

	// Step 2: result schema generation.
	sp = tr.StartSpan(obs.StageSchemaGen)
	rs, err := core.GenerateSchema(g, seedRels, degree)
	if err != nil {
		return nil, err
	}
	rs.CopyAnnotations(g)
	ans.Schema = rs
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("precis: query canceled: %w", err)
	}

	// Step 3: result database generation. Each query gets its own SQL
	// engine over the shared database, so concurrent queries do not race on
	// statistics accumulation. The generator honours ctx between steps and
	// fans independent fetches out over the same worker pool.
	sp = tr.StartSpan(obs.StageDBGen)
	var fetcher core.Fetcher
	var sf *shard.Fetcher
	if e.shards != nil {
		sf = e.shards.newFetcher()
		fetcher = sf
	} else {
		fetcher = sqlx.NewEngine(e.db)
	}
	rd, err := core.GenerateDatabaseOpts(fetcher, rs, seeds, card, strat,
		core.DBGenOptions{Weights: weights, Workers: workers, Context: ctx, Budget: opts.Budget, Trace: tr})
	if err != nil {
		return nil, err
	}
	ans.Result = rd
	ans.Database = rd.DB
	ans.Stats = rd.Stats
	ans.Partial = rd.Partial()
	ans.Truncation = rd.Truncation
	if sf != nil {
		sf.RecordTrace(tr)
	}
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("precis: query canceled: %w", err)
	}

	// Step 4: translation. Partial answers render too — the translator
	// trims clauses whose joined tuples were cut and appends a truncation
	// note, so a degraded answer still reads as a well-formed narrative.
	if !opts.SkipNarrative {
		sp = tr.StartSpan(obs.StageTranslate)
		narrative, err := e.renderer.Narrative(rd, allOccs)
		if err != nil {
			return nil, err
		}
		ans.Narrative = narrative
		sp.End()
	}
	return ans, nil
}

// appendUniqueIDs merges ids into dst preserving sorted uniqueness.
func appendUniqueIDs(dst []storage.TupleID, ids []storage.TupleID) []storage.TupleID {
	present := make(map[storage.TupleID]bool, len(dst))
	for _, id := range dst {
		present[id] = true
	}
	for _, id := range ids {
		if !present[id] {
			dst = append(dst, id)
			present[id] = true
		}
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	return dst
}

// Package precis implements précis queries over relational databases, a
// faithful reproduction of "Précis: The Essence of a Query Answer"
// (Koutrika, Simitsis, Ioannidis — ICDE 2006).
//
// A précis query is a free-form set of tokens. Its answer is not a flat
// relation but a whole new database — a sub-database of the original with
// its own schema, constraints and contents — containing the tuples matching
// the tokens plus information implicitly related to them, selected by
// weights on the database schema graph and bounded by degree (schema size)
// and cardinality (data size) constraints. The answer can additionally be
// rendered as a natural-language narrative.
//
// Basic use:
//
//	db, graph, _ := dataset.ExampleMovies()   // or build your own
//	eng, _ := precis.New(db, graph)
//	ans, _ := eng.Query([]string{"Woody Allen"}, precis.Options{
//		Degree:      precis.MinPathWeight(0.9),
//		Cardinality: precis.MaxTuplesPerRelation(3),
//	})
//	fmt.Println(ans.Narrative)
package precis

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"precis/internal/core"
	"precis/internal/costmodel"
	"precis/internal/invidx"
	"precis/internal/nlg"
	"precis/internal/profile"
	"precis/internal/schemagraph"
	"precis/internal/sqlx"
	"precis/internal/storage"
)

// ErrNoMatches is returned when no query token occurs in the database.
var ErrNoMatches = errors.New("precis: no token matched the database")

// Re-exported constraint and strategy types. The concrete constructors
// below build the constraints of the paper's Tables 1 and 2.
type (
	// DegreeConstraint bounds the result schema (paper Table 1).
	DegreeConstraint = core.DegreeConstraint
	// CardinalityConstraint bounds the result data (paper Table 2).
	CardinalityConstraint = core.CardinalityConstraint
	// Strategy selects NaïveQ vs Round-Robin tuple retrieval.
	Strategy = core.Strategy
	// Profile is a stored personalization (weights + default constraints).
	Profile = profile.Profile
	// TupleWeights assigns per-tuple importance (the paper's §7 extension):
	// when the cardinality budget forces a choice, heavier tuples survive.
	TupleWeights = core.TupleWeights
)

// Retrieval strategies (paper §5.2).
const (
	StrategyAuto       = core.StrategyAuto
	StrategyNaive      = core.StrategyNaive
	StrategyRoundRobin = core.StrategyRoundRobin
)

// TopProjections keeps the r top-weighted projection paths.
func TopProjections(r int) DegreeConstraint { return core.TopProjections(r) }

// MaxAttributes bounds the number of distinct projected attributes.
func MaxAttributes(n int) DegreeConstraint { return core.MaxAttributes(n) }

// MinPathWeight keeps projections whose transitive path weight is >= w.
func MinPathWeight(w float64) DegreeConstraint { return core.MinPathWeight(w) }

// MaxPathLength keeps projection paths of length at most l.
func MaxPathLength(l int) DegreeConstraint { return core.MaxPathLength(l) }

// AllDegree combines degree constraints conjunctively.
func AllDegree(cs ...DegreeConstraint) DegreeConstraint { return core.AllDegree(cs...) }

// MaxTuplesPerRelation caps every result relation at c tuples.
func MaxTuplesPerRelation(c int) CardinalityConstraint { return core.MaxTuplesPerRelation(c) }

// MaxTotalTuples caps the whole result database at c tuples.
func MaxTotalTuples(c int) CardinalityConstraint { return core.MaxTotalTuples(c) }

// Unlimited imposes no cardinality bound.
func Unlimited() CardinalityConstraint { return core.Unlimited() }

// AllCardinality combines cardinality constraints conjunctively.
func AllCardinality(cs ...CardinalityConstraint) CardinalityConstraint {
	return core.AllCardinality(cs...)
}

// TimeBudget converts a response-time budget into a per-relation
// cardinality constraint via the paper's Formula 3, using calibrated engine
// parameters and the expected number of relations in the result.
func TimeBudget(params costmodel.Params, budget time.Duration, relations int) CardinalityConstraint {
	return core.MaxTuplesPerRelation(costmodel.SolveCR(params, budget, relations))
}

// Engine answers précis queries over one database + annotated schema graph.
// Queries may run concurrently; mutations (Insert, Delete, DefineMacro,
// AddProfile) are serialized against them internally.
type Engine struct {
	mu       sync.RWMutex
	db       *storage.Database
	graph    *schemagraph.Graph
	index    *invidx.Index
	renderer *nlg.Renderer
	profiles *profile.Registry
}

// New builds an engine: it validates the graph against the database and
// constructs the inverted index over all string attributes.
func New(db *storage.Database, g *schemagraph.Graph) (*Engine, error) {
	if db == nil || g == nil {
		return nil, fmt.Errorf("precis: need a database and a schema graph")
	}
	if err := g.Validate(db); err != nil {
		return nil, err
	}
	return &Engine{
		db:       db,
		graph:    g,
		index:    invidx.New(db),
		renderer: nlg.NewRenderer(),
		profiles: profile.NewRegistry(),
	}, nil
}

// Database returns the underlying database.
func (e *Engine) Database() *storage.Database { return e.db }

// Graph returns the annotated schema graph.
func (e *Engine) Graph() *schemagraph.Graph { return e.graph }

// Index returns the inverted index.
func (e *Engine) Index() *invidx.Index { return e.index }

// AddSynonym declares that queries for alias also match canonical — the
// §5.1 synonym case ("W. Allen" for "Woody Allen"); deployments plug a
// reference-reconciliation tool's output in through this.
func (e *Engine) AddSynonym(alias, canonical string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.index.AddSynonym(alias, canonical)
}

// DefineMacro registers a narrative macro ("DEFINE NAME as ...").
func (e *Engine) DefineMacro(def string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.renderer.DefineMacro(def)
}

// AddProfile stores a personalization profile.
func (e *Engine) AddProfile(p *Profile) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.profiles.Add(p)
}

// Profiles returns the registered profile names, sorted.
func (e *Engine) Profiles() []string { return e.profiles.Names() }

// Insert adds a tuple and keeps the inverted index current.
func (e *Engine) Insert(relation string, vals ...storage.Value) (storage.TupleID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	id, err := e.db.Insert(relation, vals...)
	if err != nil {
		return 0, err
	}
	if t, ok := e.db.Relation(relation).Get(id); ok {
		e.index.AddTuple(relation, t)
	}
	return id, nil
}

// Update replaces a tuple's values and keeps the inverted index current.
func (e *Engine) Update(relation string, id storage.TupleID, vals []storage.Value) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	rel := e.db.Relation(relation)
	if rel == nil {
		return fmt.Errorf("precis: no relation %s", relation)
	}
	old, ok := rel.Get(id)
	if !ok {
		return fmt.Errorf("precis: relation %s has no tuple %d", relation, id)
	}
	if err := e.db.Update(relation, id, vals); err != nil {
		return err
	}
	e.index.RemoveTuple(relation, old)
	if t, ok := rel.Get(id); ok {
		e.index.AddTuple(relation, t)
	}
	return nil
}

// Delete removes a tuple and keeps the inverted index current.
func (e *Engine) Delete(relation string, id storage.TupleID) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rel := e.db.Relation(relation)
	if rel == nil {
		return false, fmt.Errorf("precis: no relation %s", relation)
	}
	t, ok := rel.Get(id)
	if !ok {
		return false, nil
	}
	e.index.RemoveTuple(relation, t)
	return e.db.Delete(relation, id)
}

// Options tune one query. Zero-value fields fall back to the selected
// profile's defaults, then to the engine defaults (MinPathWeight 0.8, 10
// tuples per relation, auto strategy).
type Options struct {
	Degree        DegreeConstraint
	Cardinality   CardinalityConstraint
	Strategy      Strategy
	Profile       string             // name of a registered profile
	WeightOverlay map[string]float64 // ad-hoc per-query weight changes (§3.1 interactive exploration)
	// TupleWeights biases which tuples survive the cardinality budget
	// (§7 extension); nil disables it.
	TupleWeights TupleWeights
	// SkipNarrative suppresses narrative rendering (benchmarks).
	SkipNarrative bool
}

// Answer is the result of a précis query.
type Answer struct {
	Terms []string
	// Occurrences maps each matched term to its index occurrences.
	Occurrences map[string][]invidx.Occurrence
	// Unmatched lists terms with no occurrence.
	Unmatched []string
	// Schema is the result schema G'.
	Schema *core.ResultSchema
	// Result is the generated result database (the précis itself).
	Result *core.ResultDatabase
	// Database is Result.DB, the new database D'.
	Database *storage.Database
	// Narrative is the natural-language synthesis (empty if skipped).
	Narrative string
	// Stats records the physical work of data generation.
	Stats core.GenStats
}

// ParseQuery splits a free-form query string into terms, honouring double
// quotes for phrases: `"Woody Allen" comedy` → ["Woody Allen", "comedy"].
func ParseQuery(q string) []string {
	var terms []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if s := strings.TrimSpace(cur.String()); s != "" {
			terms = append(terms, s)
		}
		cur.Reset()
	}
	for _, r := range q {
		switch {
		case r == '"':
			if inQuote {
				flush()
			}
			inQuote = !inQuote
		case !inQuote && (r == ' ' || r == '\t' || r == '\n'):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return terms
}

// QueryString parses a free-form query string and runs Query.
func (e *Engine) QueryString(q string, opts Options) (*Answer, error) {
	return e.Query(ParseQuery(q), opts)
}

// Query answers a précis query Q = {k1, ..., km}: it resolves the tokens
// through the inverted index, generates the result schema under the degree
// constraint, populates the result database under the cardinality
// constraint, and renders the narrative.
func (e *Engine) Query(terms []string, opts Options) (*Answer, error) {
	if len(terms) == 0 {
		return nil, fmt.Errorf("precis: empty query")
	}
	e.mu.RLock()
	defer e.mu.RUnlock()

	// Resolve the effective configuration: options > profile > defaults.
	g := e.graph
	degree := opts.Degree
	card := opts.Cardinality
	strat := opts.Strategy
	if opts.Profile != "" {
		p := e.profiles.Get(opts.Profile)
		if p == nil {
			return nil, fmt.Errorf("precis: no profile %q", opts.Profile)
		}
		pg, err := p.Apply(g)
		if err != nil {
			return nil, err
		}
		g = pg
		if degree == nil {
			degree = p.Degree
		}
		if card == nil {
			card = p.Cardinality
		}
		if strat == StrategyAuto {
			strat = p.Strategy
		}
	}
	if len(opts.WeightOverlay) > 0 {
		og := g.Clone()
		if err := og.ApplyWeights(opts.WeightOverlay); err != nil {
			return nil, err
		}
		g = og
	}
	if degree == nil {
		degree = core.MinPathWeight(0.8)
	}
	if card == nil {
		card = core.MaxTuplesPerRelation(10)
	}

	ans := &Answer{Terms: append([]string(nil), terms...), Occurrences: make(map[string][]invidx.Occurrence)}

	// Step 1: inverted index.
	seeds := make(map[string][]storage.TupleID)
	var seedRels []string
	seen := make(map[string]bool)
	var allOccs []invidx.Occurrence
	for _, term := range terms {
		occs := e.index.LookupExpanded(term)
		if len(occs) == 0 {
			ans.Unmatched = append(ans.Unmatched, term)
			continue
		}
		ans.Occurrences[term] = occs
		allOccs = append(allOccs, occs...)
		for _, o := range occs {
			seeds[o.Relation] = appendUniqueIDs(seeds[o.Relation], o.TupleIDs)
			if !seen[o.Relation] {
				seen[o.Relation] = true
				seedRels = append(seedRels, o.Relation)
			}
		}
	}
	if len(seedRels) == 0 {
		return ans, ErrNoMatches
	}
	sort.Strings(seedRels)

	// Step 2: result schema generation.
	rs, err := core.GenerateSchema(g, seedRels, degree)
	if err != nil {
		return nil, err
	}
	rs.CopyAnnotations(g)
	ans.Schema = rs

	// Step 3: result database generation. Each query gets its own SQL
	// engine over the shared database, so concurrent queries do not race on
	// statistics accumulation.
	rd, err := core.GenerateDatabaseOpts(sqlx.NewEngine(e.db), rs, seeds, card, strat,
		core.DBGenOptions{Weights: opts.TupleWeights})
	if err != nil {
		return nil, err
	}
	ans.Result = rd
	ans.Database = rd.DB
	ans.Stats = rd.Stats

	// Step 4: translation.
	if !opts.SkipNarrative {
		narrative, err := e.renderer.Narrative(rd, allOccs)
		if err != nil {
			return nil, err
		}
		ans.Narrative = narrative
	}
	return ans, nil
}

// appendUniqueIDs merges ids into dst preserving sorted uniqueness.
func appendUniqueIDs(dst []storage.TupleID, ids []storage.TupleID) []storage.TupleID {
	present := make(map[storage.TupleID]bool, len(dst))
	for _, id := range dst {
		present[id] = true
	}
	for _, id := range ids {
		if !present[id] {
			dst = append(dst, id)
			present[id] = true
		}
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	return dst
}

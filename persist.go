package precis

// Durable persistence: Open mounts a data directory holding a checksummed
// checkpoint chain (a full binary snapshot plus zero or more incremental
// deltas) and an append-only WAL (internal/wal), recovers whatever a
// previous process left — loading the chain, replaying the log, truncating
// a torn tail, hard-failing on real corruption — and from then on logs
// every engine mutation write-ahead-style. Checkpoint (manual,
// size-triggered, or time-triggered) runs in two phases: a brief rotation
// plus dirty capture under the mutation lock (O(changed tuples), not
// O(database)), then the serialization and fsync entirely off-lock —
// usually as a small delta extending the chain, periodically (CompactEvery
// / CompactBytes) as a full compaction that also persists the inverted
// index beside the snapshot so the next open can load it instead of
// rebuilding. Engines built with New stay purely in-memory: the query hot
// path never touches any of this (the only cost is a nil check on the
// mutation paths), so cached-query allocation counts are unchanged.

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"precis/internal/invidx"
	"precis/internal/obs"
	"precis/internal/schemagraph"
	"precis/internal/storage"
	"precis/internal/wal"
)

// ErrNotPersistent is returned by Checkpoint on an engine built without a
// data directory.
var ErrNotPersistent = errors.New("precis: engine has no persistence layer")

// FsyncPolicy re-exports the WAL durability policies.
type FsyncPolicy = wal.FsyncPolicy

// The WAL fsync policies: FsyncAlways makes every returned mutation
// durable (group-committed), FsyncInterval flushes on a timer, FsyncNever
// leaves flushing to the OS.
const (
	FsyncAlways   = wal.FsyncAlways
	FsyncInterval = wal.FsyncInterval
	FsyncNever    = wal.FsyncNever
)

// ParseFsyncPolicy parses "always", "interval" or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return wal.ParseFsyncPolicy(s) }

// DefaultCheckpointBytes triggers a checkpoint when the WAL reaches this
// size and PersistConfig.CheckpointBytes is zero.
const DefaultCheckpointBytes = 4 << 20

// DefaultCompactEvery caps the checkpoint chain at this many elements (one
// full snapshot plus deltas) when PersistConfig.CompactEvery is zero; the
// checkpoint that would exceed it compacts the chain instead.
const DefaultCompactEvery = 8

// DefaultCompactBytes compacts the chain when its delta files total this
// many bytes and PersistConfig.CompactBytes is zero.
const DefaultCompactBytes = 64 << 20

// PersistConfig tunes the persistence layer.
type PersistConfig struct {
	// Dir is the data directory. Empty disables persistence entirely (Open
	// degenerates to New).
	Dir string
	// Fsync is the WAL durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval paces FsyncInterval flushing (0: wal.DefaultFsyncInterval).
	FsyncInterval time.Duration
	// CheckpointBytes checkpoints when the WAL reaches this size. Zero
	// means DefaultCheckpointBytes; negative disables the size trigger.
	CheckpointBytes int64
	// CheckpointEvery checkpoints on a timer; 0 disables the time trigger.
	CheckpointEvery time.Duration
	// CompactEvery caps the checkpoint chain length (full snapshot + deltas):
	// the checkpoint that would push the chain past it writes a full
	// compaction instead of a delta. Zero means DefaultCompactEvery; negative
	// disables delta checkpointing entirely (every checkpoint is full).
	CompactEvery int
	// CompactBytes compacts the chain when its delta files total this many
	// bytes, whatever the chain length. Zero means DefaultCompactBytes;
	// negative disables the byte trigger.
	CompactBytes int64
	// Logger receives recovery and checkpoint notes; nil uses log.Default().
	Logger *log.Logger
}

// persistState is the engine's persistence plumbing; nil on in-memory
// engines.
type persistState struct {
	store     *wal.Store
	cfg       PersistConfig
	logger    *log.Logger
	recovered wal.Recovered

	// indexLoaded records whether recovery loaded the persisted inverted
	// index (true) or rebuilt it from the tuples (false). Set once at open.
	indexLoaded bool

	// closed is guarded by the engine mutex.
	closed bool

	// ckptMu serializes whole checkpoints: the store's Begin/Complete
	// protocol assumes one in flight, and Close takes it before the final
	// full checkpoint. Always acquired before the engine mutex.
	ckptMu sync.Mutex
	// lastPauseNS is the mutation-lock hold time of the last checkpoint's
	// begin-and-capture phase, in nanoseconds.
	lastPauseNS atomic.Int64
	// pauseHist, when instrumented, observes that pause per checkpoint.
	pauseHist atomic.Pointer[obs.Histogram]

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// compactionDue decides delta versus full for the checkpoint begun on top
// of prevChain: full when the chain would outgrow CompactEvery or its
// delta files outgrow CompactBytes.
func (p *persistState) compactionDue(prevChain []uint64) bool {
	every := p.cfg.CompactEvery
	if every == 0 {
		every = DefaultCompactEvery
	}
	if every < 0 {
		return true
	}
	if len(prevChain) >= every {
		return true
	}
	bytes := p.cfg.CompactBytes
	if bytes == 0 {
		bytes = DefaultCompactBytes
	}
	return bytes > 0 && p.store.ChainDeltaBytes() >= bytes
}

// indexRecovery implements wal.RecoveryObserver: it loads the persisted
// inverted-index snapshot for the base generation and keeps it current
// through delta application and WAL replay, so the engine can skip the
// from-scratch rebuild. Any defect in the file — absence, corruption,
// version skew (format or tokenizer), a stale generation stamp — silently
// falls back to the rebuild; a persisted index is an optimization, never a
// requirement.
type indexRecovery struct {
	dir    string
	logger *log.Logger
	ix     *invidx.Index
	loaded bool
}

func (r *indexRecovery) RecoveryBase(gen uint64, db *storage.Database) {
	path := filepath.Join(r.dir, wal.IndexSnapshotName(gen))
	raw, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			r.logger.Printf("precis: cannot read persisted index %s (%v); rebuilding", path, err)
		}
		return
	}
	ix, fileGen, err := invidx.DecodeSnapshot(raw, db)
	if err != nil {
		r.logger.Printf("precis: persisted index %s unusable (%v); rebuilding", path, err)
		return
	}
	if fileGen != gen {
		r.logger.Printf("precis: persisted index %s stamped for generation %d, want %d; rebuilding", path, fileGen, gen)
		return
	}
	r.ix = ix
	r.loaded = true
}

func (r *indexRecovery) RecoveryApply(relation string, old, new *storage.Tuple) {
	if r.ix == nil {
		return
	}
	if old != nil {
		r.ix.RemoveTuple(relation, *old)
	}
	if new != nil {
		r.ix.AddTuple(relation, *new)
	}
}

// RecoveryStats reports what Open reconstructed from disk.
type RecoveryStats struct {
	// SnapshotLoaded is false on a fresh directory.
	SnapshotLoaded bool `json:"snapshot_loaded"`
	// SnapshotPath is the snapshot file recovery started from.
	SnapshotPath string `json:"snapshot_path,omitempty"`
	// ChainDepth is the checkpoint chain length recovery loaded (1 = full
	// snapshot only; each delta adds one). Zero on a fresh directory.
	ChainDepth int `json:"chain_depth,omitempty"`
	// DeltasApplied counts delta checkpoints applied on top of the base
	// snapshot.
	DeltasApplied int `json:"deltas_applied,omitempty"`
	// IndexLoaded is true when the inverted index was loaded from its
	// persisted snapshot instead of rebuilt from the tuples.
	IndexLoaded bool `json:"index_loaded"`
	// WALRecordsReplayed counts log records applied on top of the snapshot.
	WALRecordsReplayed int `json:"wal_records_replayed"`
	// TornBytesTruncated counts torn-tail bytes cut from the log (work the
	// crash lost mid-write; never a committed record).
	TornBytesTruncated int64 `json:"torn_bytes_truncated"`
	// DurationMS is the wall-clock recovery time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
}

// PersistStats reports the persistence layer's live counters.
type PersistStats struct {
	Enabled        bool          `json:"enabled"`
	Dir            string        `json:"dir,omitempty"`
	Fsync          string        `json:"fsync,omitempty"`
	Generation     uint64        `json:"generation,omitempty"`
	WALBytes       int64         `json:"wal_bytes,omitempty"`
	WALRecords     int64         `json:"wal_records,omitempty"`
	Checkpoints    uint64        `json:"checkpoints,omitempty"`
	LastCheckpoint time.Time     `json:"last_checkpoint,omitempty"`
	// ChainDepth is the live checkpoint chain length (1 = just the full
	// base snapshot). On a sharded engine, the deepest shard chain.
	ChainDepth int `json:"chain_depth,omitempty"`
	// LastCheckpointPauseMS is how long the last checkpoint held the
	// mutation lock (rotation + dirty capture), in milliseconds. On a
	// sharded engine, the largest shard pause.
	LastCheckpointPauseMS float64 `json:"last_checkpoint_pause_ms,omitempty"`
	// DeltaBytesWritten / FullBytesWritten are cumulative checkpoint bytes
	// by kind since open.
	DeltaBytesWritten int64         `json:"delta_bytes_written,omitempty"`
	FullBytesWritten  int64         `json:"full_bytes_written,omitempty"`
	Recovery          RecoveryStats `json:"recovery"`
}

// Open is New plus durability. With an empty cfg.Dir it is exactly New.
// Otherwise it mounts the data directory:
//
//   - an empty directory is seeded with a generation-1 snapshot of db (plus
//     the graph-independent engine extras), and db becomes the live state;
//   - a populated directory is recovered instead: the newest valid snapshot
//     is loaded, its WAL replayed on top (a torn final record is truncated
//     with a logged warning; a checksum failure anywhere else aborts with a
//     file/offset/record diagnostic), join indexes and the inverted index
//     are rebuilt, and referential integrity is re-verified. The caller's
//     db is then only a seed and is discarded.
//
// Every subsequent mutation (Insert, Update, Delete, AddSynonym,
// DefineMacro) is logged to the WAL under cfg.Fsync before the mutation is
// considered complete; if the log write fails the in-memory change is
// rolled back and the error returned, so memory and disk cannot diverge.
// Callers own the returned engine's lifecycle: Close checkpoints and
// releases the directory.
func Open(db *storage.Database, g *schemagraph.Graph, cfg PersistConfig) (*Engine, error) {
	return openEngine(db, g, cfg, true)
}

// openEngine is Open with integrity verification switchable: a shard of a
// partitioned database legitimately holds foreign-key values whose target
// tuples live on other shards, so per-shard recovery (NewSharded) skips
// the check — the dataset is only whole at the coordinator.
func openEngine(db *storage.Database, g *schemagraph.Graph, cfg PersistConfig, verifyIntegrity bool) (*Engine, error) {
	if cfg.Dir == "" {
		return New(db, g)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.Default()
	}
	ir := &indexRecovery{dir: cfg.Dir, logger: logger}
	store, rec, err := wal.Open(cfg.Dir, wal.Config{
		Fsync:         cfg.Fsync,
		FsyncInterval: cfg.FsyncInterval,
		Logger:        logger,
		Observer:      ir,
	})
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Engine, error) {
		_ = store.Close()
		return nil, err
	}
	fresh := rec.Data == nil
	if !fresh {
		db = rec.Data.DB
		if err := db.CreateJoinIndexes(); err != nil {
			return fail(fmt.Errorf("precis: rebuilding join indexes after recovery: %w", err))
		}
		if verifyIntegrity {
			if violations := db.CheckIntegrity(); len(violations) > 0 {
				return fail(fmt.Errorf("precis: recovered database violates referential integrity (%d violation(s), first: %s)",
					len(violations), violations[0]))
			}
		}
	}
	var eng *Engine
	if !fresh && ir.loaded {
		// The persisted index matched the base snapshot and tracked every
		// delta and WAL record through the observer: adopt it instead of
		// re-tokenizing the whole database.
		eng, err = newWithIndex(db, g, ir.ix)
	} else {
		eng, err = New(db, g)
	}
	if err != nil {
		return fail(err)
	}
	if fresh {
		if err := store.Initialize(&wal.SnapshotData{DB: db}); err != nil {
			return fail(err)
		}
		logger.Printf("precis: persistence initialized in %s (generation 1, %d tuples, fsync=%s)",
			cfg.Dir, db.TotalTuples(), cfg.Fsync)
	} else {
		for _, p := range rec.Data.Synonyms {
			eng.index.AddSynonym(p[0], p[1])
		}
		for _, def := range rec.Data.Macros {
			if err := eng.renderer.DefineMacro(def); err != nil {
				return fail(fmt.Errorf("precis: replaying persisted macro: %w", err))
			}
			eng.trackMacroLocked(def)
		}
		indexHow := "rebuilt"
		if ir.loaded {
			indexHow = "loaded"
		}
		logger.Printf("precis: recovered %s: generation %d (chain depth %d, %d delta(s)), %d tuples, %d relations, %d WAL record(s) replayed, %d torn byte(s) truncated, index %s, in %v",
			cfg.Dir, rec.Gen, rec.ChainDepth, rec.DeltasApplied, db.TotalTuples(), db.NumRelations(), rec.WALRecords, rec.TornBytes, indexHow, rec.Duration.Round(time.Microsecond))
	}
	if by := store.FencedBy(); by != 0 {
		// The directory belonged to a deposed primary: the fence is durable
		// and survives restarts, so this engine refuses mutations from its
		// first instruction. Rejoining the cluster as a follower
		// (OpenFollower on the same directory) is the only way out.
		eng.fencedBy = by
	}
	p := &persistState{store: store, cfg: cfg, logger: logger, recovered: *rec, indexLoaded: ir.loaded}
	eng.persist = p
	p.startCheckpointer(eng)
	return eng, nil
}

// snapshotDataLocked assembles the snapshot payload; callers hold e.mu.
func (e *Engine) snapshotDataLocked() *wal.SnapshotData {
	return &wal.SnapshotData{
		DB:       e.db,
		Synonyms: e.index.Synonyms(),
		Macros:   append([]string(nil), e.macroDefs...),
	}
}

// trackMacroLocked remembers a macro definition for future snapshots,
// deduplicating exact repeats; callers hold e.mu (or own the engine
// exclusively, as Open does).
func (e *Engine) trackMacroLocked(def string) {
	if e.macroSeen == nil {
		e.macroSeen = make(map[string]bool)
	}
	if e.macroSeen[def] {
		return
	}
	e.macroSeen[def] = true
	e.macroDefs = append(e.macroDefs, def)
}

// appendWALLocked logs one mutation record; callers hold e.mu. A nil
// persist layer appends nowhere and succeeds — the in-memory engine's
// mutations stay infallible beyond their own validation.
func (e *Engine) appendWALLocked(rec wal.Record) error {
	if e.persist == nil {
		return nil
	}
	if e.persist.closed {
		return fmt.Errorf("precis: engine is closed")
	}
	if err := e.persist.store.Append(rec); err != nil {
		return fmt.Errorf("precis: persist %s: %w", rec.Op, err)
	}
	return nil
}

// Sync forces every appended WAL record to disk regardless of the fsync
// policy — the benchmark and pre-crash hooks use it to draw a durable
// line. On an in-memory engine it is a no-op.
func (e *Engine) Sync() error {
	if e.shards != nil {
		return e.shards.each(func(_ int, sh *Engine) error { return sh.Sync() })
	}
	if e.persist == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.persist.closed {
		return nil
	}
	return e.persist.store.Sync()
}

// Checkpoint makes the engine's current state the new recovery baseline:
// it rotates the WAL and captures the dirty state under the mutation lock
// — a pause proportional to the number of tuples changed since the last
// checkpoint, not to the database — then serializes and fsyncs entirely
// off-lock while mutations and queries proceed. Most checkpoints write an
// incremental delta extending the checkpoint chain; when the chain outgrows
// CompactEvery or CompactBytes the state is instead synthesized from disk
// into a fresh full snapshot, persisted together with an inverted-index
// snapshot the next open can load instead of rebuilding. Returns
// ErrNotPersistent on an in-memory engine.
func (e *Engine) Checkpoint() error {
	if e.shards != nil {
		return e.shards.each(func(_ int, sh *Engine) error { return sh.Checkpoint() })
	}
	p := e.persist
	if p == nil {
		return ErrNotPersistent
	}
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()

	// Phase 1 — under the mutation lock, O(dirty): rotate the log and
	// capture the changed tuples as copy-on-write references (mutations
	// allocate fresh value slices, so the captured tuples are stable).
	e.mu.Lock()
	if p.closed {
		e.mu.Unlock()
		return fmt.Errorf("precis: engine is closed")
	}
	if !e.db.DirtyTrackingEnabled() {
		// Defensive: persistent engines always track dirt, but without it a
		// synthesized compaction would miss the untracked changes. Fall back
		// to the monolithic full checkpoint under the lock.
		defer e.mu.Unlock()
		return p.store.Checkpoint(e.snapshotDataLocked())
	}
	pauseStart := time.Now()
	h, err := p.store.BeginCheckpoint()
	if err != nil {
		if errors.Is(err, wal.ErrUnsyncedLog) {
			// The active writer is poisoned by an earlier fsync failure:
			// heal via the monolithic full checkpoint, which supersedes the
			// unsyncable log before abandoning it.
			defer e.mu.Unlock()
			return p.store.Checkpoint(e.snapshotDataLocked())
		}
		e.mu.Unlock()
		return err
	}
	ds := e.db.CaptureDirty()
	d := &wal.DeltaData{
		NextTupleID: e.db.NextTupleID(),
		Synonyms:    e.index.Synonyms(),
		Macros:      append([]string(nil), e.macroDefs...),
		FKs:         e.db.ForeignKeys(),
		Relations:   ds.Relations,
	}
	pause := time.Since(pauseStart)
	e.mu.Unlock()

	p.lastPauseNS.Store(pause.Nanoseconds())
	if hist := p.pauseHist.Load(); hist != nil {
		hist.ObserveNanos(pause.Nanoseconds())
	}

	// Phase 2 — off the lock. On failure the rotation stands (recovery
	// replays the extra log generation seamlessly) and the dirty set is
	// merged back so the next checkpoint's delta still covers everything
	// since the last durable one.
	restore := func() {
		e.mu.Lock()
		e.db.MergeDirty(ds)
		e.mu.Unlock()
		h.Abort()
	}
	if !p.compactionDue(h.PrevChain()) {
		if err := p.store.CompleteDelta(h, d); err != nil {
			restore()
			return fmt.Errorf("precis: delta checkpoint: %w", err)
		}
		return nil
	}
	// Compaction: synthesize the rotation-point state purely from disk plus
	// the captured delta, and persist the inverted index beside it.
	data, err := p.store.Synthesize(h, d)
	if err == nil {
		ix := invidx.NewParallel(data.DB, runtime.GOMAXPROCS(0))
		err = p.store.CompleteFull(h, data, ix.EncodeSnapshot(h.Gen()))
	}
	if err != nil {
		restore()
		return fmt.Errorf("precis: checkpoint: %w", err)
	}
	return nil
}

// Close shuts the persistence layer down: it stops the background
// checkpointer, runs a final checkpoint, and closes the WAL. On an
// in-memory engine it is a no-op. The engine refuses further mutations and
// checkpoints afterwards; queries keep working (the in-memory state stays
// valid).
//
// On a replicated engine, replication stops first: a primary severs its
// follower links before the final checkpoint rotates the WAL away; a
// follower stops its transport and keeps serving its last applied state.
func (e *Engine) Close() error {
	if e.shards != nil {
		// Close every shard even if one fails; the first error wins.
		return e.shards.each(func(_ int, sh *Engine) error { return sh.Close() })
	}
	// Stop the failover supervisor before taking the lifecycle lock: its
	// promotion callback takes lifeMu, and Stop waits for it to finish.
	e.mu.Lock()
	fo := e.failover
	e.failover = nil
	e.mu.Unlock()
	if fo != nil {
		fo.Stop()
	}
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	e.mu.Lock()
	rp := e.replPrimary
	e.replPrimary = nil
	r := e.replica
	e.mu.Unlock()
	if rp != nil {
		// Remove the quorum gate before closing the primary: a mutation
		// mid-wait must not block shutdown, and the final checkpoint below
		// must not wait on acks from links we are about to sever.
		if e.persist != nil {
			e.persist.store.SetCommitGate(nil)
		}
		_ = rp.Close()
	}
	if r != nil {
		r.stop()
	}
	p := e.persist
	if p == nil {
		return nil
	}
	p.stopCheckpointer()
	// Same order as Checkpoint: ckptMu before the engine mutex. Once both
	// are held no rotation can race, so the final generation is knowable in
	// advance and the live index can be persisted stamped with it.
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	var firstErr error
	var indexRaw []byte
	if e.index != nil {
		indexRaw = e.index.EncodeSnapshot(p.store.Generation() + 1)
	}
	if err := p.store.CheckpointFull(e.snapshotDataLocked(), indexRaw); err != nil {
		firstErr = fmt.Errorf("precis: final checkpoint: %w", err)
		// The checkpoint failed but the WAL still holds every mutation:
		// force it to disk so nothing is lost even on this path.
		if err := p.store.Sync(); err != nil {
			p.logger.Printf("precis: close: WAL sync also failed: %v", err)
		}
	}
	if err := p.store.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// PersistStats snapshots the persistence counters. Enabled is false (and
// everything else zero) on an in-memory engine.
func (e *Engine) PersistStats() PersistStats {
	if e.shards != nil {
		return e.shards.persistStats()
	}
	p := e.persist
	if p == nil {
		return PersistStats{}
	}
	st := p.store.Stats()
	return PersistStats{
		Enabled:               true,
		Dir:                   st.Dir,
		Fsync:                 st.Fsync,
		Generation:            st.Generation,
		WALBytes:              st.WALBytes,
		WALRecords:            st.WALRecords,
		Checkpoints:           st.Checkpoints,
		LastCheckpoint:        st.LastCkpt,
		ChainDepth:            st.ChainDepth,
		LastCheckpointPauseMS: float64(p.lastPauseNS.Load()) / 1e6,
		DeltaBytesWritten:     st.DeltaBytes,
		FullBytesWritten:      st.FullBytes,
		Recovery: RecoveryStats{
			SnapshotLoaded:     p.recovered.Data != nil,
			SnapshotPath:       p.recovered.SnapshotPath,
			ChainDepth:         p.recovered.ChainDepth,
			DeltasApplied:      p.recovered.DeltasApplied,
			IndexLoaded:        p.indexLoaded,
			WALRecordsReplayed: p.recovered.WALRecords,
			TornBytesTruncated: p.recovered.TornBytes,
			DurationMS:         float64(p.recovered.Duration.Nanoseconds()) / 1e6,
		},
	}
}

// startCheckpointer launches the background size/time checkpoint triggers.
func (p *persistState) startCheckpointer(e *Engine) {
	sizeTrigger := p.cfg.CheckpointBytes
	if sizeTrigger == 0 {
		sizeTrigger = DefaultCheckpointBytes
	}
	if sizeTrigger < 0 && p.cfg.CheckpointEvery <= 0 {
		return // checkpoints are manual only
	}
	poll := time.Second
	if p.cfg.CheckpointEvery > 0 && p.cfg.CheckpointEvery/4 < poll {
		poll = p.cfg.CheckpointEvery / 4
	}
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go func() {
		defer close(p.done)
		t := time.NewTicker(poll)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				due := sizeTrigger > 0 && p.store.LogSize() >= sizeTrigger
				if !due && p.cfg.CheckpointEvery > 0 {
					due = time.Since(p.store.Stats().LastCkpt) >= p.cfg.CheckpointEvery
				}
				if !due {
					continue
				}
				if err := e.Checkpoint(); err != nil {
					if errors.Is(err, ErrNotPersistent) {
						return
					}
					p.logger.Printf("precis: background checkpoint failed: %v", err)
				}
			}
		}
	}()
}

// stopCheckpointer halts the background trigger goroutine, if any.
func (p *persistState) stopCheckpointer() {
	p.stopOnce.Do(func() {
		if p.stop != nil {
			close(p.stop)
			<-p.done
		}
	})
}

// Persistence metric names.
const (
	MetricWALBytes          = "precis_wal_appended_bytes_total"
	MetricWALRecords        = "precis_wal_appended_records_total"
	MetricWALFsyncs         = "precis_wal_fsyncs_total"
	MetricWALFsyncSeconds   = "precis_wal_fsync_seconds"
	MetricWALSizeBytes      = "precis_wal_size_bytes"
	MetricCheckpoints       = "precis_checkpoints_total"
	MetricCheckpointSeconds = "precis_checkpoint_seconds"
	MetricCheckpointPause   = "precis_checkpoint_pause_seconds"
	MetricWALDeltaCkpts     = "precis_wal_delta_checkpoints_total"
	MetricWALDeltaBytes     = "precis_wal_delta_bytes_total"
	MetricChainDepth        = "precis_persist_chain_depth"
	MetricPersistGeneration = "precis_persist_generation"
	MetricRecoveryReplayed  = "precis_recovery_wal_records_replayed"
	MetricRecoveryTorn      = "precis_recovery_torn_bytes_truncated"
	MetricRecoverySeconds   = "precis_recovery_seconds"
	MetricRecoveryIndexLoad = "precis_recovery_index_loaded"
)

// instrumentPersist registers the persistence instruments; called from
// Engine.Instrument when a persistence layer is mounted.
func (p *persistState) instrument(reg *obs.Registry) {
	reg.Help(MetricWALBytes, "bytes appended to the write-ahead log (including frame headers)")
	reg.Help(MetricWALRecords, "mutation records appended to the write-ahead log")
	reg.Help(MetricWALFsyncs, "WAL fsync calls (group commits share one)")
	reg.Help(MetricWALFsyncSeconds, "WAL fsync latency in seconds")
	reg.Help(MetricWALSizeBytes, "current size of the active WAL generation")
	reg.Help(MetricCheckpoints, "completed checkpoints (snapshot + WAL rotation + GC)")
	reg.Help(MetricCheckpointSeconds, "end-to-end checkpoint latency in seconds")
	reg.Help(MetricCheckpointPause, "mutation-lock pause per checkpoint (rotation + dirty capture) in seconds")
	reg.Help(MetricWALDeltaCkpts, "checkpoints completed as incremental deltas")
	reg.Help(MetricWALDeltaBytes, "bytes written as delta checkpoints")
	reg.Help(MetricChainDepth, "live checkpoint chain length (1 = full snapshot only)")
	reg.Help(MetricPersistGeneration, "active snapshot generation")
	reg.Help(MetricRecoveryReplayed, "WAL records replayed by the last recovery")
	reg.Help(MetricRecoveryTorn, "torn-tail bytes truncated by the last recovery")
	reg.Help(MetricRecoverySeconds, "wall-clock duration of the last recovery")
	reg.Help(MetricRecoveryIndexLoad, "1 when the last recovery loaded the persisted inverted index, 0 when it rebuilt")
	p.store.SetMetrics(&wal.Metrics{
		AppendedBytes:    reg.Counter(MetricWALBytes),
		AppendedRecords:  reg.Counter(MetricWALRecords),
		Fsyncs:           reg.Counter(MetricWALFsyncs),
		FsyncSeconds:     reg.Histogram(MetricWALFsyncSeconds),
		Checkpoints:      reg.Counter(MetricCheckpoints),
		CheckpointSecs:   reg.Histogram(MetricCheckpointSeconds),
		DeltaCheckpoints: reg.Counter(MetricWALDeltaCkpts),
		DeltaBytes:       reg.Counter(MetricWALDeltaBytes),
	})
	p.pauseHist.Store(reg.Histogram(MetricCheckpointPause))
	reg.GaugeFunc(MetricWALSizeBytes, func() float64 { return float64(p.store.LogSize()) })
	reg.GaugeFunc(MetricChainDepth, func() float64 { return float64(p.store.ChainDepth()) })
	reg.GaugeFunc(MetricPersistGeneration, func() float64 { return float64(p.store.Generation()) })
	reg.GaugeFunc(MetricRecoveryReplayed, func() float64 { return float64(p.recovered.WALRecords) })
	reg.GaugeFunc(MetricRecoveryTorn, func() float64 { return float64(p.recovered.TornBytes) })
	reg.GaugeFunc(MetricRecoverySeconds, func() float64 { return p.recovered.Duration.Seconds() })
	reg.GaugeFunc(MetricRecoveryIndexLoad, func() float64 {
		if p.indexLoaded {
			return 1
		}
		return 0
	})
}

package precis

// Durable persistence: Open mounts a data directory holding a checksummed
// binary snapshot plus an append-only WAL (internal/wal), recovers whatever
// a previous process left — replaying the log, truncating a torn tail,
// hard-failing on real corruption — and from then on logs every engine
// mutation write-ahead-style. Checkpoint (manual, size-triggered, or
// time-triggered) rewrites the snapshot, rotates the log, and garbage-
// collects old generations. Engines built with New stay purely in-memory:
// the query hot path never touches any of this (the only cost is a nil
// check on the mutation paths), so cached-query allocation counts are
// unchanged.

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"precis/internal/obs"
	"precis/internal/schemagraph"
	"precis/internal/storage"
	"precis/internal/wal"
)

// ErrNotPersistent is returned by Checkpoint on an engine built without a
// data directory.
var ErrNotPersistent = errors.New("precis: engine has no persistence layer")

// FsyncPolicy re-exports the WAL durability policies.
type FsyncPolicy = wal.FsyncPolicy

// The WAL fsync policies: FsyncAlways makes every returned mutation
// durable (group-committed), FsyncInterval flushes on a timer, FsyncNever
// leaves flushing to the OS.
const (
	FsyncAlways   = wal.FsyncAlways
	FsyncInterval = wal.FsyncInterval
	FsyncNever    = wal.FsyncNever
)

// ParseFsyncPolicy parses "always", "interval" or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return wal.ParseFsyncPolicy(s) }

// DefaultCheckpointBytes triggers a checkpoint when the WAL reaches this
// size and PersistConfig.CheckpointBytes is zero.
const DefaultCheckpointBytes = 4 << 20

// PersistConfig tunes the persistence layer.
type PersistConfig struct {
	// Dir is the data directory. Empty disables persistence entirely (Open
	// degenerates to New).
	Dir string
	// Fsync is the WAL durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval paces FsyncInterval flushing (0: wal.DefaultFsyncInterval).
	FsyncInterval time.Duration
	// CheckpointBytes checkpoints when the WAL reaches this size. Zero
	// means DefaultCheckpointBytes; negative disables the size trigger.
	CheckpointBytes int64
	// CheckpointEvery checkpoints on a timer; 0 disables the time trigger.
	CheckpointEvery time.Duration
	// Logger receives recovery and checkpoint notes; nil uses log.Default().
	Logger *log.Logger
}

// persistState is the engine's persistence plumbing; nil on in-memory
// engines.
type persistState struct {
	store     *wal.Store
	cfg       PersistConfig
	logger    *log.Logger
	recovered wal.Recovered

	// closed is guarded by the engine mutex.
	closed bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// RecoveryStats reports what Open reconstructed from disk.
type RecoveryStats struct {
	// SnapshotLoaded is false on a fresh directory.
	SnapshotLoaded bool `json:"snapshot_loaded"`
	// SnapshotPath is the snapshot file recovery started from.
	SnapshotPath string `json:"snapshot_path,omitempty"`
	// WALRecordsReplayed counts log records applied on top of the snapshot.
	WALRecordsReplayed int `json:"wal_records_replayed"`
	// TornBytesTruncated counts torn-tail bytes cut from the log (work the
	// crash lost mid-write; never a committed record).
	TornBytesTruncated int64 `json:"torn_bytes_truncated"`
	// DurationMS is the wall-clock recovery time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
}

// PersistStats reports the persistence layer's live counters.
type PersistStats struct {
	Enabled        bool          `json:"enabled"`
	Dir            string        `json:"dir,omitempty"`
	Fsync          string        `json:"fsync,omitempty"`
	Generation     uint64        `json:"generation,omitempty"`
	WALBytes       int64         `json:"wal_bytes,omitempty"`
	WALRecords     int64         `json:"wal_records,omitempty"`
	Checkpoints    uint64        `json:"checkpoints,omitempty"`
	LastCheckpoint time.Time     `json:"last_checkpoint,omitempty"`
	Recovery       RecoveryStats `json:"recovery"`
}

// Open is New plus durability. With an empty cfg.Dir it is exactly New.
// Otherwise it mounts the data directory:
//
//   - an empty directory is seeded with a generation-1 snapshot of db (plus
//     the graph-independent engine extras), and db becomes the live state;
//   - a populated directory is recovered instead: the newest valid snapshot
//     is loaded, its WAL replayed on top (a torn final record is truncated
//     with a logged warning; a checksum failure anywhere else aborts with a
//     file/offset/record diagnostic), join indexes and the inverted index
//     are rebuilt, and referential integrity is re-verified. The caller's
//     db is then only a seed and is discarded.
//
// Every subsequent mutation (Insert, Update, Delete, AddSynonym,
// DefineMacro) is logged to the WAL under cfg.Fsync before the mutation is
// considered complete; if the log write fails the in-memory change is
// rolled back and the error returned, so memory and disk cannot diverge.
// Callers own the returned engine's lifecycle: Close checkpoints and
// releases the directory.
func Open(db *storage.Database, g *schemagraph.Graph, cfg PersistConfig) (*Engine, error) {
	return openEngine(db, g, cfg, true)
}

// openEngine is Open with integrity verification switchable: a shard of a
// partitioned database legitimately holds foreign-key values whose target
// tuples live on other shards, so per-shard recovery (NewSharded) skips
// the check — the dataset is only whole at the coordinator.
func openEngine(db *storage.Database, g *schemagraph.Graph, cfg PersistConfig, verifyIntegrity bool) (*Engine, error) {
	if cfg.Dir == "" {
		return New(db, g)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.Default()
	}
	store, rec, err := wal.Open(cfg.Dir, wal.Config{
		Fsync:         cfg.Fsync,
		FsyncInterval: cfg.FsyncInterval,
		Logger:        logger,
	})
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Engine, error) {
		_ = store.Close()
		return nil, err
	}
	fresh := rec.Data == nil
	if !fresh {
		db = rec.Data.DB
		if err := db.CreateJoinIndexes(); err != nil {
			return fail(fmt.Errorf("precis: rebuilding join indexes after recovery: %w", err))
		}
		if verifyIntegrity {
			if violations := db.CheckIntegrity(); len(violations) > 0 {
				return fail(fmt.Errorf("precis: recovered database violates referential integrity (%d violation(s), first: %s)",
					len(violations), violations[0]))
			}
		}
	}
	eng, err := New(db, g)
	if err != nil {
		return fail(err)
	}
	if fresh {
		if err := store.Initialize(&wal.SnapshotData{DB: db}); err != nil {
			return fail(err)
		}
		logger.Printf("precis: persistence initialized in %s (generation 1, %d tuples, fsync=%s)",
			cfg.Dir, db.TotalTuples(), cfg.Fsync)
	} else {
		for _, p := range rec.Data.Synonyms {
			eng.index.AddSynonym(p[0], p[1])
		}
		for _, def := range rec.Data.Macros {
			if err := eng.renderer.DefineMacro(def); err != nil {
				return fail(fmt.Errorf("precis: replaying persisted macro: %w", err))
			}
			eng.trackMacroLocked(def)
		}
		logger.Printf("precis: recovered %s: generation %d, %d tuples, %d relations, %d WAL record(s) replayed, %d torn byte(s) truncated in %v",
			cfg.Dir, rec.Gen, db.TotalTuples(), db.NumRelations(), rec.WALRecords, rec.TornBytes, rec.Duration.Round(time.Microsecond))
	}
	if by := store.FencedBy(); by != 0 {
		// The directory belonged to a deposed primary: the fence is durable
		// and survives restarts, so this engine refuses mutations from its
		// first instruction. Rejoining the cluster as a follower
		// (OpenFollower on the same directory) is the only way out.
		eng.fencedBy = by
	}
	p := &persistState{store: store, cfg: cfg, logger: logger, recovered: *rec}
	eng.persist = p
	p.startCheckpointer(eng)
	return eng, nil
}

// snapshotDataLocked assembles the snapshot payload; callers hold e.mu.
func (e *Engine) snapshotDataLocked() *wal.SnapshotData {
	return &wal.SnapshotData{
		DB:       e.db,
		Synonyms: e.index.Synonyms(),
		Macros:   append([]string(nil), e.macroDefs...),
	}
}

// trackMacroLocked remembers a macro definition for future snapshots,
// deduplicating exact repeats; callers hold e.mu (or own the engine
// exclusively, as Open does).
func (e *Engine) trackMacroLocked(def string) {
	if e.macroSeen == nil {
		e.macroSeen = make(map[string]bool)
	}
	if e.macroSeen[def] {
		return
	}
	e.macroSeen[def] = true
	e.macroDefs = append(e.macroDefs, def)
}

// appendWALLocked logs one mutation record; callers hold e.mu. A nil
// persist layer appends nowhere and succeeds — the in-memory engine's
// mutations stay infallible beyond their own validation.
func (e *Engine) appendWALLocked(rec wal.Record) error {
	if e.persist == nil {
		return nil
	}
	if e.persist.closed {
		return fmt.Errorf("precis: engine is closed")
	}
	if err := e.persist.store.Append(rec); err != nil {
		return fmt.Errorf("precis: persist %s: %w", rec.Op, err)
	}
	return nil
}

// Sync forces every appended WAL record to disk regardless of the fsync
// policy — the benchmark and pre-crash hooks use it to draw a durable
// line. On an in-memory engine it is a no-op.
func (e *Engine) Sync() error {
	if e.shards != nil {
		return e.shards.each(func(_ int, sh *Engine) error { return sh.Sync() })
	}
	if e.persist == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.persist.closed {
		return nil
	}
	return e.persist.store.Sync()
}

// Checkpoint snapshots the full engine state, rotates the WAL, and
// garbage-collects older generations. Mutations and queries are excluded
// for the duration (it holds the engine mutation lock). Returns
// ErrNotPersistent on an in-memory engine.
func (e *Engine) Checkpoint() error {
	if e.shards != nil {
		return e.shards.each(func(_ int, sh *Engine) error { return sh.Checkpoint() })
	}
	if e.persist == nil {
		return ErrNotPersistent
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.persist.closed {
		return fmt.Errorf("precis: engine is closed")
	}
	return e.persist.store.Checkpoint(e.snapshotDataLocked())
}

// Close shuts the persistence layer down: it stops the background
// checkpointer, runs a final checkpoint, and closes the WAL. On an
// in-memory engine it is a no-op. The engine refuses further mutations and
// checkpoints afterwards; queries keep working (the in-memory state stays
// valid).
//
// On a replicated engine, replication stops first: a primary severs its
// follower links before the final checkpoint rotates the WAL away; a
// follower stops its transport and keeps serving its last applied state.
func (e *Engine) Close() error {
	if e.shards != nil {
		// Close every shard even if one fails; the first error wins.
		return e.shards.each(func(_ int, sh *Engine) error { return sh.Close() })
	}
	// Stop the failover supervisor before taking the lifecycle lock: its
	// promotion callback takes lifeMu, and Stop waits for it to finish.
	e.mu.Lock()
	fo := e.failover
	e.failover = nil
	e.mu.Unlock()
	if fo != nil {
		fo.Stop()
	}
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	e.mu.Lock()
	rp := e.replPrimary
	e.replPrimary = nil
	r := e.replica
	e.mu.Unlock()
	if rp != nil {
		// Remove the quorum gate before closing the primary: a mutation
		// mid-wait must not block shutdown, and the final checkpoint below
		// must not wait on acks from links we are about to sever.
		if e.persist != nil {
			e.persist.store.SetCommitGate(nil)
		}
		_ = rp.Close()
	}
	if r != nil {
		r.stop()
	}
	p := e.persist
	if p == nil {
		return nil
	}
	p.stopCheckpointer()
	e.mu.Lock()
	defer e.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	var firstErr error
	if err := p.store.Checkpoint(e.snapshotDataLocked()); err != nil {
		firstErr = fmt.Errorf("precis: final checkpoint: %w", err)
		// The checkpoint failed but the WAL still holds every mutation:
		// force it to disk so nothing is lost even on this path.
		if err := p.store.Sync(); err != nil {
			p.logger.Printf("precis: close: WAL sync also failed: %v", err)
		}
	}
	if err := p.store.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// PersistStats snapshots the persistence counters. Enabled is false (and
// everything else zero) on an in-memory engine.
func (e *Engine) PersistStats() PersistStats {
	if e.shards != nil {
		return e.shards.persistStats()
	}
	p := e.persist
	if p == nil {
		return PersistStats{}
	}
	st := p.store.Stats()
	return PersistStats{
		Enabled:        true,
		Dir:            st.Dir,
		Fsync:          st.Fsync,
		Generation:     st.Generation,
		WALBytes:       st.WALBytes,
		WALRecords:     st.WALRecords,
		Checkpoints:    st.Checkpoints,
		LastCheckpoint: st.LastCkpt,
		Recovery: RecoveryStats{
			SnapshotLoaded:     p.recovered.Data != nil,
			SnapshotPath:       p.recovered.SnapshotPath,
			WALRecordsReplayed: p.recovered.WALRecords,
			TornBytesTruncated: p.recovered.TornBytes,
			DurationMS:         float64(p.recovered.Duration.Nanoseconds()) / 1e6,
		},
	}
}

// startCheckpointer launches the background size/time checkpoint triggers.
func (p *persistState) startCheckpointer(e *Engine) {
	sizeTrigger := p.cfg.CheckpointBytes
	if sizeTrigger == 0 {
		sizeTrigger = DefaultCheckpointBytes
	}
	if sizeTrigger < 0 && p.cfg.CheckpointEvery <= 0 {
		return // checkpoints are manual only
	}
	poll := time.Second
	if p.cfg.CheckpointEvery > 0 && p.cfg.CheckpointEvery/4 < poll {
		poll = p.cfg.CheckpointEvery / 4
	}
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go func() {
		defer close(p.done)
		t := time.NewTicker(poll)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				due := sizeTrigger > 0 && p.store.LogSize() >= sizeTrigger
				if !due && p.cfg.CheckpointEvery > 0 {
					due = time.Since(p.store.Stats().LastCkpt) >= p.cfg.CheckpointEvery
				}
				if !due {
					continue
				}
				if err := e.Checkpoint(); err != nil {
					if errors.Is(err, ErrNotPersistent) {
						return
					}
					p.logger.Printf("precis: background checkpoint failed: %v", err)
				}
			}
		}
	}()
}

// stopCheckpointer halts the background trigger goroutine, if any.
func (p *persistState) stopCheckpointer() {
	p.stopOnce.Do(func() {
		if p.stop != nil {
			close(p.stop)
			<-p.done
		}
	})
}

// Persistence metric names.
const (
	MetricWALBytes          = "precis_wal_appended_bytes_total"
	MetricWALRecords        = "precis_wal_appended_records_total"
	MetricWALFsyncs         = "precis_wal_fsyncs_total"
	MetricWALFsyncSeconds   = "precis_wal_fsync_seconds"
	MetricWALSizeBytes      = "precis_wal_size_bytes"
	MetricCheckpoints       = "precis_checkpoints_total"
	MetricCheckpointSeconds = "precis_checkpoint_seconds"
	MetricPersistGeneration = "precis_persist_generation"
	MetricRecoveryReplayed  = "precis_recovery_wal_records_replayed"
	MetricRecoveryTorn      = "precis_recovery_torn_bytes_truncated"
	MetricRecoverySeconds   = "precis_recovery_seconds"
)

// instrumentPersist registers the persistence instruments; called from
// Engine.Instrument when a persistence layer is mounted.
func (p *persistState) instrument(reg *obs.Registry) {
	reg.Help(MetricWALBytes, "bytes appended to the write-ahead log (including frame headers)")
	reg.Help(MetricWALRecords, "mutation records appended to the write-ahead log")
	reg.Help(MetricWALFsyncs, "WAL fsync calls (group commits share one)")
	reg.Help(MetricWALFsyncSeconds, "WAL fsync latency in seconds")
	reg.Help(MetricWALSizeBytes, "current size of the active WAL generation")
	reg.Help(MetricCheckpoints, "completed checkpoints (snapshot + WAL rotation + GC)")
	reg.Help(MetricCheckpointSeconds, "checkpoint latency in seconds")
	reg.Help(MetricPersistGeneration, "active snapshot generation")
	reg.Help(MetricRecoveryReplayed, "WAL records replayed by the last recovery")
	reg.Help(MetricRecoveryTorn, "torn-tail bytes truncated by the last recovery")
	reg.Help(MetricRecoverySeconds, "wall-clock duration of the last recovery")
	p.store.SetMetrics(&wal.Metrics{
		AppendedBytes:   reg.Counter(MetricWALBytes),
		AppendedRecords: reg.Counter(MetricWALRecords),
		Fsyncs:          reg.Counter(MetricWALFsyncs),
		FsyncSeconds:    reg.Histogram(MetricWALFsyncSeconds),
		Checkpoints:     reg.Counter(MetricCheckpoints),
		CheckpointSecs:  reg.Histogram(MetricCheckpointSeconds),
	})
	reg.GaugeFunc(MetricWALSizeBytes, func() float64 { return float64(p.store.LogSize()) })
	reg.GaugeFunc(MetricPersistGeneration, func() float64 { return float64(p.store.Generation()) })
	reg.GaugeFunc(MetricRecoveryReplayed, func() float64 { return float64(p.recovered.WALRecords) })
	reg.GaugeFunc(MetricRecoveryTorn, func() float64 { return float64(p.recovered.TornBytes) })
	reg.GaugeFunc(MetricRecoverySeconds, func() float64 { return p.recovered.Duration.Seconds() })
}

package precis

// Observability integration tests: Answer.Trace span structure, the
// engine's metric accounting, and the zero-allocation guarantee of the
// disabled-trace fast path.

import (
	"strings"
	"testing"
	"time"

	"precis/internal/obs"
)

// TestAnswerTrace checks the trace a traced query returns: every pipeline
// stage appears as a span, spans are contiguous (their sum approximates
// the total wall time from below), and db_gen's fine-grained steps nest
// inside the db_gen span.
func TestAnswerTrace(t *testing.T) {
	eng := newEngine(t)
	ans, err := eng.Query([]string{"Woody Allen"}, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := ans.Trace
	if tr == nil {
		t.Fatal("no trace on traced query")
	}
	if tr.Total <= 0 {
		t.Fatalf("trace total = %v", tr.Total)
	}
	for _, stage := range []string{
		obs.StageIndexLookup, obs.StageSchemaGen, obs.StageDBGen, obs.StageTranslate,
	} {
		if tr.SpanDur(stage) <= 0 {
			t.Errorf("stage %s missing from trace: %v", stage, tr)
		}
	}
	// Spans sum to ≈ total: never above it, and covering most of it (the
	// gap is inter-stage glue — option resolution, cache bookkeeping).
	if sum := tr.SpanSum(); sum > tr.Total {
		t.Errorf("span sum %v exceeds total %v", sum, tr.Total)
	} else if sum < tr.Total/2 {
		t.Errorf("span sum %v covers under half of total %v", sum, tr.Total)
	}
	// db_gen steps: the seed placement and at least one join edge, each
	// nested inside the db_gen span.
	if len(tr.Steps) == 0 {
		t.Fatal("no db_gen steps recorded")
	}
	var dbgen obs.Span
	for _, sp := range tr.Spans {
		if sp.Name == obs.StageDBGen {
			dbgen = sp
		}
	}
	sawSeeds, sawJoin := false, false
	for _, st := range tr.Steps {
		switch {
		case st.Name == "seeds":
			sawSeeds = true
			if st.Tuples <= 0 {
				t.Errorf("seed step materialized %d tuples", st.Tuples)
			}
		case strings.HasPrefix(st.Name, "join:"):
			sawJoin = true
		}
		if st.Start < dbgen.Start || st.Start+st.Dur > dbgen.Start+dbgen.Dur+time.Millisecond {
			t.Errorf("step %s [%v,%v] escapes db_gen span [%v,%v]",
				st.Name, st.Start, st.Start+st.Dur, dbgen.Start, dbgen.Start+dbgen.Dur)
		}
	}
	if !sawSeeds || !sawJoin {
		t.Errorf("steps lack seeds/join: %+v", tr.Steps)
	}

	// Untraced queries carry no trace.
	ans, err = eng.Query([]string{"Woody Allen"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Trace != nil {
		t.Error("untraced query returned a trace")
	}
}

// TestTraceCacheHit checks the cache-hit trace shape: the hit is marked
// FromCache, its trace records tokenize + cache_lookup only, and the
// cached entry itself never stores a trace.
func TestTraceCacheHit(t *testing.T) {
	eng := newEngine(t)
	eng.EnableCache(CacheConfig{MaxEntries: 8})
	first, err := eng.Query([]string{"Woody Allen"}, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if first.FromCache {
		t.Fatal("first query marked FromCache")
	}
	if first.Trace == nil || first.Trace.SpanDur(obs.StageDBGen) <= 0 {
		t.Fatal("first query trace incomplete")
	}
	hit, err := eng.Query([]string{"Woody Allen"}, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.FromCache {
		t.Fatal("second query not served from cache")
	}
	if hit.Trace == nil {
		t.Fatal("cache hit with Trace option returned no trace")
	}
	if hit.Trace.SpanDur(obs.StageCacheLookup) <= 0 {
		t.Errorf("hit trace lacks cache_lookup span: %v", hit.Trace)
	}
	if hit.Trace.SpanDur(obs.StageDBGen) != 0 {
		t.Errorf("hit trace claims a db_gen run: %v", hit.Trace)
	}
	// The two answers share the result database but not trace headers.
	if hit.Database != first.Database {
		t.Error("cache hit rebuilt the result database")
	}
	if hit.Trace == first.Trace {
		t.Error("cache hit shares the miss's trace")
	}
	// A hit without the Trace option carries none.
	plain, err := eng.Query([]string{"Woody Allen"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Error("untraced hit returned a trace")
	}
}

// TestInstrumentMetrics checks the engine's registry accounting across
// outcome classes: fresh runs, cache hits, no-match errors, and partial
// (budget-truncated) answers.
func TestInstrumentMetrics(t *testing.T) {
	eng := newEngine(t)
	reg := obs.NewRegistry()
	eng.Instrument(reg)
	eng.EnableCache(CacheConfig{MaxEntries: 8})

	if _, err := eng.Query([]string{"Woody Allen"}, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query([]string{"Woody Allen"}, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query([]string{"zzz-no-such-token"}, Options{}); err == nil {
		t.Fatal("expected ErrNoMatches")
	}
	// A one-tuple budget forces truncation.
	ans, err := eng.Query([]string{"Woody Allen"}, Options{Budget: Budget{MaxTuples: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Partial {
		t.Fatal("budgeted answer not partial")
	}

	if got := reg.Counter(MetricQueries).Load(); got != 4 {
		t.Errorf("queries_total = %d, want 4", got)
	}
	if got := reg.Counter(MetricQueryErrors, "kind", "no_matches").Load(); got != 1 {
		t.Errorf("no_matches errors = %d, want 1", got)
	}
	if got := reg.Counter(MetricCacheHits).Load(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	if got := reg.Counter(MetricPartialAnswers).Load(); got != 1 {
		t.Errorf("partial answers = %d, want 1", got)
	}
	if got := reg.Counter(MetricTruncations, "reason", string(TruncateTupleBudget)).Load(); got != 1 {
		t.Errorf("tuple-budget truncations = %d, want 1", got)
	}
	if got := reg.Histogram(MetricQuerySeconds).Count(); got != 4 {
		t.Errorf("query_seconds count = %d, want 4", got)
	}
	// Stage histograms observe fresh pipeline runs only (2 of the 4).
	if got := reg.Histogram(MetricStageSeconds, "stage", obs.StageDBGen).Count(); got != 2 {
		t.Errorf("db_gen stage observations = %d, want 2", got)
	}
	if got := reg.Counter(MetricResultTuples).Load(); got == 0 {
		t.Error("result tuples counter did not move")
	}
	// The exposition includes the engine gauges.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{MetricDBTuples, MetricIndexTokens, MetricCacheEntries} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestDisabledTraceZeroAlloc is the acceptance check for the no-op fast
// path: with metrics wired and tracing off, a cached query allocates not a
// single byte more than on a bare, un-instrumented engine.
func TestDisabledTraceZeroAlloc(t *testing.T) {
	terms := []string{"Woody Allen"}
	opts := Options{}

	bare := newEngine(t)
	bare.EnableCache(CacheConfig{MaxEntries: 8})
	instrumented := newEngine(t)
	instrumented.Instrument(obs.NewRegistry())
	instrumented.EnableCache(CacheConfig{MaxEntries: 8})
	for _, eng := range []*Engine{bare, instrumented} {
		if _, err := eng.Query(terms, opts); err != nil { // warm the cache
			t.Fatal(err)
		}
	}

	measure := func(eng *Engine) float64 {
		return testing.AllocsPerRun(200, func() {
			ans, err := eng.Query(terms, opts)
			if err != nil || !ans.FromCache {
				t.Fatal("expected a cache hit")
			}
		})
	}
	baseAllocs := measure(bare)
	instAllocs := measure(instrumented)
	if instAllocs > baseAllocs {
		t.Errorf("instrumented cached query allocates %.1f/op, bare %.1f/op — metrics must add zero",
			instAllocs, baseAllocs)
	}
}

package precis

// Determinism suite: the parallel query path must produce byte-identical
// answers to the serial path for every worker-pool size, dataset, and
// retrieval strategy. The generator guarantees this by construction
// (parallel fetches replay the serial pick order; inserts apply serially),
// and these tests pin the guarantee across every dataset shape the repo
// ships: the paper's example database, the synthetic IMDB-like database,
// and the chain and star topologies of §6.

import (
	"fmt"
	"strings"
	"testing"

	"precis/internal/dataset"
	"precis/internal/schemagraph"
	"precis/internal/storage"
)

// dumpDatabase renders a result database canonically: relations sorted by
// name, each with its column list and every tuple (id first) in scan order.
// Two identical précis answers produce identical dumps, and any difference
// in tuple content, identity, or insertion order shows up as a diff.
func dumpDatabase(db *storage.Database) string {
	var sb strings.Builder
	for _, name := range db.RelationNames() {
		rel := db.Relation(name)
		fmt.Fprintf(&sb, "== %s (%s)\n", name, strings.Join(rel.Schema().ColumnNames(), ","))
		rel.Scan(func(t storage.Tuple) bool {
			fmt.Fprintf(&sb, "%d:", t.ID)
			for _, v := range t.Values {
				sb.WriteByte(' ')
				sb.WriteString(v.String())
			}
			sb.WriteByte('\n')
			return true
		})
	}
	return sb.String()
}

// determinismWorkload is one dataset + query the suite sweeps.
type determinismWorkload struct {
	name      string
	terms     []string
	narrative bool // compare narratives too (needs an annotated graph)
	build     func() (*storage.Database, *schemagraph.Graph, error)
}

func determinismWorkloads(t *testing.T) []determinismWorkload {
	t.Helper()
	return []determinismWorkload{
		{
			name:      "example-movies",
			terms:     []string{"Woody Allen"},
			narrative: true,
			build: func() (*storage.Database, *schemagraph.Graph, error) {
				db, g, err := dataset.ExampleMovies()
				if err != nil {
					return nil, nil, err
				}
				return db, g, dataset.AnnotateNarrative(g)
			},
		},
		{
			name:      "synthetic-movies",
			narrative: true,
			build: func() (*storage.Database, *schemagraph.Graph, error) {
				cfg := dataset.DefaultSyntheticConfig()
				cfg.Films = 300
				db, err := dataset.SyntheticMovies(cfg)
				if err != nil {
					return nil, nil, err
				}
				g, err := dataset.PaperGraph(db)
				if err != nil {
					return nil, nil, err
				}
				return db, g, dataset.AnnotateNarrative(g)
			},
		},
		{
			name:  "chain",
			terms: []string{"tokR0"},
			build: func() (*storage.Database, *schemagraph.Graph, error) {
				cfg := dataset.DefaultChainConfig()
				cfg.RowsPerRel = 200
				return dataset.Chain(cfg)
			},
		},
		{
			name:  "star",
			terms: []string{"tokHUB"},
			build: func() (*storage.Database, *schemagraph.Graph, error) {
				return dataset.Star(dataset.StarConfig{Satellites: 4, RowsPerRel: 100, Fanout: 3, Seed: 7})
			},
		},
	}
}

// mostProlificDirector returns the dname whose director directs the most
// films — the heaviest précis the synthetic database can produce.
func mostProlificDirector(db *storage.Database) string {
	movies := db.Relation("MOVIE")
	di := movies.Schema().ColumnIndex("did")
	counts := make(map[string]int)
	movies.Scan(func(t storage.Tuple) bool {
		counts[t.Values[di].String()]++
		return true
	})
	directors := db.Relation("DIRECTOR")
	did := directors.Schema().ColumnIndex("did")
	dn := directors.Schema().ColumnIndex("dname")
	best, bestN := "", -1
	directors.Scan(func(t storage.Tuple) bool {
		if n := counts[t.Values[did].String()]; n > bestN {
			bestN, best = n, t.Values[dn].AsString()
		}
		return true
	})
	return best
}

// TestParallelDeterminism sweeps every dataset × strategy × worker count
// and requires the parallel answers to match the serial answer exactly:
// same result database (content and insertion order), same narrative, same
// tuple counts.
func TestParallelDeterminism(t *testing.T) {
	for _, w := range determinismWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			db, g, err := w.build()
			if err != nil {
				t.Fatal(err)
			}
			eng, err := New(db, g)
			if err != nil {
				t.Fatal(err)
			}
			if w.narrative {
				for _, def := range dataset.StandardMacros() {
					if err := eng.DefineMacro(def); err != nil {
						t.Fatal(err)
					}
				}
			}
			terms := w.terms
			if terms == nil {
				terms = []string{mostProlificDirector(db)}
			}
			for _, strat := range []Strategy{StrategyNaive, StrategyRoundRobin} {
				t.Run(strat.String(), func(t *testing.T) {
					opts := Options{
						Degree:        MinPathWeight(0.1),
						Cardinality:   MaxTuplesPerRelation(20),
						Strategy:      strat,
						SkipNarrative: !w.narrative,
						Parallelism:   -1, // serial reference
					}
					ref, err := eng.Query(terms, opts)
					if err != nil {
						t.Fatal(err)
					}
					refDump := dumpDatabase(ref.Database)
					for _, workers := range []int{2, 4, 8} {
						opts.Parallelism = workers
						ans, err := eng.Query(terms, opts)
						if err != nil {
							t.Fatalf("workers=%d: %v", workers, err)
						}
						if got := dumpDatabase(ans.Database); got != refDump {
							t.Fatalf("workers=%d: result database differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
								workers, refDump, got)
						}
						if ans.Narrative != ref.Narrative {
							t.Fatalf("workers=%d: narrative differs\nserial:   %q\nparallel: %q",
								workers, ref.Narrative, ans.Narrative)
						}
						if ans.Stats.TotalTuples != ref.Stats.TotalTuples {
							t.Fatalf("workers=%d: %d tuples vs serial %d",
								workers, ans.Stats.TotalTuples, ref.Stats.TotalTuples)
						}
					}
				})
			}
		})
	}
}

// TestParallelDeterminismTupleWeights repeats the sweep with the §7
// tuple-weight extension active, exercising the weighted NaïveQ and
// round-robin orderings under the parallel scheduler.
func TestParallelDeterminismTupleWeights(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	eng, err := New(db, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			t.Fatal(err)
		}
	}
	// Invert the natural order: high ids get high weight.
	weights := TupleWeights{}
	for _, rel := range db.RelationNames() {
		m := make(map[storage.TupleID]float64)
		db.Relation(rel).Scan(func(tu storage.Tuple) bool {
			m[tu.ID] = float64(tu.ID)
			return true
		})
		weights[rel] = m
	}
	for _, strat := range []Strategy{StrategyNaive, StrategyRoundRobin} {
		opts := Options{
			Degree:       MinPathWeight(0.1),
			Cardinality:  MaxTuplesPerRelation(2),
			Strategy:     strat,
			TupleWeights: weights,
			Parallelism:  -1,
		}
		ref, err := eng.Query([]string{"Woody Allen"}, opts)
		if err != nil {
			t.Fatal(err)
		}
		refDump := dumpDatabase(ref.Database)
		for _, workers := range []int{2, 8} {
			opts.Parallelism = workers
			ans, err := eng.Query([]string{"Woody Allen"}, opts)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", strat, workers, err)
			}
			if got := dumpDatabase(ans.Database); got != refDump {
				t.Fatalf("%v workers=%d: weighted result differs\n--- serial ---\n%s\n--- parallel ---\n%s",
					strat, workers, refDump, got)
			}
			if ans.Narrative != ref.Narrative {
				t.Fatalf("%v workers=%d: narrative differs", strat, workers)
			}
		}
	}
}

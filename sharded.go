package precis

import (
	"fmt"
	"strconv"

	"precis/internal/faultinject"
	"precis/internal/invidx"
	"precis/internal/nlg"
	"precis/internal/obs"
	"precis/internal/profile"
	"precis/internal/schemagraph"
	"precis/internal/shard"
	"precis/internal/storage"
	"precis/internal/wal"
)

// ShardedConfig configures NewSharded.
type ShardedConfig struct {
	// Shards is the number of embedded shard engines (>= 1).
	Shards int
	// Partitioner selects the ownership scheme: "hash" (the default —
	// tuple id mod N, with strided shard-local id allocation) or "range"
	// (contiguous id ranges of near-equal cardinality).
	Partitioner string
	// Persist, when Dir is non-empty, gives every shard its own data
	// directory Dir/shard-NNN (same fsync/checkpoint policy for all) and a
	// topology manifest Dir/shards.json. Each shard crash-recovers
	// independently on reopen; the manifest pins the shard count and
	// partitioning scheme, and a mismatched reopen is refused.
	Persist PersistConfig
}

// shardSet is the coordinator's view of its shard engines. Each shard is a
// complete embedded Engine — its own database partition, inverted index,
// and (when persistent) WAL + snapshot directory — while the coordinator
// keeps the pipeline: scattered index lookups, schema generation, the
// Figure 5 apply loop with budget accounting, the answer cache, and
// narrative synthesis all run on the coordinator, so every determinism and
// degradation guarantee of the single-engine path holds by construction.
//
// Locking: the coordinator's mu serializes queries against mutations
// exactly as on an unsharded engine. Queries read shard state (databases,
// indexes) under the coordinator's RLock without taking shard locks —
// every write to shard state routes through a coordinator mutation holding
// the coordinator's write lock, so reads can never race one. Routed
// mutations call the shard's own public methods (coordinator lock held,
// then the shard's — a strict order, so no deadlock).
type shardSet struct {
	part    shard.Partitioner
	engines []*Engine
	dir     string // sharded data root ("" when in-memory)
	// metrics and mutations are set by Instrument (under the coordinator's
	// write lock) and read by queries/mutations; nil on an uninstrumented
	// engine — all counters are nil-safe.
	metrics   *shard.Metrics
	mutations []*obs.Counter
}

// NewSharded builds a sharded engine: db is partitioned across cfg.Shards
// embedded engines by tuple-id ownership, the schema graph (and later
// synonyms and macros) replicated to every shard, and queries executed
// with scattered index lookups and scatter/gather tuple fetches whose
// answers are byte-identical to an unsharded engine over the same data —
// for every shard count, worker-pool size, and retrieval strategy.
//
// With cfg.Persist.Dir set, each shard mounts (or recovers) its own data
// directory under the root; reopening an existing root validates the
// topology manifest and recovers every shard independently, then db is
// only a seed, exactly as with Open.
func NewSharded(db *storage.Database, g *schemagraph.Graph, cfg ShardedConfig) (*Engine, error) {
	if db == nil || g == nil {
		return nil, fmt.Errorf("precis: need a database and a schema graph")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("precis: shard count must be >= 1, got %d", cfg.Shards)
	}
	if err := g.Validate(db); err != nil {
		return nil, err
	}
	scheme := cfg.Partitioner
	if scheme == "" {
		scheme = "hash"
	}
	var part shard.Partitioner
	if cfg.Persist.Dir != "" {
		m, ok, err := shard.LoadManifest(cfg.Persist.Dir)
		if err != nil {
			return nil, err
		}
		if ok {
			if m.Shards != cfg.Shards || m.Partitioner != scheme {
				return nil, fmt.Errorf("precis: sharded directory %s holds %d %s-partitioned shard(s); reopening as %d %s shard(s) would misroute every tuple (in-place re-sharding is not supported)",
					cfg.Persist.Dir, m.Shards, m.Partitioner, cfg.Shards, scheme)
			}
			part, err = m.Build()
			if err != nil {
				return nil, err
			}
		}
	}
	if part == nil {
		var err error
		switch scheme {
		case "hash":
			part, err = shard.NewHashPartitioner(cfg.Shards)
		case "range":
			part, err = shard.NewRangePartitioner(shard.EqualCountBounds(db, cfg.Shards))
		default:
			return nil, fmt.Errorf("precis: unknown partitioner %q (want hash or range)", scheme)
		}
		if err != nil {
			return nil, err
		}
		// The manifest is written before any shard directory is seeded, so
		// a crash between the two leaves a root the next open understands.
		if cfg.Persist.Dir != "" {
			if err := shard.SaveManifest(cfg.Persist.Dir, shard.ManifestFor(part)); err != nil {
				return nil, err
			}
		}
	}
	parts, err := shard.Partition(db, part)
	if err != nil {
		return nil, err
	}
	engines := make([]*Engine, cfg.Shards)
	fail := func(err error) (*Engine, error) {
		for _, sh := range engines {
			if sh != nil {
				_ = sh.Close()
			}
		}
		return nil, err
	}
	for i := range engines {
		var sh *Engine
		if cfg.Persist.Dir == "" {
			sh, err = New(parts[i], g)
		} else {
			scfg := cfg.Persist
			scfg.Dir = shard.ShardDir(cfg.Persist.Dir, i)
			sh, err = openEngine(parts[i], g, scfg, false)
		}
		if err != nil {
			return fail(fmt.Errorf("precis: shard %d: %w", i, err))
		}
		engines[i] = sh
	}
	// Recovery may have replaced each shard's database wholesale; re-apply
	// strided local id allocation (it is not persisted).
	for i, sh := range engines {
		if err := shard.ApplyStride(sh.db, part, i); err != nil {
			return fail(err)
		}
	}
	coord := &Engine{
		graph:    g,
		renderer: nlg.NewRenderer(),
		profiles: profile.NewRegistry(),
		shards:   &shardSet{part: part, engines: engines, dir: cfg.Persist.Dir},
	}
	// Macro definitions fan out to every shard (for durability), so any
	// recovered shard holds them all; replay shard 0's into the
	// coordinator's renderer, which is the one narratives use.
	for _, def := range engines[0].macroDefs {
		if err := coord.renderer.DefineMacro(def); err != nil {
			return fail(fmt.Errorf("precis: replaying recovered macro: %w", err))
		}
		coord.trackMacroLocked(def)
	}
	return coord, nil
}

// Sharded reports whether this engine is a sharded coordinator.
func (e *Engine) Sharded() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.shards != nil
}

// NumShards returns the shard count (0 on an unsharded engine).
func (e *Engine) NumShards() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.shards == nil {
		return 0
	}
	return len(e.shards.engines)
}

// DatabaseName returns the underlying database's name; unlike Database it
// also works on a sharded coordinator (whose relations live on the
// shards).
func (e *Engine) DatabaseName() string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.shards != nil {
		return e.shards.engines[0].DatabaseName()
	}
	return e.db.Name()
}

// TotalTuples returns the engine's tuple count — summed across shards on a
// sharded coordinator.
func (e *Engine) TotalTuples() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.totalTuplesLocked()
}

func (e *Engine) totalTuplesLocked() int {
	if e.shards != nil {
		total := 0
		for _, sh := range e.shards.engines {
			total += sh.Database().TotalTuples()
		}
		return total
	}
	return e.db.TotalTuples()
}

// NumRelations returns the relation count (identical on every shard — the
// schema catalog is replicated).
func (e *Engine) NumRelations() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.numRelationsLocked()
}

func (e *Engine) numRelationsLocked() int {
	if e.shards != nil {
		return e.shards.engines[0].Database().NumRelations()
	}
	return e.db.NumRelations()
}

// indexTokensLocked returns the distinct-token count — summed over shard
// indexes on a coordinator (shards can share tokens, so this is an upper
// bound there; the gauge tracks index footprint, not vocabulary).
func (e *Engine) indexTokensLocked() int {
	if e.shards != nil {
		total := 0
		for _, sh := range e.shards.engines {
			total += sh.Index().NumTokens()
		}
		return total
	}
	return e.index.NumTokens()
}

// ShardInfo describes one shard of a sharded engine.
type ShardInfo struct {
	Index       int          `json:"index"`
	Tuples      int          `json:"tuples"`
	NextTupleID int64        `json:"next_tuple_id"`
	IndexTokens int          `json:"index_tokens"`
	Persist     PersistStats `json:"persist"`
}

// ShardStats reports a sharded engine's topology and per-shard state.
// Enabled is false (and everything else zero) on an unsharded engine.
type ShardStats struct {
	Enabled     bool        `json:"enabled"`
	Shards      int         `json:"shards,omitempty"`
	Partitioner string      `json:"partitioner,omitempty"`
	Dir         string      `json:"dir,omitempty"`
	ShardInfo   []ShardInfo `json:"shard_info,omitempty"`
}

// ShardStats snapshots the sharded topology for GET /api/shards.
func (e *Engine) ShardStats() ShardStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s := e.shards
	if s == nil {
		return ShardStats{}
	}
	st := ShardStats{
		Enabled:     true,
		Shards:      len(s.engines),
		Partitioner: s.part.Name(),
		Dir:         s.dir,
	}
	for i, sh := range s.engines {
		db := sh.Database()
		st.ShardInfo = append(st.ShardInfo, ShardInfo{
			Index:       i,
			Tuples:      db.TotalTuples(),
			NextTupleID: int64(db.NextTupleID()),
			IndexTokens: sh.Index().NumTokens(),
			Persist:     sh.PersistStats(),
		})
	}
	return st
}

// lookup scatters one term's inverted-index probe to every shard and
// merges the occurrence lists into the exact output a single index would
// produce. Callers hold the coordinator's RLock; the per-shard probes are
// pure reads of state only coordinator mutations (which hold the write
// lock) can change.
func (s *shardSet) lookup(term string) ([]invidx.Occurrence, error) {
	if err := faultinject.Fire(faultinject.SiteShardScatter); err != nil {
		return nil, fmt.Errorf("precis: shard scatter for term lookup: %w", err)
	}
	parts := make([][]invidx.Occurrence, len(s.engines))
	for i, sh := range s.engines {
		parts[i] = sh.index.LookupExpanded(term)
	}
	if err := faultinject.Fire(faultinject.SiteShardGather); err != nil {
		return nil, fmt.Errorf("precis: shard gather for term lookup: %w", err)
	}
	return shard.MergeOccurrences(parts), nil
}

// newFetcher builds the per-query scatter/gather fetcher over the current
// shard databases. Callers hold the coordinator's RLock, so the database
// set is stable for the query's lifetime.
func (s *shardSet) newFetcher() *shard.Fetcher {
	dbs := make([]*storage.Database, len(s.engines))
	for i, sh := range s.engines {
		dbs[i] = sh.db
	}
	return shard.NewFetcher(s.part, dbs, s.metrics)
}

// owner returns the owning shard index for id, bounds-checked.
func (s *shardSet) owner(id storage.TupleID) (int, error) {
	o := s.part.Owner(id)
	if o < 0 || o >= len(s.engines) {
		return 0, fmt.Errorf("precis: partitioner placed tuple %d on shard %d of %d", id, o, len(s.engines))
	}
	return o, nil
}

// countMutation bumps the routed-mutation counter for a shard (nil-safe).
func (s *shardSet) countMutation(owner int) {
	if owner < len(s.mutations) {
		s.mutations[owner].Inc()
	}
}

// insert routes an insert to the owning shard. The id is chosen by the
// coordinator as the maximum next-tuple-id over all shards — the same id
// an unsharded engine would allocate, so mutation histories stay
// byte-comparable across topologies — and ownership of that id picks the
// shard. Callers hold the coordinator's write lock.
func (s *shardSet) insert(relation string, vals []storage.Value) (storage.TupleID, error) {
	if err := faultinject.Fire(faultinject.SiteShardApply); err != nil {
		return 0, fmt.Errorf("precis: shard apply insert %s: %w", relation, err)
	}
	next := storage.TupleID(1)
	for _, sh := range s.engines {
		if nid := sh.db.NextTupleID(); nid > next {
			next = nid
		}
	}
	owner, err := s.owner(next)
	if err != nil {
		return 0, err
	}
	s.countMutation(owner)
	return s.engines[owner].insertRouted(relation, next, vals)
}

// update routes an update to the shard owning id.
func (s *shardSet) update(relation string, id storage.TupleID, vals []storage.Value) error {
	if err := faultinject.Fire(faultinject.SiteShardApply); err != nil {
		return fmt.Errorf("precis: shard apply update %s/%d: %w", relation, id, err)
	}
	owner, err := s.owner(id)
	if err != nil {
		return err
	}
	s.countMutation(owner)
	return s.engines[owner].Update(relation, id, vals)
}

// delete routes a delete to the shard owning id.
func (s *shardSet) delete(relation string, id storage.TupleID) (bool, error) {
	if err := faultinject.Fire(faultinject.SiteShardApply); err != nil {
		return false, fmt.Errorf("precis: shard apply delete %s/%d: %w", relation, id, err)
	}
	owner, err := s.owner(id)
	if err != nil {
		return false, err
	}
	s.countMutation(owner)
	return s.engines[owner].Delete(relation, id)
}

// addSynonym fans a synonym out to every shard (each logs it to its own
// WAL). A mid-fanout failure leaves earlier shards with the synonym and
// later ones without — the error reports which shard failed; cross-shard
// mutation atomicity is documented as out of scope (the query path only
// ever sees the union, so a partial fanout widens recall on some shards
// early, never corrupts an answer).
func (s *shardSet) addSynonym(alias, canonical string) error {
	if err := faultinject.Fire(faultinject.SiteShardApply); err != nil {
		return fmt.Errorf("precis: shard apply synonym: %w", err)
	}
	for i, sh := range s.engines {
		s.countMutation(i)
		if err := sh.AddSynonym(alias, canonical); err != nil {
			return fmt.Errorf("precis: shard %d: %w", i, err)
		}
	}
	return nil
}

// defineMacro validates the macro on the coordinator's renderer (the one
// narratives use), then fans the definition out to every shard for
// durability.
func (s *shardSet) defineMacro(coord *Engine, def string) error {
	if err := faultinject.Fire(faultinject.SiteShardApply); err != nil {
		return fmt.Errorf("precis: shard apply macro: %w", err)
	}
	if err := coord.renderer.DefineMacro(def); err != nil {
		return err
	}
	for i, sh := range s.engines {
		s.countMutation(i)
		if err := sh.DefineMacro(def); err != nil {
			return fmt.Errorf("precis: shard %d: %w", i, err)
		}
	}
	coord.trackMacroLocked(def)
	return nil
}

// each runs fn over every shard engine, returning the first error (but
// visiting all shards regardless).
func (s *shardSet) each(fn func(i int, sh *Engine) error) error {
	var firstErr error
	for i, sh := range s.engines {
		if err := fn(i, sh); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("precis: shard %d: %w", i, err)
		}
	}
	return firstErr
}

// persistStats aggregates the shards' persistence counters: sums for the
// volume counters, shard 0 for the shared configuration, recovery volumes
// summed (recoveries run serially at open, so the duration sum is the
// wall-clock cost).
func (s *shardSet) persistStats() PersistStats {
	first := s.engines[0].PersistStats()
	if !first.Enabled {
		return PersistStats{}
	}
	agg := PersistStats{
		Enabled:    true,
		Dir:        s.dir,
		Fsync:      first.Fsync,
		Generation: first.Generation,
	}
	agg.Recovery.IndexLoaded = true
	for _, sh := range s.engines {
		st := sh.PersistStats()
		agg.WALBytes += st.WALBytes
		agg.WALRecords += st.WALRecords
		agg.Checkpoints += st.Checkpoints
		if st.LastCheckpoint.After(agg.LastCheckpoint) {
			agg.LastCheckpoint = st.LastCheckpoint
		}
		// Bytes sum across shards; chain depth and pause report the worst
		// shard; the index counts as loaded only when every shard loaded it.
		agg.DeltaBytesWritten += st.DeltaBytesWritten
		agg.FullBytesWritten += st.FullBytesWritten
		if st.ChainDepth > agg.ChainDepth {
			agg.ChainDepth = st.ChainDepth
		}
		if st.LastCheckpointPauseMS > agg.LastCheckpointPauseMS {
			agg.LastCheckpointPauseMS = st.LastCheckpointPauseMS
		}
		agg.Recovery.SnapshotLoaded = agg.Recovery.SnapshotLoaded || st.Recovery.SnapshotLoaded
		agg.Recovery.IndexLoaded = agg.Recovery.IndexLoaded && st.Recovery.IndexLoaded
		agg.Recovery.ChainDepth += st.Recovery.ChainDepth
		agg.Recovery.DeltasApplied += st.Recovery.DeltasApplied
		agg.Recovery.WALRecordsReplayed += st.Recovery.WALRecordsReplayed
		agg.Recovery.TornBytesTruncated += st.Recovery.TornBytesTruncated
		agg.Recovery.DurationMS += st.Recovery.DurationMS
	}
	return agg
}

// Shard metric names (see Instrument).
const (
	MetricShardCount     = "precis_shard_count"
	MetricShardTuples    = "precis_shard_tuples"
	MetricShardScatters  = "precis_shard_scatters_total"
	MetricShardQueries   = "precis_shard_queries_total"
	MetricShardRows      = "precis_shard_rows_total"
	MetricShardMutations = "precis_shard_mutations_total"
)

// instrument registers the sharded coordinator's gauges and counters.
// Called from Instrument under the coordinator's write lock.
func (s *shardSet) instrument(reg *obs.Registry) {
	reg.Help(MetricShardCount, "number of shards in the sharded engine")
	reg.Help(MetricShardTuples, "tuples resident per shard")
	reg.Help(MetricShardScatters, "statements scattered across shards")
	reg.Help(MetricShardQueries, "statements executed per shard")
	reg.Help(MetricShardRows, "rows returned per shard")
	reg.Help(MetricShardMutations, "mutations routed per shard")
	reg.GaugeFunc(MetricShardCount, func() float64 { return float64(len(s.engines)) })
	m := &shard.Metrics{Scatters: reg.Counter(MetricShardScatters)}
	s.mutations = make([]*obs.Counter, len(s.engines))
	for i := range s.engines {
		lbl := strconv.Itoa(i)
		m.Queries = append(m.Queries, reg.Counter(MetricShardQueries, "shard", lbl))
		m.Rows = append(m.Rows, reg.Counter(MetricShardRows, "shard", lbl))
		s.mutations[i] = reg.Counter(MetricShardMutations, "shard", lbl)
		sh := s.engines[i]
		reg.GaugeFunc(MetricShardTuples, func() float64 {
			return float64(sh.Database().TotalTuples())
		}, "shard", lbl)
	}
	s.metrics = m
}

// insertRouted is Insert with a coordinator-chosen tuple id: the shard
// inserts via InsertWithID, indexes the tuple, and logs the exact id to
// its WAL, mirroring Insert's rollback contract. Only the sharded
// coordinator calls it (holding its own write lock; this takes the
// shard's).
func (e *Engine) insertRouted(relation string, id storage.TupleID, vals []storage.Value) (storage.TupleID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.purgeCacheLocked()
	if err := e.db.InsertWithID(relation, id, vals...); err != nil {
		return 0, err
	}
	t, ok := e.db.Relation(relation).Get(id)
	if ok {
		e.index.AddTuple(relation, t)
	}
	if err := e.appendWALLocked(wal.Record{Op: wal.OpInsert, Rel: relation, ID: id, Values: vals}); err != nil {
		if ok {
			e.index.RemoveTuple(relation, t)
		}
		_, _ = e.db.Delete(relation, id)
		return 0, err
	}
	return id, nil
}

// Package xmlmap makes précis queries work over semi-structured data,
// realizing the paper's claim that "our approach is applicable to other
// types of (semi-)structured data as well" (§3, §7) and connecting to the
// XML keyword-search line of work it cites (XRank, XKeyword).
//
// Shred maps a data-centric XML document onto the relational model:
//
//   - every element name becomes a relation with an id primary key and,
//     below the root, a parent foreign key to its parent element's relation;
//   - XML attributes become TEXT columns;
//   - a child element that is pure text and occurs at most once per parent
//     is folded into a TEXT column of the parent (title, year, ...);
//   - repeated or structured children become their own relations;
//   - an element's own text content lands in a "text" column.
//
// The derived schema graph joins each relation to its parent in both
// directions (child→parent weight 1.0 — context always matters; parent→child
// 0.9), with the folded text columns as weighted projections and the first
// text-like column as the heading attribute. The result plugs directly into
// precis.New.
//
// The mapping requires each element name to appear under a single parent
// element name (true of data-centric XML like bibliographies or catalogs);
// documents violating that are rejected with a descriptive error.
package xmlmap

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"precis/internal/schemagraph"
	"precis/internal/storage"
)

// node is the generic parsed tree.
type node struct {
	name     string
	attrs    map[string]string
	text     string
	children []*node
}

// parse builds the tree from a decoder stream.
func parse(r io.Reader) (*node, error) {
	dec := xml.NewDecoder(r)
	var root *node
	var stack []*node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlmap: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &node{name: t.Name.Local, attrs: map[string]string{}}
			for _, a := range t.Attr {
				n.attrs[a.Name.Local] = a.Value
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmlmap: multiple root elements")
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				parent.children = append(parent.children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlmap: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				// Collapse internal whitespace runs: narrative output wants
				// "remember the milk", not the document's indentation.
				s := strings.Join(strings.Fields(string(t)), " ")
				if s != "" {
					cur := stack[len(stack)-1]
					if cur.text != "" {
						cur.text += " "
					}
					cur.text += s
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmlmap: empty document")
	}
	return root, nil
}

// isLeaf reports whether n is pure text (no attributes, no children).
func (n *node) isLeaf() bool { return len(n.attrs) == 0 && len(n.children) == 0 }

// elemInfo aggregates what Shred learned about one element name.
type elemInfo struct {
	name     string
	parent   string // "" for the root
	attrs    map[string]bool
	folded   map[string]bool // leaf child names folded into columns
	children map[string]bool // child element names that become relations
	hasText  bool
	count    int
}

// analyze walks the tree collecting per-element-name structure, validating
// the single-parent requirement and deciding which leaf children fold.
func analyze(root *node) (map[string]*elemInfo, []string, error) {
	infos := map[string]*elemInfo{}
	var order []string
	get := func(name string) *elemInfo {
		if inf, ok := infos[name]; ok {
			return inf
		}
		inf := &elemInfo{
			name:     name,
			attrs:    map[string]bool{},
			folded:   map[string]bool{},
			children: map[string]bool{},
		}
		infos[name] = inf
		order = append(order, name)
		return inf
	}

	// multiLeaf marks leaf child names seen more than once under a single
	// parent instance — those cannot fold into a column.
	multiLeaf := map[string]bool{}

	var walk func(n *node, parent string) error
	walk = func(n *node, parent string) error {
		inf := get(n.name)
		inf.count++
		if inf.count == 1 {
			inf.parent = parent
		} else if inf.parent != parent {
			return fmt.Errorf("xmlmap: element <%s> appears under both <%s> and <%s>; the relational mapping needs a single parent per element name",
				n.name, inf.parent, parent)
		}
		for a := range n.attrs {
			inf.attrs[a] = true
		}
		if n.text != "" {
			inf.hasText = true
		}
		perName := map[string]int{}
		for _, c := range n.children {
			perName[c.name]++
		}
		for _, c := range n.children {
			if c.isLeaf() && perName[c.name] == 1 {
				inf.folded[c.name] = true
			} else {
				if c.isLeaf() && perName[c.name] > 1 {
					multiLeaf[c.name] = true
				}
				inf.children[c.name] = true
			}
			if err := walk(c, n.name); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, ""); err != nil {
		return nil, nil, err
	}

	// A leaf name that is multi-valued under any parent instance must be a
	// relation everywhere, for a consistent schema.
	for name, inf := range infos {
		for leaf := range inf.folded {
			if multiLeaf[leaf] {
				delete(inf.folded, leaf)
				inf.children[leaf] = true
			}
		}
		_ = name
	}
	return infos, order, nil
}

// columnName sanitizes an XML name into a SQL-ish identifier.
func columnName(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "x"
	}
	return b.String()
}

// Result carries the shredded database and its derived schema graph.
type Result struct {
	DB    *storage.Database
	Graph *schemagraph.Graph
	Root  string // relation name of the document root
}

// Shred parses and maps an XML document.
func Shred(r io.Reader) (*Result, error) {
	root, err := parse(r)
	if err != nil {
		return nil, err
	}
	infos, order, err := analyze(root)
	if err != nil {
		return nil, err
	}

	db := storage.NewDatabase("xml")
	// Only elements that survive as structure become relations: the root
	// plus every name some parent keeps as a child relation. Folded leaves
	// live on as columns of their parent.
	structural := map[string]bool{root.name: true}
	for _, inf := range infos {
		for c := range inf.children {
			structural[c] = true
		}
	}
	var kept []string
	for _, name := range order {
		if structural[name] {
			kept = append(kept, name)
		}
	}
	order = kept

	// Build schemas in first-seen (document) order.
	colsOf := map[string][]string{}
	for _, name := range order {
		inf := infos[name]
		cols := []storage.Column{{Name: "id", Type: storage.TypeInt}}
		var extras []string
		if inf.parent != "" {
			cols = append(cols, storage.Column{Name: "parent", Type: storage.TypeInt})
		}
		if inf.hasText {
			extras = append(extras, "text")
		}
		attrNames := setToSorted(inf.attrs)
		foldedNames := setToSorted(inf.folded)
		for _, a := range attrNames {
			extras = append(extras, columnName(a))
		}
		for _, f := range foldedNames {
			extras = append(extras, columnName(f))
		}
		extras = dedupeStrings(extras)
		for _, e := range extras {
			cols = append(cols, storage.Column{Name: e, Type: storage.TypeString})
		}
		schema, err := storage.NewSchema(relName(name), "id", cols...)
		if err != nil {
			return nil, fmt.Errorf("xmlmap: element <%s>: %w", name, err)
		}
		if _, err := db.CreateRelation(schema); err != nil {
			return nil, err
		}
		colsOf[name] = extras
	}
	for _, name := range order {
		inf := infos[name]
		if inf.parent == "" {
			continue
		}
		fk := storage.ForeignKey{
			FromRelation: relName(name), FromColumn: "parent",
			ToRelation: relName(inf.parent), ToColumn: "id",
		}
		if err := db.AddForeignKey(fk); err != nil {
			return nil, err
		}
	}

	// Populate.
	ids := map[string]int64{}
	var emit func(n *node, parentID int64) error
	emit = func(n *node, parentID int64) error {
		inf := infos[n.name]
		ids[n.name]++
		id := ids[n.name]
		vals := []storage.Value{storage.Int(id)}
		if inf.parent != "" {
			vals = append(vals, storage.Int(parentID))
		}
		// Column values by name.
		byCol := map[string]string{}
		if n.text != "" {
			byCol["text"] = n.text
		}
		for a, v := range n.attrs {
			byCol[columnName(a)] = v
		}
		for _, c := range n.children {
			if inf.folded[c.name] {
				byCol[columnName(c.name)] = c.text
			}
		}
		for _, col := range colsOf[n.name] {
			if v, ok := byCol[col]; ok {
				vals = append(vals, storage.String(v))
			} else {
				vals = append(vals, storage.Null)
			}
		}
		if _, err := db.Insert(relName(n.name), vals...); err != nil {
			return err
		}
		for _, c := range n.children {
			if inf.folded[c.name] {
				continue
			}
			if err := emit(c, id); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit(root, 0); err != nil {
		return nil, err
	}
	if err := db.CreateJoinIndexes(); err != nil {
		return nil, err
	}

	g, err := buildGraph(db, infos, order, colsOf)
	if err != nil {
		return nil, err
	}
	return &Result{DB: db, Graph: g, Root: relName(root.name)}, nil
}

// relName upper-cases element names into relation names, matching the
// paper's convention.
func relName(s string) string { return strings.ToUpper(columnName(s)) }

// buildGraph derives the weighted schema graph: child→parent 1.0 (an answer
// about a nested element carries its context), parent→child 0.9, folded
// text columns as 0.9 projections with the first one as heading.
func buildGraph(db *storage.Database, infos map[string]*elemInfo, order []string, colsOf map[string][]string) (*schemagraph.Graph, error) {
	g := schemagraph.New()
	for _, name := range order {
		g.AddRelation(relName(name))
	}
	for _, name := range order {
		rel := relName(name)
		inf := infos[name]
		if _, err := g.AddProjection(rel, "id", 0); err != nil {
			return nil, err
		}
		if inf.parent != "" {
			if _, err := g.AddProjection(rel, "parent", 0); err != nil {
				return nil, err
			}
		}
		for _, col := range colsOf[name] {
			if _, err := g.AddProjection(rel, col, 0.9); err != nil {
				return nil, err
			}
		}
		if heading := chooseHeading(inf, colsOf[name]); heading != "" {
			if err := g.SetHeading(rel, heading); err != nil {
				return nil, err
			}
		}
		if inf.parent != "" {
			parent := relName(inf.parent)
			if _, err := g.AddJoin(rel, parent, "parent", "id", 1.0); err != nil {
				return nil, err
			}
			if _, err := g.AddJoin(parent, rel, "id", "parent", 0.9); err != nil {
				return nil, err
			}
		}
	}
	if err := g.Validate(db); err != nil {
		return nil, err
	}
	return g, nil
}

// chooseHeading picks the attribute that characterizes tuples of the
// relation in narrative output: own text first, then conventional naming
// columns, then folded element columns (element text beats XML attributes),
// then whatever comes first.
func chooseHeading(inf *elemInfo, cols []string) string {
	for _, pref := range []string{"text", "name", "title"} {
		if contains(cols, pref) {
			return pref
		}
	}
	for _, f := range setToSorted(inf.folded) {
		if c := columnName(f); contains(cols, c) {
			return c
		}
	}
	if len(cols) > 0 {
		return cols[0]
	}
	return ""
}

func setToSorted(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func dedupeStrings(in []string) []string {
	seen := map[string]bool{}
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

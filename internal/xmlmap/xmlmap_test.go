package xmlmap

import (
	"sort"
	"strings"
	"testing"

	"precis"
	"precis/internal/storage"
)

const bibXML = `<?xml version="1.0"?>
<bibliography>
  <book year="1974" pages="341">
    <title>The Dispossessed</title>
    <publisher>Harper</publisher>
    <author>
      <name>Ursula K. Le Guin</name>
      <country>USA</country>
    </author>
    <keyword>anarchism</keyword>
    <keyword>utopia</keyword>
  </book>
  <book year="1972">
    <title>Invisible Cities</title>
    <publisher>Einaudi</publisher>
    <author>
      <name>Italo Calvino</name>
      <country>Italy</country>
    </author>
    <keyword>cities</keyword>
  </book>
</bibliography>`

func shred(t *testing.T, doc string) *Result {
	t.Helper()
	res, err := Shred(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestShredStructure(t *testing.T) {
	res := shred(t, bibXML)
	names := res.DB.RelationNames()
	sort.Strings(names)
	want := []string{"AUTHOR", "BIBLIOGRAPHY", "BOOK", "KEYWORD"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("relations = %v", names)
	}
	if res.Root != "BIBLIOGRAPHY" {
		t.Errorf("root = %q", res.Root)
	}
	// Single-occurrence leaf children folded into columns.
	book := res.DB.Relation("BOOK").Schema()
	for _, col := range []string{"title", "publisher", "year", "pages"} {
		if !book.HasColumn(col) {
			t.Errorf("BOOK lacks folded column %s (%s)", col, book)
		}
	}
	// Repeated leaf children become relations.
	if res.DB.Relation("KEYWORD").Len() != 3 {
		t.Errorf("KEYWORD tuples = %d", res.DB.Relation("KEYWORD").Len())
	}
	// Author name/country folded into AUTHOR.
	author := res.DB.Relation("AUTHOR").Schema()
	if !author.HasColumn("name") || !author.HasColumn("country") {
		t.Errorf("AUTHOR schema = %s", author)
	}
	// Referential integrity holds.
	if v := res.DB.CheckIntegrity(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
	if err := res.Graph.Validate(res.DB); err != nil {
		t.Error(err)
	}
}

func TestShredValues(t *testing.T) {
	res := shred(t, bibXML)
	book := res.DB.Relation("BOOK")
	ti := book.Schema().ColumnIndex("title")
	yi := book.Schema().ColumnIndex("year")
	var titles []string
	book.Scan(func(tu storage.Tuple) bool {
		titles = append(titles, tu.Values[ti].AsString()+"/"+tu.Values[yi].AsString())
		return true
	})
	sort.Strings(titles)
	want := []string{"Invisible Cities/1972", "The Dispossessed/1974"}
	if strings.Join(titles, "|") != strings.Join(want, "|") {
		t.Errorf("titles = %v", titles)
	}
	// The second book has no pages attribute: NULL, not empty string.
	pi := book.Schema().ColumnIndex("pages")
	book.Scan(func(tu storage.Tuple) bool {
		if tu.Values[ti].AsString() == "Invisible Cities" && !tu.Values[pi].IsNull() {
			t.Errorf("pages = %v, want NULL", tu.Values[pi])
		}
		return true
	})
}

// TestPrecisOverXML is the headline: a précis query over an XML document
// through the standard pipeline.
func TestPrecisOverXML(t *testing.T) {
	res := shred(t, bibXML)
	eng, err := precis.New(res.DB, res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Query([]string{"Le Guin"}, precis.Options{
		Degree:      precis.MinPathWeight(0.5),
		Cardinality: precis.MaxTuplesPerRelation(10),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The précis around the author includes her book and its keywords.
	if err := storage.VerifySubDatabase(res.DB, ans.Database); err != nil {
		t.Fatal(err)
	}
	book := ans.Database.Relation("BOOK")
	if book == nil || book.Len() != 1 {
		t.Fatalf("BOOK in answer = %v", ans.Database.RelationNames())
	}
	ti := book.Schema().ColumnIndex("title")
	if got := book.Tuples()[0].Values[ti].AsString(); got != "The Dispossessed" {
		t.Errorf("book = %q", got)
	}
	kw := ans.Database.Relation("KEYWORD")
	if kw == nil || kw.Len() != 2 {
		t.Errorf("keywords = %v", kw)
	}
	// Calvino's book must not leak in.
	if book.Len() != 1 {
		t.Error("unrelated book leaked")
	}
	// The narrative mentions the author and the book.
	if !strings.Contains(ans.Narrative, "Ursula K. Le Guin") ||
		!strings.Contains(ans.Narrative, "The Dispossessed") {
		t.Errorf("narrative = %q", ans.Narrative)
	}
}

func TestShredErrors(t *testing.T) {
	cases := []string{
		``,
		`<a><b></a>`,
		`<a/><b/>`,
		// Same element name under two parents.
		`<r><x><name>1</name><name>2</name></x><y><name>3</name><name>4</name></y></r>`,
	}
	for _, doc := range cases {
		if _, err := Shred(strings.NewReader(doc)); err == nil {
			t.Errorf("Shred(%q) accepted", doc)
		}
	}
}

func TestShredTextContent(t *testing.T) {
	res := shred(t, `<notes><note author="kim">remember the   milk</note><note>two</note></notes>`)
	note := res.DB.Relation("NOTE")
	if note.Len() != 2 {
		t.Fatalf("notes = %d", note.Len())
	}
	ti := note.Schema().ColumnIndex("text")
	ai := note.Schema().ColumnIndex("author")
	first := note.Tuples()[0]
	if first.Values[ti].AsString() != "remember the milk" {
		t.Errorf("text = %q", first.Values[ti])
	}
	if first.Values[ai].AsString() != "kim" {
		t.Errorf("author = %q", first.Values[ai])
	}
	// Heading prefers the text column.
	if res.Graph.Relation("NOTE").Heading != "text" {
		t.Errorf("heading = %q", res.Graph.Relation("NOTE").Heading)
	}
}

func TestColumnNameSanitizer(t *testing.T) {
	cases := map[string]string{
		"title":      "title",
		"pub-date":   "pub_date",
		"1bad":       "_bad",
		"ns:attr":    "ns_attr",
		"":           "x",
		"with space": "with_space",
	}
	for in, want := range cases {
		if got := columnName(in); got != want {
			t.Errorf("columnName(%q) = %q, want %q", in, got, want)
		}
	}
}

package xmlmap

import (
	"strings"
	"testing"
)

// FuzzShred checks the XML mapper never panics and that every accepted
// document yields a referentially intact database with a valid graph.
func FuzzShred(f *testing.F) {
	f.Add(`<a><b x="1">t</b><b>u</b></a>`)
	f.Add(`<r><p><q>deep</q></p></r>`)
	f.Add(`<a/>`)
	f.Add(`<a><a>nested same name</a></a>`)
	f.Add(`not xml`)
	f.Fuzz(func(t *testing.T, doc string) {
		if len(doc) > 4096 {
			return
		}
		res, err := Shred(strings.NewReader(doc))
		if err != nil {
			return
		}
		if v := res.DB.CheckIntegrity(); len(v) != 0 {
			t.Fatalf("doc %q: integrity violations %v", doc, v)
		}
		if err := res.Graph.Validate(res.DB); err != nil {
			t.Fatalf("doc %q: graph invalid: %v", doc, err)
		}
	})
}

package nlg

import (
	"sort"
	"strings"
	"testing"

	"precis/internal/core"
	"precis/internal/dataset"
	"precis/internal/invidx"
	"precis/internal/sqlx"
	"precis/internal/storage"
)

// woodyPrecis runs the full pipeline for Q = {"Woody Allen"} and returns
// the result database plus occurrences.
func woodyPrecis(t testing.TB, perRel int) (*core.ResultDatabase, []invidx.Occurrence) {
	t.Helper()
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	occs := ix.Lookup("Woody Allen")
	seeds := map[string][]storage.TupleID{}
	var seedRels []string
	for _, o := range occs {
		seeds[o.Relation] = append(seeds[o.Relation], o.TupleIDs...)
		seedRels = append(seedRels, o.Relation)
	}
	sort.Strings(seedRels)
	rs, err := core.GenerateSchema(g, seedRels, core.MinPathWeight(0.9))
	if err != nil {
		t.Fatal(err)
	}
	rs.CopyAnnotations(g)
	rd, err := core.GenerateDatabase(sqlx.NewEngine(db), rs, seeds,
		core.MaxTuplesPerRelation(perRel), core.StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	return rd, occs
}

func paperRenderer(t testing.TB) *Renderer {
	t.Helper()
	r := NewRenderer()
	for _, def := range dataset.StandardMacros() {
		if err := r.DefineMacro(def); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// TestPaperNarrative reproduces the §5.3 narrative for the director
// occurrence of "Woody Allen".
func TestPaperNarrative(t *testing.T) {
	rd, occs := woodyPrecis(t, 100)
	r := paperRenderer(t)
	out, err := r.Narrative(rd, occs)
	if err != nil {
		t.Fatal(err)
	}
	wantFragments := []string{
		"Woody Allen was born on December 1, 1935 in Brooklyn, New York, USA.",
		"As a director, Woody Allen's work includes Match Point (2005), Melinda and Melinda (2004), Anything Else (2003), Hollywood Ending (2002), The Curse of the Jade Scorpion (2001).",
		"Match Point is Drama, Thriller.",
		"Melinda and Melinda is Comedy, Drama.",
		"Anything Else is Comedy, Romance.",
		// The actor occurrence produces its own paragraph (§5.3: one part
		// per token occurrence).
		"As an actor, Woody Allen's work includes",
	}
	for _, frag := range wantFragments {
		if !strings.Contains(out, frag) {
			t.Errorf("narrative missing %q\n--- got ---\n%s", frag, out)
		}
	}
	// Two occurrences => two paragraphs.
	if got := len(strings.Split(out, "\n\n")); got != 2 {
		t.Errorf("paragraphs = %d, want 2\n%s", got, out)
	}
	// The actor's credits are the §1 ones.
	if !strings.Contains(out, "Hollywood Ending (2002)") ||
		!strings.Contains(out, "The Curse of the Jade Scorpion (2001)") {
		t.Errorf("actor credits missing:\n%s", out)
	}
}

func TestNarrativeRespectsCardinalityCut(t *testing.T) {
	rd, occs := woodyPrecis(t, 2)
	r := paperRenderer(t)
	out, err := r.Narrative(rd, occs)
	if err != nil {
		t.Fatal(err)
	}
	// With <= 2 movies per relation the list is shorter but well-formed.
	if !strings.Contains(out, "work includes") {
		t.Errorf("narrative lost the work list:\n%s", out)
	}
}

func TestNarrativeDefaultTemplates(t *testing.T) {
	// Without annotations, the renderer falls back to generic clauses.
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	occs := ix.Lookup("Match Point")
	if len(occs) != 1 || occs[0].Relation != "MOVIE" {
		t.Fatalf("occs = %+v", occs)
	}
	rs, err := core.GenerateSchema(g, []string{"MOVIE"}, core.MinPathWeight(0.7))
	if err != nil {
		t.Fatal(err)
	}
	rs.CopyAnnotations(g)
	seeds := map[string][]storage.TupleID{"MOVIE": occs[0].TupleIDs}
	rd, err := core.GenerateDatabase(sqlx.NewEngine(db), rs, seeds,
		core.MaxTuplesPerRelation(10), core.StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewRenderer().Narrative(rd, occs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Match Point") {
		t.Errorf("default narrative missing the heading value:\n%s", out)
	}
	// The default join clause names the joined relation.
	if !strings.Contains(strings.ToLower(out), "genre") {
		t.Errorf("default narrative missing genre clause:\n%s", out)
	}
}

func TestNarrativeMovieSeed(t *testing.T) {
	// Query a movie: MOVIE -> GENRE and MOVIE -> DIRECTOR clauses render
	// with the annotated labels.
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	occs := ix.Lookup("Match Point")
	rs, err := core.GenerateSchema(g, []string{"MOVIE"}, core.MinPathWeight(0.7))
	if err != nil {
		t.Fatal(err)
	}
	rs.CopyAnnotations(g)
	seeds := map[string][]storage.TupleID{"MOVIE": occs[0].TupleIDs}
	rd, err := core.GenerateDatabase(sqlx.NewEngine(db), rs, seeds,
		core.MaxTuplesPerRelation(10), core.StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	r := paperRenderer(t)
	out, err := r.Narrative(rd, occs)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"Match Point (2005).",
		"Match Point is Drama, Thriller.",
		"Match Point was directed by Woody Allen.",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
}

func TestNarrativeClauseCap(t *testing.T) {
	rd, occs := woodyPrecis(t, 100)
	r := paperRenderer(t)
	r.MaxClauses = 2
	out, err := r.Narrative(rd, occs)
	if err != nil {
		t.Fatal(err)
	}
	for _, para := range strings.Split(out, "\n\n") {
		// Clauses are separated by single spaces after sentence periods;
		// count rendered clauses approximately by the annotated patterns.
		n := strings.Count(para, "work includes") + strings.Count(para, "was born") +
			strings.Count(para, " is ") + strings.Count(para, "directed by")
		if n > 2 {
			t.Errorf("paragraph exceeds clause cap (%d):\n%s", n, para)
		}
	}
}

func TestNarrativeEmptyResult(t *testing.T) {
	rd, occs := woodyPrecis(t, 100)
	out, err := paperRenderer(t).Narrative(rd, []invidx.Occurrence{})
	if err != nil || out != "" {
		t.Errorf("empty occurrences: %q, %v", out, err)
	}
	// Occurrence pointing at a tuple the cardinality cut: skipped quietly.
	ghost := []invidx.Occurrence{{Relation: "MOVIE", Attribute: "title", TupleIDs: []storage.TupleID{99999}}}
	out, err = paperRenderer(t).Narrative(rd, ghost)
	if err != nil || out != "" {
		t.Errorf("ghost occurrence: %q, %v", out, err)
	}
	_ = occs
}

// woodyPrecisBudget runs the pipeline under a resource budget so the
// result database arrives truncated.
func woodyPrecisBudget(t testing.TB, strat core.Strategy, b core.Budget) (*core.ResultDatabase, []invidx.Occurrence) {
	t.Helper()
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	occs := ix.Lookup("Woody Allen")
	seeds := map[string][]storage.TupleID{}
	var seedRels []string
	for _, o := range occs {
		seeds[o.Relation] = append(seeds[o.Relation], o.TupleIDs...)
		seedRels = append(seedRels, o.Relation)
	}
	sort.Strings(seedRels)
	rs, err := core.GenerateSchema(g, seedRels, core.MinPathWeight(0.9))
	if err != nil {
		t.Fatal(err)
	}
	rs.CopyAnnotations(g)
	rd, err := core.GenerateDatabaseOpts(sqlx.NewEngine(db), rs, seeds,
		core.Unlimited(), strat, core.DBGenOptions{Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	return rd, occs
}

// TestNarrativePartialGolden pins the exact narrative rendered from a
// budget-truncated answer for both retrieval strategies: the paragraphs
// stay well-formed (the generator trimmed dangling FK edges, so no clause
// references a cut tuple), and the truncation note is the final paragraph.
func TestNarrativePartialGolden(t *testing.T) {
	// Both strategies truncate at the same canonical prefix under this
	// budget — deliberate: for the example database the seed set plus the
	// first director joins fill the budget before the strategies diverge.
	const golden = "Woody Allen.\n\n" +
		"Woody Allen was born on December 1, 1935 in Brooklyn, New York, USA. " +
		"As a director, Woody Allen's work includes Match Point (2005), Melinda and Melinda (2004).\n\n" +
		"(This answer was truncated: the tuple budget ran out; some related information is omitted.)"
	for _, tc := range []struct {
		strat core.Strategy
		b     core.Budget
		want  string
	}{
		{
			strat: core.StrategyNaive,
			b:     core.Budget{MaxTuples: 7},
			want:  golden,
		},
		{
			strat: core.StrategyRoundRobin,
			b:     core.Budget{MaxTuples: 7},
			want:  golden,
		},
	} {
		t.Run(tc.strat.String(), func(t *testing.T) {
			rd, occs := woodyPrecisBudget(t, tc.strat, tc.b)
			if !rd.Partial() {
				t.Fatalf("budget %+v did not truncate", tc.b)
			}
			r := paperRenderer(t)
			out, err := r.Narrative(rd, occs)
			if err != nil {
				t.Fatal(err)
			}
			if out != tc.want {
				t.Errorf("narrative mismatch\n--- got ---\n%s\n--- want ---\n%s", out, tc.want)
			}
			if !strings.HasSuffix(out, "(This answer was truncated: the tuple budget ran out; some related information is omitted.)") {
				t.Errorf("truncation note not final paragraph:\n%s", out)
			}
		})
	}
}

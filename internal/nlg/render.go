package nlg

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"precis/internal/core"
	"precis/internal/invidx"
	"precis/internal/schemagraph"
	"precis/internal/storage"
)

// Renderer synthesizes the narrative form of a précis. Translation is
// realized separately for every occurrence of a token (paper §5.3): the
// narrative starts at the relation containing the token, renders the clause
// of that relation (heading attribute first), then composes clauses for the
// foreign-key relationships of the result schema graph, carrying the
// subject through heading-less junction relations.
type Renderer struct {
	// Macros are available to every template (MOVIE_LIST etc.).
	Macros Macros
	// MaxClauses caps narrative length per occurrence; 0 means the default
	// of 64. A précis "may be incomplete in many ways" (§1) — the cap keeps
	// big results readable.
	MaxClauses int

	// cache memoizes parsed label/sentence templates by source text; safe
	// under the concurrent queries the précis engine allows.
	cache sync.Map
}

// parse returns the cached parse of a template source.
func (r *Renderer) parse(src string) (*Template, error) {
	if v, ok := r.cache.Load(src); ok {
		return v.(*Template), nil
	}
	t, err := ParseTemplate(src)
	if err != nil {
		return nil, err
	}
	r.cache.Store(src, t)
	return t, nil
}

// NewRenderer returns a Renderer with an empty macro registry.
func NewRenderer() *Renderer { return &Renderer{Macros: Macros{}} }

// DefineMacro parses and registers a "DEFINE NAME as ..." macro.
func (r *Renderer) DefineMacro(def string) error {
	name, t, err := ParseDefine(def)
	if err != nil {
		return err
	}
	r.Macros[name] = t
	return nil
}

// Narrative renders the result database for the given token occurrences
// (as returned by the inverted index). Each occurrence of the token yields
// one paragraph; paragraphs are separated by blank lines.
//
// Partial answers (rd.Partial(), a resource budget truncated generation)
// render as well-formed narratives: clauses whose joined tuples were cut
// simply do not appear — the clause walk only follows edges to tuples that
// actually made it into the result database, so dangling references are
// trimmed rather than rendered half-empty — and a truncation note naming
// the exhausted budget dimension is appended as a final paragraph.
func (r *Renderer) Narrative(rd *core.ResultDatabase, occs []invidx.Occurrence) (string, error) {
	var paragraphs []string
	for _, occ := range occs {
		rel := rd.DB.Relation(occ.Relation)
		if rel == nil {
			continue
		}
		for _, id := range occ.TupleIDs {
			t, ok := rel.Get(id)
			if !ok {
				continue // cut by the cardinality constraint or budget
			}
			p, err := r.paragraph(rd, occ.Relation, t)
			if err != nil {
				return "", err
			}
			if p != "" {
				paragraphs = append(paragraphs, p)
			}
		}
	}
	if note := truncationNote(rd.Truncation); note != "" {
		paragraphs = append(paragraphs, note)
	}
	return strings.Join(paragraphs, "\n\n"), nil
}

// truncationNote phrases a budget cut for the reader; empty for complete
// answers.
func truncationNote(reason core.TruncationReason) string {
	switch reason {
	case core.TruncateNone:
		return ""
	case core.TruncateDeadline:
		return "(This answer was truncated: the time budget ran out; some related information is omitted.)"
	case core.TruncateTupleBudget:
		return "(This answer was truncated: the tuple budget ran out; some related information is omitted.)"
	case core.TruncateStepBudget:
		return "(This answer was truncated: the join budget ran out; some related information is omitted.)"
	case core.TruncateByteBudget:
		return "(This answer was truncated: the size budget ran out; some related information is omitted.)"
	default:
		return "(This answer was truncated; some related information is omitted.)"
	}
}

// maxClauses resolves the clause cap.
func (r *Renderer) maxClauses() int {
	if r.MaxClauses > 0 {
		return r.MaxClauses
	}
	return 64
}

// paragraph renders the clauses for one seed tuple.
func (r *Renderer) paragraph(rd *core.ResultDatabase, relName string, seed storage.Tuple) (string, error) {
	var clauses []string

	// Clause 1: the relation's own sentence, heading attribute first.
	ctx := Context{}
	r.bindTuples(ctx, rd, relName, []storage.Tuple{seed})
	node := rd.Schema.Graph.Relation(relName)
	sentence := ""
	if node != nil && node.Sentence != "" {
		t, err := r.parse(node.Sentence)
		if err != nil {
			return "", fmt.Errorf("nlg: sentence template of %s: %w", relName, err)
		}
		sentence, err = t.Render(ctx, r.Macros)
		if err != nil {
			return "", err
		}
	} else {
		sentence = r.defaultSentence(rd, relName, seed)
	}
	if s := strings.TrimSpace(sentence); s != "" {
		clauses = append(clauses, s)
	}

	visited := map[string]bool{relName: true}
	sub, err := r.expand(rd, relName, []storage.Tuple{seed}, ctx, visited, r.maxClauses()-len(clauses))
	if err != nil {
		return "", err
	}
	clauses = append(clauses, sub...)
	return strings.Join(clauses, " "), nil
}

// cloneSet copies a string set.
func cloneSet(in map[string]bool) map[string]bool {
	out := make(map[string]bool, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// cloneContext copies a rendering context (value slices are shared; they
// are never mutated after binding).
func cloneContext(in Context) Context {
	out := make(Context, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// expand walks the join edges of the result schema from rel, composing
// clauses that combine information from joined relations (§5.3: "each of
// these clauses has as subject the heading attribute of the relation that
// has the primary key").
func (r *Renderer) expand(rd *core.ResultDatabase, rel string, anchors []storage.Tuple, subject Context, visited map[string]bool, budget int) ([]string, error) {
	if budget <= 0 || len(anchors) == 0 {
		return nil, nil
	}
	node := rd.Schema.Graph.Relation(rel)
	if node == nil {
		return nil, nil
	}
	edges := node.Out()
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].Weight != edges[j].Weight {
			return edges[i].Weight > edges[j].Weight
		}
		return edges[i].Key() < edges[j].Key()
	})

	var clauses []string
	for _, e := range edges {
		if visited[e.To] || budget <= 0 {
			continue
		}
		toNode := rd.Schema.Graph.Relation(e.To)
		branchVisited := cloneSet(visited)
		branchVisited[e.To] = true

		// A heading-less relation with no label is a pure junction (CAST,
		// PLAY): traverse through it. The current anchors become the
		// subject on the far side — per anchor tuple when this relation has
		// a heading, so each subject keeps its own clauses.
		if toNode != nil && toNode.Heading == "" && e.Label == "" {
			var passGroups [][]storage.Tuple
			if node.Heading != "" {
				for i := range anchors {
					passGroups = append(passGroups, anchors[i:i+1])
				}
			} else {
				passGroups = [][]storage.Tuple{anchors}
			}
			for _, group := range passGroups {
				joined := r.joinTuples(rd, e, group)
				if len(joined) == 0 {
					continue
				}
				passSubject := cloneContext(subject)
				r.bindTuples(passSubject, rd, rel, group)
				sub, err := r.expand(rd, e.To, joined, passSubject, branchVisited, budget)
				if err != nil {
					return nil, err
				}
				clauses = append(clauses, sub...)
				budget -= len(sub)
			}
			continue
		}

		// Group per anchor tuple when the current relation has a heading
		// (one clause per subject), else treat all anchors as one group.
		var groups [][]storage.Tuple
		if node.Heading != "" {
			for i := range anchors {
				groups = append(groups, anchors[i:i+1])
			}
		} else {
			groups = [][]storage.Tuple{anchors}
		}
		for _, group := range groups {
			if budget <= 0 {
				break
			}
			joined := r.joinTuples(rd, e, group)
			if len(joined) == 0 {
				continue
			}
			ctx := cloneContext(subject)
			r.bindTuples(ctx, rd, rel, group)
			r.bindTuples(ctx, rd, e.To, joined)
			var clause string
			if e.Label != "" {
				t, err := r.parse(e.Label)
				if err != nil {
					return nil, fmt.Errorf("nlg: label of %s: %w", e.Key(), err)
				}
				clause, err = t.Render(ctx, r.Macros)
				if err != nil {
					return nil, err
				}
			} else {
				clause = r.defaultJoinClause(rd, rel, e.To, group, joined)
			}
			if c := strings.TrimSpace(clause); c != "" {
				clauses = append(clauses, c)
				budget--
			}
			// Recurse with the joined tuples as anchors; the subject for
			// deeper clauses is the current group's bindings.
			deeper := cloneContext(subject)
			r.bindTuples(deeper, rd, rel, group)
			sub, err := r.expand(rd, e.To, joined, deeper, branchVisited, budget)
			if err != nil {
				return nil, err
			}
			clauses = append(clauses, sub...)
			budget -= len(sub)
		}
	}
	return clauses, nil
}

// joinTuples returns the tuples of e.To in the result database joining any
// anchor tuple via e, in tuple-id order.
func (r *Renderer) joinTuples(rd *core.ResultDatabase, e *schemagraph.JoinEdge, anchors []storage.Tuple) []storage.Tuple {
	return joinAcross(rd, e.From, e.FromCol, e.To, e.ToCol, anchors)
}

// joinAcross matches anchors' FromCol values against ToCol of the target
// relation in the result database.
func joinAcross(rd *core.ResultDatabase, from, fromCol, to, toCol string, anchors []storage.Tuple) []storage.Tuple {
	fromRel := rd.DB.Relation(from)
	toRel := rd.DB.Relation(to)
	if fromRel == nil || toRel == nil {
		return nil
	}
	fi := fromRel.Schema().ColumnIndex(fromCol)
	ti := toRel.Schema().ColumnIndex(toCol)
	if fi < 0 || ti < 0 {
		return nil
	}
	want := make(map[storage.Value]bool, len(anchors))
	for _, a := range anchors {
		if v := a.Values[fi]; !v.IsNull() {
			want[v] = true
		}
	}
	var out []storage.Tuple
	toRel.Scan(func(t storage.Tuple) bool {
		if want[t.Values[ti]] {
			out = append(out, t)
		}
		return true
	})
	// Order by original tuple id: the id order of the source database is
	// its insertion order, which keeps lists stable regardless of which
	// join populated the result relation first.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// bindTuples binds every column of rel's result relation to the value lists
// across the given tuples.
func (r *Renderer) bindTuples(ctx Context, rd *core.ResultDatabase, rel string, tuples []storage.Tuple) {
	relation := rd.DB.Relation(rel)
	if relation == nil {
		return
	}
	for ci, col := range relation.Schema().Columns {
		vals := make([]string, 0, len(tuples))
		for _, t := range tuples {
			if v := t.Values[ci]; !v.IsNull() {
				vals = append(vals, v.String())
			}
		}
		ctx.Bind(col.Name, vals)
	}
}

// defaultSentence renders a fallback clause for a relation without an
// annotated sentence template.
func (r *Renderer) defaultSentence(rd *core.ResultDatabase, rel string, t storage.Tuple) string {
	relation := rd.DB.Relation(rel)
	node := rd.Schema.Graph.Relation(rel)
	heading := ""
	if node != nil {
		heading = node.Heading
	}
	var head string
	var rest []string
	for _, col := range rd.DisplayColumns(rel) {
		ci := relation.Schema().ColumnIndex(col)
		if ci < 0 {
			continue
		}
		v := t.Values[ci]
		if v.IsNull() {
			continue
		}
		if col == heading {
			head = v.String()
			continue
		}
		rest = append(rest, fmt.Sprintf("%s: %s", col, v.String()))
	}
	switch {
	case head != "" && len(rest) > 0:
		return fmt.Sprintf("%s (%s).", head, strings.Join(rest, "; "))
	case head != "":
		return head + "."
	case len(rest) > 0:
		return fmt.Sprintf("%s (%s).", rel, strings.Join(rest, "; "))
	default:
		return ""
	}
}

// defaultJoinClause renders a fallback clause for a join edge without an
// annotated label: the heading values of the joined tuples attached to the
// anchor's heading.
func (r *Renderer) defaultJoinClause(rd *core.ResultDatabase, from, to string, anchors, joined []storage.Tuple) string {
	subjects := r.headingValues(rd, from, anchors)
	objects := r.headingValues(rd, to, joined)
	if len(objects) == 0 {
		return ""
	}
	name := strings.ToLower(to)
	if len(subjects) == 0 {
		return fmt.Sprintf("Related %s: %s.", name, strings.Join(objects, ", "))
	}
	return fmt.Sprintf("The %s of %s: %s.", name, strings.Join(subjects, ", "), strings.Join(objects, ", "))
}

// headingValues extracts heading-attribute values (or first display column)
// of the tuples; for anchors it returns the single subject string.
func (r *Renderer) headingValues(rd *core.ResultDatabase, rel string, tuples []storage.Tuple) []string {
	relation := rd.DB.Relation(rel)
	node := rd.Schema.Graph.Relation(rel)
	if relation == nil {
		return nil
	}
	col := ""
	if node != nil && node.Heading != "" {
		col = node.Heading
	} else if disp := rd.DisplayColumns(rel); len(disp) > 0 {
		col = disp[0]
	}
	ci := relation.Schema().ColumnIndex(col)
	if ci < 0 {
		return nil
	}
	var out []string
	for _, t := range tuples {
		if v := t.Values[ci]; !v.IsNull() {
			out = append(out, v.String())
		}
	}
	return out
}

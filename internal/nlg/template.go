// Package nlg implements the Result Database Translator (paper §5.3): it
// renders the relational précis into a natural-language synthesis of
// results, driven by designer-supplied template labels on the schema graph
// and a small macro language supporting variables, loops and functions.
//
// The template language follows the paper's examples:
//
//	@DNAME + " was born on " + @BDATE + " in " + @BLOCATION + "."
//
//	DEFINE MOVIE_LIST as
//	  [i<arityOf(@TITLE)] {@TITLE[$i$] + " (" + @YEAR[$i$] + "), "}
//	  [i=arityOf(@TITLE)] {@TITLE[$i$] + " (" + @YEAR[$i$] + "). "}
//
// An expression is a +-concatenation of string literals, attribute
// references (@ATTR, or @ATTR[$i$] inside a loop section), macro names,
// arityOf(@ATTR), and the string functions upper(@ATTR) and lower(@ATTR).
// A template is a sequence of sections; a section guarded by
// [i<arityOf(@X)] renders its body for i = 1 .. arity-1, and [i=arityOf(@X)]
// renders it once with i = arity, which together produce comma-separated
// lists with a distinct final separator.
package nlg

import (
	"fmt"
	"strconv"
	"strings"
)

// Context binds attribute names (upper-cased) to their value lists for one
// rendering. Arity of an attribute is len(Context[name]).
type Context map[string][]string

// Bind adds values under the canonical upper-cased key.
func (c Context) Bind(attr string, values []string) {
	c[strings.ToUpper(attr)] = values
}

// Macros is a registry of named templates usable inside expressions.
type Macros map[string]*Template

// Template is a parsed template: an ordered list of sections.
type Template struct {
	src      string
	sections []section
}

// Source returns the original template text.
func (t *Template) Source() string { return t.src }

// section is one optionally-guarded piece of a template.
type section struct {
	guard *guard
	body  []exprNode
}

// guardOp distinguishes [i<arityOf(..)] from [i=arityOf(..)].
type guardOp uint8

const (
	guardLess guardOp = iota // loop i = 1 .. arity-1
	guardEq                  // render once with i = arity
)

type guard struct {
	op   guardOp
	attr string // the attribute whose arity bounds the loop
}

// exprNode is one term of a +-concatenation.
type exprNode interface{ node() }

type litNode struct{ text string }

type attrNode struct {
	name    string
	indexed bool // @ATTR[$i$]
}

type macroNode struct{ name string }

type arityNode struct{ attr string }

// funcNode applies a string function (upper, lower) to an attribute value.
type funcNode struct {
	fn   string // "upper" or "lower"
	attr attrNode
}

func (litNode) node()   {}
func (attrNode) node()  {}
func (macroNode) node() {}
func (arityNode) node() {}
func (funcNode) node()  {}

// ParseTemplate parses a template expression such as a label or sentence.
func ParseTemplate(src string) (*Template, error) {
	p := &tparser{src: src}
	t, err := p.template()
	if err != nil {
		return nil, err
	}
	t.src = src
	return t, nil
}

// MustTemplate is ParseTemplate that panics, for static annotations.
func MustTemplate(src string) *Template {
	t, err := ParseTemplate(src)
	if err != nil {
		panic(err)
	}
	return t
}

// ParseDefine parses a macro definition of the form
// "DEFINE NAME as <template>" and returns the macro name and its template.
func ParseDefine(src string) (string, *Template, error) {
	trimmed := strings.TrimSpace(src)
	up := strings.ToUpper(trimmed)
	if !strings.HasPrefix(up, "DEFINE ") {
		return "", nil, fmt.Errorf("nlg: macro definition must start with DEFINE: %q", src)
	}
	rest := strings.TrimSpace(trimmed[len("DEFINE "):])
	sp := strings.IndexAny(rest, " \t\n")
	if sp < 0 {
		return "", nil, fmt.Errorf("nlg: DEFINE %q has no body", src)
	}
	name := rest[:sp]
	rest = strings.TrimSpace(rest[sp:])
	upRest := strings.ToUpper(rest)
	if !strings.HasPrefix(upRest, "AS ") && !strings.HasPrefix(upRest, "AS\n") {
		return "", nil, fmt.Errorf("nlg: DEFINE %s must be followed by 'as'", name)
	}
	body := strings.TrimSpace(rest[2:])
	t, err := ParseTemplate(body)
	if err != nil {
		return "", nil, fmt.Errorf("nlg: macro %s: %w", name, err)
	}
	return name, t, nil
}

// tparser is a recursive-descent parser over the template source.
type tparser struct {
	src string
	i   int
}

func (p *tparser) skipSpace() {
	for p.i < len(p.src) && (p.src[p.i] == ' ' || p.src[p.i] == '\t' || p.src[p.i] == '\n' || p.src[p.i] == '\r') {
		p.i++
	}
}

func (p *tparser) template() (*Template, error) {
	t := &Template{}
	p.skipSpace()
	for p.i < len(p.src) {
		if p.src[p.i] == '[' {
			g, err := p.guard()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if p.i >= len(p.src) || p.src[p.i] != '{' {
				return nil, fmt.Errorf("nlg: guard must be followed by {body} at offset %d", p.i)
			}
			p.i++ // consume {
			body, err := p.expr('}')
			if err != nil {
				return nil, err
			}
			if p.i >= len(p.src) || p.src[p.i] != '}' {
				return nil, fmt.Errorf("nlg: unterminated section body")
			}
			p.i++ // consume }
			t.sections = append(t.sections, section{guard: g, body: body})
		} else {
			body, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			if len(body) > 0 {
				t.sections = append(t.sections, section{body: body})
			}
		}
		p.skipSpace()
	}
	if len(t.sections) == 0 {
		return nil, fmt.Errorf("nlg: empty template")
	}
	return t, nil
}

// guard parses [i<arityOf(@A)] or [i=arityOf(@A)].
func (p *tparser) guard() (*guard, error) {
	start := p.i
	p.i++ // consume [
	p.skipSpace()
	if p.i >= len(p.src) || p.src[p.i] != 'i' {
		return nil, fmt.Errorf("nlg: guard must use loop variable i (offset %d)", start)
	}
	p.i++
	p.skipSpace()
	var op guardOp
	switch {
	case p.i < len(p.src) && p.src[p.i] == '<':
		op = guardLess
	case p.i < len(p.src) && p.src[p.i] == '=':
		op = guardEq
	default:
		return nil, fmt.Errorf("nlg: guard operator must be < or = (offset %d)", p.i)
	}
	p.i++
	p.skipSpace()
	if !p.consumeWord("arityOf") {
		return nil, fmt.Errorf("nlg: guard must compare against arityOf(@A) (offset %d)", p.i)
	}
	p.skipSpace()
	if p.i >= len(p.src) || p.src[p.i] != '(' {
		return nil, fmt.Errorf("nlg: arityOf needs parentheses (offset %d)", p.i)
	}
	p.i++
	p.skipSpace()
	attr, err := p.attrName()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.i >= len(p.src) || p.src[p.i] != ')' {
		return nil, fmt.Errorf("nlg: unterminated arityOf (offset %d)", p.i)
	}
	p.i++
	p.skipSpace()
	if p.i >= len(p.src) || p.src[p.i] != ']' {
		return nil, fmt.Errorf("nlg: unterminated guard (offset %d)", p.i)
	}
	p.i++
	return &guard{op: op, attr: attr}, nil
}

// consumeWord consumes the exact word (case-insensitive) if present.
func (p *tparser) consumeWord(w string) bool {
	if p.i+len(w) <= len(p.src) && strings.EqualFold(p.src[p.i:p.i+len(w)], w) {
		p.i += len(w)
		return true
	}
	return false
}

// peekWordWithParen reports whether the input continues with word followed
// (after optional spaces) by an opening parenthesis, distinguishing the
// function call upper(...) from a macro named UPPER.
func (p *tparser) peekWordWithParen(w string) bool {
	if p.i+len(w) > len(p.src) || !strings.EqualFold(p.src[p.i:p.i+len(w)], w) {
		return false
	}
	j := p.i + len(w)
	for j < len(p.src) && (p.src[j] == ' ' || p.src[j] == '\t') {
		j++
	}
	return j < len(p.src) && p.src[j] == '('
}

// funcCall parses (@ATTR[$i$]?) after a recognised function name.
func (p *tparser) funcCall(fn string) (exprNode, error) {
	p.skipSpace()
	if p.i >= len(p.src) || p.src[p.i] != '(' {
		return nil, fmt.Errorf("nlg: %s needs parentheses", fn)
	}
	p.i++
	p.skipSpace()
	name, err := p.attrName()
	if err != nil {
		return nil, err
	}
	node := funcNode{fn: fn, attr: attrNode{name: name}}
	p.skipSpace()
	if p.i < len(p.src) && p.src[p.i] == '[' {
		p.i++
		p.skipSpace()
		if !p.consumeWord("$i$") {
			return nil, fmt.Errorf("nlg: %s index must be $i$", fn)
		}
		p.skipSpace()
		if p.i >= len(p.src) || p.src[p.i] != ']' {
			return nil, fmt.Errorf("nlg: unterminated index in %s", fn)
		}
		p.i++
		node.attr.indexed = true
	}
	p.skipSpace()
	if p.i >= len(p.src) || p.src[p.i] != ')' {
		return nil, fmt.Errorf("nlg: unterminated %s", fn)
	}
	p.i++
	return node, nil
}

// attrName parses @NAME and returns NAME upper-cased.
func (p *tparser) attrName() (string, error) {
	if p.i >= len(p.src) || p.src[p.i] != '@' {
		return "", fmt.Errorf("nlg: expected @attribute (offset %d)", p.i)
	}
	p.i++
	start := p.i
	for p.i < len(p.src) && isWordByte(p.src[p.i]) {
		p.i++
	}
	if p.i == start {
		return "", fmt.Errorf("nlg: @ must be followed by an attribute name (offset %d)", start)
	}
	return strings.ToUpper(p.src[start:p.i]), nil
}

func isWordByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// expr parses a +-concatenation until the stop byte (or a '[' starting a new
// section, or end of input when stop is 0).
func (p *tparser) expr(stop byte) ([]exprNode, error) {
	var out []exprNode
	for {
		p.skipSpace()
		if p.i >= len(p.src) {
			return out, nil
		}
		c := p.src[p.i]
		if stop != 0 && c == stop {
			return out, nil
		}
		if stop == 0 && c == '[' {
			return out, nil
		}
		node, err := p.term()
		if err != nil {
			return nil, err
		}
		out = append(out, node)
		p.skipSpace()
		if p.i < len(p.src) && p.src[p.i] == '+' {
			p.i++
			continue
		}
		// Without an explicit +, the expression ends.
		if p.i < len(p.src) {
			c := p.src[p.i]
			if (stop != 0 && c == stop) || (stop == 0 && c == '[') {
				return out, nil
			}
			if stop == 0 {
				return nil, fmt.Errorf("nlg: expected + between terms (offset %d)", p.i)
			}
			return nil, fmt.Errorf("nlg: expected + or %q (offset %d)", string(stop), p.i)
		}
	}
}

// term parses one expression term: literal, @attr[, index], macro, arityOf.
func (p *tparser) term() (exprNode, error) {
	c := p.src[p.i]
	switch {
	case c == '"' || c == '\'':
		quote := c
		p.i++
		var b strings.Builder
		for p.i < len(p.src) && p.src[p.i] != quote {
			if p.src[p.i] == '\\' && p.i+1 < len(p.src) {
				p.i++
			}
			b.WriteByte(p.src[p.i])
			p.i++
		}
		if p.i >= len(p.src) {
			return nil, fmt.Errorf("nlg: unterminated string literal")
		}
		p.i++
		return litNode{text: b.String()}, nil

	case c == '@':
		name, err := p.attrName()
		if err != nil {
			return nil, err
		}
		// Optional [$i$] index.
		save := p.i
		p.skipSpace()
		if p.i < len(p.src) && p.src[p.i] == '[' {
			p.i++
			p.skipSpace()
			if p.consumeWord("$i$") {
				p.skipSpace()
				if p.i < len(p.src) && p.src[p.i] == ']' {
					p.i++
					return attrNode{name: name, indexed: true}, nil
				}
				return nil, fmt.Errorf("nlg: unterminated index after @%s[$i$", name)
			}
			// Not an index: rewind (a section may follow).
			p.i = save
		} else {
			p.i = save
		}
		return attrNode{name: name}, nil

	default:
		for _, fn := range []string{"upper", "lower"} {
			if p.peekWordWithParen(fn) {
				p.consumeWord(fn)
				node, err := p.funcCall(fn)
				if err != nil {
					return nil, err
				}
				return node, nil
			}
		}
		if p.consumeWord("arityOf") {
			p.skipSpace()
			if p.i >= len(p.src) || p.src[p.i] != '(' {
				return nil, fmt.Errorf("nlg: arityOf needs parentheses")
			}
			p.i++
			p.skipSpace()
			attr, err := p.attrName()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if p.i >= len(p.src) || p.src[p.i] != ')' {
				return nil, fmt.Errorf("nlg: unterminated arityOf")
			}
			p.i++
			return arityNode{attr: attr}, nil
		}
		if isWordByte(c) {
			start := p.i
			for p.i < len(p.src) && isWordByte(p.src[p.i]) {
				p.i++
			}
			return macroNode{name: p.src[start:p.i]}, nil
		}
		return nil, fmt.Errorf("nlg: unexpected character %q (offset %d)", string(c), p.i)
	}
}

// Render evaluates the template against ctx with the given macro registry.
func (t *Template) Render(ctx Context, macros Macros) (string, error) {
	var b strings.Builder
	for _, s := range t.sections {
		if err := renderSection(&b, s, ctx, macros, 0); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

const maxMacroDepth = 16

func renderSection(b *strings.Builder, s section, ctx Context, macros Macros, depth int) error {
	if s.guard == nil {
		return renderBody(b, s.body, ctx, macros, 0, depth)
	}
	arity := len(ctx[s.guard.attr])
	switch s.guard.op {
	case guardLess:
		for i := 1; i < arity; i++ {
			if err := renderBody(b, s.body, ctx, macros, i, depth); err != nil {
				return err
			}
		}
	case guardEq:
		if arity >= 1 {
			if err := renderBody(b, s.body, ctx, macros, arity, depth); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderBody evaluates a concatenation with loop index i (1-based; 0 means
// "no index in scope").
func renderBody(b *strings.Builder, body []exprNode, ctx Context, macros Macros, i int, depth int) error {
	if depth > maxMacroDepth {
		return fmt.Errorf("nlg: macro recursion deeper than %d", maxMacroDepth)
	}
	for _, n := range body {
		switch n := n.(type) {
		case litNode:
			b.WriteString(n.text)
		case attrNode:
			vals := ctx[n.name]
			switch {
			case n.indexed:
				if i < 1 {
					return fmt.Errorf("nlg: @%s[$i$] used outside a loop section", n.name)
				}
				if i <= len(vals) {
					b.WriteString(vals[i-1])
				}
			case len(vals) == 1:
				b.WriteString(vals[0])
			case len(vals) > 1:
				b.WriteString(strings.Join(vals, ", "))
			}
		case macroNode:
			m, ok := macros[n.name]
			if !ok {
				return fmt.Errorf("nlg: unknown macro %s", n.name)
			}
			for _, ms := range m.sections {
				if err := renderSection(b, ms, ctx, macros, depth+1); err != nil {
					return err
				}
			}
		case arityNode:
			b.WriteString(strconv.Itoa(len(ctx[n.attr])))
		case funcNode:
			var inner strings.Builder
			if err := renderBody(&inner, []exprNode{n.attr}, ctx, macros, i, depth); err != nil {
				return err
			}
			switch n.fn {
			case "upper":
				b.WriteString(strings.ToUpper(inner.String()))
			case "lower":
				b.WriteString(strings.ToLower(inner.String()))
			}
		}
	}
	return nil
}

package nlg

import "testing"

// FuzzParseTemplate checks the template parser never panics, and that
// accepted templates render without panicking against a small context.
func FuzzParseTemplate(f *testing.F) {
	seeds := []string{
		`@DNAME + " was born on " + @BDATE + "."`,
		`[i<arityOf(@T)] {@T[$i$] + ", "} [i=arityOf(@T)] {@T[$i$] + "."}`,
		`upper(@A) + lower(@B[$i$])`,
		`MACRO_NAME + arityOf(@X)`,
		`"\"escaped\"" + 'single'`,
		`[i<arityOf(@A)]`,
		`@`, `{`, `}`, `+`, `[][]`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tpl, err := ParseTemplate(src)
		if err != nil {
			return
		}
		ctx := Context{}
		ctx.Bind("a", []string{"x", "y"})
		ctx.Bind("t", []string{"one", "two", "three"})
		_, _ = tpl.Render(ctx, Macros{})
	})
}

// FuzzParseDefine checks macro definitions never panic.
func FuzzParseDefine(f *testing.F) {
	f.Add(`DEFINE L as [i<arityOf(@X)] {@X[$i$]}`)
	f.Add("DEFINE")
	f.Add("define x as y")
	f.Fuzz(func(t *testing.T, src string) {
		_, _, _ = ParseDefine(src)
	})
}

package nlg

import (
	"strings"
	"testing"
)

func BenchmarkNarrative(b *testing.B) {
	// Reuse the full Woody Allen pipeline from the tests.
	rd, occs := woodyPrecis(b, 100)
	r := paperRenderer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := r.Narrative(rd, occs)
		if err != nil || !strings.Contains(out, "Woody Allen") {
			b.Fatalf("narrative: %v", err)
		}
	}
}

func BenchmarkTemplateRender(b *testing.B) {
	tpl := MustTemplate(`@DNAME + " was born on " + @BDATE + " in " + @BLOCATION + "."`)
	ctx := Context{}
	ctx.Bind("dname", []string{"Woody Allen"})
	ctx.Bind("bdate", []string{"December 1, 1935"})
	ctx.Bind("blocation", []string{"Brooklyn, New York, USA"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tpl.Render(ctx, nil); err != nil {
			b.Fatal(err)
		}
	}
}

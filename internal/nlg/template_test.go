package nlg

import (
	"strings"
	"testing"
)

func render(t *testing.T, src string, ctx Context, macros Macros) string {
	t.Helper()
	tpl, err := ParseTemplate(src)
	if err != nil {
		t.Fatalf("ParseTemplate(%q): %v", src, err)
	}
	out, err := tpl.Render(ctx, macros)
	if err != nil {
		t.Fatalf("Render(%q): %v", src, err)
	}
	return out
}

func TestRenderSimpleConcatenation(t *testing.T) {
	ctx := Context{}
	ctx.Bind("dname", []string{"Woody Allen"})
	ctx.Bind("bdate", []string{"December 1, 1935"})
	ctx.Bind("blocation", []string{"Brooklyn, New York, USA"})
	got := render(t, `@DNAME + " was born on " + @BDATE + " in " + @BLOCATION + "."`, ctx, nil)
	want := "Woody Allen was born on December 1, 1935 in Brooklyn, New York, USA."
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestRenderPaperMacro(t *testing.T) {
	// The exact MOVIE_LIST macro of §5.3.
	def := `DEFINE MOVIE_LIST as [i<arityOf(@TITLE)] {@TITLE[$i$] + " (" + @YEAR[$i$] + "), "} [i=arityOf(@TITLE)] {@TITLE[$i$] + " (" + @YEAR[$i$] + ")."}`
	name, tpl, err := ParseDefine(def)
	if err != nil {
		t.Fatal(err)
	}
	if name != "MOVIE_LIST" {
		t.Errorf("name = %q", name)
	}
	macros := Macros{name: tpl}
	ctx := Context{}
	ctx.Bind("dname", []string{"Woody Allen"})
	ctx.Bind("title", []string{"Match Point", "Melinda and Melinda", "Anything Else"})
	ctx.Bind("year", []string{"2005", "2004", "2003"})
	got := render(t, `"As a director, " + @DNAME + "'s work includes " + MOVIE_LIST`, ctx, macros)
	want := "As a director, Woody Allen's work includes Match Point (2005), Melinda and Melinda (2004), Anything Else (2003)."
	if got != want {
		t.Errorf("got %q\nwant %q", got, want)
	}
}

func TestRenderMacroSingleElement(t *testing.T) {
	def := `DEFINE L as [i<arityOf(@X)] {@X[$i$] + ", "} [i=arityOf(@X)] {@X[$i$] + "."}`
	name, tpl, err := ParseDefine(def)
	if err != nil {
		t.Fatal(err)
	}
	ctx := Context{}
	ctx.Bind("x", []string{"only"})
	got := render(t, "L", ctx, Macros{name: tpl})
	if got != "only." {
		t.Errorf("got %q", got)
	}
}

func TestRenderMacroEmptyList(t *testing.T) {
	def := `DEFINE L as [i<arityOf(@X)] {@X[$i$] + ", "} [i=arityOf(@X)] {@X[$i$] + "."}`
	name, tpl, _ := ParseDefine(def)
	got := render(t, `"items: " + L`, Context{}, Macros{name: tpl})
	if got != "items: " {
		t.Errorf("got %q", got)
	}
}

func TestRenderUnboundAttr(t *testing.T) {
	got := render(t, `"x=" + @MISSING + "!"`, Context{}, nil)
	if got != "x=!" {
		t.Errorf("got %q", got)
	}
}

func TestRenderMultiValueJoinsWithComma(t *testing.T) {
	ctx := Context{}
	ctx.Bind("genre", []string{"Drama", "Thriller"})
	ctx.Bind("title", []string{"Match Point"})
	got := render(t, `@TITLE + " is " + @GENRE + "."`, ctx, nil)
	if got != "Match Point is Drama, Thriller." {
		t.Errorf("got %q", got)
	}
}

func TestRenderArityOf(t *testing.T) {
	ctx := Context{}
	ctx.Bind("title", []string{"a", "b", "c"})
	got := render(t, `"count: " + arityOf(@TITLE)`, ctx, nil)
	if got != "count: 3" {
		t.Errorf("got %q", got)
	}
}

func TestRenderSingleQuotes(t *testing.T) {
	ctx := Context{}
	ctx.Bind("a", []string{"x"})
	got := render(t, `'<' + @A + '>'`, ctx, nil)
	if got != "<x>" {
		t.Errorf("got %q", got)
	}
}

func TestRenderEscapes(t *testing.T) {
	got := render(t, `"say \"hi\""`, Context{}, nil)
	if got != `say "hi"` {
		t.Errorf("got %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		`"unterminated`,
		`@`,
		`@A @B`,
		`[j<arityOf(@A)] {@A}`,
		`[i?arityOf(@A)] {@A}`,
		`[i<arity(@A)] {@A}`,
		`[i<arityOf(@A) {@A}`,
		`[i<arityOf(@A)] @A`,
		`[i<arityOf(@A)] {@A`,
		`arityOf @A`,
		`@A[$i$`,
		`%`,
	}
	for _, src := range bad {
		if _, err := ParseTemplate(src); err == nil {
			t.Errorf("ParseTemplate(%q) accepted", src)
		}
	}
}

func TestParseDefineErrors(t *testing.T) {
	bad := []string{
		"",
		"MACRO x as y",
		"DEFINE",
		"DEFINE X",
		"DEFINE X y z",
		`DEFINE X as`,
	}
	for _, src := range bad {
		if _, _, err := ParseDefine(src); err == nil {
			t.Errorf("ParseDefine(%q) accepted", src)
		}
	}
}

func TestUnknownMacroErrors(t *testing.T) {
	tpl, err := ParseTemplate(`"x " + NOPE`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpl.Render(Context{}, Macros{}); err == nil {
		t.Error("unknown macro rendered")
	}
}

func TestIndexedOutsideLoopErrors(t *testing.T) {
	tpl, err := ParseTemplate(`@A[$i$]`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := Context{}
	ctx.Bind("a", []string{"x"})
	if _, err := tpl.Render(ctx, nil); err == nil {
		t.Error("indexed ref outside loop rendered")
	}
}

func TestMacroRecursionLimit(t *testing.T) {
	self, err := ParseTemplate(`"x" + SELF`)
	if err != nil {
		t.Fatal(err)
	}
	macros := Macros{"SELF": self}
	if _, err := self.Render(Context{}, macros); err == nil {
		t.Error("infinite macro recursion not caught")
	} else if !strings.Contains(err.Error(), "recursion") {
		t.Errorf("error = %v", err)
	}
}

func TestTemplateSource(t *testing.T) {
	src := `"a" + @B`
	tpl, err := ParseTemplate(src)
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Source() != src {
		t.Errorf("Source = %q", tpl.Source())
	}
}

func TestRenderStringFunctions(t *testing.T) {
	ctx := Context{}
	ctx.Bind("name", []string{"Woody Allen"})
	got := render(t, `upper(@NAME) + " / " + lower(@NAME)`, ctx, nil)
	if got != "WOODY ALLEN / woody allen" {
		t.Errorf("got %q", got)
	}
}

func TestRenderIndexedFunction(t *testing.T) {
	def := `DEFINE L as [i<arityOf(@X)] {upper(@X[$i$]) + ", "} [i=arityOf(@X)] {upper(@X[$i$]) + "."}`
	name, tpl, err := ParseDefine(def)
	if err != nil {
		t.Fatal(err)
	}
	ctx := Context{}
	ctx.Bind("x", []string{"ab", "cd"})
	got := render(t, "L", ctx, Macros{name: tpl})
	if got != "AB, CD." {
		t.Errorf("got %q", got)
	}
}

func TestFunctionVsMacroName(t *testing.T) {
	// A bare word UPPER (no parenthesis) stays a macro reference.
	up, err := ParseTemplate(`"x"`)
	if err != nil {
		t.Fatal(err)
	}
	got := render(t, `UPPER`, Context{}, Macros{"UPPER": up})
	if got != "x" {
		t.Errorf("got %q", got)
	}
}

func TestFunctionParseErrors(t *testing.T) {
	for _, src := range []string{
		`upper @A`,
		`upper(@A`,
		`upper(@A[$j$])`,
		`upper(nope)`,
	} {
		if _, err := ParseTemplate(src); err == nil {
			t.Errorf("ParseTemplate(%q) accepted", src)
		}
	}
}

// Package parallel holds the engine's deterministic worker pool: a
// chunked, panic-isolating parallel-for shared by the result-database
// generator (internal/core) and the inverted-index builder
// (internal/invidx). It lives in its own leaf package so both can use it
// without an import cycle — core's in-package tests build indexes, so
// invidx cannot import core directly.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// MaxWorkers caps any worker pool the engine spawns; beyond this the
// coordination overhead dominates on the read-mostly workloads the
// generator runs.
const MaxWorkers = 64

// NormalizeWorkers resolves a requested pool size: 0 means one worker per
// logical CPU (runtime.GOMAXPROCS), negatives mean serial, and everything
// is capped at MaxWorkers.
func NormalizeWorkers(n int) int {
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return 1
	}
	if n > MaxWorkers {
		return MaxWorkers
	}
	return n
}

// PanicError wraps a panic that escaped a For worker, carrying the
// panicking goroutine's stack. For re-raises it on the calling goroutine,
// and the engine boundary converts it into ErrInternal — so one poisoned
// tuple can never kill the process.
type PanicError struct {
	// Value is the original panic value.
	Value any
	// Stack is the panicking worker goroutine's stack trace.
	Stack []byte
}

// Error renders the panic value and the captured worker stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n\nworker stack:\n%s", e.Value, e.Stack)
}

// For runs fn(i) for every i in [0, n) on at most workers goroutines,
// returning when all calls finished. With workers <= 1 (or a single item)
// it degenerates to a plain loop on the calling goroutine, so serial paths
// pay no synchronization cost. Work is handed out through an atomic
// counter in chunks (so tiny per-item tasks don't pay one synchronization
// per index), which makes the mapping of index to goroutine arbitrary —
// fn must be safe to call concurrently and should only write state owned
// by its index (e.g. slot i of a results slice).
//
// Panic isolation: a panic inside fn on a worker goroutine does not crash
// the process. The first panicking worker records its value and stack, the
// remaining workers stop pulling new chunks and drain, and once the pool has
// quiesced the panic is re-raised on the calling goroutine as a *PanicError.
// (On the serial path the panic propagates to the caller unwrapped, exactly
// as a plain loop would.)
func For(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Chunked handout: aim for a few chunks per worker so the pool stays
	// balanced under skewed task costs without an atomic op per index.
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var poisoned atomic.Bool
	var panicOnce sync.Once
	var firstPanic *PanicError
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// First panic wins; later ones are dropped (they are
					// almost always the same fault hit by another chunk).
					panicOnce.Do(func() {
						firstPanic = &PanicError{Value: r, Stack: debug.Stack()}
					})
					poisoned.Store(true)
				}
			}()
			for !poisoned.Load() {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	if firstPanic != nil {
		panic(firstPanic)
	}
}

package sqlx

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"precis/internal/storage"
)

func TestUpdate(t *testing.T) {
	e := testEngine(t)
	res := e.MustExec("UPDATE MOVIE SET year = 2010 WHERE did = 1")
	if res.Affected != 3 {
		t.Fatalf("Affected = %d", res.Affected)
	}
	check := e.MustExec("SELECT title FROM MOVIE WHERE year = 2010 ORDER BY title")
	if len(check.Rows) != 3 {
		t.Errorf("updated rows = %v", titles(check))
	}
	// Multi-column set.
	e.MustExec("UPDATE MOVIE SET title = 'Renamed', year = 1999 WHERE mid = 4")
	got := e.MustExec("SELECT title, year FROM MOVIE WHERE mid = 4")
	if got.Rows[0][0].AsString() != "Renamed" || got.Rows[0][1].AsInt() != 1999 {
		t.Errorf("row = %v", got.Rows[0])
	}
	// Update with no WHERE hits everything.
	res = e.MustExec("UPDATE MOVIE SET did = NULL")
	if res.Affected != 6 {
		t.Errorf("Affected = %d", res.Affected)
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	e := testEngine(t)
	e.MustExec("UPDATE MOVIE SET did = 2 WHERE mid = 1")
	res := e.MustExec("SELECT title FROM MOVIE WHERE did = 2 ORDER BY title")
	want := []string{"Alien", "Blade Runner", "Match Point"}
	if got := titles(res); !reflect.DeepEqual(got, want) {
		t.Errorf("titles = %v", got)
	}
	if res.Stats.Scanned != 0 {
		t.Error("index not used after update")
	}
	// The old posting is gone.
	res = e.MustExec("SELECT title FROM MOVIE WHERE did = 1 ORDER BY title")
	for _, title := range titles(res) {
		if title == "Match Point" {
			t.Error("stale index entry after update")
		}
	}
}

func TestUpdatePrimaryKeyRules(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Exec("UPDATE MOVIE SET mid = 2 WHERE mid = 1"); err == nil {
		t.Error("duplicate key update accepted")
	}
	if _, err := e.Exec("UPDATE MOVIE SET mid = NULL WHERE mid = 1"); err == nil {
		t.Error("NULL key update accepted")
	}
	// Updating a key to a fresh value is fine.
	if _, err := e.Exec("UPDATE MOVIE SET mid = 100 WHERE mid = 1"); err != nil {
		t.Errorf("fresh key update rejected: %v", err)
	}
	// No-op key update (same value) is fine too.
	if _, err := e.Exec("UPDATE MOVIE SET mid = 100, year = 2011 WHERE mid = 100"); err != nil {
		t.Errorf("same-key update rejected: %v", err)
	}
}

func TestUpdateErrors(t *testing.T) {
	e := testEngine(t)
	for _, q := range []string{
		"UPDATE NOPE SET a = 1",
		"UPDATE MOVIE SET nope = 1",
		"UPDATE MOVIE SET title = 5",
		"UPDATE MOVIE SET year = 1 WHERE nope = 2",
	} {
		if _, err := e.Exec(q); err == nil {
			t.Errorf("Exec(%q) accepted", q)
		}
	}
}

func TestDropTable(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Exec("DROP TABLE MOVIE"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("SELECT * FROM MOVIE"); err == nil {
		t.Error("dropped table still queryable")
	}
	if _, err := e.Exec("DROP TABLE MOVIE"); err == nil {
		t.Error("double drop accepted")
	}
	// Recreate under the same name works.
	if _, err := e.Exec("CREATE TABLE MOVIE (x INT)"); err != nil {
		t.Errorf("recreate: %v", err)
	}
}

func TestLimitOffset(t *testing.T) {
	e := testEngine(t)
	res := e.MustExec("SELECT title FROM MOVIE ORDER BY mid LIMIT 2 OFFSET 1")
	want := []string{"Melinda and Melinda", "Anything Else"}
	if got := titles(res); !reflect.DeepEqual(got, want) {
		t.Errorf("titles = %v", got)
	}
	// Offset past the end yields nothing.
	res = e.MustExec("SELECT title FROM MOVIE LIMIT 5 OFFSET 100")
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", titles(res))
	}
	// Early-limit path must account for the offset.
	res = e.MustExec("SELECT title FROM MOVIE LIMIT 2 OFFSET 2")
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", titles(res))
	}
	if _, err := e.Exec("SELECT * FROM MOVIE LIMIT 2 OFFSET -1"); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := e.Exec("SELECT * FROM MOVIE LIMIT 2 OFFSET x"); err == nil {
		t.Error("non-integer offset accepted")
	}
}

func TestExplain(t *testing.T) {
	e := testEngine(t)
	plan := func(q string) string {
		res := e.MustExec(q)
		if len(res.Rows) != 1 || res.Columns[0] != "plan" {
			t.Fatalf("explain result = %+v", res)
		}
		return res.Rows[0][0].AsString()
	}
	if got := plan("EXPLAIN SELECT * FROM MOVIE WHERE did IN (1, 2)"); !strings.Contains(got, "index(did) probes=2") {
		t.Errorf("plan = %q", got)
	}
	if got := plan("EXPLAIN SELECT * FROM MOVIE WHERE rowid = 3"); !strings.Contains(got, "rowid") {
		t.Errorf("plan = %q", got)
	}
	if got := plan("EXPLAIN SELECT * FROM MOVIE WHERE year > 2000"); got != "scan" {
		t.Errorf("plan = %q", got)
	}
	// Conjunct with an indexed equality beats the scan.
	if got := plan("EXPLAIN SELECT * FROM MOVIE WHERE year > 2000 AND did = 1"); !strings.Contains(got, "index(did)") {
		t.Errorf("plan = %q", got)
	}
	if _, err := e.Exec("EXPLAIN SELECT * FROM NOPE"); err == nil {
		t.Error("explain of missing table accepted")
	}
	if _, err := e.Exec("EXPLAIN SELECT nope FROM MOVIE WHERE nope = 1"); err == nil {
		t.Error("explain of invalid predicate accepted")
	}
	if _, err := e.Exec("EXPLAIN DELETE FROM MOVIE"); err == nil {
		t.Error("EXPLAIN of non-SELECT accepted")
	}
}

func TestParseUpdateDropForms(t *testing.T) {
	bad := []string{
		"UPDATE",
		"UPDATE R",
		"UPDATE R SET",
		"UPDATE R SET a",
		"UPDATE R SET a =",
		"UPDATE R SET a = b", // non-literal rhs
		"DROP",
		"DROP R",
		"DROP TABLE",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) accepted", q)
		}
	}
	st, err := Parse("update movie set year = 2000, title = 'x' where mid = 1")
	if err != nil {
		t.Fatal(err)
	}
	up := st.(*UpdateStmt)
	if up.Table != "movie" || len(up.Set) != 2 || up.Where == nil {
		t.Errorf("update = %+v", up)
	}
}

func TestCreateIndexStatements(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Exec("CREATE INDEX ON MOVIE (year)"); err != nil {
		t.Fatal(err)
	}
	res := e.MustExec("SELECT title FROM MOVIE WHERE year = 2005")
	if res.Stats.Scanned != 0 || res.Stats.IndexLookups != 1 {
		t.Errorf("hash index unused: %+v", res.Stats)
	}
	if _, err := e.Exec("CREATE INDEX ON NOPE (x)"); err == nil {
		t.Error("index on missing table accepted")
	}
	if _, err := e.Exec("CREATE INDEX ON MOVIE (nope)"); err == nil {
		t.Error("index on missing column accepted")
	}
	if _, err := e.Exec("CREATE ORDERED INDEX ON MOVIE (nope)"); err == nil {
		t.Error("ordered index on missing column accepted")
	}
}

func TestRangePlanUsesOrderedIndex(t *testing.T) {
	e := testEngine(t)
	e.MustExec("CREATE ORDERED INDEX ON MOVIE (year)")
	res := e.MustExec("SELECT title FROM MOVIE WHERE year > 2002 ORDER BY title")
	want := []string{"Anything Else", "Match Point", "Melinda and Melinda"}
	if got := titles(res); !reflect.DeepEqual(got, want) {
		t.Errorf("titles = %v", got)
	}
	if res.Stats.Scanned != 0 {
		t.Errorf("range query scanned %d tuples", res.Stats.Scanned)
	}
	// Combined bounds tighten the range.
	res = e.MustExec("SELECT title FROM MOVIE WHERE year >= 2003 AND year < 2005")
	if got := titles(res); len(got) != 2 {
		t.Errorf("titles = %v", got)
	}
	if res.Stats.Scanned != 0 {
		t.Error("combined range scanned")
	}
	// Flipped operand order still plans a range.
	res = e.MustExec("SELECT title FROM MOVIE WHERE 2002 < year")
	if len(res.Rows) != 3 || res.Stats.Scanned != 0 {
		t.Errorf("flipped range: rows=%d scanned=%d", len(res.Rows), res.Stats.Scanned)
	}
	// EXPLAIN shows the range plan.
	ex := e.MustExec("EXPLAIN SELECT title FROM MOVIE WHERE year > 2002")
	if got := ex.Rows[0][0].AsString(); got != "range(year)" {
		t.Errorf("plan = %q", got)
	}
	// Residual predicates still apply after the range fetch.
	res = e.MustExec("SELECT title FROM MOVIE WHERE year > 2002 AND title LIKE 'M%'")
	if got := titles(res); len(got) != 2 {
		t.Errorf("residual filter: %v", got)
	}
}

func TestRangePlanEquivalence(t *testing.T) {
	// Random comparisons agree between range-indexed and unindexed tables.
	r := rand.New(rand.NewSource(77))
	db := storage.NewDatabase("prop")
	e := NewEngine(db)
	e.MustExec("CREATE TABLE A (id INT, k INT, PRIMARY KEY (id))")
	e.MustExec("CREATE TABLE B (id INT, k INT, PRIMARY KEY (id))")
	for i := 0; i < 400; i++ {
		k := r.Intn(50)
		e.MustExec(fmt.Sprintf("INSERT INTO A VALUES (%d, %d)", i, k))
		e.MustExec(fmt.Sprintf("INSERT INTO B VALUES (%d, %d)", i, k))
	}
	e.MustExec("CREATE ORDERED INDEX ON A (k)")
	ops := []string{"<", "<=", ">", ">="}
	for trial := 0; trial < 120; trial++ {
		op := ops[r.Intn(len(ops))]
		v := r.Intn(50)
		q := fmt.Sprintf(" WHERE k %s %d ORDER BY id", op, v)
		a := e.MustExec("SELECT id FROM A" + q)
		b := e.MustExec("SELECT id FROM B" + q)
		if !reflect.DeepEqual(a.Rows, b.Rows) {
			t.Fatalf("trial %d (%s %d): indexed %d rows != scan %d rows", trial, op, v, len(a.Rows), len(b.Rows))
		}
		if a.Stats.Scanned != 0 {
			t.Fatalf("trial %d: indexed query scanned", trial)
		}
	}
}

func TestOrderByServedByOrderedIndex(t *testing.T) {
	e := testEngine(t)
	e.MustExec("CREATE ORDERED INDEX ON MOVIE (year)")
	res := e.MustExec("SELECT title FROM MOVIE ORDER BY year LIMIT 2")
	want := []string{"Alien", "Blade Runner"}
	if got := titles(res); !reflect.DeepEqual(got, want) {
		t.Errorf("asc = %v", got)
	}
	if res.Stats.Scanned != 0 {
		t.Errorf("scanned %d tuples for index-ordered query", res.Stats.Scanned)
	}
	res = e.MustExec("SELECT title FROM MOVIE ORDER BY year DESC LIMIT 2")
	want = []string{"Match Point", "Melinda and Melinda"}
	if got := titles(res); !reflect.DeepEqual(got, want) {
		t.Errorf("desc = %v", got)
	}
	// OFFSET composes with the index order.
	res = e.MustExec("SELECT title FROM MOVIE ORDER BY year LIMIT 2 OFFSET 2")
	if got := titles(res); !reflect.DeepEqual(got, []string{"Unknown", "Anything Else"}) {
		t.Errorf("offset = %v", got)
	}
	// A residual predicate still applies on the ordered stream.
	res = e.MustExec("SELECT title FROM MOVIE WHERE title LIKE '%e%' ORDER BY year LIMIT 2")
	for _, title := range titles(res) {
		if !strings.Contains(title, "e") {
			t.Errorf("predicate leaked %q", title)
		}
	}
}

func TestOrderByIndexSkippedWhenNulls(t *testing.T) {
	e := testEngine(t)
	e.MustExec("CREATE ORDERED INDEX ON MOVIE (did)")
	// MOVIE.did has a NULL: the ordered index cannot cover the relation,
	// so the sort path must be used and the NULL row kept (sorting first).
	res := e.MustExec("SELECT title FROM MOVIE ORDER BY did LIMIT 1")
	if got := titles(res); !reflect.DeepEqual(got, []string{"Unknown"}) {
		t.Errorf("NULL row lost: %v", got)
	}
	if len(e.MustExec("SELECT title FROM MOVIE ORDER BY did").Rows) != 6 {
		t.Error("row count changed")
	}
}

// TestOrderByIndexEquivalence: with and without the ordered index, ORDER BY
// returns identical sequences on a NULL-free column.
func TestOrderByIndexEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	db := storage.NewDatabase("prop")
	e := NewEngine(db)
	e.MustExec("CREATE TABLE A (id INT, k INT, PRIMARY KEY (id))")
	e.MustExec("CREATE TABLE B (id INT, k INT, PRIMARY KEY (id))")
	for i := 0; i < 300; i++ {
		k := r.Intn(40)
		e.MustExec(fmt.Sprintf("INSERT INTO A VALUES (%d, %d)", i, k))
		e.MustExec(fmt.Sprintf("INSERT INTO B VALUES (%d, %d)", i, k))
	}
	e.MustExec("CREATE ORDERED INDEX ON A (k)")
	for _, q := range []string{
		" ORDER BY k", " ORDER BY k DESC", " ORDER BY k LIMIT 7",
		" ORDER BY k DESC LIMIT 5 OFFSET 3",
	} {
		a := e.MustExec("SELECT k FROM A" + q)
		b := e.MustExec("SELECT k FROM B" + q)
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%q: %d vs %d rows", q, len(a.Rows), len(b.Rows))
		}
		for i := range a.Rows {
			// Ties may order differently between the two paths (index
			// breaks ties by id; stable sort by input order, also id);
			// the sort keys themselves must agree position by position.
			if !a.Rows[i][0].Equal(b.Rows[i][0]) {
				t.Fatalf("%q row %d: %v vs %v", q, i, a.Rows[i][0], b.Rows[i][0])
			}
		}
	}
}

func TestDistinctWithOrderByUnprojectedKey(t *testing.T) {
	e := testEngine(t)
	// DISTINCT on a projected column ordered by an unprojected one: the
	// dedupe must not desynchronize the sort keys.
	res := e.MustExec("SELECT DISTINCT did FROM MOVIE WHERE did IS NOT NULL ORDER BY year DESC")
	// Years desc: 2005(did 1), 2004(1), 2003(1), 1982(2), 1979(2) ->
	// distinct dids in that order: 1, 2.
	if len(res.Rows) != 2 || res.Rows[0][0].AsInt() != 1 || res.Rows[1][0].AsInt() != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

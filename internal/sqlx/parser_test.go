package sqlx

import (
	"reflect"
	"testing"

	"precis/internal/storage"
)

func parseSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", src, st)
	}
	return sel
}

func TestParseSelectStar(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM MOVIE")
	if sel.Columns != nil || sel.Table != "MOVIE" || sel.Where != nil || sel.Limit != -1 {
		t.Errorf("sel = %+v", sel)
	}
}

func TestParseSelectColumns(t *testing.T) {
	sel := parseSelect(t, "SELECT title, year, rowid FROM MOVIE")
	if !reflect.DeepEqual(sel.Columns, []string{"title", "year", "rowid"}) {
		t.Errorf("columns = %v", sel.Columns)
	}
}

func TestParseDistinct(t *testing.T) {
	sel := parseSelect(t, "SELECT DISTINCT did FROM MOVIE")
	if !sel.Distinct {
		t.Error("DISTINCT not parsed")
	}
}

func TestParseWherePrecedence(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM R WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := sel.Where.(*Logical)
	if !ok || or.And {
		t.Fatalf("top = %T (%+v), want OR", sel.Where, sel.Where)
	}
	and, ok := or.Right.(*Logical)
	if !ok || !and.And {
		t.Fatalf("right = %T, want AND (AND binds tighter than OR)", or.Right)
	}
}

func TestParseParens(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM R WHERE (a = 1 OR b = 2) AND c = 3")
	and, ok := sel.Where.(*Logical)
	if !ok || !and.And {
		t.Fatalf("top = %T, want AND", sel.Where)
	}
	if _, ok := and.Left.(*Logical); !ok {
		t.Fatalf("left = %T, want OR group", and.Left)
	}
}

func TestParseInList(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM R WHERE id IN (1, 2, 3)")
	in, ok := sel.Where.(*InList)
	if !ok {
		t.Fatalf("where = %T", sel.Where)
	}
	want := []storage.Value{storage.Int(1), storage.Int(2), storage.Int(3)}
	if !reflect.DeepEqual(in.Values, want) {
		t.Errorf("values = %v", in.Values)
	}
	sel2 := parseSelect(t, "SELECT * FROM R WHERE id NOT IN (1)")
	if in2 := sel2.Where.(*InList); !in2.Not {
		t.Error("NOT IN not parsed")
	}
}

func TestParseLikeAndIsNull(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM R WHERE name LIKE '%allen%'")
	like, ok := sel.Where.(*Like)
	if !ok || like.Pattern != "%allen%" {
		t.Fatalf("where = %#v", sel.Where)
	}
	sel2 := parseSelect(t, "SELECT * FROM R WHERE name IS NOT NULL AND x IS NULL")
	and := sel2.Where.(*Logical)
	if l := and.Left.(*IsNull); !l.Not {
		t.Error("IS NOT NULL")
	}
	if r := and.Right.(*IsNull); r.Not {
		t.Error("IS NULL")
	}
}

func TestParseNot(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM R WHERE NOT a = 1")
	if _, ok := sel.Where.(*Not); !ok {
		t.Fatalf("where = %T", sel.Where)
	}
}

func TestParseOrderByLimit(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM R ORDER BY a DESC, b ASC, c LIMIT 10")
	want := []OrderKey{{"a", true}, {"b", false}, {"c", false}}
	if !reflect.DeepEqual(sel.OrderBy, want) {
		t.Errorf("order = %v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParseComparisonOps(t *testing.T) {
	ops := map[string]CompareOp{"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe}
	for sym, op := range ops {
		sel := parseSelect(t, "SELECT * FROM R WHERE a "+sym+" 1")
		cmp, ok := sel.Where.(*Compare)
		if !ok || cmp.Op != op {
			t.Errorf("op %q parsed as %#v", sym, sel.Where)
		}
	}
}

func TestParseLiteralKinds(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM R WHERE a = 'x' OR b = 1.5 OR c = TRUE OR d = NULL")
	_ = sel // structure checked by parsing successfully
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("INSERT INTO MOVIE VALUES (1, 'Match Point', 2005, TRUE, NULL, 1.5)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if ins.Table != "MOVIE" || len(ins.Values) != 6 {
		t.Fatalf("ins = %+v", ins)
	}
	if ins.Values[1] != storage.String("Match Point") || !ins.Values[4].IsNull() {
		t.Errorf("values = %v", ins.Values)
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse("CREATE TABLE MOVIE (mid INT, title TEXT, score FLOAT, seen BOOL, PRIMARY KEY (mid))")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if ct.Schema.Name != "MOVIE" || ct.Schema.Key != "mid" || len(ct.Schema.Columns) != 4 {
		t.Fatalf("schema = %v", ct.Schema)
	}
	if ct.Schema.Columns[2].Type != storage.TypeFloat {
		t.Error("FLOAT column type")
	}
}

func TestParseDelete(t *testing.T) {
	st, err := Parse("DELETE FROM MOVIE WHERE year < 1990")
	if err != nil {
		t.Fatal(err)
	}
	del := st.(*DeleteStmt)
	if del.Table != "MOVIE" || del.Where == nil {
		t.Fatalf("del = %+v", del)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM R",
		"SELECT FROM R",
		"SELECT * R",
		"SELECT * FROM R WHERE",
		"SELECT * FROM R WHERE a =",
		"SELECT * FROM R WHERE a NOT 5",
		"SELECT * FROM R LIMIT x",
		"SELECT * FROM R LIMIT -1",
		"SELECT * FROM R ORDER a",
		"SELECT * FROM R extra",
		"INSERT INTO R (1)",
		"INSERT INTO R VALUES 1",
		"INSERT INTO R VALUES (1",
		"CREATE TABLE R (a WIBBLE)",
		"CREATE TABLE R (a INT, a INT)",
		"SELECT * FROM R WHERE a IN ()",
		"SELECT * FROM R WHERE a LIKE 5",
		"DELETE R",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a%", "abc", true},
		{"%c", "abc", true},
		{"%b%", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "abbc", false},
		{"%", "", true},
		{"", "", true},
		{"", "x", false},
		{"%%x%%", "yyxyy", true},
		{"_", "", false},
		{"a%b%c", "a123b456c", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.pattern, c.s, got)
		}
	}
}

func TestExprString(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM R WHERE a = 1 AND b NOT IN (2, 3) OR NOT c LIKE 'x%' AND d IS NOT NULL")
	s := exprString(sel.Where)
	if s == "" || s == "?" {
		t.Errorf("exprString = %q", s)
	}
}

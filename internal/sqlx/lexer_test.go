package sqlx

import (
	"reflect"
	"testing"
)

func kinds(toks []token) []tokenKind {
	out := make([]tokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func texts(toks []token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.text
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := lexAll("SELECT title, year FROM MOVIE WHERE mid = 5")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SELECT", "title", ",", "year", "FROM", "MOVIE", "WHERE", "mid", "=", "5", ""}
	if got := texts(toks); !reflect.DeepEqual(got, want) {
		t.Errorf("texts = %v", got)
	}
	if toks[0].kind != tokKeyword || toks[1].kind != tokIdent || toks[9].kind != tokInt {
		t.Errorf("kinds = %v", kinds(toks))
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, err := lexAll("select FrOm WHERE")
	if err != nil {
		t.Fatal(err)
	}
	if texts(toks)[0] != "SELECT" || texts(toks)[1] != "FROM" || texts(toks)[2] != "WHERE" {
		t.Errorf("keywords not canonicalized: %v", texts(toks))
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lexAll("42 -7 3.25 -0.5")
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []tokenKind{tokInt, tokInt, tokFloat, tokFloat, tokEOF}
	if got := kinds(toks); !reflect.DeepEqual(got, wantKinds) {
		t.Errorf("kinds = %v", got)
	}
	if texts(toks)[1] != "-7" || texts(toks)[3] != "-0.5" {
		t.Errorf("texts = %v", texts(toks))
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := lexAll("'Woody Allen' 'O''Hara' ''")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Woody Allen", "O'Hara", "", ""}
	if got := texts(toks); !reflect.DeepEqual(got, want) {
		t.Errorf("texts = %v", got)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := lexAll("< <= > >= <> != = ( ) , *")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<", "<=", ">", ">=", "<>", "!=", "=", "(", ")", ",", "*", ""}
	if got := texts(toks); !reflect.DeepEqual(got, want) {
		t.Errorf("texts = %v", got)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "@", "!x"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q) accepted", src)
		}
	}
}

func TestQuoteIdent(t *testing.T) {
	if q, ok := QuoteIdent("title"); !ok || q != "title" {
		t.Error("valid identifier rejected")
	}
	for _, bad := range []string{"", "1abc", "a b", "a;b", "SELECT", "a'b"} {
		if _, ok := QuoteIdent(bad); ok {
			t.Errorf("QuoteIdent(%q) accepted", bad)
		}
	}
}

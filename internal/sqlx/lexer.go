package sqlx

import (
	"strings"
)

// lexer turns a SQL string into tokens.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

// next returns the next token or an error for malformed input.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return token{kind: tokKeyword, text: upper, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil

	case isDigit(c), c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		if c == '-' {
			l.pos++
		}
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		kind := tokInt
		if l.pos < len(l.src) && l.src[l.pos] == '.' {
			kind = tokFloat
			l.pos++
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
		return token{kind: kind, text: l.src[start:l.pos], pos: start}, nil

	case c == '"':
		l.pos++
		start := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, errf(start-1, "unterminated quoted identifier")
		}
		name := l.src[start:l.pos]
		l.pos++
		if name == "" {
			return token{}, errf(start-1, "empty quoted identifier")
		}
		return token{kind: tokIdent, text: name, pos: start - 1}, nil

	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, errf(start, "unterminated string literal")
			}
			if l.src[l.pos] == '\'' {
				// '' is an escaped quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}

	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokSymbol, text: l.src[start:l.pos], pos: start}, nil

	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokSymbol, text: l.src[start:l.pos], pos: start}, nil

	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokSymbol, text: "!=", pos: start}, nil
		}
		return token{}, errf(start, "unexpected character %q", "!")

	case c == '(', c == ')', c == ',', c == '*', c == '=', c == '.':
		l.pos++
		return token{kind: tokSymbol, text: string(c), pos: start}, nil

	default:
		return token{}, errf(start, "unexpected character %q", string(c))
	}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

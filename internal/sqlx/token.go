// Package sqlx implements the SQL subset through which the précis engine
// talks to the storage layer, mirroring the paper's architecture in which
// the result database is produced "by submitting to the database a series of
// selection queries without joins". It provides a lexer, parser, and an
// index-aware executor for:
//
//	CREATE TABLE t (col TYPE, ..., PRIMARY KEY (col))
//	CREATE [ORDERED] INDEX ON t (col)
//	DROP TABLE t
//	INSERT INTO t VALUES (v, ...)
//	SELECT cols FROM t [WHERE expr] [ORDER BY col [ASC|DESC], ...]
//	    [LIMIT n [OFFSET m]]
//	UPDATE t SET col = v, ... [WHERE expr]
//	DELETE FROM t [WHERE expr]
//	EXPLAIN SELECT ...
//
// Expressions support comparisons, IN lists, LIKE, IS [NOT] NULL, NOT, AND,
// OR and parentheses. The pseudo-column "rowid" exposes tuple ids the way
// Oracle's rowid does in the paper's prototype, and LIMIT plays the role of
// Oracle's RowNum top-k cut-off.
package sqlx

import "fmt"

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokSymbol // ( ) , * = < > <= >= <> !=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokKeyword:
		return "keyword"
	case tokInt:
		return "integer"
	case tokFloat:
		return "float"
	case tokString:
		return "string"
	case tokSymbol:
		return "symbol"
	default:
		return "token"
	}
}

// token is one lexical element with its source position (byte offset).
type token struct {
	kind tokenKind
	text string // canonical text; keywords upper-cased, strings unquoted
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords recognised by the lexer (always case-insensitive in input).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "LIKE": true, "IS": true, "NULL": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"CREATE": true, "TABLE": true, "PRIMARY": true, "KEY": true,
	"INSERT": true, "INTO": true, "VALUES": true, "DELETE": true,
	"UPDATE": true, "SET": true, "DROP": true, "OFFSET": true, "EXPLAIN": true,
	"INDEX": true, "ORDERED": true, "ON": true,
	"INT": true, "FLOAT": true, "TEXT": true, "BOOL": true,
	"TRUE": true, "FALSE": true, "DISTINCT": true,
}

// Error is a SQL front-end error carrying the offending position.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("sql: %s (at offset %d)", e.Msg, e.Pos)
}

func errf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

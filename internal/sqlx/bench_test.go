package sqlx

import (
	"fmt"
	"testing"

	"precis/internal/storage"
)

func benchEngine(b *testing.B, rows int) *Engine {
	b.Helper()
	db := storage.NewDatabase("bench")
	e := NewEngine(db)
	e.MustExec("CREATE TABLE R (id INT, k INT, s TEXT, PRIMARY KEY (id))")
	for i := 0; i < rows; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO R VALUES (%d, %d, 'row %d')", i, i%100, i))
	}
	e.MustExec("CREATE INDEX ON R (k)")
	e.MustExec("CREATE ORDERED INDEX ON R (k)")
	return e
}

func BenchmarkParse(b *testing.B) {
	const q = "SELECT id, s FROM R WHERE k IN (1, 2, 3) AND s LIKE '%row%' ORDER BY id DESC LIMIT 10"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecIndexed(b *testing.B) {
	e := benchEngine(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.MustExec(fmt.Sprintf("SELECT id FROM R WHERE k = %d", i%100))
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkExecRange(b *testing.B) {
	e := benchEngine(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := i % 80
		res := e.MustExec(fmt.Sprintf("SELECT id FROM R WHERE k >= %d AND k < %d", lo, lo+10))
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkExecScan(b *testing.B) {
	e := benchEngine(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MustExec("SELECT id FROM R WHERE s LIKE '%row 99%' LIMIT 5")
	}
}

package sqlx

import (
	"strings"

	"precis/internal/storage"
)

// Stmt is a parsed SQL statement.
type Stmt interface{ stmt() }

// SelectStmt is SELECT [DISTINCT] cols FROM table [WHERE] [ORDER BY] [LIMIT].
type SelectStmt struct {
	Columns  []string // nil means *
	Distinct bool
	Table    string
	Where    Expr // may be nil
	OrderBy  []OrderKey
	Limit    int // -1 means no limit
	Offset   int // rows to skip before the limit applies
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Column string
	Desc   bool
}

// InsertStmt is INSERT INTO table VALUES (...).
type InsertStmt struct {
	Table  string
	Values []storage.Value
}

// CreateTableStmt is CREATE TABLE name (cols..., PRIMARY KEY (col)).
type CreateTableStmt struct {
	Schema *storage.Schema
}

// DeleteStmt is DELETE FROM table [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr // may be nil
}

// UpdateStmt is UPDATE table SET col = v, ... [WHERE expr]. Only literal
// assignments are supported, which is all the précis system needs.
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr // may be nil
}

// SetClause is one col = literal assignment of an UPDATE.
type SetClause struct {
	Column string
	Value  storage.Value
}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct {
	Table string
}

// CreateIndexStmt is CREATE [ORDERED] INDEX ON table (col). Plain indexes
// are hash indexes (equality); ordered indexes are B-trees (ranges).
type CreateIndexStmt struct {
	Table   string
	Column  string
	Ordered bool
}

// ExplainStmt is EXPLAIN SELECT ...; it returns the chosen access path
// instead of executing the query.
type ExplainStmt struct {
	Inner *SelectStmt
}

func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*DeleteStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DropTableStmt) stmt()   {}
func (*CreateIndexStmt) stmt() {}
func (*ExplainStmt) stmt()     {}

// Expr is a boolean or scalar expression over one tuple.
type Expr interface {
	expr()
}

// ColumnRef names a column, or the pseudo-column "rowid".
type ColumnRef struct {
	Name string
	Pos  int
}

// Literal is a constant value.
type Literal struct {
	Value storage.Value
}

// CompareOp is the operator of a comparison.
type CompareOp uint8

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Compare is <left> op <right>.
type Compare struct {
	Op          CompareOp
	Left, Right Expr
}

// InList is <col> IN (v1, ..., vn), with an optional NOT.
type InList struct {
	Left   Expr
	Values []storage.Value
	Not    bool
}

// Like is <col> LIKE 'pattern' with % and _ wildcards, optional NOT.
type Like struct {
	Left    Expr
	Pattern string
	Not     bool
}

// IsNull is <col> IS [NOT] NULL.
type IsNull struct {
	Left Expr
	Not  bool
}

// Logical is AND / OR over two boolean operands.
type Logical struct {
	And         bool // true = AND, false = OR
	Left, Right Expr
}

// Not negates a boolean expression.
type Not struct {
	Inner Expr
}

func (*ColumnRef) expr() {}
func (*Literal) expr()   {}
func (*Compare) expr()   {}
func (*InList) expr()    {}
func (*Like) expr()      {}
func (*IsNull) expr()    {}
func (*Logical) expr()   {}
func (*Not) expr()       {}

// likeMatch implements LIKE semantics: % matches any run (possibly empty),
// _ matches exactly one byte; matching is case-sensitive like standard SQL
// with a binary collation.
func likeMatch(pattern, s string) bool {
	// Dynamic programming over pattern/state; patterns are short so the
	// simple recursion with memo on positions suffices.
	var match func(p, t string) bool
	match = func(p, t string) bool {
		for {
			if p == "" {
				return t == ""
			}
			switch p[0] {
			case '%':
				// Collapse consecutive %.
				for p != "" && p[0] == '%' {
					p = p[1:]
				}
				if p == "" {
					return true
				}
				for i := 0; i <= len(t); i++ {
					if match(p, t[i:]) {
						return true
					}
				}
				return false
			case '_':
				if t == "" {
					return false
				}
				p, t = p[1:], t[1:]
			default:
				if t == "" || p[0] != t[0] {
					return false
				}
				p, t = p[1:], t[1:]
			}
		}
	}
	return match(pattern, s)
}

// exprString renders an expression for error messages and EXPLAIN-style
// output; it is not guaranteed to re-parse.
func exprString(e Expr) string {
	switch e := e.(type) {
	case *ColumnRef:
		return e.Name
	case *Literal:
		return e.Value.SQL()
	case *Compare:
		return exprString(e.Left) + " " + e.Op.String() + " " + exprString(e.Right)
	case *InList:
		var parts []string
		for _, v := range e.Values {
			parts = append(parts, v.SQL())
		}
		not := ""
		if e.Not {
			not = " NOT"
		}
		return exprString(e.Left) + not + " IN (" + strings.Join(parts, ", ") + ")"
	case *Like:
		not := ""
		if e.Not {
			not = " NOT"
		}
		return exprString(e.Left) + not + " LIKE '" + e.Pattern + "'"
	case *IsNull:
		if e.Not {
			return exprString(e.Left) + " IS NOT NULL"
		}
		return exprString(e.Left) + " IS NULL"
	case *Logical:
		op := " OR "
		if e.And {
			op = " AND "
		}
		return "(" + exprString(e.Left) + op + exprString(e.Right) + ")"
	case *Not:
		return "NOT (" + exprString(e.Inner) + ")"
	default:
		return "?"
	}
}

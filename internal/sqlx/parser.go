package sqlx

import (
	"strconv"
	"strings"

	"precis/internal/storage"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
}

// Parse parses a single SQL statement.
func Parse(src string) (Stmt, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errf(p.cur().pos, "unexpected trailing input %s", p.cur())
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errf(p.cur().pos, "expected %s, got %s", kw, p.cur())
	}
	return nil
}

// acceptSymbol consumes the symbol if present.
func (p *parser) acceptSymbol(sym string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == sym {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return errf(p.cur().pos, "expected %q, got %s", sym, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tokIdent {
		return "", errf(p.cur().pos, "expected identifier, got %s", p.cur())
	}
	return p.advance().text, nil
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.acceptKeyword("SELECT"):
		return p.selectStmt()
	case p.acceptKeyword("INSERT"):
		return p.insertStmt()
	case p.acceptKeyword("CREATE"):
		return p.createStmt()
	case p.acceptKeyword("DELETE"):
		return p.deleteStmt()
	case p.acceptKeyword("UPDATE"):
		return p.updateStmt()
	case p.acceptKeyword("DROP"):
		return p.dropStmt()
	case p.acceptKeyword("EXPLAIN"):
		if err := p.expectKeyword("SELECT"); err != nil {
			return nil, err
		}
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Inner: sel}, nil
	default:
		return nil, errf(p.cur().pos,
			"expected SELECT, INSERT, CREATE, DELETE, UPDATE, DROP or EXPLAIN, got %s", p.cur())
	}
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	st := &SelectStmt{Limit: -1}
	st.Distinct = p.acceptKeyword("DISTINCT")
	if p.acceptSymbol("*") {
		st.Columns = nil
	} else {
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, name)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Table = table
	if p.acceptKeyword("WHERE") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Column: name}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, key)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		if p.cur().kind != tokInt {
			return nil, errf(p.cur().pos, "LIMIT expects an integer, got %s", p.cur())
		}
		n, err := strconv.Atoi(p.advance().text)
		if err != nil || n < 0 {
			return nil, errf(p.cur().pos, "invalid LIMIT")
		}
		st.Limit = n
		if p.acceptKeyword("OFFSET") {
			if p.cur().kind != tokInt {
				return nil, errf(p.cur().pos, "OFFSET expects an integer, got %s", p.cur())
			}
			m, err := strconv.Atoi(p.advance().text)
			if err != nil || m < 0 {
				return nil, errf(p.cur().pos, "invalid OFFSET")
			}
			st.Offset = m
		}
	}
	return st, nil
}

func (p *parser) updateStmt() (*UpdateStmt, error) {
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, SetClause{Column: col, Value: v})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) dropStmt() (*DropTableStmt, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Table: table}, nil
}

func (p *parser) insertStmt() (*InsertStmt, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	for {
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		st.Values = append(st.Values, v)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) createStmt() (Stmt, error) {
	if p.acceptKeyword("ORDERED") {
		if err := p.expectKeyword("INDEX"); err != nil {
			return nil, err
		}
		return p.createIndexStmt(true)
	}
	if p.acceptKeyword("INDEX") {
		return p.createIndexStmt(false)
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []storage.Column
	key := ""
	for {
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			key, err = p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		} else {
			colName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			t := p.cur()
			if t.kind != tokKeyword {
				return nil, errf(t.pos, "expected column type, got %s", t)
			}
			var ct storage.ColType
			switch t.text {
			case "INT":
				ct = storage.TypeInt
			case "FLOAT":
				ct = storage.TypeFloat
			case "TEXT":
				ct = storage.TypeString
			case "BOOL":
				ct = storage.TypeBool
			default:
				return nil, errf(t.pos, "unknown column type %s", t)
			}
			p.advance()
			cols = append(cols, storage.Column{Name: colName, Type: ct})
		}
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	schema, err := storage.NewSchema(name, key, cols...)
	if err != nil {
		return nil, errf(0, "%v", err)
	}
	return &CreateTableStmt{Schema: schema}, nil
}

// createIndexStmt parses the tail of CREATE [ORDERED] INDEX: ON t (col).
func (p *parser) createIndexStmt(ordered bool) (*CreateIndexStmt, error) {
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Table: table, Column: col, Ordered: ordered}, nil
}

func (p *parser) deleteStmt() (*DeleteStmt, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

// literal parses a constant: number, string, TRUE/FALSE, NULL.
func (p *parser) literal() (storage.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return storage.Null, errf(t.pos, "invalid integer %s", t)
		}
		p.advance()
		return storage.Int(n), nil
	case tokFloat:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return storage.Null, errf(t.pos, "invalid float %s", t)
		}
		p.advance()
		return storage.Float(f), nil
	case tokString:
		p.advance()
		return storage.String(t.text), nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.advance()
			return storage.Bool(true), nil
		case "FALSE":
			p.advance()
			return storage.Bool(false), nil
		case "NULL":
			p.advance()
			return storage.Null, nil
		}
	}
	return storage.Null, errf(t.pos, "expected literal, got %s", t)
}

// orExpr = andExpr (OR andExpr)*
func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &Logical{And: false, Left: left, Right: right}
	}
	return left, nil
}

// andExpr = notExpr (AND notExpr)*
func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &Logical{And: true, Left: left, Right: right}
	}
	return left, nil
}

// notExpr = [NOT] predicate
func (p *parser) notExpr() (Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Not{Inner: inner}, nil
	}
	return p.predicate()
}

// predicate = '(' orExpr ')' | operand (compare | IN | LIKE | IS NULL)
func (p *parser) predicate() (Expr, error) {
	if p.acceptSymbol("(") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	left, err := p.operand()
	if err != nil {
		return nil, err
	}
	// Optional NOT before IN / LIKE.
	neg := false
	if p.acceptKeyword("NOT") {
		neg = true
	}
	switch {
	case p.acceptKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		in := &InList{Left: left, Not: neg}
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			in.Values = append(in.Values, v)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return in, nil

	case p.acceptKeyword("LIKE"):
		t := p.cur()
		if t.kind != tokString {
			return nil, errf(t.pos, "LIKE expects a string pattern, got %s", t)
		}
		p.advance()
		return &Like{Left: left, Pattern: t.text, Not: neg}, nil

	case neg:
		return nil, errf(p.cur().pos, "expected IN or LIKE after NOT, got %s", p.cur())

	case p.acceptKeyword("IS"):
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{Left: left, Not: not}, nil

	default:
		t := p.cur()
		if t.kind != tokSymbol {
			return nil, errf(t.pos, "expected comparison operator, got %s", t)
		}
		var op CompareOp
		switch t.text {
		case "=":
			op = OpEq
		case "<>", "!=":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			return nil, errf(t.pos, "expected comparison operator, got %s", t)
		}
		p.advance()
		right, err := p.operand()
		if err != nil {
			return nil, err
		}
		return &Compare{Op: op, Left: left, Right: right}, nil
	}
}

// operand = column reference | literal
func (p *parser) operand() (Expr, error) {
	t := p.cur()
	if t.kind == tokIdent {
		p.advance()
		return &ColumnRef{Name: t.text, Pos: t.pos}, nil
	}
	v, err := p.literal()
	if err != nil {
		return nil, err
	}
	return &Literal{Value: v}, nil
}

// QuoteIdent validates an identifier for safe interpolation into generated
// SQL. The précis layer builds queries textually (as the paper's prototype
// did against Oracle); this guards against malformed relation or column
// names reaching the parser.
func QuoteIdent(name string) (string, bool) {
	if name == "" || !isIdentStart(name[0]) {
		return "", false
	}
	for i := 1; i < len(name); i++ {
		if !isIdentPart(name[i]) {
			return "", false
		}
	}
	if keywords[strings.ToUpper(name)] {
		return "", false
	}
	return name, true
}

// Ident renders an identifier for interpolation into generated SQL,
// double-quoting it when the bare form would collide with a keyword (a
// column named "text", say) or contains no safe spelling.
func Ident(name string) string {
	if q, ok := QuoteIdent(name); ok {
		return q
	}
	return `"` + strings.ReplaceAll(name, `"`, ``) + `"`
}

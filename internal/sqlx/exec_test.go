package sqlx

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"precis/internal/storage"
)

// testEngine builds a MOVIE table with a PK and an index on did.
func testEngine(t *testing.T) *Engine {
	t.Helper()
	db := storage.NewDatabase("test")
	e := NewEngine(db)
	e.MustExec("CREATE TABLE MOVIE (mid INT, title TEXT, year INT, did INT, PRIMARY KEY (mid))")
	rows := []string{
		"INSERT INTO MOVIE VALUES (1, 'Match Point', 2005, 1)",
		"INSERT INTO MOVIE VALUES (2, 'Melinda and Melinda', 2004, 1)",
		"INSERT INTO MOVIE VALUES (3, 'Anything Else', 2003, 1)",
		"INSERT INTO MOVIE VALUES (4, 'Alien', 1979, 2)",
		"INSERT INTO MOVIE VALUES (5, 'Blade Runner', 1982, 2)",
		"INSERT INTO MOVIE VALUES (6, 'Unknown', 2000, NULL)",
	}
	for _, r := range rows {
		e.MustExec(r)
	}
	if _, err := db.Relation("MOVIE").CreateIndex("did"); err != nil {
		t.Fatal(err)
	}
	return e
}

func titles(res *Result) []string {
	var out []string
	ti := -1
	for i, c := range res.Columns {
		if c == "title" {
			ti = i
		}
	}
	for _, row := range res.Rows {
		out = append(out, row[ti].AsString())
	}
	return out
}

func TestSelectAll(t *testing.T) {
	e := testEngine(t)
	res := e.MustExec("SELECT * FROM MOVIE")
	if len(res.Rows) != 6 || len(res.Columns) != 4 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
	if len(res.RowIDs) != 6 {
		t.Fatalf("RowIDs = %v", res.RowIDs)
	}
}

func TestSelectProjection(t *testing.T) {
	e := testEngine(t)
	res := e.MustExec("SELECT title, year FROM MOVIE WHERE mid = 1")
	if !reflect.DeepEqual(res.Columns, []string{"title", "year"}) {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "Match Point" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSelectRowIDPseudoColumn(t *testing.T) {
	e := testEngine(t)
	res := e.MustExec("SELECT rowid, title FROM MOVIE WHERE year = 1979")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].AsInt() != int64(res.RowIDs[0]) {
		t.Error("rowid column disagrees with RowIDs")
	}
}

func TestSelectByRowID(t *testing.T) {
	e := testEngine(t)
	all := e.MustExec("SELECT rowid FROM MOVIE")
	id := all.Rows[2][0].AsInt()
	res := e.MustExec("SELECT title FROM MOVIE WHERE rowid = " + all.Rows[2][0].String())
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// rowid access path should not scan.
	if res.Stats.Scanned != 0 {
		t.Errorf("rowid access scanned %d tuples", res.Stats.Scanned)
	}
	_ = id
}

func TestSelectInListUsesIndex(t *testing.T) {
	e := testEngine(t)
	res := e.MustExec("SELECT title FROM MOVIE WHERE did IN (1, 2)")
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %v", titles(res))
	}
	if res.Stats.IndexLookups != 2 {
		t.Errorf("IndexLookups = %d, want 2", res.Stats.IndexLookups)
	}
	if res.Stats.Scanned != 0 {
		t.Errorf("Scanned = %d, want 0 (index path)", res.Stats.Scanned)
	}
}

func TestSelectUnindexedScans(t *testing.T) {
	e := testEngine(t)
	res := e.MustExec("SELECT title FROM MOVIE WHERE year > 2000")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", titles(res))
	}
	if res.Stats.Scanned == 0 {
		t.Error("expected a scan for unindexed predicate")
	}
}

func TestSelectLike(t *testing.T) {
	e := testEngine(t)
	res := e.MustExec("SELECT title FROM MOVIE WHERE title LIKE '%Melinda%'")
	if got := titles(res); !reflect.DeepEqual(got, []string{"Melinda and Melinda"}) {
		t.Errorf("titles = %v", got)
	}
	res = e.MustExec("SELECT title FROM MOVIE WHERE title NOT LIKE '%a%' AND title NOT LIKE '%A%'")
	for _, title := range titles(res) {
		if strings.ContainsAny(title, "aA") {
			t.Errorf("NOT LIKE returned %q", title)
		}
	}
}

func TestSelectIsNull(t *testing.T) {
	e := testEngine(t)
	res := e.MustExec("SELECT title FROM MOVIE WHERE did IS NULL")
	if got := titles(res); !reflect.DeepEqual(got, []string{"Unknown"}) {
		t.Errorf("titles = %v", got)
	}
	res = e.MustExec("SELECT title FROM MOVIE WHERE did IS NOT NULL")
	if len(res.Rows) != 5 {
		t.Errorf("IS NOT NULL rows = %d", len(res.Rows))
	}
}

func TestNullComparisonsNeverMatch(t *testing.T) {
	e := testEngine(t)
	res := e.MustExec("SELECT title FROM MOVIE WHERE did = NULL")
	if len(res.Rows) != 0 {
		t.Errorf("did = NULL matched %v", titles(res))
	}
	res = e.MustExec("SELECT title FROM MOVIE WHERE did <> 1")
	// NULL did row must not match <> either.
	if len(res.Rows) != 2 {
		t.Errorf("did <> 1 matched %v", titles(res))
	}
}

func TestOrderByAndLimit(t *testing.T) {
	e := testEngine(t)
	res := e.MustExec("SELECT title, year FROM MOVIE ORDER BY year DESC LIMIT 2")
	if got := titles(res); !reflect.DeepEqual(got, []string{"Match Point", "Melinda and Melinda"}) {
		t.Errorf("titles = %v", got)
	}
	res = e.MustExec("SELECT title FROM MOVIE ORDER BY did DESC, year ASC")
	_ = res
}

func TestOrderByRowID(t *testing.T) {
	e := testEngine(t)
	res := e.MustExec("SELECT title FROM MOVIE ORDER BY rowid DESC LIMIT 1")
	if got := titles(res); !reflect.DeepEqual(got, []string{"Unknown"}) {
		t.Errorf("titles = %v", got)
	}
}

func TestEarlyLimitStopsScan(t *testing.T) {
	e := testEngine(t)
	res := e.MustExec("SELECT title FROM MOVIE LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Stats.Scanned > 2 {
		t.Errorf("scanned %d tuples despite LIMIT 2", res.Stats.Scanned)
	}
}

func TestDistinct(t *testing.T) {
	e := testEngine(t)
	res := e.MustExec("SELECT DISTINCT did FROM MOVIE WHERE did IS NOT NULL ORDER BY did")
	if len(res.Rows) != 2 || res.Rows[0][0].AsInt() != 1 || res.Rows[1][0].AsInt() != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestDelete(t *testing.T) {
	e := testEngine(t)
	res := e.MustExec("DELETE FROM MOVIE WHERE did = 2")
	if res.Affected != 2 {
		t.Fatalf("Affected = %d", res.Affected)
	}
	left := e.MustExec("SELECT * FROM MOVIE")
	if len(left.Rows) != 4 {
		t.Errorf("remaining = %d", len(left.Rows))
	}
}

func TestInsertTypeError(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Exec("INSERT INTO MOVIE VALUES ('x', 'y', 1, 1)"); err == nil {
		t.Error("type error accepted")
	}
	if _, err := e.Exec("INSERT INTO MOVIE VALUES (1, 'dup pk', 2000, 1)"); err == nil {
		t.Error("duplicate PK accepted")
	}
}

func TestExecErrors(t *testing.T) {
	e := testEngine(t)
	bad := []string{
		"SELECT * FROM NOPE",
		"SELECT nope FROM MOVIE",
		"SELECT * FROM MOVIE WHERE nope = 1",
		"SELECT * FROM MOVIE ORDER BY nope",
		"DELETE FROM NOPE",
		"CREATE TABLE MOVIE (x INT)",
	}
	for _, src := range bad {
		if _, err := e.Exec(src); err == nil {
			t.Errorf("Exec(%q) accepted", src)
		}
	}
}

func TestCumulativeStats(t *testing.T) {
	e := testEngine(t)
	e.ResetStats()
	e.MustExec("SELECT * FROM MOVIE WHERE did IN (1, 2)")
	e.MustExec("SELECT * FROM MOVIE WHERE did = 1")
	total := e.TotalStats()
	if total.IndexLookups != 3 {
		t.Errorf("cumulative IndexLookups = %d, want 3", total.IndexLookups)
	}
	if total.TupleReads != 8 {
		t.Errorf("cumulative TupleReads = %d, want 8", total.TupleReads)
	}
}

// TestPlannerEquivalence: for random predicates over a table indexed on one
// column, the index path and a forced scan return the same multiset of rows.
func TestPlannerEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	db := storage.NewDatabase("prop")
	e := NewEngine(db)
	e.MustExec("CREATE TABLE R (id INT, k INT, s TEXT, PRIMARY KEY (id))")
	for i := 0; i < 300; i++ {
		k := r.Intn(10)
		s := string(rune('a' + r.Intn(5)))
		e.MustExec("INSERT INTO R VALUES (" +
			storage.Int(int64(i)).SQL() + ", " +
			storage.Int(int64(k)).SQL() + ", " +
			storage.String(s).SQL() + ")")
	}
	if _, err := db.Relation("R").CreateIndex("k"); err != nil {
		t.Fatal(err)
	}
	// Build an identical unindexed table to force scans.
	e.MustExec("CREATE TABLE RS (id INT, k INT, s TEXT)")
	base := e.MustExec("SELECT id, k, s FROM R")
	for _, row := range base.Rows {
		e.MustExec("INSERT INTO RS VALUES (" + row[0].SQL() + ", " + row[1].SQL() + ", " + row[2].SQL() + ")")
	}
	for trial := 0; trial < 100; trial++ {
		k1 := r.Intn(10)
		k2 := r.Intn(10)
		s := string(rune('a' + r.Intn(5)))
		where := " WHERE k IN (" + storage.Int(int64(k1)).SQL() + ", " + storage.Int(int64(k2)).SQL() +
			") AND s = " + storage.String(s).SQL()
		a := e.MustExec("SELECT id FROM R" + where + " ORDER BY id")
		b := e.MustExec("SELECT id FROM RS" + where + " ORDER BY id")
		if !reflect.DeepEqual(a.Rows, b.Rows) {
			t.Fatalf("trial %d: index path %v != scan path %v", trial, a.Rows, b.Rows)
		}
		if a.Stats.Scanned != 0 {
			t.Fatalf("trial %d: expected index path, scanned %d", trial, a.Stats.Scanned)
		}
	}
}

package sqlx

import (
	"strings"
	"testing"

	"precis/internal/storage"
)

// FuzzParse checks the SQL front end never panics and that anything it
// accepts also executes (or fails cleanly) against a live engine.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM MOVIE",
		"SELECT DISTINCT title, rowid FROM MOVIE WHERE did IN (1, 2) ORDER BY year DESC LIMIT 3 OFFSET 1",
		"SELECT a FROM t WHERE x LIKE '%a_b%' AND (y > 1.5 OR z IS NOT NULL)",
		"INSERT INTO t VALUES (1, 'x''y', TRUE, NULL, -2.5)",
		"CREATE TABLE t (a INT, b TEXT, PRIMARY KEY (a))",
		"CREATE ORDERED INDEX ON t (a)",
		"UPDATE t SET a = 1, b = 'x' WHERE a <> 2",
		"DELETE FROM t WHERE a NOT IN (1,2,3)",
		"EXPLAIN SELECT * FROM t WHERE a = 1",
		`SELECT "text" FROM "select"`,
		"SELECT * FROM t WHERE",
		"'", "\"", "((((", "--", "SELECT SELECT",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted statements must execute without panicking on a small
		// schema (errors are fine: unknown tables etc.).
		db := storage.NewDatabase("fuzz")
		e := NewEngine(db)
		e.MustExec("CREATE TABLE MOVIE (mid INT, title TEXT, year INT, did INT, PRIMARY KEY (mid))")
		e.MustExec("INSERT INTO MOVIE VALUES (1, 'Match Point', 2005, 1)")
		_, _ = e.ExecStmt(st)
	})
}

// FuzzLikeMatch checks the LIKE matcher terminates and never panics.
func FuzzLikeMatch(f *testing.F) {
	f.Add("%a_b%", "xaybz")
	f.Add("%%%%", "")
	f.Add("_", "é")
	f.Add(strings.Repeat("%a", 8), strings.Repeat("a", 16))
	f.Fuzz(func(t *testing.T, pattern, s string) {
		if len(pattern) > 24 || len(s) > 64 {
			return // exponential patterns are bounded by the caller's SQL, keep fuzz fast
		}
		likeMatch(pattern, s)
	})
}

package sqlx

import (
	"fmt"
	"sort"

	"precis/internal/faultinject"
	"precis/internal/storage"
)

// RowIDColumn is the pseudo-column exposing tuple ids, mirroring Oracle's
// rowid in the paper's prototype.
const RowIDColumn = "rowid"

// Stats counts the physical work a query performed. The précis cost model
// (paper Formula 1) is expressed in exactly these units: index probes and
// tuple reads.
type Stats struct {
	IndexLookups int // hash-index probes
	TupleReads   int // tuples materialized into the result or filtered post-index
	Scanned      int // tuples visited by full scans
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.IndexLookups += other.IndexLookups
	s.TupleReads += other.TupleReads
	s.Scanned += other.Scanned
}

// Result is the outcome of executing one statement.
type Result struct {
	Columns  []string
	Rows     [][]storage.Value
	RowIDs   []storage.TupleID // parallel to Rows for SELECTs
	Affected int               // rows inserted/deleted
	Stats    Stats
}

// Engine executes SQL against a storage database and accumulates stats.
type Engine struct {
	db    *storage.Database
	total Stats
}

// NewEngine wraps a database.
func NewEngine(db *storage.Database) *Engine { return &Engine{db: db} }

// Database returns the wrapped database.
func (e *Engine) Database() *storage.Database { return e.db }

// TotalStats returns the cumulative stats across all executed statements.
func (e *Engine) TotalStats() Stats { return e.total }

// ResetStats clears the cumulative stats.
func (e *Engine) ResetStats() { e.total = Stats{} }

// AccumulateStats merges externally measured work into the engine's
// cumulative totals. The parallel result-database generator runs each fetch
// on a private engine (so concurrent fetches never race on statistics) and
// folds the per-fetch stats back through this method, keeping TotalStats on
// the caller's engine meaningful for cost-model accounting.
func (e *Engine) AccumulateStats(s Stats) { e.total.Add(s) }

// Exec parses and executes one statement.
func (e *Engine) Exec(src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	res, err := e.ExecStmt(st)
	if err != nil {
		return nil, err
	}
	e.total.Add(res.Stats)
	return res, nil
}

// MustExec is Exec that panics on error, for fixtures and tests.
func (e *Engine) MustExec(src string) *Result {
	res, err := e.Exec(src)
	if err != nil {
		panic(err)
	}
	return res
}

// ExecStmt executes an already-parsed statement.
func (e *Engine) ExecStmt(st Stmt) (*Result, error) {
	switch st := st.(type) {
	case *SelectStmt:
		return e.execSelect(st)
	case *InsertStmt:
		return e.execInsert(st)
	case *CreateTableStmt:
		_, err := e.db.CreateRelation(st.Schema)
		if err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *DeleteStmt:
		return e.execDelete(st)
	case *UpdateStmt:
		return e.execUpdate(st)
	case *DropTableStmt:
		if err := e.db.DropRelation(st.Table); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *CreateIndexStmt:
		rel := e.db.Relation(st.Table)
		if rel == nil {
			return nil, fmt.Errorf("sql: no relation %s", st.Table)
		}
		var err error
		if st.Ordered {
			_, err = rel.CreateOrderedIndex(st.Column)
		} else {
			_, err = rel.CreateIndex(st.Column)
		}
		if err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *ExplainStmt:
		return e.execExplain(st)
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", st)
	}
}

func (e *Engine) execInsert(st *InsertStmt) (*Result, error) {
	if _, err := e.db.Insert(st.Table, st.Values...); err != nil {
		return nil, err
	}
	return &Result{Affected: 1}, nil
}

func (e *Engine) execDelete(st *DeleteStmt) (*Result, error) {
	rel := e.db.Relation(st.Table)
	if rel == nil {
		return nil, fmt.Errorf("sql: no relation %s", st.Table)
	}
	ev, err := newEvaluator(rel.Schema(), st.Where)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	var doomed []storage.TupleID
	rel.Scan(func(t storage.Tuple) bool {
		res.Stats.Scanned++
		ok, err2 := ev.matches(t)
		if err2 != nil {
			err = err2
			return false
		}
		if ok {
			doomed = append(doomed, t.ID)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	for _, id := range doomed {
		if _, err := e.db.Delete(st.Table, id); err != nil {
			return nil, err
		}
	}
	res.Affected = len(doomed)
	return res, nil
}

func (e *Engine) execUpdate(st *UpdateStmt) (*Result, error) {
	rel := e.db.Relation(st.Table)
	if rel == nil {
		return nil, fmt.Errorf("sql: no relation %s", st.Table)
	}
	schema := rel.Schema()
	setIdx := make([]int, len(st.Set))
	for i, sc := range st.Set {
		ci := schema.ColumnIndex(sc.Column)
		if ci < 0 {
			return nil, fmt.Errorf("sql: relation %s has no column %s", st.Table, sc.Column)
		}
		setIdx[i] = ci
	}
	ev, err := newEvaluator(schema, st.Where)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	// Collect matching ids first so index maintenance during the update
	// cannot disturb the scan.
	var matched []storage.TupleID
	rel.Scan(func(t storage.Tuple) bool {
		res.Stats.Scanned++
		ok, err2 := ev.matches(t)
		if err2 != nil {
			err = err2
			return false
		}
		if ok {
			matched = append(matched, t.ID)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	for _, id := range matched {
		t, ok := rel.Get(id)
		if !ok {
			continue
		}
		vals := append([]storage.Value(nil), t.Values...)
		for i, sc := range st.Set {
			vals[setIdx[i]] = sc.Value
		}
		if err := e.db.Update(st.Table, id, vals); err != nil {
			return nil, err
		}
		res.Affected++
	}
	return res, nil
}

// execExplain reports the access path the planner would choose: "rowid",
// "index(col)" with the probe count, or "scan".
func (e *Engine) execExplain(st *ExplainStmt) (*Result, error) {
	rel := e.db.Relation(st.Inner.Table)
	if rel == nil {
		return nil, fmt.Errorf("sql: no relation %s", st.Inner.Table)
	}
	// Validate the inner statement fully (columns, predicate, order keys).
	if _, err := newEvaluator(rel.Schema(), st.Inner.Where); err != nil {
		return nil, err
	}
	plan := "scan"
	conjuncts := collectConjuncts(st.Inner.Where)
	for _, c := range conjuncts {
		if col, vals, ok := eqOrInTarget(c); ok && col == RowIDColumn {
			plan = fmt.Sprintf("rowid fetch (%d ids)", len(vals))
			break
		}
	}
	if plan == "scan" {
		for _, c := range conjuncts {
			col, vals, ok := eqOrInTarget(c)
			if ok && rel.Schema().HasColumn(col) && rel.HasIndex(col) {
				plan = fmt.Sprintf("index(%s) probes=%d", col, len(vals))
				break
			}
		}
	}
	if plan == "scan" {
		if col, _, _, ok := rangeTarget(rel, conjuncts); ok {
			plan = fmt.Sprintf("range(%s)", col)
		}
	}
	return &Result{
		Columns: []string{"plan"},
		Rows:    [][]storage.Value{{storage.String(plan)}},
		RowIDs:  []storage.TupleID{0},
	}, nil
}

func (e *Engine) execSelect(st *SelectStmt) (*Result, error) {
	if err := faultinject.Fire(faultinject.SiteSQLSelect); err != nil {
		return nil, fmt.Errorf("sql: select on %s: %w", st.Table, err)
	}
	rel := e.db.Relation(st.Table)
	if rel == nil {
		return nil, fmt.Errorf("sql: no relation %s", st.Table)
	}
	schema := rel.Schema()

	outCols := st.Columns
	if outCols == nil {
		outCols = schema.ColumnNames()
	}
	outIdx := make([]int, len(outCols)) // -1 means rowid
	for i, c := range outCols {
		if c == RowIDColumn {
			outIdx[i] = -1
			continue
		}
		ci := schema.ColumnIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("sql: relation %s has no column %s", st.Table, c)
		}
		outIdx[i] = ci
	}

	ev, err := newEvaluator(schema, st.Where)
	if err != nil {
		return nil, err
	}
	// ORDER BY keys may name any column of the relation, not only projected
	// ones; capture their positions for key extraction at emit time.
	orderIdx := make([]int, len(st.OrderBy)) // -1 means rowid
	for i, k := range st.OrderBy {
		if k.Column == RowIDColumn {
			orderIdx[i] = -1
			continue
		}
		ci := schema.ColumnIndex(k.Column)
		if ci < 0 {
			return nil, fmt.Errorf("sql: ORDER BY column %s does not exist in %s", k.Column, st.Table)
		}
		orderIdx[i] = ci
	}

	res := &Result{Columns: outCols}

	// Plan: try an index-backed access path from the WHERE clause, else scan.
	candidates, planned, err := e.planAccess(rel, st.Where, &res.Stats)
	if err != nil {
		return nil, err
	}

	// ORDER BY served by an ordered index: when no WHERE access path was
	// chosen and the single sort key has a B-tree index covering every
	// tuple (no NULLs in the column, which the index skips), stream ids in
	// index order and skip the sort — with LIMIT this is a top-k that never
	// materializes the full result.
	orderedByIndex := false
	if !planned && !st.Distinct && len(st.OrderBy) == 1 {
		key := st.OrderBy[0]
		if ix := rel.OrderedIndexOn(key.Column); ix != nil && ix.Len() == rel.Len() {
			ids := make([]storage.TupleID, 0, ix.Len())
			ix.Range(nil, nil, func(_ storage.Value, id storage.TupleID) bool {
				ids = append(ids, id)
				return true
			})
			if key.Desc {
				for i, j := 0, len(ids)-1; i < j; i, j = i+1, j-1 {
					ids[i], ids[j] = ids[j], ids[i]
				}
			}
			res.Stats.IndexLookups++
			candidates, planned, orderedByIndex = ids, true, true
		}
	}

	var sortKeys [][]storage.Value
	emit := func(t storage.Tuple) error {
		ok, err := ev.matches(t)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		row := make([]storage.Value, len(outIdx))
		for i, ci := range outIdx {
			if ci < 0 {
				row[i] = storage.Int(int64(t.ID))
			} else {
				row[i] = t.Values[ci]
			}
		}
		res.Rows = append(res.Rows, row)
		res.RowIDs = append(res.RowIDs, t.ID)
		if len(orderIdx) > 0 {
			keys := make([]storage.Value, len(orderIdx))
			for i, ci := range orderIdx {
				if ci < 0 {
					keys[i] = storage.Int(int64(t.ID))
				} else {
					keys[i] = t.Values[ci]
				}
			}
			sortKeys = append(sortKeys, keys)
		}
		res.Stats.TupleReads++
		return nil
	}

	// When no post-processing will reorder or cut rows, the LIMIT (plus any
	// OFFSET) can stop the producer early (the RowNum-style top-k of the
	// paper). An index-ordered producer already emits in output order.
	earlyCount := -1
	if st.Limit >= 0 && (len(st.OrderBy) == 0 || orderedByIndex) && !st.Distinct {
		earlyCount = st.Limit + st.Offset
	}
	earlyLimit := earlyCount >= 0

	if planned {
		for _, id := range candidates {
			if earlyLimit && len(res.Rows) >= earlyCount {
				break
			}
			t, ok := rel.Get(id)
			if !ok {
				continue
			}
			if err := emit(t); err != nil {
				return nil, err
			}
		}
	} else {
		var scanErr error
		rel.Scan(func(t storage.Tuple) bool {
			if earlyLimit && len(res.Rows) >= earlyCount {
				return false
			}
			res.Stats.Scanned++
			if err := emit(t); err != nil {
				scanErr = err
				return false
			}
			return true
		})
		if scanErr != nil {
			return nil, scanErr
		}
	}

	// Sort before deduplication: dedupe keeps first occurrences in order,
	// so a sorted input stays sorted, and the sort-key slice stays aligned
	// with the rows it was captured for.
	if len(st.OrderBy) > 0 && !orderedByIndex {
		res.sortByKeys(st.OrderBy, sortKeys)
	}
	if st.Distinct {
		res.dedupe()
	}
	if st.Offset > 0 {
		if st.Offset >= len(res.Rows) {
			res.Rows = nil
			res.RowIDs = nil
		} else {
			res.Rows = res.Rows[st.Offset:]
			res.RowIDs = res.RowIDs[st.Offset:]
		}
	}
	if st.Limit >= 0 && len(res.Rows) > st.Limit {
		res.Rows = res.Rows[:st.Limit]
		res.RowIDs = res.RowIDs[:st.Limit]
	}
	return res, nil
}

// RowIDOrder reports whether planAccess would serve this WHERE clause from
// a top-level `rowid = v` / `rowid IN (...)` conjunct and, if so, returns
// the candidate tuple ids exactly as the executor would visit them: in
// predicate-list order, neither sorted nor deduplicated. Scatter/gather
// executors need this to merge per-shard results in the same order a
// single engine would emit them (the generator's weight-ordered IN-list
// fetches depend on that order surviving the merge).
func RowIDOrder(where Expr) ([]storage.TupleID, bool) {
	for _, c := range collectConjuncts(where) {
		if col, vals, ok := eqOrInTarget(c); ok && col == RowIDColumn {
			ids := make([]storage.TupleID, 0, len(vals))
			for _, v := range vals {
				if v.Kind() == storage.KindInt {
					ids = append(ids, storage.TupleID(v.AsInt()))
				}
			}
			return ids, true
		}
	}
	return nil, false
}

// planAccess inspects the top-level AND-conjuncts of where for an equality
// or IN predicate on rowid or on an indexed column and, if found, returns
// the candidate tuple ids (in deterministic order) for re-checking against
// the full predicate. The boolean reports whether a plan was found. An index
// probe failure is propagated, never swallowed: silently treating a failed
// lookup as "no matches" would corrupt the answer without any signal.
func (e *Engine) planAccess(rel *storage.Relation, where Expr, stats *Stats) ([]storage.TupleID, bool, error) {
	conjuncts := collectConjuncts(where)
	schema := rel.Schema()

	// Prefer rowid predicates: direct fetches, no index probe needed.
	if ids, ok := RowIDOrder(where); ok {
		return ids, true, nil
	}
	// Otherwise the first indexed equality/IN column wins.
	for _, c := range conjuncts {
		col, vals, ok := eqOrInTarget(c)
		if !ok || !schema.HasColumn(col) || !rel.HasIndex(col) {
			continue
		}
		var ids []storage.TupleID
		for _, v := range vals {
			stats.IndexLookups++
			found, err := rel.Lookup(col, v)
			if err != nil {
				return nil, false, fmt.Errorf("sql: access path on %s: %w", rel.Schema().Name, err)
			}
			ids = append(ids, found...)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		// Dedupe (IN lists may repeat values).
		ids = dedupeIDs(ids)
		return ids, true, nil
	}
	// Finally, a range over an ordered (B-tree) index.
	if col, lo, hi, ok := rangeTarget(rel, conjuncts); ok {
		ix := rel.OrderedIndexOn(col)
		stats.IndexLookups++
		var ids []storage.TupleID
		ix.Range(lo, hi, func(_ storage.Value, id storage.TupleID) bool {
			ids = append(ids, id)
			return true
		})
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids, true, nil
	}
	return nil, false, nil
}

// rangeTarget folds the top-level range conjuncts (col < v, col >= v, ...)
// over a single ordered-indexed column into [lo, hi] bounds. It returns ok
// when at least one bound exists on some ordered-indexed column; remaining
// predicates are re-checked by the evaluator as usual.
func rangeTarget(rel *storage.Relation, conjuncts []Expr) (string, *storage.Bound, *storage.Bound, bool) {
	type bounds struct{ lo, hi *storage.Bound }
	perCol := map[string]*bounds{}
	order := []string{}
	for _, c := range conjuncts {
		cmp, ok := c.(*Compare)
		if !ok {
			continue
		}
		var col string
		var lit storage.Value
		op := cmp.Op
		if cr, ok := cmp.Left.(*ColumnRef); ok {
			if l, ok := cmp.Right.(*Literal); ok {
				col, lit = cr.Name, l.Value
			}
		} else if cr, ok := cmp.Right.(*ColumnRef); ok {
			if l, ok := cmp.Left.(*Literal); ok {
				// Flip: v < col means col > v.
				col, lit = cr.Name, l.Value
				switch op {
				case OpLt:
					op = OpGt
				case OpLe:
					op = OpGe
				case OpGt:
					op = OpLt
				case OpGe:
					op = OpLe
				}
			}
		}
		if col == "" || lit.IsNull() || rel.OrderedIndexOn(col) == nil {
			continue
		}
		b := perCol[col]
		if b == nil {
			b = &bounds{}
			perCol[col] = b
			order = append(order, col)
		}
		switch op {
		case OpGt:
			b.lo = tighterLo(b.lo, &storage.Bound{Value: lit, Inclusive: false})
		case OpGe:
			b.lo = tighterLo(b.lo, &storage.Bound{Value: lit, Inclusive: true})
		case OpLt:
			b.hi = tighterHi(b.hi, &storage.Bound{Value: lit, Inclusive: false})
		case OpLe:
			b.hi = tighterHi(b.hi, &storage.Bound{Value: lit, Inclusive: true})
		}
	}
	for _, col := range order {
		b := perCol[col]
		if b.lo != nil || b.hi != nil {
			return col, b.lo, b.hi, true
		}
	}
	return "", nil, nil, false
}

// tighterLo keeps the stricter (larger) lower bound.
func tighterLo(a, b *storage.Bound) *storage.Bound {
	if a == nil {
		return b
	}
	c := b.Value.Compare(a.Value)
	if c > 0 || (c == 0 && !b.Inclusive) {
		return b
	}
	return a
}

// tighterHi keeps the stricter (smaller) upper bound.
func tighterHi(a, b *storage.Bound) *storage.Bound {
	if a == nil {
		return b
	}
	c := b.Value.Compare(a.Value)
	if c < 0 || (c == 0 && !b.Inclusive) {
		return b
	}
	return a
}

// collectConjuncts flattens nested ANDs into a list; a nil expression yields
// an empty list.
func collectConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if l, ok := e.(*Logical); ok && l.And {
		return append(collectConjuncts(l.Left), collectConjuncts(l.Right)...)
	}
	return []Expr{e}
}

// eqOrInTarget recognises `col = literal` (either side) and `col IN (...)`
// conjuncts and returns the column and candidate values.
func eqOrInTarget(e Expr) (string, []storage.Value, bool) {
	switch e := e.(type) {
	case *Compare:
		if e.Op != OpEq {
			return "", nil, false
		}
		if c, ok := e.Left.(*ColumnRef); ok {
			if lit, ok := e.Right.(*Literal); ok {
				return c.Name, []storage.Value{lit.Value}, true
			}
		}
		if c, ok := e.Right.(*ColumnRef); ok {
			if lit, ok := e.Left.(*Literal); ok {
				return c.Name, []storage.Value{lit.Value}, true
			}
		}
	case *InList:
		if e.Not {
			return "", nil, false
		}
		if c, ok := e.Left.(*ColumnRef); ok {
			return c.Name, e.Values, true
		}
	}
	return "", nil, false
}

func dedupeIDs(ids []storage.TupleID) []storage.TupleID {
	out := ids[:0]
	var prev storage.TupleID = -1
	for _, id := range ids {
		if id != prev {
			out = append(out, id)
		}
		prev = id
	}
	return out
}

// dedupe removes duplicate rows (by rendered values), keeping first
// occurrences in order.
func (r *Result) dedupe() {
	seen := make(map[string]bool, len(r.Rows))
	outRows := r.Rows[:0]
	outIDs := r.RowIDs[:0]
	for i, row := range r.Rows {
		key := ""
		for _, v := range row {
			key += v.SQL() + "\x00"
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		outRows = append(outRows, row)
		outIDs = append(outIDs, r.RowIDs[i])
	}
	r.Rows = outRows
	r.RowIDs = outIDs
}

// sortByKeys orders rows by pre-extracted key values (parallel to Rows),
// so the sort keys may name columns the projection dropped.
func (r *Result) sortByKeys(keys []OrderKey, sortKeys [][]storage.Value) {
	type pair struct {
		row  []storage.Value
		id   storage.TupleID
		keys []storage.Value
	}
	pairs := make([]pair, len(r.Rows))
	for i := range r.Rows {
		pairs[i] = pair{r.Rows[i], r.RowIDs[i], sortKeys[i]}
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		for k := range keys {
			cmp := pairs[i].keys[k].Compare(pairs[j].keys[k])
			if keys[k].Desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	for i := range pairs {
		r.Rows[i] = pairs[i].row
		r.RowIDs[i] = pairs[i].id
	}
}

// evaluator checks a tuple against a parsed predicate.
type evaluator struct {
	schema *storage.Schema
	expr   Expr
}

func newEvaluator(schema *storage.Schema, e Expr) (*evaluator, error) {
	ev := &evaluator{schema: schema, expr: e}
	if e != nil {
		if err := ev.check(e); err != nil {
			return nil, err
		}
	}
	return ev, nil
}

// check validates column references eagerly so errors surface at parse time
// rather than mid-scan.
func (ev *evaluator) check(e Expr) error {
	switch e := e.(type) {
	case *ColumnRef:
		if e.Name != RowIDColumn && !ev.schema.HasColumn(e.Name) {
			return errf(e.Pos, "relation %s has no column %s", ev.schema.Name, e.Name)
		}
	case *Compare:
		if err := ev.check(e.Left); err != nil {
			return err
		}
		return ev.check(e.Right)
	case *InList:
		return ev.check(e.Left)
	case *Like:
		return ev.check(e.Left)
	case *IsNull:
		return ev.check(e.Left)
	case *Logical:
		if err := ev.check(e.Left); err != nil {
			return err
		}
		return ev.check(e.Right)
	case *Not:
		return ev.check(e.Inner)
	}
	return nil
}

// matches reports whether tuple t satisfies the predicate (nil matches all).
func (ev *evaluator) matches(t storage.Tuple) (bool, error) {
	if ev.expr == nil {
		return true, nil
	}
	return ev.eval(ev.expr, t)
}

func (ev *evaluator) value(e Expr, t storage.Tuple) (storage.Value, error) {
	switch e := e.(type) {
	case *ColumnRef:
		if e.Name == RowIDColumn {
			return storage.Int(int64(t.ID)), nil
		}
		return t.Values[ev.schema.ColumnIndex(e.Name)], nil
	case *Literal:
		return e.Value, nil
	default:
		return storage.Null, fmt.Errorf("sql: expression %q is not a scalar", exprString(e))
	}
}

func (ev *evaluator) eval(e Expr, t storage.Tuple) (bool, error) {
	switch e := e.(type) {
	case *Compare:
		l, err := ev.value(e.Left, t)
		if err != nil {
			return false, err
		}
		r, err := ev.value(e.Right, t)
		if err != nil {
			return false, err
		}
		// SQL three-valued logic: comparisons with NULL are not true.
		if l.IsNull() || r.IsNull() {
			return false, nil
		}
		switch e.Op {
		case OpEq:
			return l.Equal(r), nil
		case OpNe:
			return !l.Equal(r), nil
		case OpLt:
			return l.Compare(r) < 0, nil
		case OpLe:
			return l.Compare(r) <= 0, nil
		case OpGt:
			return l.Compare(r) > 0, nil
		case OpGe:
			return l.Compare(r) >= 0, nil
		}
		return false, nil
	case *InList:
		l, err := ev.value(e.Left, t)
		if err != nil {
			return false, err
		}
		if l.IsNull() {
			return false, nil
		}
		found := false
		for _, v := range e.Values {
			if l.Equal(v) {
				found = true
				break
			}
		}
		return found != e.Not, nil
	case *Like:
		l, err := ev.value(e.Left, t)
		if err != nil {
			return false, err
		}
		if l.Kind() != storage.KindString {
			return false, nil
		}
		return likeMatch(e.Pattern, l.AsString()) != e.Not, nil
	case *IsNull:
		l, err := ev.value(e.Left, t)
		if err != nil {
			return false, err
		}
		return l.IsNull() != e.Not, nil
	case *Logical:
		l, err := ev.eval(e.Left, t)
		if err != nil {
			return false, err
		}
		if e.And {
			if !l {
				return false, nil
			}
			return ev.eval(e.Right, t)
		}
		if l {
			return true, nil
		}
		return ev.eval(e.Right, t)
	case *Not:
		v, err := ev.eval(e.Inner, t)
		if err != nil {
			return false, err
		}
		return !v, nil
	default:
		return false, fmt.Errorf("sql: expression %q is not boolean", exprString(e))
	}
}

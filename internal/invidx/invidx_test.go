package invidx

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"precis/internal/storage"
)

func moviesDB(t *testing.T) *storage.Database {
	t.Helper()
	db := storage.NewDatabase("movies")
	db.MustCreateRelation(storage.MustSchema("DIRECTOR", "did",
		storage.Column{Name: "did", Type: storage.TypeInt},
		storage.Column{Name: "dname", Type: storage.TypeString}))
	db.MustCreateRelation(storage.MustSchema("ACTOR", "aid",
		storage.Column{Name: "aid", Type: storage.TypeInt},
		storage.Column{Name: "aname", Type: storage.TypeString}))
	db.MustCreateRelation(storage.MustSchema("MOVIE", "mid",
		storage.Column{Name: "mid", Type: storage.TypeInt},
		storage.Column{Name: "title", Type: storage.TypeString},
		storage.Column{Name: "year", Type: storage.TypeInt}))
	mustInsert := func(rel string, vals ...storage.Value) storage.TupleID {
		id, err := db.Insert(rel, vals...)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	mustInsert("DIRECTOR", storage.Int(1), storage.String("Woody Allen"))
	mustInsert("DIRECTOR", storage.Int(2), storage.String("Ridley Scott"))
	mustInsert("ACTOR", storage.Int(10), storage.String("Woody Allen"))
	mustInsert("ACTOR", storage.Int(11), storage.String("Woody Harrelson"))
	mustInsert("MOVIE", storage.Int(100), storage.String("Match Point"), storage.Int(2005))
	mustInsert("MOVIE", storage.Int(101), storage.String("Anything Else"), storage.Int(2003))
	return db
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Woody Allen", []string{"woody", "allen"}},
		{"  The Curse-of the Jade Scorpion! ", []string{"the", "curse", "of", "the", "jade", "scorpion"}},
		{"R2D2", []string{"r2d2"}},
		{"", nil},
		{"---", nil},
		{"ÉLÈVE café", []string{"élève", "café"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLookupSingleToken(t *testing.T) {
	db := moviesDB(t)
	ix := New(db)
	occs := ix.Lookup("woody")
	rels := Relations(occs)
	if !reflect.DeepEqual(rels, []string{"ACTOR", "DIRECTOR"}) {
		t.Errorf("relations = %v", rels)
	}
	// ACTOR has two woodys.
	for _, o := range occs {
		if o.Relation == "ACTOR" && len(o.TupleIDs) != 2 {
			t.Errorf("ACTOR occurrence = %+v", o)
		}
		if o.Relation == "DIRECTOR" && len(o.TupleIDs) != 1 {
			t.Errorf("DIRECTOR occurrence = %+v", o)
		}
	}
}

func TestLookupPhrase(t *testing.T) {
	db := moviesDB(t)
	ix := New(db)
	occs := ix.Lookup("Woody Allen")
	if len(occs) != 2 {
		t.Fatalf("occurrences = %+v", occs)
	}
	for _, o := range occs {
		if len(o.TupleIDs) != 1 {
			t.Errorf("phrase should match exactly one tuple per relation: %+v", o)
		}
		if o.Attribute != "dname" && o.Attribute != "aname" {
			t.Errorf("unexpected attribute %q", o.Attribute)
		}
	}
	// "Woody Harrelson" must not be matched by the phrase "Woody Allen";
	// conversely the phrase "woody harrelson" matches only the actor.
	occs = ix.Lookup("woody harrelson")
	if len(occs) != 1 || occs[0].Relation != "ACTOR" || len(occs[0].TupleIDs) != 1 {
		t.Errorf("phrase woody harrelson = %+v", occs)
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	db := moviesDB(t)
	ix := New(db)
	a := ix.Lookup("WOODY ALLEN")
	b := ix.Lookup("woody allen")
	if !reflect.DeepEqual(a, b) {
		t.Error("lookup should be case-insensitive")
	}
}

func TestLookupMisses(t *testing.T) {
	db := moviesDB(t)
	ix := New(db)
	if occs := ix.Lookup("nonexistent"); occs != nil {
		t.Errorf("miss returned %+v", occs)
	}
	if occs := ix.Lookup(""); occs != nil {
		t.Errorf("empty term returned %+v", occs)
	}
	// Both words exist but never adjacent in one value.
	if occs := ix.Lookup("allen scott"); occs != nil {
		t.Errorf("non-phrase returned %+v", occs)
	}
	// Phrase where words co-occur in the same attribute but non-adjacent
	// should not match: add such a row.
	if _, err := db.Insert("MOVIE", storage.Int(102), storage.String("Allen meets Woody"), storage.Int(2001)); err != nil {
		t.Fatal(err)
	}
	ix2 := New(db)
	if occs := ix2.Lookup("woody allen"); len(Relations(occs)) != 2 {
		t.Errorf("phrase matching leaked substring semantics: %+v", occs)
	}
}

func TestLookupAll(t *testing.T) {
	db := moviesDB(t)
	ix := New(db)
	res := ix.LookupAll([]string{"Woody Allen", "match", "zzz"})
	if len(res["Woody Allen"]) != 2 {
		t.Errorf("Woody Allen = %+v", res["Woody Allen"])
	}
	if len(res["match"]) != 1 || res["match"][0].Relation != "MOVIE" {
		t.Errorf("match = %+v", res["match"])
	}
	if res["zzz"] != nil {
		t.Errorf("zzz = %+v", res["zzz"])
	}
}

func TestIncrementalAddRemove(t *testing.T) {
	db := moviesDB(t)
	ix := New(db)
	id, err := db.Insert("MOVIE", storage.Int(102), storage.String("Hollywood Ending"), storage.Int(2002))
	if err != nil {
		t.Fatal(err)
	}
	tup, _ := db.Relation("MOVIE").Get(id)
	ix.AddTuple("MOVIE", tup)
	occs := ix.Lookup("hollywood")
	if len(occs) != 1 || len(occs[0].TupleIDs) != 1 || occs[0].TupleIDs[0] != id {
		t.Fatalf("after add: %+v", occs)
	}
	ix.RemoveTuple("MOVIE", tup)
	if occs := ix.Lookup("hollywood"); occs != nil {
		t.Errorf("after remove: %+v", occs)
	}
}

func TestNumTokens(t *testing.T) {
	db := moviesDB(t)
	ix := New(db)
	if ix.NumTokens() == 0 {
		t.Error("NumTokens = 0")
	}
	before := ix.NumTokens()
	id, _ := db.Insert("MOVIE", storage.Int(103), storage.String("zxqj"), storage.Int(1999))
	tup, _ := db.Relation("MOVIE").Get(id)
	ix.AddTuple("MOVIE", tup)
	if ix.NumTokens() != before+1 {
		t.Errorf("NumTokens after add = %d, want %d", ix.NumTokens(), before+1)
	}
	ix.RemoveTuple("MOVIE", tup)
	if ix.NumTokens() != before {
		t.Errorf("NumTokens after remove = %d, want %d", ix.NumTokens(), before)
	}
}

// TestIndexMatchesBruteForce is the index correctness property: after a
// random interleaving of inserts and deletes, Lookup agrees with a direct
// scan for every queried token.
func TestIndexMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	db := storage.NewDatabase("prop")
	db.MustCreateRelation(storage.MustSchema("R", "",
		storage.Column{Name: "a", Type: storage.TypeString},
		storage.Column{Name: "b", Type: storage.TypeString}))
	ix := New(db)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	randPhrase := func() string {
		n := 1 + r.Intn(3)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[r.Intn(len(words))]
		}
		return strings.Join(parts, " ")
	}
	var live []storage.TupleID
	for step := 0; step < 1200; step++ {
		if len(live) > 0 && r.Intn(3) == 0 {
			i := r.Intn(len(live))
			id := live[i]
			tup, _ := db.Relation("R").Get(id)
			ix.RemoveTuple("R", tup)
			if _, err := db.Delete("R", id); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		} else {
			id, err := db.Insert("R", storage.String(randPhrase()), storage.String(randPhrase()))
			if err != nil {
				t.Fatal(err)
			}
			tup, _ := db.Relation("R").Get(id)
			ix.AddTuple("R", tup)
			live = append(live, id)
		}
	}
	for _, w := range words {
		occs := ix.Lookup(w)
		got := map[string][]storage.TupleID{}
		for _, o := range occs {
			got[o.Attribute] = o.TupleIDs
		}
		for col := 0; col < 2; col++ {
			attr := []string{"a", "b"}[col]
			var want []storage.TupleID
			db.Relation("R").Scan(func(tu storage.Tuple) bool {
				for _, tok := range Tokenize(tu.Values[col].AsString()) {
					if tok == w {
						want = append(want, tu.ID)
						break
					}
				}
				return true
			})
			if !reflect.DeepEqual(got[attr], want) {
				t.Fatalf("token %q attr %s: index %v != scan %v", w, attr, got[attr], want)
			}
		}
	}
}

func TestSynonyms(t *testing.T) {
	db := moviesDB(t)
	ix := New(db)
	// Without a synonym, "W. Allen" tokenizes to {w, allen}: "w" misses.
	if occs := ix.LookupExpanded("W. Allen"); occs != nil {
		t.Fatalf("unexpected matches before synonym: %+v", occs)
	}
	ix.AddSynonym("W. Allen", "Woody Allen")
	occs := ix.LookupExpanded("W. Allen")
	rels := Relations(occs)
	if !reflect.DeepEqual(rels, []string{"ACTOR", "DIRECTOR"}) {
		t.Errorf("synonym lookup relations = %v", rels)
	}
	// Direct matches and synonym matches merge without duplicates.
	ix.AddSynonym("woody", "Woody Harrelson")
	occs = ix.LookupExpanded("woody")
	for _, o := range occs {
		if o.Relation == "ACTOR" && len(o.TupleIDs) != 2 {
			t.Errorf("merged ACTOR ids = %v", o.TupleIDs)
		}
	}
	// Plain Lookup is unaffected.
	if got := ix.Lookup("W. Allen"); got != nil {
		t.Errorf("plain lookup affected by synonyms: %+v", got)
	}
	// Degenerate alias is ignored.
	ix.AddSynonym("---", "Woody Allen")
	if got := ix.LookupExpanded("---"); got != nil {
		t.Errorf("degenerate alias matched: %+v", got)
	}
}

package invidx

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"precis/internal/storage"
)

// Index snapshot codec ("PRCIDX01"): a versioned, checksummed rendering of
// the postings map, persisted beside full database snapshots so an open
// can load the index in O(read) instead of re-tokenizing every tuple. The
// file stamps both a format version and TokenizerVersion — if either
// disagrees with the running binary (a tokenizer change silently changes
// every posting), or the stamped generation is not the snapshot being
// recovered, or the checksum fails, the caller falls back to a rebuild.
// Synonyms are deliberately not persisted: the engine replays them from
// the recovered snapshot data, the single source of truth.
//
// Layout: magic, then uvarint/string fields — format version, tokenizer
// version, base generation, token count, and per token (sorted) its
// posting locations (sorted by relation then attribute) each with its
// ascending tuple ids — closed by a CRC32C (Castagnoli, little endian) of
// every preceding byte.
const (
	indexMagic = "PRCIDX01"
	// indexFormatVersion guards the byte layout below.
	indexFormatVersion = 1
	// TokenizerVersion stamps the tokenizer the postings were built with.
	// Bump it whenever Tokenize's observable behavior changes — a stale
	// stamp makes every persisted index fall back to a rebuild instead of
	// serving postings that no longer match query-time tokenization.
	TokenizerVersion = 1
)

var indexCRCTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeSnapshot renders the index as snapshot bytes stamped with gen (the
// full database snapshot generation it matches). Deterministic: identical
// postings produce identical bytes.
func (ix *Index) EncodeSnapshot(gen uint64) []byte {
	tokens := make([]string, 0, len(ix.postings))
	for tok := range ix.postings {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)

	out := []byte(indexMagic)
	out = binary.AppendUvarint(out, indexFormatVersion)
	out = binary.AppendUvarint(out, TokenizerVersion)
	out = binary.AppendUvarint(out, gen)
	out = binary.AppendUvarint(out, uint64(len(tokens)))
	for _, tok := range tokens {
		byLoc := ix.postings[tok]
		out = appendIndexStr(out, tok)
		keys := make([]postingKey, 0, len(byLoc))
		for k := range byLoc {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].rel != keys[j].rel {
				return keys[i].rel < keys[j].rel
			}
			return keys[i].attr < keys[j].attr
		})
		out = binary.AppendUvarint(out, uint64(len(keys)))
		for _, k := range keys {
			ids := byLoc[k]
			out = appendIndexStr(out, k.rel)
			out = appendIndexStr(out, k.attr)
			sorted := make([]storage.TupleID, 0, len(ids))
			for id := range ids {
				sorted = append(sorted, id)
			}
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			out = binary.AppendUvarint(out, uint64(len(sorted)))
			prev := uint64(0)
			for _, id := range sorted {
				// Gap-encode ascending ids: small varints for dense postings.
				out = binary.AppendUvarint(out, uint64(id)-prev)
				prev = uint64(id)
			}
		}
	}
	sum := crc32.Checksum(out, indexCRCTable)
	return binary.LittleEndian.AppendUint32(out, sum)
}

func appendIndexStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeSnapshot parses index snapshot bytes into an Index bound to db,
// returning the generation stamp the file carries. Any defect — bad magic,
// checksum mismatch, version skew (format or tokenizer), truncation, or a
// count the input cannot back — is an error; callers respond by rebuilding,
// never by trusting partial postings. The decoder is bounds-checked
// throughout: it never panics and never allocates more than the input
// justifies, whatever the bytes claim.
func DecodeSnapshot(raw []byte, db *storage.Database) (*Index, uint64, error) {
	if len(raw) < len(indexMagic)+4 || string(raw[:len(indexMagic)]) != indexMagic {
		return nil, 0, fmt.Errorf("invidx: not an index snapshot (bad magic)")
	}
	body := raw[:len(raw)-4]
	stored := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.Checksum(body, indexCRCTable); got != stored {
		return nil, 0, fmt.Errorf("invidx: index snapshot checksum mismatch (stored %08x, computed %08x)", stored, got)
	}
	d := &indexDec{b: body[len(indexMagic):]}
	format, err := d.uvarint()
	if err != nil {
		return nil, 0, fmt.Errorf("invidx: index snapshot header: %w", err)
	}
	if format != indexFormatVersion {
		return nil, 0, fmt.Errorf("invidx: unsupported index snapshot format %d (want %d)", format, indexFormatVersion)
	}
	tokVer, err := d.uvarint()
	if err != nil {
		return nil, 0, fmt.Errorf("invidx: index snapshot header: %w", err)
	}
	if tokVer != TokenizerVersion {
		return nil, 0, fmt.Errorf("invidx: index snapshot tokenizer version %d does not match %d", tokVer, TokenizerVersion)
	}
	gen, err := d.uvarint()
	if err != nil {
		return nil, 0, fmt.Errorf("invidx: index snapshot header: %w", err)
	}
	nTokens, err := d.count(2)
	if err != nil {
		return nil, 0, fmt.Errorf("invidx: token count: %w", err)
	}
	ix := &Index{
		db:       db,
		postings: make(map[string]map[postingKey]map[storage.TupleID]bool, nTokens),
	}
	for i := 0; i < nTokens; i++ {
		tok, err := d.str()
		if err != nil {
			return nil, 0, fmt.Errorf("invidx: token %d: %w", i, err)
		}
		nKeys, err := d.count(3)
		if err != nil {
			return nil, 0, fmt.Errorf("invidx: token %q locations: %w", tok, err)
		}
		byLoc := make(map[postingKey]map[storage.TupleID]bool, nKeys)
		for j := 0; j < nKeys; j++ {
			rel, err := d.str()
			if err != nil {
				return nil, 0, fmt.Errorf("invidx: token %q location %d: %w", tok, j, err)
			}
			attr, err := d.str()
			if err != nil {
				return nil, 0, fmt.Errorf("invidx: token %q location %d: %w", tok, j, err)
			}
			nIDs, err := d.count(1)
			if err != nil {
				return nil, 0, fmt.Errorf("invidx: token %q %s.%s ids: %w", tok, rel, attr, err)
			}
			ids := make(map[storage.TupleID]bool, nIDs)
			prev := uint64(0)
			for k := 0; k < nIDs; k++ {
				gap, err := d.uvarint()
				if err != nil {
					return nil, 0, fmt.Errorf("invidx: token %q %s.%s id %d: %w", tok, rel, attr, k, err)
				}
				prev += gap
				ids[storage.TupleID(prev)] = true
			}
			byLoc[postingKey{rel, attr}] = ids
		}
		if _, dup := ix.postings[tok]; dup {
			return nil, 0, fmt.Errorf("invidx: duplicate token %q in index snapshot", tok)
		}
		ix.postings[tok] = byLoc
		ix.tokens++
	}
	if !d.done() {
		return nil, 0, fmt.Errorf("invidx: %d trailing byte(s) after index snapshot body", d.remaining())
	}
	return ix, gen, nil
}

// indexDec is a bounds-checked reader over the snapshot body.
type indexDec struct {
	b   []byte
	off int
}

func (d *indexDec) remaining() int { return len(d.b) - d.off }

func (d *indexDec) done() bool { return d.off >= len(d.b) }

func (d *indexDec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad uvarint at %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *indexDec) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.remaining()) {
		return "", fmt.Errorf("string of %d bytes at %d exceeds remaining %d", n, d.off, d.remaining())
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// count reads an element count and validates it against the smallest
// possible per-element encoding, so a fuzzed count can never drive an
// allocation larger than the input itself.
func (d *indexDec) count(minBytesPerElem int) (int, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytesPerElem < 1 {
		minBytesPerElem = 1
	}
	if n > uint64(d.remaining()/minBytesPerElem) {
		return 0, fmt.Errorf("count %d at %d exceeds remaining input", n, d.off)
	}
	return int(n), nil
}

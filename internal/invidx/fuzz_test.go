package invidx

import (
	"testing"

	"precis/internal/storage"
)

// FuzzTokenizeAndLookup checks the tokenizer and phrase lookup never panic
// on arbitrary UTF-8 (and invalid UTF-8) input, whether it arrives as data
// or as a query.
func FuzzTokenizeAndLookup(f *testing.F) {
	f.Add("Woody Allen", "woody")
	f.Add("  --- ", "\xff\xfe")
	f.Add("élan R2D2 "+string(rune(0x1F600)), "élan r2d2")
	f.Fuzz(func(t *testing.T, value, query string) {
		if len(value) > 256 || len(query) > 64 {
			return
		}
		Tokenize(value)
		db := storage.NewDatabase("fuzz")
		db.MustCreateRelation(storage.MustSchema("R", "",
			storage.Column{Name: "s", Type: storage.TypeString}))
		if _, err := db.Insert("R", storage.String(value)); err != nil {
			t.Fatal(err)
		}
		ix := New(db)
		ix.Lookup(query)
		// Every token of the stored value must be findable.
		for _, tok := range Tokenize(value) {
			if occs := ix.Lookup(tok); len(occs) == 0 {
				t.Fatalf("token %q of %q not indexed", tok, value)
			}
		}
	})
}

package invidx

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"

	"precis/internal/storage"
)

func TestIndexSnapshotRoundTrip(t *testing.T) {
	db := moviesDB(t)
	ix := New(db)
	raw := ix.EncodeSnapshot(5)
	if !bytes.Equal(raw, ix.EncodeSnapshot(5)) {
		t.Fatal("EncodeSnapshot is not deterministic")
	}
	got, gen, err := DecodeSnapshot(raw, db)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if gen != 5 {
		t.Fatalf("generation stamp %d, want 5", gen)
	}
	if got.tokens != ix.tokens {
		t.Fatalf("token count %d, want %d", got.tokens, ix.tokens)
	}
	if !reflect.DeepEqual(got.postings, ix.postings) {
		t.Fatal("postings differ after round trip")
	}
	// The loaded index must answer lookups like the built one.
	for _, q := range []string{"woody", "woody allen", "match point", "scott"} {
		want := Relations(ix.Lookup(q))
		have := Relations(got.Lookup(q))
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("Lookup(%q): loaded %v, built %v", q, have, want)
		}
	}
}

// restamp recomputes the trailing CRC so a deliberate header tamper is
// structurally valid and rejected for the right reason.
func restamp(raw []byte) []byte {
	body := raw[:len(raw)-4]
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.Checksum(body, indexCRCTable))
}

func TestIndexSnapshotTokenizerSkew(t *testing.T) {
	db := moviesDB(t)
	raw := New(db).EncodeSnapshot(1)
	// Format version and TokenizerVersion are both 1, so each encodes as a
	// single uvarint byte right after the magic.
	mut := append([]byte(nil), raw...)
	mut[len(indexMagic)+1] = TokenizerVersion + 1
	if _, _, err := DecodeSnapshot(restamp(mut), db); err == nil {
		t.Fatal("stale tokenizer version accepted")
	}
	mut = append([]byte(nil), raw...)
	mut[len(indexMagic)] = indexFormatVersion + 1
	if _, _, err := DecodeSnapshot(restamp(mut), db); err == nil {
		t.Fatal("unknown format version accepted")
	}
}

func TestIndexSnapshotTruncation(t *testing.T) {
	db := moviesDB(t)
	raw := New(db).EncodeSnapshot(1)
	for cut := 0; cut < len(raw); cut++ {
		if _, _, err := DecodeSnapshot(raw[:cut], db); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

func TestIndexSnapshotBitFlips(t *testing.T) {
	db := moviesDB(t)
	raw := New(db).EncodeSnapshot(1)
	for off := 0; off < len(raw); off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x20
		if _, _, err := DecodeSnapshot(mut, db); err == nil {
			t.Fatalf("bit flip at %d decoded successfully", off)
		}
	}
}

func TestIndexSnapshotTrailingBytes(t *testing.T) {
	db := moviesDB(t)
	raw := New(db).EncodeSnapshot(1)
	if _, _, err := DecodeSnapshot(restamp(append(raw, 0)), db); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// FuzzIndexSnapshotDecode hammers the bounds-checked decoder: it must never
// panic nor over-allocate, and anything it accepts must survive a
// re-encode/re-decode cycle.
func FuzzIndexSnapshotDecode(f *testing.F) {
	db := storage.NewDatabase("fuzz")
	db.MustCreateRelation(storage.MustSchema("R", "",
		storage.Column{Name: "s", Type: storage.TypeString}))
	if _, err := db.Insert("R", storage.String("Woody Allen film festival")); err != nil {
		f.Fatal(err)
	}
	seed := New(db).EncodeSnapshot(7)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])    // truncation
	f.Add([]byte(indexMagic))    // magic only
	f.Add([]byte("PRCIDX99etc")) // wrong magic
	mut := append([]byte(nil), seed...)
	mut[len(mut)/3] ^= 0x40
	f.Add(mut) // flipped bit
	// Absurd token count backed by a valid CRC: the count guard must trip.
	huge := []byte(indexMagic)
	huge = binary.AppendUvarint(huge, indexFormatVersion)
	huge = binary.AppendUvarint(huge, TokenizerVersion)
	huge = binary.AppendUvarint(huge, 1)
	huge = binary.AppendUvarint(huge, 1<<40)
	f.Add(binary.LittleEndian.AppendUint32(huge, crc32.Checksum(huge, indexCRCTable)))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1<<16 {
			return
		}
		ix, gen, err := DecodeSnapshot(raw, db)
		if err != nil {
			return
		}
		re := ix.EncodeSnapshot(gen)
		ix2, gen2, err := DecodeSnapshot(re, db)
		if err != nil {
			t.Fatalf("re-encoded index snapshot does not decode: %v", err)
		}
		if gen2 != gen || !reflect.DeepEqual(ix2.postings, ix.postings) {
			t.Fatal("re-encode round trip changed the index")
		}
	})
}

package invidx

import (
	"testing"

	"precis/internal/dataset"
)

func benchIndex(b *testing.B) *Index {
	b.Helper()
	cfg := dataset.DefaultSyntheticConfig()
	cfg.Films = 1000
	db, err := dataset.SyntheticMovies(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return New(db)
}

func BenchmarkLookupSingleToken(b *testing.B) {
	ix := benchIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if occs := ix.Lookup("drama"); len(occs) == 0 {
			b.Fatal("no occurrences")
		}
	}
}

func BenchmarkLookupPhrase(b *testing.B) {
	ix := benchIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup("Night City")
	}
}

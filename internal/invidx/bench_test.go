package invidx

import (
	"testing"

	"precis/internal/dataset"
)

func benchIndex(b *testing.B) *Index {
	b.Helper()
	cfg := dataset.DefaultSyntheticConfig()
	cfg.Films = 1000
	db, err := dataset.SyntheticMovies(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return New(db)
}

func BenchmarkLookupSingleToken(b *testing.B) {
	ix := benchIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if occs := ix.Lookup("drama"); len(occs) == 0 {
			b.Fatal("no occurrences")
		}
	}
}

func BenchmarkLookupPhrase(b *testing.B) {
	ix := benchIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup("Night City")
	}
}

// BenchmarkTokenize measures the single tokenizer shared by indexing and
// querying. It is on the hot path of index construction (every string
// attribute of every tuple) and of every query (terms + cache keys), so its
// allocation profile matters. Inputs span the common shapes: short mixed-case
// names, already-lowercase queries, and longer punctuated prose.
//
// Before the preallocated-slice + reusable-buffer rewrite (strings.Builder
// per token, append-grown output slice) this reported, on the author
// machine:
//
//	mixed-case-name     4 allocs/op    64 B/op   ~224 ns/op
//	lowercase-query     6 allocs/op   136 B/op   ~306 ns/op
//	punctuated-prose   20 allocs/op   624 B/op  ~1891 ns/op
//
// After: already-lowercase tokens are zero-copy substrings of the input,
// the output slice is sized by a counting pre-pass, and case folding goes
// through one stack-backed buffer:
//
//	mixed-case-name     3 allocs/op    42 B/op   ~199 ns/op
//	lowercase-query     1 allocs/op    48 B/op   ~234 ns/op
//	punctuated-prose    8 allocs/op   272 B/op  ~1173 ns/op
func BenchmarkTokenize(b *testing.B) {
	inputs := []struct{ name, s string }{
		{"mixed-case-name", "Woody Allen"},
		{"lowercase-query", "comedy drama 1977"},
		{"punctuated-prose", "The Purple Rose of Cairo (1985), directed by Woody Allen — a Depression-era fantasy."},
	}
	for _, in := range inputs {
		b.Run(in.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if toks := Tokenize(in.s); len(toks) == 0 {
					b.Fatal("no tokens")
				}
			}
		})
	}
}

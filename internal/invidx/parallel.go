package invidx

import (
	"precis/internal/parallel"
	"precis/internal/storage"
)

// NewParallel builds exactly the index New builds, fanning the tuple scan
// out over a worker pool: each worker indexes a stripe of the database into
// a private posting map and the stripes are merged serially. Postings are
// sets keyed by token, location, and tuple id, so the merge is
// order-independent and the result is structurally identical to New's for
// every worker count. workers <= 1 (after normalization) falls back to New.
//
// This is the cold-start path: recovery rebuilds the whole index from the
// recovered database, and at hundreds of thousands of tuples the serial
// scan dominates reopen latency (see EXPERIMENTS.md, "Parallel index
// rebuild").
func NewParallel(db *storage.Database, workers int) *Index {
	workers = parallel.NormalizeWorkers(workers)
	if workers <= 1 {
		return New(db)
	}
	type task struct {
		rel    string
		schema *storage.Schema
		t      storage.Tuple
	}
	var tasks []task
	for _, name := range db.RelationNames() {
		rel := db.Relation(name)
		sc := rel.Schema()
		rel.Scan(func(t storage.Tuple) bool {
			tasks = append(tasks, task{rel: name, schema: sc, t: t})
			return true
		})
	}
	if len(tasks) < 2*workers {
		return New(db) // not enough work to amortize the fan-out
	}
	parts := make([]*Index, workers)
	parallel.For(workers, workers, func(b int) {
		px := &Index{
			db:       db,
			postings: make(map[string]map[postingKey]map[storage.TupleID]bool),
		}
		for i := b; i < len(tasks); i += workers {
			px.addTuple(tasks[i].rel, tasks[i].schema, tasks[i].t)
		}
		parts[b] = px
	})
	ix := parts[0]
	for _, px := range parts[1:] {
		for tok, byLoc := range px.postings {
			dst := ix.postings[tok]
			if dst == nil {
				ix.postings[tok] = byLoc
				ix.tokens++
				continue
			}
			for key, ids := range byLoc {
				di := dst[key]
				if di == nil {
					dst[key] = ids
					continue
				}
				for id := range ids {
					di[id] = true
				}
			}
		}
	}
	return ix
}

// Package invidx implements the inverted index of the précis architecture
// (paper §4): it associates each token appearing in the database's string
// attributes with its occurrences, each occurrence being a
// (relation, attribute) pair plus the ids of the tuples whose attribute
// value contains the token. Multi-word terms such as "Woody Allen" are
// resolved by intersecting per-word postings and verifying the phrase
// against the stored value.
package invidx

import (
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"

	"precis/internal/faultinject"
	"precis/internal/storage"
)

// Occurrence is one (relation, attribute) location of a term together with
// the matching tuple ids, exactly the k_i -> {(R_j, A_lj, Tids_lj)} mapping
// of the paper.
type Occurrence struct {
	Relation  string
	Attribute string
	TupleIDs  []storage.TupleID
}

// postingKey addresses one (relation, attribute) posting list.
type postingKey struct {
	rel, attr string
}

// Index is an inverted index over every string attribute of a database.
// It supports incremental maintenance as tuples are added and removed.
type Index struct {
	db       *storage.Database
	postings map[string]map[postingKey]map[storage.TupleID]bool
	synonyms map[string]string // alias (tokenized) -> canonical term
	tokens   int               // distinct tokens (== len(postings), kept for clarity)
}

// Tokenize lower-cases s and splits it into maximal runs of letters and
// digits. It is the single tokenizer used for both indexing and querying —
// every string attribute of every tuple passes through it at index build,
// and every query term at lookup and cache-key time — so it is written to
// allocate as little as possible: the output slice is sized by a counting
// pre-pass, tokens that are already lower-case are returned as zero-copy
// substrings of s, and tokens that need folding share one reusable buffer
// (stack-backed for typical token lengths).
func Tokenize(s string) []string {
	// Pass 1: count tokens so the result slice is allocated exactly once.
	n := 0
	in := false
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if !in {
				n++
				in = true
			}
		} else {
			in = false
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	// Pass 2: slice tokens out of s. lowerBuf only materializes (on the
	// stack, for tokens up to 48 bytes) when a token needs case folding.
	var arr [48]byte
	lowerBuf := arr[:0]
	start, needLower := -1, false
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start, needLower = i, false
			}
			if unicode.ToLower(r) != r {
				needLower = true
			}
			continue
		}
		if start >= 0 {
			if needLower {
				lowerBuf = appendLower(lowerBuf[:0], s[start:i])
				out = append(out, string(lowerBuf))
			} else {
				out = append(out, s[start:i])
			}
			start = -1
		}
	}
	if start >= 0 {
		if needLower {
			lowerBuf = appendLower(lowerBuf[:0], s[start:])
			out = append(out, string(lowerBuf))
		} else {
			out = append(out, s[start:])
		}
	}
	return out
}

// appendLower appends the lower-cased runes of tok to dst.
func appendLower(dst []byte, tok string) []byte {
	for _, r := range tok {
		dst = utf8.AppendRune(dst, unicode.ToLower(r))
	}
	return dst
}

// New builds an index over all string attributes of db.
func New(db *storage.Database) *Index {
	ix := &Index{
		db:       db,
		postings: make(map[string]map[postingKey]map[storage.TupleID]bool),
	}
	for _, name := range db.RelationNames() {
		rel := db.Relation(name)
		rel.Scan(func(t storage.Tuple) bool {
			ix.addTuple(name, rel.Schema(), t)
			return true
		})
	}
	return ix
}

// AddTuple indexes a newly inserted tuple of the named relation.
func (ix *Index) AddTuple(relation string, t storage.Tuple) {
	rel := ix.db.Relation(relation)
	if rel == nil {
		return
	}
	ix.addTuple(relation, rel.Schema(), t)
}

func (ix *Index) addTuple(relation string, schema *storage.Schema, t storage.Tuple) {
	for i, col := range schema.Columns {
		if col.Type != storage.TypeString {
			continue
		}
		v := t.Values[i]
		if v.IsNull() {
			continue
		}
		key := postingKey{relation, col.Name}
		for _, tok := range Tokenize(v.AsString()) {
			byLoc := ix.postings[tok]
			if byLoc == nil {
				byLoc = make(map[postingKey]map[storage.TupleID]bool)
				ix.postings[tok] = byLoc
				ix.tokens++
			}
			ids := byLoc[key]
			if ids == nil {
				ids = make(map[storage.TupleID]bool)
				byLoc[key] = ids
			}
			ids[t.ID] = true
		}
	}
}

// RemoveTuple un-indexes a tuple that is being deleted. The caller passes
// the tuple as it was stored (the index needs its values).
func (ix *Index) RemoveTuple(relation string, t storage.Tuple) {
	rel := ix.db.Relation(relation)
	if rel == nil {
		return
	}
	schema := rel.Schema()
	for i, col := range schema.Columns {
		if col.Type != storage.TypeString {
			continue
		}
		v := t.Values[i]
		if v.IsNull() {
			continue
		}
		key := postingKey{relation, col.Name}
		for _, tok := range Tokenize(v.AsString()) {
			byLoc := ix.postings[tok]
			if byLoc == nil {
				continue
			}
			ids := byLoc[key]
			if ids == nil {
				continue
			}
			delete(ids, t.ID)
			if len(ids) == 0 {
				delete(byLoc, key)
			}
			if len(byLoc) == 0 {
				delete(ix.postings, tok)
				ix.tokens--
			}
		}
	}
}

// NumTokens returns the number of distinct indexed tokens.
func (ix *Index) NumTokens() int { return ix.tokens }

// Lookup resolves a query term to its occurrences. A term may be a single
// word or a phrase ("Woody Allen"); phrases are verified against the stored
// attribute values with case-insensitive containment so that only genuine
// phrase matches survive. Occurrences are returned sorted by relation then
// attribute, with sorted tuple ids.
func (ix *Index) Lookup(term string) []Occurrence {
	words := Tokenize(term)
	if len(words) == 0 {
		return nil
	}
	first := ix.postings[words[0]]
	if first == nil {
		return nil
	}
	var out []Occurrence
	for key, ids := range first {
		matched := make([]storage.TupleID, 0, len(ids))
		if len(words) == 1 {
			for id := range ids {
				matched = append(matched, id)
			}
		} else {
			// Intersect with the remaining words' postings at the same
			// location, then verify the phrase in the stored value.
			candidate := ids
			ok := true
			for _, w := range words[1:] {
				byLoc := ix.postings[w]
				if byLoc == nil || byLoc[key] == nil {
					ok = false
					break
				}
				next := make(map[storage.TupleID]bool)
				other := byLoc[key]
				for id := range candidate {
					if other[id] {
						next[id] = true
					}
				}
				candidate = next
				if len(candidate) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			rel := ix.db.Relation(key.rel)
			ci := rel.Schema().ColumnIndex(key.attr)
			needle := strings.ToLower(term)
			for id := range candidate {
				t, found := rel.Get(id)
				if !found {
					continue
				}
				if strings.Contains(strings.ToLower(t.Values[ci].AsString()), needle) {
					matched = append(matched, id)
				}
			}
		}
		if len(matched) == 0 {
			continue
		}
		sort.Slice(matched, func(i, j int) bool { return matched[i] < matched[j] })
		out = append(out, Occurrence{Relation: key.rel, Attribute: key.attr, TupleIDs: matched})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Relation != out[j].Relation {
			return out[i].Relation < out[j].Relation
		}
		return out[i].Attribute < out[j].Attribute
	})
	return out
}

// LookupAll resolves each term of a précis query Q = {k1, ..., km} and
// returns the occurrence lists keyed by term. Terms with no occurrences map
// to a nil slice so callers can report unmatched tokens.
func (ix *Index) LookupAll(terms []string) map[string][]Occurrence {
	out := make(map[string][]Occurrence, len(terms))
	for _, term := range terms {
		out[term] = ix.Lookup(term)
	}
	return out
}

// Relations returns the distinct relation names across occurrences, sorted.
func Relations(occs []Occurrence) []string {
	set := make(map[string]bool)
	for _, o := range occs {
		set[o.Relation] = true
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// DocFrequency returns the number of distinct tuples (across all relations
// and attributes) containing the token — the df statistic of IR-style
// relevance ranking.
func (ix *Index) DocFrequency(token string) int {
	words := Tokenize(token)
	if len(words) != 1 {
		return 0
	}
	byLoc := ix.postings[words[0]]
	if byLoc == nil {
		return 0
	}
	// A tuple may match in several attributes; count it once per relation
	// via (relation, id) identity. Tuple ids are database-unique, so the id
	// alone suffices.
	seen := make(map[storage.TupleID]bool)
	for _, ids := range byLoc {
		for id := range ids {
			seen[id] = true
		}
	}
	return len(seen)
}

// AddSynonym declares that queries for alias should also match occurrences
// of canonical — the §5.1 synonym problem ("W. Allen" and "Woody Allen"
// denoting the same person). The paper treats full reference reconciliation
// as orthogonal (citing [19, 20]); this hook lets a deployment plug the
// output of such a tool into the index. Synonyms apply at query time only
// and may chain one level (alias -> canonical); aliases are case-folded
// through the standard tokenizer.
func (ix *Index) AddSynonym(alias, canonical string) {
	key := synonymKey(alias)
	if key == "" {
		return
	}
	if ix.synonyms == nil {
		ix.synonyms = make(map[string]string)
	}
	ix.synonyms[key] = canonical
}

// Synonyms returns the registered (alias, canonical) pairs sorted by
// alias. Aliases come back in their tokenized key form, which AddSynonym
// maps to itself — so persisting the pairs and replaying them through
// AddSynonym reconstructs an identical synonym table.
func (ix *Index) Synonyms() [][2]string {
	if len(ix.synonyms) == 0 {
		return nil
	}
	out := make([][2]string, 0, len(ix.synonyms))
	for alias, canonical := range ix.synonyms {
		out = append(out, [2]string{alias, canonical})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// synonymKey canonicalizes an alias for lookup.
func synonymKey(term string) string {
	return strings.Join(Tokenize(term), " ")
}

// expandTerm returns the terms a query term stands for: itself plus its
// registered canonical form, if any.
func (ix *Index) expandTerm(term string) []string {
	out := []string{term}
	if canonical, ok := ix.synonyms[synonymKey(term)]; ok {
		out = append(out, canonical)
	}
	return out
}

// LookupExpanded is Lookup with synonym expansion: occurrences of the term
// and of its canonical form are merged (deduplicated per relation and
// attribute, ids re-sorted).
//
// The probe has no error return, so only Panic and Delay fault rules apply
// at its injection site; the engine's worker-pool panic isolation turns an
// injected panic here into ErrInternal rather than a process crash.
func (ix *Index) LookupExpanded(term string) []Occurrence {
	_ = faultinject.Fire(faultinject.SiteIndexProbe)
	terms := ix.expandTerm(term)
	if len(terms) == 1 {
		return ix.Lookup(term)
	}
	merged := make(map[postingKey]map[storage.TupleID]bool)
	for _, t := range terms {
		for _, occ := range ix.Lookup(t) {
			key := postingKey{occ.Relation, occ.Attribute}
			ids := merged[key]
			if ids == nil {
				ids = make(map[storage.TupleID]bool)
				merged[key] = ids
			}
			for _, id := range occ.TupleIDs {
				ids[id] = true
			}
		}
	}
	var out []Occurrence
	for key, ids := range merged {
		occ := Occurrence{Relation: key.rel, Attribute: key.attr}
		for id := range ids {
			occ.TupleIDs = append(occ.TupleIDs, id)
		}
		sort.Slice(occ.TupleIDs, func(i, j int) bool { return occ.TupleIDs[i] < occ.TupleIDs[j] })
		out = append(out, occ)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Relation != out[j].Relation {
			return out[i].Relation < out[j].Relation
		}
		return out[i].Attribute < out[j].Attribute
	})
	return out
}

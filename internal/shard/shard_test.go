package shard

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"precis/internal/invidx"
	"precis/internal/storage"
)

// testDB builds a two-relation database with n tuples in each.
func testDB(t *testing.T, n int) *storage.Database {
	t.Helper()
	db := storage.NewDatabase("test")
	db.MustCreateRelation(storage.MustSchema("A", "id",
		storage.Column{Name: "id", Type: storage.TypeInt},
		storage.Column{Name: "name", Type: storage.TypeString}))
	db.MustCreateRelation(storage.MustSchema("B", "id",
		storage.Column{Name: "id", Type: storage.TypeInt},
		storage.Column{Name: "aid", Type: storage.TypeInt}))
	if err := db.AddForeignKey(storage.ForeignKey{FromRelation: "B", FromColumn: "aid", ToRelation: "A", ToColumn: "id"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := db.Insert("A", storage.Int(int64(i)), storage.String("alpha beta")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := db.Insert("B", storage.Int(int64(i)), storage.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestHashPartitioner(t *testing.T) {
	if _, err := NewHashPartitioner(0); err == nil {
		t.Fatal("shard count 0 accepted")
	}
	p, err := NewHashPartitioner(4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "hash" || p.Shards() != 4 {
		t.Fatalf("got %s/%d", p.Name(), p.Shards())
	}
	for id := storage.TupleID(1); id < 100; id++ {
		if got, want := p.Owner(id), int(uint64(id)%4); got != want {
			t.Fatalf("Owner(%d) = %d, want %d", id, got, want)
		}
	}
	off, stride := p.Stride(3)
	if off != 3 || stride != 4 {
		t.Fatalf("Stride(3) = (%d,%d), want (3,4)", off, stride)
	}
}

func TestRangePartitioner(t *testing.T) {
	if _, err := NewRangePartitioner([]storage.TupleID{5, 5}); err == nil {
		t.Fatal("non-increasing bounds accepted")
	}
	if _, err := NewRangePartitioner([]storage.TupleID{0}); err == nil {
		t.Fatal("non-positive bound accepted")
	}
	p, err := NewRangePartitioner([]storage.TupleID{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", p.Shards())
	}
	cases := map[storage.TupleID]int{1: 0, 9: 0, 10: 1, 19: 1, 20: 2, 1000: 2}
	for id, want := range cases {
		if got := p.Owner(id); got != want {
			t.Fatalf("Owner(%d) = %d, want %d", id, got, want)
		}
	}
}

func TestEqualCountBounds(t *testing.T) {
	db := testDB(t, 50) // ids 1..100
	bounds := EqualCountBounds(db, 4)
	if len(bounds) != 3 {
		t.Fatalf("got %d bounds, want 3", len(bounds))
	}
	p, err := NewRangePartitioner(bounds)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for _, rel := range db.RelationNames() {
		db.Relation(rel).Scan(func(tu storage.Tuple) bool {
			counts[p.Owner(tu.ID)]++
			return true
		})
	}
	for i, c := range counts {
		if c < 20 || c > 30 {
			t.Fatalf("shard %d holds %d of 100 tuples; want ~25 (all: %v)", i, c, counts)
		}
	}
	// Empty database: trivial strictly-increasing split.
	empty := storage.NewDatabase("empty")
	if _, err := NewRangePartitioner(EqualCountBounds(empty, 4)); err != nil {
		t.Fatalf("empty-db bounds invalid: %v", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := LoadManifest(dir); err != nil || ok {
		t.Fatalf("fresh dir: ok=%t err=%v, want false/nil", ok, err)
	}
	rp, _ := NewRangePartitioner([]storage.TupleID{7, 19})
	for _, p := range []Partitioner{mustHash(t, 3), rp} {
		if err := SaveManifest(dir, ManifestFor(p)); err != nil {
			t.Fatal(err)
		}
		m, ok, err := LoadManifest(dir)
		if err != nil || !ok {
			t.Fatalf("load: ok=%t err=%v", ok, err)
		}
		back, err := m.Build()
		if err != nil {
			t.Fatal(err)
		}
		if back.Name() != p.Name() || back.Shards() != p.Shards() {
			t.Fatalf("round trip changed %s/%d to %s/%d", p.Name(), p.Shards(), back.Name(), back.Shards())
		}
		for id := storage.TupleID(1); id < 50; id++ {
			if back.Owner(id) != p.Owner(id) {
				t.Fatalf("%s: Owner(%d) changed across round trip", p.Name(), id)
			}
		}
	}
	// Corrupt manifest → error, not silent fresh start.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadManifest(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt manifest: %v", err)
	}
}

func mustHash(t *testing.T, n int) *HashPartitioner {
	t.Helper()
	p, err := NewHashPartitioner(n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPartitionDisjointCover(t *testing.T) {
	db := testDB(t, 25)
	for _, p := range []Partitioner{mustHash(t, 3), rangeOver(t, db, 3)} {
		parts, err := Partition(db, p)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[storage.TupleID]int)
		total := 0
		for i, sdb := range parts {
			if got := sdb.NextTupleID(); p.Name() == "range" && got != db.NextTupleID() {
				t.Fatalf("%s shard %d NextTupleID %d, want %d", p.Name(), i, got, db.NextTupleID())
			}
			if sdb.NumRelations() != db.NumRelations() {
				t.Fatalf("shard %d has %d relations, want %d", i, sdb.NumRelations(), db.NumRelations())
			}
			for _, rel := range sdb.RelationNames() {
				sdb.Relation(rel).Scan(func(tu storage.Tuple) bool {
					if prev, dup := seen[tu.ID]; dup {
						t.Fatalf("tuple %d on shards %d and %d", tu.ID, prev, i)
					}
					seen[tu.ID] = i
					if own := p.Owner(tu.ID); own != i {
						t.Fatalf("tuple %d on shard %d but owned by %d", tu.ID, i, own)
					}
					total++
					return true
				})
			}
		}
		if total != db.TotalTuples() {
			t.Fatalf("%s: shards hold %d tuples, original holds %d", p.Name(), total, db.TotalTuples())
		}
	}
}

func rangeOver(t *testing.T, db *storage.Database, n int) *RangePartitioner {
	t.Helper()
	p, err := NewRangePartitioner(EqualCountBounds(db, n))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPartitionStride: hash shards allocate only ids they own.
func TestPartitionStride(t *testing.T) {
	db := testDB(t, 10)
	p := mustHash(t, 4)
	parts, err := Partition(db, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, sdb := range parts {
		id, err := sdb.Insert("A", storage.Int(999), storage.String("x"))
		if err != nil {
			t.Fatal(err)
		}
		if own := p.Owner(id); own != i {
			t.Fatalf("shard %d allocated id %d owned by shard %d", i, id, own)
		}
		if id < db.NextTupleID() {
			t.Fatalf("shard %d allocated id %d below the replicated watermark %d", i, id, db.NextTupleID())
		}
	}
}

// TestMergeOccurrences: scattering a lookup over partitioned indexes and
// merging must equal the single-index lookup, byte for byte.
func TestMergeOccurrences(t *testing.T) {
	db := testDB(t, 40)
	want := invidx.New(db).LookupExpanded("alpha")
	if len(want) == 0 {
		t.Fatal("test term missing from index")
	}
	for _, n := range []int{1, 2, 4, 8} {
		parts, err := Partition(db, mustHash(t, n))
		if err != nil {
			t.Fatal(err)
		}
		per := make([][]invidx.Occurrence, n)
		for i, sdb := range parts {
			per[i] = invidx.New(sdb).LookupExpanded("alpha")
		}
		if got := MergeOccurrences(per); !reflect.DeepEqual(got, want) {
			t.Fatalf("%d shards: merged occurrences differ\n got %+v\nwant %+v", n, got, want)
		}
	}
	// A term that matches nothing merges to the same empty result.
	if got := MergeOccurrences([][]invidx.Occurrence{nil, nil}); len(got) != 0 {
		t.Fatalf("empty parts merged to %+v", got)
	}
}

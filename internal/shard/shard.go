// Package shard partitions a précis database across N embedded engines and
// executes the result-database generator's fetch plan with scatter/gather:
// every generated SELECT fans out to the shards that can own matching
// tuples and the per-shard results are merged back in exactly the order a
// single engine would have emitted them. The coordinator (the root precis
// package) keeps the whole pipeline — index lookup, schema generation, the
// Figure 5 apply loop, budget accounting, caching, narrative synthesis —
// and only the data-volume-bound tuple fetches are distributed, so a
// sharded answer is byte-identical to the single-engine answer for every
// shard count, worker-pool size, and retrieval strategy.
//
// Determinism rests on three invariants:
//
//  1. Ownership is a pure function of the tuple id (hash or range), so a
//     tuple lives on exactly one shard and every id list merged across
//     shards is disjoint.
//  2. Statements whose WHERE carries a top-level rowid predicate are merged
//     by predicate-list position (sqlx.RowIDOrder — the single engine's
//     visit order, which is weight-ordered for seed fetches); all other
//     plans emit ascending tuple ids on every shard, so a sorted merge
//     reproduces the single-engine order.
//  3. Per-shard LIMITs over-fetch: each shard applies the statement's
//     limit locally, and since the global first-limit rows' per-shard
//     subsets are prefixes of each shard's emission, the merged prefix is
//     exact.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"precis/internal/invidx"
	"precis/internal/storage"
)

// Partitioner maps every tuple id to the shard that owns it. Ownership
// must be a pure function of the id — mutation routing and query merging
// both rely on asking the same question at different times and getting the
// same answer.
type Partitioner interface {
	// Name identifies the partitioning scheme ("hash" or "range") for the
	// manifest and the stats API.
	Name() string
	// Shards returns the shard count N.
	Shards() int
	// Owner returns the owning shard index in [0, Shards()) for id.
	Owner(id storage.TupleID) int
}

// strider is implemented by partitioners whose ownership is a congruence
// class of the id, letting each shard allocate locally (Database.Insert
// with SetIDStride) without coordination.
type strider interface {
	Stride(shard int) (offset, stride storage.TupleID)
}

// HashPartitioner assigns tuple id to shard id mod N — the default scheme.
// Because ownership is a residue class, each shard can allocate its own
// ids with a strided NextTupleID and stay globally unique.
type HashPartitioner struct{ n int }

// NewHashPartitioner builds a mod-N hash partitioner. n must be >= 1.
func NewHashPartitioner(n int) (*HashPartitioner, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count must be >= 1, got %d", n)
	}
	return &HashPartitioner{n: n}, nil
}

// Name implements Partitioner.
func (p *HashPartitioner) Name() string { return "hash" }

// Shards implements Partitioner.
func (p *HashPartitioner) Shards() int { return p.n }

// Owner implements Partitioner.
func (p *HashPartitioner) Owner(id storage.TupleID) int {
	return int(uint64(id) % uint64(p.n))
}

// Stride implements strider: shard i owns ids ≡ i (mod N).
func (p *HashPartitioner) Stride(shard int) (offset, stride storage.TupleID) {
	return storage.TupleID(shard), storage.TupleID(p.n)
}

// RangePartitioner assigns contiguous id ranges to shards: shard i owns
// ids in [bounds[i-1], bounds[i]), with shard 0 owning everything below
// bounds[0] and the last shard owning the tail (including all ids ever
// allocated in the future — range partitioning trades balanced growth for
// locality).
type RangePartitioner struct {
	bounds []storage.TupleID // len = N-1, strictly increasing
}

// NewRangePartitioner builds a range partitioner from N-1 strictly
// increasing split points.
func NewRangePartitioner(bounds []storage.TupleID) (*RangePartitioner, error) {
	for i, b := range bounds {
		if b <= 0 {
			return nil, fmt.Errorf("shard: range bound %d must be positive, got %d", i, b)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("shard: range bounds must be strictly increasing (bound %d: %d <= %d)", i, b, bounds[i-1])
		}
	}
	return &RangePartitioner{bounds: append([]storage.TupleID(nil), bounds...)}, nil
}

// EqualCountBounds computes N-1 split points that divide db's existing
// tuples into N contiguous id ranges of near-equal cardinality. On an
// empty database the id space [1, N) is split trivially.
func EqualCountBounds(db *storage.Database, n int) []storage.TupleID {
	var ids []storage.TupleID
	for _, rel := range db.RelationNames() {
		db.Relation(rel).Scan(func(t storage.Tuple) bool {
			ids = append(ids, t.ID)
			return true
		})
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	bounds := make([]storage.TupleID, 0, n-1)
	var prev storage.TupleID
	for i := 1; i < n; i++ {
		var b storage.TupleID
		if len(ids) > 0 {
			b = ids[i*len(ids)/n]
		} else {
			b = storage.TupleID(i)
		}
		if b <= prev {
			b = prev + 1
		}
		bounds = append(bounds, b)
		prev = b
	}
	return bounds
}

// Name implements Partitioner.
func (p *RangePartitioner) Name() string { return "range" }

// Shards implements Partitioner.
func (p *RangePartitioner) Shards() int { return len(p.bounds) + 1 }

// Bounds returns the split points (for the manifest).
func (p *RangePartitioner) Bounds() []storage.TupleID {
	return append([]storage.TupleID(nil), p.bounds...)
}

// Owner implements Partitioner.
func (p *RangePartitioner) Owner(id storage.TupleID) int {
	return sort.Search(len(p.bounds), func(i int) bool { return id < p.bounds[i] })
}

// Partition splits db into one database per shard: every relation schema,
// every foreign key, and the next-tuple-id watermark are replicated to all
// shards (the schema catalog is tiny and global); each tuple lands on its
// owner. Join indexes are rebuilt per shard, and hash-partitioned shards
// get strided local id allocation. The source database is only read.
func Partition(db *storage.Database, p Partitioner) ([]*storage.Database, error) {
	n := p.Shards()
	out := make([]*storage.Database, n)
	for i := range out {
		sdb := storage.NewDatabase(db.Name())
		for _, rel := range db.RelationNames() {
			if _, err := sdb.CreateRelation(db.Relation(rel).Schema()); err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
		}
		sdb.SetForeignKeys(db.ForeignKeys())
		out[i] = sdb
	}
	for _, rel := range db.RelationNames() {
		var insertErr error
		db.Relation(rel).Scan(func(t storage.Tuple) bool {
			owner := p.Owner(t.ID)
			if owner < 0 || owner >= n {
				insertErr = fmt.Errorf("shard: partitioner placed tuple %d on shard %d of %d", t.ID, owner, n)
				return false
			}
			insertErr = out[owner].InsertWithID(rel, t.ID, t.Values...)
			return insertErr == nil
		})
		if insertErr != nil {
			return nil, insertErr
		}
	}
	for i, sdb := range out {
		sdb.SetNextTupleID(db.NextTupleID())
		if err := sdb.CreateJoinIndexes(); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if s, ok := p.(strider); ok {
			off, stride := s.Stride(i)
			if err := sdb.SetIDStride(off, stride); err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
		}
	}
	return out, nil
}

// ApplyStride re-applies strided local id allocation to a shard database
// (strides are not persisted, so the coordinator calls this after each
// shard recovers from its data directory). A no-op for partitioners that
// do not allocate by congruence class.
func ApplyStride(db *storage.Database, p Partitioner, shard int) error {
	s, ok := p.(strider)
	if !ok {
		return nil
	}
	off, stride := s.Stride(shard)
	return db.SetIDStride(off, stride)
}

// manifestName is the topology file written into a sharded data directory.
const manifestName = "shards.json"

// Manifest pins a sharded data directory's topology. Reopening with a
// different shard count or partitioning scheme would silently misroute
// every mutation, so OpenSharded refuses a mismatch instead.
type Manifest struct {
	// Shards is the shard count N.
	Shards int `json:"shards"`
	// Partitioner is the scheme name ("hash" or "range").
	Partitioner string `json:"partitioner"`
	// Bounds are the range partitioner's split points (absent for hash).
	Bounds []storage.TupleID `json:"bounds,omitempty"`
}

// ManifestFor describes p as a manifest.
func ManifestFor(p Partitioner) Manifest {
	m := Manifest{Shards: p.Shards(), Partitioner: p.Name()}
	if rp, ok := p.(*RangePartitioner); ok {
		m.Bounds = rp.Bounds()
	}
	return m
}

// Build reconstructs the partitioner a manifest describes.
func (m Manifest) Build() (Partitioner, error) {
	switch m.Partitioner {
	case "hash":
		return NewHashPartitioner(m.Shards)
	case "range":
		if len(m.Bounds) != m.Shards-1 {
			return nil, fmt.Errorf("shard: manifest has %d range bounds for %d shards", len(m.Bounds), m.Shards)
		}
		return NewRangePartitioner(m.Bounds)
	default:
		return nil, fmt.Errorf("shard: unknown partitioner %q in manifest", m.Partitioner)
	}
}

// SaveManifest writes the manifest atomically (temp file + rename) so a
// crash mid-write can never leave a torn topology file.
func SaveManifest(dir string, m Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, manifestName))
}

// LoadManifest reads the manifest from dir. ok is false when none exists
// (a fresh directory).
func LoadManifest(dir string) (m Manifest, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("shard: corrupt manifest in %s: %w", dir, err)
	}
	return m, true, nil
}

// ShardDir returns shard i's data directory under a sharded root.
func ShardDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%03d", i))
}

// MergeOccurrences merges per-shard inverted-index lookup results into the
// occurrence list a single index over the union of the shards would have
// returned: occurrences are unioned per (relation, attribute), ids sorted
// ascending (shards hold disjoint tuples, so concatenation has no
// duplicates), and the output sorted by relation then attribute — the
// exact order invidx.LookupExpanded produces.
func MergeOccurrences(parts [][]invidx.Occurrence) []invidx.Occurrence {
	type key struct{ rel, attr string }
	merged := make(map[key][]storage.TupleID)
	for _, part := range parts {
		for _, occ := range part {
			k := key{occ.Relation, occ.Attribute}
			merged[k] = append(merged[k], occ.TupleIDs...)
		}
	}
	out := make([]invidx.Occurrence, 0, len(merged))
	for k, ids := range merged {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out = append(out, invidx.Occurrence{Relation: k.rel, Attribute: k.attr, TupleIDs: ids})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Relation != out[j].Relation {
			return out[i].Relation < out[j].Relation
		}
		return out[i].Attribute < out[j].Attribute
	})
	return out
}

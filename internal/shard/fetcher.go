package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"precis/internal/faultinject"
	"precis/internal/obs"
	"precis/internal/sqlx"
	"precis/internal/storage"
)

// Metrics are the registry-backed shard counters one sharded engine shares
// across all of its queries' fetchers. All fields are nil-safe (obs
// counters no-op when nil), so an uninstrumented engine passes nil.
type Metrics struct {
	// Scatters counts statements fanned out (one per ExecStmt, whatever
	// the number of target shards).
	Scatters *obs.Counter
	// Queries[i] counts statements executed on shard i.
	Queries []*obs.Counter
	// Rows[i] counts rows shard i returned.
	Rows []*obs.Counter
}

// tally accumulates one shard's physical work during a single query. The
// fields are atomics because fetch tasks run on the generator's worker
// pool; the totals are read on the coordination goroutine after the
// generator returned.
type tally struct {
	queries atomic.Int64
	rows    atomic.Int64
	busy    atomic.Int64 // nanoseconds spent executing on this shard
}

// Fetcher executes the generator's SELECTs across shard engines —
// core.Fetcher's scatter/gather implementation. One Fetcher serves one
// query: it snapshots the shard databases at construction (the coordinator
// serializes queries against mutations, so the snapshot is stable) and
// tallies per-shard work for the query's trace.
//
// ExecStmt is safe for concurrent use. AccumulateStats and TotalStats are
// only called from the query's coordination goroutine.
type Fetcher struct {
	part    Partitioner
	engs    []*sqlx.Engine
	metrics *Metrics
	tallies []tally
	total   sqlx.Stats
}

// NewFetcher builds a per-query scatter/gather fetcher over the shard
// databases. m may be nil (uninstrumented engine).
func NewFetcher(part Partitioner, dbs []*storage.Database, m *Metrics) *Fetcher {
	engs := make([]*sqlx.Engine, len(dbs))
	for i, db := range dbs {
		engs[i] = sqlx.NewEngine(db)
	}
	return &Fetcher{part: part, engs: engs, metrics: m, tallies: make([]tally, len(dbs))}
}

// Database returns shard 0's database as the schema catalog. The generator
// only reads schemas and foreign keys from it — both replicated to every
// shard — never tuples.
func (f *Fetcher) Database() *storage.Database { return f.engs[0].Database() }

// AccumulateStats implements core.Fetcher; called serially from the apply
// phase.
func (f *Fetcher) AccumulateStats(s sqlx.Stats) { f.total.Add(s) }

// TotalStats returns the physical work accumulated via AccumulateStats.
func (f *Fetcher) TotalStats() sqlx.Stats { return f.total }

// ExecStmt scatters one generated SELECT and gathers a deterministic
// merge. Statements with a top-level rowid predicate route only to the
// shards owning the named ids; everything else fans out to all shards.
func (f *Fetcher) ExecStmt(st sqlx.Stmt) (*sqlx.Result, error) {
	sel, ok := st.(*sqlx.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("shard: scatter execution only supports SELECT, got %T", st)
	}
	if sel.Distinct || len(sel.OrderBy) > 0 || sel.Offset != 0 {
		return nil, fmt.Errorf("shard: scatter execution does not support DISTINCT/ORDER BY/OFFSET")
	}
	if err := faultinject.Fire(faultinject.SiteShardScatter); err != nil {
		return nil, fmt.Errorf("shard: scatter %s: %w", sel.Table, err)
	}
	f.metrics.scatters().Inc()

	rowIDs, routed := sqlx.RowIDOrder(sel.Where)
	targets := f.targets(rowIDs, routed)

	results := make([]*sqlx.Result, len(targets))
	errs := make([]error, len(targets))
	if len(targets) == 1 {
		results[0], errs[0] = f.runOn(targets[0], sel)
	} else if len(targets) > 1 {
		var wg sync.WaitGroup
		for ti := range targets {
			wg.Add(1)
			go func(ti int) {
				defer wg.Done()
				results[ti], errs[ti] = f.runOn(targets[ti], sel)
			}(ti)
		}
		wg.Wait()
	}
	for ti, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", targets[ti], err)
		}
	}
	if err := faultinject.Fire(faultinject.SiteShardGather); err != nil {
		return nil, fmt.Errorf("shard: gather %s: %w", sel.Table, err)
	}
	if len(targets) == 1 {
		// Single owner: the shard's result is already in final order.
		return results[0], nil
	}
	return f.merge(sel, rowIDs, routed, results), nil
}

// targets resolves the shard set a statement must visit: the owners of the
// rowid predicate's ids (in ascending shard order) when one exists, all
// shards otherwise.
func (f *Fetcher) targets(rowIDs []storage.TupleID, routed bool) []int {
	n := len(f.engs)
	if !routed {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	seen := make([]bool, n)
	var targets []int
	for _, id := range rowIDs {
		if o := f.part.Owner(id); o >= 0 && o < n && !seen[o] {
			seen[o] = true
			targets = append(targets, o)
		}
	}
	sort.Ints(targets)
	return targets
}

// runOn executes the statement on one shard, tallying its work.
func (f *Fetcher) runOn(shard int, sel *sqlx.SelectStmt) (*sqlx.Result, error) {
	start := time.Now()
	res, err := f.engs[shard].ExecStmt(sel)
	t := &f.tallies[shard]
	t.busy.Add(time.Since(start).Nanoseconds())
	t.queries.Add(1)
	if res != nil {
		t.rows.Add(int64(len(res.Rows)))
		if f.metrics != nil {
			f.metrics.shardRows(shard).Add(uint64(len(res.Rows)))
		}
	}
	if f.metrics != nil {
		f.metrics.shardQueries(shard).Inc()
	}
	return res, err
}

// merge combines per-shard results into the row order a single engine
// would emit. Statements served from a rowid predicate are merged by
// predicate-list position (each id exists on at most one shard); all other
// plans emit ascending tuple ids per shard, so a global ascending sort
// reproduces the single-engine order. The statement's LIMIT then bounds
// the merged prefix — exact, because each shard over-fetched up to the
// full limit locally.
func (f *Fetcher) merge(sel *sqlx.SelectStmt, rowIDs []storage.TupleID, routed bool, results []*sqlx.Result) *sqlx.Result {
	out := &sqlx.Result{}
	for _, r := range results {
		if r == nil {
			continue
		}
		out.Stats.Add(r.Stats)
		if out.Columns == nil {
			out.Columns = r.Columns
		}
	}
	if out.Columns == nil {
		out.Columns = sel.Columns
	}
	if routed {
		rows := make(map[storage.TupleID][]storage.Value)
		for _, r := range results {
			if r == nil {
				continue
			}
			for i, id := range r.RowIDs {
				rows[id] = r.Rows[i]
			}
		}
		for _, id := range rowIDs {
			row, ok := rows[id]
			if !ok {
				continue
			}
			out.Rows = append(out.Rows, row)
			out.RowIDs = append(out.RowIDs, id)
			if sel.Limit >= 0 && len(out.Rows) >= sel.Limit {
				break
			}
		}
		return out
	}
	for _, r := range results {
		if r == nil {
			continue
		}
		out.Rows = append(out.Rows, r.Rows...)
		out.RowIDs = append(out.RowIDs, r.RowIDs...)
	}
	sort.Sort(&rowSorter{rows: out.Rows, ids: out.RowIDs})
	if sel.Limit >= 0 && len(out.Rows) > sel.Limit {
		out.Rows = out.Rows[:sel.Limit]
		out.RowIDs = out.RowIDs[:sel.Limit]
	}
	return out
}

// rowSorter sorts rows and their ids together by ascending tuple id.
type rowSorter struct {
	rows [][]storage.Value
	ids  []storage.TupleID
}

func (s *rowSorter) Len() int           { return len(s.ids) }
func (s *rowSorter) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *rowSorter) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
}

// RecordTrace appends one back-dated step per shard that did work during
// this query ("shard:i" with the rows it returned, the statements it ran,
// and its busy time) to the trace — called on the coordination goroutine
// inside the db_gen span, after the generator returned.
func (f *Fetcher) RecordTrace(tr *obs.Trace) {
	for i := range f.tallies {
		t := &f.tallies[i]
		q := t.queries.Load()
		if q == 0 {
			continue
		}
		tr.RecordStep(fmt.Sprintf("shard:%d", i), time.Duration(t.busy.Load()), int(t.rows.Load()), int(q))
	}
}

// scatters returns the scatter counter (nil-safe).
func (m *Metrics) scatters() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Scatters
}

// shardQueries returns shard i's statement counter (nil-safe).
func (m *Metrics) shardQueries(i int) *obs.Counter {
	if m == nil || i >= len(m.Queries) {
		return nil
	}
	return m.Queries[i]
}

// shardRows returns shard i's row counter (nil-safe).
func (m *Metrics) shardRows(i int) *obs.Counter {
	if m == nil || i >= len(m.Rows) {
		return nil
	}
	return m.Rows[i]
}

package baseline

import (
	"math"
	"sort"

	"precis/internal/invidx"
	"precis/internal/schemagraph"
	"precis/internal/storage"
)

// IR-style answer-relevance ranking, the §2 alternative to join-count
// ranking (Hristidis, Gravano, Papakonstantinou — "Efficient IR-Style
// Keyword Search over Relational Databases", the paper's [9]). Matches are
// scored with a standard tf·idf formula with length normalization:
//
//	score(t, v) = Σ_w  tf(w, v) · ln(1 + N / df(w)) / (1 + ln(len(v)))
//
// over the query's words w, where N is the database's tuple count and df
// the number of tuples containing w.

// ScoredMatch is an attribute-pair match with its relevance score.
type ScoredMatch struct {
	Match
	Score float64
}

// RankedAttributePairSearch runs AttributePairSearch and orders the matches
// by descending tf·idf relevance (ties: the deterministic match order).
func RankedAttributePairSearch(db *storage.Database, ix *invidx.Index, terms []string) []ScoredMatch {
	matches := AttributePairSearch(db, ix, terms)
	n := db.TotalTuples()
	out := make([]ScoredMatch, 0, len(matches))
	for _, m := range matches {
		out = append(out, ScoredMatch{Match: m, Score: scoreValue(ix, n, m.Term, m.Value)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// scoreValue computes tf·idf of the term's words within one attribute value.
func scoreValue(ix *invidx.Index, totalTuples int, term, value string) float64 {
	valueWords := invidx.Tokenize(value)
	if len(valueWords) == 0 {
		return 0
	}
	tf := make(map[string]int, len(valueWords))
	for _, w := range valueWords {
		tf[w]++
	}
	var score float64
	for _, w := range invidx.Tokenize(term) {
		f := tf[w]
		if f == 0 {
			continue
		}
		df := ix.DocFrequency(w)
		if df == 0 {
			continue
		}
		idf := math.Log(1 + float64(totalTuples)/float64(df))
		score += float64(f) * idf
	}
	return score / (1 + math.Log(float64(len(valueWords))))
}

// ScoredTree is a joined tuple tree with a combined relevance score.
type ScoredTree struct {
	TupleTree
	Score float64
}

// RankedTupleTreeSearch runs TupleTreeSearch and re-ranks trees by the [9]
// combination: the sum of the tree tuples' IR relevance divided by the tree
// size, so tight trees with relevant tuples rank first.
func RankedTupleTreeSearch(db *storage.Database, g *schemagraph.Graph, ix *invidx.Index, terms []string, maxJoins, topK int) ([]ScoredTree, error) {
	trees, err := TupleTreeSearch(db, g, ix, terms, maxJoins, topK)
	if err != nil {
		return nil, err
	}
	n := db.TotalTuples()
	out := make([]ScoredTree, 0, len(trees))
	for _, tr := range trees {
		ir := 0.0
		for i, rel := range tr.Relations {
			if rel == "" {
				continue
			}
			r := db.Relation(rel)
			if r == nil {
				continue
			}
			t, ok := r.Get(tr.TupleIDs[i])
			if !ok {
				continue
			}
			for ci, col := range r.Schema().Columns {
				if col.Type != storage.TypeString || t.Values[ci].IsNull() {
					continue
				}
				for _, term := range terms {
					ir += scoreValue(ix, n, term, t.Values[ci].AsString())
				}
			}
		}
		out = append(out, ScoredTree{TupleTree: tr, Score: ir / float64(1+tr.Joins)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}

package baseline

import (
	"strings"
	"testing"

	"precis/internal/dataset"
	"precis/internal/invidx"
)

func TestNetworkSearchSingleTerm(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	trees, err := NetworkSearch(db, g, ix, []string{"Match Point"}, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 || trees[0].Joins != 0 || trees[0].Relations[0] != "MOVIE" {
		t.Fatalf("trees = %+v", trees)
	}
}

func TestNetworkSearchTwoTerms(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	trees, err := NetworkSearch(db, g, ix, []string{"Woody Allen", "Match Point"}, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Fatal("no trees")
	}
	if trees[0].Joins != 1 {
		t.Errorf("best joins = %d (%s)", trees[0].Joins, trees[0])
	}
	for i := 1; i < len(trees); i++ {
		if trees[i].Joins < trees[i-1].Joins {
			t.Fatalf("not ascending: %+v", trees)
		}
	}
}

// TestNetworkSearchThreeTerms is what the pairwise path search cannot do:
// connect a director, an actress and a movie through one tree.
func TestNetworkSearchThreeTerms(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	trees, err := NetworkSearch(db, g, ix,
		[]string{"Woody Allen", "Scarlett Johansson", "Match Point"}, 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Fatal("no covering tree found")
	}
	// The tight tree: DIRECTOR[WA] - MOVIE[MP] - CAST - ACTOR[SJ], 3 joins.
	best := trees[0]
	if best.Joins != 3 {
		t.Errorf("best tree joins = %d (%s)", best.Joins, best)
	}
	joined := strings.Join(best.Relations, "-")
	for _, rel := range []string{"DIRECTOR", "MOVIE", "CAST", "ACTOR"} {
		if !strings.Contains(joined, rel) {
			t.Errorf("tree %s misses %s", joined, rel)
		}
	}
}

// TestNetworkSearchRepeatedRelation: two actors connected through one
// movie need ACTOR-CAST-MOVIE-CAST-ACTOR, with ACTOR and CAST repeated.
func TestNetworkSearchRepeatedRelation(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	// Scarlett Johansson and Jason Biggs both acted in Anything Else? No:
	// SJ in Match Point + Lost in Translation; Jason Biggs in Anything
	// Else; Woody Allen (actor) in Anything Else too. Use Woody + Biggs.
	trees, err := NetworkSearch(db, g, ix,
		[]string{"Jason Biggs", "Scarlett Johansson"}, 7, 50)
	if err != nil {
		t.Fatal(err)
	}
	// No shared movie: the only connection runs through the shared
	// director: ACTOR-CAST-MOVIE-DIRECTOR-MOVIE-CAST-ACTOR (7 nodes).
	found := false
	for _, tr := range trees {
		counts := map[string]int{}
		for _, rel := range tr.Relations {
			counts[rel]++
		}
		if counts["ACTOR"] == 2 && counts["CAST"] == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("no repeated-relation tree in %d trees", len(trees))
	}
	// Two actors sharing a movie connect with 5 nodes: Woody Allen (actor)
	// and Jason Biggs both appear in Anything Else.
	trees, err = NetworkSearch(db, g, ix, []string{"Jason Biggs", "Woody Allen"}, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	shared := false
	for _, tr := range trees {
		counts := map[string]int{}
		for _, rel := range tr.Relations {
			counts[rel]++
		}
		if counts["CAST"] == 2 && counts["MOVIE"] == 1 {
			shared = true
		}
	}
	if !shared {
		t.Errorf("no shared-movie tree for co-actors in %d trees", len(trees))
	}
}

func TestNetworkSearchMisses(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	trees, err := NetworkSearch(db, g, ix, []string{"Woody Allen", "zzznothing"}, 4, 10)
	if err != nil || trees != nil {
		t.Errorf("trees = %v, err = %v", trees, err)
	}
	if _, err := NetworkSearch(db, g, ix, nil, 4, 10); err == nil {
		t.Error("empty terms accepted")
	}
}

func TestNetworkSearchTopK(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	trees, err := NetworkSearch(db, g, ix, []string{"woody", "comedy"}, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) > 3 {
		t.Errorf("topK violated: %d", len(trees))
	}
}

// TestNetworkSubsumesPathSearch: on two-term queries the network search
// finds at least the trees the pairwise search finds.
func TestNetworkSubsumesPathSearch(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	terms := []string{"Woody Allen", "Anything Else"}
	paths, err := TupleTreeSearch(db, g, ix, terms, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	nets, err := NetworkSearch(db, g, ix, terms, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) < len(paths) {
		t.Errorf("network search found %d trees, path search %d", len(nets), len(paths))
	}
}

package baseline

import (
	"fmt"
	"sort"

	"precis/internal/invidx"
	"precis/internal/schemagraph"
	"precis/internal/storage"
)

// TupleTree is one joined tuple tree: a set of tuples, one per relation on
// a join path, connecting an occurrence of the first term to an occurrence
// of the last. Joins counts the join edges (the DISCOVER ranking criterion:
// fewer joins rank higher).
type TupleTree struct {
	Relations []string          // the relation sequence of the join path
	TupleIDs  []storage.TupleID // one tuple per relation, parallel to Relations
	Joins     int
}

// String renders the tree as R1[id]⋈R2[id]⋈...
func (t TupleTree) String() string {
	s := ""
	for i, rel := range t.Relations {
		if i > 0 {
			s += " ⋈ "
		}
		s += fmt.Sprintf("%s[%d]", rel, t.TupleIDs[i])
	}
	return s
}

// TupleTreeSearch finds joined tuple trees connecting occurrences of the
// query terms (DISCOVER/DBXplorer semantics), ranked by ascending number of
// joins, capped at topK trees and join paths of at most maxJoins edges.
//
// For a single term the trees are the bare matching tuples (0 joins). For
// multi-term queries, trees connect an occurrence of terms[0] to an
// occurrence of each further term pairwise along schema-graph join paths;
// following DBXplorer we enumerate paths on the schema graph and then
// evaluate them on the data. Queries of more than two terms are answered by
// requiring each extra term to connect to the first term's tuple (a star of
// pairwise paths), which matches the common two-term evaluation setting.
func TupleTreeSearch(db *storage.Database, g *schemagraph.Graph, ix *invidx.Index, terms []string, maxJoins, topK int) ([]TupleTree, error) {
	if len(terms) == 0 {
		return nil, fmt.Errorf("baseline: no query terms")
	}
	if topK <= 0 {
		topK = 100
	}
	occs := make([][]invidx.Occurrence, len(terms))
	for i, term := range terms {
		occs[i] = ix.Lookup(term)
		if len(occs[i]) == 0 {
			return nil, nil // a missing term means no connecting tree
		}
	}

	if len(terms) == 1 {
		var out []TupleTree
		for _, o := range occs[0] {
			for _, id := range o.TupleIDs {
				out = append(out, TupleTree{Relations: []string{o.Relation}, TupleIDs: []storage.TupleID{id}})
				if len(out) >= topK {
					return out, nil
				}
			}
		}
		return out, nil
	}

	// Pairwise: connect terms[0] to each other term; merge trees sharing
	// the root tuple. For the benchmarked two-term case this is exactly
	// the DISCOVER candidate-network evaluation over path-shaped networks.
	var out []TupleTree
	for _, rootOcc := range occs[0] {
		for _, otherIdx := range indexesFrom(1, len(terms)) {
			for _, leafOcc := range occs[otherIdx] {
				paths := joinPaths(g, rootOcc.Relation, leafOcc.Relation, maxJoins)
				for _, path := range paths {
					trees := evaluatePath(db, path, rootOcc.TupleIDs, leafOcc.TupleIDs, topK-len(out))
					out = append(out, trees...)
					if len(out) >= topK {
						sortTrees(out)
						return out, nil
					}
				}
			}
		}
	}
	sortTrees(out)
	return out, nil
}

func indexesFrom(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func sortTrees(ts []TupleTree) {
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].Joins < ts[j].Joins })
}

// joinPaths enumerates acyclic join-edge paths from relation a to relation
// b on the schema graph, up to maxJoins edges, shortest first. A path of
// length 0 exists when a == b.
func joinPaths(g *schemagraph.Graph, a, b string, maxJoins int) [][]*schemagraph.JoinEdge {
	var out [][]*schemagraph.JoinEdge
	if a == b {
		out = append(out, nil)
	}
	type state struct {
		rel     string
		edges   []*schemagraph.JoinEdge
		visited map[string]bool
	}
	queue := []state{{rel: a, visited: map[string]bool{a: true}}}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if len(s.edges) >= maxJoins {
			continue
		}
		node := g.Relation(s.rel)
		if node == nil {
			continue
		}
		for _, e := range node.Out() {
			if s.visited[e.To] {
				continue
			}
			edges := append(append([]*schemagraph.JoinEdge(nil), s.edges...), e)
			if e.To == b {
				out = append(out, edges)
				continue
			}
			visited := make(map[string]bool, len(s.visited)+1)
			for k := range s.visited {
				visited[k] = true
			}
			visited[e.To] = true
			queue = append(queue, state{rel: e.To, edges: edges, visited: visited})
		}
	}
	return out
}

// evaluatePath instantiates a schema-level join path on the data: starting
// from the root tuple ids it follows each join edge via value matching and
// keeps the combinations whose final tuple is one of the leaf ids.
func evaluatePath(db *storage.Database, path []*schemagraph.JoinEdge, rootIDs, leafIDs []storage.TupleID, limit int) []TupleTree {
	if limit <= 0 {
		return nil
	}
	leafSet := make(map[storage.TupleID]bool, len(leafIDs))
	for _, id := range leafIDs {
		leafSet[id] = true
	}
	if len(path) == 0 {
		// Root and leaf in the same relation: a tree is a single tuple
		// matching both terms.
		var out []TupleTree
		for _, id := range rootIDs {
			if leafSet[id] {
				out = append(out, TupleTree{Relations: []string{""}, TupleIDs: []storage.TupleID{id}})
				if len(out) >= limit {
					break
				}
			}
		}
		return out
	}

	type partial struct {
		ids []storage.TupleID
	}
	frontier := make([]partial, 0, len(rootIDs))
	for _, id := range rootIDs {
		frontier = append(frontier, partial{ids: []storage.TupleID{id}})
	}
	rels := []string{path[0].From}
	for _, e := range path {
		rels = append(rels, e.To)
		from := db.Relation(e.From)
		to := db.Relation(e.To)
		if from == nil || to == nil {
			return nil
		}
		fi := from.Schema().ColumnIndex(e.FromCol)
		if fi < 0 {
			return nil
		}
		var next []partial
		for _, p := range frontier {
			t, ok := from.Get(p.ids[len(p.ids)-1])
			if !ok {
				continue
			}
			v := t.Values[fi]
			if v.IsNull() {
				continue
			}
			matches, err := to.Lookup(e.ToCol, v)
			if err != nil {
				continue
			}
			for _, mid := range matches {
				ids := append(append([]storage.TupleID(nil), p.ids...), mid)
				next = append(next, partial{ids: ids})
				// Guard against exponential blow-up on hub values.
				if len(next) > 64*limit {
					break
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			return nil
		}
	}

	var out []TupleTree
	for _, p := range frontier {
		if !leafSet[p.ids[len(p.ids)-1]] {
			continue
		}
		out = append(out, TupleTree{
			Relations: append([]string(nil), rels...),
			TupleIDs:  p.ids,
			Joins:     len(path),
		})
		if len(out) >= limit {
			break
		}
	}
	return out
}

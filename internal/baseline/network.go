package baseline

import (
	"fmt"
	"sort"
	"strings"

	"precis/internal/invidx"
	"precis/internal/schemagraph"
	"precis/internal/storage"
)

// Full DISCOVER-style candidate networks: schema-level trees whose nodes
// are relations, some annotated with a query term they must match, covering
// every term of the query. Unlike the pairwise path search of
// TupleTreeSearch, networks handle any number of terms and may repeat a
// relation (ACTOR—CAST—MOVIE—CAST—ACTOR connects two actors through one
// movie). Networks are enumerated smallest-first on the schema graph and
// then evaluated on the data; results rank by ascending join count.

// netNode is one relation node of a candidate network tree.
type netNode struct {
	rel      string
	term     int // index into the query terms, -1 for a free node
	children []*netNode
}

// clone deep-copies a tree.
func (n *netNode) clone() *netNode {
	out := &netNode{rel: n.rel, term: n.term}
	for _, c := range n.children {
		out.children = append(out.children, c.clone())
	}
	return out
}

// size counts nodes.
func (n *netNode) size() int {
	s := 1
	for _, c := range n.children {
		s += c.size()
	}
	return s
}

// covered accumulates term indexes present in the tree.
func (n *netNode) covered(into map[int]bool) {
	if n.term >= 0 {
		into[n.term] = true
	}
	for _, c := range n.children {
		c.covered(into)
	}
}

// minimal reports whether every leaf carries a term (DISCOVER's minimality
// condition: a free leaf adds joins without adding coverage).
func (n *netNode) minimal() bool {
	if len(n.children) == 0 {
		return n.term >= 0
	}
	for _, c := range n.children {
		if !c.minimal() {
			return false
		}
	}
	return true
}

// canon renders a canonical form for deduplication: children sorted by
// their own canonical forms.
func (n *netNode) canon() string {
	parts := make([]string, 0, len(n.children))
	for _, c := range n.children {
		parts = append(parts, c.canon())
	}
	sort.Strings(parts)
	return fmt.Sprintf("%s#%d(%s)", n.rel, n.term, strings.Join(parts, ","))
}

// flatten lists nodes pre-order.
func (n *netNode) flatten() []*netNode {
	out := []*netNode{n}
	for _, c := range n.children {
		out = append(out, c.flatten()...)
	}
	return out
}

// NetworkSearch finds joined tuple trees covering every query term through
// DISCOVER-style candidate networks of at most maxNodes relation nodes,
// returning at most topK trees ranked by ascending join count. It
// generalizes TupleTreeSearch to any number of terms.
func NetworkSearch(db *storage.Database, g *schemagraph.Graph, ix *invidx.Index, terms []string, maxNodes, topK int) ([]TupleTree, error) {
	if len(terms) == 0 {
		return nil, fmt.Errorf("baseline: no query terms")
	}
	if topK <= 0 {
		topK = 100
	}
	if maxNodes <= 0 {
		maxNodes = 5
	}
	// Resolve term occurrences; a term with none means no covering tree.
	termIDs := make([]map[string][]storage.TupleID, len(terms))
	for i, term := range terms {
		occs := ix.Lookup(term)
		if len(occs) == 0 {
			return nil, nil
		}
		byRel := map[string][]storage.TupleID{}
		for _, o := range occs {
			byRel[o.Relation] = append(byRel[o.Relation], o.TupleIDs...)
		}
		for rel := range byRel {
			ids := byRel[rel]
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			byRel[rel] = dedupeIDsBaseline(ids)
		}
		termIDs[i] = byRel
	}

	networks := enumerateNetworks(g, termIDs, maxNodes)
	var out []TupleTree
	ev := &netEvaluator{db: db, g: g, termIDs: termIDs}
	for _, nw := range networks {
		trees := ev.evaluate(nw, topK-len(out))
		out = append(out, trees...)
		if len(out) >= topK {
			break
		}
	}
	sortTrees(out)
	return out, nil
}

// enumerateNetworks grows candidate networks breadth-first: seeds are
// single term-annotated nodes of terms[0]; expansion either attaches a new
// node (free or term-annotated) via a schema join edge, or annotates
// nothing further. Complete networks (all terms covered, minimal) are
// collected smallest-first.
func enumerateNetworks(g *schemagraph.Graph, termIDs []map[string][]storage.TupleID, maxNodes int) []*netNode {
	adjacency := map[string][]string{}
	for _, e := range g.JoinEdges() {
		adjacency[e.From] = append(adjacency[e.From], e.To)
	}
	for rel := range adjacency {
		sort.Strings(adjacency[rel])
		adjacency[rel] = dedupeSorted(adjacency[rel])
	}
	termRels := make([][]string, len(termIDs))
	for i, byRel := range termIDs {
		for rel := range byRel {
			termRels[i] = append(termRels[i], rel)
		}
		sort.Strings(termRels[i])
	}

	var complete []*netNode
	seen := map[string]bool{}
	frontier := []*netNode{}
	for _, rel := range termRels[0] {
		frontier = append(frontier, &netNode{rel: rel, term: 0})
	}

	const maxNetworks = 64
	for len(frontier) > 0 && len(complete) < maxNetworks {
		var next []*netNode
		for _, nw := range frontier {
			key := nw.canon()
			if seen[key] {
				continue
			}
			seen[key] = true
			cov := map[int]bool{}
			nw.covered(cov)
			if len(cov) == len(termIDs) && nw.minimal() {
				complete = append(complete, nw)
				continue // grown supersets of a complete network add nothing
			}
			if nw.size() >= maxNodes {
				continue
			}
			// Budget prune: every uncovered term needs either a new node or
			// an annotatable free node already in the tree.
			uncovered := len(termIDs) - len(cov)
			annotatable := 0
			for _, at := range nw.flatten() {
				if at.term >= 0 {
					continue
				}
				for t := range termIDs {
					if !cov[t] {
						if _, ok := termIDs[t][at.rel]; ok {
							annotatable++
							break
						}
					}
				}
			}
			if uncovered > (maxNodes-nw.size())+annotatable {
				continue
			}
			// Expand: attach a new node to every existing node via every
			// adjacent relation; the new node is either free or annotated
			// with a still-uncovered term that occurs in that relation.
			for idx, at := range nw.flatten() {
				for _, adj := range adjacency[at.rel] {
					// Free node.
					next = append(next, attach(nw, idx, &netNode{rel: adj, term: -1}))
					// Term nodes.
					for t := range termIDs {
						if cov[t] {
							continue
						}
						if _, ok := termIDs[t][adj]; ok {
							next = append(next, attach(nw, idx, &netNode{rel: adj, term: t}))
						}
					}
				}
				// A node may itself cover an additional term (one tuple
				// containing several terms is handled at evaluation).
				if at.term >= 0 {
					continue
				}
				for t := range termIDs {
					if cov[t] {
						continue
					}
					if _, ok := termIDs[t][at.rel]; ok {
						annotated := nw.clone()
						annotated.flatten()[idx].term = t
						next = append(next, annotated)
					}
				}
			}
		}
		frontier = next
	}
	return complete
}

// attach clones the tree and adds child under the idx-th node (pre-order).
func attach(nw *netNode, idx int, child *netNode) *netNode {
	out := nw.clone()
	out.flatten()[idx].children = append(out.flatten()[idx].children, child)
	return out
}

// netEvaluator instantiates a candidate network on the data.
type netEvaluator struct {
	db      *storage.Database
	g       *schemagraph.Graph
	termIDs []map[string][]storage.TupleID
}

// evaluate returns up to limit tuple trees matching the network.
func (ev *netEvaluator) evaluate(nw *netNode, limit int) []TupleTree {
	if limit <= 0 {
		return nil
	}
	var out []TupleTree
	var assign func(nodes []*netNode, tuples []storage.TupleID) bool
	flat := nw.flatten()

	// candidates returns the tuple ids admissible for one node given the
	// tuple already bound to its parent (or all term tuples for the root).
	candidates := func(n *netNode, parent *netNode, parentID storage.TupleID) []storage.TupleID {
		var base []storage.TupleID
		if parent == nil {
			base = ev.termIDs[n.term][n.rel]
		} else {
			base = ev.joinFrom(parent.rel, parentID, n.rel)
		}
		if n.term < 0 || parent == nil {
			return base
		}
		want := map[storage.TupleID]bool{}
		for _, id := range ev.termIDs[n.term][n.rel] {
			want[id] = true
		}
		var out []storage.TupleID
		for _, id := range base {
			if want[id] {
				out = append(out, id)
			}
		}
		return out
	}

	parentOf := parentIndex(nw)
	assign = func(nodes []*netNode, tuples []storage.TupleID) bool {
		i := len(tuples)
		if i == len(nodes) {
			// Distinct tuples per node keep trees informative.
			seen := map[storage.TupleID]bool{}
			for _, id := range tuples {
				if seen[id] {
					return true
				}
				seen[id] = true
			}
			rels := make([]string, len(nodes))
			for j, n := range nodes {
				rels[j] = n.rel
			}
			out = append(out, TupleTree{
				Relations: rels,
				TupleIDs:  append([]storage.TupleID(nil), tuples...),
				Joins:     len(nodes) - 1,
			})
			return len(out) < limit
		}
		n := nodes[i]
		var parent *netNode
		var parentID storage.TupleID
		if pi := parentOf[i]; pi >= 0 {
			parent = nodes[pi]
			parentID = tuples[pi]
		}
		for _, id := range candidates(n, parent, parentID) {
			if !assign(nodes, append(tuples, id)) {
				return false
			}
		}
		return true
	}
	assign(flat, make([]storage.TupleID, 0, len(flat)))
	return out
}

// parentIndex maps each pre-order position to its parent's position
// (-1 for the root).
func parentIndex(nw *netNode) []int {
	var out []int
	var walk func(n *netNode, parent int)
	walk = func(n *netNode, parent int) {
		idx := len(out)
		out = append(out, parent)
		for _, c := range n.children {
			walk(c, idx)
		}
	}
	walk(nw, -1)
	return out
}

// joinFrom returns tuples of toRel joining the given tuple of fromRel via
// any schema join edge between the two relations.
func (ev *netEvaluator) joinFrom(fromRel string, fromID storage.TupleID, toRel string) []storage.TupleID {
	from := ev.db.Relation(fromRel)
	to := ev.db.Relation(toRel)
	if from == nil || to == nil {
		return nil
	}
	t, ok := from.Get(fromID)
	if !ok {
		return nil
	}
	var out []storage.TupleID
	seen := map[storage.TupleID]bool{}
	node := ev.g.Relation(fromRel)
	if node == nil {
		return nil
	}
	for _, e := range node.Out() {
		if e.To != toRel {
			continue
		}
		fi := from.Schema().ColumnIndex(e.FromCol)
		if fi < 0 {
			continue
		}
		v := t.Values[fi]
		if v.IsNull() {
			continue
		}
		ids, err := to.Lookup(e.ToCol, v)
		if err != nil {
			continue
		}
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func dedupeIDsBaseline(ids []storage.TupleID) []storage.TupleID {
	out := ids[:0]
	var prev storage.TupleID = -1
	for _, id := range ids {
		if id != prev {
			out = append(out, id)
		}
		prev = id
	}
	return out
}

func dedupeSorted(xs []string) []string {
	out := xs[:0]
	prev := ""
	for i, x := range xs {
		if i == 0 || x != prev {
			out = append(out, x)
		}
		prev = x
	}
	return out
}

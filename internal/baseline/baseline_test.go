package baseline

import (
	"strings"
	"testing"

	"precis/internal/dataset"
	"precis/internal/invidx"
)

func TestAttributePairSearch(t *testing.T) {
	db, _, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	matches := AttributePairSearch(db, ix, []string{"Woody Allen"})
	if len(matches) != 2 {
		t.Fatalf("matches = %+v", matches)
	}
	// Deterministic order: ACTOR.aname before DIRECTOR.dname.
	if matches[0].Relation != "ACTOR" || matches[0].Attribute != "aname" {
		t.Errorf("first match = %+v", matches[0])
	}
	if matches[1].Relation != "DIRECTOR" || matches[1].Attribute != "dname" {
		t.Errorf("second match = %+v", matches[1])
	}
	// The baseline answer carries the value but nothing about movies: it is
	// the (Name, Director) style pair of §2.
	for _, m := range matches {
		if m.Value != "Woody Allen" {
			t.Errorf("value = %q", m.Value)
		}
	}
	if got := AttributePairSearch(db, ix, []string{"zzz"}); len(got) != 0 {
		t.Errorf("miss = %+v", got)
	}
}

func TestTupleTreeSingleTerm(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	trees, err := TupleTreeSearch(db, g, ix, []string{"Match Point"}, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 || trees[0].Joins != 0 || trees[0].Relations[0] != "MOVIE" {
		t.Fatalf("trees = %+v", trees)
	}
}

func TestTupleTreeTwoTerms(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	// "Woody Allen" and "Match Point": the director directed the movie
	// (1 join), and Woody the actor is not in its cast but Scarlett is; the
	// actor connects via CAST (2 joins) only if Woody acted in it — he did
	// not, so the shortest trees use DIRECTOR -> MOVIE.
	trees, err := TupleTreeSearch(db, g, ix, []string{"Woody Allen", "Match Point"}, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Fatal("no trees found")
	}
	best := trees[0]
	if best.Joins != 1 {
		t.Errorf("best tree joins = %d, want 1 (%s)", best.Joins, best)
	}
	found := false
	for _, tr := range trees {
		if len(tr.Relations) == 2 && tr.Relations[0] == "DIRECTOR" && tr.Relations[1] == "MOVIE" {
			found = true
		}
	}
	if !found {
		t.Errorf("no DIRECTOR->MOVIE tree in %+v", trees)
	}
	// Ranking is by ascending joins.
	for i := 1; i < len(trees); i++ {
		if trees[i].Joins < trees[i-1].Joins {
			t.Fatalf("trees out of order: %+v", trees)
		}
	}
}

func TestTupleTreeActorConnection(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	// Woody Allen acted in Anything Else (2 joins via CAST), and also
	// directed it (1 join). Both trees should be found, directed first.
	trees, err := TupleTreeSearch(db, g, ix, []string{"Woody Allen", "Anything Else"}, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, tr := range trees {
		got = append(got, strings.Join(tr.Relations, "-"))
	}
	joined := strings.Join(got, " ")
	if !strings.Contains(joined, "DIRECTOR-MOVIE") {
		t.Errorf("missing 1-join tree: %v", got)
	}
	if !strings.Contains(joined, "ACTOR-CAST-MOVIE") {
		t.Errorf("missing 2-join tree via CAST: %v", got)
	}
}

func TestTupleTreeSameRelationTerms(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	// Both terms inside the same tuple: "Match" and "Point".
	trees, err := TupleTreeSearch(db, g, ix, []string{"Match", "Point"}, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range trees {
		if tr.Joins == 0 && len(tr.TupleIDs) == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no zero-join tree for same-tuple terms: %+v", trees)
	}
}

func TestTupleTreeMisses(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	trees, err := TupleTreeSearch(db, g, ix, []string{"Woody Allen", "zzznothing"}, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if trees != nil {
		t.Errorf("trees for missing term: %+v", trees)
	}
	if _, err := TupleTreeSearch(db, g, ix, nil, 3, 10); err == nil {
		t.Error("empty terms accepted")
	}
}

func TestTupleTreeTopK(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	trees, err := TupleTreeSearch(db, g, ix, []string{"Woody Allen", "Comedy"}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) > 2 {
		t.Errorf("topK not respected: %d trees", len(trees))
	}
}

func TestTupleTreeString(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	trees, err := TupleTreeSearch(db, g, ix, []string{"Woody Allen", "Match Point"}, 3, 5)
	if err != nil || len(trees) == 0 {
		t.Fatalf("trees = %v, err = %v", trees, err)
	}
	if s := trees[0].String(); !strings.Contains(s, "[") {
		t.Errorf("String = %q", s)
	}
}

func TestRankedAttributePairSearch(t *testing.T) {
	db, _, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	// "comedy" occurs in several GENRE rows; all score equally. "melinda"
	// occurs twice in one title — tf boosts it over single occurrences of
	// equally rare words.
	ranked := RankedAttributePairSearch(db, ix, []string{"melinda"})
	if len(ranked) != 1 || ranked[0].Score <= 0 {
		t.Fatalf("ranked = %+v", ranked)
	}
	// Rare words outrank common ones at equal tf: "thriller" (1 tuple)
	// must score above "drama" (3 tuples) in their own values.
	thr := RankedAttributePairSearch(db, ix, []string{"thriller"})
	dra := RankedAttributePairSearch(db, ix, []string{"drama"})
	if len(thr) == 0 || len(dra) == 0 {
		t.Fatal("missing matches")
	}
	if thr[0].Score <= dra[0].Score {
		t.Errorf("idf ordering broken: thriller %v <= drama %v", thr[0].Score, dra[0].Score)
	}
	// Descending order.
	all := RankedAttributePairSearch(db, ix, []string{"woody", "drama"})
	for i := 1; i < len(all); i++ {
		if all[i].Score > all[i-1].Score {
			t.Fatalf("not descending: %+v", all)
		}
	}
}

func TestRankedTupleTreeSearch(t *testing.T) {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	trees, err := RankedTupleTreeSearch(db, g, ix, []string{"Woody Allen", "Anything Else"}, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) < 2 {
		t.Fatalf("trees = %+v", trees)
	}
	for i := 1; i < len(trees); i++ {
		if trees[i].Score > trees[i-1].Score {
			t.Fatalf("not descending: %+v", trees)
		}
	}
	// The 1-join DIRECTOR tree should outrank the 2-join CAST tree: same
	// relevant endpoints, smaller tree.
	if trees[0].Joins != 1 {
		t.Errorf("best tree has %d joins: %+v", trees[0].Joins, trees[0])
	}
}

func TestDocFrequency(t *testing.T) {
	db, _, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	// "woody" appears in one DIRECTOR and one ACTOR tuple.
	if df := ix.DocFrequency("woody"); df != 2 {
		t.Errorf("df(woody) = %d", df)
	}
	if df := ix.DocFrequency("zzz"); df != 0 {
		t.Errorf("df(zzz) = %d", df)
	}
	if df := ix.DocFrequency("woody allen"); df != 0 {
		t.Errorf("df on phrase = %d (single tokens only)", df)
	}
}

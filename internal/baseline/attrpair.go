// Package baseline implements the prior keyword-search approaches the paper
// contrasts précis queries with (§2):
//
//   - AttributePairSearch — the behaviour of full-text engines layered on a
//     relational store (Oracle Text, MSSQL, DB2 Text Extender): the answer
//     to "Woody Allen" is a set of (Relation, Attribute) matches with the
//     matching tuples, and nothing about surrounding information.
//
//   - TupleTreeSearch — DISCOVER/DBXplorer-style joined tuple trees: minimal
//     join networks connecting one occurrence of every query term, ranked by
//     the number of joins. The result is a flattened row per tree, not a
//     database.
//
// Both exist so benchmarks can compare answer richness and cost against the
// précis pipeline.
package baseline

import (
	"sort"

	"precis/internal/invidx"
	"precis/internal/storage"
)

// Match is one attribute-level hit for a term.
type Match struct {
	Term      string
	Relation  string
	Attribute string
	TupleID   storage.TupleID
	Value     string // the full attribute value containing the term
}

// AttributePairSearch resolves each term through the inverted index and
// returns the flat (relation, attribute, tuple) matches, in deterministic
// order. This is the baseline whose answer for "Woody Allen" is the pair
// (Name, Director) — no movies, no genres.
func AttributePairSearch(db *storage.Database, ix *invidx.Index, terms []string) []Match {
	var out []Match
	for _, term := range terms {
		for _, occ := range ix.Lookup(term) {
			rel := db.Relation(occ.Relation)
			if rel == nil {
				continue
			}
			ci := rel.Schema().ColumnIndex(occ.Attribute)
			for _, id := range occ.TupleIDs {
				t, ok := rel.Get(id)
				if !ok {
					continue
				}
				out = append(out, Match{
					Term:      term,
					Relation:  occ.Relation,
					Attribute: occ.Attribute,
					TupleID:   id,
					Value:     t.Values[ci].AsString(),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Term != b.Term {
			return a.Term < b.Term
		}
		if a.Relation != b.Relation {
			return a.Relation < b.Relation
		}
		if a.Attribute != b.Attribute {
			return a.Attribute < b.Attribute
		}
		return a.TupleID < b.TupleID
	})
	return out
}

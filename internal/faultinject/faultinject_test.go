package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFireNoPlanIsNoop(t *testing.T) {
	Deactivate()
	if err := Fire("anything"); err != nil {
		t.Fatalf("Fire with no plan: %v", err)
	}
	if Enabled() {
		t.Fatal("Enabled with no plan")
	}
}

func TestErrorRuleScheduling(t *testing.T) {
	boom := errors.New("boom")
	p := NewPlan().Set("s", Rule{Err: boom, Every: 3, After: 2, Limit: 2})
	defer Activate(p)()

	var fired []int
	for i := 1; i <= 20; i++ {
		if err := Fire("s"); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("call %d: got %v", i, err)
			}
			fired = append(fired, i)
		}
	}
	// After=2 skips calls 1-2; Every=3 fires on eligible calls 3,6,9,... i.e.
	// absolute calls 5, 8, 11...; Limit=2 stops after two firings.
	want := []int{5, 8}
	if len(fired) != len(want) || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("fired on calls %v, want %v", fired, want)
	}
	if got := p.Calls("s"); got != 20 {
		t.Fatalf("Calls = %d, want 20", got)
	}
	if got := p.Fired("s"); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestPanicRule(t *testing.T) {
	p := NewPlan().Set("s", Rule{Panic: "poisoned tuple"})
	defer Activate(p)()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if !strings.Contains(r.(string), "poisoned tuple") {
			t.Fatalf("panic value %v", r)
		}
	}()
	_ = Fire("s")
}

func TestDelayRule(t *testing.T) {
	p := NewPlan().Set("s", Rule{Delay: 20 * time.Millisecond})
	defer Activate(p)()
	start := time.Now()
	if err := Fire("s"); err != nil {
		t.Fatalf("pure latency rule returned error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("Fire returned after %v, want >= 20ms sleep", d)
	}
}

func TestUnknownSiteIsNoop(t *testing.T) {
	p := NewPlan().Set("s", Rule{Err: errors.New("x")})
	defer Activate(p)()
	if err := Fire("other"); err != nil {
		t.Fatalf("unknown site fired: %v", err)
	}
}

func TestDeactivateRestoresNoop(t *testing.T) {
	deact := Activate(NewPlan().Set("s", Rule{Err: errors.New("x")}))
	if err := Fire("s"); err == nil {
		t.Fatal("armed plan did not fire")
	}
	deact()
	if err := Fire("s"); err != nil {
		t.Fatalf("after deactivate: %v", err)
	}
}

func TestConcurrentFireRespectsLimit(t *testing.T) {
	boom := errors.New("boom")
	p := NewPlan().Set("s", Rule{Err: boom, Limit: 10})
	defer Activate(p)()
	var wg sync.WaitGroup
	counts := make(chan int, 32)
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < 100; i++ {
				if Fire("s") != nil {
					n++
				}
			}
			counts <- n
		}()
	}
	wg.Wait()
	close(counts)
	total := 0
	for n := range counts {
		total += n
	}
	if total != 10 {
		t.Fatalf("limit 10 produced %d firings", total)
	}
}

// Package faultinject deterministically injects faults — errors, latency,
// panics — at named sites inside the engine, so the chaos suite can prove
// the resource-governance layer's promises (no crash, no deadlock, partial
// answers stay deterministic, the cache never serves poisoned state) under
// failure conditions that are impossible to reproduce organically.
//
// In production the package is a no-op: every instrumented site calls
// Fire(site), which is a single atomic pointer load returning nil until a
// test activates a Plan. Sites are plain strings; the canonical ones are
// listed as Site* constants next to the code they instrument.
//
// Determinism: each rule keeps a per-site call counter. A rule fires on
// calls where (n - After) > 0 and (n - After) % Every == 0, at most Limit
// times (0 = unbounded). Counters belong to the Plan, so activating a fresh
// Plan restarts the schedule.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical injection sites. The instrumented packages use these names;
// tests may also register ad-hoc sites of their own.
const (
	// SiteStorageLookup fires inside storage.(*Relation).Lookup — the index
	// probe every generated join ultimately lands on.
	SiteStorageLookup = "storage.lookup"
	// SiteIndexProbe fires inside invidx.(*Index).LookupExpanded — the
	// per-term inverted-index probe that runs on ParallelFor workers. The
	// probe has no error return, so error rules at this site are ignored;
	// use Panic or Delay.
	SiteIndexProbe = "invidx.probe"
	// SiteSQLSelect fires inside sqlx.(*Engine).execSelect — every
	// generated SELECT of the result-database generator.
	SiteSQLSelect = "sqlx.select"
	// SiteJoin fires at the head of core.(*generator).fetchJoin — once per
	// executed join edge.
	SiteJoin = "core.join"
	// SiteWALAppend fires at the head of wal.(*Writer).Append — every
	// mutation record the persistence layer logs.
	SiteWALAppend = "wal.append"
	// SiteWALFsync fires before every WAL fsync (group commits, interval
	// flushes, and explicit Syncs alike).
	SiteWALFsync = "wal.fsync"
	// SiteSnapshotWrite fires at the head of wal.WriteSnapshot — initial
	// seeding and every checkpoint.
	SiteSnapshotWrite = "snapshot.write"
	// SiteReplSend fires before every replication message the primary
	// writes to a follower link (records, snapshots, heartbeats). An error
	// rule severs the link; repl.ErrInjectCorrupt instead corrupts the
	// frame bytes on the wire.
	SiteReplSend = "repl.send"
	// SiteReplRecv fires before every replication message the follower
	// reads; an error rule severs the link mid-stream.
	SiteReplRecv = "repl.recv"
	// SiteReplHandshake fires during connection setup on both ends of a
	// replication link.
	SiteReplHandshake = "repl.handshake"
	// SiteReplAckSend fires before a follower writes an Ack frame to the
	// primary; an error rule severs the link, repl.ErrInjectCorrupt corrupts
	// the frame bytes on the wire.
	SiteReplAckSend = "repl.ack.send"
	// SiteReplAckRecv fires before the primary's per-link reader reads a
	// frame from a follower; an error rule severs the link.
	SiteReplAckRecv = "repl.ack.recv"
	// SiteReplFollowerFsync fires before a durable follower appends a
	// replicated frame to its local WAL (so the append — and the ack that
	// depends on it — never happens when the rule errors).
	SiteReplFollowerFsync = "repl.follower.fsync"
	// SiteShardScatter fires before a sharded coordinator fans a statement
	// or index lookup out to its shard engines; an error rule fails the
	// whole scatter with a typed error before any shard runs.
	SiteShardScatter = "shard.scatter"
	// SiteShardGather fires after every shard answered, before the
	// coordinator merges the per-shard results; an error rule discards the
	// gathered partials and fails the operation typed.
	SiteShardGather = "shard.gather"
	// SiteShardApply fires before a sharded coordinator routes a mutation
	// (insert/update/delete/synonym/macro) to the owning shard(s).
	SiteShardApply = "shard.apply"
	// SiteReplPromote fires at the start of Engine.Promote, before the
	// follower transport is stopped or the epoch bumped.
	SiteReplPromote = "repl.promote"
	// SiteReplEpochCheck fires wherever a v3 epoch stamp is compared
	// against local state: the primary's handshake check and the
	// follower's per-message ObserveEpoch.
	SiteReplEpochCheck = "repl.epoch.check"
)

// Rule describes what happens when a site fires. Exactly one of Err and
// Panic should be set for a faulting rule; Delay may accompany either or
// stand alone (pure latency injection).
type Rule struct {
	// Err is returned from Fire when the rule fires.
	Err error
	// Panic, when non-empty, makes Fire panic with this message.
	Panic string
	// Delay is slept before the fault (or before returning nil for a pure
	// latency rule).
	Delay time.Duration
	// Every fires the rule on every Nth eligible call; 0 or 1 mean every
	// call.
	Every int
	// After skips the first After calls entirely.
	After int
	// Limit caps the number of firings; 0 means unbounded.
	Limit int
}

// siteState pairs a rule with its per-plan counters.
type siteState struct {
	rule  Rule
	calls atomic.Int64
	fired atomic.Int64
}

// Plan is an immutable-after-activation set of site rules plus live
// counters. Build it with NewPlan/Set, then Activate it.
type Plan struct {
	mu    sync.Mutex
	sites map[string]*siteState
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{sites: make(map[string]*siteState)} }

// Set installs (or replaces) the rule for a site, resetting its counters.
func (p *Plan) Set(site string, r Rule) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sites[site] = &siteState{rule: r}
	return p
}

// Calls reports how many times the site was reached while this plan was
// active (whether or not the rule fired).
func (p *Plan) Calls(site string) int64 {
	p.mu.Lock()
	st := p.sites[site]
	p.mu.Unlock()
	if st == nil {
		return 0
	}
	return st.calls.Load()
}

// Fired reports how many times the site's rule actually fired.
func (p *Plan) Fired(site string) int64 {
	p.mu.Lock()
	st := p.sites[site]
	p.mu.Unlock()
	if st == nil {
		return 0
	}
	return st.fired.Load()
}

// active is the currently armed plan; nil in production.
var active atomic.Pointer[Plan]

// Activate arms a plan. It returns a deactivation func; tests should defer
// it. Activating replaces any previously armed plan.
func Activate(p *Plan) (deactivate func()) {
	active.Store(p)
	return func() { active.CompareAndSwap(p, nil) }
}

// Deactivate disarms injection entirely.
func Deactivate() { active.Store(nil) }

// Enabled reports whether a plan is armed (cheap: one atomic load).
func Enabled() bool { return active.Load() != nil }

// Fire is the instrumentation hook. With no armed plan it returns nil
// immediately. With a plan, it advances the site's counter and — when the
// rule's schedule matches — sleeps Delay, then panics (Panic rules) or
// returns Err. A firing rule with neither Err nor Panic is pure latency.
func Fire(site string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	st := p.sites[site]
	p.mu.Unlock()
	if st == nil {
		return nil
	}
	n := st.calls.Add(1)
	r := st.rule
	eligible := n - int64(r.After)
	if eligible <= 0 {
		return nil
	}
	every := int64(r.Every)
	if every < 1 {
		every = 1
	}
	if eligible%every != 0 {
		return nil
	}
	if r.Limit > 0 {
		// fired is only advanced under the limit check, so the cap holds
		// even when concurrent callers race past the schedule check.
		if st.fired.Add(1) > int64(r.Limit) {
			st.fired.Add(-1)
			return nil
		}
	} else {
		st.fired.Add(1)
	}
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r.Panic != "" {
		panic(fmt.Sprintf("faultinject: %s: %s", site, r.Panic))
	}
	return r.Err
}

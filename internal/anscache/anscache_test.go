package anscache

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestGetPutBasics(t *testing.T) {
	c := New(4, 0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("a", 2) // refresh in place
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("refreshed value = %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(3, 0)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	// Touch a so b becomes the least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("d", 4) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order wrong")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	// Keys reports MRU -> LRU. After the gets above: d, c, a.
	if got := c.Keys(); !reflect.DeepEqual(got, []string{"d", "c", "a"}) {
		t.Fatalf("Keys() = %v", got)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(8, time.Minute)
	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })
	c.Put("a", 1)
	now = now.Add(30 * time.Second)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	now = now.Add(31 * time.Second) // refreshed read does not extend TTL
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived past its TTL")
	}
	st := c.Stats()
	if st.Expirations != 1 {
		t.Fatalf("expirations = %d", st.Expirations)
	}
	if st.Entries != 0 {
		t.Fatalf("expired entry still resident: %+v", st)
	}
	// Put refreshes the admission time.
	c.Put("b", 1)
	now = now.Add(45 * time.Second)
	c.Put("b", 2)
	now = now.Add(45 * time.Second)
	if _, ok := c.Get("b"); !ok {
		t.Fatal("refreshed entry expired from its original admission time")
	}
}

func TestCounters(t *testing.T) {
	c := New(2, 0)
	c.Put("a", 1)
	c.Get("a")    // hit
	c.Get("miss") // miss
	c.Put("b", 2)
	c.Put("c", 3) // evicts a
	c.Get("a")    // miss
	c.Purge()     // drops b, c
	st := c.Stats()
	want := Stats{Hits: 1, Misses: 2, Evictions: 1, Invalidations: 2, Entries: 0}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New(0, 0)
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() != 128 {
		t.Fatalf("default capacity = %d, want 128", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(32, time.Hour)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (w*31+i)%64)
				if _, ok := c.Get(k); !ok {
					c.Put(k, i)
				}
				if i%100 == 0 {
					c.Purge()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}

// Package anscache implements the engine-level answer cache of the précis
// pipeline. The paper's motivating deployment is a web-accessible database
// answering many concurrent keyword searches (§1); popular queries repeat,
// and a précis answer is a pure function of the query tokens, the effective
// weights/constraints, and the database contents — so once computed it can
// be served again in O(1) until any of those inputs changes.
//
// The cache is a bounded LRU with optional TTL expiry, safe for concurrent
// use. It is value-agnostic: the engine stores *precis.Answer values keyed
// by a fingerprint of (normalized tokens, constraints, profile, overlay).
// Invalidation is wholesale (Purge) because any database or weight change
// can affect any answer.
package anscache

import (
	"container/list"
	"sync"
	"time"

	"precis/internal/obs"
)

// Stats are the cache's monotonic hit/miss counters plus its current size.
type Stats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`     // LRU capacity evictions
	Expirations   uint64 `json:"expirations"`   // TTL lazy removals
	Invalidations uint64 `json:"invalidations"` // entries dropped by Purge
	Entries       int    `json:"entries"`       // current resident entries
}

// Counters are the cache's event counters. They are obs atomics so the
// same instruments can be registered in a metrics registry: Stats (the
// /api/stats source) and /metrics then read the very same memory and can
// never disagree. A cache built with plain New owns private counters;
// pass registry-backed ones through NewWithCounters to make cache totals
// survive cache resizes (the counters outlive any one Cache).
type Counters struct {
	Hits          *obs.Counter
	Misses        *obs.Counter
	Evictions     *obs.Counter
	Expirations   *obs.Counter
	Invalidations *obs.Counter
}

// NewCounters builds a private (unregistered) counter set.
func NewCounters() *Counters {
	return &Counters{
		Hits:          &obs.Counter{},
		Misses:        &obs.Counter{},
		Evictions:     &obs.Counter{},
		Expirations:   &obs.Counter{},
		Invalidations: &obs.Counter{},
	}
}

// entry is one cached answer with its admission time for TTL accounting.
type entry struct {
	key   string
	value any
	added time.Time
}

// Cache is a concurrency-safe LRU + TTL cache.
type Cache struct {
	mu  sync.Mutex
	max int
	ttl time.Duration
	now func() time.Time

	ll    *list.List // front = most recently used
	items map[string]*list.Element

	ctr *Counters // never nil
}

// New builds a cache holding at most max entries. max <= 0 defaults to 128.
// ttl <= 0 disables time-based expiry.
func New(max int, ttl time.Duration) *Cache {
	return NewWithCounters(max, ttl, nil)
}

// NewWithCounters is New with an externally owned counter set (typically
// registry-backed); nil ctr allocates a private set.
func NewWithCounters(max int, ttl time.Duration, ctr *Counters) *Cache {
	if max <= 0 {
		max = 128
	}
	if ctr == nil {
		ctr = NewCounters()
	}
	return &Cache{
		max:   max,
		ttl:   ttl,
		now:   time.Now,
		ll:    list.New(),
		items: make(map[string]*list.Element, max),
		ctr:   ctr,
	}
}

// AdoptCounters rebases the cache onto an externally owned counter set
// (typically registry-backed), folding the already-accumulated private
// totals into it so no events are lost. Instrumenting an engine after its
// cache warmed up therefore continues the same monotonic series.
func (c *Cache) AdoptCounters(ctr *Counters) {
	if ctr == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ctr == ctr {
		return
	}
	ctr.Hits.Add(c.ctr.Hits.Load())
	ctr.Misses.Add(c.ctr.Misses.Load())
	ctr.Evictions.Add(c.ctr.Evictions.Load())
	ctr.Expirations.Add(c.ctr.Expirations.Load())
	ctr.Invalidations.Add(c.ctr.Invalidations.Load())
	c.ctr = ctr
}

// SetClock replaces the cache's time source (tests drive TTL expiry with a
// fake clock).
func (c *Cache) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// Get returns the cached value for key and whether it was present and
// fresh. An entry past its TTL is removed and counted as an expiration
// (plus a miss).
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.ctr.Misses.Inc()
		return nil, false
	}
	en := el.Value.(*entry)
	if c.ttl > 0 && c.now().Sub(en.added) > c.ttl {
		c.removeLocked(el)
		c.ctr.Expirations.Inc()
		c.ctr.Misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.ctr.Hits.Inc()
	return en.value, true
}

// Put stores value under key, refreshing the entry (and its TTL) if it
// already exists and evicting the least-recently-used entry on overflow.
func (c *Cache) Put(key string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		en := el.Value.(*entry)
		en.value = value
		en.added = c.now()
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&entry{key: key, value: value, added: c.now()})
	c.items[key] = el
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		if oldest != nil {
			c.removeLocked(oldest)
			c.ctr.Evictions.Inc()
		}
	}
}

// Purge drops every entry — the invalidation hook for database mutations,
// weight changes, and explicit cache resets.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctr.Invalidations.Add(uint64(c.ll.Len()))
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.max)
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Keys returns the resident keys from most to least recently used (test
// introspection of the eviction order).
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).key)
	}
	return out
}

// Stats snapshots the counters. With registry-backed counters the same
// atomics feed /metrics, so the two views cannot diverge.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.ctr.Hits.Load(),
		Misses:        c.ctr.Misses.Load(),
		Evictions:     c.ctr.Evictions.Load(),
		Expirations:   c.ctr.Expirations.Load(),
		Invalidations: c.ctr.Invalidations.Load(),
		Entries:       c.ll.Len(),
	}
}

// removeLocked unlinks an element; callers hold c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	c.ll.Remove(el)
	delete(c.items, el.Value.(*entry).key)
}

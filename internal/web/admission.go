package web

import (
	"context"

	"precis/internal/obs"
)

// Metric names of the HTTP admission gate. Exported so dashboards and
// tests address the same strings the server writes; the very same atomics
// back /api/stats, so the two views cannot disagree.
const (
	MetricHTTPInFlight = "precis_http_inflight"
	MetricHTTPQueued   = "precis_http_queued"
	MetricHTTPServed   = "precis_http_requests_served_total"
	MetricHTTPShed     = "precis_http_requests_shed_total"
	MetricHTTPPartial  = "precis_http_partial_answers_total"
	MetricHTTPInternal = "precis_http_internal_errors_total"
	MetricHTTPTimeout  = "precis_http_timeouts_total"
	MetricHTTPSlow     = "precis_http_slow_queries_total"
)

// admission is the server's load-shedding gate: a semaphore of max
// in-flight queries plus a bounded wait queue. A request first tries to
// take an in-flight slot; failing that it takes a queue slot and blocks
// until an in-flight slot frees or its context dies; when the queue is full
// too, the request is shed immediately (503 + Retry-After) — the paper's
// bounded-answer philosophy applied to the server itself: predictable
// latency for admitted work beats unbounded acceptance followed by
// collapse.
//
// The gate's counters are obs instruments. Built with a registry they are
// the same atomics /metrics scrapes; built without one they are private.
type admission struct {
	sem   chan struct{} // in-flight slots
	queue chan struct{} // wait-queue slots

	inFlight *obs.Gauge   // currently executing
	queued   *obs.Gauge   // currently waiting
	served   *obs.Counter // total admitted and run
	shed     *obs.Counter // total rejected with 503
	partial  *obs.Counter // total answers returned Partial
	internal *obs.Counter // total ErrInternal failures
	timedOut *obs.Counter // total per-request deadline expiries
	slow     *obs.Counter // total queries over the slow-query threshold
}

// newAdmission sizes the gate; maxInFlight <= 0 disables admission control
// entirely (every request is admitted, counters still tick). A non-nil reg
// backs the counters with registry instruments under the precis_http_*
// names.
func newAdmission(maxInFlight, queueDepth int, reg *obs.Registry) *admission {
	a := &admission{}
	if maxInFlight > 0 {
		a.sem = make(chan struct{}, maxInFlight)
		if queueDepth < 0 {
			queueDepth = 0
		}
		a.queue = make(chan struct{}, queueDepth)
	}
	if reg != nil {
		reg.Help(MetricHTTPInFlight, "searches currently executing")
		reg.Help(MetricHTTPQueued, "searches waiting for an in-flight slot")
		reg.Help(MetricHTTPServed, "searches admitted and run")
		reg.Help(MetricHTTPShed, "searches rejected with 503 (queue full or client gone)")
		reg.Help(MetricHTTPPartial, "answers returned partial over HTTP")
		reg.Help(MetricHTTPInternal, "searches failed with an internal error")
		reg.Help(MetricHTTPTimeout, "searches canceled by the per-request timeout")
		reg.Help(MetricHTTPSlow, "searches slower than the slow-query threshold")
		a.inFlight = reg.Gauge(MetricHTTPInFlight)
		a.queued = reg.Gauge(MetricHTTPQueued)
		a.served = reg.Counter(MetricHTTPServed)
		a.shed = reg.Counter(MetricHTTPShed)
		a.partial = reg.Counter(MetricHTTPPartial)
		a.internal = reg.Counter(MetricHTTPInternal)
		a.timedOut = reg.Counter(MetricHTTPTimeout)
		a.slow = reg.Counter(MetricHTTPSlow)
	} else {
		a.inFlight = &obs.Gauge{}
		a.queued = &obs.Gauge{}
		a.served = &obs.Counter{}
		a.shed = &obs.Counter{}
		a.partial = &obs.Counter{}
		a.internal = &obs.Counter{}
		a.timedOut = &obs.Counter{}
		a.slow = &obs.Counter{}
	}
	return a
}

// acquire admits one request. It returns (release, true) when admitted —
// the caller must call release exactly once — and (nil, false) when the
// request must be shed. A request whose context dies while queued is
// treated as shed (the client stopped waiting).
func (a *admission) acquire(ctx context.Context) (release func(), ok bool) {
	if a.sem == nil { // admission control disabled
		a.inFlight.Add(1)
		return func() { a.inFlight.Add(-1); a.served.Inc() }, true
	}
	select {
	case a.sem <- struct{}{}:
	default:
		// No free slot: wait in the bounded queue, or shed.
		select {
		case a.queue <- struct{}{}:
		default:
			a.shed.Inc()
			return nil, false
		}
		a.queued.Add(1)
		select {
		case a.sem <- struct{}{}:
			a.queued.Add(-1)
			<-a.queue
		case <-ctx.Done():
			a.queued.Add(-1)
			<-a.queue
			a.shed.Inc()
			return nil, false
		}
	}
	a.inFlight.Add(1)
	return func() {
		a.inFlight.Add(-1)
		a.served.Inc()
		<-a.sem
	}, true
}

// admissionStats is the JSON shape of the gate's counters in /api/stats.
type admissionStats struct {
	MaxInFlight int   `json:"max_inflight"` // 0 = admission control disabled
	QueueDepth  int   `json:"queue_depth"`
	InFlight    int64 `json:"in_flight"`
	Queued      int64 `json:"queued"`
	Served      int64 `json:"served"`
	Shed        int64 `json:"shed"`
	Partial     int64 `json:"partial"`
	Internal    int64 `json:"internal_errors"`
	TimedOut    int64 `json:"timed_out"`
	Slow        int64 `json:"slow"`
}

// stats snapshots the counters — the same atomics /metrics scrapes.
func (a *admission) stats() admissionStats {
	return admissionStats{
		MaxInFlight: cap(a.sem),
		QueueDepth:  cap(a.queue),
		InFlight:    a.inFlight.Load(),
		Queued:      a.queued.Load(),
		Served:      int64(a.served.Load()),
		Shed:        int64(a.shed.Load()),
		Partial:     int64(a.partial.Load()),
		Internal:    int64(a.internal.Load()),
		TimedOut:    int64(a.timedOut.Load()),
		Slow:        int64(a.slow.Load()),
	}
}

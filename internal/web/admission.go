package web

import (
	"context"
	"sync/atomic"
)

// admission is the server's load-shedding gate: a semaphore of max
// in-flight queries plus a bounded wait queue. A request first tries to
// take an in-flight slot; failing that it takes a queue slot and blocks
// until an in-flight slot frees or its context dies; when the queue is full
// too, the request is shed immediately (503 + Retry-After) — the paper's
// bounded-answer philosophy applied to the server itself: predictable
// latency for admitted work beats unbounded acceptance followed by
// collapse.
type admission struct {
	sem   chan struct{} // in-flight slots
	queue chan struct{} // wait-queue slots

	inFlight atomic.Int64 // currently executing
	queued   atomic.Int64 // currently waiting
	served   atomic.Int64 // total admitted and run
	shed     atomic.Int64 // total rejected with 503
	partial  atomic.Int64 // total answers returned Partial
	internal atomic.Int64 // total ErrInternal failures
	timedOut atomic.Int64 // total per-request deadline expiries
}

// newAdmission sizes the gate; maxInFlight <= 0 disables admission control
// entirely (every request is admitted, counters still tick).
func newAdmission(maxInFlight, queueDepth int) *admission {
	a := &admission{}
	if maxInFlight > 0 {
		a.sem = make(chan struct{}, maxInFlight)
		if queueDepth < 0 {
			queueDepth = 0
		}
		a.queue = make(chan struct{}, queueDepth)
	}
	return a
}

// acquire admits one request. It returns (release, true) when admitted —
// the caller must call release exactly once — and (nil, false) when the
// request must be shed. A request whose context dies while queued is
// treated as shed (the client stopped waiting).
func (a *admission) acquire(ctx context.Context) (release func(), ok bool) {
	if a.sem == nil { // admission control disabled
		a.inFlight.Add(1)
		return func() { a.inFlight.Add(-1); a.served.Add(1) }, true
	}
	select {
	case a.sem <- struct{}{}:
	default:
		// No free slot: wait in the bounded queue, or shed.
		select {
		case a.queue <- struct{}{}:
		default:
			a.shed.Add(1)
			return nil, false
		}
		a.queued.Add(1)
		select {
		case a.sem <- struct{}{}:
			a.queued.Add(-1)
			<-a.queue
		case <-ctx.Done():
			a.queued.Add(-1)
			<-a.queue
			a.shed.Add(1)
			return nil, false
		}
	}
	a.inFlight.Add(1)
	return func() {
		a.inFlight.Add(-1)
		a.served.Add(1)
		<-a.sem
	}, true
}

// admissionStats is the JSON shape of the gate's counters in /api/stats.
type admissionStats struct {
	MaxInFlight int   `json:"max_inflight"` // 0 = admission control disabled
	QueueDepth  int   `json:"queue_depth"`
	InFlight    int64 `json:"in_flight"`
	Queued      int64 `json:"queued"`
	Served      int64 `json:"served"`
	Shed        int64 `json:"shed"`
	Partial     int64 `json:"partial"`
	Internal    int64 `json:"internal_errors"`
	TimedOut    int64 `json:"timed_out"`
}

// stats snapshots the counters.
func (a *admission) stats() admissionStats {
	return admissionStats{
		MaxInFlight: cap(a.sem),
		QueueDepth:  cap(a.queue),
		InFlight:    a.inFlight.Load(),
		Queued:      a.queued.Load(),
		Served:      a.served.Load(),
		Shed:        a.shed.Load(),
		Partial:     a.partial.Load(),
		Internal:    a.internal.Load(),
		TimedOut:    a.timedOut.Load(),
	}
}

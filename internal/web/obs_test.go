package web

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"precis"
	"precis/internal/dataset"
)

// obsServer builds a server with the answer cache enabled and an explicit
// config, returning the test server and the engine behind it.
func obsServer(t *testing.T, cfg Config) (*httptest.Server, *precis.Engine) {
	t.Helper()
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	eng, err := precis.New(db, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			t.Fatal(err)
		}
	}
	eng.EnableCache(precis.CacheConfig{MaxEntries: 16})
	ts := httptest.NewServer(NewServerWithConfig(eng, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

// parseExposition parses Prometheus text format into name{labels} -> value,
// failing the test on any malformed line.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("non-numeric sample %q: %v", line, err)
		}
		out[fields[0]] = v
	}
	return out
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := obsServer(t, Config{})
	// Two identical searches: one fresh pipeline run, one cache hit.
	for i := 0; i < 2; i++ {
		if code, body := get(t, query(ts.URL, "/api/search", "q", `"Woody Allen"`)); code != http.StatusOK {
			t.Fatalf("search status = %d: %s", code, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	_, body := get(t, ts.URL+"/metrics")
	samples := parseExposition(t, body)

	for name, want := range map[string]float64{
		"precis_queries_total":                       2,
		"precis_cache_hits_total":                    1,
		"precis_cache_misses_total":                  1,
		"precis_cache_entries":                       1,
		"precis_http_requests_served_total":          2,
		"precis_query_seconds_count":                 2,
		`precis_stage_seconds_count{stage="db_gen"}`: 1,
	} {
		if got, ok := samples[name]; !ok || got != want {
			t.Errorf("%s = %v (present=%t), want %v", name, got, ok, want)
		}
	}
	// Gauge callbacks report live engine state.
	if samples["precis_db_relations"] <= 0 || samples["precis_db_tuples"] <= 0 {
		t.Errorf("database gauges missing: relations=%v tuples=%v",
			samples["precis_db_relations"], samples["precis_db_tuples"])
	}
	// TYPE lines are emitted once per base name.
	if n := strings.Count(body, "# TYPE precis_stage_seconds histogram"); n != 1 {
		t.Errorf("TYPE precis_stage_seconds appears %d times", n)
	}
}

// TestStatsMetricsAgree asserts /api/stats and /metrics read the very same
// counters — the unification satellite's acceptance check.
func TestStatsMetricsAgree(t *testing.T) {
	ts, _ := obsServer(t, Config{})
	for i := 0; i < 3; i++ {
		get(t, query(ts.URL, "/api/search", "q", `"Woody Allen"`))
	}
	_, statsBody := get(t, ts.URL+"/api/stats")
	var stats apiEngineStats
	if err := json.Unmarshal([]byte(statsBody), &stats); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, statsBody)
	}
	_, metricsBody := get(t, ts.URL+"/metrics")
	samples := parseExposition(t, metricsBody)

	if got := samples[MetricHTTPServed]; got != float64(stats.Admission.Served) {
		t.Errorf("served: metrics=%v stats=%d", got, stats.Admission.Served)
	}
	if stats.Cache == nil {
		t.Fatal("no cache stats")
	}
	if got := samples["precis_cache_hits_total"]; got != float64(stats.Cache.Hits) {
		t.Errorf("cache hits: metrics=%v stats=%d", got, stats.Cache.Hits)
	}
	if got := samples["precis_cache_misses_total"]; got != float64(stats.Cache.Misses) {
		t.Errorf("cache misses: metrics=%v stats=%d", got, stats.Cache.Misses)
	}
	if got := samples["precis_cache_entries"]; got != float64(stats.Cache.Entries) {
		t.Errorf("cache entries: metrics=%v stats=%d", got, stats.Cache.Entries)
	}
}

func TestMetricsDisabled(t *testing.T) {
	ts, _ := obsServer(t, Config{DisableMetrics: true})
	if code, _ := get(t, ts.URL+"/metrics"); code != http.StatusNotFound {
		t.Errorf("/metrics with DisableMetrics: status = %d, want 404", code)
	}
}

func TestPprofGating(t *testing.T) {
	off, _ := obsServer(t, Config{})
	if code, _ := get(t, off.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof off: status = %d, want 404", code)
	}
	on, _ := obsServer(t, Config{Pprof: true})
	code, body := get(t, on.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof on: status = %d body %.80q", code, body)
	}
}

func TestTraceParam(t *testing.T) {
	ts, _ := obsServer(t, Config{})
	code, body := get(t, query(ts.URL, "/api/search", "q", `"Woody Allen"`, "trace", "1"))
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	var ans apiAnswer
	if err := json.Unmarshal([]byte(body), &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Trace == nil || len(ans.Trace.Spans) == 0 {
		t.Fatalf("trace=1 returned no trace: %s", body)
	}
	found := false
	for _, sp := range ans.Trace.Spans {
		if sp.Name == "db_gen" {
			found = true
		}
	}
	if !found {
		t.Errorf("trace lacks db_gen span: %+v", ans.Trace.Spans)
	}
	// Without the parameter the trace is omitted.
	_, body = get(t, query(ts.URL, "/api/search", "q", `"Woody Allen"`))
	if strings.Contains(body, `"trace"`) {
		t.Errorf("untraced answer carries a trace: %s", body)
	}
	// A cache hit is marked and still traceable (tokenize + cache_lookup).
	_, body = get(t, query(ts.URL, "/api/search", "q", `"Woody Allen"`, "trace", "1"))
	if err := json.Unmarshal([]byte(body), &ans); err != nil {
		t.Fatal(err)
	}
	if !ans.FromCache {
		t.Errorf("second identical search not marked from_cache: %s", body)
	}
	if ans.Trace == nil || ans.Trace.SpanDur("cache_lookup") == 0 {
		t.Errorf("cache hit trace lacks cache_lookup span: %s", body)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	ts, _ := obsServer(t, Config{
		SlowQueryLog: time.Nanosecond, // every query is "slow"
		SlowLogger:   log.New(&buf, "", 0),
	})
	if code, body := get(t, query(ts.URL, "/api/search", "q", `"Woody Allen"`)); code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	line := buf.String()
	for _, want := range []string{"slow query:", `q="\"Woody Allen\""`, "elapsed=", "stages=", "db_gen=", "cached=false", "partial=false"} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query line missing %q: %s", want, line)
		}
	}
	// The forced internal trace must not leak into the response.
	_, body := get(t, query(ts.URL, "/api/search", "q", `"Woody Allen"`))
	if strings.Contains(body, `"trace"`) {
		t.Errorf("slow-query tracing leaked into the response: %s", body)
	}
	// The slow counter ticks and shows up in both views.
	_, metricsBody := get(t, ts.URL+"/metrics")
	if samples := parseExposition(t, metricsBody); samples[MetricHTTPSlow] < 2 {
		t.Errorf("%s = %v, want >= 2", MetricHTTPSlow, samples[MetricHTTPSlow])
	}
	_, statsBody := get(t, ts.URL+"/api/stats")
	var stats apiEngineStats
	if err := json.Unmarshal([]byte(statsBody), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Admission.Slow < 2 {
		t.Errorf("stats slow = %d, want >= 2", stats.Admission.Slow)
	}
}

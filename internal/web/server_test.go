package web

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"precis"
	"precis/internal/dataset"
	"precis/internal/profile"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	eng, err := precis.New(db, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.AddProfile(profile.Fan()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(eng).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// query builds a properly encoded URL from key/value pairs.
func query(base, path string, kv ...string) string {
	vals := url.Values{}
	for i := 0; i+1 < len(kv); i += 2 {
		vals.Set(kv[i], kv[i+1])
	}
	if len(vals) == 0 {
		return base + path
	}
	return base + path + "?" + vals.Encode()
}

func get(t *testing.T, target string) (int, string) {
	t.Helper()
	resp, err := http.Get(target)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, b.String()
}

func TestAPISearch(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, query(ts.URL, "/api/search", "q", `"Woody Allen"`, "w", "0.9", "card", "3"))
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	var ans apiAnswer
	if err := json.Unmarshal([]byte(body), &ans); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if !strings.Contains(ans.Narrative, "Woody Allen was born on December 1, 1935") {
		t.Errorf("narrative = %q", ans.Narrative)
	}
	if ans.Stats.Relations != 5 {
		t.Errorf("relations = %d", ans.Stats.Relations)
	}
	foundMovie := false
	for _, rel := range ans.Relations {
		if rel.Name == "MOVIE" {
			foundMovie = true
			if len(rel.Rows) == 0 || len(rel.Columns) == 0 {
				t.Errorf("MOVIE = %+v", rel)
			}
			for _, c := range rel.Columns {
				if c == "mid" || c == "did" {
					t.Errorf("plumbing column %s leaked into API output", c)
				}
			}
		}
	}
	if !foundMovie {
		t.Error("MOVIE missing from answer")
	}
}

func TestAPISearchErrors(t *testing.T) {
	ts := testServer(t)
	if code, _ := get(t, ts.URL+"/api/search"); code != http.StatusBadRequest {
		t.Errorf("missing q: %d", code)
	}
	if code, _ := get(t, query(ts.URL, "/api/search", "q", "zzznothing")); code != http.StatusNotFound {
		t.Errorf("no matches: %d", code)
	}
	if code, _ := get(t, query(ts.URL, "/api/search", "q", "x", "w", "nope")); code != http.StatusBadRequest {
		t.Errorf("bad w: %d", code)
	}
	if code, _ := get(t, query(ts.URL, "/api/search", "q", "x", "w", "2")); code != http.StatusBadRequest {
		t.Errorf("out-of-range w: %d", code)
	}
	if code, _ := get(t, query(ts.URL, "/api/search", "q", "x", "card", "-1")); code != http.StatusBadRequest {
		t.Errorf("bad card: %d", code)
	}
	if code, _ := get(t, query(ts.URL, "/api/search", "q", "x", "strategy", "wibble")); code != http.StatusBadRequest {
		t.Errorf("bad strategy: %d", code)
	}
	if code, body := get(t, query(ts.URL, "/api/search", "q", "Woody", "profile", "ghost")); code != http.StatusBadRequest {
		t.Errorf("bad profile: %d %s", code, body)
	}
}

func TestAPISearchWithProfile(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, query(ts.URL, "/api/search", "q", `"Match Point"`, "profile", "fan"))
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	var ans apiAnswer
	if err := json.Unmarshal([]byte(body), &ans); err != nil {
		t.Fatal(err)
	}
	// The fan profile keeps answers short: w >= 0.9 excludes theatres.
	for _, rel := range ans.Relations {
		if rel.Name == "THEATRE" {
			t.Error("fan profile leaked THEATRE")
		}
	}
}

func TestAPISchema(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts.URL+"/api/schema")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var rels []apiSchemaRelation
	if err := json.Unmarshal([]byte(body), &rels); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rels) != 7 {
		t.Fatalf("relations = %d", len(rels))
	}
	byName := map[string]apiSchemaRelation{}
	for _, r := range rels {
		byName[r.Name] = r
	}
	if byName["MOVIE"].Heading != "title" {
		t.Errorf("MOVIE heading = %q", byName["MOVIE"].Heading)
	}
	if byName["THEATRE"].Projections["phone"] != 0.8 {
		t.Errorf("THEATRE.phone = %v", byName["THEATRE"].Projections["phone"])
	}
}

func TestGraphDOT(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts.URL+"/graph.dot")
	if code != http.StatusOK || !strings.Contains(body, "digraph") {
		t.Errorf("dot: %d %q", code, body[:40])
	}
}

func TestHomePage(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts.URL+"/")
	if code != http.StatusOK || !strings.Contains(body, "<form") {
		t.Errorf("home: %d", code)
	}
	code, body = get(t, query(ts.URL, "/", "q", `"Woody Allen"`, "w", "0.9", "card", "3"))
	if code != http.StatusOK {
		t.Fatalf("search page: %d", code)
	}
	if !strings.Contains(body, "Woody Allen was born on December 1, 1935") {
		t.Error("narrative missing from page")
	}
	if !strings.Contains(body, "<table>") {
		t.Error("result tables missing from page")
	}
	// Errors render inline.
	code, body = get(t, query(ts.URL, "/", "q", "zzznothing"))
	if code != http.StatusOK || !strings.Contains(body, "class=\"error\"") {
		t.Errorf("error rendering: %d", code)
	}
	// Unknown paths 404.
	if code, _ := get(t, ts.URL+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path: %d", code)
	}
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz: %d %q", code, body)
	}
}

// testEngine builds the example engine without wrapping it in a server, for
// tests that need custom server configuration.
func testEngine(t *testing.T) *precis.Engine {
	t.Helper()
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	eng, err := precis.New(db, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

func TestAPIStats(t *testing.T) {
	eng := testEngine(t)
	eng.EnableCache(precis.CacheConfig{MaxEntries: 16})
	ts := httptest.NewServer(NewServer(eng).Handler())
	t.Cleanup(ts.Close)

	// Two identical searches: one miss, one hit.
	for i := 0; i < 2; i++ {
		if code, body := get(t, query(ts.URL, "/api/search", "q", "Woody Allen")); code != http.StatusOK {
			t.Fatalf("search %d: code=%d body=%s", i, code, body)
		}
	}
	code, body := get(t, ts.URL+"/api/stats")
	if code != http.StatusOK {
		t.Fatalf("stats code=%d", code)
	}
	var out struct {
		Database  string `json:"database"`
		Relations int    `json:"relations"`
		Tuples    int    `json:"tuples"`
		Cache     *struct {
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
			Entries int    `json:"entries"`
		} `json:"cache"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad stats JSON: %v\n%s", err, body)
	}
	if out.Database != "movies" || out.Relations == 0 || out.Tuples == 0 {
		t.Fatalf("stats = %+v", out)
	}
	if out.Cache == nil || out.Cache.Hits != 1 || out.Cache.Misses != 1 || out.Cache.Entries != 1 {
		t.Fatalf("cache stats = %+v", out.Cache)
	}
}

func TestAPIStatsCacheDisabled(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts.URL+"/api/stats")
	if code != http.StatusOK {
		t.Fatalf("code=%d", code)
	}
	if strings.Contains(body, `"cache"`) {
		t.Fatalf("disabled cache appears in stats: %s", body)
	}
}

func TestSearchWorkersParam(t *testing.T) {
	ts := testServer(t)
	if code, body := get(t, query(ts.URL, "/api/search", "q", "Woody Allen", "workers", "4")); code != http.StatusOK {
		t.Fatalf("workers=4: code=%d body=%s", code, body)
	}
	if code, _ := get(t, query(ts.URL, "/api/search", "q", "Woody Allen", "workers", "abc")); code != http.StatusBadRequest {
		t.Fatalf("bad workers accepted: code=%d", code)
	}
}

func TestSearchTimeout(t *testing.T) {
	eng := testEngine(t)
	ts := httptest.NewServer(NewServerWithConfig(eng, Config{QueryTimeout: time.Nanosecond}).Handler())
	t.Cleanup(ts.Close)
	code, body := get(t, query(ts.URL, "/api/search", "q", "Woody Allen"))
	if code != http.StatusGatewayTimeout {
		t.Fatalf("code=%d body=%s, want 504", code, body)
	}
	if !strings.Contains(body, "time budget") {
		t.Fatalf("timeout body: %s", body)
	}
}

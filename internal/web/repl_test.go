package web

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"precis"
	"precis/internal/repl"
)

type replStatsJSON struct {
	Role    string `json:"role"`
	Primary *struct {
		Followers int `json:"followers"`
	} `json:"primary,omitempty"`
	Follower *struct {
		Addr           string `json:"addr"`
		Connected      bool   `json:"connected"`
		AppliedGen     uint64 `json:"applied_gen"`
		AppliedRecords uint64 `json:"applied_records"`
		LagRecords     int64  `json:"lag_records"`
	} `json:"follower,omitempty"`
}

func getRepl(t *testing.T, url string) replStatsJSON {
	t.Helper()
	code, body := get(t, url+"/api/repl")
	if code != http.StatusOK {
		t.Fatalf("repl code=%d body=%s", code, body)
	}
	var out replStatsJSON
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("repl JSON: %v\n%s", err, body)
	}
	return out
}

// TestAPIReplNone: a plain engine reports role "none" with neither side
// populated — the probe is safe to scrape on any deployment.
func TestAPIReplNone(t *testing.T) {
	ts := testServer(t)
	out := getRepl(t, ts.URL)
	if out.Role != "none" || out.Primary != nil || out.Follower != nil {
		t.Errorf("plain engine reports replication: %+v", out)
	}
}

// TestAPIReplRoles: a streaming primary and a connected follower each
// report their role, the primary counts its follower, and the follower
// exposes its applied position.
func TestAPIReplRoles(t *testing.T) {
	db, g := exampleEngineParts(t)
	primary, err := precis.Open(db, g, quietPersist(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = primary.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := primary.StartReplication(ln, repl.PrimaryConfig{Logger: quietPersist("").Logger}); err != nil {
		t.Fatal(err)
	}

	_, fg := exampleEngineParts(t)
	follower, err := precis.OpenFollower(fg, precis.ReplicaConfig{
		Addr:   ln.Addr().String(),
		Logger: quietPersist("").Logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = follower.Close() })

	pts := httptest.NewServer(NewServer(primary).Handler())
	t.Cleanup(pts.Close)
	fts := httptest.NewServer(NewServer(follower).Handler())
	t.Cleanup(fts.Close)

	deadline := time.Now().Add(10 * time.Second)
	for {
		p, f := getRepl(t, pts.URL), getRepl(t, fts.URL)
		if p.Role == "primary" && p.Primary != nil && p.Primary.Followers == 1 &&
			f.Role == "follower" && f.Follower != nil && f.Follower.Connected &&
			f.Follower.AppliedGen > 0 && f.Follower.LagRecords == 0 {
			if f.Follower.Addr != ln.Addr().String() {
				t.Fatalf("follower reports wrong primary addr %q", f.Follower.Addr)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("roles never settled: primary=%+v follower=%+v", p, f)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

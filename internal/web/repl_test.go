package web

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"precis"
	"precis/internal/repl"
	"precis/internal/storage"
)

type replStatsJSON struct {
	Role     string `json:"role"`
	Epoch    uint64 `json:"epoch"`
	FencedBy uint64 `json:"fenced_by"`
	Primary  *struct {
		Followers      int    `json:"followers"`
		SyncReplicas   int    `json:"sync_replicas"`
		Degraded       bool   `json:"degraded"`
		QuorumWaits    uint64 `json:"quorum_waits"`
		QuorumTimeouts uint64 `json:"quorum_timeouts"`
		Links          []struct {
			Remote        string  `json:"remote"`
			AckGen        uint64  `json:"ack_gen"`
			AckLagRecords int64   `json:"ack_lag_records"`
			SecsSinceAck  float64 `json:"secs_since_ack"`
			SyncEligible  bool    `json:"sync_eligible"`
		} `json:"links,omitempty"`
	} `json:"primary,omitempty"`
	Follower *struct {
		Addr           string `json:"addr"`
		Connected      bool   `json:"connected"`
		AppliedGen     uint64 `json:"applied_gen"`
		AppliedRecords uint64 `json:"applied_records"`
		LagRecords     int64  `json:"lag_records"`
	} `json:"follower,omitempty"`
}

func getRepl(t *testing.T, url string) replStatsJSON {
	t.Helper()
	code, body := get(t, url+"/api/repl")
	if code != http.StatusOK {
		t.Fatalf("repl code=%d body=%s", code, body)
	}
	var out replStatsJSON
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("repl JSON: %v\n%s", err, body)
	}
	return out
}

// TestAPIReplNone: a plain engine reports role "none" with neither side
// populated — the probe is safe to scrape on any deployment.
func TestAPIReplNone(t *testing.T) {
	ts := testServer(t)
	out := getRepl(t, ts.URL)
	if out.Role != "none" || out.Primary != nil || out.Follower != nil {
		t.Errorf("plain engine reports replication: %+v", out)
	}
}

// TestAPIReplRoles: a streaming primary and a connected follower each
// report their role, the primary counts its follower, and the follower
// exposes its applied position.
func TestAPIReplRoles(t *testing.T) {
	db, g := exampleEngineParts(t)
	primary, err := precis.Open(db, g, quietPersist(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = primary.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := primary.StartReplication(ln, repl.PrimaryConfig{Logger: quietPersist("").Logger}); err != nil {
		t.Fatal(err)
	}

	_, fg := exampleEngineParts(t)
	follower, err := precis.OpenFollower(fg, precis.ReplicaConfig{
		Addr:   ln.Addr().String(),
		Logger: quietPersist("").Logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = follower.Close() })

	pts := httptest.NewServer(NewServer(primary).Handler())
	t.Cleanup(pts.Close)
	fts := httptest.NewServer(NewServer(follower).Handler())
	t.Cleanup(fts.Close)

	deadline := time.Now().Add(10 * time.Second)
	for {
		p, f := getRepl(t, pts.URL), getRepl(t, fts.URL)
		if p.Role == "primary" && p.Primary != nil && p.Primary.Followers == 1 &&
			f.Role == "follower" && f.Follower != nil && f.Follower.Connected &&
			f.Follower.AppliedGen > 0 && f.Follower.LagRecords == 0 {
			if f.Follower.Addr != ln.Addr().String() {
				t.Fatalf("follower reports wrong primary addr %q", f.Follower.Addr)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("roles never settled: primary=%+v follower=%+v", p, f)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// postPromote hits POST /api/promote and returns the status code and body.
func postPromote(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/api/promote", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestAPIPromote drives the operator failover endpoint: promoting a
// durable follower returns the new epoch and flips what /api/repl
// reports, while a non-follower answers 409 and a diskless follower 412
// (its state is not a durable prefix).
func TestAPIPromote(t *testing.T) {
	db, g := exampleEngineParts(t)
	primary, err := precis.Open(db, g, quietPersist(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = primary.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := primary.StartReplication(ln, repl.PrimaryConfig{Logger: quietPersist("").Logger}); err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(NewServer(primary).Handler())
	t.Cleanup(pts.Close)
	if code, body := postPromote(t, pts.URL, ""); code != http.StatusConflict {
		t.Fatalf("promote on a primary: code=%d body=%s (want 409)", code, body)
	}

	_, dg := exampleEngineParts(t)
	diskless, err := precis.OpenFollower(dg, precis.ReplicaConfig{
		Addr:   ln.Addr().String(),
		Logger: quietPersist("").Logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = diskless.Close() })
	dts := httptest.NewServer(NewServer(diskless).Handler())
	t.Cleanup(dts.Close)
	if code, body := postPromote(t, dts.URL, ""); code != http.StatusPreconditionFailed {
		t.Fatalf("promote on a diskless follower: code=%d body=%s (want 412)", code, body)
	}

	_, fg := exampleEngineParts(t)
	follower, err := precis.OpenFollower(fg, precis.ReplicaConfig{
		Addr:   ln.Addr().String(),
		Dir:    t.TempDir(),
		Logger: quietPersist("").Logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = follower.Close() })
	fts := httptest.NewServer(NewServer(follower).Handler())
	t.Cleanup(fts.Close)
	if out := getRepl(t, fts.URL); out.Role != "follower" || out.Epoch != 1 {
		t.Fatalf("durable follower before promote: %+v", out)
	}

	code, body := postPromote(t, fts.URL, "{}")
	if code != http.StatusOK {
		t.Fatalf("promote: code=%d body=%s", code, body)
	}
	var res struct {
		Promoted bool   `json:"promoted"`
		Epoch    uint64 `json:"epoch"`
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("promote JSON: %v\n%s", err, body)
	}
	if !res.Promoted || res.Epoch != 2 {
		t.Fatalf("promote response: %+v", res)
	}
	if out := getRepl(t, fts.URL); out.Role == "follower" || out.Role == "promoting" || out.Epoch != 2 || out.FencedBy != 0 {
		t.Fatalf("promoted engine over /api/repl: %+v", out)
	}
	// The promoted engine is writable through the same handle.
	if _, err := follower.Insert("GENRE", storage.Int(1), storage.String("post-promote")); err != nil {
		t.Fatalf("insert on promoted engine: %v", err)
	}
	// Promote is not repeatable: the engine is no longer a follower.
	if code, body := postPromote(t, fts.URL, ""); code != http.StatusConflict {
		t.Fatalf("second promote: code=%d body=%s (want 409)", code, body)
	}
}

// TestAPIReplDegraded: a sync primary that loses its quorum with
// DegradeToAsync surfaces the sticky degraded flag, the quorum counters,
// and — once a follower attaches — the per-link ack positions, all through
// /api/repl.
func TestAPIReplDegraded(t *testing.T) {
	db, g := exampleEngineParts(t)
	primary, err := precis.Open(db, g, quietPersist(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = primary.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := primary.StartReplication(ln, repl.PrimaryConfig{
		HeartbeatEvery: 20 * time.Millisecond,
		SyncReplicas:   1,
		AckTimeout:     30 * time.Millisecond,
		DegradeToAsync: true,
		Logger:         quietPersist("").Logger,
	}); err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(NewServer(primary).Handler())
	t.Cleanup(pts.Close)

	// No follower: the write degrades and the flag shows on the wire.
	if _, err := primary.Insert("GENRE", storage.Int(1), storage.String("degraded-probe")); err != nil {
		t.Fatalf("degraded insert: %v", err)
	}
	out := getRepl(t, pts.URL)
	if out.Primary == nil || !out.Primary.Degraded || out.Primary.SyncReplicas != 1 ||
		out.Primary.QuorumWaits == 0 || out.Primary.QuorumTimeouts == 0 {
		t.Fatalf("degraded primary over /api/repl: %+v", out.Primary)
	}

	// A follower attaches and acks: the flag heals and the link's ack
	// position appears with zero lag.
	_, fg := exampleEngineParts(t)
	follower, err := precis.OpenFollower(fg, precis.ReplicaConfig{
		Addr:   ln.Addr().String(),
		Logger: quietPersist("").Logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = follower.Close() })

	deadline := time.Now().Add(10 * time.Second)
	for {
		out = getRepl(t, pts.URL)
		p := out.Primary
		if p != nil && !p.Degraded && len(p.Links) == 1 &&
			p.Links[0].SyncEligible && p.Links[0].AckGen > 0 &&
			p.Links[0].AckLagRecords == 0 && p.Links[0].SecsSinceAck >= 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("degraded flag never healed over /api/repl: %+v", p)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

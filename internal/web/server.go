// Package web serves précis queries over HTTP — the paper's motivating
// deployment ("web accessible databases, which have emerged as libraries,
// museums, and other organizations publish their electronic contents on
// the Web", §1). It offers a small HTML search UI and a JSON API.
//
//	GET /                 search form (+ results when q is present)
//	GET /api/search?q=    JSON answer: narrative, result database, stats
//	GET /api/schema       JSON description of the schema graph
//	GET /api/stats        engine statistics: answer cache counters, sizes
//	GET /api/persist      persistence stats: recovery, WAL size, checkpoints
//	GET /api/repl         replication role and counters: follower lag, primary links
//	GET /metrics          Prometheus text exposition of every counter
//	GET /graph.dot        the schema graph in Graphviz dot syntax
//	GET /healthz          liveness probe
//	GET /debug/pprof/     runtime profiles (only when Config.Pprof is set)
//
// Query parameters for both search endpoints: q (required; quotes group
// phrases), w (min path weight), card (max tuples/relation), total (max
// total tuples), strategy (auto|naiveq|roundrobin), profile (stored
// profile name), workers (query worker pool size; 0 = one per CPU),
// trace (1 = include the per-stage timing trace in the JSON answer).
//
// Every search runs under a per-request timeout (Config.QueryTimeout);
// queries that exceed it are canceled mid-generation and answered with
// 504 Gateway Timeout.
//
// The server governs its own load: at most Config.MaxInFlight searches
// execute concurrently, at most Config.QueueDepth more wait for a slot, and
// anything beyond that is shed immediately with 503 Service Unavailable and
// a Retry-After header. A `deadline` query parameter turns the per-request
// time budget into graceful degradation instead: the engine returns the
// partial answer built when the deadline passed (marked `partial` in the
// JSON, with a truncation note in the narrative) rather than failing.
// /api/stats exposes the admission counters: in-flight, queued, served,
// shed, partial, internal errors.
package web

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"net/http/pprof"

	"precis"
	"precis/internal/obs"
	"precis/internal/storage"
)

// DefaultQueryTimeout bounds a single search when Config.QueryTimeout is
// zero. Précis answers are interactive (the paper's Formula 3 targets
// seconds); anything slower than this indicates a runaway query.
const DefaultQueryTimeout = 15 * time.Second

// DefaultMaxInFlight bounds concurrent searches when Config.MaxInFlight is
// zero. Précis queries are CPU-bound over in-memory data; far more
// concurrency than cores only grows tail latency.
const DefaultMaxInFlight = 32

// DefaultQueueDepth bounds the wait queue when Config.QueueDepth is zero.
const DefaultQueueDepth = 64

// DefaultRetryAfter is the Retry-After hint sent with 503 responses.
const DefaultRetryAfter = 1 * time.Second

// Config tunes the HTTP layer.
type Config struct {
	// QueryTimeout is the per-request deadline for /api/search and the
	// HTML search page. Zero means DefaultQueryTimeout; negative disables
	// the timeout entirely.
	QueryTimeout time.Duration
	// MaxInFlight bounds concurrently executing searches. Zero means
	// DefaultMaxInFlight; negative disables admission control.
	MaxInFlight int
	// QueueDepth bounds how many searches may wait for an in-flight slot
	// before overflow is shed with 503. Zero means DefaultQueueDepth;
	// negative means no queue (shed as soon as MaxInFlight is reached).
	QueueDepth int
	// Registry backs /metrics and the admission counters. Nil uses the
	// engine's registry when the engine is already instrumented, otherwise
	// the server creates a registry and instruments the engine with it —
	// NewServer serves full observability out of the box.
	Registry *obs.Registry
	// DisableMetrics turns off the /metrics endpoint. The counters still
	// tick (they back /api/stats too); only the exposition disappears.
	DisableMetrics bool
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiling endpoints expose implementation detail and cost CPU, so
	// they are opt-in per deployment.
	Pprof bool
	// SlowQueryLog emits one structured log line for every search slower
	// than this threshold: query, total and per-stage latency, cache
	// state, partial/truncation flags. Zero disables. A non-zero
	// threshold forces tracing on every search so the per-stage breakdown
	// is available when a query turns out slow.
	SlowQueryLog time.Duration
	// SlowLogger receives slow-query lines; nil uses log.Default().
	SlowLogger *log.Logger
}

// Server wraps a précis engine with HTTP handlers.
type Server struct {
	eng *precis.Engine
	mux *http.ServeMux
	cfg Config
	adm *admission
}

// NewServer builds the handler set around an engine with default config.
func NewServer(eng *precis.Engine) *Server {
	return NewServerWithConfig(eng, Config{})
}

// NewServerWithConfig builds the handler set with explicit configuration.
func NewServerWithConfig(eng *precis.Engine, cfg Config) *Server {
	if cfg.QueryTimeout == 0 {
		cfg.QueryTimeout = DefaultQueryTimeout
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Registry == nil {
		if r := eng.Registry(); r != nil {
			cfg.Registry = r
		} else {
			cfg.Registry = obs.NewRegistry()
			eng.Instrument(cfg.Registry)
		}
	}
	s := &Server{eng: eng, mux: http.NewServeMux(), cfg: cfg,
		adm: newAdmission(cfg.MaxInFlight, cfg.QueueDepth, cfg.Registry)}
	s.mux.HandleFunc("GET /", s.handleHome)
	s.mux.HandleFunc("GET /api/search", s.handleAPISearch)
	s.mux.HandleFunc("GET /api/schema", s.handleAPISchema)
	s.mux.HandleFunc("GET /api/stats", s.handleAPIStats)
	s.mux.HandleFunc("GET /api/persist", s.handleAPIPersist)
	s.mux.HandleFunc("GET /api/repl", s.handleAPIRepl)
	s.mux.HandleFunc("POST /api/promote", s.handleAPIPromote)
	s.mux.HandleFunc("GET /api/shards", s.handleAPIShards)
	s.mux.HandleFunc("GET /graph.dot", s.handleDOT)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if !cfg.DisableMetrics {
		s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if cfg.Pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.cfg.Registry.WritePrometheus(w)
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// parseOptions extracts query options from URL parameters.
func parseOptions(r *http.Request) (precis.Options, error) {
	var opts precis.Options
	q := r.URL.Query()
	var degrees []precis.DegreeConstraint
	if v := q.Get("w"); v != "" {
		w, err := strconv.ParseFloat(v, 64)
		if err != nil || w < 0 || w > 1 {
			return opts, fmt.Errorf("bad w %q (want a number in [0,1])", v)
		}
		degrees = append(degrees, precis.MinPathWeight(w))
	}
	if v := q.Get("attrs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opts, fmt.Errorf("bad attrs %q", v)
		}
		degrees = append(degrees, precis.MaxAttributes(n))
	}
	if len(degrees) == 1 {
		opts.Degree = degrees[0]
	} else if len(degrees) > 1 {
		opts.Degree = precis.AllDegree(degrees...)
	}
	var cards []precis.CardinalityConstraint
	if v := q.Get("card"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opts, fmt.Errorf("bad card %q", v)
		}
		cards = append(cards, precis.MaxTuplesPerRelation(n))
	}
	if v := q.Get("total"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opts, fmt.Errorf("bad total %q", v)
		}
		cards = append(cards, precis.MaxTotalTuples(n))
	}
	if len(cards) == 1 {
		opts.Cardinality = cards[0]
	} else if len(cards) > 1 {
		opts.Cardinality = precis.AllCardinality(cards...)
	}
	switch q.Get("strategy") {
	case "", "auto":
		opts.Strategy = precis.StrategyAuto
	case "naiveq":
		opts.Strategy = precis.StrategyNaive
	case "roundrobin":
		opts.Strategy = precis.StrategyRoundRobin
	default:
		return opts, fmt.Errorf("bad strategy %q", q.Get("strategy"))
	}
	opts.Profile = q.Get("profile")
	if v := q.Get("trace"); v == "1" || v == "true" {
		opts.Trace = true
	}
	if v := q.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return opts, fmt.Errorf("bad workers %q", v)
		}
		opts.Parallelism = n
	}
	// Resource budget parameters: graceful degradation instead of failure.
	// `deadline` is a duration from now ("50ms", "2s"); when it passes
	// mid-generation the answer built so far is returned, marked partial.
	if v := q.Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return opts, fmt.Errorf("bad deadline %q (want a positive duration like 50ms)", v)
		}
		opts.Budget.Deadline = time.Now().Add(d)
	}
	if v := q.Get("maxtuples"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opts, fmt.Errorf("bad maxtuples %q", v)
		}
		opts.Budget.MaxTuples = n
	}
	if v := q.Get("maxsteps"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opts, fmt.Errorf("bad maxsteps %q", v)
		}
		opts.Budget.MaxJoinSteps = n
	}
	return opts, nil
}

// apiAnswer is the JSON shape of a précis answer.
type apiAnswer struct {
	Terms     []string      `json:"terms"`
	Unmatched []string      `json:"unmatched,omitempty"`
	Narrative string        `json:"narrative"`
	Relations []apiRelation `json:"relations"`
	Stats     apiStats      `json:"stats"`
	// Partial marks a budget-truncated answer; Truncation names the
	// budget dimension that ran out (deadline, tuple-budget, step-budget,
	// byte-budget).
	Partial    bool   `json:"partial,omitempty"`
	Truncation string `json:"truncation,omitempty"`
	// FromCache marks an answer served from the engine's answer cache.
	FromCache bool `json:"from_cache,omitempty"`
	// Trace is the per-stage timing breakdown, present when the request
	// carried trace=1.
	Trace *obs.Trace `json:"trace,omitempty"`
}

type apiRelation struct {
	Name    string     `json:"name"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

type apiStats struct {
	Relations int `json:"relations"`
	Tuples    int `json:"tuples"`
	Queries   int `json:"queries"`
}

// buildAPIAnswer converts an engine answer into the JSON shape, using only
// display columns (join plumbing stays hidden, §5.2).
func buildAPIAnswer(ans *precis.Answer) apiAnswer {
	out := apiAnswer{
		Terms:      ans.Terms,
		Unmatched:  ans.Unmatched,
		Narrative:  ans.Narrative,
		Partial:    ans.Partial,
		Truncation: string(ans.Truncation),
		FromCache:  ans.FromCache,
		Trace:      ans.Trace,
		Stats: apiStats{
			Relations: ans.Database.NumRelations(),
			Tuples:    ans.Database.TotalTuples(),
			Queries:   ans.Stats.Queries,
		},
	}
	for _, rel := range ans.Database.RelationNames() {
		cols := ans.Result.DisplayColumns(rel)
		if len(cols) == 0 {
			continue
		}
		r := ans.Database.Relation(rel)
		idx := make([]int, len(cols))
		for i, c := range cols {
			idx[i] = r.Schema().ColumnIndex(c)
		}
		ar := apiRelation{Name: rel, Columns: cols}
		r.Scan(func(t storage.Tuple) bool {
			row := make([]string, len(idx))
			for i, ci := range idx {
				row[i] = t.Values[ci].String()
			}
			ar.Rows = append(ar.Rows, row)
			return true
		})
		out.Relations = append(out.Relations, ar)
	}
	return out
}

// search runs a query from request parameters under the admission gate and
// the per-request timeout.
func (s *Server) search(r *http.Request) (*precis.Answer, int, error) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		return nil, http.StatusBadRequest, fmt.Errorf("missing query parameter q")
	}
	opts, err := parseOptions(r)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	clientTrace := opts.Trace
	if s.cfg.SlowQueryLog > 0 {
		// Force tracing so the per-stage breakdown is on hand if this
		// query turns out slow; the trace is stripped from the response
		// below unless the client asked for it.
		opts.Trace = true
	}
	release, ok := s.adm.acquire(r.Context())
	if !ok {
		return nil, http.StatusServiceUnavailable,
			fmt.Errorf("server at capacity (%d in flight, %d queued); retry shortly",
				s.cfg.MaxInFlight, s.cfg.QueueDepth)
	}
	defer release()
	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	start := time.Now()
	ans, err := s.eng.QueryStringContext(ctx, q, opts)
	s.logSlow(q, time.Since(start), ans, err)
	if ans != nil && !clientTrace {
		ans.Trace = nil
	}
	if err != nil {
		switch {
		case errors.Is(err, precis.ErrNoMatches):
			return ans, http.StatusNotFound, err
		case errors.Is(err, precis.ErrInternal):
			s.adm.internal.Add(1)
			// The panic detail (with stacks) stays in the server log; the
			// client gets a generic 500.
			log.Printf("web: internal error serving %q: %v", q, err)
			return nil, http.StatusInternalServerError, errors.New("internal error")
		case errors.Is(err, context.DeadlineExceeded):
			s.adm.timedOut.Add(1)
			return nil, http.StatusGatewayTimeout,
				fmt.Errorf("query exceeded the %v time budget", s.cfg.QueryTimeout)
		case errors.Is(err, context.Canceled):
			return nil, 499, err // client went away
		}
		return nil, http.StatusBadRequest, err
	}
	if ans.Partial {
		s.adm.partial.Inc()
	}
	return ans, http.StatusOK, nil
}

// logSlow emits one structured line when a query exceeded the slow-query
// threshold: the query, total and per-stage latency, cache state, and how
// it ended (error, truncation, or clean). The precis_http_slow_queries_total
// counter ticks alongside, so dashboards can alert before anyone greps logs.
func (s *Server) logSlow(q string, elapsed time.Duration, ans *precis.Answer, err error) {
	if s.cfg.SlowQueryLog <= 0 || elapsed < s.cfg.SlowQueryLog {
		return
	}
	s.adm.slow.Inc()
	lg := s.cfg.SlowLogger
	if lg == nil {
		lg = log.Default()
	}
	if err != nil {
		lg.Printf("slow query: q=%q elapsed=%v error=%q", q, elapsed.Round(time.Microsecond), err)
		return
	}
	lg.Printf("slow query: q=%q elapsed=%v cached=%t partial=%t truncation=%q stages=%q",
		q, elapsed.Round(time.Microsecond), ans.FromCache, ans.Partial, ans.Truncation, ans.Trace.String())
}

func (s *Server) handleAPISearch(w http.ResponseWriter, r *http.Request) {
	ans, code, err := s.search(r)
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		if code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", strconv.Itoa(int(DefaultRetryAfter.Seconds())))
		}
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		return
	}
	_ = json.NewEncoder(w).Encode(buildAPIAnswer(ans))
}

// apiEngineStats is the JSON shape of /api/stats.
type apiEngineStats struct {
	Database  string             `json:"database"`
	Relations int                `json:"relations"`
	Tuples    int                `json:"tuples"`
	Cache     *precis.CacheStats `json:"cache,omitempty"` // nil when the cache is disabled
	Admission admissionStats     `json:"admission"`
}

func (s *Server) handleAPIStats(w http.ResponseWriter, _ *http.Request) {
	// The shard-aware accessors work on both topologies; on a sharded
	// coordinator eng.Database() would be nil.
	out := apiEngineStats{
		Database:  s.eng.DatabaseName(),
		Relations: s.eng.NumRelations(),
		Tuples:    s.eng.TotalTuples(),
		Admission: s.adm.stats(),
	}
	if s.eng.CacheEnabled() {
		cs := s.eng.CacheStats()
		out.Cache = &cs
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// handleAPIPersist serves the persistence layer's counters: recovery
// stats, WAL size and record count, checkpoint history. On an in-memory
// engine everything is zero and enabled is false.
func (s *Server) handleAPIPersist(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.eng.PersistStats())
}

// handleAPIRepl serves the replication role and counters: "none" on an
// unreplicated engine, streaming counters on a primary, applied position
// and lag (frames and bytes behind the primary's durable frontier) on a
// follower.
func (s *Server) handleAPIRepl(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.eng.ReplStats())
}

// handleAPIPromote converts a durable follower into a writable primary
// (operator-driven failover). The optional JSON body {"listen": addr}
// starts a replication listener on the new primary so surviving followers
// can re-point at it. Errors map to status codes a failover script can
// branch on: 409 on a non-follower (already primary, or unreplicated),
// 412 on a diskless follower, 500 otherwise.
func (s *Server) handleAPIPromote(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Listen string `json:"listen"`
	}
	if r.Body != nil {
		if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil && err != io.EOF {
			http.Error(w, fmt.Sprintf("bad promote request: %v", err), http.StatusBadRequest)
			return
		}
	}
	epoch, err := s.eng.Promote(precis.PromoteConfig{ListenAddr: req.Listen})
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, precis.ErrNotFollower):
			code = http.StatusConflict
		case errors.Is(err, precis.ErrNotPersistent):
			code = http.StatusPreconditionFailed
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"promoted": true, "epoch": epoch})
}

// handleAPIShards serves the sharded topology: shard count, partitioning
// scheme, and per-shard tuple/index/persistence state. On an unsharded
// engine enabled is false and everything else is omitted.
func (s *Server) handleAPIShards(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.eng.ShardStats())
}

// apiSchemaRelation describes one relation node of the schema graph.
type apiSchemaRelation struct {
	Name        string             `json:"name"`
	Heading     string             `json:"heading,omitempty"`
	Projections map[string]float64 `json:"projections"`
	Joins       []apiSchemaJoin    `json:"joins,omitempty"`
}

type apiSchemaJoin struct {
	To     string  `json:"to"`
	On     string  `json:"on"`
	Weight float64 `json:"weight"`
}

func (s *Server) handleAPISchema(w http.ResponseWriter, _ *http.Request) {
	g := s.eng.Graph()
	var out []apiSchemaRelation
	for _, name := range g.Relations() {
		n := g.Relation(name)
		rel := apiSchemaRelation{Name: name, Heading: n.Heading, Projections: map[string]float64{}}
		for _, p := range n.Projections() {
			rel.Projections[p.Attribute] = p.Weight
		}
		for _, e := range n.Out() {
			rel.Joins = append(rel.Joins, apiSchemaJoin{To: e.To, On: e.FromCol, Weight: e.Weight})
		}
		out = append(out, rel)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func (s *Server) handleDOT(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	fmt.Fprint(w, s.eng.Graph().DOT(s.eng.DatabaseName()))
}

var homeTemplate = template.Must(template.New("home").Parse(`<!DOCTYPE html>
<html><head><title>précis search</title>
<style>
body { font-family: Georgia, serif; margin: 2rem auto; max-width: 46rem; }
input[type=text] { width: 24rem; font-size: 1rem; }
.narrative { background: #f6f3ea; padding: 1rem; border-radius: 6px; }
table { border-collapse: collapse; margin: 0.8rem 0; }
td, th { border: 1px solid #ccc; padding: 2px 8px; font-size: 0.9rem; }
.stats { color: #666; font-size: 0.85rem; }
.error { color: #a00; }
</style></head><body>
<h1>précis</h1>
<form action="/" method="get">
<input type="text" name="q" value="{{.Query}}" placeholder='e.g. "Woody Allen"'>
<input type="submit" value="search">
<label> w ≥ <input type="text" name="w" value="{{.W}}" size="4"></label>
<label> tuples/rel ≤ <input type="text" name="card" value="{{.Card}}" size="4"></label>
</form>
{{if .Error}}<p class="error">{{.Error}}</p>{{end}}
{{if .Answer}}
<div class="narrative">{{.Answer.Narrative}}</div>
{{range .Answer.Relations}}
<h3>{{.Name}}</h3>
<table><tr>{{range .Columns}}<th>{{.}}</th>{{end}}</tr>
{{range .Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>{{end}}</table>
{{end}}
<p class="stats">{{.Answer.Stats.Relations}} relations, {{.Answer.Stats.Tuples}} tuples, {{.Answer.Stats.Queries}} queries</p>
{{end}}
</body></html>`))

type homeData struct {
	Query  string
	W      string
	Card   string
	Error  string
	Answer *apiAnswer
}

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	data := homeData{
		Query: r.URL.Query().Get("q"),
		W:     r.URL.Query().Get("w"),
		Card:  r.URL.Query().Get("card"),
	}
	if data.W == "" {
		data.W = "0.8"
	}
	if data.Card == "" {
		data.Card = "10"
	}
	if data.Query != "" {
		ans, _, err := s.search(r)
		if err != nil {
			data.Error = err.Error()
		} else {
			api := buildAPIAnswer(ans)
			data.Answer = &api
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := homeTemplate.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

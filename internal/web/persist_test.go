package web

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"

	"precis"
	"precis/internal/dataset"
	"precis/internal/schemagraph"
	"precis/internal/storage"
)

// exampleEngineParts builds the example database and annotated graph
// without wrapping them in an engine, for tests that open durable engines.
func exampleEngineParts(t *testing.T) (*storage.Database, *schemagraph.Graph) {
	t.Helper()
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	return db, g
}

// quietPersist is a fast, silent persistence config for tests.
func quietPersist(dir string) precis.PersistConfig {
	return precis.PersistConfig{
		Dir:             dir,
		Fsync:           precis.FsyncNever,
		CheckpointBytes: -1,
		Logger:          log.New(io.Discard, "", 0),
	}
}

// TestAPIPersistInMemory: on an engine without a data directory the
// endpoint reports enabled=false and zeroed counters — the probe is safe
// to scrape unconditionally.
func TestAPIPersistInMemory(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts.URL+"/api/persist")
	if code != http.StatusOK {
		t.Fatalf("persist code=%d body=%s", code, body)
	}
	var out struct {
		Enabled    bool   `json:"enabled"`
		Dir        string `json:"dir"`
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("persist JSON: %v\n%s", err, body)
	}
	if out.Enabled || out.Dir != "" || out.Generation != 0 {
		t.Errorf("in-memory engine reported persistence: %s", body)
	}
}

// TestAPIPersistDurable: with a data directory mounted the endpoint
// reports the live generation and WAL counters, and a mutation through the
// HTTP-facing engine moves them.
func TestAPIPersistDurable(t *testing.T) {
	db, g := exampleEngineParts(t)
	eng, err := precis.Open(db, g, quietPersist(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	ts := httptest.NewServer(NewServer(eng).Handler())
	t.Cleanup(ts.Close)

	read := func() (st struct {
		Enabled    bool   `json:"enabled"`
		Fsync      string `json:"fsync"`
		Generation uint64 `json:"generation"`
		WALRecords int64  `json:"wal_records"`
	}) {
		t.Helper()
		code, body := get(t, ts.URL+"/api/persist")
		if code != http.StatusOK {
			t.Fatalf("persist code=%d body=%s", code, body)
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("persist JSON: %v\n%s", err, body)
		}
		return st
	}

	before := read()
	if !before.Enabled || before.Generation == 0 {
		t.Fatalf("durable engine not reported as enabled: %+v", before)
	}
	eng.AddSynonym("wooody", "Woody Allen")
	after := read()
	if after.WALRecords != before.WALRecords+1 {
		t.Errorf("wal_records %d -> %d, want +1", before.WALRecords, after.WALRecords)
	}
}

// TestAPIPersistChainAndIndexFields: after a delta checkpoint the endpoint
// reports the chain depth, the lock-pause of the last checkpoint, and the
// bytes written by kind; after a reopen it reports whether the inverted
// index was loaded from its persisted snapshot.
func TestAPIPersistChainAndIndexFields(t *testing.T) {
	dir := t.TempDir()
	db, g := exampleEngineParts(t)
	eng, err := precis.Open(db, g, quietPersist(dir))
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	t.Cleanup(func() {
		if !closed {
			_ = eng.Close()
		}
	})
	ts := httptest.NewServer(NewServer(eng).Handler())

	read := func(url string) (st struct {
		ChainDepth int     `json:"chain_depth"`
		PauseMS    float64 `json:"last_checkpoint_pause_ms"`
		DeltaBytes int64   `json:"delta_bytes_written"`
		FullBytes  int64   `json:"full_bytes_written"`
		Recovery   struct {
			ChainDepth    int  `json:"chain_depth"`
			DeltasApplied int  `json:"deltas_applied"`
			IndexLoaded   bool `json:"index_loaded"`
		} `json:"recovery"`
	}) {
		t.Helper()
		code, body := get(t, url+"/api/persist")
		if code != http.StatusOK {
			t.Fatalf("persist code=%d body=%s", code, body)
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("persist JSON: %v\n%s", err, body)
		}
		return st
	}

	eng.AddSynonym("wooody", "Woody Allen")
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := read(ts.URL)
	if st.ChainDepth != 2 {
		t.Errorf("chain_depth = %d after one delta checkpoint, want 2", st.ChainDepth)
	}
	if st.PauseMS <= 0 {
		t.Errorf("last_checkpoint_pause_ms = %v, want > 0", st.PauseMS)
	}
	if st.DeltaBytes <= 0 {
		t.Errorf("delta_bytes_written = %d, want > 0", st.DeltaBytes)
	}
	ts.Close()
	if err := eng.Close(); err != nil { // flattens the chain, persists the index
		t.Fatal(err)
	}
	closed = true

	db2, g2 := exampleEngineParts(t)
	eng2, err := precis.Open(db2, g2, quietPersist(dir))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng2.Close() })
	ts2 := httptest.NewServer(NewServer(eng2).Handler())
	t.Cleanup(ts2.Close)
	st2 := read(ts2.URL)
	if !st2.Recovery.IndexLoaded {
		t.Error("recovery.index_loaded = false after clean shutdown with a persisted index")
	}
	if st2.Recovery.ChainDepth != 1 {
		t.Errorf("recovery.chain_depth = %d after close-time flatten, want 1", st2.Recovery.ChainDepth)
	}
	if st2.FullBytes != 0 {
		t.Errorf("full_bytes_written = %d on a fresh open, want 0", st2.FullBytes)
	}
}

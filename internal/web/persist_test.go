package web

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"

	"precis"
	"precis/internal/dataset"
	"precis/internal/schemagraph"
	"precis/internal/storage"
)

// exampleEngineParts builds the example database and annotated graph
// without wrapping them in an engine, for tests that open durable engines.
func exampleEngineParts(t *testing.T) (*storage.Database, *schemagraph.Graph) {
	t.Helper()
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		t.Fatal(err)
	}
	return db, g
}

// quietPersist is a fast, silent persistence config for tests.
func quietPersist(dir string) precis.PersistConfig {
	return precis.PersistConfig{
		Dir:             dir,
		Fsync:           precis.FsyncNever,
		CheckpointBytes: -1,
		Logger:          log.New(io.Discard, "", 0),
	}
}

// TestAPIPersistInMemory: on an engine without a data directory the
// endpoint reports enabled=false and zeroed counters — the probe is safe
// to scrape unconditionally.
func TestAPIPersistInMemory(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts.URL+"/api/persist")
	if code != http.StatusOK {
		t.Fatalf("persist code=%d body=%s", code, body)
	}
	var out struct {
		Enabled    bool   `json:"enabled"`
		Dir        string `json:"dir"`
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("persist JSON: %v\n%s", err, body)
	}
	if out.Enabled || out.Dir != "" || out.Generation != 0 {
		t.Errorf("in-memory engine reported persistence: %s", body)
	}
}

// TestAPIPersistDurable: with a data directory mounted the endpoint
// reports the live generation and WAL counters, and a mutation through the
// HTTP-facing engine moves them.
func TestAPIPersistDurable(t *testing.T) {
	db, g := exampleEngineParts(t)
	eng, err := precis.Open(db, g, quietPersist(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	ts := httptest.NewServer(NewServer(eng).Handler())
	t.Cleanup(ts.Close)

	read := func() (st struct {
		Enabled    bool   `json:"enabled"`
		Fsync      string `json:"fsync"`
		Generation uint64 `json:"generation"`
		WALRecords int64  `json:"wal_records"`
	}) {
		t.Helper()
		code, body := get(t, ts.URL+"/api/persist")
		if code != http.StatusOK {
			t.Fatalf("persist code=%d body=%s", code, body)
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("persist JSON: %v\n%s", err, body)
		}
		return st
	}

	before := read()
	if !before.Enabled || before.Generation == 0 {
		t.Fatalf("durable engine not reported as enabled: %+v", before)
	}
	eng.AddSynonym("wooody", "Woody Allen")
	after := read()
	if after.WALRecords != before.WALRecords+1 {
		t.Errorf("wal_records %d -> %d, want +1", before.WALRecords, after.WALRecords)
	}
}

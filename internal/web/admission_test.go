package web

// Admission-control and degradation tests: the semaphore + bounded-queue
// gate, 503 + Retry-After shedding under overload, the /api/stats counters,
// budget query parameters producing partial answers, and internal errors
// staying generic on the wire while counted in the stats.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"precis/internal/faultinject"
)

func TestAdmissionGate(t *testing.T) {
	a := newAdmission(2, 1, nil)

	r1, ok := a.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire refused")
	}
	r2, ok := a.acquire(context.Background())
	if !ok {
		t.Fatal("second acquire refused")
	}
	if got := a.stats().InFlight; got != 2 {
		t.Fatalf("in_flight = %d, want 2", got)
	}

	// Third request: no slot free, takes the single queue seat and blocks.
	var wg sync.WaitGroup
	wg.Add(1)
	queuedOK := make(chan bool, 1)
	go func() {
		defer wg.Done()
		r3, ok := a.acquire(context.Background())
		queuedOK <- ok
		if ok {
			r3()
		}
	}()
	waitFor(t, func() bool { return a.stats().Queued == 1 })

	// Fourth request: queue full too — shed immediately.
	if _, ok := a.acquire(context.Background()); ok {
		t.Fatal("fourth acquire admitted past a full queue")
	}
	if got := a.stats().Shed; got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}

	// Releasing a slot admits the queued request.
	r1()
	if !<-queuedOK {
		t.Fatal("queued request was not admitted after a release")
	}
	wg.Wait()
	r2()

	st := a.stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("gate not drained: %+v", st)
	}
	if st.Served != 3 {
		t.Fatalf("served = %d, want 3", st.Served)
	}
}

func TestAdmissionQueuedContextCancel(t *testing.T) {
	a := newAdmission(1, 1, nil)
	release, ok := a.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire refused")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := a.acquire(ctx)
		done <- ok
	}()
	waitFor(t, func() bool { return a.stats().Queued == 1 })
	cancel() // the client stops waiting
	if admitted := <-done; admitted {
		t.Fatal("canceled request was admitted")
	}
	if got := a.stats().Shed; got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	release()
}

func TestAdmissionDisabled(t *testing.T) {
	a := newAdmission(-1, 0, nil)
	for i := 0; i < 100; i++ {
		release, ok := a.acquire(context.Background())
		if !ok {
			t.Fatal("disabled gate refused a request")
		}
		release()
	}
	st := a.stats()
	if st.MaxInFlight != 0 || st.Served != 100 || st.Shed != 0 {
		t.Fatalf("disabled gate stats: %+v", st)
	}
}

// TestSearchOverloadSheds503 serves with one in-flight slot and no queue,
// parks a slow query in the slot (latency injected at the index probe), and
// asserts the concurrent request is shed with 503 + Retry-After, visible in
// /api/stats.
func TestSearchOverloadSheds503(t *testing.T) {
	eng := testEngine(t)
	ts := httptest.NewServer(NewServerWithConfig(eng, Config{MaxInFlight: 1, QueueDepth: -1}).Handler())
	t.Cleanup(ts.Close)

	release := make(chan struct{})
	slow := faultinject.NewPlan().Set(faultinject.SiteIndexProbe,
		faultinject.Rule{Delay: 750 * time.Millisecond, Limit: 1})
	deactivate := faultinject.Activate(slow)
	defer deactivate()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, query(ts.URL, "/api/search", "q", "Woody Allen"))
		close(release)
	}()
	// Wait until the slow request occupies the slot.
	waitFor(t, func() bool {
		var st apiEngineStats
		_, body := get(t, query(ts.URL, "/api/stats"))
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			return false
		}
		return st.Admission.InFlight >= 1
	})

	resp, err := http.Get(query(ts.URL, "/api/search", "q", "Woody Allen"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow request: code=%d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 without Retry-After header")
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, "capacity") {
		t.Fatalf("shed body: %q", body.Error)
	}

	<-release
	wg.Wait()
	var st apiEngineStats
	_, stats := get(t, query(ts.URL, "/api/stats"))
	if err := json.Unmarshal([]byte(stats), &st); err != nil {
		t.Fatal(err)
	}
	if st.Admission.Shed < 1 {
		t.Fatalf("shed counter = %d, want >= 1\nstats: %s", st.Admission.Shed, stats)
	}
	if st.Admission.Served < 1 {
		t.Fatalf("served counter = %d, want >= 1", st.Admission.Served)
	}
	if st.Admission.MaxInFlight != 1 {
		t.Fatalf("max_inflight = %d, want 1", st.Admission.MaxInFlight)
	}
}

// TestSearchBudgetParamsPartialAnswer: the budget query parameters produce
// a 200 with the partial flag and truncation reason in the JSON, and tick
// the partial counter in /api/stats.
func TestSearchBudgetParamsPartialAnswer(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, query(ts.URL, "/api/search", "q", "Woody Allen", "maxtuples", "3"))
	if code != http.StatusOK {
		t.Fatalf("code=%d body=%s", code, body)
	}
	var ans apiAnswer
	if err := json.Unmarshal([]byte(body), &ans); err != nil {
		t.Fatal(err)
	}
	if !ans.Partial || ans.Truncation != "tuple-budget" {
		t.Fatalf("partial=%v truncation=%q, want a tuple-budget cut\n%s", ans.Partial, ans.Truncation, body)
	}
	_, stats := get(t, query(ts.URL, "/api/stats"))
	var st apiEngineStats
	if err := json.Unmarshal([]byte(stats), &st); err != nil {
		t.Fatal(err)
	}
	if st.Admission.Partial < 1 {
		t.Fatalf("partial counter = %d, want >= 1", st.Admission.Partial)
	}
	// Malformed budget parameters are 400s, not 500s.
	for _, kv := range [][2]string{{"maxtuples", "x"}, {"maxsteps", "-"}, {"deadline", "soon"}} {
		if code, _ := get(t, query(ts.URL, "/api/search", "q", "Woody Allen", kv[0], kv[1])); code != http.StatusBadRequest {
			t.Fatalf("bad %s accepted: code=%d", kv[0], code)
		}
	}
}

// TestSearchInternalErrorGenericOnTheWire: an injected panic surfaces as a
// plain "internal error" 500 — no panic value, no stack — while the
// internal_errors counter ticks and the server keeps serving.
func TestSearchInternalErrorGenericOnTheWire(t *testing.T) {
	ts := testServer(t)
	plan := faultinject.NewPlan().Set(faultinject.SiteSQLSelect,
		faultinject.Rule{Panic: "secret detail", Limit: 1})
	deactivate := faultinject.Activate(plan)
	defer deactivate()

	code, body := get(t, query(ts.URL, "/api/search", "q", "Woody Allen"))
	if code != http.StatusInternalServerError {
		t.Fatalf("code=%d body=%s, want 500", code, body)
	}
	if strings.Contains(body, "secret detail") || strings.Contains(body, "goroutine") {
		t.Fatalf("500 body leaks internals: %s", body)
	}
	deactivate()

	// The server keeps serving.
	if code, body := get(t, query(ts.URL, "/api/search", "q", "Woody Allen")); code != http.StatusOK {
		t.Fatalf("post-panic request: code=%d body=%s", code, body)
	}
	_, stats := get(t, query(ts.URL, "/api/stats"))
	var st apiEngineStats
	if err := json.Unmarshal([]byte(stats), &st); err != nil {
		t.Fatal(err)
	}
	if st.Admission.Internal < 1 {
		t.Fatalf("internal_errors = %d, want >= 1", st.Admission.Internal)
	}
}

// waitFor polls cond for up to ~2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}

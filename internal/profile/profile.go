// Package profile implements the personalization layer of §3.1: multiple
// sets of weights targeting different user groups ("reviewers" exploring
// large parts of the database vs "cinema fans" preferring short answers"),
// stored in the system and overlaid on the schema graph at query time,
// together with each profile's default degree and cardinality constraints.
package profile

import (
	"fmt"
	"sort"

	"precis/internal/core"
	"precis/internal/schemagraph"
)

// Profile is one stored personalization: weight overlays keyed by edge key
// (schemagraph.Projection.Key / JoinEdge.Key) plus default constraints.
type Profile struct {
	Name        string
	Description string
	// Weights overlays edge weights; keys use "REL.ATTR" for projections
	// and "FROM->TO(col=col)" for join edges.
	Weights map[string]float64
	// Degree is the profile's default degree constraint (nil: caller must
	// supply one).
	Degree core.DegreeConstraint
	// Cardinality is the profile's default cardinality constraint.
	Cardinality core.CardinalityConstraint
	// Strategy is the profile's retrieval strategy.
	Strategy core.Strategy
}

// Apply returns a copy of g with the profile's weight overlays applied.
// The input graph is never mutated.
func (p *Profile) Apply(g *schemagraph.Graph) (*schemagraph.Graph, error) {
	out := g.Clone()
	if len(p.Weights) == 0 {
		return out, nil
	}
	if err := out.ApplyWeights(p.Weights); err != nil {
		return nil, fmt.Errorf("profile %s: %w", p.Name, err)
	}
	return out, nil
}

// Registry stores named profiles.
type Registry struct {
	byName map[string]*Profile
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: make(map[string]*Profile)} }

// Add registers a profile; the name must be unique and non-empty.
func (r *Registry) Add(p *Profile) error {
	if p == nil || p.Name == "" {
		return fmt.Errorf("profile: profile needs a name")
	}
	if _, ok := r.byName[p.Name]; ok {
		return fmt.Errorf("profile: %s already registered", p.Name)
	}
	r.byName[p.Name] = p
	return nil
}

// Get returns the named profile, or nil.
func (r *Registry) Get(name string) *Profile { return r.byName[name] }

// Names returns the registered profile names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Reviewer returns the paper's "reviewer" archetype: in-depth, detailed
// answers exploring larger parts of the database around a single query.
func Reviewer() *Profile {
	return &Profile{
		Name:        "reviewer",
		Description: "in-depth answers exploring a large region of the database",
		Degree:      core.MinPathWeight(0.4),
		Cardinality: core.MaxTuplesPerRelation(25),
		Strategy:    core.StrategyAuto,
	}
}

// Fan returns the paper's "cinema fan" archetype: short answers containing
// only highly related objects.
func Fan() *Profile {
	return &Profile{
		Name:        "fan",
		Description: "short answers with only highly related objects",
		Degree:      core.MinPathWeight(0.9),
		Cardinality: core.MaxTuplesPerRelation(3),
		Strategy:    core.StrategyAuto,
	}
}

package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"precis/internal/core"
)

// Spec is the declarative, JSON-serializable form of a profile — the
// paper's "multiple sets of weights corresponding to different user
// profiles may be stored in the system" (§3.1). Zero-valued constraint
// fields are simply absent from the built profile.
type Spec struct {
	Name        string             `json:"name"`
	Description string             `json:"description,omitempty"`
	Weights     map[string]float64 `json:"weights,omitempty"`
	Degree      DegreeSpec         `json:"degree,omitempty"`
	Cardinality CardinalitySpec    `json:"cardinality,omitempty"`
	Strategy    string             `json:"strategy,omitempty"` // auto | naiveq | roundrobin
}

// DegreeSpec declares the degree constraints of Table 1; set fields combine
// conjunctively.
type DegreeSpec struct {
	MinWeight      float64 `json:"minWeight,omitempty"`
	MaxAttributes  int     `json:"maxAttributes,omitempty"`
	MaxPathLength  int     `json:"maxPathLength,omitempty"`
	TopProjections int     `json:"topProjections,omitempty"`
}

// CardinalitySpec declares the cardinality constraints of Table 2.
type CardinalitySpec struct {
	PerRelation int `json:"perRelation,omitempty"`
	Total       int `json:"total,omitempty"`
}

// Build materializes the spec into a usable profile.
func (s Spec) Build() (*Profile, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("profile: spec needs a name")
	}
	p := &Profile{Name: s.Name, Description: s.Description, Weights: s.Weights}

	var degrees []core.DegreeConstraint
	if s.Degree.MinWeight > 0 {
		if s.Degree.MinWeight > 1 {
			return nil, fmt.Errorf("profile %s: minWeight %v outside (0,1]", s.Name, s.Degree.MinWeight)
		}
		degrees = append(degrees, core.MinPathWeight(s.Degree.MinWeight))
	}
	if s.Degree.MaxAttributes > 0 {
		degrees = append(degrees, core.MaxAttributes(s.Degree.MaxAttributes))
	}
	if s.Degree.MaxPathLength > 0 {
		degrees = append(degrees, core.MaxPathLength(s.Degree.MaxPathLength))
	}
	if s.Degree.TopProjections > 0 {
		degrees = append(degrees, core.TopProjections(s.Degree.TopProjections))
	}
	switch len(degrees) {
	case 0:
	case 1:
		p.Degree = degrees[0]
	default:
		p.Degree = core.AllDegree(degrees...)
	}

	var cards []core.CardinalityConstraint
	if s.Cardinality.PerRelation > 0 {
		cards = append(cards, core.MaxTuplesPerRelation(s.Cardinality.PerRelation))
	}
	if s.Cardinality.Total > 0 {
		cards = append(cards, core.MaxTotalTuples(s.Cardinality.Total))
	}
	switch len(cards) {
	case 0:
	case 1:
		p.Cardinality = cards[0]
	default:
		p.Cardinality = core.AllCardinality(cards...)
	}

	switch strings.ToLower(s.Strategy) {
	case "", "auto":
		p.Strategy = core.StrategyAuto
	case "naiveq":
		p.Strategy = core.StrategyNaive
	case "roundrobin":
		p.Strategy = core.StrategyRoundRobin
	default:
		return nil, fmt.Errorf("profile %s: unknown strategy %q", s.Name, s.Strategy)
	}
	return p, nil
}

// LoadJSON reads one profile spec.
func LoadJSON(r io.Reader) (*Profile, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	return spec.Build()
}

// SaveJSON writes a spec as indented JSON.
func SaveJSON(w io.Writer, spec Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spec)
}

// LoadDir loads every *.json profile in a directory, sorted by file name,
// so a server can boot its stored profiles from disk.
func LoadDir(dir string) ([]*Profile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []*Profile
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		p, err := LoadJSON(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, p)
	}
	return out, nil
}

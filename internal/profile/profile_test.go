package profile

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"precis/internal/core"
	"precis/internal/dataset"
)

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(Reviewer()); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(Fan()); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(Fan()); err == nil {
		t.Error("duplicate profile accepted")
	}
	if err := r.Add(&Profile{}); err == nil {
		t.Error("unnamed profile accepted")
	}
	if err := r.Add(nil); err == nil {
		t.Error("nil profile accepted")
	}
	if got := r.Names(); len(got) != 2 || got[0] != "fan" || got[1] != "reviewer" {
		t.Errorf("Names = %v", got)
	}
	if r.Get("reviewer") == nil || r.Get("nope") != nil {
		t.Error("Get")
	}
}

func TestApplyOverlay(t *testing.T) {
	_, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	p := &Profile{
		Name: "region-lover",
		Weights: map[string]float64{
			"THEATRE.region": 1.0,
			"THEATRE.phone":  0.1,
		},
	}
	applied, err := p.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if applied.Relation("THEATRE").Projection("region").Weight != 1.0 {
		t.Error("overlay not applied")
	}
	// Original untouched.
	if g.Relation("THEATRE").Projection("region").Weight != 0.7 {
		t.Error("original graph mutated")
	}
	bad := &Profile{Name: "bad", Weights: map[string]float64{"NOPE.x": 1}}
	if _, err := bad.Apply(g); err == nil {
		t.Error("unknown overlay key accepted")
	}
}

func TestArchetypesDiffer(t *testing.T) {
	// The reviewer explores more than the fan: same query, larger schema.
	_, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	rev, fan := Reviewer(), Fan()
	rsRev, err := core.GenerateSchema(g, []string{"DIRECTOR"}, rev.Degree)
	if err != nil {
		t.Fatal(err)
	}
	rsFan, err := core.GenerateSchema(g, []string{"DIRECTOR"}, fan.Degree)
	if err != nil {
		t.Fatal(err)
	}
	if len(rsRev.Relations()) <= len(rsFan.Relations()) {
		t.Errorf("reviewer schema (%v) should exceed fan schema (%v)",
			rsRev.Relations(), rsFan.Relations())
	}
}

// TestPersonalizedAnswersDiffer reproduces the §3.1 scenario: one user
// cares about a theatre's region, another about its phone — different
// weights, different answers to the same query.
func TestPersonalizedAnswersDiffer(t *testing.T) {
	_, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	regionFan := &Profile{Name: "region", Weights: map[string]float64{
		"THEATRE.region": 0.9, "THEATRE.phone": 0.2,
	}}
	phoneFan := &Profile{Name: "phone", Weights: map[string]float64{
		"THEATRE.region": 0.2, "THEATRE.phone": 0.9,
	}}
	gRegion, err := regionFan.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	gPhone, err := phoneFan.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	d := core.MinPathWeight(0.9)
	rsRegion, err := core.GenerateSchema(gRegion, []string{"THEATRE"}, d)
	if err != nil {
		t.Fatal(err)
	}
	rsPhone, err := core.GenerateSchema(gPhone, []string{"THEATRE"}, d)
	if err != nil {
		t.Fatal(err)
	}
	hasAttr := func(rs *core.ResultSchema, attr string) bool {
		for _, a := range rs.Projections("THEATRE") {
			if a == attr {
				return true
			}
		}
		return false
	}
	if !hasAttr(rsRegion, "region") || hasAttr(rsRegion, "phone") {
		t.Errorf("region profile projections = %v", rsRegion.Projections("THEATRE"))
	}
	if !hasAttr(rsPhone, "phone") || hasAttr(rsPhone, "region") {
		t.Errorf("phone profile projections = %v", rsPhone.Projections("THEATRE"))
	}
}

func TestSpecBuild(t *testing.T) {
	spec := Spec{
		Name:        "deep",
		Description: "explores widely",
		Weights:     map[string]float64{"MOVIE.year": 1.0},
		Degree:      DegreeSpec{MinWeight: 0.4, MaxAttributes: 12},
		Cardinality: CardinalitySpec{PerRelation: 20, Total: 100},
		Strategy:    "roundrobin",
	}
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "deep" || p.Degree == nil || p.Cardinality == nil {
		t.Fatalf("profile = %+v", p)
	}
	if p.Strategy != core.StrategyRoundRobin {
		t.Errorf("strategy = %v", p.Strategy)
	}
	// Budget combines both cardinality bounds.
	if b := p.Cardinality.Budget("R", map[string]int{"R": 5}, 95); b != 5 {
		t.Errorf("budget = %d", b)
	}
	// Errors.
	if _, err := (Spec{}).Build(); err == nil {
		t.Error("unnamed spec accepted")
	}
	if _, err := (Spec{Name: "x", Strategy: "wibble"}).Build(); err == nil {
		t.Error("bad strategy accepted")
	}
	if _, err := (Spec{Name: "x", Degree: DegreeSpec{MinWeight: 2}}).Build(); err == nil {
		t.Error("bad minWeight accepted")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := Spec{
		Name:        "fan",
		Weights:     map[string]float64{"THEATRE.phone": 0.2},
		Degree:      DegreeSpec{MinWeight: 0.9},
		Cardinality: CardinalitySpec{PerRelation: 3},
	}
	var buf bytes.Buffer
	if err := SaveJSON(&buf, spec); err != nil {
		t.Fatal(err)
	}
	p, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "fan" || p.Weights["THEATRE.phone"] != 0.2 {
		t.Fatalf("profile = %+v", p)
	}
	if _, err := LoadJSON(strings.NewReader(`{"name":"x","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := LoadJSON(strings.NewReader(`{broken`)); err == nil {
		t.Error("broken JSON accepted")
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("b_reviewer.json", `{"name":"reviewer","degree":{"minWeight":0.4},"cardinality":{"perRelation":25}}`)
	write("a_fan.json", `{"name":"fan","degree":{"minWeight":0.9},"cardinality":{"perRelation":3}}`)
	write("notes.txt", "ignored")
	ps, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Name != "fan" || ps[1].Name != "reviewer" {
		t.Fatalf("profiles = %+v", ps)
	}
	// Broken file surfaces with its name.
	write("c_bad.json", `{"name":""}`)
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "c_bad.json") {
		t.Errorf("err = %v", err)
	}
	if _, err := LoadDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing dir accepted")
	}
}

package storage

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation schema.
type Column struct {
	Name string
	Type ColType
}

// Schema is a relation schema R(A1, ..., Ak). Following the paper we assume
// primary keys are not composite; Key names the primary-key column, or is
// empty for relations identified only by their internal tuple id (junction
// relations such as CAST or PLAY in the movies schema).
type Schema struct {
	Name    string
	Columns []Column
	Key     string // primary-key column name, "" if none
}

// NewSchema builds a schema, validating column names.
func NewSchema(name string, key string, cols ...Column) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("storage: schema needs a relation name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("storage: schema %s needs at least one column", name)
	}
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("storage: schema %s has an unnamed column", name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("storage: schema %s declares column %s twice", name, c.Name)
		}
		if c.Type < TypeInt || c.Type > TypeBool {
			return nil, fmt.Errorf("storage: schema %s column %s has invalid type", name, c.Name)
		}
		seen[c.Name] = true
	}
	if key != "" && !seen[key] {
		return nil, fmt.Errorf("storage: schema %s primary key %s is not a column", name, key)
	}
	s := &Schema{Name: name, Columns: append([]Column(nil), cols...), Key: key}
	return s, nil
}

// MustSchema is NewSchema for statically-known-good schemas; it panics on error.
func MustSchema(name string, key string, cols ...Column) *Schema {
	s, err := NewSchema(name, key, cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// HasColumn reports whether the schema declares the named column.
func (s *Schema) HasColumn(name string) bool { return s.ColumnIndex(name) >= 0 }

// ColumnNames returns the declared column names in order.
func (s *Schema) ColumnNames() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// Project returns a copy of the schema restricted to the named columns, in
// the order given. The primary key is kept only if it survives the projection.
func (s *Schema) Project(cols []string) (*Schema, error) {
	out := &Schema{Name: s.Name}
	for _, name := range cols {
		i := s.ColumnIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("storage: relation %s has no column %s", s.Name, name)
		}
		out.Columns = append(out.Columns, s.Columns[i])
		if name == s.Key {
			out.Key = name
		}
	}
	if len(out.Columns) == 0 {
		return nil, fmt.Errorf("storage: projection of %s selects no columns", s.Name)
	}
	return out, nil
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	return &Schema{Name: s.Name, Columns: append([]Column(nil), s.Columns...), Key: s.Key}
}

// String renders the schema as NAME(col type, ...), with the key marked.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		if c.Name == s.Key {
			b.WriteByte('*')
		}
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// ForeignKey declares that FromRelation.FromColumn references
// ToRelation.ToColumn. Foreign keys induce the "natural" join edges of the
// database schema graph; a domain expert may add further join edges on top.
type ForeignKey struct {
	FromRelation string
	FromColumn   string
	ToRelation   string
	ToColumn     string
}

// String renders the foreign key as From.Col -> To.Col.
func (fk ForeignKey) String() string {
	return fmt.Sprintf("%s.%s -> %s.%s", fk.FromRelation, fk.FromColumn, fk.ToRelation, fk.ToColumn)
}

package storage

import (
	"fmt"
	"sort"

	"precis/internal/faultinject"
)

// TupleID is the engine-assigned identity of a stored tuple, unique within a
// database. It plays the role of Oracle's rowid in the paper's architecture:
// the inverted index records tuple ids, and the result-database generator
// fetches tuples by id.
type TupleID int64

// Tuple is one stored row: its id plus one value per schema column.
type Tuple struct {
	ID     TupleID
	Values []Value
}

// slot is the physical storage of a tuple; dead slots are tombstones left by
// deletions so that positions remain stable for live scans.
type slot struct {
	tuple Tuple
	dead  bool
}

// Relation is a populated relation: a schema, its tuples in insertion order,
// and hash indexes on selected columns.
type Relation struct {
	schema  *Schema
	slots   []slot
	byID    map[TupleID]int
	indexes map[string]*HashIndex
	ordered map[string]*OrderedIndex
	live    int
}

// newRelation builds an empty relation for the schema. If the schema has a
// primary key, an index on it is created eagerly so uniqueness checks are O(1).
func newRelation(s *Schema) *Relation {
	r := &Relation{
		schema:  s,
		byID:    make(map[TupleID]int),
		indexes: make(map[string]*HashIndex),
		ordered: make(map[string]*OrderedIndex),
	}
	if s.Key != "" {
		r.indexes[s.Key] = newHashIndex(s.Key, s.ColumnIndex(s.Key))
	}
	return r
}

// Schema returns the relation schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Name returns the relation name.
func (r *Relation) Name() string { return r.schema.Name }

// Len returns the number of live tuples.
func (r *Relation) Len() int { return r.live }

// insert stores a tuple with the given id. Values must already be validated.
func (r *Relation) insert(id TupleID, vals []Value) (TupleID, error) {
	if len(vals) != len(r.schema.Columns) {
		return 0, fmt.Errorf("storage: %s expects %d values, got %d",
			r.schema.Name, len(r.schema.Columns), len(vals))
	}
	for i, v := range vals {
		col := r.schema.Columns[i]
		if !col.Type.Accepts(v.Kind()) {
			return 0, fmt.Errorf("storage: %s.%s is %s, cannot store %s value %q",
				r.schema.Name, col.Name, col.Type, v.Kind(), v.String())
		}
	}
	if key := r.schema.Key; key != "" {
		kv := vals[r.schema.ColumnIndex(key)]
		if kv.IsNull() {
			return 0, fmt.Errorf("storage: %s primary key %s cannot be NULL", r.schema.Name, key)
		}
		if ids := r.indexes[key].lookup(kv); len(ids) > 0 {
			return 0, fmt.Errorf("storage: %s primary key %s=%s already exists",
				r.schema.Name, key, kv.String())
		}
	}
	t := Tuple{ID: id, Values: append([]Value(nil), vals...)}
	pos := len(r.slots)
	r.slots = append(r.slots, slot{tuple: t})
	r.byID[id] = pos
	r.live++
	for _, idx := range r.indexes {
		idx.add(t)
	}
	for _, idx := range r.ordered {
		idx.add(t)
	}
	return id, nil
}

// delete removes the tuple with the given id. It reports whether it existed.
func (r *Relation) delete(id TupleID) bool {
	pos, ok := r.byID[id]
	if !ok {
		return false
	}
	t := r.slots[pos].tuple
	r.slots[pos].dead = true
	delete(r.byID, id)
	r.live--
	for _, idx := range r.indexes {
		idx.remove(t)
	}
	for _, idx := range r.ordered {
		idx.remove(t)
	}
	return true
}

// Get returns the tuple with the given id.
func (r *Relation) Get(id TupleID) (Tuple, bool) {
	pos, ok := r.byID[id]
	if !ok {
		return Tuple{}, false
	}
	return r.slots[pos].tuple, true
}

// Scan calls fn for each live tuple in insertion order until fn returns
// false or the relation is exhausted.
func (r *Relation) Scan(fn func(Tuple) bool) {
	for i := range r.slots {
		if r.slots[i].dead {
			continue
		}
		if !fn(r.slots[i].tuple) {
			return
		}
	}
}

// Tuples returns all live tuples in insertion order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, r.live)
	r.Scan(func(t Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// CreateIndex builds (or returns) a hash index on the named column.
func (r *Relation) CreateIndex(column string) (*HashIndex, error) {
	ci := r.schema.ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("storage: relation %s has no column %s", r.schema.Name, column)
	}
	if idx, ok := r.indexes[column]; ok {
		return idx, nil
	}
	idx := newHashIndex(column, ci)
	r.Scan(func(t Tuple) bool {
		idx.add(t)
		return true
	})
	r.indexes[column] = idx
	return idx, nil
}

// HasIndex reports whether the named column has a hash index.
func (r *Relation) HasIndex(column string) bool {
	_, ok := r.indexes[column]
	return ok
}

// CreateOrderedIndex builds (or returns) a B-tree index on the named
// column, enabling index-backed range scans.
func (r *Relation) CreateOrderedIndex(column string) (*OrderedIndex, error) {
	ci := r.schema.ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("storage: relation %s has no column %s", r.schema.Name, column)
	}
	if idx, ok := r.ordered[column]; ok {
		return idx, nil
	}
	idx := newOrderedIndex(column, ci)
	r.Scan(func(t Tuple) bool {
		idx.add(t)
		return true
	})
	r.ordered[column] = idx
	return idx, nil
}

// OrderedIndexOn returns the ordered index on the named column, or nil.
func (r *Relation) OrderedIndexOn(column string) *OrderedIndex { return r.ordered[column] }

// IndexedColumns returns the indexed column names, sorted.
func (r *Relation) IndexedColumns() []string {
	cols := make([]string, 0, len(r.indexes))
	for c := range r.indexes {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols
}

// Lookup returns the ids of tuples whose column equals v, in ascending id
// order. It uses the column's index when present and falls back to a scan.
func (r *Relation) Lookup(column string, v Value) ([]TupleID, error) {
	if err := faultinject.Fire(faultinject.SiteStorageLookup); err != nil {
		return nil, fmt.Errorf("storage: lookup %s.%s: %w", r.schema.Name, column, err)
	}
	if idx, ok := r.indexes[column]; ok {
		return idx.lookup(v), nil
	}
	ci := r.schema.ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("storage: relation %s has no column %s", r.schema.Name, column)
	}
	var ids []TupleID
	r.Scan(func(t Tuple) bool {
		if t.Values[ci].Equal(v) {
			ids = append(ids, t.ID)
		}
		return true
	})
	return ids, nil
}

// DistinctValues returns the distinct non-NULL values of the named column,
// sorted by Value.Compare.
func (r *Relation) DistinctValues(column string) ([]Value, error) {
	ci := r.schema.ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("storage: relation %s has no column %s", r.schema.Name, column)
	}
	set := make(map[Value]bool)
	r.Scan(func(t Tuple) bool {
		if v := t.Values[ci]; !v.IsNull() {
			set[v] = true
		}
		return true
	})
	vals := make([]Value, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Less(vals[j]) })
	return vals, nil
}

// HashIndex is an equality index mapping column values to sorted tuple ids.
type HashIndex struct {
	column string
	colIdx int
	ids    map[Value][]TupleID
}

func newHashIndex(column string, colIdx int) *HashIndex {
	return &HashIndex{column: column, colIdx: colIdx, ids: make(map[Value][]TupleID)}
}

// Column returns the indexed column name.
func (ix *HashIndex) Column() string { return ix.column }

func (ix *HashIndex) add(t Tuple) {
	v := t.Values[ix.colIdx]
	ids := ix.ids[v]
	// Keep the per-value posting list sorted; appends are almost always at
	// the end because tuple ids are monotonically assigned.
	pos := sort.Search(len(ids), func(i int) bool { return ids[i] >= t.ID })
	ids = append(ids, 0)
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = t.ID
	ix.ids[v] = ids
}

func (ix *HashIndex) remove(t Tuple) {
	v := t.Values[ix.colIdx]
	ids := ix.ids[v]
	pos := sort.Search(len(ids), func(i int) bool { return ids[i] >= t.ID })
	if pos < len(ids) && ids[pos] == t.ID {
		ids = append(ids[:pos], ids[pos+1:]...)
		if len(ids) == 0 {
			delete(ix.ids, v)
		} else {
			ix.ids[v] = ids
		}
	}
}

// lookup returns a copy of the posting list for v.
func (ix *HashIndex) lookup(v Value) []TupleID {
	ids := ix.ids[v]
	if len(ids) == 0 {
		return nil
	}
	return append([]TupleID(nil), ids...)
}

// Cardinality returns the number of distinct indexed values.
func (ix *HashIndex) Cardinality() int { return len(ix.ids) }

// update replaces a tuple's values in place, revalidating types and key
// uniqueness and keeping every index current.
func (r *Relation) update(id TupleID, vals []Value) error {
	pos, ok := r.byID[id]
	if !ok {
		return fmt.Errorf("storage: relation %s has no tuple %d", r.schema.Name, id)
	}
	if len(vals) != len(r.schema.Columns) {
		return fmt.Errorf("storage: %s expects %d values, got %d",
			r.schema.Name, len(r.schema.Columns), len(vals))
	}
	for i, v := range vals {
		col := r.schema.Columns[i]
		if !col.Type.Accepts(v.Kind()) {
			return fmt.Errorf("storage: %s.%s is %s, cannot store %s value %q",
				r.schema.Name, col.Name, col.Type, v.Kind(), v.String())
		}
	}
	old := r.slots[pos].tuple
	if key := r.schema.Key; key != "" {
		ki := r.schema.ColumnIndex(key)
		kv := vals[ki]
		if kv.IsNull() {
			return fmt.Errorf("storage: %s primary key %s cannot be NULL", r.schema.Name, key)
		}
		if !kv.Equal(old.Values[ki]) {
			if ids := r.indexes[key].lookup(kv); len(ids) > 0 {
				return fmt.Errorf("storage: %s primary key %s=%s already exists",
					r.schema.Name, key, kv.String())
			}
		}
	}
	for _, idx := range r.indexes {
		idx.remove(old)
	}
	for _, idx := range r.ordered {
		idx.remove(old)
	}
	updated := Tuple{ID: id, Values: append([]Value(nil), vals...)}
	r.slots[pos].tuple = updated
	for _, idx := range r.indexes {
		idx.add(updated)
	}
	for _, idx := range r.ordered {
		idx.add(updated)
	}
	return nil
}

package storage

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The export format exists for the paper's second use case (§1): once a
// précis has extracted a small but constraint-satisfying sub-database,
// enterprises need to ship it — to test installations, demo machines, CI
// fixtures. A database exports as one CSV file per relation plus a JSON
// manifest carrying schemas, primary keys, foreign keys and indexes, and
// imports back losslessly (including tuple ids, so a re-imported précis
// still verifies against its original with VerifySubDatabase).

// manifest is the JSON sidecar of an exported database.
type manifest struct {
	Name      string             `json:"name"`
	Relations []manifestRelation `json:"relations"`
	Foreign   []ForeignKey       `json:"foreign_keys"`
}

type manifestRelation struct {
	Name    string           `json:"name"`
	Columns []manifestColumn `json:"columns"`
	Key     string           `json:"key,omitempty"`
	Indexes []string         `json:"indexes,omitempty"`
}

type manifestColumn struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

const (
	manifestFile = "manifest.json"
	nullCell     = `\N`
	idColumn     = "__id"
)

func typeName(t ColType) string { return t.String() }

func typeFromName(s string) (ColType, error) {
	switch s {
	case "INT":
		return TypeInt, nil
	case "FLOAT":
		return TypeFloat, nil
	case "TEXT":
		return TypeString, nil
	case "BOOL":
		return TypeBool, nil
	default:
		return 0, fmt.Errorf("storage: unknown column type %q in manifest", s)
	}
}

// encodeCell renders a value for CSV; NULL becomes \N and a literal leading
// backslash is doubled so the encoding is unambiguous.
func encodeCell(v Value) string {
	if v.IsNull() {
		return nullCell
	}
	s := v.String()
	if strings.HasPrefix(s, `\`) {
		return `\` + s
	}
	return s
}

// decodeCell parses a CSV cell back into a value of the declared type.
func decodeCell(cell string, t ColType) (Value, error) {
	if cell == nullCell {
		return Null, nil
	}
	if strings.HasPrefix(cell, `\\`) {
		cell = cell[1:]
	}
	switch t {
	case TypeInt:
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("storage: bad INT cell %q: %w", cell, err)
		}
		return Int(n), nil
	case TypeFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return Null, fmt.Errorf("storage: bad FLOAT cell %q: %w", cell, err)
		}
		return Float(f), nil
	case TypeBool:
		switch cell {
		case "true":
			return Bool(true), nil
		case "false":
			return Bool(false), nil
		default:
			return Null, fmt.Errorf("storage: bad BOOL cell %q", cell)
		}
	default:
		return String(cell), nil
	}
}

// Export writes db as <relation>.csv files plus manifest.json under dir,
// creating the directory if needed.
func Export(db *Database, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	m := manifest{Name: db.Name(), Foreign: db.ForeignKeys()}
	for _, name := range db.RelationNames() {
		rel := db.Relation(name)
		mr := manifestRelation{Name: name, Key: rel.Schema().Key, Indexes: rel.IndexedColumns()}
		for _, c := range rel.Schema().Columns {
			mr.Columns = append(mr.Columns, manifestColumn{Name: c.Name, Type: typeName(c.Type)})
		}
		m.Relations = append(m.Relations, mr)
		if err := exportRelation(rel, filepath.Join(dir, name+".csv")); err != nil {
			return err
		}
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestFile), blob, 0o644)
}

func exportRelation(rel *Relation, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := append([]string{idColumn}, rel.Schema().ColumnNames()...)
	if err := w.Write(header); err != nil {
		return err
	}
	var werr error
	rel.Scan(func(t Tuple) bool {
		row := make([]string, 0, len(t.Values)+1)
		row = append(row, strconv.FormatInt(int64(t.ID), 10))
		for _, v := range t.Values {
			row = append(row, encodeCell(v))
		}
		if err := w.Write(row); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}

// Import reads a database previously written by Export. Tuple ids are
// preserved, declared indexes are rebuilt, and referential integrity is
// re-checked (an import with dangling references fails).
func Import(dir string) (*Database, error) {
	blob, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("storage: bad manifest: %w", err)
	}
	db := NewDatabase(m.Name)
	for _, mr := range m.Relations {
		cols := make([]Column, 0, len(mr.Columns))
		for _, mc := range mr.Columns {
			t, err := typeFromName(mc.Type)
			if err != nil {
				return nil, err
			}
			cols = append(cols, Column{Name: mc.Name, Type: t})
		}
		schema, err := NewSchema(mr.Name, mr.Key, cols...)
		if err != nil {
			return nil, err
		}
		if _, err := db.CreateRelation(schema); err != nil {
			return nil, err
		}
		if err := importRelation(db, mr, filepath.Join(dir, mr.Name+".csv")); err != nil {
			return nil, err
		}
		for _, idx := range mr.Indexes {
			if _, err := db.Relation(mr.Name).CreateIndex(idx); err != nil {
				return nil, err
			}
		}
	}
	for _, fk := range m.Foreign {
		if err := db.AddForeignKey(fk); err != nil {
			return nil, err
		}
	}
	if violations := db.CheckIntegrity(); len(violations) > 0 {
		return nil, fmt.Errorf("storage: import violates referential integrity: %s (and %d more)",
			violations[0], len(violations)-1)
	}
	return db, nil
}

// importRelation streams one relation's CSV into db. Malformed input is
// reported with the file, the 1-based line (as the csv parser tracks it, so
// quoted multi-line cells don't shift the count), and the offending column
// and cell — a bad fixture should cost seconds to locate, not a binary
// search over the file.
func importRelation(db *Database, mr manifestRelation, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(f)
	// Rows of the wrong arity are diagnosed below with column context
	// instead of the csv package's bare count mismatch.
	r.FieldsPerRecord = -1

	header, err := r.Read()
	if err != nil {
		return fmt.Errorf("storage: %s: missing header: %w", path, err)
	}
	if len(header) != len(mr.Columns)+1 || header[0] != idColumn {
		return fmt.Errorf("storage: %s:1: header %v does not match manifest (want %q + %d columns)",
			path, header, idColumn, len(mr.Columns))
	}
	for i, mc := range mr.Columns {
		if header[i+1] != mc.Name {
			return fmt.Errorf("storage: %s:1: column %d is %q, manifest says %q",
				path, i, header[i+1], mc.Name)
		}
	}
	types := make([]ColType, len(mr.Columns))
	for i, mc := range mr.Columns {
		types[i], _ = typeFromName(mc.Type)
	}
	for {
		rec, err := r.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("storage: %s: %w", path, err)
		}
		line, _ := r.FieldPos(0)
		if len(rec) != len(types)+1 {
			return fmt.Errorf("storage: %s:%d: row has %d fields, schema %s wants %d (%s + %s)",
				path, line, len(rec), mr.Name, len(types)+1, idColumn, columnList(mr.Columns))
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return fmt.Errorf("storage: %s:%d: column %s: bad tuple id %q", path, line, idColumn, rec[0])
		}
		vals := make([]Value, len(types))
		for i, cell := range rec[1:] {
			v, err := decodeCell(cell, types[i])
			if err != nil {
				return fmt.Errorf("storage: %s:%d: column %s (field %d): %w",
					path, line, mr.Columns[i].Name, i+2, err)
			}
			vals[i] = v
		}
		if err := db.InsertWithID(mr.Name, TupleID(id), vals...); err != nil {
			return fmt.Errorf("storage: %s:%d: %w", path, line, err)
		}
	}
}

// columnList renders manifest column names for error messages.
func columnList(cols []manifestColumn) string {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return strings.Join(names, ",")
}

package storage

import (
	"fmt"
	"sort"
)

// Database is a named collection of relations plus the foreign keys that
// relate them. Tuple ids are unique across the whole database so that an
// inverted-index posting (relation, attribute, tuple id) is unambiguous.
type Database struct {
	name   string
	rels   map[string]*Relation
	order  []string // relation names in creation order, for deterministic walks
	fks    []ForeignKey
	nextID TupleID
	// Strided allocation (SetIDStride): when idStride > 1, Insert only
	// allocates ids ≡ idOffset (mod idStride) — shard-local allocation
	// that stays globally unique.
	idOffset, idStride TupleID
	// Dirty tracking (dirty.go): nil unless EnableDirtyTracking — every
	// mutation below notifies it so incremental checkpoints can capture
	// only what changed.
	tracker *dirtyTracker
}

// NewDatabase returns an empty database.
func NewDatabase(name string) *Database {
	return &Database{name: name, rels: make(map[string]*Relation), nextID: 1}
}

// Name returns the database name.
func (db *Database) Name() string { return db.name }

// CreateRelation adds an empty relation for the schema.
func (db *Database) CreateRelation(s *Schema) (*Relation, error) {
	if s == nil {
		return nil, fmt.Errorf("storage: nil schema")
	}
	if _, ok := db.rels[s.Name]; ok {
		return nil, fmt.Errorf("storage: relation %s already exists", s.Name)
	}
	r := newRelation(s.Clone())
	db.rels[s.Name] = r
	db.order = append(db.order, s.Name)
	return r, nil
}

// MustCreateRelation is CreateRelation that panics on error, for fixtures.
func (db *Database) MustCreateRelation(s *Schema) *Relation {
	r, err := db.CreateRelation(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Relation returns the named relation, or nil.
func (db *Database) Relation(name string) *Relation { return db.rels[name] }

// RelationNames returns the relation names in creation order.
func (db *Database) RelationNames() []string {
	return append([]string(nil), db.order...)
}

// NumRelations returns the number of relations.
func (db *Database) NumRelations() int { return len(db.order) }

// TotalTuples returns the number of live tuples across all relations.
func (db *Database) TotalTuples() int {
	n := 0
	for _, name := range db.order {
		n += db.rels[name].Len()
	}
	return n
}

// AddForeignKey declares a foreign key and validates that both endpoints
// exist. It does not retro-check existing data; see CheckIntegrity.
func (db *Database) AddForeignKey(fk ForeignKey) error {
	from := db.rels[fk.FromRelation]
	if from == nil {
		return fmt.Errorf("storage: foreign key %s: no relation %s", fk, fk.FromRelation)
	}
	if !from.Schema().HasColumn(fk.FromColumn) {
		return fmt.Errorf("storage: foreign key %s: %s has no column %s", fk, fk.FromRelation, fk.FromColumn)
	}
	to := db.rels[fk.ToRelation]
	if to == nil {
		return fmt.Errorf("storage: foreign key %s: no relation %s", fk, fk.ToRelation)
	}
	if !to.Schema().HasColumn(fk.ToColumn) {
		return fmt.Errorf("storage: foreign key %s: %s has no column %s", fk, fk.ToRelation, fk.ToColumn)
	}
	db.fks = append(db.fks, fk)
	return nil
}

// ForeignKeys returns the declared foreign keys.
func (db *Database) ForeignKeys() []ForeignKey {
	return append([]ForeignKey(nil), db.fks...)
}

// SetForeignKeys replaces the declared foreign keys wholesale. The précis
// generator uses it to trim constraints a budget-truncated answer can no
// longer satisfy; endpoints are not re-validated, so callers should pass a
// subset of keys previously accepted by AddForeignKey.
func (db *Database) SetForeignKeys(fks []ForeignKey) {
	db.fks = append([]ForeignKey(nil), fks...)
}

// Insert adds a tuple to the named relation and returns its id.
func (db *Database) Insert(relation string, vals ...Value) (TupleID, error) {
	r := db.rels[relation]
	if r == nil {
		return 0, fmt.Errorf("storage: no relation %s", relation)
	}
	id := db.alignID(db.nextID)
	got, err := r.insert(id, vals)
	if err != nil {
		return 0, err
	}
	db.nextID = id + 1
	db.tracker.mark(relation, got)
	return got, nil
}

// alignID advances id to the database's stride class: the smallest id' >= id
// with id' ≡ offset (mod stride). With no stride configured it is the
// identity.
func (db *Database) alignID(id TupleID) TupleID {
	if db.idStride <= 1 {
		return id
	}
	rem := id % db.idStride
	if rem == db.idOffset {
		return id
	}
	id += (db.idOffset - rem + db.idStride) % db.idStride
	return id
}

// SetIDStride restricts the ids Insert allocates to the congruence class
// id ≡ offset (mod stride). A hash-partitioned shard sets stride to the
// shard count and offset to its own index, so every shard allocates ids it
// owns and the ids stay globally unique without any cross-shard
// coordination. stride <= 1 clears the restriction. The setting is not
// persisted: a sharded coordinator re-applies it after each shard
// recovers.
func (db *Database) SetIDStride(offset, stride TupleID) error {
	if stride <= 1 {
		db.idOffset, db.idStride = 0, 0
		return nil
	}
	if offset < 0 || offset >= stride {
		return fmt.Errorf("storage: id stride offset %d out of range [0,%d)", offset, stride)
	}
	db.idOffset, db.idStride = offset, stride
	return nil
}

// InsertWithID adds a tuple with a caller-chosen id, used when materializing
// a result database whose tuples must keep the ids of the original database.
func (db *Database) InsertWithID(relation string, id TupleID, vals ...Value) error {
	r := db.rels[relation]
	if r == nil {
		return fmt.Errorf("storage: no relation %s", relation)
	}
	if id <= 0 {
		return fmt.Errorf("storage: tuple id must be positive, got %d", id)
	}
	if _, ok := r.Get(id); ok {
		return fmt.Errorf("storage: relation %s already holds tuple %d", relation, id)
	}
	if _, err := r.insert(id, vals); err != nil {
		return err
	}
	if id >= db.nextID {
		db.nextID = id + 1
	}
	db.tracker.mark(relation, id)
	return nil
}

// NextTupleID returns the id the next Insert would assign. The persistence
// layer snapshots it so a recovered database keeps allocating fresh ids
// even when the highest-id tuple has been deleted.
func (db *Database) NextTupleID() TupleID { return db.nextID }

// SetNextTupleID raises the next-id watermark (it never lowers it: tuple
// ids must stay unique for the lifetime of a database, across restarts).
// The snapshot decoder calls it with the persisted watermark before
// replaying tuples.
func (db *Database) SetNextTupleID(id TupleID) {
	if id > db.nextID {
		db.nextID = id
	}
}

// Delete removes a tuple from the named relation.
func (db *Database) Delete(relation string, id TupleID) (bool, error) {
	r := db.rels[relation]
	if r == nil {
		return false, fmt.Errorf("storage: no relation %s", relation)
	}
	ok := r.delete(id)
	if ok {
		db.tracker.markDeleted(relation, id)
	}
	return ok, nil
}

// CreateJoinIndexes builds hash indexes on every column that participates in
// a declared foreign key, mirroring the paper's "indexes on all join
// attributes" experimental setup.
func (db *Database) CreateJoinIndexes() error {
	for _, fk := range db.fks {
		if _, err := db.rels[fk.FromRelation].CreateIndex(fk.FromColumn); err != nil {
			return err
		}
		if _, err := db.rels[fk.ToRelation].CreateIndex(fk.ToColumn); err != nil {
			return err
		}
	}
	return nil
}

// IntegrityViolation describes one referential-integrity failure.
type IntegrityViolation struct {
	ForeignKey ForeignKey
	TupleID    TupleID
	Value      Value
}

// String renders the violation for error messages.
func (v IntegrityViolation) String() string {
	return fmt.Sprintf("tuple %d of %s: %s=%s has no match in %s.%s",
		v.TupleID, v.ForeignKey.FromRelation, v.ForeignKey.FromColumn,
		v.Value.String(), v.ForeignKey.ToRelation, v.ForeignKey.ToColumn)
}

// CheckIntegrity verifies every declared foreign key over the current data
// and returns all violations found. NULL references are allowed.
func (db *Database) CheckIntegrity() []IntegrityViolation {
	var out []IntegrityViolation
	for _, fk := range db.fks {
		from := db.rels[fk.FromRelation]
		to := db.rels[fk.ToRelation]
		fi := from.Schema().ColumnIndex(fk.FromColumn)
		from.Scan(func(t Tuple) bool {
			v := t.Values[fi]
			if v.IsNull() {
				return true
			}
			ids, err := to.Lookup(fk.ToColumn, v)
			if err == nil && len(ids) == 0 {
				out = append(out, IntegrityViolation{ForeignKey: fk, TupleID: t.ID, Value: v})
			}
			return true
		})
	}
	return out
}

// Stats summarises a database for reporting.
type Stats struct {
	Relations int
	Tuples    int
	PerRel    map[string]int
}

// Stats returns relation and tuple counts.
func (db *Database) Stats() Stats {
	st := Stats{Relations: len(db.order), PerRel: make(map[string]int, len(db.order))}
	for _, name := range db.order {
		n := db.rels[name].Len()
		st.PerRel[name] = n
		st.Tuples += n
	}
	return st
}

// String renders a short summary like name{R1:10, R2:20}.
func (db *Database) String() string {
	names := append([]string(nil), db.order...)
	sort.Strings(names)
	s := db.name + "{"
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s:%d", n, db.rels[n].Len())
	}
	return s + "}"
}

// DropRelation removes a relation and every foreign key that references or
// departs from it.
func (db *Database) DropRelation(name string) error {
	if _, ok := db.rels[name]; !ok {
		return fmt.Errorf("storage: no relation %s", name)
	}
	delete(db.rels, name)
	for i, n := range db.order {
		if n == name {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	kept := db.fks[:0]
	for _, fk := range db.fks {
		if fk.FromRelation != name && fk.ToRelation != name {
			kept = append(kept, fk)
		}
	}
	db.fks = kept
	return nil
}

// Update replaces the values of an existing tuple, maintaining indexes and
// primary-key uniqueness. The tuple keeps its id.
func (db *Database) Update(relation string, id TupleID, vals []Value) error {
	r := db.rels[relation]
	if r == nil {
		return fmt.Errorf("storage: no relation %s", relation)
	}
	if err := r.update(id, vals); err != nil {
		return err
	}
	db.tracker.mark(relation, id)
	return nil
}

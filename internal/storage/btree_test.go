package storage

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestBTreeBasics(t *testing.T) {
	bt := newBTree()
	if !bt.insert(btreeKey{v: Int(1), id: 1}) {
		t.Fatal("insert")
	}
	if bt.insert(btreeKey{v: Int(1), id: 1}) {
		t.Fatal("duplicate accepted")
	}
	if !bt.insert(btreeKey{v: Int(1), id: 2}) {
		t.Fatal("same value, new id rejected")
	}
	if bt.size != 2 {
		t.Fatalf("size = %d", bt.size)
	}
	if !bt.contains(btreeKey{v: Int(1), id: 2}) {
		t.Fatal("contains")
	}
	if !bt.delete(btreeKey{v: Int(1), id: 1}) || bt.delete(btreeKey{v: Int(1), id: 1}) {
		t.Fatal("delete semantics")
	}
	if bt.size != 1 {
		t.Fatalf("size after delete = %d", bt.size)
	}
}

// checkBTreeInvariants walks the tree verifying node fill, ordering and
// uniform leaf depth.
func checkBTreeInvariants(t *testing.T, bt *btree) {
	t.Helper()
	var walk func(n *btreeNode, depth int, isRoot bool) int
	var leafDepth = -1
	var prev *btreeKey
	walk = func(n *btreeNode, depth int, isRoot bool) int {
		if !isRoot && (len(n.keys) < btreeDegree-1 || len(n.keys) > 2*btreeDegree-1) {
			t.Fatalf("node fill %d outside [%d, %d]", len(n.keys), btreeDegree-1, 2*btreeDegree-1)
		}
		if n.leaf() {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				t.Fatalf("leaf depth %d != %d", depth, leafDepth)
			}
			for i := range n.keys {
				if prev != nil && !prev.less(n.keys[i]) {
					t.Fatalf("keys out of order")
				}
				k := n.keys[i]
				prev = &k
			}
			return 1
		}
		if len(n.children) != len(n.keys)+1 {
			t.Fatalf("children %d for %d keys", len(n.children), len(n.keys))
		}
		count := 0
		for i := range n.keys {
			count += walk(n.children[i], depth+1, false)
			if prev != nil && !prev.less(n.keys[i]) {
				t.Fatalf("separator out of order")
			}
			k := n.keys[i]
			prev = &k
		}
		count += walk(n.children[len(n.children)-1], depth+1, false)
		return count
	}
	walk(bt.root, 0, true)
}

// TestBTreeRandomOpsVsReference drives the tree with random inserts and
// deletes, checking contents against a sorted-slice reference model and
// structural invariants along the way.
func TestBTreeRandomOpsVsReference(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	bt := newBTree()
	ref := map[btreeKey]bool{}
	for step := 0; step < 20000; step++ {
		k := btreeKey{v: Int(int64(r.Intn(500))), id: TupleID(r.Intn(10))}
		if r.Intn(3) == 0 {
			got := bt.delete(k)
			want := ref[k]
			if got != want {
				t.Fatalf("step %d: delete(%v) = %v, want %v", step, k, got, want)
			}
			delete(ref, k)
		} else {
			got := bt.insert(k)
			want := !ref[k]
			if got != want {
				t.Fatalf("step %d: insert(%v) = %v, want %v", step, k, got, want)
			}
			ref[k] = true
		}
		if step%2500 == 0 {
			checkBTreeInvariants(t, bt)
		}
	}
	checkBTreeInvariants(t, bt)
	if bt.size != len(ref) {
		t.Fatalf("size %d != %d", bt.size, len(ref))
	}
	// Full in-order traversal equals the sorted reference.
	var got []btreeKey
	bt.ascend(btreeKey{v: Null, id: -1 << 62}, func(k btreeKey) bool {
		got = append(got, k)
		return true
	})
	want := make([]btreeKey, 0, len(ref))
	for k := range ref {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i].less(want[j]) })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("traversal mismatch: %d vs %d keys", len(got), len(want))
	}
}

func TestOrderedIndexRange(t *testing.T) {
	db := NewDatabase("d")
	db.MustCreateRelation(MustSchema("R", "",
		Column{"year", TypeInt}, Column{"title", TypeString}))
	rel := db.Relation("R")
	if _, err := rel.CreateOrderedIndex("year"); err != nil {
		t.Fatal(err)
	}
	years := []int64{1990, 1995, 2000, 2000, 2005, 2010}
	for _, y := range years {
		if _, err := db.Insert("R", Int(y), String("t")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Insert("R", Null, String("null-year")); err != nil {
		t.Fatal(err)
	}
	ix := rel.OrderedIndexOn("year")
	if ix == nil {
		t.Fatal("no ordered index")
	}
	if ix.Len() != 6 {
		t.Fatalf("Len = %d (NULL must not be indexed)", ix.Len())
	}
	collect := func(lo, hi *Bound) []int64 {
		var out []int64
		ix.Range(lo, hi, func(v Value, id TupleID) bool {
			out = append(out, v.AsInt())
			return true
		})
		return out
	}
	if got := collect(&Bound{Int(1995), true}, &Bound{Int(2005), true}); !reflect.DeepEqual(got, []int64{1995, 2000, 2000, 2005}) {
		t.Errorf("closed range = %v", got)
	}
	if got := collect(&Bound{Int(1995), false}, &Bound{Int(2005), false}); !reflect.DeepEqual(got, []int64{2000, 2000}) {
		t.Errorf("open range = %v", got)
	}
	if got := collect(nil, &Bound{Int(1995), true}); !reflect.DeepEqual(got, []int64{1990, 1995}) {
		t.Errorf("unbounded low = %v", got)
	}
	if got := collect(&Bound{Int(2005), true}, nil); !reflect.DeepEqual(got, []int64{2005, 2010}) {
		t.Errorf("unbounded high = %v", got)
	}
	if got := collect(nil, nil); len(got) != 6 {
		t.Errorf("full range = %v", got)
	}
	// Early stop.
	n := 0
	ix.Range(nil, nil, func(Value, TupleID) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

// TestOrderedIndexMaintenance: the index follows inserts, deletes and
// updates.
func TestOrderedIndexMaintenance(t *testing.T) {
	db := NewDatabase("d")
	db.MustCreateRelation(MustSchema("R", "id",
		Column{"id", TypeInt}, Column{"year", TypeInt}))
	rel := db.Relation("R")
	if _, err := rel.CreateOrderedIndex("year"); err != nil {
		t.Fatal(err)
	}
	id1, _ := db.Insert("R", Int(1), Int(2000))
	id2, _ := db.Insert("R", Int(2), Int(2005))
	if _, err := db.Delete("R", id1); err != nil {
		t.Fatal(err)
	}
	if err := db.Update("R", id2, []Value{Int(2), Int(1990)}); err != nil {
		t.Fatal(err)
	}
	ix := rel.OrderedIndexOn("year")
	var got []int64
	ix.Range(nil, nil, func(v Value, _ TupleID) bool {
		got = append(got, v.AsInt())
		return true
	})
	if !reflect.DeepEqual(got, []int64{1990}) {
		t.Errorf("index contents = %v", got)
	}
}

// TestOrderedIndexMatchesScan is the range-index correctness property over
// random data and random bounds.
func TestOrderedIndexMatchesScan(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	db := NewDatabase("d")
	db.MustCreateRelation(MustSchema("R", "",
		Column{"k", TypeInt}, Column{"pad", TypeString}))
	rel := db.Relation("R")
	if _, err := rel.CreateOrderedIndex("k"); err != nil {
		t.Fatal(err)
	}
	var live []TupleID
	for step := 0; step < 2000; step++ {
		if len(live) > 0 && r.Intn(4) == 0 {
			i := r.Intn(len(live))
			if _, err := db.Delete("R", live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		} else {
			var v Value = Int(int64(r.Intn(100)))
			if r.Intn(10) == 0 {
				v = Null
			}
			id, err := db.Insert("R", v, String("x"))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		}
	}
	ix := rel.OrderedIndexOn("k")
	for trial := 0; trial < 200; trial++ {
		lo := int64(r.Intn(100))
		hi := lo + int64(r.Intn(30))
		loIncl, hiIncl := r.Intn(2) == 0, r.Intn(2) == 0
		var got []TupleID
		ix.Range(&Bound{Int(lo), loIncl}, &Bound{Int(hi), hiIncl}, func(_ Value, id TupleID) bool {
			got = append(got, id)
			return true
		})
		var want []TupleID
		rel.Scan(func(tu Tuple) bool {
			v := tu.Values[0]
			if v.IsNull() {
				return true
			}
			k := v.AsInt()
			if (k > lo || (loIncl && k == lo)) && (k < hi || (hiIncl && k == hi)) {
				want = append(want, tu.ID)
			}
			return true
		})
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d [%d..%d]: index %v != scan %v", trial, lo, hi, got, want)
		}
	}
}

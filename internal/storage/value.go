// Package storage implements the in-memory relational engine that the précis
// system runs on. It plays the role that Oracle 9i R2 plays in the paper: it
// stores typed relations, enforces primary-key and referential-integrity
// constraints, and maintains hash indexes on join attributes so that the
// result-database generator can fetch tuples by join-attribute value in
// near-constant time (the IndexTime + TupleTime cost model of the paper).
package storage

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type carried by a Value.
type Kind uint8

// The supported value kinds. Null is the zero Kind so that the zero Value is
// a well-formed SQL NULL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a compact tagged union holding a single attribute value.
// Values are comparable with == (no reference fields), which lets them be
// used directly as hash-index and map keys.
type Value struct {
	kind Kind
	i    int64 // also carries bool as 0/1
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It is valid only when Kind is KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the numeric payload as a float64 for KindInt and KindFloat.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload. It is valid only when Kind is KindString.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload. It is valid only when Kind is KindBool.
func (v Value) AsBool() bool { return v.i != 0 }

// String renders the value for display; strings are returned verbatim.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// SQL renders the value as a SQL literal (strings quoted and escaped).
func (v Value) SQL() string {
	if v.kind == KindString {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.String()
}

// numericKinds reports whether both values carry numbers.
func numericKinds(a, b Value) bool {
	return (a.kind == KindInt || a.kind == KindFloat) && (b.kind == KindInt || b.kind == KindFloat)
}

// Equal reports value equality. Int and float compare numerically; NULL is
// equal only to NULL (three-valued logic is handled by callers that need it).
func (v Value) Equal(o Value) bool {
	if v.kind == o.kind {
		return v == o
	}
	if numericKinds(v, o) {
		return v.AsFloat() == o.AsFloat()
	}
	return false
}

// Compare returns -1, 0 or +1 ordering v relative to o. NULL sorts first,
// then cross-kind values order by kind; numbers compare numerically.
func (v Value) Compare(o Value) int {
	if numericKinds(v, o) && v.kind != o.kind {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		switch {
		case v.kind < o.kind:
			return -1
		default:
			return 1
		}
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindInt, KindBool:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		default:
			return 0
		}
	case KindFloat:
		switch {
		case v.f < o.f:
			return -1
		case v.f > o.f:
			return 1
		default:
			return 0
		}
	case KindString:
		return strings.Compare(v.s, o.s)
	default:
		return 0
	}
}

// Less reports whether v sorts before o under Compare.
func (v Value) Less(o Value) bool { return v.Compare(o) < 0 }

// ColType is the declared type of a column.
type ColType uint8

// Declared column types.
const (
	TypeInt ColType = iota + 1
	TypeFloat
	TypeString
	TypeBool
)

// String returns the SQL-ish name of the type.
func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "TEXT"
	case TypeBool:
		return "BOOL"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Accepts reports whether a value of kind k may be stored in a column of
// type t. NULL is storable in any column; ints are accepted by float columns.
func (t ColType) Accepts(k Kind) bool {
	switch k {
	case KindNull:
		return true
	case KindInt:
		return t == TypeInt || t == TypeFloat
	case KindFloat:
		return t == TypeFloat
	case KindString:
		return t == TypeString
	case KindBool:
		return t == TypeBool
	default:
		return false
	}
}

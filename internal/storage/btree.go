package storage

// An in-memory B-tree keyed by (Value, TupleID), backing ordered indexes so
// that range predicates (year > 2000) can use an index instead of a scan.
// The composite key makes duplicate column values first-class: each tuple
// occupies its own key, and range scans yield tuples in (value, id) order.
//
// Classic CLRS structure with minimum degree btreeDegree: every node except
// the root holds between t-1 and 2t-1 keys; insertion splits full nodes on
// the way down; deletion rebalances (borrow or merge) on the way down so
// recursion always descends into a node with at least t keys.

const btreeDegree = 16 // t: max 2t-1 = 31 keys per node

// btreeKey is the composite (value, tuple id) key.
type btreeKey struct {
	v  Value
	id TupleID
}

// less orders keys by value, then id.
func (k btreeKey) less(o btreeKey) bool {
	if c := k.v.Compare(o.v); c != 0 {
		return c < 0
	}
	return k.id < o.id
}

func (k btreeKey) equal(o btreeKey) bool { return !k.less(o) && !o.less(k) }

// btreeNode is one node: n keys and, if internal, n+1 children.
type btreeNode struct {
	keys     []btreeKey
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return n.children == nil }

// findKey returns the first index i with keys[i] >= k.
func (n *btreeNode) findKey(k btreeKey) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid].less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// btree is the tree itself.
type btree struct {
	root *btreeNode
	size int
}

func newBTree() *btree { return &btree{root: &btreeNode{}} }

// insert adds a key; duplicates (same value and id) are rejected.
func (t *btree) insert(k btreeKey) bool {
	if t.contains(k) {
		return false
	}
	r := t.root
	if len(r.keys) == 2*btreeDegree-1 {
		newRoot := &btreeNode{children: []*btreeNode{r}}
		newRoot.splitChild(0)
		t.root = newRoot
	}
	t.root.insertNonFull(k)
	t.size++
	return true
}

// contains reports whether the exact key exists.
func (t *btree) contains(k btreeKey) bool {
	n := t.root
	for {
		i := n.findKey(k)
		if i < len(n.keys) && n.keys[i].equal(k) {
			return true
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
}

// splitChild splits the full child at index i, hoisting its median.
func (n *btreeNode) splitChild(i int) {
	child := n.children[i]
	t := btreeDegree
	median := child.keys[t-1]
	right := &btreeNode{keys: append([]btreeKey(nil), child.keys[t:]...)}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[t:]...)
		child.children = child.children[:t]
	}
	child.keys = child.keys[:t-1]

	n.keys = append(n.keys, btreeKey{})
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *btreeNode) insertNonFull(k btreeKey) {
	for {
		i := n.findKey(k)
		if n.leaf() {
			n.keys = append(n.keys, btreeKey{})
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = k
			return
		}
		if len(n.children[i].keys) == 2*btreeDegree-1 {
			n.splitChild(i)
			if n.keys[i].less(k) {
				i++
			}
		}
		n = n.children[i]
	}
}

// delete removes a key, reporting whether it existed.
func (t *btree) delete(k btreeKey) bool {
	if !t.contains(k) {
		return false
	}
	t.root.delete(k)
	if len(t.root.keys) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	t.size--
	return true
}

// delete removes k from the subtree rooted at n; n is guaranteed to hold at
// least btreeDegree keys whenever it is not the root.
func (n *btreeNode) delete(k btreeKey) {
	t := btreeDegree
	i := n.findKey(k)
	if i < len(n.keys) && n.keys[i].equal(k) {
		if n.leaf() {
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			return
		}
		// Internal node: replace with predecessor or successor, or merge.
		if len(n.children[i].keys) >= t {
			pred := n.children[i].max()
			n.keys[i] = pred
			n.children[i].delete(pred)
			return
		}
		if len(n.children[i+1].keys) >= t {
			succ := n.children[i+1].min()
			n.keys[i] = succ
			n.children[i+1].delete(succ)
			return
		}
		n.mergeChildren(i)
		n.children[i].delete(k)
		return
	}
	if n.leaf() {
		return // not present (callers pre-check, so unreachable)
	}
	// Ensure the child we descend into has >= t keys.
	if len(n.children[i].keys) < t {
		i = n.fill(i)
	}
	n.children[i].delete(k)
}

// fill guarantees children[i] has >= t keys by borrowing from a sibling or
// merging; it returns the (possibly shifted) child index to descend into.
func (n *btreeNode) fill(i int) int {
	t := btreeDegree
	if i > 0 && len(n.children[i-1].keys) >= t {
		// Borrow from the left sibling through the separator.
		child, left := n.children[i], n.children[i-1]
		child.keys = append(child.keys, btreeKey{})
		copy(child.keys[1:], child.keys)
		child.keys[0] = n.keys[i-1]
		n.keys[i-1] = left.keys[len(left.keys)-1]
		left.keys = left.keys[:len(left.keys)-1]
		if !child.leaf() {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].keys) >= t {
		// Borrow from the right sibling.
		child, right := n.children[i], n.children[i+1]
		child.keys = append(child.keys, n.keys[i])
		n.keys[i] = right.keys[0]
		right.keys = append(right.keys[:0], right.keys[1:]...)
		if !child.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
		return i
	}
	// Merge with a sibling.
	if i == len(n.children)-1 {
		i--
	}
	n.mergeChildren(i)
	return i
}

// mergeChildren folds children[i+1] and the separator key into children[i].
func (n *btreeNode) mergeChildren(i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys = append(child.keys, n.keys[i])
	child.keys = append(child.keys, right.keys...)
	if !child.leaf() {
		child.children = append(child.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func (n *btreeNode) min() btreeKey {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0]
}

func (n *btreeNode) max() btreeKey {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1]
}

// ascend visits keys >= from in order until fn returns false.
func (t *btree) ascend(from btreeKey, fn func(btreeKey) bool) {
	t.root.ascend(from, fn)
}

func (n *btreeNode) ascend(from btreeKey, fn func(btreeKey) bool) bool {
	i := n.findKey(from)
	for ; i < len(n.keys); i++ {
		if !n.leaf() {
			if !n.children[i].ascend(from, fn) {
				return false
			}
		}
		if !fn(n.keys[i]) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(from, fn)
	}
	return true
}

// Bound is one end of a range: a value plus whether it is inclusive. A nil
// *Bound means unbounded.
type Bound struct {
	Value     Value
	Inclusive bool
}

// OrderedIndex is a B-tree index over one column, supporting range scans in
// (value, tuple id) order alongside exact lookups.
type OrderedIndex struct {
	column string
	colIdx int
	tree   *btree
}

func newOrderedIndex(column string, colIdx int) *OrderedIndex {
	return &OrderedIndex{column: column, colIdx: colIdx, tree: newBTree()}
}

// Column returns the indexed column name.
func (ix *OrderedIndex) Column() string { return ix.column }

// Len returns the number of indexed (non-NULL) entries.
func (ix *OrderedIndex) Len() int { return ix.tree.size }

func (ix *OrderedIndex) add(t Tuple) {
	if v := t.Values[ix.colIdx]; !v.IsNull() {
		ix.tree.insert(btreeKey{v: v, id: t.ID})
	}
}

func (ix *OrderedIndex) remove(t Tuple) {
	if v := t.Values[ix.colIdx]; !v.IsNull() {
		ix.tree.delete(btreeKey{v: v, id: t.ID})
	}
}

// minKeyFor returns the smallest possible key for a bound value.
func minKeyFor(v Value) btreeKey { return btreeKey{v: v, id: -1 << 62} }

// Range visits tuple ids whose column value lies within [lo, hi] (either
// side may be nil for unbounded, and each side may be exclusive), in
// ascending (value, id) order, until fn returns false. NULL values are
// never part of a range (SQL semantics).
func (ix *OrderedIndex) Range(lo, hi *Bound, fn func(Value, TupleID) bool) {
	start := btreeKey{v: Null, id: -1 << 62}
	if lo != nil {
		start = minKeyFor(lo.Value)
	}
	ix.tree.ascend(start, func(k btreeKey) bool {
		if k.v.IsNull() {
			return true // skip NULLs, keep scanning (they sort first)
		}
		if lo != nil {
			c := k.v.Compare(lo.Value)
			if c < 0 || (c == 0 && !lo.Inclusive) {
				return true
			}
		}
		if hi != nil {
			c := k.v.Compare(hi.Value)
			if c > 0 || (c == 0 && !hi.Inclusive) {
				return false
			}
		}
		return fn(k.v, k.id)
	})
}

package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// exportFixture builds a database exercising every type, NULLs, tricky
// strings, a primary key, a foreign key and an extra index.
func exportFixture(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase("fixture")
	db.MustCreateRelation(MustSchema("P", "id",
		Column{"id", TypeInt},
		Column{"name", TypeString},
		Column{"score", TypeFloat},
		Column{"active", TypeBool}))
	db.MustCreateRelation(MustSchema("C", "",
		Column{"pid", TypeInt},
		Column{"note", TypeString}))
	if err := db.AddForeignKey(ForeignKey{"C", "pid", "P", "id"}); err != nil {
		t.Fatal(err)
	}
	ins := func(rel string, vals ...Value) {
		if _, err := db.Insert(rel, vals...); err != nil {
			t.Fatal(err)
		}
	}
	ins("P", Int(1), String("plain"), Float(1.5), Bool(true))
	ins("P", Int(2), String("with, comma and \"quotes\""), Float(-0.25), Bool(false))
	ins("P", Int(3), String(`\N literal backslash-N`), Null, Null)
	ins("P", Int(4), Null, Float(0), Bool(true))
	ins("P", Int(5), String("newline\ninside"), Float(3), Bool(false))
	ins("C", Int(1), String("child of one"))
	ins("C", Int(3), Null)
	if _, err := db.Relation("C").CreateIndex("pid"); err != nil {
		t.Fatal(err)
	}
	return db
}

// assertDatabasesEqual compares schemas, keys, indexes, foreign keys and
// every tuple (including ids).
func assertDatabasesEqual(t *testing.T, a, b *Database) {
	t.Helper()
	if !reflect.DeepEqual(a.RelationNames(), b.RelationNames()) {
		t.Fatalf("relations: %v vs %v", a.RelationNames(), b.RelationNames())
	}
	if !reflect.DeepEqual(a.ForeignKeys(), b.ForeignKeys()) {
		t.Fatalf("foreign keys differ")
	}
	for _, name := range a.RelationNames() {
		ra, rb := a.Relation(name), b.Relation(name)
		if ra.Schema().String() != rb.Schema().String() {
			t.Fatalf("%s schema: %s vs %s", name, ra.Schema(), rb.Schema())
		}
		if !reflect.DeepEqual(ra.IndexedColumns(), rb.IndexedColumns()) {
			t.Fatalf("%s indexes: %v vs %v", name, ra.IndexedColumns(), rb.IndexedColumns())
		}
		ta, tb := ra.Tuples(), rb.Tuples()
		if len(ta) != len(tb) {
			t.Fatalf("%s: %d vs %d tuples", name, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i].ID != tb[i].ID {
				t.Fatalf("%s tuple %d: id %d vs %d", name, i, ta[i].ID, tb[i].ID)
			}
			for j := range ta[i].Values {
				va, vb := ta[i].Values[j], tb[i].Values[j]
				if va.IsNull() != vb.IsNull() || (!va.IsNull() && !va.Equal(vb)) {
					t.Fatalf("%s tuple %d col %d: %v vs %v", name, i, j, va, vb)
				}
			}
		}
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	db := exportFixture(t)
	dir := t.TempDir()
	if err := Export(db, dir); err != nil {
		t.Fatal(err)
	}
	// The expected files exist.
	for _, f := range []string{"manifest.json", "P.csv", "C.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	back, err := Import(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertDatabasesEqual(t, db, back)
	// New inserts after import continue from fresh ids.
	id, err := back.Insert("C", Int(2), String("new child"))
	if err != nil {
		t.Fatal(err)
	}
	if id <= 7 {
		t.Errorf("post-import id %d collides with imported ids", id)
	}
}

func TestImportRejectsDanglingReferences(t *testing.T) {
	db := exportFixture(t)
	dir := t.TempDir()
	if err := Export(db, dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt: point a child at a missing parent.
	path := filepath.Join(dir, "C.csv")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(string(blob), ",1,", ",99,", 1)
	if corrupted == string(blob) {
		t.Fatal("corruption did not apply")
	}
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Import(dir); err == nil {
		t.Error("dangling reference accepted")
	}
}

func TestImportErrors(t *testing.T) {
	if _, err := Import(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Import(dir); err == nil {
		t.Error("bad manifest accepted")
	}
	// Manifest naming a missing CSV.
	dir2 := t.TempDir()
	m := `{"name":"x","relations":[{"name":"R","columns":[{"name":"a","type":"INT"}]}]}`
	if err := os.WriteFile(filepath.Join(dir2, "manifest.json"), []byte(m), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Import(dir2); err == nil {
		t.Error("missing relation file accepted")
	}
	// Bad type name.
	dir3 := t.TempDir()
	m3 := `{"name":"x","relations":[{"name":"R","columns":[{"name":"a","type":"WIBBLE"}]}]}`
	if err := os.WriteFile(filepath.Join(dir3, "manifest.json"), []byte(m3), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Import(dir3); err == nil {
		t.Error("bad type accepted")
	}
}

func TestCellEncodingProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 5000; i++ {
		v := randomValue(r)
		var ct ColType
		switch v.Kind() {
		case KindInt:
			ct = TypeInt
		case KindFloat:
			ct = TypeFloat
		case KindString:
			ct = TypeString
		case KindBool:
			ct = TypeBool
		default:
			ct = TypeString
		}
		got, err := decodeCell(encodeCell(v), ct)
		if err != nil {
			t.Fatalf("decode(encode(%v)): %v", v, err)
		}
		if v.IsNull() != got.IsNull() || (!v.IsNull() && !v.Equal(got)) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
	// The tricky literals.
	for _, s := range []string{`\N`, `\\N`, `\`, "", "plain"} {
		got, err := decodeCell(encodeCell(String(s)), TypeString)
		if err != nil {
			t.Fatal(err)
		}
		if got.AsString() != s {
			t.Errorf("string %q round-tripped to %q", s, got.AsString())
		}
	}
}

// TestImportMalformedRowDiagnostics pins the loader's error reporting: every
// malformation names the file, the 1-based csv line, and the offending
// column — the difference between a five-second fix and a binary search
// over a fixture. One sub-test per malformation class.
func TestImportMalformedRowDiagnostics(t *testing.T) {
	// A minimal two-column relation: id INT key, plus name TEXT, year INT.
	const manifest = `{"name":"x","relations":[{"name":"R","columns":[` +
		`{"name":"name","type":"TEXT"},{"name":"year","type":"INT"}],"key":""}]}`
	cases := []struct {
		name string
		csv  string
		want []string // substrings the error must contain
	}{
		{
			name: "bad-int-cell",
			csv:  "__id,name,year\n1,alpha,1999\n2,beta,not-a-year\n",
			want: []string{"R.csv:3", `column year`, "field 3", `"not-a-year"`},
		},
		{
			name: "bad-tuple-id",
			csv:  "__id,name,year\nxx,alpha,1999\n",
			want: []string{"R.csv:2", "column __id", `bad tuple id "xx"`},
		},
		{
			name: "row-too-short",
			csv:  "__id,name,year\n1,alpha,1999\n2,beta\n",
			want: []string{"R.csv:3", "2 fields", "wants 3", "name,year"},
		},
		{
			name: "row-too-long",
			csv:  "__id,name,year\n1,alpha,1999,extra\n",
			want: []string{"R.csv:2", "4 fields", "wants 3"},
		},
		{
			name: "header-mismatch",
			csv:  "__id,name,wrong\n1,alpha,1999\n",
			want: []string{"R.csv:1", `"wrong"`, `manifest says "year"`},
		},
		{
			name: "missing-header",
			csv:  "",
			want: []string{"R.csv", "missing header"},
		},
		{
			name: "duplicate-id",
			csv:  "__id,name,year\n1,alpha,1999\n1,beta,2000\n",
			want: []string{"R.csv:3"},
		},
		{
			// A quoted newline inside a cell occupies two physical lines;
			// the csv parser's line tracking must still point at the real
			// start of the bad row.
			name: "bad-cell-after-multiline-row",
			csv:  "__id,name,year\n1,\"two\nlines\",1999\n2,beta,oops\n",
			want: []string{"R.csv:4", "column year", `"oops"`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(manifest), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "R.csv"), []byte(tc.csv), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Import(dir)
			if err == nil {
				t.Fatalf("malformed input accepted")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q\n  missing substring %q", err, w)
				}
			}
		})
	}
}

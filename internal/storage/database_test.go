package storage

import (
	"strings"
	"testing"
)

// twoRelDB builds DIRECTOR(did,dname) <- MOVIE(mid,title,did) with an FK.
func twoRelDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase("movies")
	db.MustCreateRelation(MustSchema("DIRECTOR", "did",
		Column{"did", TypeInt}, Column{"dname", TypeString}))
	db.MustCreateRelation(MustSchema("MOVIE", "mid",
		Column{"mid", TypeInt}, Column{"title", TypeString}, Column{"did", TypeInt}))
	if err := db.AddForeignKey(ForeignKey{"MOVIE", "did", "DIRECTOR", "did"}); err != nil {
		t.Fatalf("AddForeignKey: %v", err)
	}
	return db
}

func TestAddForeignKeyValidation(t *testing.T) {
	db := twoRelDB(t)
	bad := []ForeignKey{
		{"NOPE", "did", "DIRECTOR", "did"},
		{"MOVIE", "nope", "DIRECTOR", "did"},
		{"MOVIE", "did", "NOPE", "did"},
		{"MOVIE", "did", "DIRECTOR", "nope"},
	}
	for _, fk := range bad {
		if err := db.AddForeignKey(fk); err == nil {
			t.Errorf("foreign key %v accepted", fk)
		}
	}
	if n := len(db.ForeignKeys()); n != 1 {
		t.Errorf("ForeignKeys = %d, want 1", n)
	}
}

func TestCheckIntegrity(t *testing.T) {
	db := twoRelDB(t)
	if _, err := db.Insert("DIRECTOR", Int(1), String("Woody Allen")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("MOVIE", Int(10), String("Match Point"), Int(1)); err != nil {
		t.Fatal(err)
	}
	if v := db.CheckIntegrity(); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
	if _, err := db.Insert("MOVIE", Int(11), String("Orphan"), Int(99)); err != nil {
		t.Fatal(err)
	}
	v := db.CheckIntegrity()
	if len(v) != 1 {
		t.Fatalf("violations = %v, want 1", v)
	}
	if !strings.Contains(v[0].String(), "DIRECTOR.did") {
		t.Errorf("violation text: %s", v[0])
	}
	// NULL references are permitted.
	if _, err := db.Insert("MOVIE", Int(12), String("Anon"), Null); err != nil {
		t.Fatal(err)
	}
	if got := db.CheckIntegrity(); len(got) != 1 {
		t.Errorf("NULL FK counted as violation: %v", got)
	}
}

func TestCreateJoinIndexes(t *testing.T) {
	db := twoRelDB(t)
	if err := db.CreateJoinIndexes(); err != nil {
		t.Fatal(err)
	}
	if !db.Relation("MOVIE").HasIndex("did") {
		t.Error("MOVIE.did not indexed")
	}
	if !db.Relation("DIRECTOR").HasIndex("did") {
		t.Error("DIRECTOR.did not indexed")
	}
}

func TestStatsAndString(t *testing.T) {
	db := twoRelDB(t)
	if _, err := db.Insert("DIRECTOR", Int(1), String("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("MOVIE", Int(10), String("t"), Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("MOVIE", Int(11), String("u"), Int(1)); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Relations != 2 || st.Tuples != 3 || st.PerRel["MOVIE"] != 2 {
		t.Errorf("Stats = %+v", st)
	}
	if db.TotalTuples() != 3 {
		t.Errorf("TotalTuples = %d", db.TotalTuples())
	}
	s := db.String()
	if !strings.Contains(s, "MOVIE:2") || !strings.Contains(s, "DIRECTOR:1") {
		t.Errorf("String = %q", s)
	}
	names := db.RelationNames()
	if len(names) != 2 || names[0] != "DIRECTOR" || names[1] != "MOVIE" {
		t.Errorf("RelationNames = %v", names)
	}
	if db.NumRelations() != 2 {
		t.Errorf("NumRelations = %d", db.NumRelations())
	}
}

func TestVerifySubDatabase(t *testing.T) {
	orig := twoRelDB(t)
	did, _ := orig.Insert("DIRECTOR", Int(1), String("Woody Allen"))
	mid, _ := orig.Insert("MOVIE", Int(10), String("Match Point"), Int(1))

	sub := NewDatabase("precis")
	sub.MustCreateRelation(MustSchema("DIRECTOR", "did",
		Column{"did", TypeInt}, Column{"dname", TypeString}))
	sub.MustCreateRelation(MustSchema("MOVIE", "",
		Column{"title", TypeString}, Column{"did", TypeInt}))
	if err := sub.InsertWithID("DIRECTOR", did, Int(1), String("Woody Allen")); err != nil {
		t.Fatal(err)
	}
	if err := sub.InsertWithID("MOVIE", mid, String("Match Point"), Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := VerifySubDatabase(orig, sub); err != nil {
		t.Errorf("valid sub-database rejected: %v", err)
	}

	// Wrong value -> condition 3 violated.
	bad := NewDatabase("precis")
	bad.MustCreateRelation(MustSchema("MOVIE", "", Column{"title", TypeString}))
	if err := bad.InsertWithID("MOVIE", mid, String("Wrong Title")); err != nil {
		t.Fatal(err)
	}
	if err := VerifySubDatabase(orig, bad); err == nil {
		t.Error("tampered tuple accepted")
	}

	// Unknown relation -> condition 1 violated.
	bad2 := NewDatabase("precis")
	bad2.MustCreateRelation(MustSchema("GHOST", "", Column{"x", TypeInt}))
	if err := VerifySubDatabase(orig, bad2); err == nil {
		t.Error("unknown relation accepted")
	}

	// Unknown attribute -> condition 2 violated.
	bad3 := NewDatabase("precis")
	bad3.MustCreateRelation(MustSchema("MOVIE", "", Column{"ghostcol", TypeInt}))
	if err := VerifySubDatabase(orig, bad3); err == nil {
		t.Error("unknown attribute accepted")
	}

	// Tuple id not present in original -> condition 3 violated.
	bad4 := NewDatabase("precis")
	bad4.MustCreateRelation(MustSchema("MOVIE", "", Column{"title", TypeString}))
	if err := bad4.InsertWithID("MOVIE", 9999, String("Match Point")); err != nil {
		t.Fatal(err)
	}
	if err := VerifySubDatabase(orig, bad4); err == nil {
		t.Error("phantom tuple accepted")
	}
}

func TestCheckJoinConsistency(t *testing.T) {
	orig := twoRelDB(t)
	did, _ := orig.Insert("DIRECTOR", Int(1), String("Woody Allen"))
	m1, _ := orig.Insert("MOVIE", Int(10), String("Match Point"), Int(1))
	m2, _ := orig.Insert("MOVIE", Int(11), String("Scoop"), Int(1))

	sub := NewDatabase("precis")
	sub.MustCreateRelation(MustSchema("DIRECTOR", "did",
		Column{"did", TypeInt}, Column{"dname", TypeString}))
	sub.MustCreateRelation(MustSchema("MOVIE", "",
		Column{"title", TypeString}, Column{"did", TypeInt}))
	if err := sub.InsertWithID("MOVIE", m1, String("Match Point"), Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := sub.InsertWithID("MOVIE", m2, String("Scoop"), Int(1)); err != nil {
		t.Fatal(err)
	}
	// DIRECTOR empty: 2 referencing, 0 satisfied.
	jc := CheckJoinConsistency(orig, sub)
	if len(jc) != 1 || jc[0].Referencing != 2 || jc[0].Satisfied != 0 {
		t.Fatalf("JoinConsistency = %+v", jc)
	}
	if err := sub.InsertWithID("DIRECTOR", did, Int(1), String("Woody Allen")); err != nil {
		t.Fatal(err)
	}
	jc = CheckJoinConsistency(orig, sub)
	if jc[0].Satisfied != 2 {
		t.Fatalf("JoinConsistency after adding director = %+v", jc)
	}
}

func TestDropRelation(t *testing.T) {
	db := twoRelDB(t)
	if err := db.DropRelation("MOVIE"); err != nil {
		t.Fatal(err)
	}
	if db.Relation("MOVIE") != nil {
		t.Error("relation still reachable")
	}
	if db.NumRelations() != 1 {
		t.Errorf("NumRelations = %d", db.NumRelations())
	}
	// The foreign key involving MOVIE is gone.
	if n := len(db.ForeignKeys()); n != 0 {
		t.Errorf("foreign keys = %d", n)
	}
	if err := db.DropRelation("MOVIE"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestUpdateTuple(t *testing.T) {
	db := twoRelDB(t)
	id, _ := db.Insert("DIRECTOR", Int(1), String("Woody Allen"))
	if err := db.Update("DIRECTOR", id, []Value{Int(1), String("W. Allen")}); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Relation("DIRECTOR").Get(id)
	if got.Values[1].AsString() != "W. Allen" {
		t.Errorf("values = %v", got.Values)
	}
	// Index on the PK is maintained.
	ids, _ := db.Relation("DIRECTOR").Lookup("did", Int(1))
	if len(ids) != 1 || ids[0] != id {
		t.Errorf("lookup = %v", ids)
	}
	// Errors.
	if err := db.Update("NOPE", id, nil); err == nil {
		t.Error("unknown relation accepted")
	}
	if err := db.Update("DIRECTOR", 9999, []Value{Int(1), String("x")}); err == nil {
		t.Error("unknown tuple accepted")
	}
	if err := db.Update("DIRECTOR", id, []Value{Int(1)}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := db.Update("DIRECTOR", id, []Value{String("x"), String("y")}); err == nil {
		t.Error("wrong type accepted")
	}
	id2, _ := db.Insert("DIRECTOR", Int(2), String("Other"))
	if err := db.Update("DIRECTOR", id2, []Value{Int(1), String("dup")}); err == nil {
		t.Error("duplicate key accepted")
	}
	if err := db.Update("DIRECTOR", id2, []Value{Null, String("n")}); err == nil {
		t.Error("NULL key accepted")
	}
}

package storage

import (
	"fmt"
)

// VerifySubDatabase checks the four conditions of the paper's query model
// (§3.3) that make sub a précis-style sub-database of orig:
//
//  1. every relation name in sub occurs in orig;
//  2. every relation's attribute set in sub is a subset of its attributes
//     in orig;
//  3. every tuple in sub is the projection (on sub's attributes) of the
//     orig tuple with the same id;
//  4. every foreign key of orig whose endpoints both survive in sub is
//     join-consistent within sub: a non-NULL reference value appearing in
//     sub either finds a referenced tuple in sub or the referenced side of
//     that value is absent entirely (the cardinality constraint may cut
//     referenced tuples; what must never happen is a *wrong* tuple).
//
// It returns nil when all conditions hold, otherwise a descriptive error for
// the first violation found.
func VerifySubDatabase(orig, sub *Database) error {
	for _, name := range sub.RelationNames() {
		sr := sub.Relation(name)
		or := orig.Relation(name)
		if or == nil {
			return fmt.Errorf("subdb: relation %s does not exist in the original database", name)
		}
		// Condition 2: attribute subset.
		for _, c := range sr.Schema().Columns {
			oi := or.Schema().ColumnIndex(c.Name)
			if oi < 0 {
				return fmt.Errorf("subdb: %s.%s does not exist in the original schema", name, c.Name)
			}
			if or.Schema().Columns[oi].Type != c.Type {
				return fmt.Errorf("subdb: %s.%s changed type from %s to %s",
					name, c.Name, or.Schema().Columns[oi].Type, c.Type)
			}
		}
		// Condition 3: every tuple is a projection of the original tuple.
		var verr error
		sr.Scan(func(t Tuple) bool {
			ot, ok := or.Get(t.ID)
			if !ok {
				verr = fmt.Errorf("subdb: %s tuple %d does not exist in the original relation", name, t.ID)
				return false
			}
			for i, c := range sr.Schema().Columns {
				oi := or.Schema().ColumnIndex(c.Name)
				if !t.Values[i].Equal(ot.Values[oi]) && !(t.Values[i].IsNull() && ot.Values[oi].IsNull()) {
					verr = fmt.Errorf("subdb: %s tuple %d column %s is %s, original has %s",
						name, t.ID, c.Name, t.Values[i].String(), ot.Values[oi].String())
					return false
				}
			}
			return true
		})
		if verr != nil {
			return verr
		}
	}
	return nil
}

// JoinConsistency reports, for a foreign key whose columns survive in sub,
// how many referencing tuples find their referenced partner inside sub.
type JoinConsistency struct {
	ForeignKey  ForeignKey
	Referencing int // tuples in sub carrying a non-NULL reference
	Satisfied   int // of those, how many find a partner in sub
}

// CheckJoinConsistency evaluates every foreign key of orig that is fully
// contained in sub (both relations present and both columns projected) and
// returns per-key statistics. A cardinality-capped précis may legitimately
// drop referenced tuples, so this is a measurement, not a hard invariant;
// tests use it to compare the NaïveQ and Round-Robin strategies.
func CheckJoinConsistency(orig, sub *Database) []JoinConsistency {
	var out []JoinConsistency
	for _, fk := range orig.ForeignKeys() {
		from := sub.Relation(fk.FromRelation)
		to := sub.Relation(fk.ToRelation)
		if from == nil || to == nil {
			continue
		}
		fi := from.Schema().ColumnIndex(fk.FromColumn)
		if fi < 0 || !to.Schema().HasColumn(fk.ToColumn) {
			continue
		}
		jc := JoinConsistency{ForeignKey: fk}
		from.Scan(func(t Tuple) bool {
			v := t.Values[fi]
			if v.IsNull() {
				return true
			}
			jc.Referencing++
			ids, err := to.Lookup(fk.ToColumn, v)
			if err == nil && len(ids) > 0 {
				jc.Satisfied++
			}
			return true
		})
		out = append(out, jc)
	}
	return out
}

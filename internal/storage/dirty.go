package storage

import "sort"

// Dirty tracking: the persistence layer's incremental checkpoints need to
// know which tuples changed since the last checkpoint without scanning the
// database. When enabled (persistent engines only — in-memory engines pay
// exactly one nil check per mutation), every Insert/InsertWithID/Update
// marks its tuple dirty and every Delete leaves a tombstone; CaptureDirty
// resolves the marked ids to copy-on-write tuple references and resets the
// set in O(dirty), which is the entire pause a delta checkpoint imposes on
// the mutation lock.

// dirtyTracker records per-relation mutation counters plus the dirty-tuple
// and tombstone sets accumulated since the last successful capture.
type dirtyTracker struct {
	muts      uint64
	mutsByRel map[string]uint64
	dirty     map[string]map[TupleID]bool // live tuples inserted/updated
	dead      map[string]map[TupleID]bool // tuples deleted
}

func newDirtyTracker() *dirtyTracker {
	return &dirtyTracker{
		mutsByRel: make(map[string]uint64),
		dirty:     make(map[string]map[TupleID]bool),
		dead:      make(map[string]map[TupleID]bool),
	}
}

// mark records a live mutation (insert or update) of (rel, id). A
// tombstone for the same id is cleared: the id is live again (the engine's
// delete-rollback path resurrects tuples under their original id).
func (t *dirtyTracker) mark(rel string, id TupleID) {
	if t == nil {
		return
	}
	t.muts++
	t.mutsByRel[rel]++
	if d := t.dead[rel]; d != nil {
		delete(d, id)
	}
	m := t.dirty[rel]
	if m == nil {
		m = make(map[TupleID]bool)
		t.dirty[rel] = m
	}
	m[id] = true
}

// markDeleted records a deletion of (rel, id), superseding any dirty mark.
func (t *dirtyTracker) markDeleted(rel string, id TupleID) {
	if t == nil {
		return
	}
	t.muts++
	t.mutsByRel[rel]++
	if m := t.dirty[rel]; m != nil {
		delete(m, id)
	}
	d := t.dead[rel]
	if d == nil {
		d = make(map[TupleID]bool)
		t.dead[rel] = d
	}
	d[id] = true
}

// DirtyRelation is one relation's changes since the last capture: upserts
// (inserted or updated live tuples, ascending by id) and tombstones
// (deleted ids, ascending).
type DirtyRelation struct {
	Name    string
	Upserts []Tuple
	Deletes []TupleID
}

// DirtySet is everything CaptureDirty found: per-relation changes in
// relation-creation order plus the total mutation count they represent.
type DirtySet struct {
	Relations []DirtyRelation
	Mutations uint64
}

// Tuples returns the total number of upserts and tombstones captured.
func (ds *DirtySet) Tuples() int {
	if ds == nil {
		return 0
	}
	n := 0
	for _, r := range ds.Relations {
		n += len(r.Upserts) + len(r.Deletes)
	}
	return n
}

// EnableDirtyTracking turns dirty tracking on (idempotent). The tracking
// set starts empty: everything already in the database is considered
// clean, so callers enable tracking exactly at a checkpoint boundary (the
// persistence layer does so right after applying the snapshot chain,
// before replaying the WAL tail).
func (db *Database) EnableDirtyTracking() {
	if db.tracker == nil {
		db.tracker = newDirtyTracker()
	}
}

// DirtyTrackingEnabled reports whether dirty tracking is on.
func (db *Database) DirtyTrackingEnabled() bool { return db.tracker != nil }

// MutationCount returns the total mutations recorded since tracking was
// enabled or last captured.
func (db *Database) MutationCount() uint64 {
	if db.tracker == nil {
		return 0
	}
	return db.tracker.muts
}

// MutationCountByRelation returns the per-relation mutation counters
// accumulated since tracking was enabled or last captured.
func (db *Database) MutationCountByRelation() map[string]uint64 {
	if db.tracker == nil {
		return nil
	}
	out := make(map[string]uint64, len(db.tracker.mutsByRel))
	for rel, n := range db.tracker.mutsByRel {
		out[rel] = n
	}
	return out
}

// CaptureDirty atomically resolves and resets the dirty set, returning the
// changed tuples since the previous capture. Upsert entries carry
// references to the stored value slices — Insert and Update both build
// fresh slices and never mutate them in place, so the captured view stays
// stable while later mutations proceed (copy-on-write by construction).
// Returns nil when tracking is disabled. Callers must hold whatever lock
// serializes mutations (the engine mutation lock).
func (db *Database) CaptureDirty() *DirtySet {
	t := db.tracker
	if t == nil {
		return nil
	}
	ds := &DirtySet{Mutations: t.muts}
	for _, name := range db.order {
		dirty, dead := t.dirty[name], t.dead[name]
		if len(dirty) == 0 && len(dead) == 0 {
			continue
		}
		rel := db.rels[name]
		dr := DirtyRelation{Name: name}
		if len(dirty) > 0 {
			ids := make([]TupleID, 0, len(dirty))
			for id := range dirty {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			dr.Upserts = make([]Tuple, 0, len(ids))
			for _, id := range ids {
				if tu, ok := rel.Get(id); ok {
					dr.Upserts = append(dr.Upserts, tu)
				}
			}
		}
		if len(dead) > 0 {
			dr.Deletes = make([]TupleID, 0, len(dead))
			for id := range dead {
				dr.Deletes = append(dr.Deletes, id)
			}
			sort.Slice(dr.Deletes, func(i, j int) bool { return dr.Deletes[i] < dr.Deletes[j] })
		}
		ds.Relations = append(ds.Relations, dr)
	}
	db.tracker = newDirtyTracker()
	return ds
}

// MergeDirty folds a previously captured set back into the live tracker —
// the recovery path for a checkpoint whose off-lock completion failed, so
// the next checkpoint's delta still covers those tuples. Ids are re-marked
// by their current liveness, which also absorbs any mutations recorded
// since the failed capture. Callers hold the mutation lock.
func (db *Database) MergeDirty(ds *DirtySet) {
	if ds == nil {
		return
	}
	db.EnableDirtyTracking()
	t := db.tracker
	remark := func(rel string, id TupleID) {
		if r := db.rels[rel]; r != nil {
			if _, live := r.Get(id); live {
				t.mark(rel, id)
				t.muts-- // mark() counts a mutation; a re-mark is not one
				t.mutsByRel[rel]--
				return
			}
		}
		t.markDeleted(rel, id)
		t.muts--
		t.mutsByRel[rel]--
	}
	for _, dr := range ds.Relations {
		for _, tu := range dr.Upserts {
			remark(dr.Name, tu.ID)
		}
		for _, id := range dr.Deletes {
			remark(dr.Name, id)
		}
	}
	t.muts += ds.Mutations
}

package storage

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func movieSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("MOVIE", "mid",
		Column{"mid", TypeInt},
		Column{"title", TypeString},
		Column{"year", TypeInt},
		Column{"did", TypeInt},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema("", "", Column{"a", TypeInt}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSchema("R", ""); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := NewSchema("R", "", Column{"a", TypeInt}, Column{"a", TypeString}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewSchema("R", "zz", Column{"a", TypeInt}); err == nil {
		t.Error("unknown key column accepted")
	}
	if _, err := NewSchema("R", "", Column{"a", ColType(99)}); err == nil {
		t.Error("bad column type accepted")
	}
	if _, err := NewSchema("R", "", Column{"", TypeInt}); err == nil {
		t.Error("unnamed column accepted")
	}
}

func TestSchemaProject(t *testing.T) {
	s := movieSchema(t)
	p, err := s.Project([]string{"title", "mid"})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if got := p.ColumnNames(); !reflect.DeepEqual(got, []string{"title", "mid"}) {
		t.Errorf("projected columns = %v", got)
	}
	if p.Key != "mid" {
		t.Errorf("projection should keep surviving key, got %q", p.Key)
	}
	p2, err := s.Project([]string{"title"})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p2.Key != "" {
		t.Errorf("projection dropped key column but Key = %q", p2.Key)
	}
	if _, err := s.Project([]string{"nope"}); err == nil {
		t.Error("projection of unknown column accepted")
	}
	if _, err := s.Project(nil); err == nil {
		t.Error("empty projection accepted")
	}
}

func TestSchemaString(t *testing.T) {
	s := movieSchema(t)
	str := s.String()
	if !strings.Contains(str, "MOVIE(") || !strings.Contains(str, "mid* INT") {
		t.Errorf("String() = %q", str)
	}
}

func TestInsertAndGet(t *testing.T) {
	db := NewDatabase("test")
	db.MustCreateRelation(movieSchema(t))
	id, err := db.Insert("MOVIE", Int(1), String("Match Point"), Int(2005), Int(10))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	r := db.Relation("MOVIE")
	got, ok := r.Get(id)
	if !ok {
		t.Fatal("Get: tuple missing")
	}
	if got.Values[1].AsString() != "Match Point" || got.Values[2].AsInt() != 2005 {
		t.Errorf("tuple = %v", got)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestInsertValidation(t *testing.T) {
	db := NewDatabase("test")
	db.MustCreateRelation(movieSchema(t))
	if _, err := db.Insert("MOVIE", Int(1), String("x")); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := db.Insert("MOVIE", String("x"), String("t"), Int(1), Int(1)); err == nil {
		t.Error("wrong type accepted")
	}
	if _, err := db.Insert("NOPE", Int(1)); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := db.Insert("MOVIE", Null, String("t"), Int(1), Int(1)); err == nil {
		t.Error("NULL primary key accepted")
	}
	if _, err := db.Insert("MOVIE", Int(1), String("a"), Int(2000), Int(1)); err != nil {
		t.Fatalf("first insert: %v", err)
	}
	if _, err := db.Insert("MOVIE", Int(1), String("b"), Int(2001), Int(1)); err == nil {
		t.Error("duplicate primary key accepted")
	}
}

func TestNullStorable(t *testing.T) {
	db := NewDatabase("test")
	db.MustCreateRelation(movieSchema(t))
	if _, err := db.Insert("MOVIE", Int(1), Null, Null, Null); err != nil {
		t.Fatalf("NULL non-key columns should be storable: %v", err)
	}
}

func TestDelete(t *testing.T) {
	db := NewDatabase("test")
	db.MustCreateRelation(movieSchema(t))
	id, _ := db.Insert("MOVIE", Int(1), String("a"), Int(2000), Int(1))
	ok, err := db.Delete("MOVIE", id)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, found := db.Relation("MOVIE").Get(id); found {
		t.Error("deleted tuple still visible")
	}
	if db.Relation("MOVIE").Len() != 0 {
		t.Error("Len after delete")
	}
	ok, _ = db.Delete("MOVIE", id)
	if ok {
		t.Error("double delete reported success")
	}
	// Key is freed for reuse after delete.
	if _, err := db.Insert("MOVIE", Int(1), String("b"), Int(2001), Int(2)); err != nil {
		t.Errorf("re-insert of deleted key: %v", err)
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	db := NewDatabase("test")
	db.MustCreateRelation(movieSchema(t))
	for i := 1; i <= 5; i++ {
		if _, err := db.Insert("MOVIE", Int(int64(i)), String("t"), Int(2000+int64(i)), Int(1)); err != nil {
			t.Fatal(err)
		}
	}
	var years []int64
	db.Relation("MOVIE").Scan(func(tu Tuple) bool {
		years = append(years, tu.Values[2].AsInt())
		return len(years) < 3
	})
	if !reflect.DeepEqual(years, []int64{2001, 2002, 2003}) {
		t.Errorf("scan order/early stop: %v", years)
	}
}

func TestLookupWithAndWithoutIndex(t *testing.T) {
	db := NewDatabase("test")
	db.MustCreateRelation(movieSchema(t))
	var want []TupleID
	for i := 1; i <= 10; i++ {
		id, err := db.Insert("MOVIE", Int(int64(i)), String("t"), Int(2000), Int(int64(i%3)))
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 1 {
			want = append(want, id)
		}
	}
	r := db.Relation("MOVIE")
	scanIDs, err := r.Lookup("did", Int(1))
	if err != nil {
		t.Fatalf("Lookup (scan): %v", err)
	}
	if _, err := r.CreateIndex("did"); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	if !r.HasIndex("did") {
		t.Error("HasIndex after CreateIndex")
	}
	idxIDs, err := r.Lookup("did", Int(1))
	if err != nil {
		t.Fatalf("Lookup (index): %v", err)
	}
	if !reflect.DeepEqual(scanIDs, want) || !reflect.DeepEqual(idxIDs, want) {
		t.Errorf("Lookup: scan=%v index=%v want=%v", scanIDs, idxIDs, want)
	}
	if _, err := r.Lookup("nope", Int(1)); err == nil {
		t.Error("lookup on unknown column accepted")
	}
}

func TestIndexMaintainedAcrossDeletes(t *testing.T) {
	db := NewDatabase("test")
	db.MustCreateRelation(movieSchema(t))
	r := db.Relation("MOVIE")
	if _, err := r.CreateIndex("did"); err != nil {
		t.Fatal(err)
	}
	ids := make([]TupleID, 0, 6)
	for i := 1; i <= 6; i++ {
		id, _ := db.Insert("MOVIE", Int(int64(i)), String("t"), Int(2000), Int(7))
		ids = append(ids, id)
	}
	if _, err := db.Delete("MOVIE", ids[2]); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Lookup("did", Int(7))
	if len(got) != 5 {
		t.Errorf("index after delete: %v", got)
	}
	for _, id := range got {
		if id == ids[2] {
			t.Error("deleted tuple still in index")
		}
	}
}

func TestDistinctValues(t *testing.T) {
	db := NewDatabase("test")
	db.MustCreateRelation(movieSchema(t))
	for i := 1; i <= 6; i++ {
		if _, err := db.Insert("MOVIE", Int(int64(i)), String("t"), Int(2000), Int(int64(i%2))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Insert("MOVIE", Int(7), String("t"), Int(2000), Null); err != nil {
		t.Fatal(err)
	}
	vals, err := db.Relation("MOVIE").DistinctValues("did")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, []Value{Int(0), Int(1)}) {
		t.Errorf("DistinctValues = %v", vals)
	}
}

// TestIndexEquivalentToScan is the core index invariant: after an arbitrary
// interleaving of inserts and deletes, index lookup equals scan lookup.
func TestIndexEquivalentToScan(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	db := NewDatabase("test")
	db.MustCreateRelation(MustSchema("R", "", Column{"k", TypeInt}, Column{"v", TypeString}))
	rel := db.Relation("R")
	if _, err := rel.CreateIndex("k"); err != nil {
		t.Fatal(err)
	}
	var live []TupleID
	for step := 0; step < 3000; step++ {
		if len(live) > 0 && r.Intn(4) == 0 {
			i := r.Intn(len(live))
			if _, err := db.Delete("R", live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		} else {
			id, err := db.Insert("R", Int(int64(r.Intn(20))), String("x"))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		}
	}
	for k := 0; k < 20; k++ {
		v := Int(int64(k))
		idx, _ := rel.Lookup("k", v)
		var scan []TupleID
		rel.Scan(func(tu Tuple) bool {
			if tu.Values[0].Equal(v) {
				scan = append(scan, tu.ID)
			}
			return true
		})
		if !reflect.DeepEqual(idx, scan) {
			t.Fatalf("k=%d: index %v != scan %v", k, idx, scan)
		}
	}
}

func TestCreateRelationErrors(t *testing.T) {
	db := NewDatabase("test")
	db.MustCreateRelation(movieSchema(t))
	if _, err := db.CreateRelation(movieSchema(t)); err == nil {
		t.Error("duplicate relation accepted")
	}
	if _, err := db.CreateRelation(nil); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestInsertWithID(t *testing.T) {
	db := NewDatabase("test")
	db.MustCreateRelation(movieSchema(t))
	if err := db.InsertWithID("MOVIE", 100, Int(1), String("a"), Int(2000), Int(1)); err != nil {
		t.Fatalf("InsertWithID: %v", err)
	}
	if err := db.InsertWithID("MOVIE", 100, Int(2), String("b"), Int(2001), Int(1)); err == nil {
		t.Error("duplicate tuple id accepted")
	}
	if err := db.InsertWithID("MOVIE", 0, Int(3), String("c"), Int(2002), Int(1)); err == nil {
		t.Error("non-positive tuple id accepted")
	}
	// Auto ids must not collide with explicit ids.
	id, err := db.Insert("MOVIE", Int(4), String("d"), Int(2003), Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if id <= 100 {
		t.Errorf("auto id %d collides with explicit id space", id)
	}
}

package storage

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null, KindNull, "NULL"},
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
		{String("abc"), KindString, "abc"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("kind %v: String() = %q, want %q", c.kind, c.v.String(), c.str)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(7).AsInt() != 7 {
		t.Error("AsInt")
	}
	if Int(7).AsFloat() != 7.0 {
		t.Error("int AsFloat")
	}
	if Float(1.5).AsFloat() != 1.5 {
		t.Error("AsFloat")
	}
	if String("x").AsString() != "x" {
		t.Error("AsString")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("AsBool")
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull")
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(3).Equal(Int(3)) {
		t.Error("int equality")
	}
	if Int(3).Equal(Int(4)) {
		t.Error("int inequality")
	}
	if !Int(3).Equal(Float(3.0)) {
		t.Error("cross-kind numeric equality")
	}
	if Int(3).Equal(String("3")) {
		t.Error("int should not equal string")
	}
	if !Null.Equal(Null) {
		t.Error("NULL equals NULL under Equal")
	}
	if Null.Equal(Int(0)) {
		t.Error("NULL should not equal 0")
	}
	if !String("a").Equal(String("a")) || String("a").Equal(String("b")) {
		t.Error("string equality")
	}
}

func TestValueCompare(t *testing.T) {
	ordered := []Value{Null, Int(-5), Int(0), Float(0.5), Int(1), Float(1.5), Int(2)}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			// Null compares before numerics by kind ordering.
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
	if String("a").Compare(String("b")) != -1 || String("b").Compare(String("a")) != 1 {
		t.Error("string ordering")
	}
	if Bool(false).Compare(Bool(true)) != -1 {
		t.Error("bool ordering")
	}
}

func TestValueComparable(t *testing.T) {
	// Values must be usable as map keys: same content, same key.
	m := map[Value]int{}
	m[String("x")] = 1
	m[String("x")] = 2
	m[Int(1)] = 3
	if len(m) != 2 || m[String("x")] != 2 {
		t.Errorf("value as map key misbehaved: %v", m)
	}
}

func TestValueSQL(t *testing.T) {
	if got := String("O'Hara").SQL(); got != "'O''Hara'" {
		t.Errorf("SQL() = %q", got)
	}
	if got := Int(5).SQL(); got != "5" {
		t.Errorf("SQL() = %q", got)
	}
}

func TestColTypeAccepts(t *testing.T) {
	cases := []struct {
		t    ColType
		k    Kind
		want bool
	}{
		{TypeInt, KindInt, true},
		{TypeInt, KindFloat, false},
		{TypeInt, KindNull, true},
		{TypeFloat, KindInt, true},
		{TypeFloat, KindFloat, true},
		{TypeString, KindString, true},
		{TypeString, KindInt, false},
		{TypeBool, KindBool, true},
		{TypeBool, KindString, false},
	}
	for _, c := range cases {
		if got := c.t.Accepts(c.k); got != c.want {
			t.Errorf("%v.Accepts(%v) = %v, want %v", c.t, c.k, got, c.want)
		}
	}
}

// randomValue draws an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return Int(int64(r.Intn(100) - 50))
	case 2:
		return Float(float64(r.Intn(100))/4 - 10)
	case 3:
		letters := []byte("abcdef")
		n := r.Intn(5)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return String(string(b))
	default:
		return Bool(r.Intn(2) == 0)
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomValue(r))
			args[1] = reflect.ValueOf(randomValue(r))
		},
	}
	prop := func(a, b Value) bool {
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitive(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomValue(r))
			args[1] = reflect.ValueOf(randomValue(r))
			args[2] = reflect.ValueOf(randomValue(r))
		},
	}
	prop := func(a, b, c Value) bool {
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 {
			return a.Compare(c) <= 0
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestEqualConsistentWithCompare(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomValue(r))
			args[1] = reflect.ValueOf(randomValue(r))
		},
	}
	prop := func(a, b Value) bool {
		if a.Equal(b) {
			return a.Compare(b) == 0
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

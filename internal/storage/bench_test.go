package storage

import (
	"fmt"
	"testing"
)

func benchDB(b *testing.B, rows int) *Database {
	b.Helper()
	db := NewDatabase("bench")
	db.MustCreateRelation(MustSchema("R", "id",
		Column{"id", TypeInt}, Column{"k", TypeInt}, Column{"s", TypeString}))
	if _, err := db.Relation("R").CreateIndex("k"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Insert("R", Int(int64(i)), Int(int64(i%100)), String(fmt.Sprintf("row %d", i))); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkInsert(b *testing.B) {
	db := NewDatabase("bench")
	db.MustCreateRelation(MustSchema("R", "id",
		Column{"id", TypeInt}, Column{"k", TypeInt}, Column{"s", TypeString}))
	if _, err := db.Relation("R").CreateIndex("k"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Insert("R", Int(int64(i)), Int(int64(i%100)), String("x")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashLookup(b *testing.B) {
	db := benchDB(b, 10000)
	rel := db.Relation("R")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rel.Lookup("k", Int(int64(i%100))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeInsertDelete(b *testing.B) {
	bt := newBTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := btreeKey{v: Int(int64(i % 5000)), id: TupleID(i)}
		bt.insert(k)
		if i%3 == 0 {
			bt.delete(k)
		}
	}
}

func BenchmarkOrderedRange(b *testing.B) {
	db := benchDB(b, 10000)
	rel := db.Relation("R")
	if _, err := rel.CreateOrderedIndex("k"); err != nil {
		b.Fatal(err)
	}
	ix := rel.OrderedIndexOn("k")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		ix.Range(&Bound{Int(int64(i % 80)), true}, &Bound{Int(int64(i%80 + 10)), true},
			func(Value, TupleID) bool {
				n++
				return true
			})
		if n == 0 {
			b.Fatal("empty range")
		}
	}
}

func BenchmarkExport(b *testing.B) {
	db := benchDB(b, 2000)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Export(db, fmt.Sprintf("%s/run%d", dir, i)); err != nil {
			b.Fatal(err)
		}
	}
}

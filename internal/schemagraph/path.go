package schemagraph

import (
	"strings"
)

// Path is a directed path on the schema graph starting at a relation node.
// A path whose Proj is nil is a (transitive) join path between relations; a
// path with Proj set is a (transitive) projection path ending at an
// attribute node (§3.2). Path weight is the product of constituent edge
// weights, so weight never increases as a path grows.
type Path struct {
	Start  string
	Joins  []*JoinEdge
	Proj   *Projection
	weight float64
}

// NewPath returns the empty join path anchored at a relation (weight 1).
func NewPath(start string) *Path {
	return &Path{Start: start, weight: 1}
}

// Weight returns the multiplicative weight of the path.
func (p *Path) Weight() float64 { return p.weight }

// IsProjection reports whether the path ends in a projection edge.
func (p *Path) IsProjection() bool { return p.Proj != nil }

// End returns the last relation node of the path (the projection target's
// container for projection paths).
func (p *Path) End() string {
	if len(p.Joins) == 0 {
		return p.Start
	}
	return p.Joins[len(p.Joins)-1].To
}

// Len returns the number of edges in the path (join edges plus the final
// projection edge if present), the paper's path length.
func (p *Path) Len() int {
	n := len(p.Joins)
	if p.Proj != nil {
		n++
	}
	return n
}

// Visits reports whether the path touches the named relation node.
func (p *Path) Visits(rel string) bool {
	if p.Start == rel {
		return true
	}
	for _, e := range p.Joins {
		if e.To == rel {
			return true
		}
	}
	return false
}

// RelationSeq returns the sequence of relation nodes the path traverses.
func (p *Path) RelationSeq() []string {
	out := make([]string, 0, len(p.Joins)+1)
	out = append(out, p.Start)
	for _, e := range p.Joins {
		out = append(out, e.To)
	}
	return out
}

// ExtendJoin returns a new path with e appended. It returns nil when the
// extension would revisit a relation (paths must be acyclic) or when e does
// not attach to the path's end.
func (p *Path) ExtendJoin(e *JoinEdge) *Path {
	if p.Proj != nil {
		return nil // projection paths are terminal
	}
	if e.From != p.End() {
		return nil
	}
	if p.Visits(e.To) {
		return nil
	}
	joins := make([]*JoinEdge, len(p.Joins)+1)
	copy(joins, p.Joins)
	joins[len(p.Joins)] = e
	return &Path{Start: p.Start, Joins: joins, weight: p.weight * e.Weight}
}

// ExtendProjection returns a new projection path with pr appended, or nil
// when pr's container is not the path's end relation.
func (p *Path) ExtendProjection(pr *Projection) *Path {
	if p.Proj != nil {
		return nil
	}
	if pr.Relation != p.End() {
		return nil
	}
	return &Path{Start: p.Start, Joins: p.Joins, Proj: pr, weight: p.weight * pr.Weight}
}

// String renders the path as START -> R1 -> R2 [.attr] (w=0.xx).
func (p *Path) String() string {
	var b strings.Builder
	b.WriteString(p.Start)
	for _, e := range p.Joins {
		b.WriteString(" -> ")
		b.WriteString(e.To)
	}
	if p.Proj != nil {
		b.WriteByte('.')
		b.WriteString(p.Proj.Attribute)
	}
	return b.String()
}

// Less orders candidate paths the way the result schema algorithm requires:
// by decreasing weight; among equal weights, by increasing length (shorter
// paths connect more closely related entities); remaining ties break on the
// rendered path text for determinism.
func (p *Path) Less(q *Path) bool {
	if p.weight != q.weight {
		return p.weight > q.weight
	}
	if p.Len() != q.Len() {
		return p.Len() < q.Len()
	}
	return p.String() < q.String()
}

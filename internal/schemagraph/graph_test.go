package schemagraph

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"precis/internal/storage"
)

// tinyGraph builds A -> B -> C with projections.
func tinyGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.AddRelation("A")
	g.AddRelation("B")
	g.AddRelation("C")
	mustProj := func(rel, attr string, w float64) {
		if _, err := g.AddProjection(rel, attr, w); err != nil {
			t.Fatal(err)
		}
	}
	mustJoin := func(from, to, fc, tc string, w float64) {
		if _, err := g.AddJoin(from, to, fc, tc, w); err != nil {
			t.Fatal(err)
		}
	}
	mustProj("A", "name", 1.0)
	mustProj("A", "x", 0.8)
	mustProj("B", "name", 0.9)
	mustProj("C", "name", 0.7)
	mustJoin("A", "B", "bid", "bid", 0.9)
	mustJoin("B", "A", "bid", "bid", 0.5)
	mustJoin("B", "C", "cid", "cid", 0.6)
	return g
}

func TestAddRelationIdempotent(t *testing.T) {
	g := New()
	a := g.AddRelation("A")
	b := g.AddRelation("A")
	if a != b {
		t.Error("AddRelation created a duplicate node")
	}
	if got := g.Relations(); !reflect.DeepEqual(got, []string{"A"}) {
		t.Errorf("Relations = %v", got)
	}
}

func TestAddProjectionValidation(t *testing.T) {
	g := New()
	g.AddRelation("A")
	if _, err := g.AddProjection("NOPE", "x", 0.5); err == nil {
		t.Error("projection on missing relation accepted")
	}
	if _, err := g.AddProjection("A", "x", 1.5); err == nil {
		t.Error("weight > 1 accepted")
	}
	if _, err := g.AddProjection("A", "x", -0.1); err == nil {
		t.Error("weight < 0 accepted")
	}
	p, err := g.AddProjection("A", "x", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Key() != "A.x" {
		t.Errorf("Key = %q", p.Key())
	}
	// Re-adding updates the weight, no duplicate.
	if _, err := g.AddProjection("A", "x", 0.7); err != nil {
		t.Fatal(err)
	}
	if len(g.Relation("A").Projections()) != 1 {
		t.Error("duplicate projection edge")
	}
	if g.Relation("A").Projection("x").Weight != 0.7 {
		t.Error("weight not updated")
	}
}

func TestAddJoinValidation(t *testing.T) {
	g := New()
	g.AddRelation("A")
	g.AddRelation("B")
	if _, err := g.AddJoin("NOPE", "B", "x", "x", 0.5); err == nil {
		t.Error("join from missing relation accepted")
	}
	if _, err := g.AddJoin("A", "NOPE", "x", "x", 0.5); err == nil {
		t.Error("join to missing relation accepted")
	}
	if _, err := g.AddJoin("A", "B", "x", "x", 2); err == nil {
		t.Error("bad weight accepted")
	}
	e, err := g.AddJoin("A", "B", "x", "x", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Key(), "A->B") {
		t.Errorf("Key = %q", e.Key())
	}
	// Same ordered pair and columns: replaces weight.
	if _, err := g.AddJoin("A", "B", "x", "x", 0.9); err != nil {
		t.Fatal(err)
	}
	if len(g.Relation("A").Out()) != 1 || g.Relation("A").Out()[0].Weight != 0.9 {
		t.Errorf("out = %+v", g.Relation("A").Out())
	}
	// Opposite direction is a distinct edge (paper: two directions, two weights).
	if _, err := g.AddJoin("B", "A", "x", "x", 0.3); err != nil {
		t.Fatal(err)
	}
	if len(g.JoinEdges()) != 2 {
		t.Errorf("JoinEdges = %v", g.JoinEdges())
	}
}

func TestSetHeading(t *testing.T) {
	g := New()
	g.AddRelation("A")
	if err := g.SetHeading("A", "name"); err != nil {
		t.Fatal(err)
	}
	n := g.Relation("A")
	if n.Heading != "name" {
		t.Error("heading not set")
	}
	if p := n.Projection("name"); p == nil || p.Weight != 1.0 {
		t.Error("heading projection should exist with weight 1")
	}
	if err := g.SetHeading("NOPE", "x"); err == nil {
		t.Error("heading on missing relation accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := tinyGraph(t)
	c := g.Clone()
	if _, err := c.AddProjection("A", "name", 0.1); err != nil {
		t.Fatal(err)
	}
	if g.Relation("A").Projection("name").Weight != 1.0 {
		t.Error("clone mutation leaked into original")
	}
	for _, e := range c.Relation("A").Out() {
		e.Weight = 0.01
	}
	if g.Relation("A").Out()[0].Weight != 0.9 {
		t.Error("clone edge mutation leaked into original")
	}
	if c.NumProjections() != g.NumProjections()+0 {
		t.Errorf("clone projections = %d, want %d", c.NumProjections(), g.NumProjections())
	}
}

func TestApplyWeights(t *testing.T) {
	g := tinyGraph(t)
	err := g.ApplyWeights(map[string]float64{
		"A.x":           0.5,
		"A->B(bid=bid)": 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Relation("A").Projection("x").Weight != 0.5 {
		t.Error("projection overlay not applied")
	}
	if g.Relation("A").Out()[0].Weight != 0.4 {
		t.Error("join overlay not applied")
	}
	if err := g.ApplyWeights(map[string]float64{"A.nope": 0.5}); err == nil {
		t.Error("unknown overlay key accepted")
	}
	if err := g.ApplyWeights(map[string]float64{"A.x": 1.5}); err == nil {
		t.Error("bad overlay weight accepted")
	}
}

func TestFromDatabaseAndValidate(t *testing.T) {
	db := storage.NewDatabase("d")
	db.MustCreateRelation(storage.MustSchema("P", "pid",
		storage.Column{Name: "pid", Type: storage.TypeInt},
		storage.Column{Name: "name", Type: storage.TypeString}))
	db.MustCreateRelation(storage.MustSchema("Q", "qid",
		storage.Column{Name: "qid", Type: storage.TypeInt},
		storage.Column{Name: "pid", Type: storage.TypeInt}))
	if err := db.AddForeignKey(storage.ForeignKey{FromRelation: "Q", FromColumn: "pid", ToRelation: "P", ToColumn: "pid"}); err != nil {
		t.Fatal(err)
	}
	g := FromDatabase(db)
	if len(g.Relations()) != 2 {
		t.Fatalf("relations = %v", g.Relations())
	}
	if len(g.JoinEdges()) != 2 {
		t.Fatalf("join edges = %v (want both directions)", g.JoinEdges())
	}
	if g.Relation("P").Projection("name") == nil {
		t.Error("projection edges not created")
	}
	if err := g.Validate(db); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Break it: projection on a missing attribute.
	bad := g.Clone()
	bad.AddRelation("GHOST")
	if err := bad.Validate(db); err == nil {
		t.Error("missing relation accepted")
	}
}

func TestValidateJoinTypeMismatch(t *testing.T) {
	db := storage.NewDatabase("d")
	db.MustCreateRelation(storage.MustSchema("P", "",
		storage.Column{Name: "k", Type: storage.TypeInt}))
	db.MustCreateRelation(storage.MustSchema("Q", "",
		storage.Column{Name: "k", Type: storage.TypeString}))
	g := New()
	g.AddRelation("P")
	g.AddRelation("Q")
	if _, err := g.AddJoin("P", "Q", "k", "k", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(db); err == nil {
		t.Error("type-mismatched join accepted")
	}
}

func TestPathBasics(t *testing.T) {
	g := tinyGraph(t)
	p := NewPath("A")
	if p.Weight() != 1 || p.End() != "A" || p.Len() != 0 {
		t.Errorf("empty path: %v %v %v", p.Weight(), p.End(), p.Len())
	}
	ab := g.Relation("A").Out()[0] // A->B 0.9
	p2 := p.ExtendJoin(ab)
	if p2 == nil || p2.End() != "B" || math.Abs(p2.Weight()-0.9) > 1e-12 {
		t.Fatalf("p2 = %+v", p2)
	}
	bc := g.Relation("B").Out()[1] // B->C 0.6
	p3 := p2.ExtendJoin(bc)
	if p3 == nil || p3.End() != "C" || math.Abs(p3.Weight()-0.54) > 1e-12 {
		t.Fatalf("p3 = %+v", p3)
	}
	proj := g.Relation("C").Projection("name")
	p4 := p3.ExtendProjection(proj)
	if p4 == nil || !p4.IsProjection() || math.Abs(p4.Weight()-0.378) > 1e-12 || p4.Len() != 3 {
		t.Fatalf("p4 = %+v w=%v", p4, p4.Weight())
	}
	if p4.String() != "A -> B -> C.name" {
		t.Errorf("String = %q", p4.String())
	}
	if !reflect.DeepEqual(p3.RelationSeq(), []string{"A", "B", "C"}) {
		t.Errorf("RelationSeq = %v", p3.RelationSeq())
	}
}

func TestPathAcyclic(t *testing.T) {
	g := tinyGraph(t)
	ab := g.Relation("A").Out()[0]
	ba := g.Relation("B").Out()[0] // B->A
	p := NewPath("A").ExtendJoin(ab)
	if p.ExtendJoin(ba) != nil {
		t.Error("cycle A->B->A accepted")
	}
}

func TestPathExtendMismatches(t *testing.T) {
	g := tinyGraph(t)
	bc := g.Relation("B").Out()[1]
	if NewPath("A").ExtendJoin(bc) != nil {
		t.Error("detached join accepted")
	}
	projC := g.Relation("C").Projection("name")
	if NewPath("A").ExtendProjection(projC) != nil {
		t.Error("detached projection accepted")
	}
	// Projection paths are terminal.
	pp := NewPath("A").ExtendProjection(g.Relation("A").Projection("name"))
	if pp.ExtendJoin(g.Relation("A").Out()[0]) != nil {
		t.Error("extension of projection path accepted")
	}
	if pp.ExtendProjection(g.Relation("A").Projection("x")) != nil {
		t.Error("double projection accepted")
	}
}

func TestPathLessOrdering(t *testing.T) {
	g := tinyGraph(t)
	heavy := NewPath("A").ExtendProjection(g.Relation("A").Projection("name")) // w=1, len 1
	light := NewPath("A").ExtendProjection(g.Relation("A").Projection("x"))    // w=0.8, len 1
	if !heavy.Less(light) || light.Less(heavy) {
		t.Error("weight ordering broken")
	}
	// Equal weight: shorter first. Build two paths of weight 0.9.
	short := NewPath("B").ExtendProjection(g.Relation("B").Projection("name")) // 0.9, len 1
	long := NewPath("A").ExtendJoin(g.Relation("A").Out()[0])                  // A->B, 0.9, len 1 join
	lp := long.ExtendProjection(&Projection{Relation: "B", Attribute: "name", Weight: 1.0})
	if lp == nil {
		t.Fatal("extension failed")
	}
	if !short.Less(lp) {
		t.Error("length tie-break broken")
	}
}

// TestPathWeightMonotone is the §3.2 property: extending a path never
// increases its weight (weights are in [0,1], transfer is multiplicative).
func TestPathWeightMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		g := New()
		n := 2 + r.Intn(5)
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('A' + i))
			g.AddRelation(names[i])
		}
		p := NewPath(names[0])
		for i := 1; i < n; i++ {
			w := r.Float64()
			e, err := g.AddJoin(names[i-1], names[i], "k", "k", w)
			if err != nil {
				t.Fatal(err)
			}
			before := p.Weight()
			p = p.ExtendJoin(e)
			if p.Weight() > before+1e-12 {
				t.Fatalf("weight increased: %v -> %v", before, p.Weight())
			}
		}
	}
}

func TestDOT(t *testing.T) {
	g := tinyGraph(t)
	if err := g.SetHeading("A", "name"); err != nil {
		t.Fatal(err)
	}
	dot := g.DOT("test")
	for _, want := range []string{
		"digraph \"test\"",
		"\"A\" -> \"B\"",
		"0.90",
		"name • 1.00",
		"rankdir=LR",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Deterministic output.
	if g.DOT("test") != dot {
		t.Error("DOT not deterministic")
	}
}

func TestEscapeDOT(t *testing.T) {
	in := `a"b{c}d|e<f>g`
	out := escapeDOT(in)
	for _, bad := range []string{`"`, "{", "}", "|", "<", ">"} {
		if strings.Contains(strings.ReplaceAll(out, `\`+bad, ""), bad) {
			t.Errorf("unescaped %q in %q", bad, out)
		}
	}
}

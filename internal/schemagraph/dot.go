package schemagraph

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax, the visualization a domain
// expert uses when assigning weights (§3.1). Relation nodes are boxes whose
// rows list projection weights (heading attributes are marked with •); join
// edges are labelled with their weight and join columns. The output is
// deterministic.
func (g *Graph) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=LR;\n  node [shape=record, fontsize=10];\n")

	names := append([]string(nil), g.order...)
	sort.Strings(names)
	for _, name := range names {
		n := g.nodes[name]
		var rows []string
		rows = append(rows, escapeDOT(name))
		for _, p := range n.Projections() {
			mark := ""
			if p.Attribute == n.Heading {
				mark = " •"
			}
			rows = append(rows, fmt.Sprintf("%s%s %.2f", escapeDOT(p.Attribute), mark, p.Weight))
		}
		fmt.Fprintf(&b, "  %q [label=\"{%s}\"];\n", name, strings.Join(rows, "|"))
	}
	for _, name := range names {
		edges := append([]*JoinEdge(nil), g.nodes[name].out...)
		sort.Slice(edges, func(i, j int) bool { return edges[i].Key() < edges[j].Key() })
		for _, e := range edges {
			fmt.Fprintf(&b, "  %q -> %q [label=\"%.2f (%s)\"];\n", e.From, e.To, e.Weight, escapeDOT(e.FromCol))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// escapeDOT escapes record-label metacharacters.
func escapeDOT(s string) string {
	r := strings.NewReplacer(
		`"`, `\"`, "{", `\{`, "}", `\}`, "|", `\|`, "<", `\<`, ">", `\>`,
	)
	return r.Replace(s)
}

// Package schemagraph implements the weighted database schema graph of the
// paper (§3.1): relation nodes and attribute nodes connected by directed,
// weighted join edges and projection edges. The graph drives both the result
// schema generator (which paths are worth following) and the translator
// (heading attributes and template labels annotate nodes and edges).
package schemagraph

import (
	"fmt"
	"sort"

	"precis/internal/storage"
)

// Projection is a projection edge Π connecting an attribute node to its
// container relation node. Weight 1 means the attribute always accompanies
// the relation in an answer; weight 0 means it never does.
type Projection struct {
	Relation  string
	Attribute string
	Weight    float64
	Label     string // NLG template label, e.g. "{subject} was born on {value}"
}

// Key returns the canonical identifier REL.ATTR used for weight overlays.
func (p *Projection) Key() string { return p.Relation + "." + p.Attribute }

// JoinEdge is a directed join edge between two relation nodes. Direction
// expresses dependence: From is the relation already considered for the
// answer, To is the relation whose inclusion the edge suggests. Two
// relations may be connected by two edges in opposite directions carrying
// different weights (the MOVIE->GENRE 0.9 vs GENRE->MOVIE 1.0 example).
type JoinEdge struct {
	From    string
	To      string
	FromCol string
	ToCol   string
	Weight  float64
	Label   string // NLG template label for the relationship
}

// Key returns the canonical identifier FROM->TO(fromCol=toCol).
func (e *JoinEdge) Key() string {
	return fmt.Sprintf("%s->%s(%s=%s)", e.From, e.To, e.FromCol, e.ToCol)
}

// String renders the edge with its weight.
func (e *JoinEdge) String() string {
	return fmt.Sprintf("%s -[%.2f]-> %s on %s=%s", e.From, e.Weight, e.To, e.FromCol, e.ToCol)
}

// RelationNode is a relation node together with its attached projection
// edges and outgoing join edges.
type RelationNode struct {
	Name      string
	Heading   string // heading attribute for NLG; "" if none (junction relations)
	Sentence  string // optional NLG sentence template for the relation
	projs     map[string]*Projection
	projOrder []string
	out       []*JoinEdge
}

// Projection returns the projection edge for the named attribute, or nil.
func (n *RelationNode) Projection(attr string) *Projection { return n.projs[attr] }

// Projections returns the projection edges in declaration order.
func (n *RelationNode) Projections() []*Projection {
	out := make([]*Projection, 0, len(n.projOrder))
	for _, a := range n.projOrder {
		out = append(out, n.projs[a])
	}
	return out
}

// Out returns the outgoing join edges in declaration order.
func (n *RelationNode) Out() []*JoinEdge { return append([]*JoinEdge(nil), n.out...) }

// Graph is the database schema graph G(V, E).
type Graph struct {
	nodes map[string]*RelationNode
	order []string
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nodes: make(map[string]*RelationNode)}
}

// AddRelation adds a relation node. It is idempotent for an existing name.
func (g *Graph) AddRelation(name string) *RelationNode {
	if n, ok := g.nodes[name]; ok {
		return n
	}
	n := &RelationNode{Name: name, projs: make(map[string]*Projection)}
	g.nodes[name] = n
	g.order = append(g.order, name)
	return n
}

// Relation returns the named relation node, or nil.
func (g *Graph) Relation(name string) *RelationNode { return g.nodes[name] }

// Relations returns relation names in insertion order.
func (g *Graph) Relations() []string { return append([]string(nil), g.order...) }

// AddProjection adds (or replaces) a projection edge.
func (g *Graph) AddProjection(relation, attribute string, weight float64) (*Projection, error) {
	if err := checkWeight(weight); err != nil {
		return nil, fmt.Errorf("schemagraph: projection %s.%s: %w", relation, attribute, err)
	}
	n := g.nodes[relation]
	if n == nil {
		return nil, fmt.Errorf("schemagraph: no relation node %s", relation)
	}
	p, ok := n.projs[attribute]
	if !ok {
		p = &Projection{Relation: relation, Attribute: attribute}
		n.projs[attribute] = p
		n.projOrder = append(n.projOrder, attribute)
	}
	p.Weight = weight
	return p, nil
}

// AddJoin adds a directed join edge. At most one edge may exist between the
// same ordered pair of relations over the same column pair (paper
// simplification); re-adding replaces the weight.
func (g *Graph) AddJoin(from, to, fromCol, toCol string, weight float64) (*JoinEdge, error) {
	if err := checkWeight(weight); err != nil {
		return nil, fmt.Errorf("schemagraph: join %s->%s: %w", from, to, err)
	}
	fn := g.nodes[from]
	if fn == nil {
		return nil, fmt.Errorf("schemagraph: no relation node %s", from)
	}
	if g.nodes[to] == nil {
		return nil, fmt.Errorf("schemagraph: no relation node %s", to)
	}
	for _, e := range fn.out {
		if e.To == to && e.FromCol == fromCol && e.ToCol == toCol {
			e.Weight = weight
			return e, nil
		}
	}
	e := &JoinEdge{From: from, To: to, FromCol: fromCol, ToCol: toCol, Weight: weight}
	fn.out = append(fn.out, e)
	return e, nil
}

// SetHeading marks the heading attribute of a relation (the attribute whose
// value characterizes tuples of the relation in narrative output). Per the
// paper, the heading attribute's projection edge gets weight 1 and is always
// present in a result; SetHeading enforces that by upserting the projection.
func (g *Graph) SetHeading(relation, attribute string) error {
	n := g.nodes[relation]
	if n == nil {
		return fmt.Errorf("schemagraph: no relation node %s", relation)
	}
	if _, err := g.AddProjection(relation, attribute, 1.0); err != nil {
		return err
	}
	n.Heading = attribute
	return nil
}

// checkWeight validates w ∈ [0, 1].
func checkWeight(w float64) error {
	if w < 0 || w > 1 {
		return fmt.Errorf("weight %v outside [0,1]", w)
	}
	return nil
}

// JoinEdges returns every join edge of the graph in deterministic order.
func (g *Graph) JoinEdges() []*JoinEdge {
	var out []*JoinEdge
	for _, name := range g.order {
		out = append(out, g.nodes[name].out...)
	}
	return out
}

// NumProjections returns the count of projection edges.
func (g *Graph) NumProjections() int {
	n := 0
	for _, name := range g.order {
		n += len(g.nodes[name].projs)
	}
	return n
}

// Clone returns a deep copy of the graph (nodes, edges, annotations), so
// user profiles can overlay weights without mutating the shared graph.
func (g *Graph) Clone() *Graph {
	out := New()
	for _, name := range g.order {
		n := g.nodes[name]
		cn := out.AddRelation(name)
		cn.Heading = n.Heading
		cn.Sentence = n.Sentence
		for _, a := range n.projOrder {
			p := n.projs[a]
			cp := *p
			cn.projs[a] = &cp
			cn.projOrder = append(cn.projOrder, a)
		}
		for _, e := range n.out {
			ce := *e
			cn.out = append(cn.out, &ce)
		}
	}
	return out
}

// ApplyWeights overlays weights keyed by Projection.Key or JoinEdge.Key.
// Unknown keys are reported as an error so profile typos surface early.
func (g *Graph) ApplyWeights(weights map[string]float64) error {
	remaining := make(map[string]float64, len(weights))
	for k, v := range weights {
		if err := checkWeight(v); err != nil {
			return fmt.Errorf("schemagraph: overlay %s: %w", k, err)
		}
		remaining[k] = v
	}
	for _, name := range g.order {
		n := g.nodes[name]
		for _, a := range n.projOrder {
			p := n.projs[a]
			if w, ok := remaining[p.Key()]; ok {
				p.Weight = w
				delete(remaining, p.Key())
			}
		}
		for _, e := range n.out {
			if w, ok := remaining[e.Key()]; ok {
				e.Weight = w
				delete(remaining, e.Key())
			}
		}
	}
	if len(remaining) > 0 {
		keys := make([]string, 0, len(remaining))
		for k := range remaining {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return fmt.Errorf("schemagraph: overlay keys not found: %v", keys)
	}
	return nil
}

// FromDatabase builds a graph skeleton from a database: one relation node
// per relation, a projection edge per attribute (weight 1), and a pair of
// join edges (both directions, weight 1) per declared foreign key. A domain
// expert then adjusts weights, headings and labels.
func FromDatabase(db *storage.Database) *Graph {
	g := New()
	for _, name := range db.RelationNames() {
		g.AddRelation(name)
		for _, c := range db.Relation(name).Schema().Columns {
			if _, err := g.AddProjection(name, c.Name, 1.0); err != nil {
				panic(err) // unreachable: nodes and weights are valid by construction
			}
		}
	}
	for _, fk := range db.ForeignKeys() {
		if _, err := g.AddJoin(fk.FromRelation, fk.ToRelation, fk.FromColumn, fk.ToColumn, 1.0); err != nil {
			panic(err)
		}
		if _, err := g.AddJoin(fk.ToRelation, fk.FromRelation, fk.ToColumn, fk.FromColumn, 1.0); err != nil {
			panic(err)
		}
	}
	return g
}

// Validate checks the graph against a database: every relation node must
// exist, every projection edge must name a real attribute, and every join
// edge must connect columns of matching type.
func (g *Graph) Validate(db *storage.Database) error {
	for _, name := range g.order {
		rel := db.Relation(name)
		if rel == nil {
			return fmt.Errorf("schemagraph: relation node %s has no relation in the database", name)
		}
		n := g.nodes[name]
		for _, a := range n.projOrder {
			if !rel.Schema().HasColumn(a) {
				return fmt.Errorf("schemagraph: projection %s.%s names a missing attribute", name, a)
			}
		}
		if n.Heading != "" && !rel.Schema().HasColumn(n.Heading) {
			return fmt.Errorf("schemagraph: heading %s.%s names a missing attribute", name, n.Heading)
		}
		for _, e := range n.out {
			to := db.Relation(e.To)
			if to == nil {
				return fmt.Errorf("schemagraph: join %s targets missing relation %s", e.Key(), e.To)
			}
			fi := rel.Schema().ColumnIndex(e.FromCol)
			ti := to.Schema().ColumnIndex(e.ToCol)
			if fi < 0 {
				return fmt.Errorf("schemagraph: join %s names missing column %s.%s", e.Key(), e.From, e.FromCol)
			}
			if ti < 0 {
				return fmt.Errorf("schemagraph: join %s names missing column %s.%s", e.Key(), e.To, e.ToCol)
			}
			if rel.Schema().Columns[fi].Type != to.Schema().Columns[ti].Type {
				return fmt.Errorf("schemagraph: join %s connects %s and %s columns", e.Key(),
					rel.Schema().Columns[fi].Type, to.Schema().Columns[ti].Type)
			}
		}
	}
	return nil
}

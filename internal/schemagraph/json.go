package schemagraph

import (
	"encoding/json"
	"fmt"
	"io"
)

// The JSON form of a schema graph lets a domain expert author weights,
// heading attributes and narrative templates in a file instead of code —
// the paper's "sets of weights may be created by a designer" (§3.1) made
// concrete. SaveJSON and LoadJSON round-trip every annotation.

// graphJSON is the serialized shape.
type graphJSON struct {
	Relations []relationJSON `json:"relations"`
}

type relationJSON struct {
	Name        string           `json:"name"`
	Heading     string           `json:"heading,omitempty"`
	Sentence    string           `json:"sentence,omitempty"`
	Projections []projectionJSON `json:"projections,omitempty"`
	Joins       []joinJSON       `json:"joins,omitempty"`
}

type projectionJSON struct {
	Attribute string  `json:"attribute"`
	Weight    float64 `json:"weight"`
	Label     string  `json:"label,omitempty"`
}

type joinJSON struct {
	To         string  `json:"to"`
	FromColumn string  `json:"fromColumn"`
	ToColumn   string  `json:"toColumn"`
	Weight     float64 `json:"weight"`
	Label      string  `json:"label,omitempty"`
}

// SaveJSON writes the graph (declaration order preserved) as indented JSON.
func (g *Graph) SaveJSON(w io.Writer) error {
	out := graphJSON{}
	for _, name := range g.order {
		n := g.nodes[name]
		rj := relationJSON{Name: name, Heading: n.Heading, Sentence: n.Sentence}
		for _, p := range n.Projections() {
			rj.Projections = append(rj.Projections, projectionJSON{
				Attribute: p.Attribute, Weight: p.Weight, Label: p.Label,
			})
		}
		for _, e := range n.out {
			rj.Joins = append(rj.Joins, joinJSON{
				To: e.To, FromColumn: e.FromCol, ToColumn: e.ToCol,
				Weight: e.Weight, Label: e.Label,
			})
		}
		out.Relations = append(out.Relations, rj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadJSON reads a graph previously written by SaveJSON (or hand-authored
// in the same shape), validating weights and endpoint references.
func LoadJSON(r io.Reader) (*Graph, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var in graphJSON
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("schemagraph: %w", err)
	}
	if len(in.Relations) == 0 {
		return nil, fmt.Errorf("schemagraph: graph file declares no relations")
	}
	g := New()
	for _, rj := range in.Relations {
		if rj.Name == "" {
			return nil, fmt.Errorf("schemagraph: relation with empty name")
		}
		if g.Relation(rj.Name) != nil {
			return nil, fmt.Errorf("schemagraph: relation %s declared twice", rj.Name)
		}
		g.AddRelation(rj.Name)
	}
	for _, rj := range in.Relations {
		n := g.Relation(rj.Name)
		n.Sentence = rj.Sentence
		for _, pj := range rj.Projections {
			p, err := g.AddProjection(rj.Name, pj.Attribute, pj.Weight)
			if err != nil {
				return nil, err
			}
			p.Label = pj.Label
		}
		for _, jj := range rj.Joins {
			if g.Relation(jj.To) == nil {
				return nil, fmt.Errorf("schemagraph: join %s -> %s targets an undeclared relation", rj.Name, jj.To)
			}
			e, err := g.AddJoin(rj.Name, jj.To, jj.FromColumn, jj.ToColumn, jj.Weight)
			if err != nil {
				return nil, err
			}
			e.Label = jj.Label
		}
		if rj.Heading != "" {
			if n.Projection(rj.Heading) == nil {
				return nil, fmt.Errorf("schemagraph: heading %s.%s has no projection", rj.Name, rj.Heading)
			}
			if err := g.SetHeading(rj.Name, rj.Heading); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

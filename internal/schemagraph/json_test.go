package schemagraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g := tinyGraph(t)
	if err := g.SetHeading("A", "name"); err != nil {
		t.Fatal(err)
	}
	g.Relation("A").Sentence = `@NAME + "."`
	g.Relation("A").Projection("name").Label = "the name"
	g.Relation("A").Out()[0].Label = `"related: " + @NAME`

	var buf bytes.Buffer
	if err := g.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadJSON: %v\n%s", err, buf.String())
	}
	// Full structural equality via a second serialization.
	var buf2 bytes.Buffer
	if err := back.SaveJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Errorf("round trip changed the graph:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
	// Annotations survived.
	if back.Relation("A").Heading != "name" || back.Relation("A").Sentence == "" {
		t.Error("annotations lost")
	}
	if back.Relation("A").Out()[0].Label == "" {
		t.Error("join label lost")
	}
	if back.Relation("A").Projection("x").Weight != 0.8 {
		t.Error("weight lost")
	}
}

func TestLoadJSONErrors(t *testing.T) {
	cases := []string{
		``,
		`{bad json`,
		`{"relations": []}`,
		`{"relations": [{"name": ""}]}`,
		`{"relations": [{"name": "A"}, {"name": "A"}]}`,
		`{"relations": [{"name": "A", "joins": [{"to": "GHOST", "fromColumn": "x", "toColumn": "x", "weight": 1}]}]}`,
		`{"relations": [{"name": "A", "projections": [{"attribute": "x", "weight": 2}]}]}`,
		`{"relations": [{"name": "A", "heading": "missing"}]}`,
		`{"relations": [{"name": "A"}], "unknown": 1}`,
	}
	for _, src := range cases {
		if _, err := LoadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("LoadJSON(%q) accepted", src)
		}
	}
}

func TestLoadJSONForwardJoins(t *testing.T) {
	// A join may reference a relation declared later in the file.
	src := `{"relations": [
		{"name": "A", "joins": [{"to": "B", "fromColumn": "k", "toColumn": "k", "weight": 0.5}]},
		{"name": "B"}
	]}`
	g, err := LoadJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.JoinEdges()) != 1 {
		t.Errorf("joins = %v", g.JoinEdges())
	}
}

package wal

import (
	"fmt"
	"os"
	"sort"

	"precis/internal/faultinject"
	"precis/internal/storage"
)

// Snapshot file format: the 8-byte magic, then one frame per section —
// header, one section per relation (schema + tuples), foreign keys, engine
// extras (synonyms + macro definitions), and a trailer that authenticates
// the total tuple count. A snapshot without its trailer is incomplete (an
// interrupted write), which recovery treats differently from corruption.
const (
	snapMagic   = "PRCSNAP1"
	snapVersion = 1
	// snapTrailer is the trailer section's first field, guarding against a
	// stray frame sequence that happens to end cleanly.
	snapTrailer = "precis-snapshot-end"
)

// SnapshotData is everything a snapshot captures: the full database plus
// the engine extras that live outside storage — synonym pairs (tokenized
// alias, canonical term) and narrative macro definitions, both in a
// deterministic order.
type SnapshotData struct {
	DB       *storage.Database
	Synonyms [][2]string
	Macros   []string

	synIdx   map[string]int
	macroSet map[string]bool
}

// setSynonym records or updates a synonym pair, keeping Synonyms sorted-
// insertion stable (an alias redefined in place keeps its slot).
func (s *SnapshotData) setSynonym(alias, canonical string) {
	if s.synIdx == nil {
		s.synIdx = make(map[string]int, len(s.Synonyms)+1)
		for i, p := range s.Synonyms {
			s.synIdx[p[0]] = i
		}
	}
	if i, ok := s.synIdx[alias]; ok {
		s.Synonyms[i][1] = canonical
		return
	}
	s.synIdx[alias] = len(s.Synonyms)
	s.Synonyms = append(s.Synonyms, [2]string{alias, canonical})
}

// addMacro records a macro definition, deduplicating exact repeats so
// checkpoint snapshots do not grow with every redefinition.
func (s *SnapshotData) addMacro(def string) {
	if s.macroSet == nil {
		s.macroSet = make(map[string]bool, len(s.Macros)+1)
		for _, m := range s.Macros {
			s.macroSet[m] = true
		}
	}
	if s.macroSet[def] {
		return
	}
	s.macroSet[def] = true
	s.Macros = append(s.Macros, def)
}

// EncodeSnapshot renders data as snapshot bytes. Relations are encoded in
// creation order and tuples in scan (insertion) order — storage guarantees
// both are stable — so identical states produce identical bytes. A section
// whose encoding exceeds the frame payload limit (a single relation over
// 1 GiB) is refused with an error naming it: the same limit the decoder
// hard-fails on must be enforced here, before any bytes can reach disk,
// or a checkpoint would "succeed", garbage-collect the older generations,
// and leave behind a snapshot that can never be opened again.
func EncodeSnapshot(data *SnapshotData) ([]byte, error) {
	out := []byte(snapMagic)
	db := data.DB
	names := db.RelationNames()
	fks := db.ForeignKeys()

	// Header section.
	var h enc
	h.uvarint(snapVersion)
	h.str(db.Name())
	h.uvarint(uint64(db.NextTupleID()))
	h.uvarint(uint64(len(names)))
	out, err := appendFrame(out, h.bytes())
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot header: %w", err)
	}

	// One section per relation: schema then tuples.
	total := 0
	for _, name := range names {
		rel := db.Relation(name)
		sc := rel.Schema()
		var e enc
		e.str(sc.Name)
		e.str(sc.Key)
		e.uvarint(uint64(len(sc.Columns)))
		for _, c := range sc.Columns {
			e.str(c.Name)
			e.u8(uint8(c.Type))
		}
		e.uvarint(uint64(rel.Len()))
		rel.Scan(func(t storage.Tuple) bool {
			total++
			e.uvarint(uint64(t.ID))
			e.uvarint(uint64(len(t.Values)))
			for _, v := range t.Values {
				e.value(v)
			}
			return true
		})
		if out, err = appendFrame(out, e.bytes()); err != nil {
			return nil, fmt.Errorf("wal: snapshot relation %s: %w", name, err)
		}
	}

	// Foreign keys.
	var fe enc
	fe.uvarint(uint64(len(fks)))
	for _, fk := range fks {
		fe.str(fk.FromRelation)
		fe.str(fk.FromColumn)
		fe.str(fk.ToRelation)
		fe.str(fk.ToColumn)
	}
	if out, err = appendFrame(out, fe.bytes()); err != nil {
		return nil, fmt.Errorf("wal: snapshot foreign keys: %w", err)
	}

	// Engine extras: synonyms (sorted by alias for deterministic bytes) and
	// macro definitions (definition order).
	syn := append([][2]string(nil), data.Synonyms...)
	sort.Slice(syn, func(i, j int) bool { return syn[i][0] < syn[j][0] })
	var xe enc
	xe.uvarint(uint64(len(syn)))
	for _, p := range syn {
		xe.str(p[0])
		xe.str(p[1])
	}
	xe.uvarint(uint64(len(data.Macros)))
	for _, m := range data.Macros {
		xe.str(m)
	}
	if out, err = appendFrame(out, xe.bytes()); err != nil {
		return nil, fmt.Errorf("wal: snapshot extras: %w", err)
	}

	// Trailer: authenticates that every section arrived.
	var te enc
	te.str(snapTrailer)
	te.uvarint(uint64(total))
	if out, err = appendFrame(out, te.bytes()); err != nil {
		return nil, fmt.Errorf("wal: snapshot trailer: %w", err)
	}
	return out, nil
}

// DecodeSnapshot parses snapshot bytes back into a SnapshotData. file names
// the source in diagnostics ("" for in-memory input). Corruption (checksum
// mismatch anywhere) returns a *CorruptionError; a byte stream that simply
// stops before the trailer returns an error satisfying IsIncomplete. The
// decoder never panics and never allocates more than the input justifies,
// whatever the bytes claim.
func DecodeSnapshot(file string, raw []byte) (*SnapshotData, error) {
	if len(raw) < len(snapMagic) || string(raw[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("wal: %s: not a snapshot (bad magic): %w", fileLabel(file), errIncomplete)
	}
	var (
		data      = &SnapshotData{}
		nRels     int
		relsSeen  int
		fksDone   bool
		extrasOK  bool
		trailerOK bool
		total     uint64
	)
	torn, err := scanFrames(file, raw[len(snapMagic):], func(i int, off int64, payload []byte) error {
		d := &dec{b: payload}
		switch {
		case i == 0: // header
			ver, err := d.uvarint()
			if err != nil {
				return fmt.Errorf("header: %w", err)
			}
			if ver != snapVersion {
				return fmt.Errorf("unsupported snapshot version %d", ver)
			}
			name, err := d.str()
			if err != nil {
				return fmt.Errorf("header: %w", err)
			}
			next, err := d.uvarint()
			if err != nil {
				return fmt.Errorf("header: %w", err)
			}
			n, err := d.uvarint()
			if err != nil {
				return fmt.Errorf("header: %w", err)
			}
			if n > uint64(len(raw)) { // each relation section costs ≥ 1 byte
				return fmt.Errorf("header: relation count %d exceeds input", n)
			}
			nRels = int(n)
			data.DB = storage.NewDatabase(name)
			data.DB.SetNextTupleID(storage.TupleID(next))
			return nil
		case relsSeen < nRels: // relation section
			if err := decodeRelation(d, data.DB); err != nil {
				return fmt.Errorf("relation section %d: %w", relsSeen, err)
			}
			relsSeen++
			return nil
		case !fksDone: // foreign keys
			n, err := d.count(4)
			if err != nil {
				return fmt.Errorf("foreign keys: %w", err)
			}
			for j := 0; j < n; j++ {
				var fk storage.ForeignKey
				if fk.FromRelation, err = d.str(); err == nil {
					if fk.FromColumn, err = d.str(); err == nil {
						if fk.ToRelation, err = d.str(); err == nil {
							fk.ToColumn, err = d.str()
						}
					}
				}
				if err != nil {
					return fmt.Errorf("foreign key %d: %w", j, err)
				}
				if err := data.DB.AddForeignKey(fk); err != nil {
					return err
				}
			}
			fksDone = true
			return nil
		case !extrasOK: // synonyms + macros
			n, err := d.count(2)
			if err != nil {
				return fmt.Errorf("synonyms: %w", err)
			}
			for j := 0; j < n; j++ {
				alias, err := d.str()
				if err != nil {
					return fmt.Errorf("synonym %d: %w", j, err)
				}
				canonical, err := d.str()
				if err != nil {
					return fmt.Errorf("synonym %d: %w", j, err)
				}
				data.setSynonym(alias, canonical)
			}
			n, err = d.count(1)
			if err != nil {
				return fmt.Errorf("macros: %w", err)
			}
			for j := 0; j < n; j++ {
				def, err := d.str()
				if err != nil {
					return fmt.Errorf("macro %d: %w", j, err)
				}
				data.addMacro(def)
			}
			extrasOK = true
			return nil
		case !trailerOK: // trailer
			tag, err := d.str()
			if err != nil || tag != snapTrailer {
				return fmt.Errorf("bad trailer")
			}
			if total, err = d.uvarint(); err != nil {
				return fmt.Errorf("trailer: %w", err)
			}
			trailerOK = true
			return nil
		default:
			return fmt.Errorf("unexpected section after trailer")
		}
	})
	if err != nil {
		return nil, err
	}
	if torn != nil || !trailerOK {
		detail := "missing trailer"
		if torn != nil {
			detail = torn.Detail
		}
		return nil, fmt.Errorf("wal: %s: snapshot incomplete (%s): %w", fileLabel(file), detail, errIncomplete)
	}
	if got := data.DB.TotalTuples(); uint64(got) != total {
		return nil, &CorruptionError{File: file, Offset: 0, Record: 0,
			Detail: fmt.Sprintf("trailer declares %d tuples, decoded %d", total, got)}
	}
	return data, nil
}

// decodeRelation parses one relation section into db.
func decodeRelation(d *dec, db *storage.Database) error {
	name, err := d.str()
	if err != nil {
		return err
	}
	key, err := d.str()
	if err != nil {
		return err
	}
	ncols, err := d.count(2)
	if err != nil {
		return err
	}
	cols := make([]storage.Column, 0, ncols)
	for i := 0; i < ncols; i++ {
		cname, err := d.str()
		if err != nil {
			return fmt.Errorf("column %d: %w", i, err)
		}
		ct, err := d.u8()
		if err != nil {
			return fmt.Errorf("column %d: %w", i, err)
		}
		cols = append(cols, storage.Column{Name: cname, Type: storage.ColType(ct)})
	}
	schema, err := storage.NewSchema(name, key, cols...)
	if err != nil {
		return err
	}
	if _, err := db.CreateRelation(schema); err != nil {
		return err
	}
	ntuples, err := d.count(2)
	if err != nil {
		return err
	}
	for i := 0; i < ntuples; i++ {
		id, err := d.uvarint()
		if err != nil {
			return fmt.Errorf("tuple %d: %w", i, err)
		}
		vals, err := d.values()
		if err != nil {
			return fmt.Errorf("tuple %d: %w", i, err)
		}
		if err := db.InsertWithID(name, storage.TupleID(id), vals...); err != nil {
			return fmt.Errorf("tuple %d: %w", i, err)
		}
	}
	return nil
}

func fileLabel(file string) string {
	if file == "" {
		return "<memory>"
	}
	return file
}

// WriteSnapshot durably writes data as generation gen in dir: encode to a
// temp file, fsync it, rename into place, fsync the directory. A crash at
// any point leaves either no new snapshot or a complete one — never a
// half-visible generation, and an encode failure (oversized section)
// aborts before any file exists, leaving older generations untouched.
func WriteSnapshot(dir string, gen uint64, data *SnapshotData) (string, error) {
	if err := faultinject.Fire(faultinject.SiteSnapshotWrite); err != nil {
		return "", fmt.Errorf("wal: snapshot write: %w", err)
	}
	raw, err := EncodeSnapshot(data)
	if err != nil {
		return "", err
	}
	return WriteRawSnapshot(dir, gen, raw)
}

// WriteRawSnapshot durably writes already-encoded snapshot bytes as
// generation gen — the follower's install path, which must keep the file
// byte-identical to the primary's.
func WriteRawSnapshot(dir string, gen uint64, raw []byte) (string, error) {
	return writeRawFile(dir, snapshotName(gen), raw)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func snapshotName(gen uint64) string { return fmt.Sprintf("snap-%016x.snap", gen) }

func walName(gen uint64) string { return fmt.Sprintf("wal-%016x.log", gen) }

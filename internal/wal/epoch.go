package wal

// Failover epoch persistence. The epoch is a monotonically increasing
// fencing token kept in a small checksummed file next to the snapshots and
// logs. Every promotion of a follower to primary bumps it; replication
// stamps it on every stream, so two primaries can never both be believed —
// the higher epoch wins, and the loser is *fenced*: the fence (the epoch of
// the deposer) is persisted in the same file, so a deposed primary that
// crashes and resurrects refuses every append from the moment it boots,
// before any replication link could tell it the cluster moved on.
//
// A directory without an epoch file is at epoch 1, unfenced — directories
// written before failover existed keep working, and no file is created
// until the first promotion or fence actually happens.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// ErrFenced is returned by Append/AppendRaw on a fenced store: a newer
// primary exists (its epoch is recorded in the fence) and this store must
// never make another write durable. Unfencing happens only by adopting an
// epoch at least as new — i.e. rejoining the cluster as a follower.
var ErrFenced = errors.New("wal: store is fenced by a newer primary epoch")

const (
	epochMagic    = "PRCEPOC1"
	epochFileName = "epoch"
	epochFileSize = len(epochMagic) + 8 + 8 + 4 // magic, epoch, fencedBy, CRC32C
)

// loadEpoch reads the epoch file during Open. A missing file is epoch 1,
// unfenced; a malformed or corrupt file is an error (silently resetting the
// fence could resurrect a split brain).
func (s *Store) loadEpoch() error {
	raw, err := os.ReadFile(filepath.Join(s.dir, epochFileName))
	if errors.Is(err, os.ErrNotExist) {
		s.epoch = 1
		return nil
	}
	if err != nil {
		return err
	}
	if len(raw) != epochFileSize || string(raw[:len(epochMagic)]) != epochMagic {
		return fmt.Errorf("wal: %s: malformed epoch file (%d bytes)", s.dir, len(raw))
	}
	body := raw[:epochFileSize-4]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(raw[epochFileSize-4:]); got != want {
		return fmt.Errorf("wal: %s: epoch file checksum mismatch (got %08x, want %08x)", s.dir, got, want)
	}
	s.epoch = binary.LittleEndian.Uint64(raw[len(epochMagic):])
	s.fencedBy = binary.LittleEndian.Uint64(raw[len(epochMagic)+8:])
	if s.epoch == 0 {
		s.epoch = 1
	}
	if s.fencedBy != 0 {
		s.log.Printf("wal: %s is fenced by primary epoch %d (local epoch %d): refusing appends until it rejoins as a follower", s.dir, s.fencedBy, s.epoch)
	}
	return nil
}

// persistEpochLocked writes the epoch file atomically (temp, fsync, rename,
// directory fsync — the same discipline as snapshots). Caller holds s.mu.
func (s *Store) persistEpochLocked() error {
	buf := make([]byte, epochFileSize)
	copy(buf, epochMagic)
	binary.LittleEndian.PutUint64(buf[len(epochMagic):], s.epoch)
	binary.LittleEndian.PutUint64(buf[len(epochMagic)+8:], s.fencedBy)
	binary.LittleEndian.PutUint32(buf[epochFileSize-4:], crc32.Checksum(buf[:epochFileSize-4], castagnoli))
	f, err := os.CreateTemp(s.dir, ".tmp-epoch-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, epochFileName)); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return syncDir(s.dir)
}

// Epoch returns the store's fencing epoch (1 for directories that have
// never seen a promotion). Safe after Close.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// SetEpoch durably adopts a new fencing epoch. Regressions are refused —
// an epoch only ever moves forward. Adopting an epoch at least as new as
// the fence clears it: the store has rejoined the cluster the fence was
// protecting it from.
func (s *Store) SetEpoch(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: store is closed")
	}
	if epoch < s.epoch {
		return fmt.Errorf("wal: epoch regression (have %d, asked to set %d)", s.epoch, epoch)
	}
	if epoch == s.epoch && s.fencedBy == 0 {
		return nil
	}
	prevEpoch, prevFence := s.epoch, s.fencedBy
	s.epoch = epoch
	if s.fencedBy != 0 && epoch >= s.fencedBy {
		s.fencedBy = 0
	}
	if err := s.persistEpochLocked(); err != nil {
		s.epoch, s.fencedBy = prevEpoch, prevFence
		return err
	}
	return nil
}

// Fence durably marks the store deposed by a newer primary at epoch by:
// every subsequent Append — in this process and in any future process that
// opens the directory — fails with ErrFenced. The in-memory fence holds
// even if persisting it fails (fail-safe: better to refuse writes we could
// have taken than to take writes we must not).
func (s *Store) Fence(by uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if by <= s.fencedBy {
		return nil
	}
	s.fencedBy = by
	if s.closed {
		return nil
	}
	return s.persistEpochLocked()
}

// FencedBy returns the epoch of the primary that fenced this store, or 0
// when the store is not fenced.
func (s *Store) FencedBy() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fencedBy
}

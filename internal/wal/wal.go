package wal

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"precis/internal/faultinject"
	"precis/internal/obs"
)

// FsyncPolicy says when appended WAL records are forced to stable storage.
type FsyncPolicy uint8

const (
	// FsyncAlways fsyncs before Append returns: a returned mutation is
	// durable. Concurrent appenders share one fsync (group commit).
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a background timer: a crash loses at most the
	// last interval's worth of mutations, all of them a clean log suffix.
	FsyncInterval
	// FsyncNever leaves flushing to the OS page cache: fastest, loses the
	// most on power failure, still torn-write safe (the frame checksums
	// bound the damage to a truncated tail).
	FsyncNever
)

// String renders the policy as its flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParseFsyncPolicy parses the -fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// DefaultFsyncInterval paces FsyncInterval when no interval is configured.
const DefaultFsyncInterval = 50 * time.Millisecond

// Metrics are the optional instruments a Writer ticks. Every field is
// nil-safe (obs instruments are nil-receiver no-ops), so an un-instrumented
// writer pays only nil checks.
type Metrics struct {
	AppendedBytes   *obs.Counter
	AppendedRecords *obs.Counter
	Fsyncs          *obs.Counter
	FsyncSeconds    *obs.Histogram
	Checkpoints     *obs.Counter
	CheckpointSecs  *obs.Histogram
	// DeltaCheckpoints / DeltaBytes count the incremental-checkpoint
	// subset of checkpoints and the delta bytes they wrote.
	DeltaCheckpoints *obs.Counter
	DeltaBytes       *obs.Counter
}

// Writer is an append-only, checksummed log file. Appends are framed and
// written under one mutex; durability follows the fsync policy. With
// FsyncAlways, concurrent appenders batch into group commits: every waiter
// that arrives while an fsync is in flight is covered by the next one, so
// n concurrent appends cost far fewer than n fsyncs.
//
// A failed fsync poisons the writer: the un-durable tail (every frame
// written since the last successful fsync) is truncated off the file and
// all further appends are refused with a sticky error. This is what makes
// the engine's rollback-on-append-error protocol sound — a record whose
// Append reported failure can never be made durable by a later group
// commit or OS writeback, so crash recovery can never replay a mutation
// the engine rolled back (no phantom records).
type Writer struct {
	path     string
	policy   FsyncPolicy
	interval time.Duration

	mu       sync.Mutex // serializes file writes
	f        *os.File
	writeSeq atomic.Int64 // frames appended
	size     atomic.Int64 // file size in bytes
	records  atomic.Int64 // records appended this generation

	syncMu    sync.Mutex   // serializes fsyncs (the group-commit gate)
	syncedSeq atomic.Int64 // highest writeSeq known durable
	// syncedSize / syncedRecords mirror size / records at the last
	// successful fsync — the durable frontier a poisoning truncates back
	// to. Guarded by syncMu.
	syncedSize    int64
	syncedRecords int64

	// failed is the sticky poison error: once set (by a failed fsync) the
	// writer refuses every further append and sync. Checked under mu on the
	// append path so a poisoning's truncation cannot race a frame write.
	failed atomic.Pointer[error]

	// durableRecords / durableBytes publish the replication frontier: the
	// prefix of the file that is safe to stream to a follower. Under
	// FsyncNever they advance on append (durability is delegated to the OS,
	// so "written" is as committed as this policy gets); under the other
	// policies they advance on successful fsync. Both are monotonic; a
	// poisoning never rolls them back (the truncated tail was never
	// published, because publication happens only after the bytes are in
	// the file). onAdvance, when set, fires after every advance.
	durableRecords atomic.Int64
	durableBytes   atomic.Int64
	onAdvance      atomic.Pointer[func()]

	metrics atomic.Pointer[Metrics]

	stop chan struct{}
	done chan struct{}
}

// openWriter opens (or creates) path for appending under the given policy.
func openWriter(path string, policy FsyncPolicy, interval time.Duration) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if interval <= 0 {
		interval = DefaultFsyncInterval
	}
	w := &Writer{path: path, policy: policy, interval: interval, f: f}
	w.size.Store(st.Size())
	// Whatever the file already holds survived a previous process (or was
	// just replayed by recovery): it is the initial durable frontier.
	w.syncedSize = st.Size()
	w.durableBytes.Store(st.Size())
	if policy == FsyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.flushLoop()
	}
	return w, nil
}

// flushLoop is the FsyncInterval background flusher.
func (w *Writer) flushLoop() {
	defer close(w.done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			// A failed sync poisons the writer (sticky error, un-durable
			// tail truncated); the next Append surfaces it to the caller.
			_ = w.Sync()
		}
	}
}

// SetMetrics swaps the writer's instruments (nil allowed).
func (w *Writer) SetMetrics(m *Metrics) { w.metrics.Store(m) }

// setReplayed records how many records the freshly opened file already
// held when recovery replayed it; they are durable by definition.
func (w *Writer) setReplayed(records int64) {
	w.records.Store(records)
	w.durableRecords.Store(records)
}

// DurableFrontier returns the durable record count and byte size: the
// prefix of the file safe to stream to a follower.
func (w *Writer) DurableFrontier() (records, bytes int64) {
	return w.durableRecords.Load(), w.durableBytes.Load()
}

// OnAdvance registers fn to run whenever the durable frontier advances.
// fn must be non-blocking; it may fire from any appender or the flush
// loop.
func (w *Writer) OnAdvance(fn func()) { w.onAdvance.Store(&fn) }

// advanceDurable raises the published frontier to at least
// (records, bytes) — monotonic, safe from any goroutine — and fires the
// advance hook when it moved.
func (w *Writer) advanceDurable(records, bytes int64) {
	advanced := false
	for {
		cur := w.durableRecords.Load()
		if cur >= records {
			break
		}
		if w.durableRecords.CompareAndSwap(cur, records) {
			advanced = true
			break
		}
	}
	for {
		cur := w.durableBytes.Load()
		if cur >= bytes {
			break
		}
		if w.durableBytes.CompareAndSwap(cur, bytes) {
			advanced = true
			break
		}
	}
	if advanced {
		if fn := w.onAdvance.Load(); fn != nil {
			(*fn)()
		}
	}
}

// Size returns the current file size in bytes.
func (w *Writer) Size() int64 { return w.size.Load() }

// Records returns how many records this writer has appended.
func (w *Writer) Records() int64 { return w.records.Load() }

// Append frames payload, writes it, and — under FsyncAlways — blocks until
// it is durable. On success it returns the record count after this append
// (the record's 1-based index within the generation), which the store's
// commit gate uses as the position a replication quorum must ack. The
// error, if any, means the record did not and will not become durable: a
// write error leaves nothing behind, and an fsync error poisons the
// writer, truncating the un-durable tail (see Writer). The file is never
// left in a state recovery cannot parse (at worst a torn tail, which
// recovery truncates).
func (w *Writer) Append(payload []byte) (int64, error) {
	if err := faultinject.Fire(faultinject.SiteWALAppend); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	frame, err := appendFrame(make([]byte, 0, frameHeaderSize+len(payload)), payload)
	if err != nil {
		return 0, fmt.Errorf("wal: append to %s: %w", w.path, err)
	}

	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: append to closed writer %s", w.path)
	}
	// The poison check must happen under mu: poisoning truncates the file
	// under mu after setting the error, so any appender that gets past this
	// check either wrote before the truncation (its frame is cut, its
	// syncTo fails) or sees the error here and never writes.
	if ep := w.failed.Load(); ep != nil {
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: writer %s poisoned by earlier fsync failure: %w", w.path, *ep)
	}
	if _, err := w.f.Write(frame); err != nil {
		// A short write may have left a partial frame behind. Cut it off so
		// a later successful append cannot land after garbage (which would
		// turn a transient write error into mid-log corruption); if even
		// the truncate fails, poison the writer so nothing further is
		// written after the damaged tail.
		pre := w.size.Load()
		if terr := w.f.Truncate(pre); terr != nil {
			perr := fmt.Errorf("wal: append to %s failed (%v) and truncating the partial frame failed: %w", w.path, err, terr)
			w.failed.CompareAndSwap(nil, &perr)
		}
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: append to %s: %w", w.path, err)
	}
	newSize := w.size.Add(int64(len(frame)))
	newRecords := w.records.Add(1)
	seq := w.writeSeq.Add(1)
	w.mu.Unlock()

	m := w.metrics.Load()
	if m != nil {
		m.AppendedBytes.Add(uint64(len(frame)))
		m.AppendedRecords.Inc()
	}
	if w.policy == FsyncAlways {
		return newRecords, w.syncTo(seq)
	}
	if w.policy == FsyncNever {
		// Never delegates durability to the OS, so the record is as
		// committed as it will ever be: publish it to replication now.
		// The frame is fully in the file (written under mu before the
		// counters we captured), so a streamer that sees this frontier can
		// read it back.
		w.advanceDurable(newRecords, newSize)
	}
	return newRecords, nil
}

// syncTo makes every frame up to seq durable, sharing fsyncs between
// concurrent callers: whoever wins the gate fsyncs on behalf of everyone
// whose frame was already written.
func (w *Writer) syncTo(seq int64) error {
	if w.syncedSeq.Load() >= seq {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.syncedSeq.Load() >= seq {
		return nil // a concurrent group commit covered us
	}
	return w.syncLocked()
}

// syncLocked fsyncs; callers hold syncMu. A failed fsync (injected or
// real) poisons the writer via poisonLocked, so the un-durable tail can
// never become durable behind the caller's back.
func (w *Writer) syncLocked() error {
	if ep := w.failed.Load(); ep != nil {
		return fmt.Errorf("wal: writer %s poisoned by earlier fsync failure: %w", w.path, *ep)
	}
	// Snapshot the write frontier before fsync: everything written before
	// the call is durable afterwards; frames that race in during the fsync
	// are not, and stay below the recorded frontier.
	w.mu.Lock()
	cur := w.writeSeq.Load()
	curSize := w.size.Load()
	curRecords := w.records.Load()
	f := w.f
	w.mu.Unlock()
	if f == nil {
		return nil
	}
	if err := faultinject.Fire(faultinject.SiteWALFsync); err != nil {
		return w.poisonLocked(fmt.Errorf("wal: fsync %s: %w", w.path, err))
	}
	start := time.Now()
	err := f.Sync()
	if m := w.metrics.Load(); m != nil {
		m.Fsyncs.Inc()
		m.FsyncSeconds.ObserveNanos(time.Since(start).Nanoseconds())
	}
	if err != nil {
		return w.poisonLocked(fmt.Errorf("wal: fsync %s: %w", w.path, err))
	}
	if w.syncedSeq.Load() < cur {
		w.syncedSeq.Store(cur)
		w.syncedSize = curSize
		w.syncedRecords = curRecords
	}
	w.advanceDurable(curRecords, curSize)
	return nil
}

// poisonLocked marks the writer permanently failed and truncates the file
// back to the durable frontier (the size at the last successful fsync), so
// no frame appended since can become durable through a later group commit
// or OS writeback. Frames in the cut tail belong either to FsyncAlways
// appenders — which are still blocked in syncTo, will observe the sticky
// error, and roll back — or to interval/never appenders, whose policy
// already tolerates losing a clean log suffix. Callers hold syncMu; the
// writer refuses every further append and sync until reopened (a failed
// fsync means the device may have dropped dirty pages, so retrying cannot
// be trusted — checkpointing into a fresh generation is the recovery
// path).
func (w *Writer) poisonLocked(cause error) error {
	if w.failed.CompareAndSwap(nil, &cause) {
		w.mu.Lock()
		if w.f != nil {
			if terr := w.f.Truncate(w.syncedSize); terr == nil {
				w.size.Store(w.syncedSize)
				w.records.Store(w.syncedRecords)
			}
			// If the truncate itself fails the tail may survive on disk;
			// the sticky error still stops every future append, and the
			// caller's rollback path surfaces the failure, but recovery
			// after a crash may then replay rolled-back records — nothing
			// more can be done against a device that refuses both fsync
			// and truncate.
		}
		w.mu.Unlock()
	}
	return cause
}

// Sync forces everything appended so far to stable storage.
func (w *Writer) Sync() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.syncLocked()
}

// Close flushes, stops the background flusher, and closes the file.
func (w *Writer) Close() error {
	if w.stop != nil {
		close(w.stop)
		<-w.done
		w.stop = nil
	}
	syncErr := w.Sync()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return syncErr
	}
	closeErr := w.f.Close()
	w.f = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// ReplayInfo summarizes one log replay.
type ReplayInfo struct {
	// Records is how many complete records were replayed.
	Records int
	// TornBytes is how many trailing bytes were cut (0 when the log ended
	// cleanly).
	TornBytes int64
	// TornDetail says what was missing from the torn frame.
	TornDetail string
}

// ReplayFile reads every record of the WAL at path, calling fn in order. A
// torn tail (partial final frame) is truncated off the file and reported in
// the returned info; corruption anywhere earlier — or a record that fails
// to decode or apply — aborts with a *CorruptionError naming file, offset,
// and record index. Missing files replay zero records (a crash can land
// between snapshot write and first append).
func ReplayFile(path string, fn func(Record) error) (ReplayInfo, error) {
	var info ReplayInfo
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return info, nil
		}
		return info, err
	}
	torn, err := scanFrames(path, raw, func(i int, off int64, payload []byte) error {
		rec, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return fmt.Errorf("apply %s: %w", rec.Op, err)
			}
		}
		info.Records++
		return nil
	})
	if err != nil {
		return info, err
	}
	if torn != nil {
		info.TornBytes = int64(len(raw)) - torn.Offset
		info.TornDetail = torn.Detail
		if err := os.Truncate(path, torn.Offset); err != nil {
			return info, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	return info, nil
}

// ReplayBytes is ReplayFile over in-memory bytes (no truncation side
// effect); the fuzz targets drive the decoder through it.
func ReplayBytes(raw []byte, fn func(Record) error) (ReplayInfo, error) {
	var info ReplayInfo
	torn, err := scanFrames("", raw, func(i int, off int64, payload []byte) error {
		rec, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return err
			}
		}
		info.Records++
		return nil
	})
	if err != nil {
		return info, err
	}
	if torn != nil {
		info.TornBytes = int64(len(raw)) - torn.Offset
		info.TornDetail = torn.Detail
	}
	return info, nil
}

package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"precis/internal/faultinject"
	"precis/internal/obs"
	"precis/internal/storage"
)

// mustFrame frames a payload known to be under the frame limit (every
// test input is); it panics instead of returning the impossible error.
func mustFrame(dst, payload []byte) []byte {
	out, err := appendFrame(dst, payload)
	if err != nil {
		panic(err)
	}
	return out
}

// mustEncode encodes a snapshot known to fit in its frames (every test
// state does); it panics instead of returning the impossible error.
func mustEncode(data *SnapshotData) []byte {
	raw, err := EncodeSnapshot(data)
	if err != nil {
		panic(err)
	}
	return raw
}

// testDB builds a small two-relation database with a foreign key and a few
// tuples, exercising every value kind the codec handles.
func testDB(t *testing.T) *storage.Database {
	t.Helper()
	db := storage.NewDatabase("testdb")
	author := storage.MustSchema("AUTHOR", "aid",
		storage.Column{Name: "aid", Type: storage.TypeInt},
		storage.Column{Name: "name", Type: storage.TypeString},
		storage.Column{Name: "rating", Type: storage.TypeFloat},
		storage.Column{Name: "active", Type: storage.TypeBool})
	book := storage.MustSchema("BOOK", "bid",
		storage.Column{Name: "bid", Type: storage.TypeInt},
		storage.Column{Name: "title", Type: storage.TypeString},
		storage.Column{Name: "aid", Type: storage.TypeInt})
	for _, s := range []*storage.Schema{author, book} {
		if _, err := db.CreateRelation(s); err != nil {
			t.Fatalf("CreateRelation: %v", err)
		}
	}
	if err := db.AddForeignKey(storage.ForeignKey{
		FromRelation: "BOOK", FromColumn: "aid", ToRelation: "AUTHOR", ToColumn: "aid",
	}); err != nil {
		t.Fatalf("AddForeignKey: %v", err)
	}
	mustInsert := func(rel string, vals ...storage.Value) storage.TupleID {
		id, err := db.Insert(rel, vals...)
		if err != nil {
			t.Fatalf("Insert %s: %v", rel, err)
		}
		return id
	}
	a1 := mustInsert("AUTHOR", storage.Int(1), storage.String("Ursula K. Le Guin"), storage.Float(4.9), storage.Bool(true))
	a2 := mustInsert("AUTHOR", storage.Int(2), storage.String("Italo Calvino"), storage.Float(4.8), storage.Bool(false))
	mustInsert("BOOK", storage.Int(10), storage.String("The Dispossessed"), storage.Int(int64(a1)))
	mustInsert("BOOK", storage.Int(11), storage.String("Invisible Cities"), storage.Int(int64(a2)))
	mustInsert("BOOK", storage.Int(12), storage.Null, storage.Null)
	return db
}

// dumpState renders recovered state deterministically for equality checks.
func dumpState(s *SnapshotData) string {
	var sb strings.Builder
	db := s.DB
	fmt.Fprintf(&sb, "db=%s next=%d\n", db.Name(), db.NextTupleID())
	for _, name := range db.RelationNames() {
		rel := db.Relation(name)
		sc := rel.Schema()
		fmt.Fprintf(&sb, "rel %s key=%s cols=", name, sc.Key)
		for _, c := range sc.Columns {
			fmt.Fprintf(&sb, "%s:%s,", c.Name, c.Type)
		}
		sb.WriteByte('\n')
		rel.Scan(func(t storage.Tuple) bool {
			fmt.Fprintf(&sb, "  #%d %v\n", t.ID, t.Values)
			return true
		})
	}
	for _, fk := range db.ForeignKeys() {
		fmt.Fprintf(&sb, "fk %s.%s->%s.%s\n", fk.FromRelation, fk.FromColumn, fk.ToRelation, fk.ToColumn)
	}
	// Snapshots store synonyms sorted by alias; normalize for comparison.
	syn := append([][2]string(nil), s.Synonyms...)
	sort.Slice(syn, func(i, j int) bool { return syn[i][0] < syn[j][0] })
	for _, p := range syn {
		fmt.Fprintf(&sb, "syn %q=%q\n", p[0], p[1])
	}
	for _, m := range s.Macros {
		fmt.Fprintf(&sb, "macro %q\n", m)
	}
	return sb.String()
}

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func TestSnapshotRoundTrip(t *testing.T) {
	data := &SnapshotData{
		DB:       testDB(t),
		Synonyms: [][2]string{{"leguin", "Ursula K. Le Guin"}, {"calvino", "Italo Calvino"}},
		Macros:   []string{"DEFINE FAVS AS The Dispossessed"},
	}
	raw := mustEncode(data)
	if !bytes.Equal(raw, mustEncode(data)) {
		t.Fatal("EncodeSnapshot is not deterministic")
	}
	got, err := DecodeSnapshot("rt", raw)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if d1, d2 := dumpState(data), dumpState(got); d1 != d2 {
		t.Fatalf("round trip mismatch:\nwant:\n%s\ngot:\n%s", d1, d2)
	}
	// A decoded database keeps allocating fresh IDs above the watermark.
	id, err := got.DB.Insert("AUTHOR", storage.Int(3), storage.String("x"), storage.Float(1), storage.Bool(true))
	if err != nil {
		t.Fatalf("Insert after decode: %v", err)
	}
	if want := data.DB.NextTupleID(); id != want {
		t.Fatalf("next ID after decode = %d, want %d", id, want)
	}
}

// TestSnapshotBitFlips flips every bit of an encoded snapshot, one at a
// time, and requires the decoder to report an error for each: CRC32C
// detects all single-bit errors, so no flip may be silently accepted.
func TestSnapshotBitFlips(t *testing.T) {
	data := &SnapshotData{DB: testDB(t), Synonyms: [][2]string{{"a", "b"}}, Macros: []string{"DEFINE M AS x"}}
	raw := mustEncode(data)
	for i := range raw {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), raw...)
			mut[i] ^= 1 << bit
			if _, err := DecodeSnapshot("flip", mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d silently accepted", i, bit)
			}
		}
	}
}

// TestSnapshotTruncationIsIncomplete cuts the snapshot at every frame
// boundary-ish prefix and requires "incomplete", never "corrupt": an
// interrupted write must stay distinguishable from a flipped bit.
func TestSnapshotTruncationIsIncomplete(t *testing.T) {
	data := &SnapshotData{DB: testDB(t)}
	raw := mustEncode(data)
	for cut := 0; cut < len(raw); cut++ {
		_, err := DecodeSnapshot("cut", raw[:cut])
		if err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
		var ce *CorruptionError
		if errors.As(err, &ce) {
			t.Fatalf("truncation at %d misclassified as corruption: %v", cut, err)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Op: OpInsert, Rel: "BOOK", ID: 7, Values: []storage.Value{storage.Int(7), storage.String("t"), storage.Null}},
		{Op: OpUpdate, Rel: "BOOK", ID: 7, Values: []storage.Value{storage.Float(1.5), storage.Bool(true)}},
		{Op: OpDelete, Rel: "BOOK", ID: 7},
		{Op: OpSynonym, Alias: "w allen", Canonical: "Woody Allen"},
		{Op: OpMacro, Def: "DEFINE X AS y"},
		{Op: OpAddFK, FK: storage.ForeignKey{FromRelation: "a", FromColumn: "b", ToRelation: "c", ToColumn: "d"}},
	}
	for _, r := range recs {
		payload := r.encode(nil)
		got, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("decodeRecord(%s): %v", r.Op, err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", r) {
			t.Fatalf("record %s round trip: got %+v want %+v", r.Op, got, r)
		}
		// Trailing garbage must be rejected.
		if _, err := decodeRecord(append(payload, 0)); err == nil {
			t.Fatalf("record %s accepted trailing bytes", r.Op)
		}
	}
	if _, err := decodeRecord([]byte{99}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := decodeRecord(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
}

// walRecords builds a framed WAL byte stream of n insert records and
// returns it plus the frame end offsets.
func walRecords(n int) (raw []byte, ends []int64) {
	for i := 0; i < n; i++ {
		r := Record{Op: OpInsert, Rel: "AUTHOR", ID: storage.TupleID(100 + i),
			Values: []storage.Value{storage.Int(int64(i)), storage.String(fmt.Sprintf("name-%d", i)), storage.Float(0.5), storage.Bool(i%2 == 0)}}
		raw = mustFrame(raw, r.encode(nil))
		ends = append(ends, int64(len(raw)))
	}
	return raw, ends
}

// TestReplayTornTailEveryOffset truncates a 5-record log at every byte
// offset: replay must yield exactly the records whose frames survived
// whole, truncate the torn remainder from the file, and never error.
func TestReplayTornTailEveryOffset(t *testing.T) {
	raw, ends := walRecords(5)
	dir := t.TempDir()
	for cut := 0; cut <= len(raw); cut++ {
		complete := 0
		for _, e := range ends {
			if e <= int64(cut) {
				complete++
			}
		}
		path := filepath.Join(dir, fmt.Sprintf("wal-%d.log", cut))
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got int
		info, err := ReplayFile(path, func(r Record) error { got++; return nil })
		if err != nil {
			t.Fatalf("cut %d: replay failed: %v", cut, err)
		}
		if got != complete || info.Records != complete {
			t.Fatalf("cut %d: replayed %d records (info %d), want %d", cut, got, info.Records, complete)
		}
		if complete < len(ends) && int64(cut) > endOf(ends, complete) {
			if info.TornBytes != int64(cut)-endOf(ends, complete) {
				t.Fatalf("cut %d: torn bytes %d, want %d", cut, info.TornBytes, int64(cut)-endOf(ends, complete))
			}
			st, _ := os.Stat(path)
			if st.Size() != endOf(ends, complete) {
				t.Fatalf("cut %d: file not truncated to %d (size %d)", cut, endOf(ends, complete), st.Size())
			}
		} else if info.TornBytes != 0 {
			t.Fatalf("cut %d: unexpected torn bytes %d", cut, info.TornBytes)
		}
	}
}

// endOf returns the end offset of the first `complete` frames.
func endOf(ends []int64, complete int) int64 {
	if complete == 0 {
		return 0
	}
	return ends[complete-1]
}

// TestReplayMidLogCorruption flips one bit in every byte of every record
// but the last: with complete data following, that is corruption, and the
// error must carry file, offset, and record index.
func TestReplayMidLogCorruption(t *testing.T) {
	raw, ends := walRecords(3)
	limit := ends[1] // corrupt only the first two records — the third follows them
	for off := int64(0); off < limit; off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		_, err := ReplayBytes(mut, nil)
		var ce *CorruptionError
		if !errors.As(err, &ce) {
			t.Fatalf("flip at %d: want CorruptionError, got %v", off, err)
		}
		wantRec := 0
		if off >= ends[0] {
			wantRec = 1
		}
		if ce.Record != wantRec {
			t.Fatalf("flip at %d: blamed record %d, want %d", off, ce.Record, wantRec)
		}
		wantOff := endOf(ends, wantRec)
		if ce.Offset != wantOff {
			t.Fatalf("flip at %d: blamed offset %d, want %d", off, ce.Offset, wantOff)
		}
	}
}

// TestReplayFinalRecordBitFlip distinguishes the two final-record cases:
// a flipped bit in the final frame's length field is corruption (the
// header survived whole, so a torn write cannot explain it); a flipped bit
// in the final payload is also corruption since the payload is full
// length.
func TestReplayFinalRecordBitFlip(t *testing.T) {
	raw, ends := walRecords(2)
	start := ends[0]
	for off := start; off < int64(len(raw)); off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x01
		_, err := ReplayBytes(mut, nil)
		var ce *CorruptionError
		if !errors.As(err, &ce) {
			t.Fatalf("final-record flip at %d: want CorruptionError, got %v", off, err)
		}
		if ce.Record != 1 || ce.Offset != start {
			t.Fatalf("final-record flip at %d: blamed record %d offset %d", off, ce.Record, ce.Offset)
		}
	}
}

func storeConfig() Config { return Config{Fsync: FsyncNever, Logger: quietLogger()} }

func TestStoreInitializeAppendRecover(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, storeConfig())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rec.Data != nil {
		t.Fatal("fresh dir recovered data")
	}
	db := testDB(t)
	if err := s.Initialize(&SnapshotData{DB: db}); err != nil {
		t.Fatalf("Initialize: %v", err)
	}
	if err := s.Append(Record{Op: OpInsert, Rel: "AUTHOR", ID: db.NextTupleID(),
		Values: []storage.Value{storage.Int(9), storage.String("Borges"), storage.Float(5), storage.Bool(true)}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Append(Record{Op: OpSynonym, Alias: "jlb", Canonical: "Borges"}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec2, err := Open(dir, storeConfig())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if rec2.Data == nil || rec2.WALRecords != 2 || rec2.Gen != 1 {
		t.Fatalf("recovery = %+v, want gen 1 with 2 records", rec2)
	}
	if got := rec2.Data.DB.Relation("AUTHOR").Len(); got != 3 {
		t.Fatalf("AUTHOR has %d tuples after recovery, want 3", got)
	}
	if len(rec2.Data.Synonyms) != 1 || rec2.Data.Synonyms[0] != [2]string{"jlb", "Borges"} {
		t.Fatalf("synonyms = %v", rec2.Data.Synonyms)
	}
}

func TestStoreCheckpointRotatesAndGCs(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, storeConfig())
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t)
	if err := s.Initialize(&SnapshotData{DB: db}); err != nil {
		t.Fatal(err)
	}
	id, err := db.Insert("AUTHOR", storage.Int(9), storage.String("Borges"), storage.Float(5), storage.Bool(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Op: OpInsert, Rel: "AUTHOR", ID: id,
		Values: []storage.Value{storage.Int(9), storage.String("Borges"), storage.Float(5), storage.Bool(true)}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(&SnapshotData{DB: db}); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if g := s.Generation(); g != 2 {
		t.Fatalf("generation = %d, want 2", g)
	}
	for _, old := range []string{snapshotName(1), walName(1)} {
		if exists(filepath.Join(dir, old)) {
			t.Fatalf("generation-1 file %s survived GC", old)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, storeConfig())
	if err != nil {
		t.Fatalf("reopen after checkpoint: %v", err)
	}
	if rec.Gen != 2 || rec.WALRecords != 0 {
		t.Fatalf("recovered %+v, want gen 2, 0 WAL records", rec)
	}
	if got := rec.Data.DB.Relation("AUTHOR").Len(); got != 3 {
		t.Fatalf("AUTHOR has %d tuples, want 3", got)
	}
}

func TestStoreRefusesWALWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName(1)), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, storeConfig()); err == nil {
		t.Fatal("Open accepted a WAL with no snapshot")
	}
}

// TestStoreIncompleteSnapshotFallback simulates a crash between snapshot
// rename and WAL creation on a filesystem that made the incomplete rename
// visible: the newest snapshot lacks its trailer and has no WAL, so Open
// falls back to the previous generation.
func TestStoreIncompleteSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, storeConfig())
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t)
	if err := s.Initialize(&SnapshotData{DB: db}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Write a truncated generation-2 snapshot without a WAL.
	raw := mustEncode(&SnapshotData{DB: db})
	if err := os.WriteFile(filepath.Join(dir, snapshotName(2)), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, storeConfig())
	if err != nil {
		t.Fatalf("Open did not fall back: %v", err)
	}
	if rec.Gen != 1 {
		t.Fatalf("recovered generation %d, want fallback to 1", rec.Gen)
	}
	if exists(filepath.Join(dir, snapshotName(2))) {
		t.Fatal("incomplete snapshot not removed")
	}

	// The same truncated snapshot WITH a WAL present is a hard failure:
	// falling back would lose that WAL's committed records.
	if err := os.WriteFile(filepath.Join(dir, snapshotName(3)), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName(3)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, storeConfig()); err == nil {
		t.Fatal("Open silently discarded an incomplete snapshot that owned a WAL")
	}
}

// TestStoreCorruptSnapshotHardFails flips a bit mid-snapshot: recovery must
// refuse to fall back (silent fallback would resurrect deleted data).
func TestStoreCorruptSnapshotHardFails(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, storeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Initialize(&SnapshotData{DB: testDB(t)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, storeConfig())
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want CorruptionError", err)
	}
	if ce.File != path {
		t.Fatalf("corruption blamed %q, want %q", ce.File, path)
	}
}

// TestGroupCommit runs concurrent FsyncAlways appends and checks that the
// writer shared fsyncs between them (far fewer fsyncs than appends) while
// every append still returned durable. A small injected fsync latency
// makes the overlap deterministic: on a fast filesystem real fsyncs can
// finish before the next appender arrives, leaving batching to scheduler
// luck and the assertion flaky.
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, err := openWriter(filepath.Join(dir, walName(1)), FsyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	deactivate := faultinject.Activate(faultinject.NewPlan().
		Set(faultinject.SiteWALFsync, faultinject.Rule{Delay: 2 * time.Millisecond}))
	defer deactivate()
	reg := obs.NewRegistry()
	m := &Metrics{
		AppendedBytes:   reg.Counter("b"),
		AppendedRecords: reg.Counter("r"),
		Fsyncs:          reg.Counter("f"),
		FsyncSeconds:    reg.Histogram("fs"),
	}
	w.SetMetrics(m)
	const goroutines, perG = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r := Record{Op: OpMacro, Def: fmt.Sprintf("DEFINE M%d_%d AS x", g, i)}
				if _, err := w.Append(r.encode(nil)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	appends := m.AppendedRecords.Load()
	fsyncs := m.Fsyncs.Load()
	if appends != goroutines*perG {
		t.Fatalf("appended %d records, want %d", appends, goroutines*perG)
	}
	// Close adds one final fsync; group commit should still have batched.
	if fsyncs >= appends {
		t.Fatalf("no group commit: %d fsyncs for %d appends", fsyncs, appends)
	}
	t.Logf("group commit: %d appends, %d fsyncs", appends, fsyncs)
	// Every record must replay.
	info, err := ReplayFile(filepath.Join(dir, walName(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != goroutines*perG {
		t.Fatalf("replayed %d records, want %d", info.Records, goroutines*perG)
	}
}

// TestFsyncPolicies exercises each policy end to end.
func TestFsyncPolicies(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			s, _, err := Open(dir, Config{Fsync: p, Logger: quietLogger()})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Initialize(&SnapshotData{DB: testDB(t)}); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := s.Append(Record{Op: OpMacro, Def: fmt.Sprintf("DEFINE P%d AS x", i)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			_, rec, err := Open(dir, Config{Fsync: p, Logger: quietLogger()})
			if err != nil {
				t.Fatal(err)
			}
			if rec.WALRecords != 10 {
				t.Fatalf("recovered %d records, want 10", rec.WALRecords)
			}
			if len(rec.Data.Macros) != 10 {
				t.Fatalf("recovered %d macros, want 10", len(rec.Data.Macros))
			}
		})
	}
}

// TestFsyncFailurePoisonsWriter proves the no-phantom-record guarantee:
// when an fsync fails after the frame bytes were already written, the
// writer must truncate the un-durable tail off the file and refuse every
// further append. Without that, the rolled-back record's bytes would still
// sit in the log, a later group commit (or plain OS writeback) would make
// them durable, and crash recovery would replay a mutation the engine
// reported failed.
func TestFsyncFailurePoisonsWriter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, walName(1))
	w, err := openWriter(path, FsyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Record{Op: OpMacro, Def: "DEFINE A AS x"}.encode(nil)); err != nil {
		t.Fatal(err)
	}
	durable := w.Size()

	errBoom := errors.New("injected fsync failure")
	deactivate := faultinject.Activate(faultinject.NewPlan().
		Set(faultinject.SiteWALFsync, faultinject.Rule{Err: errBoom}))
	if _, err := w.Append(Record{Op: OpMacro, Def: "DEFINE B AS y"}.encode(nil)); !errors.Is(err, errBoom) {
		t.Fatalf("Append under fsync failure = %v, want injected error", err)
	}
	deactivate()

	// The failed frame's bytes must be gone: the file holds exactly the
	// durable prefix, so nothing a caller rolled back can ever replay.
	if got := w.Size(); got != durable {
		t.Fatalf("size after poisoned append = %d, want %d (un-durable tail not truncated)", got, durable)
	}
	var defs []string
	info, err := ReplayFile(path, func(r Record) error {
		defs = append(defs, r.Def)
		return nil
	})
	if err != nil {
		t.Fatalf("replay after poisoning: %v", err)
	}
	if info.Records != 1 || len(defs) != 1 || defs[0] != "DEFINE A AS x" {
		t.Fatalf("replayed %d records %v, want only the durable one", info.Records, defs)
	}

	// The poison is sticky: with the fault gone, appends and syncs still
	// refuse — a device that failed one fsync cannot be trusted with the
	// next, and the store heals by checkpointing into a fresh generation.
	if _, err := w.Append(Record{Op: OpMacro, Def: "DEFINE C AS z"}.encode(nil)); err == nil {
		t.Fatal("append to poisoned writer succeeded")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync on poisoned writer succeeded")
	}
	_ = w.Close() // surfaces the sticky error; the file itself is closed
}

// TestStoreCheckpointHealsPoisonedWriter: after an fsync failure poisons
// the active WAL, a checkpoint writes a fresh snapshot of the (consistent,
// rolled-back) in-memory state and rotates to a new generation with a
// healthy writer — the documented recovery path without a restart.
func TestStoreCheckpointHealsPoisonedWriter(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, storeConfig())
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t)
	if err := s.Initialize(&SnapshotData{DB: db}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Op: OpMacro, Def: "DEFINE A AS x"}); err != nil {
		t.Fatal(err)
	}
	errBoom := errors.New("injected fsync failure")
	deactivate := faultinject.Activate(faultinject.NewPlan().
		Set(faultinject.SiteWALFsync, faultinject.Rule{Err: errBoom}))
	if err := s.Sync(); !errors.Is(err, errBoom) {
		t.Fatalf("Sync under fsync failure = %v, want injected error", err)
	}
	deactivate()
	if err := s.Append(Record{Op: OpMacro, Def: "DEFINE B AS y"}); err == nil {
		t.Fatal("append to poisoned store succeeded")
	}
	if err := s.Checkpoint(&SnapshotData{DB: db, Macros: []string{"DEFINE A AS x"}}); err != nil {
		t.Fatalf("healing checkpoint: %v", err)
	}
	if err := s.Append(Record{Op: OpMacro, Def: "DEFINE C AS z"}); err != nil {
		t.Fatalf("append after healing checkpoint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := Open(dir, storeConfig())
	if err != nil {
		t.Fatalf("reopen after heal: %v", err)
	}
	if len(rec.Data.Macros) != 2 {
		t.Fatalf("recovered macros %v, want the checkpointed A and the post-heal C", rec.Data.Macros)
	}
	// Recovery dates LastCkpt from the loaded snapshot, so time-triggered
	// checkpointing does not fire spuriously on every boot and stats stay
	// truthful after a restart.
	if s2.Stats().LastCkpt.IsZero() {
		t.Fatal("LastCkpt is zero after recovery")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted garbage")
	}
}

// TestDecoderAdversarialCounts feeds frames whose declared element counts
// vastly exceed the input and checks the decoder allocates nothing absurd
// (it must error out instead).
func TestDecoderAdversarialCounts(t *testing.T) {
	// An insert record claiming 2^40 values in 3 bytes of payload.
	var e enc
	e.u8(uint8(OpInsert))
	e.str("R")
	e.uvarint(1)
	e.uvarint(1 << 40)
	if _, err := decodeRecord(e.bytes()); err == nil {
		t.Fatal("absurd value count accepted")
	}
	// A snapshot header claiming 2^40 relations.
	var h enc
	h.uvarint(snapVersion)
	h.str("db")
	h.uvarint(1)
	h.uvarint(1 << 40)
	raw := mustFrame([]byte(snapMagic), h.bytes())
	if _, err := DecodeSnapshot("", raw); err == nil {
		t.Fatal("absurd relation count accepted")
	}
	// A string claiming to be longer than the payload.
	var se enc
	se.u8(uint8(OpMacro))
	se.uvarint(1 << 30)
	if _, err := decodeRecord(se.bytes()); err == nil {
		t.Fatal("absurd string length accepted")
	}
}

package wal

import (
	"testing"

	"precis/internal/storage"
)

// fuzzSeedSnapshot builds a representative snapshot byte stream for the
// fuzz corpora (relations, tuples of every value kind, FKs, extras).
func fuzzSeedSnapshot() []byte {
	db := storage.NewDatabase("fuzzdb")
	db.MustCreateRelation(storage.MustSchema("R", "id",
		storage.Column{Name: "id", Type: storage.TypeInt},
		storage.Column{Name: "s", Type: storage.TypeString},
		storage.Column{Name: "f", Type: storage.TypeFloat},
		storage.Column{Name: "b", Type: storage.TypeBool}))
	db.MustCreateRelation(storage.MustSchema("S", "",
		storage.Column{Name: "rid", Type: storage.TypeInt},
		storage.Column{Name: "note", Type: storage.TypeString}))
	_, _ = db.Insert("R", storage.Int(1), storage.String("héllo wörld"), storage.Float(3.14), storage.Bool(true))
	_, _ = db.Insert("R", storage.Int(2), storage.Null, storage.Null, storage.Bool(false))
	_, _ = db.Insert("S", storage.Int(1), storage.String(""))
	_ = db.AddForeignKey(storage.ForeignKey{FromRelation: "S", FromColumn: "rid", ToRelation: "R", ToColumn: "id"})
	return mustEncode(&SnapshotData{
		DB:       db,
		Synonyms: [][2]string{{"alias", "canonical term"}},
		Macros:   []string{`DEFINE M as "x."`},
	})
}

// fuzzSeedWAL builds a representative WAL byte stream: one frame per op
// kind, then a torn final frame.
func fuzzSeedWAL() []byte {
	var raw []byte
	recs := []Record{
		{Op: OpInsert, Rel: "R", ID: 1, Values: []storage.Value{storage.Int(1), storage.String("a"), storage.Float(0.5), storage.Bool(true), storage.Null}},
		{Op: OpUpdate, Rel: "R", ID: 1, Values: []storage.Value{storage.Int(2)}},
		{Op: OpDelete, Rel: "R", ID: 1},
		{Op: OpSynonym, Alias: "w allen", Canonical: "Woody Allen"},
		{Op: OpMacro, Def: `DEFINE M as "x."`},
		{Op: OpAddFK, FK: storage.ForeignKey{FromRelation: "a", FromColumn: "b", ToRelation: "c", ToColumn: "d"}},
	}
	for _, r := range recs {
		raw = mustFrame(raw, r.encode(nil))
	}
	return append(raw, 0x42, 0x42, 0x42) // torn tail
}

// FuzzSnapshotDecode feeds adversarial bytes to the snapshot decoder: it
// must never panic and never allocate beyond what the input justifies —
// every length and count field is validated against the remaining bytes
// before any allocation. Valid inputs must re-encode to an equivalent
// snapshot.
func FuzzSnapshotDecode(f *testing.F) {
	seed := fuzzSeedSnapshot()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])                                                       // truncation
	f.Add([]byte(snapMagic))                                                        // magic only
	f.Add([]byte("PRCSNAP2junk"))                                                   // wrong magic version
	f.Add(mustFrame([]byte(snapMagic), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x01})) // absurd uvarint header
	mut := append([]byte(nil), seed...)
	mut[len(mut)/3] ^= 0x40
	f.Add(mut) // flipped bit
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1<<16 {
			return
		}
		data, err := DecodeSnapshot("", raw)
		if err != nil {
			return
		}
		// A successfully decoded snapshot must survive a round trip. The
		// input cap keeps decoded states far under the frame limit, so the
		// re-encode can never hit it.
		re, err := EncodeSnapshot(data)
		if err != nil {
			t.Fatalf("re-encoding a decoded snapshot failed: %v", err)
		}
		if _, err := DecodeSnapshot("", re); err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
	})
}

// FuzzWALReplay feeds adversarial bytes to the WAL replayer: it must never
// panic, must classify every input as clean / torn / corrupt, and replayed
// records must round-trip through the record codec.
func FuzzWALReplay(f *testing.F) {
	seed := fuzzSeedWAL()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03}) // partial header
	mut := append([]byte(nil), seed...)
	mut[2] ^= 0x01
	f.Add(mut) // corrupt length field
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1<<16 {
			return
		}
		info, err := ReplayBytes(raw, func(r Record) error {
			// Anything the replayer hands out must re-encode and re-decode
			// identically: it came off a checksummed frame.
			if _, err := decodeRecord(r.encode(nil)); err != nil {
				t.Fatalf("replayed record does not round-trip: %v", err)
			}
			return nil
		})
		if err != nil {
			return
		}
		if info.TornBytes < 0 || info.TornBytes > int64(len(raw)) {
			t.Fatalf("torn bytes %d out of range for %d-byte input", info.TornBytes, len(raw))
		}
	})
}

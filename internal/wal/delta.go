package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"precis/internal/faultinject"
	"precis/internal/storage"
)

// Delta snapshot file format ("PRCDLT1"): an incremental checkpoint that
// records only what changed since its base — dirty tuples (inserted or
// updated), tombstones (deleted ids), and the engine extras (synonyms,
// macros, foreign keys), which are carried wholesale every time because
// they are tiny and carrying them removes any need to dirty-track them.
// The layout mirrors the full snapshot: magic, header frame, one frame per
// changed relation, a foreign-key frame, an extras frame, and a trailer
// authenticating the total change count. Torn and corrupt deltas get the
// exact same incomplete-vs-CorruptionError classification as snapshots.
const (
	deltaMagic   = "PRCDLT1"
	deltaVersion = 1
	deltaTrailer = "precis-delta-end"
)

// DeltaData is one delta checkpoint's content: the generation it applies
// on top of, the post-checkpoint id watermark, the per-relation changes,
// and the full engine extras at checkpoint time.
type DeltaData struct {
	// BaseGen is the chain element this delta extends: the full snapshot's
	// generation, or the previous delta's generation.
	BaseGen     uint64
	NextTupleID storage.TupleID
	Relations   []storage.DirtyRelation
	Synonyms    [][2]string
	Macros      []string
	FKs         []storage.ForeignKey
}

// Changes returns the total number of upserts and tombstones in the delta.
func (d *DeltaData) Changes() int {
	n := 0
	for _, r := range d.Relations {
		n += len(r.Upserts) + len(r.Deletes)
	}
	return n
}

// RecoveryObserver watches recovery reconstruct the database, letting the
// engine maintain a persisted inverted index through delta application and
// WAL replay instead of rebuilding it from scratch. RecoveryBase fires
// once, right after the base snapshot decodes; RecoveryApply fires for
// every tuple-level change after that (old == nil for an insert, new ==
// nil for a delete, both set for an update). Synonym/macro/foreign-key
// changes are not reported — the engine re-applies those from the
// recovered SnapshotData itself.
type RecoveryObserver interface {
	RecoveryBase(baseGen uint64, db *storage.Database)
	RecoveryApply(rel string, old, new *storage.Tuple)
}

// EncodeDelta renders d as delta bytes. Like EncodeSnapshot, identical
// inputs produce identical bytes, and any section exceeding the frame
// payload limit is refused before it can reach disk.
func EncodeDelta(d *DeltaData) ([]byte, error) {
	out := []byte(deltaMagic)

	var h enc
	h.uvarint(deltaVersion)
	h.uvarint(d.BaseGen)
	h.uvarint(uint64(d.NextTupleID))
	h.uvarint(uint64(len(d.Relations)))
	out, err := appendFrame(out, h.bytes())
	if err != nil {
		return nil, fmt.Errorf("wal: delta header: %w", err)
	}

	for _, r := range d.Relations {
		var e enc
		e.str(r.Name)
		e.uvarint(uint64(len(r.Upserts)))
		for _, t := range r.Upserts {
			e.uvarint(uint64(t.ID))
			e.uvarint(uint64(len(t.Values)))
			for _, v := range t.Values {
				e.value(v)
			}
		}
		e.uvarint(uint64(len(r.Deletes)))
		for _, id := range r.Deletes {
			e.uvarint(uint64(id))
		}
		if out, err = appendFrame(out, e.bytes()); err != nil {
			return nil, fmt.Errorf("wal: delta relation %s: %w", r.Name, err)
		}
	}

	var fe enc
	fe.uvarint(uint64(len(d.FKs)))
	for _, fk := range d.FKs {
		fe.str(fk.FromRelation)
		fe.str(fk.FromColumn)
		fe.str(fk.ToRelation)
		fe.str(fk.ToColumn)
	}
	if out, err = appendFrame(out, fe.bytes()); err != nil {
		return nil, fmt.Errorf("wal: delta foreign keys: %w", err)
	}

	syn := append([][2]string(nil), d.Synonyms...)
	sort.Slice(syn, func(i, j int) bool { return syn[i][0] < syn[j][0] })
	var xe enc
	xe.uvarint(uint64(len(syn)))
	for _, p := range syn {
		xe.str(p[0])
		xe.str(p[1])
	}
	xe.uvarint(uint64(len(d.Macros)))
	for _, m := range d.Macros {
		xe.str(m)
	}
	if out, err = appendFrame(out, xe.bytes()); err != nil {
		return nil, fmt.Errorf("wal: delta extras: %w", err)
	}

	var te enc
	te.str(deltaTrailer)
	te.uvarint(uint64(d.Changes()))
	if out, err = appendFrame(out, te.bytes()); err != nil {
		return nil, fmt.Errorf("wal: delta trailer: %w", err)
	}
	return out, nil
}

// DecodeDelta parses delta bytes. Classification matches DecodeSnapshot:
// checksum mismatch anywhere is a *CorruptionError; a stream that stops
// cleanly before its trailer satisfies IsIncomplete. The decoder never
// panics and never allocates more than the input justifies.
func DecodeDelta(file string, raw []byte) (*DeltaData, error) {
	if len(raw) < len(deltaMagic) || string(raw[:len(deltaMagic)]) != deltaMagic {
		return nil, fmt.Errorf("wal: %s: not a delta (bad magic): %w", fileLabel(file), errIncomplete)
	}
	var (
		d         = &DeltaData{}
		nRels     int
		relsSeen  int
		fksDone   bool
		extrasOK  bool
		trailerOK bool
		total     uint64
	)
	torn, err := scanFrames(file, raw[len(deltaMagic):], func(i int, off int64, payload []byte) error {
		dd := &dec{b: payload}
		switch {
		case i == 0: // header
			ver, err := dd.uvarint()
			if err != nil {
				return fmt.Errorf("header: %w", err)
			}
			if ver != deltaVersion {
				return fmt.Errorf("unsupported delta version %d", ver)
			}
			if d.BaseGen, err = dd.uvarint(); err != nil {
				return fmt.Errorf("header: %w", err)
			}
			next, err := dd.uvarint()
			if err != nil {
				return fmt.Errorf("header: %w", err)
			}
			d.NextTupleID = storage.TupleID(next)
			n, err := dd.uvarint()
			if err != nil {
				return fmt.Errorf("header: %w", err)
			}
			if n > uint64(len(raw)) { // each relation section costs ≥ 1 byte
				return fmt.Errorf("header: relation count %d exceeds input", n)
			}
			nRels = int(n)
			return nil
		case relsSeen < nRels: // one changed relation
			var r storage.DirtyRelation
			var err error
			if r.Name, err = dd.str(); err != nil {
				return fmt.Errorf("relation section %d: %w", relsSeen, err)
			}
			nUp, err := dd.count(2)
			if err != nil {
				return fmt.Errorf("relation %s upserts: %w", r.Name, err)
			}
			r.Upserts = make([]storage.Tuple, 0, nUp)
			for j := 0; j < nUp; j++ {
				id, err := dd.uvarint()
				if err != nil {
					return fmt.Errorf("relation %s upsert %d: %w", r.Name, j, err)
				}
				vals, err := dd.values()
				if err != nil {
					return fmt.Errorf("relation %s upsert %d: %w", r.Name, j, err)
				}
				r.Upserts = append(r.Upserts, storage.Tuple{ID: storage.TupleID(id), Values: vals})
			}
			nDel, err := dd.count(1)
			if err != nil {
				return fmt.Errorf("relation %s deletes: %w", r.Name, err)
			}
			r.Deletes = make([]storage.TupleID, 0, nDel)
			for j := 0; j < nDel; j++ {
				id, err := dd.uvarint()
				if err != nil {
					return fmt.Errorf("relation %s delete %d: %w", r.Name, j, err)
				}
				r.Deletes = append(r.Deletes, storage.TupleID(id))
			}
			d.Relations = append(d.Relations, r)
			relsSeen++
			return nil
		case !fksDone: // foreign keys
			n, err := dd.count(4)
			if err != nil {
				return fmt.Errorf("foreign keys: %w", err)
			}
			for j := 0; j < n; j++ {
				var fk storage.ForeignKey
				if fk.FromRelation, err = dd.str(); err == nil {
					if fk.FromColumn, err = dd.str(); err == nil {
						if fk.ToRelation, err = dd.str(); err == nil {
							fk.ToColumn, err = dd.str()
						}
					}
				}
				if err != nil {
					return fmt.Errorf("foreign key %d: %w", j, err)
				}
				d.FKs = append(d.FKs, fk)
			}
			fksDone = true
			return nil
		case !extrasOK: // synonyms + macros
			n, err := dd.count(2)
			if err != nil {
				return fmt.Errorf("synonyms: %w", err)
			}
			for j := 0; j < n; j++ {
				alias, err := dd.str()
				if err != nil {
					return fmt.Errorf("synonym %d: %w", j, err)
				}
				canonical, err := dd.str()
				if err != nil {
					return fmt.Errorf("synonym %d: %w", j, err)
				}
				d.Synonyms = append(d.Synonyms, [2]string{alias, canonical})
			}
			n, err = dd.count(1)
			if err != nil {
				return fmt.Errorf("macros: %w", err)
			}
			for j := 0; j < n; j++ {
				def, err := dd.str()
				if err != nil {
					return fmt.Errorf("macro %d: %w", j, err)
				}
				d.Macros = append(d.Macros, def)
			}
			extrasOK = true
			return nil
		case !trailerOK: // trailer
			tag, err := dd.str()
			if err != nil || tag != deltaTrailer {
				return fmt.Errorf("bad trailer")
			}
			if total, err = dd.uvarint(); err != nil {
				return fmt.Errorf("trailer: %w", err)
			}
			trailerOK = true
			return nil
		default:
			return fmt.Errorf("unexpected section after trailer")
		}
	})
	if err != nil {
		return nil, err
	}
	if torn != nil || !trailerOK {
		detail := "missing trailer"
		if torn != nil {
			detail = torn.Detail
		}
		return nil, fmt.Errorf("wal: %s: delta incomplete (%s): %w", fileLabel(file), detail, errIncomplete)
	}
	if got := d.Changes(); uint64(got) != total {
		return nil, &CorruptionError{File: file, Offset: 0, Record: 0,
			Detail: fmt.Sprintf("trailer declares %d changes, decoded %d", total, got)}
	}
	return d, nil
}

// ApplyDelta applies d on top of data, in the same deterministic order the
// checkpoint captured it: relations in creation order, upserts ascending
// by id, then tombstones. Because tuple ids are globally monotone and
// never reused, InsertWithID in ascending order lands every tuple at the
// same scan position WAL replay would have — delta recovery stays
// byte-identical to log replay. Extras replace the base's wholesale.
// obs (may be nil) sees every tuple-level change.
func ApplyDelta(data *SnapshotData, d *DeltaData, obs RecoveryObserver) error {
	db := data.DB
	for _, r := range d.Relations {
		rel := db.Relation(r.Name)
		if rel == nil {
			return fmt.Errorf("wal: delta references unknown relation %s", r.Name)
		}
		for _, t := range r.Upserts {
			if old, ok := rel.Get(t.ID); ok {
				if err := db.Update(r.Name, t.ID, t.Values); err != nil {
					return fmt.Errorf("wal: delta update %s/%d: %w", r.Name, t.ID, err)
				}
				if obs != nil {
					nt := t
					obs.RecoveryApply(r.Name, &old, &nt)
				}
			} else {
				if err := db.InsertWithID(r.Name, t.ID, t.Values...); err != nil {
					return fmt.Errorf("wal: delta insert %s/%d: %w", r.Name, t.ID, err)
				}
				if obs != nil {
					nt := t
					obs.RecoveryApply(r.Name, nil, &nt)
				}
			}
		}
		for _, id := range r.Deletes {
			// A tombstone for an id the base never saw (inserted and deleted
			// within one checkpoint interval) is a no-op.
			old, ok := rel.Get(id)
			if !ok {
				continue
			}
			if _, err := db.Delete(r.Name, id); err != nil {
				return fmt.Errorf("wal: delta delete %s/%d: %w", r.Name, id, err)
			}
			if obs != nil {
				obs.RecoveryApply(r.Name, &old, nil)
			}
		}
	}
	db.SetNextTupleID(d.NextTupleID)
	db.SetForeignKeys(nil)
	for _, fk := range d.FKs {
		if err := db.AddForeignKey(fk); err != nil {
			return fmt.Errorf("wal: delta foreign key: %w", err)
		}
	}
	data.Synonyms = append([][2]string(nil), d.Synonyms...)
	data.synIdx = nil
	data.Macros = append([]string(nil), d.Macros...)
	data.macroSet = nil
	return nil
}

// applyObserved applies one WAL record to data, reporting tuple-level
// changes to obs so a loaded index stays current through log replay. With
// a nil observer it is exactly Record.apply.
func applyObserved(r Record, data *SnapshotData, obs RecoveryObserver) error {
	if obs == nil {
		return r.apply(data)
	}
	switch r.Op {
	case OpInsert:
		if err := r.apply(data); err != nil {
			return err
		}
		nt := storage.Tuple{ID: r.ID, Values: r.Values}
		obs.RecoveryApply(r.Rel, nil, &nt)
		return nil
	case OpUpdate, OpDelete:
		var oldp *storage.Tuple
		if rel := data.DB.Relation(r.Rel); rel != nil {
			if old, ok := rel.Get(r.ID); ok {
				oldp = &old
			}
		}
		if err := r.apply(data); err != nil {
			return err
		}
		if r.Op == OpUpdate {
			nt := storage.Tuple{ID: r.ID, Values: r.Values}
			obs.RecoveryApply(r.Rel, oldp, &nt)
		} else if oldp != nil {
			obs.RecoveryApply(r.Rel, oldp, nil)
		}
		return nil
	default:
		return r.apply(data)
	}
}

// WriteDelta durably writes d as the delta for generation gen: temp file,
// fsync, rename, directory fsync — the same atomicity as snapshots, and
// the same fault-injection site (it is a checkpoint write).
func WriteDelta(dir string, gen uint64, d *DeltaData) (string, int64, error) {
	if err := faultinject.Fire(faultinject.SiteSnapshotWrite); err != nil {
		return "", 0, fmt.Errorf("wal: delta write: %w", err)
	}
	raw, err := EncodeDelta(d)
	if err != nil {
		return "", 0, err
	}
	path, err := writeRawFile(dir, deltaName(gen), raw)
	return path, int64(len(raw)), err
}

// writeRawFile durably writes raw to dir/name via the snapshot temp-file
// protocol (same ".tmp-snap-*" prefix, so stale temps from any file kind
// are swept by the one cleanup pass in Open).
func writeRawFile(dir, name string, raw []byte) (string, error) {
	final := filepath.Join(dir, name)
	tmp, err := os.CreateTemp(dir, ".tmp-snap-*")
	if err != nil {
		return "", err
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = tmp.Close(); _ = os.Remove(tmpName) }
	if _, err := tmp.Write(raw); err != nil {
		cleanup()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return "", err
	}
	if err := os.Rename(tmpName, final); err != nil {
		_ = os.Remove(tmpName)
		return "", err
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return final, nil
}

func deltaName(gen uint64) string { return fmt.Sprintf("delta-%016x.dlt", gen) }

// IndexSnapshotName is the file the persisted inverted index for the full
// snapshot at gen lives in, exported for the engine layer that owns the
// index codec.
func IndexSnapshotName(gen uint64) string { return fmt.Sprintf("index-%016x.pidx", gen) }

package wal

import (
	"fmt"

	"precis/internal/storage"
)

// Op identifies a logged mutation.
type Op uint8

// The logged mutation kinds. Insert covers both Insert and InsertWithID —
// the log always records the concrete tuple id the mutation used, so replay
// is deterministic regardless of how the id was chosen.
const (
	OpInsert Op = iota + 1
	OpUpdate
	OpDelete
	OpSynonym
	OpMacro
	OpAddFK
)

// String names the op for diagnostics.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpSynonym:
		return "synonym"
	case OpMacro:
		return "macro"
	case OpAddFK:
		return "add-fk"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Record is one logged mutation. Which fields are meaningful depends on Op:
//
//	OpInsert   Rel, ID, Values
//	OpUpdate   Rel, ID, Values
//	OpDelete   Rel, ID
//	OpSynonym  Alias, Canonical
//	OpMacro    Def
//	OpAddFK    FK
type Record struct {
	Op     Op
	Rel    string
	ID     storage.TupleID
	Values []storage.Value

	Alias, Canonical string
	Def              string

	FK storage.ForeignKey
}

// encode appends the record's payload bytes (no frame) to dst.
func (r Record) encode(dst []byte) []byte {
	e := enc{b: dst}
	e.u8(uint8(r.Op))
	switch r.Op {
	case OpInsert, OpUpdate:
		e.str(r.Rel)
		e.uvarint(uint64(r.ID))
		e.uvarint(uint64(len(r.Values)))
		for _, v := range r.Values {
			e.value(v)
		}
	case OpDelete:
		e.str(r.Rel)
		e.uvarint(uint64(r.ID))
	case OpSynonym:
		e.str(r.Alias)
		e.str(r.Canonical)
	case OpMacro:
		e.str(r.Def)
	case OpAddFK:
		e.str(r.FK.FromRelation)
		e.str(r.FK.FromColumn)
		e.str(r.FK.ToRelation)
		e.str(r.FK.ToColumn)
	}
	return e.bytes()
}

// decodeRecord parses one WAL frame payload. It validates bounds on every
// field and rejects trailing garbage, so a decoded record is exactly what
// encode produced.
func decodeRecord(payload []byte) (Record, error) {
	d := &dec{b: payload}
	opb, err := d.u8()
	if err != nil {
		return Record{}, err
	}
	r := Record{Op: Op(opb)}
	switch r.Op {
	case OpInsert, OpUpdate:
		if r.Rel, err = d.str(); err == nil {
			var id uint64
			if id, err = d.uvarint(); err == nil {
				r.ID = storage.TupleID(id)
				r.Values, err = d.values()
			}
		}
	case OpDelete:
		if r.Rel, err = d.str(); err == nil {
			var id uint64
			if id, err = d.uvarint(); err == nil {
				r.ID = storage.TupleID(id)
			}
		}
	case OpSynonym:
		if r.Alias, err = d.str(); err == nil {
			r.Canonical, err = d.str()
		}
	case OpMacro:
		r.Def, err = d.str()
	case OpAddFK:
		if r.FK.FromRelation, err = d.str(); err == nil {
			if r.FK.FromColumn, err = d.str(); err == nil {
				if r.FK.ToRelation, err = d.str(); err == nil {
					r.FK.ToColumn, err = d.str()
				}
			}
		}
	default:
		return Record{}, fmt.Errorf("unknown op %d", opb)
	}
	if err != nil {
		return Record{}, fmt.Errorf("%s record: %w", r.Op, err)
	}
	if !d.done() {
		return Record{}, fmt.Errorf("%s record: %d trailing bytes", r.Op, d.remaining())
	}
	return r, nil
}

// DecodeRecord parses one WAL frame payload — the exported form the
// replication follower applies to streamed frames.
func DecodeRecord(payload []byte) (Record, error) { return decodeRecord(payload) }

// Apply replays the record onto data through the same ID-stable path crash
// recovery uses, exported for follower bootstrap.
func (r Record) Apply(data *SnapshotData) error { return r.apply(data) }

// apply replays one record onto the recovered state. Inserts use the logged
// tuple id, so a replayed database is id-identical to the pre-crash one.
func (r Record) apply(s *SnapshotData) error {
	switch r.Op {
	case OpInsert:
		return s.DB.InsertWithID(r.Rel, r.ID, r.Values...)
	case OpUpdate:
		return s.DB.Update(r.Rel, r.ID, r.Values)
	case OpDelete:
		_, err := s.DB.Delete(r.Rel, r.ID)
		return err
	case OpSynonym:
		s.setSynonym(r.Alias, r.Canonical)
		return nil
	case OpMacro:
		s.addMacro(r.Def)
		return nil
	case OpAddFK:
		return s.DB.AddForeignKey(r.FK)
	default:
		return fmt.Errorf("unknown op %d", uint8(r.Op))
	}
}

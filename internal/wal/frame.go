package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// frameHeaderSize is the fixed per-frame overhead: payload length (4 bytes,
// little endian), CRC32C of those 4 length bytes, CRC32C of the payload.
const frameHeaderSize = 12

// FrameOverhead is the per-frame on-disk overhead in bytes, exported so
// the replication layer can account follower lag in file-offset terms.
const FrameOverhead = frameHeaderSize

// castagnoli is the CRC32C table (the polynomial storage engines use for
// on-disk checksums; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errFrameTooLarge rejects a write-path payload the read path would refuse
// to parse. Enforcing the cap here — before any bytes reach disk — keeps an
// oversized section from producing a file that encodes "successfully" but
// can never be decoded again (and keeps uint32(len) from silently wrapping
// past 4 GiB into an undetectably corrupt length field).
var errFrameTooLarge = errors.New("wal: frame payload exceeds limit")

// appendFrame frames payload into dst: header then payload. Payloads over
// maxFramePayload are refused with errFrameTooLarge; they could be written
// but never read back.
func appendFrame(dst, payload []byte) ([]byte, error) {
	if len(payload) > maxFramePayload {
		return nil, fmt.Errorf("%w (%d > %d bytes)", errFrameTooLarge, len(payload), maxFramePayload)
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(hdr[0:4], castagnoli))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// CorruptionError reports a checksum failure that cannot be a torn write:
// the affected bytes are followed by more data (or fail their own header
// checksum), so a crash mid-append cannot explain them. Recovery hard-fails
// on it — silently dropping committed records would be data loss.
type CorruptionError struct {
	// File is the offending file path ("" when decoding from memory).
	File string
	// Offset is the byte offset of the corrupt frame.
	Offset int64
	// Record is the zero-based index of the corrupt frame in the file.
	Record int
	// Detail says which check failed.
	Detail string
}

func (e *CorruptionError) Error() string {
	file := e.File
	if file == "" {
		file = "<memory>"
	}
	return fmt.Sprintf("wal: corruption in %s: record %d at offset %d: %s", file, e.Record, e.Offset, e.Detail)
}

// errIncomplete marks a snapshot that ends cleanly but before its trailer —
// an interrupted write, not a flipped bit. Recovery may fall back to an
// older generation on it.
var errIncomplete = errors.New("wal: incomplete file")

// IsIncomplete reports whether err marks a truncated-but-uncorrupted file.
func IsIncomplete(err error) bool { return errors.Is(err, errIncomplete) }

// tornTail describes a final partial frame left by a crash mid-append.
type tornTail struct {
	// Offset is where the torn frame starts; bytes from here on are garbage.
	Offset int64
	// Detail says what was missing.
	Detail string
}

// FrameReader incrementally decodes frames from a file — the streaming
// counterpart of scanFrames, used by the replication primary to tail a
// live WAL. It reads at explicit offsets (ReadAt), so a frame that is not
// complete yet consumes nothing: Next can simply be retried once the file
// has grown.
type FrameReader struct {
	r    io.ReaderAt
	file string // for error attribution ("" allowed)
	off  int64
	idx  int
	buf  []byte
}

// NewFrameReader tails frames from r, attributing corruption to file.
func NewFrameReader(r io.ReaderAt, file string) *FrameReader {
	return &FrameReader{r: r, file: file}
}

// Offset returns the byte offset the next frame starts at.
func (fr *FrameReader) Offset() int64 { return fr.off }

// Next returns the next complete frame's payload, valid until the
// following call. io.EOF means no complete frame is available at the
// current offset — retryable while the file is still being appended to
// (nothing was consumed). A checksum failure is a *CorruptionError.
func (fr *FrameReader) Next() ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := fr.r.ReadAt(hdr[:], fr.off); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, io.EOF
		}
		return nil, err
	}
	plen := binary.LittleEndian.Uint32(hdr[0:4])
	lenCRC := binary.LittleEndian.Uint32(hdr[4:8])
	payCRC := binary.LittleEndian.Uint32(hdr[8:12])
	if got := crc32.Checksum(hdr[0:4], castagnoli); got != lenCRC {
		return nil, &CorruptionError{File: fr.file, Offset: fr.off, Record: fr.idx,
			Detail: fmt.Sprintf("length checksum mismatch (stored %08x, computed %08x)", lenCRC, got)}
	}
	if plen > maxFramePayload {
		return nil, &CorruptionError{File: fr.file, Offset: fr.off, Record: fr.idx,
			Detail: fmt.Sprintf("frame payload %d exceeds limit %d", plen, maxFramePayload)}
	}
	if int(plen) > cap(fr.buf) {
		fr.buf = make([]byte, plen)
	}
	buf := fr.buf[:plen]
	if _, err := fr.r.ReadAt(buf, fr.off+frameHeaderSize); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, io.EOF
		}
		return nil, err
	}
	if got := crc32.Checksum(buf, castagnoli); got != payCRC {
		return nil, &CorruptionError{File: fr.file, Offset: fr.off, Record: fr.idx,
			Detail: fmt.Sprintf("payload checksum mismatch (stored %08x, computed %08x)", payCRC, got)}
	}
	fr.off += frameHeaderSize + int64(plen)
	fr.idx++
	return buf, nil
}

// scanFrames walks the frames in data, calling fn with each payload (valid
// only during the call). It stops at a torn tail — a final frame whose
// header is cut short or whose authenticated length runs past the end of
// data — and returns its description. A frame that fails either checksum
// while followed by complete data is corruption, returned as a
// *CorruptionError with file/offset/record filled in. fn errors abort the
// scan and are returned wrapped in a *CorruptionError too: a record that
// cannot be applied is as unrecoverable as one that cannot be read.
func scanFrames(file string, data []byte, fn func(i int, off int64, payload []byte) error) (*tornTail, error) {
	off := int64(0)
	size := int64(len(data))
	for i := 0; ; i++ {
		if off == size {
			return nil, nil // clean end
		}
		if size-off < frameHeaderSize {
			return &tornTail{Offset: off, Detail: fmt.Sprintf("partial header (%d of %d bytes)", size-off, frameHeaderSize)}, nil
		}
		hdr := data[off : off+frameHeaderSize]
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		lenCRC := binary.LittleEndian.Uint32(hdr[4:8])
		payCRC := binary.LittleEndian.Uint32(hdr[8:12])
		if got := crc32.Checksum(hdr[0:4], castagnoli); got != lenCRC {
			// The length field fails its own checksum: a torn write can only
			// truncate the header (caught above), never scramble it, so this
			// is a flipped bit — even in the final frame.
			return nil, &CorruptionError{File: file, Offset: off, Record: i,
				Detail: fmt.Sprintf("length checksum mismatch (stored %08x, computed %08x)", lenCRC, got)}
		}
		if plen > maxFramePayload {
			return nil, &CorruptionError{File: file, Offset: off, Record: i,
				Detail: fmt.Sprintf("frame payload %d exceeds limit %d", plen, maxFramePayload)}
		}
		end := off + frameHeaderSize + int64(plen)
		if end > size {
			// Authenticated length runs past end-of-file: the payload write
			// was cut short. This is the torn-tail case.
			return &tornTail{Offset: off, Detail: fmt.Sprintf("partial payload (%d of %d bytes)", size-off-frameHeaderSize, plen)}, nil
		}
		payload := data[off+frameHeaderSize : end]
		if got := crc32.Checksum(payload, castagnoli); got != payCRC {
			// Full-length payload with a bad checksum cannot be a torn
			// write: flipped bit, hard failure.
			return nil, &CorruptionError{File: file, Offset: off, Record: i,
				Detail: fmt.Sprintf("payload checksum mismatch (stored %08x, computed %08x)", payCRC, got)}
		}
		if fn != nil {
			if err := fn(i, off, payload); err != nil {
				return nil, &CorruptionError{File: file, Offset: off, Record: i, Detail: err.Error()}
			}
		}
		off = end
	}
}

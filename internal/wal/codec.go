// Package wal is the engine's durability subsystem: a versioned, CRC32C-
// framed binary snapshot codec for the full storage.Database (plus engine
// extras: synonyms and narrative macro definitions), an append-only
// write-ahead log of every mutation with group-commit batching and a
// configurable fsync policy, and crash recovery that loads the newest valid
// snapshot, replays the log, silently truncates a torn tail, and hard-fails
// with a precise diagnostic (file, offset, record index) on mid-log
// corruption.
//
// On-disk layout of a data directory:
//
//	snap-<gen>.snap   full snapshot at generation <gen> (16 hex digits)
//	wal-<gen>.log     mutations appended after snapshot <gen>
//
// Both file kinds are built from the same frame: a 12-byte header —
// payload length (uint32 LE), CRC32C of the length field, CRC32C of the
// payload — followed by the payload. Checksumming the length field
// separately makes torn-tail classification exact under a truncate-at-any-
// byte crash model: a header that fails its own checksum can only be a
// flipped bit (hard failure), while a frame that runs past end-of-file with
// a valid header is a torn write (truncated with a warning).
//
// Snapshots are written to a temp file, fsynced, atomically renamed into
// place, and the directory fsynced — a crash mid-snapshot never damages the
// previous generation. Checkpointing writes a new snapshot, rotates the
// WAL, and garbage-collects older generations.
package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"precis/internal/storage"
)

// maxFramePayload caps a single frame. Frames near this size only arise
// from absurd inputs; the cap keeps adversarial length fields from driving
// allocations (decoders additionally never allocate more than the bytes
// actually present).
const maxFramePayload = 1 << 30

// enc is an append-only binary encoder. The zero value is ready to use.
type enc struct{ b []byte }

func (e *enc) bytes() []byte { return e.b }

func (e *enc) u8(v uint8) { e.b = append(e.b, v) }

func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

func (e *enc) varint(v int64) { e.b = binary.AppendVarint(e.b, v) }

func (e *enc) f64(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}

func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// value encodes one storage.Value as kind byte + payload.
func (e *enc) value(v storage.Value) {
	e.u8(uint8(v.Kind()))
	switch v.Kind() {
	case storage.KindNull:
	case storage.KindInt:
		e.varint(v.AsInt())
	case storage.KindFloat:
		e.f64(v.AsFloat())
	case storage.KindString:
		e.str(v.AsString())
	case storage.KindBool:
		if v.AsBool() {
			e.u8(1)
		} else {
			e.u8(0)
		}
	}
}

// dec is a bounds-checked binary decoder over one frame payload. Every
// accessor validates against the remaining bytes before reading or
// allocating, so adversarial inputs (fuzzed length fields, truncated
// payloads) produce errors, never panics or oversized allocations.
type dec struct {
	b   []byte
	off int
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) done() bool { return d.off >= len(d.b) }

func (d *dec) u8() (uint8, error) {
	if d.off >= len(d.b) {
		return 0, fmt.Errorf("byte at %d past end (%d bytes)", d.off, len(d.b))
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad uvarint at %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *dec) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad varint at %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *dec) f64() (float64, error) {
	if d.remaining() < 8 {
		return 0, fmt.Errorf("float at %d past end", d.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v, nil
}

func (d *dec) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.remaining()) {
		return "", fmt.Errorf("string of %d bytes at %d exceeds remaining %d", n, d.off, d.remaining())
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// count reads a uvarint element count and validates it against the smallest
// possible per-element encoding, so a fuzzed count can never drive an
// allocation larger than the input itself.
func (d *dec) count(minBytesPerElem int) (int, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytesPerElem < 1 {
		minBytesPerElem = 1
	}
	if n > uint64(d.remaining()/minBytesPerElem) {
		return 0, fmt.Errorf("count %d at %d exceeds remaining input", n, d.off)
	}
	return int(n), nil
}

func (d *dec) value() (storage.Value, error) {
	k, err := d.u8()
	if err != nil {
		return storage.Null, err
	}
	switch storage.Kind(k) {
	case storage.KindNull:
		return storage.Null, nil
	case storage.KindInt:
		v, err := d.varint()
		if err != nil {
			return storage.Null, err
		}
		return storage.Int(v), nil
	case storage.KindFloat:
		v, err := d.f64()
		if err != nil {
			return storage.Null, err
		}
		return storage.Float(v), nil
	case storage.KindString:
		s, err := d.str()
		if err != nil {
			return storage.Null, err
		}
		return storage.String(s), nil
	case storage.KindBool:
		b, err := d.u8()
		if err != nil {
			return storage.Null, err
		}
		return storage.Bool(b != 0), nil
	default:
		return storage.Null, fmt.Errorf("unknown value kind %d", k)
	}
}

// values decodes a length-prefixed value list.
func (d *dec) values() ([]storage.Value, error) {
	n, err := d.count(1)
	if err != nil {
		return nil, err
	}
	out := make([]storage.Value, 0, n)
	for i := 0; i < n; i++ {
		v, err := d.value()
		if err != nil {
			return nil, fmt.Errorf("value %d: %w", i, err)
		}
		out = append(out, v)
	}
	return out, nil
}

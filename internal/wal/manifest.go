package wal

import (
	"fmt"
	"os"
	"path/filepath"
)

// Chain manifest ("PRCMANF1", file manifest.mf): the generations of the
// live checkpoint chain — a full snapshot followed by zero or more deltas,
// ascending. The manifest is ADVISORY: recovery can always re-derive the
// chain from the files themselves (newest loadable full snapshot, then
// every delta above it, validated link by link through each delta's
// BaseGen), so a missing, stale, or corrupt manifest is ignored rather
// than failing the open. It exists to make the intended chain explicit on
// disk and to let recovery skip probing snapshot generations the last
// checkpoint already superseded. It is rewritten atomically after every
// completed checkpoint.
const (
	manifestMagic = "PRCMANF1"
	manifestName  = "manifest.mf"
	manifestVer   = 1
)

// encodeManifest renders a chain as manifest bytes: magic plus one CRC
// frame holding version, length, and the generations.
func encodeManifest(chain []uint64) ([]byte, error) {
	var e enc
	e.uvarint(manifestVer)
	e.uvarint(uint64(len(chain)))
	for _, g := range chain {
		e.uvarint(g)
	}
	return appendFrame([]byte(manifestMagic), e.bytes())
}

// decodeManifest parses manifest bytes back into a chain. Any defect —
// bad magic, checksum failure, truncation, version skew, non-ascending
// generations — is an error the caller treats as "no manifest".
func decodeManifest(file string, raw []byte) ([]uint64, error) {
	if len(raw) < len(manifestMagic) || string(raw[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("wal: %s: not a manifest (bad magic)", fileLabel(file))
	}
	var chain []uint64
	frames := 0
	torn, err := scanFrames(file, raw[len(manifestMagic):], func(i int, off int64, payload []byte) error {
		if i != 0 {
			return fmt.Errorf("unexpected extra frame")
		}
		frames++
		d := &dec{b: payload}
		ver, err := d.uvarint()
		if err != nil {
			return err
		}
		if ver != manifestVer {
			return fmt.Errorf("unsupported manifest version %d", ver)
		}
		n, err := d.count(1)
		if err != nil {
			return err
		}
		chain = make([]uint64, 0, n)
		for j := 0; j < n; j++ {
			g, err := d.uvarint()
			if err != nil {
				return fmt.Errorf("generation %d: %w", j, err)
			}
			if j > 0 && g <= chain[j-1] {
				return fmt.Errorf("generations not ascending at %d", j)
			}
			chain = append(chain, g)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if torn != nil || frames == 0 || len(chain) == 0 {
		return nil, fmt.Errorf("wal: %s: manifest incomplete", fileLabel(file))
	}
	return chain, nil
}

// writeManifest atomically replaces dir's manifest with chain.
func writeManifest(dir string, chain []uint64) error {
	raw, err := encodeManifest(chain)
	if err != nil {
		return err
	}
	_, err = writeRawFile(dir, manifestName, raw)
	return err
}

// readManifest loads dir's manifest chain, or nil when absent or invalid.
func readManifest(dir string) []uint64 {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil
	}
	chain, err := decodeManifest(filepath.Join(dir, manifestName), raw)
	if err != nil {
		return nil
	}
	return chain
}
